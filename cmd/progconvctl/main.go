// Command progconvctl is the fleet CLI: a thin wrapper over the public
// client SDK that speaks the v1 API to a standalone daemon, a worker
// or a coordinator — they serve the same schema, so the tool cannot
// tell and does not care.
//
//	progconvctl [-s http://localhost:8080] <command> [flags] [args]
//
//	submit   [-parallel N] [-on-failure p] [-fail-on g] [-accept-order]
//	         [-inject spec] [-deadline d] [-traceparent tp]
//	         [-wait] [-report] <source.ddl> <target.ddl> <program>...
//	         submit a job; -wait polls to the terminal state and exits
//	         with the job's exit code, -report writes the report JSON
//	         to stdout (implies -wait)
//	status   <job-id>        print the status document
//	wait     <job-id>        poll to terminal, print the final status,
//	                         exit with the job's exit code
//	report   <job-id>        print the finished report JSON
//	list     [-state s] [-limit n] [-all]
//	                         page through the job listing; -all follows
//	                         next_page_token to the end
//	cancel   <job-id>        request cancellation, print the status
//	events   [-omit-timing] <job-id>
//	                         stream the job's NDJSON event log
//	workers                  print the coordinator's worker registry
//	register <worker-url>    add (or re-admit) a worker
//
// Failures print "progconvctl: <code>: message" with the
// machine-readable token from the shared error-code table and exit
// non-zero; -wait additionally adopts the job's own exit code so CI
// scripts treat a fleet run exactly like a local progconv convert.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"progconv"
	"progconv/client"
)

func main() {
	fs := flag.NewFlagSet("progconvctl", flag.ExitOnError)
	server := fs.String("s", "http://localhost:8080", "daemon or coordinator base URL")
	fs.Usage = usage
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := client.New(*server)
	ctx := context.Background()

	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(ctx, cli, args[1:])
	case "status":
		err = printStatus(ctx, cli, args[1:], (*client.Client).Status)
	case "wait":
		err = cmdWait(ctx, cli, args[1:])
	case "report":
		err = cmdReport(ctx, cli, args[1:])
	case "list":
		err = cmdList(ctx, cli, args[1:])
	case "cancel":
		err = printStatus(ctx, cli, args[1:], (*client.Client).Cancel)
	case "events":
		err = cmdEvents(ctx, cli, args[1:])
	case "workers":
		err = cmdWorkers(ctx, cli)
	case "register":
		err = cmdRegister(ctx, cli, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		var xe exitCodeError
		if errors.As(err, &xe) {
			os.Exit(xe.code)
		}
		code := progconv.CodeFailed
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code != "" {
			code = apiErr.Code
		}
		fmt.Fprintf(os.Stderr, "progconvctl: %s: %v\n", code, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  progconvctl [-s URL] submit [-model m] [-parallel N] [-on-failure p]
              [-fail-on g] [-accept-order] [-inject spec] [-deadline d]
              [-verify-init file] [-traceparent tp] [-wait] [-report]
              <source.ddl> <target.ddl> <program>...
  progconvctl [-s URL] status|wait|report|cancel <job-id>
  progconvctl [-s URL] list [-state s] [-limit n] [-all]
  progconvctl [-s URL] events [-omit-timing] <job-id>
  progconvctl [-s URL] workers
  progconvctl [-s URL] register <worker-url>`)
}

// exitCodeError makes main exit with a job's own exit code after the
// output was already written.
type exitCodeError struct{ code int }

func (e exitCodeError) Error() string { return fmt.Sprintf("exit %d", e.code) }

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func cmdSubmit(ctx context.Context, cli *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	model := fs.String("model", "", `data model of the pair: "network" (default) or "hierarchical"`)
	parallel := fs.Int("parallel", 0, "per-job conversion parallelism (0 = server default)")
	migrateParallel := fs.Int("migrate-parallel", 0, "data-migration shard workers (0 = server default)")
	onFailure := fs.String("on-failure", "", `batch failure policy: "fail-fast", "collect" or "budget:N"`)
	failOn := fs.String("fail-on", "", `result gate: "manual" or "qualified"`)
	acceptOrder := fs.Bool("accept-order", false, "accept set-order changes")
	inject := fs.String("inject", "", "deterministic fault-injection spec")
	deadline := fs.String("deadline", "", "job deadline (Go duration)")
	verifyInit := fs.String("verify-init", "", "program file that seeds the verification database")
	traceparent := fs.String("traceparent", "", "W3C traceparent to continue")
	wait := fs.Bool("wait", false, "poll to the terminal state; exit with the job's exit code")
	report := fs.Bool("report", false, "print the report JSON (implies -wait)")
	fs.Parse(args)
	if fs.NArg() < 3 {
		return fmt.Errorf("submit needs <source.ddl> <target.ddl> <program>...")
	}
	spec := &progconv.JobSpec{Model: *model, Options: progconv.JobOptions{
		Parallelism: *parallel, MigrateParallel: *migrateParallel,
		OnFailure: *onFailure, FailOn: *failOn,
		AcceptOrder: *acceptOrder, Inject: *inject, Deadline: *deadline,
	}}
	var err error
	if *verifyInit != "" {
		if spec.Options.VerifyInit, err = readFile(*verifyInit); err != nil {
			return err
		}
	}
	if spec.SourceDDL, err = readFile(fs.Arg(0)); err != nil {
		return err
	}
	if spec.TargetDDL, err = readFile(fs.Arg(1)); err != nil {
		return err
	}
	for _, p := range fs.Args()[2:] {
		src, err := readFile(p)
		if err != nil {
			return err
		}
		spec.Programs = append(spec.Programs, progconv.ProgramSpec{Source: src})
	}
	st, err := cli.SubmitTrace(ctx, spec, *traceparent)
	if err != nil {
		return err
	}
	if !*wait && !*report {
		return printJSON(st)
	}
	if *report {
		body, _, err := cli.WaitReport(ctx, st.ID, 0)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return exitFor(ctx, cli, st.ID)
	}
	return waitAndPrint(ctx, cli, st.ID)
}

func printStatus(ctx context.Context, cli *client.Client, args []string, fn func(*client.Client, context.Context, string) (*progconv.JobStatus, error)) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one <job-id>")
	}
	st, err := fn(cli, ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdWait(ctx context.Context, cli *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("wait needs exactly one <job-id>")
	}
	return waitAndPrint(ctx, cli, args[0])
}

func waitAndPrint(ctx context.Context, cli *client.Client, id string) error {
	st, err := cli.Wait(ctx, id, 0)
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.ExitCode != nil && *st.ExitCode != 0 {
		return exitCodeError{code: *st.ExitCode}
	}
	return nil
}

// exitFor adopts a finished job's exit code as the process exit code.
func exitFor(ctx context.Context, cli *client.Client, id string) error {
	st, err := cli.Status(ctx, id)
	if err != nil {
		return err
	}
	if st.ExitCode != nil && *st.ExitCode != 0 {
		return exitCodeError{code: *st.ExitCode}
	}
	return nil
}

func cmdReport(ctx context.Context, cli *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("report needs exactly one <job-id>")
	}
	body, _, err := cli.Report(ctx, args[0])
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	return nil
}

func cmdList(ctx context.Context, cli *client.Client, args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	state := fs.String("state", "", "filter: queued, running, done, failed or canceled")
	limit := fs.Int("limit", 0, "page size (0 = server default)")
	all := fs.Bool("all", false, "follow next_page_token to the end of the listing")
	fs.Parse(args)
	token := ""
	for {
		page, err := cli.List(ctx, client.ListOptions{State: *state, Limit: *limit, PageToken: token})
		if err != nil {
			return err
		}
		for i := range page.Jobs {
			if err := printJSON(&page.Jobs[i]); err != nil {
				return err
			}
		}
		if !*all || page.NextPageToken == "" {
			return nil
		}
		token = page.NextPageToken
	}
}

func cmdEvents(ctx context.Context, cli *client.Client, args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	omitTiming := fs.Bool("omit-timing", false, "drop wall-clock fields (deterministic bytes)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("events needs exactly one <job-id>")
	}
	stream, err := cli.Events(ctx, fs.Arg(0), *omitTiming)
	if err != nil {
		return err
	}
	defer stream.Close()
	_, err = io.Copy(os.Stdout, stream)
	return err
}

func cmdWorkers(ctx context.Context, cli *client.Client) error {
	list, err := cli.Workers(ctx)
	if err != nil {
		return err
	}
	return printJSON(list)
}

func cmdRegister(ctx context.Context, cli *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("register needs exactly one <worker-url>")
	}
	doc, err := cli.RegisterWorker(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(doc)
}

func printJSON(doc any) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}
