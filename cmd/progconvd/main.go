// Command progconvd is the conversion service daemon: the progconv
// pipeline behind a versioned HTTP/JSON API.
//
//	progconvd [-mode standalone|worker|coordinator] [-addr :8080]
//	          [-queue N] [-runners N]
//	          [-deadline d] [-max-deadline d] [-drain-timeout d]
//	          [-cache] [-cache-size N] [-debug-addr :8081]
//	          [-workers url,url,...] [-probe-interval d] [-probe-failures N]
//
// Endpoints (all documents are wire v1, see internal/wire):
//
//	POST   /v1/jobs             submit a job (wire.JobSpec); 202 with a
//	                            status document and Location header,
//	                            429 + Retry-After when the queue is
//	                            full, 503 + Retry-After while draining
//	GET    /v1/jobs             list submitted jobs, paginated
//	                            (?limit, ?page_token, ?state)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/report the finished report — byte-identical to
//	                            progconv convert -report-json for the
//	                            same inputs; HTTP status follows the
//	                            shared exit-code table
//	GET    /v1/jobs/{id}/events the job's structured event log as
//	                            NDJSON (or SSE with Accept:
//	                            text/event-stream); streams live while
//	                            the job runs, replays when finished;
//	                            ?omit_timing=1 drops wall-clock fields
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  the job's span tree as wire trace JSON
//	                            (?omit_timing=1 for the deterministic
//	                            bytes); live partial trees while running
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//	GET    /metrics             Prometheus text exposition (counters,
//	                            latency histograms, gauges)
//	GET    /statusz             human-readable server snapshot
//
// Submissions honor an inbound W3C traceparent header: the job's trace
// continues the caller's trace ID and records the caller's span as the
// remote parent; the response echoes a traceparent naming the job's
// root span. Without one, the trace ID is derived deterministically
// from the job content and submission index.
//
// # Modes
//
// The default mode, standalone, is the daemon described above. -mode
// worker is the same daemon under a different name — the label workers
// print so fleet logs read correctly. -mode coordinator serves the
// identical v1 API but runs no conversions itself: it routes each job
// to one of the workers named by -workers (pair-affine rendezvous
// hashing, so same-pair jobs share a worker and its conversion cache),
// health-checks the fleet every -probe-interval (a worker is
// quarantined after -probe-failures consecutive failed /readyz probes
// and re-admitted when it answers again), and transparently
// re-dispatches the jobs of a dead worker — reports stay
// byte-identical because conversions are deterministic. A coordinator
// additionally serves:
//
//	GET    /v1/workers          the worker registry with health and
//	                            routing counters
//	POST   /v1/workers          register a worker (wire.WorkerSpec) or
//	                            re-admit a quarantined one
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, and mirrors /metrics and
// /statusz — keep it on loopback; it is unauthenticated.
//
// On SIGTERM or SIGINT the daemon drains gracefully: new submissions
// get 503, in-flight and queued jobs run to completion (bounded by
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"progconv"
	"progconv/internal/dispatch"
	"progconv/internal/serve"
	"progconv/internal/telemetry"
)

// service is what main drains and serves, whichever mode built it.
type service interface {
	Handler() http.Handler
	MetricsHandler() http.Handler
	Statusz() http.Handler
	Drain(context.Context) error
}

func main() {
	fs := flag.NewFlagSet("progconvd", flag.ExitOnError)
	mode := fs.String("mode", "standalone",
		`"standalone" (serve and convert), "worker" (same, fleet naming) or "coordinator" (route to -workers)`)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 16, "admission queue depth; a full queue answers 429")
	runners := fs.Int("runners", 2, "jobs converting concurrently")
	migrateParallel := fs.Int("migrate-parallel", 0,
		"default data-migration shard workers for jobs that leave\n"+
			"migrate_parallel unset (0 = GOMAXPROCS); output is byte-identical")
	deadline := fs.Duration("deadline", 0,
		"default per-job deadline for jobs that request none (0 = unbounded)")
	maxDeadline := fs.Duration("max-deadline", 0,
		"clamp applied to requested job deadlines (0 = unclamped)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"how long a SIGTERM drain waits for in-flight jobs before giving up")
	useCache := fs.Bool("cache", true,
		"share a content-addressed conversion cache across jobs")
	cacheSize := fs.Int("cache-size", 0,
		"with -cache: retained pair contexts (0 = the default 64)")
	debugAddr := fs.String("debug-addr", "",
		"serve pprof, expvar, /metrics and /statusz on this address (unauthenticated; keep on loopback)")
	workers := fs.String("workers", "",
		"coordinator mode: comma-separated worker base URLs")
	probeInterval := fs.Duration("probe-interval", 2*time.Second,
		"coordinator mode: /readyz health-probe period")
	probeFailures := fs.Int("probe-failures", 2,
		"coordinator mode: consecutive failed probes that quarantine a worker")
	fs.Parse(os.Args[1:])

	name := "progconvd"
	var svc service
	switch *mode {
	case "standalone", "worker":
		if *mode == "worker" {
			name = "progconvd[worker]"
		}
		cfg := serve.Config{
			QueueDepth:             *queue,
			Runners:                *runners,
			DefaultDeadline:        *deadline,
			MaxDeadline:            *maxDeadline,
			DefaultMigrateParallel: *migrateParallel,
		}
		if *useCache {
			cfg.Cache = progconv.NewCache(*cacheSize)
		}
		svc = serve.New(cfg)
	case "coordinator":
		name = "progconvd[coordinator]"
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "progconvd: -mode coordinator requires -workers url[,url...]")
			os.Exit(2)
		}
		co := dispatch.New(dispatch.Config{
			Workers:       urls,
			ProbeInterval: *probeInterval,
			ProbeFailures: *probeFailures,
		})
		defer co.Close()
		svc = co
	default:
		fmt.Fprintf(os.Stderr, "progconvd: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr,
			Handler: telemetry.DebugMux(svc.MetricsHandler(), svc.Statusz())}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "%s: debug listener: %v\n", name, err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "%s: debug endpoints (pprof, expvar, metrics, statusz) on %s\n", name, *debugAddr)
	}
	fmt.Fprintf(os.Stderr, "%s: serving wire v%d on %s\n", name, progconv.WireVersion, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "%s: %s: draining (new submissions get 503)\n", name, sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}

	// Drain order matters: stop admitting first (handlers keep answering
	// status/stream requests), let in-flight jobs finish everywhere, then
	// close the listeners.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		hs.Close()
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "%s: shutdown: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: drained cleanly\n", name)
}
