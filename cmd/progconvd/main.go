// Command progconvd is the conversion service daemon: the progconv
// pipeline behind a versioned HTTP/JSON API.
//
//	progconvd [-addr :8080] [-queue N] [-runners N]
//	          [-deadline d] [-max-deadline d] [-drain-timeout d]
//	          [-cache] [-cache-size N] [-debug-addr :8081]
//
// Endpoints (all documents are wire v1, see internal/wire):
//
//	POST   /v1/jobs             submit a job (wire.JobSpec); 202 with a
//	                            status document and Location header,
//	                            429 + Retry-After when the queue is
//	                            full, 503 while draining
//	GET    /v1/jobs             list submitted jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/report the finished report — byte-identical to
//	                            progconv convert -report-json for the
//	                            same inputs; HTTP status follows the
//	                            shared exit-code table
//	GET    /v1/jobs/{id}/events the job's structured event log as
//	                            NDJSON (or SSE with Accept:
//	                            text/event-stream); streams live while
//	                            the job runs, replays when finished;
//	                            ?omit_timing=1 drops wall-clock fields
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  the job's span tree as wire trace JSON
//	                            (?omit_timing=1 for the deterministic
//	                            bytes); live partial trees while running
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//	GET    /metrics             Prometheus text exposition (counters,
//	                            latency histograms, gauges)
//	GET    /statusz             human-readable server snapshot
//
// Submissions honor an inbound W3C traceparent header: the job's trace
// continues the caller's trace ID and records the caller's span as the
// remote parent; the response echoes a traceparent naming the job's
// root span. Without one, the trace ID is derived deterministically
// from the job content and submission index.
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, and mirrors /metrics and
// /statusz — keep it on loopback; it is unauthenticated.
//
// On SIGTERM or SIGINT the daemon drains gracefully: new submissions
// get 503, in-flight and queued jobs run to completion (bounded by
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"progconv"
	"progconv/internal/serve"
	"progconv/internal/telemetry"
)

func main() {
	fs := flag.NewFlagSet("progconvd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 16, "admission queue depth; a full queue answers 429")
	runners := fs.Int("runners", 2, "jobs converting concurrently")
	deadline := fs.Duration("deadline", 0,
		"default per-job deadline for jobs that request none (0 = unbounded)")
	maxDeadline := fs.Duration("max-deadline", 0,
		"clamp applied to requested job deadlines (0 = unclamped)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"how long a SIGTERM drain waits for in-flight jobs before giving up")
	useCache := fs.Bool("cache", true,
		"share a content-addressed conversion cache across jobs")
	cacheSize := fs.Int("cache-size", 0,
		"with -cache: retained pair contexts (0 = the default 64)")
	debugAddr := fs.String("debug-addr", "",
		"serve pprof, expvar, /metrics and /statusz on this address (unauthenticated; keep on loopback)")
	fs.Parse(os.Args[1:])

	cfg := serve.Config{
		QueueDepth:      *queue,
		Runners:         *runners,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	}
	if *useCache {
		cfg.Cache = progconv.NewCache(*cacheSize)
	}
	srv := serve.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr,
			Handler: telemetry.DebugMux(srv.MetricsHandler(), srv.Statusz())}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "progconvd: debug listener:", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "progconvd: debug endpoints (pprof, expvar, metrics, statusz) on %s\n", *debugAddr)
	}
	fmt.Fprintf(os.Stderr, "progconvd: serving wire v%d on %s\n", progconv.WireVersion, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "progconvd: %s: draining (new submissions get 503)\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "progconvd:", err)
		os.Exit(1)
	}

	// Drain order matters: stop admitting first (handlers keep answering
	// status/stream requests), let the runner pool finish every admitted
	// job, then close the listeners.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "progconvd:", err)
		hs.Close()
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "progconvd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "progconvd: drained cleanly")
}
