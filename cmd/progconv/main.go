// Command progconv is the conversion framework's command line: schema
// checking and diffing, program analysis, full conversions, and program
// execution for the dbprog language.
//
//	progconv check <schema.ddl>
//	progconv diff <source.ddl> <target.ddl>
//	progconv analyze <schema.ddl> <program.prog>
//	progconv convert [-accept-order] [-stats] [-parallel N] [-events f.jsonl]
//	                 [-trace f.json] [-metrics-out f.prom] [-debug-addr :6060]
//	                 [-timeout d] [-stage-timeout d] [-analyst-timeout d]
//	                 [-retries N] [-on-failure fail-fast|collect|budget:N]
//	                 [-cache] [-cache-size N] [-verify-init prog] [-report-json f.json]
//	                 [-inject spec] [-fail-on manual|qualified]
//	                 <source.ddl> <target.ddl> <program.prog>...
//	progconv run [-init <program.prog>] [-input line]... <schema.ddl> <program.prog>
//
// Exit codes: 0 success; 1 run error; 2 usage; 3 the -fail-on gate
// tripped; 4 the batch completed but programs failed in the pipeline
// (possible only under -on-failure collect or budget:N).
package main

import (
	"bufio"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"progconv"
	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/fault"
	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema/ddl"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
	"progconv/internal/xform"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		// The stderr line leads with the machine-readable token from the
		// shared error-code table, so scripts parse CLI failures and
		// daemon ErrorDocs with one vocabulary.
		code := wire.ExitError
		var xe exitError
		if errors.As(err, &xe) {
			code = xe.code
		}
		fmt.Fprintf(os.Stderr, "progconv: %s: %v\n", wire.CodeFor(code), err)
		os.Exit(int(code))
	}
}

// exitError carries a specific process exit code from the shared
// wire-schema table (the -fail-on and pipeline-failure paths).
type exitError struct {
	code wire.ExitCode
	msg  string
}

func (e exitError) Error() string { return e.msg }

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  progconv check <schema.ddl>
  progconv diff <source.ddl> <target.ddl>
  progconv analyze <schema.ddl> <program.prog>
  progconv convert [-accept-order] [-stats] [-parallel N] [-events f.jsonl]
                   [-trace f.json] [-metrics-out f.prom] [-debug-addr :6060]
                   [-timeout d] [-stage-timeout d] [-analyst-timeout d]
                   [-retries N] [-on-failure fail-fast|collect|budget:N]
                   [-cache] [-cache-size N] [-verify-init prog] [-report-json f.json]
                   [-inject spec] [-fail-on manual|qualified]
                   <source.ddl> <target.ddl> <program.prog>...
  progconv run [-init <program.prog>] [-input line]... <schema.ddl> <program.prog>`)
	os.Exit(int(wire.ExitUsage))
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func loadProgram(path string) (*progconv.Program, error) {
	src, err := readFile(path)
	if err != nil {
		return nil, err
	}
	p, err := progconv.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func cmdCheck(args []string) error {
	if len(args) != 1 {
		usage()
	}
	src, err := readFile(args[0])
	if err != nil {
		return err
	}
	parsed, err := ddl.Parse(src)
	if err != nil {
		return err
	}
	switch parsed.Kind() {
	case "network":
		n := parsed.Network
		fmt.Printf("network schema %s: %d record types, %d set types\n",
			n.Name, len(n.Records), len(n.Sets))
		fmt.Print(n.DDL())
	case "relational":
		r := parsed.Relational
		fmt.Printf("relational schema %s: %d relations\n", r.Name, len(r.Relations))
		fmt.Print(r.DDL())
	case "hierarchical":
		h := parsed.Hierarchy
		fmt.Printf("hierarchical schema %s: %d segment types\n", h.Name, len(h.Preorder()))
		fmt.Print(h.DDL())
	}
	return nil
}

func cmdDiff(args []string) error {
	if len(args) != 2 {
		usage()
	}
	src, dst, kind, err := loadPair(args[0], args[1])
	if err != nil {
		return err
	}
	var describe string
	var invertible bool
	switch kind {
	case "network":
		plan, err := xform.Classify(src.Network, dst.Network)
		if err != nil {
			return err
		}
		describe, invertible = plan.Describe(), plan.Invertible()
	case "hierarchical":
		plan, err := xform.ClassifyHier(src.Hierarchy, dst.Hierarchy)
		if err != nil {
			return err
		}
		describe, invertible = plan.Describe(), plan.Invertible()
	}
	fmt.Println("classified transformation plan:")
	fmt.Print(describe)
	fmt.Printf("invertible: %v\n", invertible)
	return nil
}

// loadPair parses both schema files with model auto-detection and
// checks they name the same data model. The conversion pipeline pairs
// network and hierarchical schemas; relational schemas are valid
// elsewhere (check, run) but have no transformation catalogue, so they
// are rejected here by name rather than with a parse error.
func loadPair(srcPath, dstPath string) (src, dst *ddl.Parsed, kind string, err error) {
	srcText, err := readFile(srcPath)
	if err != nil {
		return nil, nil, "", err
	}
	dstText, err := readFile(dstPath)
	if err != nil {
		return nil, nil, "", err
	}
	if src, err = ddl.Parse(srcText); err != nil {
		return nil, nil, "", fmt.Errorf("%s: %w", srcPath, err)
	}
	if dst, err = ddl.Parse(dstText); err != nil {
		return nil, nil, "", fmt.Errorf("%s: %w", dstPath, err)
	}
	if src.Kind() != dst.Kind() {
		return nil, nil, "", fmt.Errorf("%s is a %s schema but %s is %s: a conversion pair shares one data model",
			srcPath, src.Kind(), dstPath, dst.Kind())
	}
	kind = src.Kind()
	if kind == "relational" {
		return nil, nil, "", fmt.Errorf("the relational model is not supported here: conversion pairs are network or hierarchical")
	}
	return src, dst, kind, nil
}

func cmdAnalyze(args []string) error {
	if len(args) != 2 {
		usage()
	}
	schText, err := readFile(args[0])
	if err != nil {
		return err
	}
	parsed, err := ddl.Parse(schText)
	if err != nil {
		return err
	}
	p, err := loadProgram(args[1])
	if err != nil {
		return err
	}
	// The network analysis consults its schema for set traversals; the
	// hierarchical one is schema-free (DL/I paths carry their own
	// segment names). Relational schemas have no DML to analyze against.
	var abs *analyzer.Abstract
	switch parsed.Kind() {
	case "network":
		abs = analyzer.Analyze(context.Background(), p, parsed.Network)
	case "hierarchical":
		abs = analyzer.Analyze(context.Background(), p, nil)
	default:
		return fmt.Errorf("the relational model is not supported by analyze: pass a network or hierarchical schema")
	}
	fmt.Print(abs.Describe())
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	acceptOrder := fs.Bool("accept-order", false,
		"analyst accepts conversions whose output order may change")
	stats := fs.Bool("stats", false,
		"print per-stage timing statistics after the report\n"+
			"(histogram buckets are 1µs·4ⁱ upper bounds: <1µs, <4µs, <16µs, …)")
	parallel := fs.Int("parallel", 0,
		"worker pool size (0 = GOMAXPROCS, 1 = serial)")
	migrateParallel := fs.Int("migrate-parallel", 0,
		"data-migration shard workers (0 = GOMAXPROCS, 1 = serial);\n"+
			"output is byte-identical at any setting")
	eventsOut := fs.String("events", "",
		"write the structured event log to this JSONL file")
	traceOut := fs.String("trace", "",
		"write stage spans as Chrome trace_event JSON to this file\n"+
			"(load in chrome://tracing or ui.perfetto.dev)")
	metricsOut := fs.String("metrics-out", "",
		"write run counters in Prometheus text format to this file")
	debugAddr := fs.String("debug-addr", "",
		"serve pprof, expvar, /metrics and /statusz at this address (e.g. :6060);\n"+
			"unauthenticated — keep it on loopback")
	failOn := fs.String("fail-on", "",
		"exit with code 3 when the report contains these dispositions:\n"+
			"manual (manual or failed) or qualified (manual, failed or qualified)")
	timeout := fs.Duration("timeout", 0,
		"per-program budget for the whole analyze → verify chain (0 = unbounded);\n"+
			"an expiry fails that program, not the batch")
	stageTimeout := fs.Duration("stage-timeout", 0,
		"per-stage budget for each pipeline stage attempt (0 = unbounded)")
	analystTimeout := fs.Duration("analyst-timeout", 0,
		"budget for each analyst consultation; an expiry declines the\n"+
			"conversion and routes the program to manual (0 = unbounded)")
	retries := fs.Int("retries", 0,
		"retry stage attempts failing with transient errors up to N times")
	onFailure := fs.String("on-failure", "fail-fast",
		"what a failed program does to the batch: fail-fast aborts,\n"+
			"collect completes around failures (exit 4), budget:N tolerates N-1")
	useCache := fs.Bool("cache", false,
		"memoize pair-scoped artifacts and per-program results in a\n"+
			"content-addressed conversion cache (repeated programs convert once)")
	cacheSize := fs.Int("cache-size", 0,
		"with -cache: retained pair contexts (0 = the default 64)")
	inject := fs.String("inject", "",
		"arm the deterministic fault injector (debugging/chaos drills);\n"+
			"spec: [seed=S,]kind[=dur]@prog-glob/stage[:count][~rate],...\n"+
			"kinds: panic, transient, delay (e.g. 'panic@P-0*/convert,delay=2s@*/analyze')")
	verifyInit := fs.String("verify-init", "",
		"program run against an empty source database to populate it;\n"+
			"the populated database is migrated through the plan and every\n"+
			"automatic conversion is verified I/O-equivalent against it")
	reportJSON := fs.String("report-json", "",
		"write the report as a wire-versioned JSON document to this file\n"+
			"('-' for stdout) — the same bytes progconvd serves for the job")
	fs.Parse(args)
	if !wire.ValidFailOn(*failOn) {
		return fmt.Errorf("-fail-on must be \"manual\" or \"qualified\", got %q", *failOn)
	}
	policy, err := wire.ParseFailurePolicy(*onFailure)
	if err != nil {
		return fmt.Errorf("-on-failure: %w", err)
	}
	rest := fs.Args()
	if len(rest) < 3 {
		usage()
	}
	srcParsed, dstParsed, kind, err := loadPair(rest[0], rest[1])
	if err != nil {
		return err
	}
	src, dst := srcParsed.Network, dstParsed.Network
	hierSrc, hierDst := srcParsed.Hierarchy, dstParsed.Hierarchy
	// Classify the pair up front so a pair with no catalogued plan is a
	// usage-time error, not a queued failure inside the supervisor.
	if kind == "network" {
		if _, err := xform.Classify(src, dst); err != nil {
			return err
		}
	} else if _, err := xform.ClassifyHier(hierSrc, hierDst); err != nil {
		return err
	}
	var progs []*progconv.Program
	for _, path := range rest[2:] {
		p, err := loadProgram(path)
		if err != nil {
			return err
		}
		progs = append(progs, p)
	}
	// Interrupt cancels the batch mid-inventory (ErrCanceled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *inject != "" {
		inj, err := fault.Parse(*inject)
		if err != nil {
			return fmt.Errorf("-inject: %w", err)
		}
		ctx = fault.With(ctx, inj)
	}
	opts := []progconv.Option{
		progconv.WithAnalyst(progconv.Policy{AcceptOrderChanges: *acceptOrder}),
		progconv.WithParallelism(*parallel),
		progconv.WithMigrationParallelism(*migrateParallel),
		progconv.WithProgramTimeout(*timeout),
		progconv.WithStageTimeout(*stageTimeout),
		progconv.WithAnalystTimeout(*analystTimeout),
		progconv.WithRetries(*retries, 0),
		progconv.WithFailurePolicy(policy),
	}
	var cache *progconv.Cache
	if *useCache {
		cache = progconv.NewCache(*cacheSize)
		opts = append(opts, progconv.WithCache(cache))
	}
	if *verifyInit != "" {
		ip, err := loadProgram(*verifyInit)
		if err != nil {
			return err
		}
		if hierSrc != nil {
			db := hierstore.NewDB(hierSrc)
			if _, err := dbprog.Run(ip, dbprog.Config{Hier: db}); err != nil {
				return fmt.Errorf("verify-init program: %w", err)
			}
			opts = append(opts, progconv.WithVerifyHierDB(db))
		} else {
			db := netstore.NewDB(src)
			if _, err := dbprog.Run(ip, dbprog.Config{Net: db}); err != nil {
				return fmt.Errorf("verify-init program: %w", err)
			}
			opts = append(opts, progconv.WithVerifyDB(db))
		}
	}

	// Event sinks: a streaming JSONL file and/or a counter tally feeding
	// the Prometheus file and the live expvar endpoint.
	var sinks []progconv.Sink
	var jsonl *progconv.JSONLSink
	var eventsBuf *bufio.Writer
	var eventsFile *os.File
	if *eventsOut != "" {
		eventsFile, err = os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer eventsFile.Close()
		eventsBuf = bufio.NewWriter(eventsFile)
		jsonl = progconv.NewJSONLSink(eventsBuf)
		sinks = append(sinks, jsonl)
	}
	var tally *progconv.Tally
	var reg *telemetry.Registry
	var inst *telemetry.Instruments
	if *metricsOut != "" || *debugAddr != "" {
		tally = progconv.NewTally()
		sinks = append(sinks, tally)
		reg = telemetry.NewRegistry()
		inst = telemetry.NewInstruments(reg)
		sinks = append(sinks, inst.StageSink())
	}
	if sink := progconv.MultiSink(sinks...); sink != nil {
		opts = append(opts, progconv.WithEventSink(sink))
	}
	var rec *progconv.Recorder
	if *stats || *traceOut != "" {
		rec = progconv.NewRecorder()
		opts = append(opts, progconv.WithRecorder(rec))
	}
	// The trace builder mirrors the daemon's per-job span tree; the
	// trace ID is derived from schema and program content, so the same
	// invocation always yields the same IDs.
	var tb *progconv.TraceBuilder
	if *traceOut != "" {
		var seed []string
		if hierSrc != nil {
			seed = []string{hierSrc.DDL(), hierDst.DDL()}
		} else {
			seed = []string{src.DDL(), dst.DDL()}
		}
		for _, p := range progs {
			seed = append(seed, p.Name)
		}
		tb = progconv.NewTraceBuilder(progconv.DeriveTraceID(seed...), "convert")
		opts = append(opts, progconv.WithTraceSink(tb))
	}
	if *debugAddr != "" {
		// Same surface as the daemon's -debug-addr: pprof, expvar,
		// Prometheus text and a human statusz — not just expvar.
		expvar.Publish("progconv", expvar.Func(func() any { return tally.Snapshot() }))
		metrics := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := progconv.WritePrometheus(w, tally, nil); err != nil {
				return
			}
			reg.WritePrometheus(w)
		})
		statusz := telemetry.StatuszHandler(time.Now(), telemetry.StatusSection{
			Title: "histograms",
			Write: func(w io.Writer) { reg.WriteSummary(w) },
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, telemetry.DebugMux(metrics, statusz)); err != nil {
				fmt.Fprintln(os.Stderr, "progconv: debug endpoint:", err)
			}
		}()
	}

	runStart := time.Now()
	var report *progconv.Report
	if hierSrc != nil {
		report, err = progconv.ConvertHier(ctx, hierSrc, hierDst, nil, progs, opts...)
	} else {
		report, err = progconv.Convert(ctx, src, dst, nil, progs, opts...)
	}
	if err != nil {
		return err
	}
	if inst != nil {
		inst.JobDur.ObserveDuration("", time.Since(runStart))
		inst.ObserveDataPlane(report.DataPlane)
	}
	fmt.Print(report)
	for _, o := range report.Outcomes {
		if o.Generated != "" {
			fmt.Printf("\n--- converted %s ---\n%s", o.Name, o.Generated)
		}
	}
	if *stats {
		fmt.Printf("\n%s", report.Metrics)
	}
	if *stats && !report.DataPlane.Zero() {
		dp := report.DataPlane
		fmt.Printf("\ndata plane: %d index probes / %d scans, %d fused / %d stepwise migration steps\n",
			dp.IndexProbes, dp.IndexScans, dp.FusedSteps, dp.StepwiseSteps)
	}
	if *stats && cache != nil {
		s := cache.Stats()
		fmt.Printf("\ncache: %d pairs, %d memos\n", s.Pairs, s.Memos)
		fmt.Printf("  pair       %d hits / %d misses / %d evictions\n", s.PairHits, s.PairMisses, s.PairEvictions)
		fmt.Printf("  analysis   %d hits / %d misses / %d evictions\n", s.AnalysisHits, s.AnalysisMisses, s.AnalysisEvictions)
		fmt.Printf("  conversion %d hits / %d misses / %d evictions\n", s.ConversionHits, s.ConversionMisses, s.ConversionEvictions)
		fmt.Printf("  codegen    %d hits / %d misses / %d evictions\n", s.CodegenHits, s.CodegenMisses, s.CodegenEvictions)
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		if err := eventsBuf.Flush(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		if err := eventsFile.Close(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
	}
	if *traceOut != "" {
		// The Chrome export is a rendering of the span tree the trace
		// sink built — the same tree the daemon serves as trace JSON.
		if err := writeFileWith(*traceOut, func(w *bufio.Writer) error {
			return progconv.WriteTraceChrome(w, report.Trace)
		}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if *metricsOut != "" {
		tally.AddDataPlane(report.DataPlane)
		if err := writeFileWith(*metricsOut, func(w *bufio.Writer) error {
			if err := progconv.WritePrometheus(w, tally, report.Metrics); err != nil {
				return err
			}
			return reg.WritePrometheus(w)
		}); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if *reportJSON != "" {
		if *reportJSON == "-" {
			if err := progconv.EncodeReportJSON(os.Stdout, report); err != nil {
				return fmt.Errorf("report-json: %w", err)
			}
		} else if err := writeFileWith(*reportJSON, func(w *bufio.Writer) error {
			return progconv.EncodeReportJSON(w, report)
		}); err != nil {
			return fmt.Errorf("report-json: %w", err)
		}
	}
	// The tolerant policies let the batch complete around broken
	// programs; the shared exit-code table still says the run was not
	// clean (pipeline failures outrank the -fail-on gate).
	if code, msg := wire.ExitFor(report, *failOn); code != wire.ExitOK {
		return exitError{code: code, msg: msg}
	}
	return nil
}

// writeFileWith creates path and streams into it through a buffered
// writer, surfacing flush and close errors.
func writeFileWith(path string, fn func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	initPath := fs.String("init", "", "program run first to populate the database")
	var inputs inputList
	fs.Var(&inputs, "input", "terminal input line (repeatable)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
	}
	schText, err := readFile(rest[0])
	if err != nil {
		return err
	}
	parsed, err := ddl.Parse(schText)
	if err != nil {
		return err
	}
	p, err := loadProgram(rest[1])
	if err != nil {
		return err
	}
	cfg := dbprog.Config{TerminalInput: inputs}
	switch parsed.Kind() {
	case "network":
		cfg.Net = netstore.NewDB(parsed.Network)
	case "relational":
		cfg.Rel = relstore.NewDB(parsed.Relational)
	case "hierarchical":
		cfg.Hier = hierstore.NewDB(parsed.Hierarchy)
	}
	if *initPath != "" {
		ip, err := loadProgram(*initPath)
		if err != nil {
			return err
		}
		if _, err := dbprog.Run(ip, cfg); err != nil {
			return fmt.Errorf("init program: %w", err)
		}
	}
	trace, err := dbprog.Run(p, cfg)
	fmt.Print(trace)
	return err
}

type inputList []string

func (l *inputList) String() string { return fmt.Sprint([]string(*l)) }

func (l *inputList) Set(v string) error {
	*l = append(*l, v)
	return nil
}
