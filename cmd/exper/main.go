// Command exper regenerates every experiment in EXPERIMENTS.md: the
// paper's figures and worked examples (EXP-F*, EXP-S*), its quantitative
// claims (EXP-C*), the hazard-detector audit (EXP-H1), the resilience
// demonstration (EXP-R1), and the conversion-service measurement
// (EXP-S1). Run with no arguments for all experiments, or name them:
//
//	exper [f3.1] [f4.1] [f4.3] [f4.4] [s4.1a] [s4.1b] [c1] [c2] [c3] [c4] [c5] [c6] [h1] [r1] [s1] [s2] [m1]
//
// The bench-json subcommand measures the data-plane benchmarks with
// testing.Benchmark and writes machine-readable results:
//
//	exper bench-json [out.json]   (default BENCH_PR5.json; naming a
//	                               BENCH_PR10.json target writes the
//	                               EXP-C7 sharded-migration set instead)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"progconv"
	"progconv/client"
	"progconv/internal/analyzer"
	"progconv/internal/bridge"
	"progconv/internal/constraint"
	"progconv/internal/convert"
	"progconv/internal/core"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/dispatch"
	"progconv/internal/emulate"
	"progconv/internal/equiv"
	"progconv/internal/fault"
	"progconv/internal/generator"
	"progconv/internal/hierstore"
	"progconv/internal/mdml"
	"progconv/internal/netstore"
	"progconv/internal/obs"
	"progconv/internal/optimizer"
	"progconv/internal/plancache"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/schema/ddl"
	"progconv/internal/semantic"
	"progconv/internal/sequel"
	"progconv/internal/serve"
	"progconv/internal/value"
	"progconv/internal/wire"
	"progconv/internal/xform"
)

func main() {
	all := map[string]func(){
		"f3.1": expF31, "f4.1": expF41, "f4.3": expF43, "f4.4": expF44,
		"s4.1a": expS41a, "s4.1b": expS41b,
		"c1": expC1, "c2": expC2, "c3": expC3, "c4": expC4, "c5": expC5, "c6": expC6,
		"c7": expC7,
		"h1": expH1, "r1": expR1, "s1": expS1, "s2": expS2, "m1": expM1,
	}
	order := []string{"f3.1", "f4.1", "f4.3", "f4.4", "s4.1a", "s4.1b", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "h1", "r1", "s1", "s2", "m1"}
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "bench-json" {
		out := "BENCH_PR5.json"
		if len(args) > 1 {
			out = args[1]
		}
		if err := benchJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(int(wire.ExitError))
		}
		fmt.Println("wrote", out)
		return
	}
	if len(args) == 0 {
		args = order
	}
	for _, a := range args {
		fn, ok := all[strings.ToLower(a)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; know %v\n", a, order)
			os.Exit(int(wire.ExitUsage))
		}
		fn()
	}
}

func banner(id, title string) {
	fmt.Printf("\n========================================================================\n")
	fmt.Printf("%s — %s\n", id, title)
	fmt.Printf("========================================================================\n")
}

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func companyV1DB() *netstore.DB {
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

// ---- EXP-F3.1 ----

func expF31() {
	banner("EXP-F3.1", "Figure 3.1 school database: what each model can and cannot enforce")
	rel := relstore.NewDB(schema.SchoolRelational())
	rel.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	for _, s := range []struct {
		sem  string
		year int
	}{{"F78", 1978}, {"W78", 1978}, {"S78", 1978}} {
		rel.Insert("SEMESTER", value.FromPairs("S", s.sem, "YEAR", s.year))
	}

	fmt.Println("\n(a) relational model, FKs off (the 1979 default):")
	err := rel.Insert("COURSE-OFFERING", value.FromPairs("CNO", "GHOST", "S", "F78", "INSTRUCTOR", "X"))
	fmt.Printf("    dangling COURSE-OFFERING insert: %v (admitted)\n", err)

	rel2 := relstore.NewDB(schema.SchoolRelational(), relstore.EnforceForeignKeys())
	rel2.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	err = rel2.Insert("COURSE-OFFERING", value.FromPairs("CNO", "GHOST", "S", "F78", "INSTRUCTOR", "X"))
	fmt.Printf("    with centralized existence constraints: %v\n", err)

	fmt.Println("\n(b) CODASYL model, AUTOMATIC/MANDATORY (Figure 3.1b):")
	net := netstore.NewDB(schema.SchoolNetwork())
	ns := netstore.NewSession(net)
	_, st, _ := ns.Store("COURSE-OFFERING", value.FromPairs("CNO", "X", "S", "Y", "INSTRUCTOR", "Z"))
	fmt.Printf("    STORE offering with no current COURSE/SEMESTER: DB-STATUS %v\n", st)
	ns.Store("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	ns.Store("SEMESTER", value.FromPairs("S", "F78", "YEAR", 1978))
	ns.FindAny("COURSE", value.FromPairs("CNO", "CS101"))
	ns.FindAny("SEMESTER", value.FromPairs("S", "F78"))
	ns.FindAny("COURSE", value.FromPairs("CNO", "CS101"))
	_, st, _ = ns.Store("COURSE-OFFERING", value.FromPairs("CNO", "CS101", "S", "F78", "INSTRUCTOR", "Taylor"))
	fmt.Printf("    STORE with both owners current: DB-STATUS %v\n", st)
	ns.FindAny("COURSE", value.FromPairs("CNO", "CS101"))
	ns.Erase("COURSE")
	fmt.Printf("    ERASE course cascades MANDATORY offerings: offerings left = %d\n",
		net.Count("COURSE-OFFERING"))

	fmt.Println("\n(c) the rule no 1979 model holds (centralized here):")
	rel3 := relstore.NewDB(schema.SchoolRelational())
	rel3.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	for _, s := range []struct {
		sem  string
		year int
	}{{"F78", 1978}, {"W78", 1978}, {"S78", 1978}} {
		rel3.Insert("SEMESTER", value.FromPairs("S", s.sem, "YEAR", s.year))
		rel3.Insert("COURSE-OFFERING", value.FromPairs("CNO", "CS101", "S", s.sem, "INSTRUCTOR", "T"))
	}
	for _, v := range constraint.CheckAll(constraint.SchoolRules(), constraint.FromRelational(rel3)) {
		fmt.Printf("    violation: %s\n", v)
	}
}

// ---- EXP-F4.1 ----

func expF41() {
	banner("EXP-F4.1", "The Figure 4.1 pipeline end to end (Supervisor report)")
	progs := []*dbprog.Program{
		mustParse(`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`),
		mustParse(`
PROGRAM COUNT-SALES DIALECT NETWORK.
  LET N = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'SALES EMPLOYEES', N.
END PROGRAM.
`),
		mustParse(`
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`),
		mustParse(`
PROGRAM OPERATOR DIALECT NETWORK.
  ACCEPT MODE.
  IF MODE = 'W'
    STORE DIV.
  END-IF.
END PROGRAM.
`),
	}
	sup := core.NewSupervisor()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, companyV1DB(), progs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(report)
}

// ---- EXP-F4.3 ----

const figure43DDL = `
SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;
  RECORD NAME IS DIV.
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME PIC X(5).
      AGE PIC 9(2).
      DIV-NAME VIRTUAL
        VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
    OWNER IS DIV.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
    INSERTION IS AUTOMATIC.
    RETENTION IS MANDATORY.
  END SET.
END SET SECTION.
END SCHEMA.
`

func expF43() {
	banner("EXP-F4.3", "Figure 4.3 schema parsed verbatim; both §4.2 FIND examples run")
	sch, err := ddl.ParseNetwork(figure43DDL)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Printf("parsed schema %s: %d record types, %d set types\n",
		sch.Name, len(sch.Records), len(sch.Sets))
	db := companyV1DB()
	ev := mdml.NewEvaluator(db)
	for _, q := range []string{
		"FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))",
		"FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES'))",
	} {
		f, err := mdml.ParseFind(q)
		if err != nil {
			fmt.Println("  parse:", err)
			continue
		}
		ids, err := ev.Eval(f)
		if err != nil {
			fmt.Println("  eval:", err)
			continue
		}
		fmt.Printf("\n  %s\n", q)
		for _, r := range ev.Records(ids) {
			fmt.Printf("    %s\n", r)
		}
	}
}

// ---- EXP-F4.4 ----

func expF44() {
	banner("EXP-F4.4", "Figure 4.2→4.4 restructuring: schema, data, and both FINDs converted")
	plan := figurePlan()
	v2, _ := plan.ApplySchema(schema.CompanyV1())
	same := v2.DDL() == schema.CompanyV2().DDL()
	fmt.Printf("transformed schema matches Figure 4.4 exactly: %v\n", same)

	for _, src := range []string{
		`PROGRAM EX1 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.`,
		`PROGRAM EX2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.`,
	} {
		p := mustParse(src)
		res, err := convert.Convert(context.Background(), p, schema.CompanyV1(), plan)
		if err != nil || !res.Auto {
			fmt.Printf("  conversion failed: %v %v\n", res, err)
			continue
		}
		opt, _ := optimizer.Optimize(context.Background(), res.Program, v2)
		v1db := companyV1DB()
		v2db, _ := plan.MigrateData(v1db)
		verdict := equiv.Check(context.Background(), p, dbprog.Config{Net: v1db}, opt, dbprog.Config{Net: v2db})
		fmt.Printf("\n  source:\n%s", indent(dbprog.Format(p), 4))
		fmt.Printf("  converted:\n%s", indent(dbprog.Format(opt), 4))
		fmt.Printf("  I/O equivalent: %v\n", verdict.Equal)
	}
}

// ---- EXP-S4.1a ----

func expS41a() {
	banner("EXP-S4.1a", "§4.1 access-pattern derivation (the paper's worked example)")
	q, _ := sequel.ParseQuery(`
SELECT ENAME FROM EMP WHERE E# IN
  (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN
    (SELECT D# FROM DEPT WHERE MGR = 'SMITH'))`)
	fmt.Printf("query:\n%s\n\n", indent(q.String(), 2))
	seq, err := analyzer.DeriveSequence(context.Background(), q, semantic.PersonnelSchema())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("derived sequence:\n%s", indent(seq.String(), 2))
}

// ---- EXP-S4.1b ----

func expS41b() {
	banner("EXP-S4.1b", "§4.1 cross-model template synthesis (templates A and B)")
	sem := semantic.PersonnelSchema()
	seq := &semantic.Sequence{
		Steps: []semantic.Step{
			{Kind: semantic.ViaSelf, Target: "DEPT", Via: "DEPT", CondFields: []string{"D#"}},
			{Kind: semantic.AssocViaSide, Target: "EMP-DEPT", Via: "DEPT", CondFields: []string{"YEAR-OF-SERVICE"}},
			{Kind: semantic.ViaAssoc, Target: "EMP", Via: "EMP-DEPT"},
		},
		Op: semantic.Retrieve,
	}
	bind := generator.Binding{
		{Field: "D#", Op: "=", V: value.Str("D2")},
		{Field: "YEAR-OF-SERVICE", Op: "=", V: value.Of(3)},
	}
	sq, err := generator.ToSequel(context.Background(), seq, sem, bind, []string{"ENAME"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("template (A), SEQUEL:\n%s\n", indent(sq, 2))
	prog, err := generator.ToNetworkProgram(context.Background(), "TPL-B", seq, sem, schema.EmpDeptNetwork(), bind, []string{"ENAME"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\ntemplate (B), CODASYL:\n%s", indent(dbprog.Format(prog), 2))
}

// ---- EXP-C1 ----

func expC1() {
	banner("EXP-C1", "§2.1.1 claim: 65-70% automatic success rate over a program inventory")
	fmt.Println("\nconversion: Figure 4.2→4.4 split, strict policy (no accepted order changes)")
	fmt.Printf("\n%-44s %6s %10s %8s %10s %9s %9s\n",
		"hazard mix", "auto", "qualified", "manual", "wall", "analyze", "convert")
	profiles := []struct {
		name string
		p    corpus.Profile
	}{
		{"clean inventory (no hazards)", func() corpus.Profile {
			p := corpus.PeriodProfile(42)
			p.RateRunTimeVariability, p.RateOrderDependence, p.RateViewUpdate = 0, 0, 0
			p.RateStatusCode, p.RateProcessFirst = 0, 0
			return p
		}()},
		{"period-realistic mix (default)", corpus.PeriodProfile(42)},
		{"hazard-heavy shop", func() corpus.Profile {
			p := corpus.PeriodProfile(42)
			p.RateRunTimeVariability, p.RateOrderDependence, p.RateViewUpdate = 0.20, 0.25, 0.15
			return p
		}()},
	}
	tally := obs.NewTally()
	for _, row := range profiles {
		members, err := corpus.Programs(row.p)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		progs := make([]*dbprog.Program, len(members))
		for i, m := range members {
			progs[i] = m.Program
		}
		sup := core.NewSupervisor()
		sup.Verify = false
		sup.Metrics = obs.NewRecorder()
		sup.Events = tally
		report, err := sup.Run(context.Background(), schema.CompanyV1(), nil, figurePlan(), nil, progs)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		auto, qualified, manual := report.Counts()
		m := report.Metrics
		fmt.Printf("%-44s %5d%% %9d%% %7d%% %10s %9s %9s\n", row.name, auto, qualified, manual,
			m.Wall.Round(time.Microsecond),
			m.Stage(obs.StageAnalyze).Mean().Round(time.Microsecond),
			m.Stage(obs.StageConvert).Mean().Round(time.Microsecond))
	}
	fmt.Println("\n(wall = batch elapsed on the concurrent supervisor;",
		"analyze/convert = mean per-program stage time)")
	snap := tally.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("\nevent-log tally across the three strict runs:")
	for _, k := range keys {
		fmt.Printf("  %-32s %6d\n", k, snap[k])
	}
	fmt.Println("\nshape target: the period-realistic row lands in the paper's 65-70% band.")
	fmt.Println("With an analyst accepting order changes, the qualified share converts too:")
	members, _ := corpus.Programs(corpus.PeriodProfile(42))
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	sup := &core.Supervisor{Analyst: core.Policy{AcceptOrderChanges: true}, Verify: false}
	report, _ := sup.Run(context.Background(), schema.CompanyV1(), nil, figurePlan(), nil, progs)
	auto, qualified, manual := report.Counts()
	fmt.Printf("  accepting analyst: %d%% auto + %d%% qualified = %d%% converted, %d%% manual\n",
		auto, qualified, auto+qualified, manual)
}

// ---- EXP-C2 ----

func expC2() {
	banner("EXP-C2", "§2.1.2 claim: emulation and bridge strategies degrade efficiency")
	fmt.Println("\nworkload: Q queries 'employees of one department of one division',")
	fmt.Println("run against the restructured (Figure 4.4) database by each strategy.")
	fmt.Printf("\n%-10s %8s  %12s %12s %14s %14s %12s\n",
		"DB size", "queries", "rewrite", "emulate", "bridge(cold)", "bridge(warm)", "conv(wall)")
	var lastConv *obs.Metrics
	for _, scale := range []struct {
		name    string
		divs    int
		depts   int
		emps    int
		queries int
	}{
		{"small", 4, 3, 5, 50},
		{"medium", 8, 6, 12, 50},
		{"large", 12, 10, 25, 50},
	} {
		prof := corpus.Profile{Seed: 42, Divisions: scale.divs,
			DeptsPerDiv: scale.depts, EmpsPerDept: scale.emps}
		src := corpus.Database(prof)
		plan := figurePlan()
		target, err := plan.MigrateData(src)
		if err != nil {
			fmt.Println("error:", err)
			return
		}

		rewriteT := timeRewrite(target, scale.queries, scale.divs, scale.depts)
		emulateT := timeEmulate(src.Schema(), target, plan, scale.queries, scale.divs, scale.depts)
		coldT, warmT := timeBridge(src.Schema(), target, plan, scale.queries, scale.divs, scale.depts)

		// The one-time rewrite cost the strategies amortize: converting Q
		// itself through the instrumented supervisor.
		q := fmt.Sprintf(`
PROGRAM Q DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'DIV-%02d'), DIV-EMP, EMP(DEPT-NAME = 'D-%02d')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`, 1%scale.divs, 1%scale.depts)
		prog, err := dbprog.Parse(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sup := core.NewSupervisor()
		sup.Verify = false
		sup.Metrics = obs.NewRecorder()
		report, err := sup.Run(context.Background(), src.Schema(), nil, plan, nil,
			[]*dbprog.Program{prog})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		lastConv = report.Metrics

		fmt.Printf("%-10s %8d  %10.1fµs %10.1fµs %12.1fµs %12.1fµs %12s   (per query)\n",
			scale.name, scale.queries,
			us(rewriteT, scale.queries), us(emulateT, scale.queries),
			us(coldT, scale.queries), us(warmT, scale.queries),
			report.Metrics.Wall.Round(time.Microsecond))
	}
	if lastConv != nil {
		fmt.Printf("\nper-stage cost of converting Q (one-time, amortized by rewrite):\n")
		for _, st := range obs.Stages() {
			s := lastConv.Stage(st)
			if s.Count == 0 {
				continue
			}
			fmt.Printf("  %-10s %10s\n", st, s.Mean().Round(time.Microsecond))
		}
	}
	fmt.Println("\nshape target: rewrite fastest; emulation slower by a growing factor")
	fmt.Println("(per-call mapping + chain walking); cold bridge worst (reconstruction),")
	fmt.Println("warm bridge approaches rewrite only because the reconstruction is cached.")
}

func us(d time.Duration, q int) float64 {
	return float64(d.Microseconds()) / float64(q)
}

func timeRewrite(target *netstore.DB, queries, divs, depts int) time.Duration {
	ev := mdml.NewEvaluator(target)
	start := time.Now()
	for q := 0; q < queries; q++ {
		div := fmt.Sprintf("DIV-%02d", q%divs)
		dept := fmt.Sprintf("D-%02d", q%depts)
		f, _ := mdml.ParseFind(fmt.Sprintf(
			"FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = '%s'), DIV-DEPT, DEPT(DEPT-NAME = '%s'), DEPT-EMP, EMP)",
			div, dept))
		ids, err := ev.Eval(f)
		if err != nil {
			panic(err)
		}
		_ = ev.Records(ids)
	}
	return time.Since(start)
}

func timeEmulate(srcSchema *schema.Network, target *netstore.DB, plan *xform.Plan,
	queries, divs, depts int) time.Duration {
	start := time.Now()
	for q := 0; q < queries; q++ {
		em, err := emulate.NewSession(srcSchema, target, plan)
		if err != nil {
			panic(err)
		}
		div := fmt.Sprintf("DIV-%02d", q%divs)
		dept := fmt.Sprintf("D-%02d", q%depts)
		em.FindAny("DIV", value.FromPairs("DIV-NAME", div))
		match := value.FromPairs("DEPT-NAME", dept)
		st, err := em.FindInSet("DIV-EMP", netstore.First, match)
		for err == nil && st == netstore.OK {
			if _, _, gerr := em.Get("EMP"); gerr != nil {
				panic(gerr)
			}
			st, err = em.FindInSet("DIV-EMP", netstore.Next, match)
		}
		if err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

func timeBridge(srcSchema *schema.Network, target *netstore.DB, plan *xform.Plan,
	queries, divs, depts int) (cold, warm time.Duration) {
	sweep := func(db *netstore.DB, q int) {
		s := netstore.NewSession(db)
		div := fmt.Sprintf("DIV-%02d", q%divs)
		dept := fmt.Sprintf("D-%02d", q%depts)
		s.FindAny("DIV", value.FromPairs("DIV-NAME", div))
		match := value.FromPairs("DEPT-NAME", dept)
		st, _ := s.FindInSet("DIV-EMP", netstore.First, match)
		for st == netstore.OK {
			s.Get("EMP")
			st, _ = s.FindInSet("DIV-EMP", netstore.Next, match)
		}
	}
	// Cold: a fresh bridge per query (reconstruction every time).
	start := time.Now()
	for q := 0; q < queries; q++ {
		b, err := bridge.New(srcSchema, target, plan)
		if err != nil {
			panic(err)
		}
		recon, err := b.Reconstruct()
		if err != nil {
			panic(err)
		}
		sweep(recon, q)
	}
	cold = time.Since(start)
	// Warm: one bridge, reconstruction cached across the batch.
	b, _ := bridge.New(srcSchema, target, plan)
	start = time.Now()
	for q := 0; q < queries; q++ {
		recon, _ := b.Reconstruct()
		sweep(recon, q)
	}
	warm = time.Since(start)
	return cold, warm
}

// ---- EXP-C3 ----

func expC3() {
	banner("EXP-C3", "Mehl & Wang hierarchy order transformation (§2.2)")
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	for d := 0; d < 6; d++ {
		s.ISRT(value.FromPairs("D#", fmt.Sprintf("D%02d", d),
			"DNAME", fmt.Sprintf("DEPT-%02d", d), "MGR", "SMITH"), hierstore.U("DEPT"))
		for e := 0; e < 8; e++ {
			s.ISRT(value.FromPairs(
				"E#", fmt.Sprintf("E%02d-%02d", d, e), "ENAME", fmt.Sprintf("EMP-%02d-%02d", d, e),
				"AGE", 20+e, "YEAR-OF-SERVICE", e),
				hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str(fmt.Sprintf("D%02d", d))),
				hierstore.U("EMP"))
		}
	}
	tr := xform.HierReorder{Promote: "EMP"}
	dstSchema, _ := tr.ApplySchema(db.Schema())
	dst, warnings, err := tr.MigrateData(db, dstSchema)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pairs, err := tr.ReorderedValueEqual(db, dst)
	fmt.Printf("reordered %d (parent,child) pairs, fidelity check: %v, warnings: %d\n",
		pairs, err == nil, len(warnings))

	// Old program's query, native vs substituted, with timing.
	oldPath := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D03")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.EQ, value.Of(5)),
	}
	oldSess := hierstore.NewSession(db)
	rec, _ := oldSess.GU(oldPath...)
	newSess := hierstore.NewSession(dst)
	rec2, st := tr.EmulateGU(newSess, "DEPT", oldPath)
	fmt.Printf("old-order GU answer %s; substituted command sequence answer %s (status %v)\n",
		rec.MustGet("ENAME"), rec2.MustGet("ENAME"), st)

	const reps = 2000
	start := time.Now()
	for i := 0; i < reps; i++ {
		oldSess.GU(oldPath...)
	}
	native := time.Since(start)
	start = time.Now()
	for i := 0; i < reps; i++ {
		tr.EmulateGU(newSess, "DEPT", oldPath)
	}
	emulated := time.Since(start)
	fmt.Printf("per-call cost: native GU %.1fµs, substituted sequence %.1fµs (x%.1f)\n",
		us(native, reps), us(emulated, reps), float64(emulated)/float64(native))
}

// ---- EXP-C4 ----

func expC4() {
	banner("EXP-C4", "Housel's restriction: which transformations admit inverse mappings")
	src := schema.CompanyV1()
	catalog := []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "WORKER"},
		xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-STAFF"},
		xform.AddField{Record: "EMP", Field: "SALARY", Kind: value.Int, Default: value.Of(0)},
		xform.DropField{Record: "EMP", Field: "AGE"},
		xform.ChangeSetKeys{Set: "DIV-EMP", Keys: []string{"AGE"}},
		xform.ChangeRetention{Set: "DIV-EMP", Retention: schema.Optional},
		xform.IntroduceIntermediate{Set: "DIV-EMP", Inter: "DEPT",
			GroupField: "DEPT-NAME", Upper: "DIV-DEPT", Lower: "DEPT-EMP"},
	}
	fmt.Printf("\n%-26s %-12s %s\n", "transformation", "invertible", "inverse / reason")
	invertibleCount := 0
	for _, t := range catalog {
		inv, err := xform.Inverse(t, src)
		if err != nil {
			fmt.Printf("%-26s %-12v %v\n", t.Name(), t.Invertible(), err)
			continue
		}
		invertibleCount++
		fmt.Printf("%-26s %-12v %s\n", t.Name(), t.Invertible(), inv.Name())
	}
	fmt.Printf("\n%d of %d catalogued transformations admit inverse data mappings;\n",
		invertibleCount, len(catalog))
	fmt.Println("bridge programs (and Housel-style substitution) are confined to those.")
}

// ---- EXP-C5 ----

func expC5() {
	banner("EXP-C5", "pair-scoped conversion cache: cold vs warm re-conversion across cache sizes")
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	// Three distinct schema pairs over the same source: a batch shop
	// cycling through plan variants, the workload the pair cache exists
	// for.
	jobs := []core.Job{
		{Src: schema.CompanyV1(), Plan: figurePlan(), Programs: progs},
		{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
			xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
		}}, Programs: progs},
		{Src: schema.CompanyV1(), Plan: &xform.Plan{Steps: []xform.Transformation{
			xform.RenameSet{Old: "DIV-EMP", New: "DIV-STAFF"},
		}}, Programs: progs},
	}
	fmt.Printf("\ncorpus: %d programs × %d plan variants, two conversion rounds per cache\n",
		len(progs), len(jobs))
	fmt.Printf("\n%-10s %10s %10s %8s %8s %8s %8s\n",
		"cache", "cold", "warm", "speedup", "hits", "misses", "evicted")
	for _, size := range []int{1, 2, 8} {
		cache := plancache.New(size)
		round := func() time.Duration {
			start := time.Now()
			sup := core.NewSupervisor()
			sup.Verify = false
			sup.Cache = cache
			if _, err := sup.RunJobs(context.Background(), jobs); err != nil {
				panic(err)
			}
			return time.Since(start)
		}
		cold := round()
		warm := round()
		s := cache.Stats()
		hits := s.PairHits + s.AnalysisHits + s.ConversionHits + s.CodegenHits
		misses := s.PairMisses + s.AnalysisMisses + s.ConversionMisses + s.CodegenMisses
		evicted := s.PairEvictions + s.AnalysisEvictions + s.ConversionEvictions + s.CodegenEvictions
		fmt.Printf("%-10s %10s %10s %7.1fx %8d %8d %8d\n",
			fmt.Sprintf("pairs=%d", size),
			cold.Round(time.Microsecond), warm.Round(time.Microsecond),
			float64(cold)/float64(warm), hits, misses, evicted)
	}
	fmt.Println("\n(cold = first round, every pair built and every program analyzed,")
	fmt.Println(" converted and generated; warm = second round over the same cache.")
	fmt.Println(" pairs=1 thrashes: three variants round-robin through one slot, so")
	fmt.Println(" warm pair lookups still miss; pairs>=3 makes the warm round all hits.)")
}

// ---- EXP-C6 ----

// fourStepPlan is the fusible migration fixture shared with the root
// BenchmarkFusedMigration: four per-record mapping steps over CompanyV1.
func fourStepPlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		xform.RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		xform.AddField{Record: "EMPLOYEE", Field: "STATUS", Kind: value.String, Default: value.Str("ACTIVE")},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-EMPLOYEE"},
	}}
}

func expC6() {
	banner("EXP-C6", "data-plane fast path: keyed indexes, fused migration, parallel verification")

	// (a) Exact-key FIND over 1000 employees: index probe vs full scan.
	db := corpus.Database(corpus.Profile{Seed: 7, Divisions: 10, DeptsPerDiv: 10, EmpsPerDept: 10})
	match := value.FromPairs("EMP-NAME", "E-00500")
	const reps = 5000
	sess := netstore.NewSession(db)
	start := time.Now()
	for i := 0; i < reps; i++ {
		sess.FindAny("EMP", match)
	}
	indexed := time.Since(start)
	db.SetIndexing(false)
	start = time.Now()
	for i := 0; i < reps; i++ {
		sess.FindAny("EMP", match)
	}
	scanned := time.Since(start)
	db.SetIndexing(true)
	probes, scans := db.IndexStatsOf().Snapshot()
	fmt.Printf("\n(a) FIND ANY EMP by EMP-NAME (the DIV-EMP set key) over %d employees, %d calls each way:\n",
		db.Count("EMP"), reps)
	fmt.Printf("    indexed %.2fµs/call vs scan %.2fµs/call — x%.1f; counters: %d probes, %d scans\n",
		us(indexed, reps), us(scanned, reps), float64(scanned)/float64(indexed), probes, scans)

	// (b) Four fusible steps as one pass vs four passes.
	mdb := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan4 := fourStepPlan()
	const mreps = 20
	var fuse xform.FuseStats
	start = time.Now()
	for i := 0; i < mreps; i++ {
		var err error
		if _, fuse, err = plan4.MigrateDataFused(mdb); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fused := time.Since(start)
	start = time.Now()
	for i := 0; i < mreps; i++ {
		if _, err := plan4.MigrateDataStepwise(mdb); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	stepwise := time.Since(start)
	fmt.Printf("\n(b) 4-step fusible migration of %d records, %d runs each way:\n",
		mdb.Count("DIV")+mdb.Count("EMP"), mreps)
	fmt.Printf("    fused %.0fµs/run (%d steps in %d pass) vs stepwise %.0fµs/run (%d passes) — x%.1f\n",
		us(fused, mreps), fuse.FusedSteps, fuse.Passes,
		us(stepwise, mreps), len(plan4.Steps), float64(stepwise)/float64(fused))

	// (c) A verified conversion batch: source and converted programs run
	// concurrently per check, the report surfaces the data-plane counters,
	// and the rendered report is byte-identical at parallelism 1 and 8,
	// with the verify database's indexes on and off.
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	run := func(parallelism int, indexes bool) *core.Report {
		vdb := corpus.Database(corpus.Profile{Seed: 42, Divisions: 3, DeptsPerDiv: 3, EmpsPerDept: 4})
		vdb.SetIndexing(indexes)
		sup := core.NewSupervisor()
		sup.Parallelism = parallelism
		report, err := sup.Run(context.Background(), schema.CompanyV1(), nil, figurePlan(), vdb, progs)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(int(wire.ExitError))
		}
		return report
	}
	r1 := run(1, true)
	r8 := run(8, true)
	n1 := run(1, false)
	n8 := run(8, false)
	fmt.Printf("\n(c) verified conversion batch, %d programs:\n", len(progs))
	dp, ndp := r8.DataPlane, n8.DataPlane
	fmt.Printf("    indexed verify DB: %d index probes, %d scans; migration %d fused / %d stepwise steps\n",
		dp.IndexProbes, dp.IndexScans, dp.FusedSteps, dp.StepwiseSteps)
	fmt.Printf("    scan-only verify DB: %d index probes, %d scans\n", ndp.IndexProbes, ndp.IndexScans)
	same := r1.String() == r8.String() && r1.String() == n1.String() && n1.String() == n8.String()
	fmt.Printf("    report byte-identical at parallelism 1 and 8, indexes on and off: %v\n", same)
}

func expC7() {
	banner("EXP-C7", "sharded parallel migration: bulk-load rebuild vs the serial fused pass")
	fmt.Printf("\nenvironment: GOMAXPROCS=%d — shard speedup needs cores; the\n", runtime.GOMAXPROCS(0))
	fmt.Println("allocation and bulk-load gains below hold on any machine")

	// (a) The EXP-C6 migration fixture through the sharded rebuild.
	mdb := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan4 := fourStepPlan()
	ctx := context.Background()
	const mreps = 20
	start := time.Now()
	for i := 0; i < mreps; i++ {
		if _, _, err := plan4.MigrateDataFused(mdb); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	serial := time.Since(start)
	serialOut, _, err := plan4.MigrateDataFused(mdb)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\n(a) 4-step migration of %d records, %d runs per configuration:\n",
		mdb.Count("DIV")+mdb.Count("EMP"), mreps)
	fmt.Printf("    serial fused                %8.0fµs/run\n", us(serial, mreps))
	for _, par := range []int{1, 2, 8} {
		start = time.Now()
		var stats xform.MigrateStats
		for i := 0; i < mreps; i++ {
			if _, stats, err = plan4.Migrate(ctx, mdb, xform.MigrateOptions{Parallelism: par}); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		elapsed := time.Since(start)
		out, _, err := plan4.Migrate(ctx, mdb, xform.MigrateOptions{Parallelism: par})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		identical := out.Len() == serialOut.Len() && out.IndexDump() == serialOut.IndexDump()
		fmt.Printf("    parallel (%d shard workers) %8.0fµs/run — x%.1f; %d shards, %d bulk-loaded records, identical: %v\n",
			par, us(elapsed, mreps), float64(serial)/float64(elapsed),
			stats.Shards, stats.BulkRecords, identical)
	}

	// (b) End to end through the supervisor: the rendered report is
	// byte-identical whether the migration runs serial or 8-way.
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	run := func(migratePar int) *core.Report {
		vdb := corpus.Database(corpus.Profile{Seed: 42, Divisions: 3, DeptsPerDiv: 3, EmpsPerDept: 4})
		sup := core.NewSupervisor()
		sup.MigrationParallelism = migratePar
		report, err := sup.Run(context.Background(), schema.CompanyV1(), nil, fourStepPlan(), vdb, progs)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(int(wire.ExitError))
		}
		return report
	}
	r1, r8 := run(1), run(8)
	fmt.Printf("\n(b) verified conversion batch, %d programs:\n", len(progs))
	fmt.Printf("    migration shards: %d serial vs %d at 8 workers; bulk-loaded records: %d vs %d\n",
		r1.DataPlane.MigrationShards, r8.DataPlane.MigrationShards,
		r1.DataPlane.BulkLoadedRecords, r8.DataPlane.BulkLoadedRecords)
	fmt.Printf("    report byte-identical at migration parallelism 1 and 8: %v\n",
		r1.String() == r8.String())
}

// benchJSON measures the data-plane benchmarks with testing.Benchmark
// and writes name/ns-per-op/allocs-per-op rows as a wire-versioned
// JSON document. The target name selects the set: BENCH_PR10.json gets
// the EXP-C7 sharded-migration rows, anything else the EXP-C6 set.
func benchJSON(out string) error {
	type row = wire.BenchRow
	bench := func(name string, fn func(b *testing.B)) row {
		r := testing.Benchmark(fn)
		return row{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
	}
	if strings.HasSuffix(out, "BENCH_PR10.json") {
		return benchJSONParallel(out, bench)
	}

	pipeProgs := []*dbprog.Program{
		mustParse(`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`),
		mustParse(`
PROGRAM COUNT DIALECT NETWORK.
  LET N = 0.
  MOVE 'DIV-00' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT N.
END PROGRAM.
`),
	}
	pipeDB := corpus.Database(corpus.Profile{Seed: 1, Divisions: 2, DeptsPerDiv: 2, EmpsPerDept: 3})
	findDB := corpus.Database(corpus.Profile{Seed: 7, Divisions: 10, DeptsPerDiv: 10, EmpsPerDept: 10})
	match := value.FromPairs("EMP-NAME", "E-00500")
	migDB := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan4 := fourStepPlan()

	rows := []row{
		bench("pipeline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sup := core.NewSupervisor()
				if _, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(),
					nil, pipeDB.Clone(), pipeProgs); err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("find_indexed", func(b *testing.B) {
			findDB.SetIndexing(true)
			s := netstore.NewSession(findDB)
			for i := 0; i < b.N; i++ {
				if st, err := s.FindAny("EMP", match); err != nil || st != netstore.OK {
					b.Fatal(st, err)
				}
			}
		}),
		bench("find_scan", func(b *testing.B) {
			findDB.SetIndexing(false)
			s := netstore.NewSession(findDB)
			for i := 0; i < b.N; i++ {
				if st, err := s.FindAny("EMP", match); err != nil || st != netstore.OK {
					b.Fatal(st, err)
				}
			}
		}),
		bench("migration_fused", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan4.MigrateDataFused(migDB); err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("migration_stepwise", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan4.MigrateDataStepwise(migDB); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	doc := wire.BenchDoc{
		V:          wire.Version,
		Note:       "generated by `exper bench-json`: ns/op and allocs/op for the data-plane fast-path benchmarks (see EXPERIMENTS.md EXP-C6)",
		Benchmarks: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// benchJSONParallel writes the EXP-C7 set: the serial fused migration
// against the sharded bulk-load rebuild at 1, 2 and 8 shard workers,
// over the same 1000-employee database the EXP-C6 migration rows use.
func benchJSONParallel(out string, bench func(string, func(*testing.B)) wire.BenchRow) error {
	migDB := corpus.Database(corpus.Profile{Seed: 7, Divisions: 8, DeptsPerDiv: 5, EmpsPerDept: 25})
	plan4 := fourStepPlan()
	ctx := context.Background()

	rows := []wire.BenchRow{
		bench("migration_serial_fused", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan4.MigrateDataFused(migDB); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
	for _, par := range []int{1, 2, 8} {
		par := par
		rows = append(rows, bench(fmt.Sprintf("migration_parallel_%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := plan4.Migrate(ctx, migDB, xform.MigrateOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	doc := wire.BenchDoc{
		V: wire.Version,
		Note: "generated by `exper bench-json BENCH_PR10.json`: ns/op and allocs/op for the sharded parallel migration " +
			"(see EXPERIMENTS.md EXP-C7; output is byte-identical to migration_serial_fused at every shard count)",
		Benchmarks: rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}

// ---- EXP-H1 ----

func expH1() {
	banner("EXP-H1", "§3.2 hazard detector audit over a labelled corpus")
	p := corpus.PeriodProfile(42)
	members, err := corpus.Programs(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	type cell struct{ tp, fp, fn int }
	byHazard := map[analyzer.IssueKind]*cell{
		analyzer.RunTimeVariability:   {},
		analyzer.ProcessFirst:         {},
		analyzer.StatusCodeDependence: {},
	}
	expected := map[corpus.Kind]analyzer.IssueKind{
		corpus.HazardRTV:        analyzer.RunTimeVariability,
		corpus.WarnStatusCode:   analyzer.StatusCodeDependence,
		corpus.WarnProcessFirst: analyzer.ProcessFirst,
	}
	isLabelled := func(k corpus.Kind, kind analyzer.IssueKind) bool {
		want, ok := expected[k]
		return ok && want == kind
	}
	for _, m := range members {
		abs := analyzer.Analyze(context.Background(), m.Program, schema.CompanyV1())
		found := map[analyzer.IssueKind]bool{}
		for _, i := range abs.Issues {
			found[i.Kind] = true
		}
		for kind, c := range byHazard {
			labelled := isLabelled(m.Kind, kind)
			switch {
			case labelled && found[kind]:
				c.tp++
			case labelled && !found[kind]:
				c.fn++
			case !labelled && found[kind]:
				c.fp++
			}
		}
	}
	fmt.Printf("\n%-26s %4s %4s %4s  %s\n", "hazard", "tp", "fp", "fn", "precision/recall")
	names := []analyzer.IssueKind{analyzer.RunTimeVariability, analyzer.StatusCodeDependence, analyzer.ProcessFirst}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, k := range names {
		c := byHazard[k]
		prec, rec := 1.0, 1.0
		if c.tp+c.fp > 0 {
			prec = float64(c.tp) / float64(c.tp+c.fp)
		}
		if c.tp+c.fn > 0 {
			rec = float64(c.tp) / float64(c.tp+c.fn)
		}
		fmt.Printf("%-26s %4d %4d %4d  %.2f / %.2f\n", k, c.tp, c.fp, c.fn, prec, rec)
	}
}

// expR1 demonstrates the resilience layer: a 50-program batch at
// parallelism 8 absorbs an injected panic, a forced stage timeout, and
// two transient errors, completes under collect-errors, and reconciles
// the event-log fault counters against the injected plan. The report is
// byte-identical to a serial run of the same chaos plan.
func expR1() {
	banner("EXP-R1", "resilience: fault isolation, stage budgets, retries under injected chaos")
	p := corpus.Profile{
		Seed:      42,
		Divisions: 2, DeptsPerDiv: 2, EmpsPerDept: 2,
		Programs:               50,
		RateRunTimeVariability: 0.08,
		RateOrderDependence:    0.12,
		RateViewUpdate:         0.06,
	}
	members, err := corpus.Programs(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	inj := fault.New(1,
		fault.Rule{Kind: fault.Panic, Prog: progs[3].Name, Stage: "convert"},
		fault.Rule{Kind: fault.Delay, Prog: progs[10].Name, Stage: "analyze", Delay: 10 * time.Second},
		fault.Rule{Kind: fault.Transient, Prog: progs[20].Name, Stage: "analyze"},
		fault.Rule{Kind: fault.Transient, Prog: progs[30].Name, Stage: "analyze"},
	)
	fmt.Printf("\ninjected chaos plan over %d programs:\n", len(progs))
	fmt.Printf("  panic      %s/convert\n", progs[3].Name)
	fmt.Printf("  delay 10s  %s/analyze (stage budget 400ms forces a timeout)\n", progs[10].Name)
	fmt.Printf("  transient  %s/analyze, %s/analyze (2 retries armed)\n",
		progs[20].Name, progs[30].Name)

	run := func(parallelism int) (*core.Report, *obs.Tally) {
		tally := obs.NewTally()
		sup := &core.Supervisor{
			Analyst:       core.Policy{},
			Parallelism:   parallelism,
			Events:        tally,
			StageTimeout:  400 * time.Millisecond,
			Retries:       2,
			Sleep:         func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
			FailurePolicy: core.CollectErrors,
		}
		ctx := fault.With(context.Background(), inj)
		report, err := sup.Run(ctx, schema.CompanyV1(), nil, figurePlan(), nil, progs)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(int(wire.ExitError))
		}
		return report, tally
	}

	serial, _ := run(1)
	parallel, tally := run(8)

	auto, qualified, manual := parallel.Counts()
	fmt.Printf("\nbatch completed under collect-errors: %d auto, %d qualified, %d manual, %d failed\n",
		auto, qualified, manual, parallel.FailedCount())
	for _, o := range parallel.Outcomes {
		if f := o.Audit.Failure; f != nil {
			fmt.Printf("  x %-10s %s\n", o.Name, f.Error())
		}
		for _, r := range o.Audit.Retries {
			fmt.Printf("  ^ %-10s retry %d of %s after %s: %v\n",
				o.Name, r.Attempt, r.Stage, r.Backoff, r.Err)
		}
	}
	fmt.Println("\nevent-log fault counters (parallel run) vs injected plan:")
	faults := tally.Faults()
	keys := make([]string, 0, len(faults))
	for k := range faults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %d\n", k, faults[k])
	}
	if serial.String() == parallel.String() {
		fmt.Println("\nreport byte-identical at parallelism 1 and 8: yes")
	} else {
		fmt.Println("\nreport byte-identical at parallelism 1 and 8: NO (determinism bug)")
	}
}

func mustParse(src string) *dbprog.Program {
	p, err := dbprog.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// ---- EXP-S1 ----

// serveSpec is the wire-v1 job EXP-S1 submits repeatedly: the COMPANY
// pair, a three-program inventory (two automatic, one qualified), and
// a verify-init program that populates the source database so the
// daemon verifies the automatic conversions it reports.
func serveSpec() wire.JobSpec {
	return wire.JobSpec{
		V:         wire.Version,
		SourceDDL: schema.CompanyV1().DDL(),
		TargetDDL: schema.CompanyV2().DDL(),
		Programs: []wire.ProgramSpec{
			{Source: `
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`},
			{Source: `
PROGRAM COUNT-SALES DIALECT NETWORK.
  LET N = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'SALES EMPLOYEES', N.
END PROGRAM.
`},
			{Source: `
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`},
		},
		Options: wire.JobOptions{
			Parallelism: 2,
			VerifyInit: `
PROGRAM INIT-DB DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  MOVE 'DETROIT' TO DIV-LOC IN DIV.
  STORE DIV.
  MOVE 'TEXTILES' TO DIV-NAME IN DIV.
  MOVE 'ATLANTA' TO DIV-LOC IN DIV.
  STORE DIV.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'ADAMS' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 45 TO AGE IN EMP.
  STORE EMP.
  MOVE 'BAKER' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 28 TO AGE IN EMP.
  STORE EMP.
  MOVE 'CLARK' TO EMP-NAME IN EMP.
  MOVE 'WELDING' TO DEPT-NAME IN EMP.
  MOVE 33 TO AGE IN EMP.
  STORE EMP.
  MOVE 'TEXTILES' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'DAVIS' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 51 TO AGE IN EMP.
  STORE EMP.
END PROGRAM.
`,
		},
	}
}

// submitS1 posts one job and returns its id, or the non-202 response.
func submitS1(base string, body []byte) (string, *http.Response, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var ed wire.ErrorDoc
		json.NewDecoder(resp.Body).Decode(&ed)
		return "", resp, fmt.Errorf("HTTP %d: %s", resp.StatusCode, ed.Error)
	}
	var st wire.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", resp, err
	}
	return st.ID, resp, nil
}

// waitS1 polls a job until it reaches a terminal state.
func waitS1(base, id string) wire.JobStatus {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var st wire.JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.ExitCode != nil {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// expS1 measures the conversion service end to end: job throughput
// and latency through the shared pair cache, admission control under
// a deliberately tiny queue, and a graceful drain.
func expS1() {
	banner("EXP-S1", "conversion service: throughput, admission control, graceful drain")
	body, err := json.Marshal(serveSpec())
	if err != nil {
		panic(err)
	}

	// (a) Throughput: 24 identical jobs from 8 concurrent submitters on
	// 4 runners sharing one conversion cache. The first jobs pay the
	// plan search; the rest hit the pair cache.
	srv := serve.New(serve.Config{QueueDepth: 32, Runners: 4, Cache: progconv.NewCache(0)})
	ts := httptest.NewServer(srv.Handler())
	const jobs = 24
	var (
		mu   sync.Mutex
		lats []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			id, _, err := submitS1(ts.URL, body)
			if err != nil {
				fmt.Fprintln(os.Stderr, "  submit:", err)
				return
			}
			waitS1(ts.URL, id)
			mu.Lock()
			lats = append(lats, time.Since(t0))
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Printf("\n(a) %d jobs, 8 submitters, 4 runners, shared pair cache:\n", jobs)
	fmt.Printf("    wall time %v, throughput %.1f jobs/s\n",
		wall.Round(time.Millisecond), float64(len(lats))/wall.Seconds())
	if n := len(lats); n > 0 {
		fmt.Printf("    job latency min/median/max = %v / %v / %v\n",
			lats[0].Round(10*time.Microsecond), lats[n/2].Round(10*time.Microsecond),
			lats[n-1].Round(10*time.Microsecond))
	}

	// Every finished report must be byte-identical: same inputs, any
	// submitter, any runner.
	var list struct {
		Jobs []wire.JobStatus `json:"jobs"`
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		panic(err)
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	var first []byte
	identical := true
	for _, st := range list.Jobs {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
		if err != nil {
			panic(err)
		}
		b := new(bytes.Buffer)
		b.ReadFrom(r.Body)
		r.Body.Close()
		if first == nil {
			first = b.Bytes()
		} else if !bytes.Equal(first, b.Bytes()) {
			identical = false
		}
	}
	fmt.Printf("    all %d reports byte-identical: %v\n", len(list.Jobs), identical)
	ts.Close()
	srv.Drain(context.Background())

	// (b) Admission control: queue depth 1, one runner, jobs slowed by
	// the fault injector. Back-to-back submissions overflow the queue
	// and get 429 + Retry-After instead of unbounded buffering.
	slow := serveSpec()
	slow.Options.Inject = "delay=150ms@*/analyze"
	slowBody, _ := json.Marshal(slow)
	srv = serve.New(serve.Config{QueueDepth: 1, Runners: 1, RetryAfter: 2 * time.Second})
	ts = httptest.NewServer(srv.Handler())
	accepted, rejected, retryAfter := 0, 0, ""
	var ids []string
	for i := 0; i < 8; i++ {
		id, resp, err := submitS1(ts.URL, slowBody)
		if err == nil {
			accepted++
			ids = append(ids, id)
		} else if resp != nil && resp.StatusCode == http.StatusTooManyRequests {
			rejected++
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	fmt.Printf("\n(b) queue depth 1, 1 runner, 8 back-to-back submissions of slowed jobs:\n")
	fmt.Printf("    accepted %d, rejected %d with 429 (Retry-After: %ss)\n", accepted, rejected, retryAfter)

	// (c) Graceful drain: admitted jobs finish, new submissions get
	// 503, and finished reports stay readable.
	srv.StartDrain()
	_, resp503, err := submitS1(ts.URL, slowBody)
	code := 0
	if err != nil && resp503 != nil {
		code = resp503.StatusCode
	}
	if err := srv.Wait(context.Background()); err != nil {
		panic(err)
	}
	done := 0
	for _, id := range ids {
		if st := waitS1(ts.URL, id); st.State == "done" {
			done++
		}
	}
	fmt.Printf("\n(c) drain: submission during drain answered %d; all %d admitted jobs finished (%d done)\n",
		code, len(ids), done)
	ts.Close()
}

// s2Spec is the EXP-S2 job: the COMPANY pair with a PAD-<n> field
// spliced into both schemas (distinct pair fingerprints per pad, so
// affinity routing has pairs to spread) and every analyze stage slowed
// by the deterministic fault injector. The delay models production
// conversions that are I/O- or analyst-bound rather than CPU-bound —
// on such workloads fleet capacity is concurrency, which is exactly
// what adding workers buys.
func s2Spec(pad int) wire.JobSpec {
	spec := serveSpec()
	padField := fmt.Sprintf("AGE INT.\n    PAD-%d CHAR.", pad)
	spec.SourceDDL = strings.Replace(spec.SourceDDL, "AGE INT.", padField, 1)
	spec.TargetDDL = strings.Replace(spec.TargetDDL, "AGE INT.", padField, 1)
	spec.Options.Parallelism = 1
	spec.Options.VerifyInit = ""
	spec.Options.Inject = "delay=100ms@*/analyze"
	return spec
}

// s2Fleet boots n workers and a coordinator over them; the returned
// stop function tears everything down.
func s2Fleet(n int) (*dispatch.Coordinator, *httptest.Server, []*httptest.Server, func()) {
	var workers []*httptest.Server
	var servers []*serve.Server
	var urls []string
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{QueueDepth: 64, Runners: 4, Cache: progconv.NewCache(0)})
		ts := httptest.NewServer(srv.Handler())
		servers = append(servers, srv)
		workers = append(workers, ts)
		urls = append(urls, ts.URL)
	}
	co := dispatch.New(dispatch.Config{
		Workers: urls, ProbeInterval: 100 * time.Millisecond, ProbeFailures: 1,
	})
	coTS := httptest.NewServer(co.Handler())
	stop := func() {
		coTS.Close()
		co.Close()
		for _, ts := range workers {
			ts.Close()
		}
	}
	return co, coTS, workers, stop
}

// s2Run pushes the batch through a coordinator with 8 concurrent
// submitters and returns the wall time.
func s2Run(base string, specs []wire.JobSpec) (time.Duration, []string) {
	cli := client.New(base)
	ctx := context.Background()
	ids := make([]string, len(specs))
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			st, err := cli.Submit(ctx, &specs[i])
			if err != nil {
				fmt.Fprintln(os.Stderr, "  s2 submit:", err)
				return
			}
			ids[i] = st.ID
			if _, err := cli.Wait(ctx, st.ID, 0); err != nil {
				fmt.Fprintln(os.Stderr, "  s2 wait:", err)
			}
		}(i)
	}
	wg.Wait()
	return time.Since(start), ids
}

// s2BalancedPads picks n pad values whose schema pairs rendezvous-rank
// half onto each of the two worker URLs.
func s2BalancedPads(urls []string, n int) []int {
	var a, b []int
	for pad := 0; len(a) < n/2 || len(b) < n-n/2; pad++ {
		spec := s2Spec(pad)
		pair, err := dispatch.PairFor(&spec)
		if err != nil {
			panic(err)
		}
		if dispatch.Rank(pair, urls)[0] == urls[0] {
			if len(a) < n/2 {
				a = append(a, pad)
			}
		} else if len(b) < n-n/2 {
			b = append(b, pad)
		}
	}
	// Interleave so any batch prefix stays balanced too.
	var pads []int
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			pads = append(pads, a[i])
		}
		if i < len(b) {
			pads = append(pads, b[i])
		}
	}
	return pads
}

// expS2 measures the scale-out conversion fleet: throughput scaling
// from one worker to two on a latency-bound batch, pair-affinity
// routing, and byte-identical reports through a mid-batch worker kill.
func expS2() {
	banner("EXP-S2", "scale-out fleet: worker scaling, pair affinity, failover determinism")

	// The batch: 24 jobs over 8 distinct pairs (3 jobs per pair). The
	// pads are chosen so the pair population splits evenly across the
	// two-worker fleet — the experiment measures capacity scaling under
	// a balanced pair load, not rendezvous luck on two ephemeral ports.
	const pairs, perPair = 8, 3
	_, co2TS, workers2, stop2 := s2Fleet(2)
	pads := s2BalancedPads([]string{workers2[0].URL, workers2[1].URL}, pairs)
	batch := func() []wire.JobSpec {
		var specs []wire.JobSpec
		for i := 0; i < pairs*perPair; i++ {
			specs = append(specs, s2Spec(pads[i%pairs]))
		}
		return specs
	}

	// (a) Throughput, 1 worker vs 2 workers, same batch and submitters.
	_, co1TS, _, stop1 := s2Fleet(1)
	wall1, _ := s2Run(co1TS.URL, batch())
	stop1()
	wall2, _ := s2Run(co2TS.URL, batch())
	speedup := float64(wall1) / float64(wall2)
	fmt.Printf("\n(a) %d delay-bound jobs (%d pairs), 8 submitters, 4 runners/worker:\n", pairs*perPair, pairs)
	fmt.Printf("    1 worker:  wall %v, %.1f jobs/s\n",
		wall1.Round(time.Millisecond), float64(pairs*perPair)/wall1.Seconds())
	fmt.Printf("    2 workers: wall %v, %.1f jobs/s\n",
		wall2.Round(time.Millisecond), float64(pairs*perPair)/wall2.Seconds())
	fmt.Printf("    scaling 1 -> 2 workers: %.2fx\n", speedup)

	// (b) Affinity: every pair's jobs landed on its rendezvous home, so
	// the per-worker routed counters sum to the batch with no spill.
	cli2 := client.New(co2TS.URL)
	if list, err := cli2.Workers(context.Background()); err == nil {
		fmt.Printf("\n(b) pair-affinity routing (rendezvous on the pair fingerprint):\n")
		for i, w := range list.Workers {
			fmt.Printf("    worker %d: routed %d jobs, %d failovers [%s]\n",
				i+1, w.Routed, w.Failovers, w.State)
		}
		_ = workers2
	}
	stop2()

	// (c) Failover: kill one of two workers mid-batch; every job still
	// finishes and every report is byte-identical to a fresh
	// single-node run of the same spec.
	co3, co3TS, workers3, stop3 := s2Fleet(2)
	defer stop3()
	specs := batch()[:12]
	cli3 := client.New(co3TS.URL)
	ctx := context.Background()
	ids := make([]string, len(specs))
	for i := range specs {
		st, err := cli3.Submit(ctx, &specs[i])
		if err != nil {
			panic(err)
		}
		ids[i] = st.ID
	}
	// Let the fleet get into the batch, then pull the plug on worker 1.
	time.Sleep(150 * time.Millisecond)
	workers3[0].CloseClientConnections()
	workers3[0].Close()
	co3.ProbeOnce(ctx)

	identical := true
	for i, id := range ids {
		got, _, err := cli3.WaitReport(ctx, id, 0)
		if err != nil {
			panic(err)
		}
		srv := serve.New(serve.Config{QueueDepth: 16, Runners: 4})
		ref := httptest.NewServer(srv.Handler())
		refCli := client.New(ref.URL)
		st, err := refCli.Submit(ctx, &specs[i])
		if err != nil {
			panic(err)
		}
		want, _, err := refCli.WaitReport(ctx, st.ID, 0)
		if err != nil {
			panic(err)
		}
		ref.Close()
		if !bytes.Equal(got, want) {
			identical = false
		}
	}
	var failovers int64
	if list, err := cli3.Workers(ctx); err == nil {
		for _, w := range list.Workers {
			failovers += w.Failovers
		}
	}
	fmt.Printf("\n(c) worker killed mid-batch: %d jobs re-dispatched; all %d reports byte-identical to single-node runs: %v\n",
		failovers, len(ids), identical)
}

func expM1() {
	banner("EXP-M1", "model-polymorphic pipeline: the §2.2 IMS reorder end to end")
	entry, err := corpus.IMSReorder()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	run := func(par int) *progconv.Report {
		rep, err := progconv.ConvertHier(context.Background(), entry.Source, entry.Target, nil,
			entry.Programs(),
			progconv.WithParallelism(par),
			progconv.WithVerifyHierDB(entry.Seed()))
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(int(wire.ExitError))
		}
		return rep
	}
	r1 := run(1)
	fmt.Print(r1)
	for _, o := range r1.Outcomes {
		if o.Generated != "" {
			fmt.Printf("\n--- converted %s ---\n%s", o.Name, o.Generated)
		}
	}
	r8 := run(8)
	fmt.Printf("\nreport bytes at parallelism 1 vs 8: identical=%v\n", r1.String() == r8.String())
}
