package progconv

// Cross-module integration tests: the properties that hold only when the
// whole system composes correctly.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"progconv/internal/bridge"
	"progconv/internal/core"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/emulate"
	"progconv/internal/mdml"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

// TestThreeStrategiesAgree: for the same department-roster query, the
// rewritten program on the target database, the emulated source DML on
// the target database, and the unmodified source sweep on the bridge
// reconstruction all return the same record set — three §2 strategies,
// one answer.
func TestThreeStrategiesAgree(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		prof := corpus.Profile{Seed: seed, Divisions: 5, DeptsPerDiv: 4, EmpsPerDept: 6}
		src := corpus.Database(prof)
		plan := figurePlan()
		target, err := plan.MigrateData(src)
		if err != nil {
			t.Fatal(err)
		}
		div, dept := "DIV-02", "D-01"

		// Strategy 1: rewritten access path on the target.
		ev := mdml.NewEvaluator(target)
		f, _ := mdml.ParseFind(fmt.Sprintf(
			"FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = '%s'), DIV-DEPT, DEPT(DEPT-NAME = '%s'), DEPT-EMP, EMP)",
			div, dept))
		ids, err := ev.Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		var rewritten []string
		for _, r := range ev.Records(ids) {
			rewritten = append(rewritten, r.MustGet("EMP-NAME").AsString())
		}

		// Strategy 2: emulated source DML against the target.
		em, err := emulate.NewSession(src.Schema(), target, plan)
		if err != nil {
			t.Fatal(err)
		}
		em.FindAny("DIV", value.FromPairs("DIV-NAME", div))
		match := value.FromPairs("DEPT-NAME", dept)
		var emulated []string
		st, err := em.FindInSet("DIV-EMP", netstore.First, match)
		for err == nil && st == netstore.OK {
			rec, _, gerr := em.Get("EMP")
			if gerr != nil {
				t.Fatal(gerr)
			}
			emulated = append(emulated, rec.MustGet("EMP-NAME").AsString())
			st, err = em.FindInSet("DIV-EMP", netstore.Next, match)
		}
		if err != nil {
			t.Fatal(err)
		}

		// Strategy 3: unmodified source navigation on the reconstruction.
		br, err := bridge.New(src.Schema(), target, plan)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := br.Reconstruct()
		if err != nil {
			t.Fatal(err)
		}
		sess := netstore.NewSession(recon)
		sess.FindAny("DIV", value.FromPairs("DIV-NAME", div))
		var bridged []string
		bst, _ := sess.FindInSet("DIV-EMP", netstore.First, match)
		for bst == netstore.OK {
			rec, _, _ := sess.Get("EMP")
			bridged = append(bridged, rec.MustGet("EMP-NAME").AsString())
			bst, _ = sess.FindInSet("DIV-EMP", netstore.Next, match)
		}

		sort.Strings(rewritten)
		sort.Strings(emulated)
		sort.Strings(bridged)
		a, b, c := strings.Join(rewritten, ","), strings.Join(emulated, ","), strings.Join(bridged, ",")
		if a != b || b != c {
			t.Errorf("seed %d: strategies disagree:\nrewrite %s\nemulate %s\nbridge  %s", seed, a, b, c)
		}
		if len(rewritten) == 0 {
			t.Errorf("seed %d: empty roster makes the test vacuous", seed)
		}
	}
}

// TestSupervisorVerifiesEveryAutoConversion: across the whole corpus,
// every automatically converted program is I/O-equivalent against the
// migrated data — the framework's own acceptance test.
func TestSupervisorVerifiesEveryAutoConversion(t *testing.T) {
	prof := corpus.PeriodProfile(7)
	prof.Divisions, prof.DeptsPerDiv, prof.EmpsPerDept = 3, 3, 4
	members, err := corpus.Programs(prof)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	db := corpus.Database(prof)
	sup := core.NewSupervisor()
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db, progs)
	if err != nil {
		t.Fatal(err)
	}
	auto := 0
	for _, o := range report.Outcomes {
		if o.Disposition != core.Auto {
			continue
		}
		auto++
		if o.Verified == nil {
			t.Fatalf("%s: auto conversion not verified", o.Name)
		}
		if !o.Verified.Equal {
			t.Errorf("%s: DIVERGED: %s", o.Name, o.Verified.Diff())
		}
	}
	if auto < 60 {
		t.Errorf("only %d auto conversions; corpus broken?", auto)
	}
}

// TestMigrationPreservesLogicalRecords: for seeded populations, the
// Figure 4.2→4.4 migration preserves every logical EMP record (including
// the virtualized DEPT-NAME and DIV-NAME), and the intermediate count
// equals the number of distinct (division, department) pairs.
func TestMigrationPreservesLogicalRecords(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		prof := corpus.Profile{Seed: seed, Divisions: 4, DeptsPerDiv: 3, EmpsPerDept: 5}
		src := corpus.Database(prof)
		plan := figurePlan()
		dst, err := plan.MigrateData(src)
		if err != nil {
			t.Fatal(err)
		}
		if dst.Count("EMP") != src.Count("EMP") || dst.Count("DIV") != src.Count("DIV") {
			t.Fatalf("seed %d: counts changed", seed)
		}
		pairs := map[string]bool{}
		srcRecords := map[string]bool{}
		for _, id := range src.AllOf("EMP") {
			rec := src.Data(id)
			srcRecords[rec.String()] = true
			pairs[rec.MustGet("DIV-NAME").String()+"/"+rec.MustGet("DEPT-NAME").String()] = true
		}
		if dst.Count("DEPT") != len(pairs) {
			t.Errorf("seed %d: DEPT count %d, distinct pairs %d", seed, dst.Count("DEPT"), len(pairs))
		}
		for _, id := range dst.AllOf("EMP") {
			rec := dst.Data(id)
			// Field order differs (virtuals); compare by canonical projection.
			proj := value.FromPairs(
				"EMP-NAME", rec.MustGet("EMP-NAME"),
				"DEPT-NAME", rec.MustGet("DEPT-NAME"),
				"AGE", rec.MustGet("AGE"),
				"DIV-NAME", rec.MustGet("DIV-NAME"),
			)
			if !srcRecords[proj.String()] {
				t.Errorf("seed %d: logical record not preserved: %v", seed, rec)
			}
		}
	}
}

// TestMigrationRoundTripProperty: V1 → V2 → V1 is the identity on
// logical records for seeded populations (Housel's inverse-operator
// assumption, validated on data).
func TestMigrationRoundTripProperty(t *testing.T) {
	for _, seed := range []int64{5, 21} {
		prof := corpus.Profile{Seed: seed, Divisions: 3, DeptsPerDiv: 4, EmpsPerDept: 3}
		src := corpus.Database(prof)
		plan := figurePlan()
		mid, err := plan.MigrateData(src)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := plan.InversePlan(src.Schema())
		if err != nil {
			t.Fatal(err)
		}
		back, err := inv.MigrateData(mid)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int{}
		for _, id := range src.AllOf("EMP") {
			want[src.Data(id).String()]++
		}
		got := map[string]int{}
		for _, id := range back.AllOf("EMP") {
			got[back.Data(id).String()]++
		}
		if len(want) != len(got) {
			t.Fatalf("seed %d: record multiset size changed", seed)
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("seed %d: record %s count %d → %d", seed, k, n, got[k])
			}
		}
	}
}

// TestConvertedCorpusProgramsRunClean: every auto-converted corpus
// program parses back from its generated text and runs without error on
// the migrated database (the Program Generator's output is real source).
func TestConvertedCorpusProgramsRunClean(t *testing.T) {
	prof := corpus.PeriodProfile(13)
	prof.Divisions, prof.DeptsPerDiv, prof.EmpsPerDept = 3, 2, 3
	members, err := corpus.Programs(prof)
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*dbprog.Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	db := corpus.Database(prof)
	sup := core.NewSupervisor()
	sup.Verify = false
	report, err := sup.Run(context.Background(), schema.CompanyV1(), schema.CompanyV2(), nil, db, progs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range report.Outcomes {
		if o.Disposition != core.Auto || o.Converted == nil {
			continue
		}
		text := dbprog.Format(o.Converted)
		reparsed, err := dbprog.Parse(text)
		if err != nil {
			t.Fatalf("%s: generated text does not reparse: %v\n%s", o.Name, err, text)
		}
		if _, err := dbprog.Run(reparsed, dbprog.Config{Net: report.TargetDB.Clone()}); err != nil {
			t.Errorf("%s: converted program aborted: %v\n%s", o.Name, err, text)
		}
	}
}

// TestClassifierRecoversHandWrittenPlans: Classify(src, plan(src))
// recovers a plan with the same schema effect, for every non-rename
// catalogue entry (renames are fundamentally ambiguous — DESIGN.md).
func TestClassifierRecoversHandWrittenPlans(t *testing.T) {
	src := schema.CompanyV1()
	plans := []*xform.Plan{
		figurePlan(),
		{Steps: []xform.Transformation{
			xform.ChangeSetKeys{Set: "DIV-EMP", Keys: []string{"AGE"}},
			xform.ChangeRetention{Set: "DIV-EMP", Retention: schema.Optional},
		}},
		{Steps: []xform.Transformation{
			xform.AddField{Record: "DIV", Field: "BUDGET", Kind: value.Int, Default: value.Of(0)},
			xform.DropField{Record: "EMP", Field: "AGE"},
		}},
	}
	for i, plan := range plans {
		dst, err := plan.ApplySchema(src)
		if err != nil {
			t.Fatal(err)
		}
		recovered, err := xform.Classify(src, dst)
		if err != nil {
			t.Fatalf("plan %d: classify: %v", i, err)
		}
		redst, err := recovered.ApplySchema(src)
		if err != nil {
			t.Fatalf("plan %d: recovered plan does not apply: %v", i, err)
		}
		if redst.DDL() != dst.DDL() {
			t.Errorf("plan %d: recovered plan has a different effect:\n%s\nvs\n%s",
				i, redst.DDL(), dst.DDL())
		}
	}
}
