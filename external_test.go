package progconv_test

// External-package tests: everything here sees progconv exactly as an
// importing project would — no internal/ packages — so it proves the
// facade is self-contained.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"progconv"
)

// customAnalyst is implementable from outside the module: Issue and its
// kind constants are part of the facade.
type customAnalyst struct {
	asked []string
}

func (a *customAnalyst) Decide(program string, issue progconv.Issue) bool {
	a.asked = append(a.asked, program+"/"+issue.Kind.String())
	return issue.Kind == progconv.OrderDependence
}

// The compile-time pin the ISSUE asks for: a custom Analyst satisfies
// the facade interface with no internal/ imports.
var _ progconv.Analyst = (*customAnalyst)(nil)

// TestExternalAnalystRoundTrip drives Convert end to end with the
// external analyst and checks the consultation reached it.
func TestExternalAnalystRoundTrip(t *testing.T) {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM PRINT-ALL DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	if err != nil {
		t.Fatal(err)
	}
	a := &customAnalyst{}
	report, err := progconv.Convert(context.Background(), src, dst, nil,
		[]*progconv.Program{prog}, progconv.WithAnalyst(a))
	if err != nil {
		t.Fatal(err)
	}
	if report.Outcomes[0].Disposition != progconv.Qualified {
		t.Errorf("disposition = %s, want qualified", report.Outcomes[0].Disposition)
	}
	if len(a.asked) != 1 || a.asked[0] != "PRINT-ALL/order-dependence" {
		t.Errorf("asked = %v", a.asked)
	}
}

// stuckAnalyst never answers — the external face of the analyst-timeout
// degradation.
type stuckAnalyst struct{}

func (stuckAnalyst) Decide(string, progconv.Issue) bool {
	time.Sleep(2 * time.Second)
	return true
}

// panickyAnalyst models a broken integration.
type panickyAnalyst struct{}

func (panickyAnalyst) Decide(string, progconv.Issue) bool { panic("integration bug") }

// TestExternalResilienceSurface exercises the resilience options
// through the facade alone: an analyst timeout degrades to Manual, an
// analyst panic degrades to a Failed outcome under CollectErrors, and
// fail-fast surfaces ErrFailureBudget.
func TestExternalResilienceSurface(t *testing.T) {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM PRINT-ALL DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	if err != nil {
		t.Fatal(err)
	}
	progs := []*progconv.Program{prog}

	report, err := progconv.Convert(context.Background(), src, dst, nil, progs,
		progconv.WithAnalyst(stuckAnalyst{}),
		progconv.WithAnalystTimeout(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	o := report.Outcomes[0]
	if o.Disposition != progconv.Manual || len(o.Audit.Decisions) != 1 || !o.Audit.Decisions[0].TimedOut {
		t.Errorf("analyst timeout outcome = %+v", o)
	}

	tally := progconv.NewTally()
	report, err = progconv.Convert(context.Background(), src, dst, nil, progs,
		progconv.WithAnalyst(panickyAnalyst{}),
		progconv.WithFailurePolicy(progconv.CollectErrors),
		progconv.WithEventSink(tally))
	if err != nil {
		t.Fatal(err)
	}
	o = report.Outcomes[0]
	if o.Disposition != progconv.Failed || o.Audit.Failure == nil ||
		o.Audit.Failure.Kind != progconv.FailPanic {
		t.Fatalf("analyst panic outcome = %+v", o)
	}
	if tally.Faults()["panic"] != 1 {
		t.Errorf("faults = %v", tally.Faults())
	}
	if !strings.Contains(report.String(), "1 failed of 1 programs") {
		t.Errorf("summary:\n%s", report)
	}

	if _, err := progconv.Convert(context.Background(), src, dst, nil, progs,
		progconv.WithAnalyst(panickyAnalyst{})); !errors.Is(err, progconv.ErrFailureBudget) {
		t.Errorf("fail-fast err = %v, want ErrFailureBudget", err)
	}
}

// TestExternalClassifyFailureMentionsVerifyDB is the ISSUE's bugfix
// criterion: when plan inference fails and a verify database was
// supplied, the error must say the database was never migrated.
func TestExternalClassifyFailureMentionsVerifyDB(t *testing.T) {
	src, _ := mustSchemas()
	unrelated, err := progconv.ParseNetworkSchema(`
SCHEMA NAME IS OTHER
RECORD SECTION;
  RECORD NAME IS THING.
    FIELDS ARE.
      THING-NAME PIC X(8).
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-THING.
    OWNER IS SYSTEM.
    MEMBER IS THING.
    SET KEYS ARE (THING-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
`)
	if err != nil {
		t.Fatal(err)
	}
	db := progconv.NewDatabase(src)
	_, err = progconv.Convert(context.Background(), src, unrelated, nil, nil,
		progconv.WithVerifyDB(db))
	if !errors.Is(err, progconv.ErrHazardUnresolved) {
		t.Fatalf("err = %v, want ErrHazardUnresolved", err)
	}
	if !strings.Contains(err.Error(), "verify database was never migrated") {
		t.Errorf("error does not mention the unmigrated verify database: %v", err)
	}

	// Without a verify database the suffix stays out of the message.
	_, err = progconv.Convert(context.Background(), src, unrelated, nil, nil)
	if err == nil || strings.Contains(err.Error(), "verify database") {
		t.Errorf("plain classify error mentions a database nobody gave: %v", err)
	}
}
