// Package progconv reproduces "Database Program Conversion: A Framework
// for Research" (Database Program Conversion Task Group of the CODASYL
// Systems Committee; Taylor, Fry, Shneiderman, Smith, Su; VLDB/IEEE
// 1979): the Figure 4.1 conversion pipeline — Conversion Analyzer,
// Program Analyzer, Program Converter, Optimizer, Program Generator,
// Conversion Supervisor — together with every substrate the paper
// presupposes: relational, CODASYL network and hierarchical engines, the
// SEQUEL subset, the Maryland FIND-path DML, DL/I, a database-program
// host language with four embedded DML dialects, a transformation
// catalogue with data restructuring, and the §2 baseline strategies (DML
// emulation and bridge programs).
//
// # Options
//
// Convert and ConvertJobs accept functional options. This table is the
// complete set; each option's own doc comment carries the details.
//
//	WithAnalyst(a)         who answers qualified-conversion questions
//	                       (default: reject every proposal)
//	WithParallelism(n)     worker-pool bound for the inventory
//	                       (0 = GOMAXPROCS)
//	WithMigrationParallelism(n)
//	                       shard-worker bound for the data migration
//	                       pass (0 = GOMAXPROCS); output is
//	                       byte-identical at any setting
//	WithVerifyDB(db)       migrate db through the plan and verify each
//	                       automatic conversion against it
//	WithMetrics()          time stages into Report.Metrics
//	WithRecorder(r)        like WithMetrics, but into a caller-owned
//	                       recorder (for WriteChromeTrace); when both
//	                       are given the recorder wins and Metrics is
//	                       snapshotted from it, so the two compose
//	WithEventSink(s)       stream the structured event log to s
//	                       (RingSink, JSONLSink, Tally, MultiSink)
//	WithTraceSink(tb)      fold the event log into tb's span tree
//	                       (NewTraceBuilder, DeriveTraceID); the
//	                       finished trace lands on Report.Trace
//	WithProgramTimeout(d)  budget one program's whole analyze → verify
//	                       pipeline (0 = unbounded)
//	WithStageTimeout(d)    budget each pipeline stage attempt
//	WithAnalystTimeout(d)  budget each Analyst.Decide call; an
//	                       unresponsive analyst rejects by timeout
//	WithRetries(n, base)   retry Transient stage errors up to n times
//	                       with deterministic backoff from base
//	WithFailurePolicy(p)   what a Failed program does to the rest of
//	                       the batch: FailFast, CollectErrors, Budget(n)
//	WithCache(c)           share a conversion cache (NewCache) across
//	                       calls: pair-scoped planning and per-program
//	                       conversions are reused, never recomputed
//
// The run's context is a parameter, not an option: cancel it to stop
// the batch with ErrCanceled.
//
// # Wire schema
//
// Every machine-readable artifact the toolchain emits — event-log JSONL
// lines (EncodeJSONL, NewJSONLSink), report documents
// (EncodeReportJSON), trace documents (EncodeTraceJSON, the daemon's
// GET /v1/jobs/{id}/trace), and the conversion daemon's
// job/status/error bodies — is versioned: a leading "v" field holds
// WireVersion. The
// bytes are deterministic for the same inputs at any parallelism, so
// cmd/progconvd's report endpoint and the CLI's -report-json flag
// produce identical documents. ExitCodeFor maps a finished Report onto
// the shared process exit-code table (ExitOK, ExitFailOn,
// ExitPipeline, ...) that the CLI exits with and the daemon translates
// to HTTP statuses.
//
// Job submissions carry an optional "model" field naming the data
// model of the conversion pair: "network" (CODASYL; the default when
// the field is absent, so v1 clients keep working unchanged) or
// "hierarchical" (IMS / DL/I). The source_ddl and target_ddl texts are
// in the model's canonical DDL form — Figure 4.3 network DDL (SCHEMA
// ... RECORD ... SET ...) or SEGMENT-form hierarchy DDL (HIERARCHY ...
// SEGMENT ... ROOT|PARENT). An unknown model is rejected at submission
// with error code bad_spec. Report documents echo non-default models
// in their own "model" field (absent for network runs, preserving the
// historical network document bytes).
//
// Collection endpoints paginate: GET /v1/jobs takes limit and
// page_token query parameters and answers with a JobList whose
// NextPageToken, when non-empty, is the cursor for the next page; a
// state parameter filters by job state. GET /v1/workers answers a
// WorkerList describing a dispatch coordinator's fleet (see
// internal/dispatch and the client package for the typed SDK both
// coordinator and end users share).
//
// # Error codes
//
// Every non-2xx daemon response is an ErrorDoc carrying a stable
// machine-readable Code alongside the human-readable message, and the
// CLI prefixes its stderr line with the same token. ErrorCodeFor maps
// an exit code onto its token. The complete set:
//
//	bad_spec    400  malformed or invalid job spec / query
//	not_found   404  unknown job ID
//	queue_full  429  admission queue at capacity (has Retry-After)
//	draining    503  daemon is draining for shutdown (has Retry-After)
//	no_worker   503  coordinator has no healthy worker (has Retry-After)
//	deadline    500  job exceeded its deadline
//	canceled    500  job was canceled
//	fail_on     500  report tripped the job's -fail-on threshold
//	pipeline    500  a pipeline stage failed
//	failed      500  one or more programs failed to convert
//	internal    500  unexpected daemon error
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// per-figure and per-claim reproduction record, cmd/exper for the
// experiment harness, cmd/progconvd for the HTTP/JSON conversion
// service (standalone, worker, or coordinator mode), and bench_test.go
// (this directory) for the testing.B benchmarks backing each
// experiment.
package progconv
