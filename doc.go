// Package progconv reproduces "Database Program Conversion: A Framework
// for Research" (Database Program Conversion Task Group of the CODASYL
// Systems Committee; Taylor, Fry, Shneiderman, Smith, Su; VLDB/IEEE
// 1979): the Figure 4.1 conversion pipeline — Conversion Analyzer,
// Program Analyzer, Program Converter, Optimizer, Program Generator,
// Conversion Supervisor — together with every substrate the paper
// presupposes: relational, CODASYL network and hierarchical engines, the
// SEQUEL subset, the Maryland FIND-path DML, DL/I, a database-program
// host language with four embedded DML dialects, a transformation
// catalogue with data restructuring, and the §2 baseline strategies (DML
// emulation and bridge programs).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// per-figure and per-claim reproduction record, cmd/exper for the
// experiment harness, and bench_test.go (this directory) for the
// testing.B benchmarks backing each experiment.
package progconv
