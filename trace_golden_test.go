package progconv

// Satellite-4 acceptance: the wire trace JSON (timing omitted) and the
// Prometheus histogram exposition for the Figure 4.3 conversion are
// byte-identical at parallelism 1 and 8, pinned by golden files.
// Without a metrics recorder every stage duration is zero, so the
// histograms land in deterministic buckets; span IDs derive from the
// trace ID and structural paths, never wall clock.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
)

// captureTraceAndMetrics runs the standard conversion with a pinned
// trace ID and returns the omit-timing trace JSON and the registry
// exposition.
func captureTraceAndMetrics(t *testing.T, parallelism int) ([]byte, []byte) {
	t.Helper()
	tb := NewTraceBuilder(DeriveTraceID("trace-golden"), "convert")
	reg := telemetry.NewRegistry()
	inst := telemetry.NewInstruments(reg)
	report, err := Convert(t.Context(), schema.CompanyV1(), schema.CompanyV2(), nil,
		eventPrograms(t), WithParallelism(parallelism), WithTraceSink(tb),
		WithEventSink(inst.StageSink()), WithVerifyDB(eventDB(t)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace == nil {
		t.Fatal("Report.Trace is nil with a trace sink installed")
	}
	inst.ObserveDataPlane(report.DataPlane)
	var trace, metrics bytes.Buffer
	if err := wire.EncodeTrace(&trace, report.Trace, true); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	return trace.Bytes(), metrics.Bytes()
}

// TestTraceGolden pins the trace document and histogram exposition and
// proves both are parallelism-independent. Regenerate with
//
//	UPDATE_GOLDEN=1 go test -run TraceGolden .
func TestTraceGolden(t *testing.T) {
	trace1, metrics1 := captureTraceAndMetrics(t, 1)
	trace8, metrics8 := captureTraceAndMetrics(t, 8)
	if !bytes.Equal(trace1, trace8) {
		t.Errorf("omit-timing trace differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			trace1, trace8)
	}
	if !bytes.Equal(metrics1, metrics8) {
		t.Errorf("histogram exposition differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			metrics1, metrics8)
	}
	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"trace.golden.json", trace1},
		{"metrics.golden.prom", metrics1},
	} {
		golden := filepath.Join("testdata", g.name)
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s diverged (set UPDATE_GOLDEN=1 to regenerate)\n--- got ---\n%s", golden, g.got)
		}
	}
}
