package progconv_test

// Runnable examples for the facade. Everything here goes through the
// public API only — schemas arrive as Figure 4.3 DDL text, programs as
// DML source — so the examples double as proof that external callers
// need no internal/ imports.

import (
	"context"
	"fmt"

	"progconv"
)

// companyV1DDL is the source schema of Figure 4.3: divisions owning
// employees directly through DIV-EMP.
const companyV1DDL = `
SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;
  RECORD NAME IS DIV.
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME PIC X(5).
      AGE PIC 9(2).
      DIV-NAME VIRTUAL
        VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
    OWNER IS DIV.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
    INSERTION IS AUTOMATIC.
    RETENTION IS MANDATORY.
  END SET.
END SET SECTION.
END SCHEMA.
`

// companyV2DDL is the target schema: a DEPT record interposed between
// DIV and EMP (the paper's running restructuring example).
const companyV2DDL = `
SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;
  RECORD NAME IS DIV.
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS DEPT.
    FIELDS ARE.
      DEPT-NAME PIC X(5).
      DIV-NAME VIRTUAL
        VIA DIV-DEPT USING DIV-NAME.
  END RECORD.
  RECORD NAME IS EMP.
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME VIRTUAL
        VIA DEPT-EMP USING DEPT-NAME.
      AGE PIC 9(2).
      DIV-NAME VIRTUAL
        VIA DEPT-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-DEPT.
    OWNER IS DIV.
    MEMBER IS DEPT.
    SET KEYS ARE (DEPT-NAME).
    INSERTION IS AUTOMATIC.
    RETENTION IS MANDATORY.
  END SET.
  SET NAME IS DEPT-EMP.
    OWNER IS DEPT.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
    INSERTION IS AUTOMATIC.
    RETENTION IS MANDATORY.
  END SET.
END SET SECTION.
END SCHEMA.
`

// mustSchemas parses the example DDL pair.
func mustSchemas() (src, dst *progconv.Schema) {
	src, err := progconv.ParseNetworkSchema(companyV1DDL)
	if err != nil {
		panic(err)
	}
	dst, err = progconv.ParseNetworkSchema(companyV2DDL)
	if err != nil {
		panic(err)
	}
	return src, dst
}

// ExampleConvert converts a one-program inventory across the V1 → V2
// restructuring; the plan is inferred from the schema pair.
func ExampleConvert() {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	if err != nil {
		panic(err)
	}
	report, err := progconv.Convert(context.Background(), src, dst, nil, []*progconv.Program{prog})
	if err != nil {
		panic(err)
	}
	o := report.Outcomes[0]
	fmt.Printf("%s: %s\n", o.Name, o.Disposition)
	auto, qualified, manual := report.Counts()
	fmt.Printf("%d auto, %d qualified, %d manual\n", auto, qualified, manual)
	// Output:
	// LIST-OLD: auto
	// 1 auto, 0 qualified, 0 manual
}

// acceptOrder is a custom Analyst built outside the module: it accepts
// order-change findings and declines everything else.
type acceptOrder struct{}

func (acceptOrder) Decide(program string, issue progconv.Issue) bool {
	return issue.Kind == progconv.OrderDependence
}

// ExampleConvert_withAnalyst routes an order-dependent program through
// a custom Analyst, turning a manual outcome into a qualified one.
func ExampleConvert_withAnalyst() {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM PRINT-ALL DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	if err != nil {
		panic(err)
	}
	report, err := progconv.Convert(context.Background(), src, dst, nil,
		[]*progconv.Program{prog}, progconv.WithAnalyst(acceptOrder{}))
	if err != nil {
		panic(err)
	}
	o := report.Outcomes[0]
	fmt.Printf("%s: %s\n", o.Name, o.Disposition)
	for _, d := range o.Audit.Decisions {
		fmt.Printf("asked about %s: accepted=%v\n", d.Issue.Kind, d.Accepted)
	}
	// Output:
	// PRINT-ALL: qualified
	// asked about order-dependence: accepted=true
}

// ExampleWithEventSink captures the structured event log of a serial
// run; within one program the events arrive in pipeline order.
func ExampleWithEventSink() {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	if err != nil {
		panic(err)
	}
	ring := progconv.NewRingSink(64)
	_, err = progconv.Convert(context.Background(), src, dst, nil, []*progconv.Program{prog},
		progconv.WithParallelism(1), progconv.WithEventSink(ring))
	if err != nil {
		panic(err)
	}
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case progconv.EvStageStart, progconv.EvStageEnd:
			fmt.Printf("%s %s\n", ev.Kind, ev.Stage)
		default:
			fmt.Printf("%s %s\n", ev.Kind, ev.Label)
		}
	}
	// Output:
	// stage-start analyze
	// stage-end analyze
	// stage-start convert
	// rewrite m-find
	// stage-end convert
	// stage-start optimize
	// stage-end optimize
	// stage-start generate
	// stage-end generate
	// outcome auto
}

// ExampleWithCache reuses one conversion cache across two batches over
// the same schema pair: the second Convert reuses the pair-scoped plan,
// rewrite rules, and cost tables, plus each program's analysis,
// conversion, and generated text. Reports are byte-identical with or
// without the cache.
func ExampleWithCache() {
	src, dst := mustSchemas()
	prog, err := progconv.ParseProgram(`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	if err != nil {
		panic(err)
	}
	cache := progconv.NewCache(16)
	for batch := 1; batch <= 2; batch++ {
		report, err := progconv.Convert(context.Background(), src, dst, nil,
			[]*progconv.Program{prog}, progconv.WithCache(cache), progconv.WithParallelism(1))
		if err != nil {
			panic(err)
		}
		auto, _, _ := report.Counts()
		fmt.Printf("batch %d: %d auto\n", batch, auto)
	}
	s := cache.Stats()
	fmt.Printf("pair builds: %d, pair hits: %d\n", s.PairMisses, s.PairHits)
	fmt.Printf("conversion memo hits: %d\n", s.ConversionHits)
	// Output:
	// batch 1: 1 auto
	// batch 2: 1 auto
	// pair builds: 1, pair hits: 1
	// conversion memo hits: 1
}
