package progconv

// Public-facade tests: the properties Convert promises to external
// callers — deterministic reports at any parallelism, prompt typed
// cancellation, and data-race freedom under `go test -race`.

import (
	"context"
	"errors"
	"testing"
	"time"

	"progconv/internal/analyzer"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/schema"
)

func corpusPrograms(t *testing.T) []*Program {
	t.Helper()
	members, err := corpus.Programs(corpus.PeriodProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]*Program, len(members))
	for i, m := range members {
		progs[i] = m.Program
	}
	return progs
}

// TestConvertParallelCorpus drives the EXP-C1 corpus through the public
// facade on the default (GOMAXPROCS-sized) worker pool. Run under
// `go test -race` this is the framework's data-race acceptance test.
func TestConvertParallelCorpus(t *testing.T) {
	progs := corpusPrograms(t)
	db := corpus.Database(corpus.PeriodProfile(42))
	report, err := Convert(context.Background(), schema.CompanyV1(), nil, figurePlan(), progs,
		WithVerifyDB(db), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != len(progs) {
		t.Fatalf("outcomes = %d, want %d", len(report.Outcomes), len(progs))
	}
	for i, o := range report.Outcomes {
		if o.Name != progs[i].Name {
			t.Fatalf("outcome %d is %s, want %s: submission order lost", i, o.Name, progs[i].Name)
		}
	}
	auto, _, _ := report.Counts()
	if auto == 0 {
		t.Error("no automatic conversions over the period corpus")
	}
	if report.Metrics == nil || report.Metrics.Programs != len(progs) {
		t.Errorf("metrics = %+v", report.Metrics)
	}
}

// TestConvertDeterministicAcrossParallelism: a serial run and an
// 8-worker run over the seeded EXP-C1 corpus render byte-identical
// reports (the ISSUE's determinism acceptance criterion).
func TestConvertDeterministicAcrossParallelism(t *testing.T) {
	progs := corpusPrograms(t)
	run := func(workers int) string {
		report, err := Convert(context.Background(), schema.CompanyV1(), nil, figurePlan(), progs,
			WithParallelism(workers), WithVerifyDB(corpus.Database(corpus.PeriodProfile(42))))
		if err != nil {
			t.Fatal(err)
		}
		return report.String()
	}
	serial, parallel := run(1), run(8)
	if serial != parallel {
		t.Errorf("serial and 8-way reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// cancelingAnalyst cancels the batch the first time the supervisor
// consults it, simulating an operator abort mid-inventory.
type cancelingAnalyst struct{ cancel context.CancelFunc }

func (a cancelingAnalyst) Decide(string, analyzer.Issue) bool {
	a.cancel()
	return false
}

// TestConvertCanceledMidBatch: cancellation during a parallel run
// surfaces promptly as ErrCanceled (also matching context.Canceled),
// not as a partial report.
func TestConvertCanceledMidBatch(t *testing.T) {
	progs := corpusPrograms(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	report, err := Convert(ctx, schema.CompanyV1(), nil, figurePlan(), progs,
		WithAnalyst(cancelingAnalyst{cancel}))
	if report != nil {
		t.Error("canceled run must not return a report")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestFacadeHelpersRoundTrip: ParseProgram/FormatProgram and
// ParseNetworkSchema/Classify compose through the exported aliases.
func TestFacadeHelpersRoundTrip(t *testing.T) {
	p, err := ParseProgram(`PROGRAM T DIALECT NETWORK. PRINT 'X'. END PROGRAM.`)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProgram(FormatProgram(p))
	if err != nil || back.Name != "T" {
		t.Fatalf("round trip: %v, %+v", err, back)
	}
	src := schema.CompanyV1()
	sch, err := ParseNetworkSchema(src.DDL())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Classify(sch, schema.CompanyV2())
	if err != nil || len(plan.Steps) == 0 {
		t.Fatalf("classify: %v, %+v", err, plan)
	}
	var _ *dbprog.Program = p // alias identity: Program IS dbprog.Program
}
