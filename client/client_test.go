package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"progconv"
	"progconv/internal/schema"
	"progconv/internal/serve"
)

const testProgram = `
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`

func testSpec() *progconv.JobSpec {
	return &progconv.JobSpec{
		V:         progconv.WireVersion,
		SourceDDL: schema.CompanyV1().DDL(),
		TargetDDL: schema.CompanyV2().DDL(),
		Programs:  []progconv.ProgramSpec{{Source: testProgram}},
		Options:   progconv.JobOptions{Parallelism: 1},
	}
}

func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{QueueDepth: 16, Runners: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.StartDrain()
	})
	return ts
}

func TestSubmitWaitReport(t *testing.T) {
	ts := newDaemon(t)
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != "queued" {
		t.Fatalf("submit status = %+v", st)
	}

	// Report before the job finishes is ErrNotFinished, not an error
	// document (the job may already be done on a fast machine, so only
	// assert the classification when it fires).
	if _, _, err := c.Report(ctx, st.ID); err != nil && err != ErrNotFinished {
		t.Fatalf("early report: %v", err)
	}

	body, status, err := c.WaitReport(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("report HTTP %d", status)
	}
	// The SDK's bytes are exactly what raw HTTP serves.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, raw) {
		t.Fatalf("SDK report (%d bytes) != raw HTTP report (%d bytes)", len(body), len(raw))
	}

	// Terminal status, events and trace all decode.
	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != "done" {
		t.Fatalf("status = %+v, %v", final, err)
	}
	stream, err := c.Events(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	lines, _ := io.ReadAll(stream)
	stream.Close()
	if len(lines) == 0 {
		t.Fatal("events stream was empty")
	}
	if trace, err := c.Trace(ctx, st.ID, true); err != nil || len(trace) == 0 {
		t.Fatalf("trace: %d bytes, %v", len(trace), err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}
}

func TestListPagination(t *testing.T) {
	ts := newDaemon(t)
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var ids []string
	for i := 0; i < 5; i++ {
		st, err := c.Submit(ctx, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	token := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination never terminated")
		}
		page, err := c.List(ctx, ListOptions{Limit: 2, PageToken: token})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range page.Jobs {
			got = append(got, st.ID)
		}
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(got) != 5 {
		t.Fatalf("paged %d jobs, want 5", len(got))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("order[%d] = %s, want %s", i, got[i], ids[i])
		}
	}
	if page, err := c.List(ctx, ListOptions{State: "failed"}); err != nil || len(page.Jobs) != 0 {
		t.Fatalf("state=failed: %d jobs, %v", len(page.Jobs), err)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	ts := newDaemon(t)
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c := New(ts.URL, WithTraceparent(inbound))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace_id = %q, want the propagated one", st.TraceID)
	}
}

func TestAPIErrorCodes(t *testing.T) {
	ts := newDaemon(t)
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	_, err := c.Status(ctx, "j-999999")
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusNotFound || apiErr.Code != progconv.CodeNotFound {
		t.Fatalf("unknown job error = %#v", err)
	}

	bad := testSpec()
	bad.Programs = nil
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Fatal("empty inventory was accepted")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.Code != progconv.CodeBadSpec {
		t.Fatalf("bad spec error = %#v", err)
	}
}

// The retry loop retries 429/503, waits at least the server's
// Retry-After hint, and surfaces the last error when attempts run out.
func TestRetriesHonorRetryAfter(t *testing.T) {
	var calls int
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"v":1,"code":"queue_full","error":"queue is full"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"v":1,"id":"j-000001","state":"queued"}`)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var pauses []time.Duration
	c := New(ts.URL, WithRetries(3, time.Millisecond))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		pauses = append(pauses, d)
		return nil
	}
	st, err := c.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j-000001" || calls != 3 {
		t.Fatalf("status = %+v after %d calls", st, calls)
	}
	for i, p := range pauses {
		if p < 7*time.Second {
			t.Fatalf("pause %d = %v, shorter than the Retry-After hint", i, p)
		}
	}

	// With retries exhausted the typed error comes back.
	calls = 0
	exhausted := New(ts.URL, WithRetries(1, time.Millisecond))
	exhausted.sleep = func(context.Context, time.Duration) error { return nil }
	// Two rejections beat one retry.
	_, err = exhausted.Submit(context.Background(), testSpec())
	if apiErr, ok := err.(*APIError); !ok || apiErr.Code != progconv.CodeQueueFull {
		t.Fatalf("exhausted retries error = %#v", err)
	}
}

func TestCancelAndErrorReport(t *testing.T) {
	ts := newDaemon(t)
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := testSpec()
	spec.Options.Inject = "delay=400ms@*/analyze"
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "canceled" {
		t.Fatalf("state after cancel = %q", final.State)
	}
	// A canceled job's report is a typed error, not report bytes.
	_, _, err = c.Report(ctx, st.ID)
	if apiErr, ok := err.(*APIError); !ok || apiErr.Code != progconv.CodeCanceled {
		t.Fatalf("canceled report error = %#v", err)
	}
}

func TestListDecode(t *testing.T) {
	// The SDK decodes JobList wire documents exactly.
	doc := progconv.JobList{V: 1, NextPageToken: "o2"}
	b, _ := json.Marshal(doc)
	var back progconv.JobList
	if err := json.Unmarshal(b, &back); err != nil || back.NextPageToken != "o2" {
		t.Fatalf("round-trip: %+v, %v", back, err)
	}
}
