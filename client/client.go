// Package client is the typed Go SDK for the conversion service's v1
// HTTP/JSON API — the one client both end users and the dispatch
// coordinator use, so the coordinator→worker path exercises exactly
// the surface the public SDK exposes.
//
// A Client wraps one daemon (or coordinator — the API is identical)
// base URL:
//
//	c := client.New("http://localhost:8080")
//	st, err := c.Submit(ctx, &progconv.JobSpec{ ... })
//	report, err := c.WaitReport(ctx, st.ID, 0)
//
// Every document the SDK decodes is a progconv facade alias of the v1
// wire schema (JobSpec, JobStatus, JobList, WorkerList), so callers
// never import internal packages. Non-2xx responses become *APIError
// values carrying the machine-readable error code from the wire code
// table; retryable rejections (429 queue_full, 503 draining/no_worker)
// are retried automatically with the supervisor's deterministic capped
// backoff, honoring the server's Retry-After hint when one is sent.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"progconv"
	"progconv/internal/core"
)

// Client is a v1 API client for one base URL. It is safe for
// concurrent use by multiple goroutines.
type Client struct {
	base        string
	hc          *http.Client
	retries     int
	backoff     time.Duration
	traceparent string
	sleep       func(context.Context, time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the transport (the default is a dedicated
// http.Client with no timeout — job submissions block only as long as
// the context allows).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries bounds automatic retries of transport errors and
// retryable statuses (429, 503) to n attempts beyond the first, paced
// by the supervisor's deterministic capped backoff from base (0 = the
// 50ms default), never shorter than the server's Retry-After hint.
// The default is 2; WithRetries(0, 0) disables retries — the dispatch
// coordinator does, because it owns failover itself.
func WithRetries(n int, base time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, base }
}

// WithTraceparent propagates a W3C traceparent header on submissions,
// so the job's trace continues the caller's trace.
func WithTraceparent(tp string) Option {
	return func(c *Client) { c.traceparent = tp }
}

// New returns a Client for the v1 API at base (e.g.
// "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: 2,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the base URL the client was created with.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response decoded from the server's ErrorDoc:
// the HTTP status, the machine-readable code, and the prose message.
// Dispatch on Code, not on Message.
type APIError struct {
	Status  int
	Code    progconv.ErrorCode
	Message string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%s: %s (http %d)", e.Code, e.Message, e.Status)
	}
	return fmt.Sprintf("%s (http %d)", e.Message, e.Status)
}

// ErrNotFinished is returned by Report for a job still queued or
// running; poll Status or use WaitReport.
var ErrNotFinished = errors.New("client: job has not finished")

// retryable reports whether a response status may succeed on retry.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do issues one request with the retry policy. A non-nil body is
// replayed on every attempt. The caller owns the response body.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body []byte, hdr map[string]string) (*http.Response, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := c.hc.Do(req)
		var pause time.Duration
		switch {
		case err != nil:
			lastErr = err
		case retryable(resp.StatusCode) && attempt < c.retries:
			lastErr = decodeError(resp)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil {
					pause = time.Duration(secs) * time.Second
				}
			}
		default:
			return resp, nil
		}
		if attempt >= c.retries {
			return nil, lastErr
		}
		if b := core.Backoff(c.backoff, attempt); b > pause {
			pause = b
		}
		if err := c.sleep(ctx, pause); err != nil {
			return nil, err
		}
	}
}

// decodeError drains a non-2xx response into an *APIError and closes
// the body.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var doc progconv.ErrorDoc
	if json.Unmarshal(raw, &doc) == nil && doc.Error != "" {
		return &APIError{Status: resp.StatusCode, Code: doc.Code, Message: doc.Error}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
}

// decodeInto decodes a JSON response and closes the body; non-2xx
// responses become *APIError.
func decodeInto(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a job. The returned status carries the job ID every
// other method takes, and its TraceID names the job's trace (the
// propagated one under WithTraceparent, a content-derived one
// otherwise).
func (c *Client) Submit(ctx context.Context, spec *progconv.JobSpec) (*progconv.JobStatus, error) {
	return c.SubmitTrace(ctx, spec, c.traceparent)
}

// SubmitTrace is Submit with an explicit traceparent for this one
// submission, overriding WithTraceparent; the dispatch coordinator
// uses it to pass each caller's trace through to the routed worker.
// An empty traceparent propagates nothing.
func (c *Client) SubmitTrace(ctx context.Context, spec *progconv.JobSpec, traceparent string) (*progconv.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var hdr map[string]string
	if traceparent != "" {
		hdr = map[string]string{"traceparent": traceparent}
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", nil, body, hdr)
	if err != nil {
		return nil, err
	}
	st := new(progconv.JobStatus)
	if err := decodeInto(resp, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Status fetches one job's status document.
func (c *Client) Status(ctx context.Context, id string) (*progconv.JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, nil)
	if err != nil {
		return nil, err
	}
	st := new(progconv.JobStatus)
	if err := decodeInto(resp, st); err != nil {
		return nil, err
	}
	return st, nil
}

// ListOptions select one page of the job listing.
type ListOptions struct {
	// State filters to one lifecycle state: "queued", "running",
	// "done", "failed" or "canceled". Empty lists every state.
	State string
	// Limit is the page size (0 = the server default).
	Limit int
	// PageToken resumes a listing from a previous page's
	// NextPageToken.
	PageToken string
}

// List fetches one page of the job listing in submission order. Follow
// NextPageToken until it is empty to see every job.
func (c *Client) List(ctx context.Context, opts ListOptions) (*progconv.JobList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", opts.State)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.PageToken != "" {
		q.Set("page_token", opts.PageToken)
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs", q, nil, nil)
	if err != nil {
		return nil, err
	}
	list := new(progconv.JobList)
	if err := decodeInto(resp, list); err != nil {
		return nil, err
	}
	return list, nil
}

// Cancel cancels a queued or running job; terminal jobs are
// unaffected. It returns the job's status after the request.
func (c *Client) Cancel(ctx context.Context, id string) (*progconv.JobStatus, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, nil, nil)
	if err != nil {
		return nil, err
	}
	st := new(progconv.JobStatus)
	if err := decodeInto(resp, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Report fetches a finished job's report document — byte-identical to
// the CLI's -report-json for the same inputs — along with the HTTP
// status it was served with (the shared exit-code table's mapping, so
// 409 means the fail_on gate tripped). A job still queued or running
// returns ErrNotFinished; failed and canceled jobs return *APIError.
func (c *Client) Report(ctx context.Context, id string) ([]byte, int, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/report", nil, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode == http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, resp.StatusCode, ErrNotFinished
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, resp.StatusCode, err
	}
	// A finished report rides non-200 statuses too (409 fail_on, 500
	// pipeline); only a body that decodes as an ErrorDoc is an error.
	var ed progconv.ErrorDoc
	if json.Unmarshal(raw, &ed) == nil && ed.Error != "" {
		return nil, resp.StatusCode, &APIError{Status: resp.StatusCode, Code: ed.Code, Message: ed.Error}
	}
	return raw, resp.StatusCode, nil
}

// Wait polls a job's status until it reaches a terminal state (done,
// failed or canceled) or ctx ends. poll is the polling interval (0 =
// 50ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*progconv.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// WaitReport is Wait followed by Report: it blocks until the job
// finishes and returns the report bytes and serving status.
func (c *Client) WaitReport(ctx context.Context, id string, poll time.Duration) ([]byte, int, error) {
	if _, err := c.Wait(ctx, id, poll); err != nil {
		return nil, 0, err
	}
	return c.Report(ctx, id)
}

// Events streams a job's structured event log as NDJSON — replaying
// from the first event and following live until the job finishes. The
// caller must Close the returned stream. Set omitTiming to drop
// wall-clock fields, leaving the parallelism-independent bytes.
func (c *Client) Events(ctx context.Context, id string, omitTiming bool) (io.ReadCloser, error) {
	q := url.Values{}
	if omitTiming {
		q.Set("omit_timing", "1")
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/events", q, nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// Trace fetches a job's span tree as a wire trace document; a running
// job yields a consistent partial tree.
func (c *Client) Trace(ctx context.Context, id string, omitTiming bool) ([]byte, error) {
	q := url.Values{}
	if omitTiming {
		q.Set("omit_timing", "1")
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", q, nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Ready probes /readyz: nil when the server is accepting work, an
// error while it is draining or unreachable. The health prober in the
// dispatch coordinator is built on this.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Message: "not ready"}
	}
	return nil
}

// Workers fetches a coordinator's worker registry. A standalone daemon
// has no registry and answers not_found.
func (c *Client) Workers(ctx context.Context) (*progconv.WorkerList, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/workers", nil, nil, nil)
	if err != nil {
		return nil, err
	}
	list := new(progconv.WorkerList)
	if err := decodeInto(resp, list); err != nil {
		return nil, err
	}
	return list, nil
}

// RegisterWorker registers (or re-admits) a worker daemon with a
// coordinator and returns its registry entry.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string) (*progconv.WorkerDoc, error) {
	body, err := json.Marshal(progconv.WorkerSpec{V: progconv.WireVersion, URL: workerURL})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/workers", nil, body, nil)
	if err != nil {
		return nil, err
	}
	doc := new(progconv.WorkerDoc)
	if err := decodeInto(resp, doc); err != nil {
		return nil, err
	}
	return doc, nil
}
