package generator

import (
	"context"
	"sort"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/sequel"
	"progconv/internal/value"
)

// personnelData is the shared population: (employee, dept, years).
var personnelData = []struct {
	e, ename string
	age      int
	d, dname string
	mgr      string
	yos      int
}{
	{"E1", "BAKER", 28, "D2", "SALES", "SMITH", 3},
	{"E2", "CLARK", 33, "D2", "SALES", "SMITH", 11},
	{"E3", "ADAMS", 45, "D12", "ACCT", "JONES", 3},
	{"E4", "EVANS", 51, "D2", "SALES", "SMITH", 14},
}

func relDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB(schema.EmpDeptRelational())
	seenDept := map[string]bool{}
	for _, r := range personnelData {
		db.Insert("EMP", value.FromPairs("E#", r.e, "ENAME", r.ename, "AGE", r.age))
		if !seenDept[r.d] {
			seenDept[r.d] = true
			db.Insert("DEPT", value.FromPairs("D#", r.d, "DNAME", r.dname, "MGR", r.mgr))
		}
		db.Insert("EMP-DEPT", value.FromPairs("E#", r.e, "D#", r.d, "YEAR-OF-SERVICE", r.yos))
	}
	return db
}

func netDB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.EmpDeptNetwork())
	s := netstore.NewSession(db)
	seenDept := map[string]bool{}
	for _, r := range personnelData {
		s.Store("EMP", value.FromPairs("E#", r.e, "ENAME", r.ename, "AGE", r.age))
		if !seenDept[r.d] {
			seenDept[r.d] = true
			s.Store("DEPT", value.FromPairs("D#", r.d, "DNAME", r.dname, "MGR", r.mgr))
		}
		s.FindAny("EMP", value.FromPairs("E#", r.e))
		s.FindAny("DEPT", value.FromPairs("D#", r.d))
		if _, st, err := s.Store("EMP-DEPT",
			value.FromPairs("E#", r.e, "D#", r.d, "YEAR-OF-SERVICE", r.yos)); st != netstore.OK || err != nil {
			t.Fatalf("store EMP-DEPT: %v %v", st, err)
		}
	}
	return db
}

// smithBinding is the paper's worked query: manager Smith, more than ten
// years of service.
func smithBinding() (*semantic.Sequence, Binding) {
	return semantic.SmithQuery(), Binding{
		{Field: "MGR", Op: "=", V: value.Str("SMITH")},
		{Field: "YEAR-OF-SERVICE", Op: ">", V: value.Of(10)},
	}
}

// TestCrossModelSynthesis is EXP-S4.1b: one access-pattern sequence
// realized as SEQUEL and as CODASYL DML, both executed, same answers.
func TestCrossModelSynthesis(t *testing.T) {
	seq, bind := smithBinding()
	sem := semantic.PersonnelSchema()

	// Template (A): SEQUEL.
	text, err := ToSequel(context.Background(), seq, sem, bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sequel.ParseQuery(text)
	if err != nil {
		t.Fatalf("generated SEQUEL does not parse: %v\n%s", err, text)
	}
	rows, err := sequel.Exec(relDB(t), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var relNames []string
	for _, r := range rows {
		relNames = append(relNames, r.MustGet("ENAME").AsString())
	}

	// Template (B): CODASYL.
	prog, err := ToNetworkProgram(context.Background(), "SMITH-QUERY", seq, sem, schema.EmpDeptNetwork(), bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dbprog.Run(prog, dbprog.Config{Net: netDB(t)})
	if err != nil {
		t.Fatalf("generated network program failed: %v\n%s", err, dbprog.Format(prog))
	}
	var netNames []string
	for _, e := range tr.Events {
		if e.Kind == dbprog.Terminal {
			netNames = append(netNames, e.Text)
		}
	}

	sort.Strings(relNames)
	sort.Strings(netNames)
	if strings.Join(relNames, ",") != strings.Join(netNames, ",") {
		t.Errorf("cross-model answers differ: SEQUEL %v vs CODASYL %v\n%s\n%s",
			relNames, netNames, text, dbprog.Format(prog))
	}
	if len(relNames) != 2 { // CLARK and EVANS: Smith's people over ten years
		t.Errorf("answers = %v", relNames)
	}
}

func TestToSequelShape(t *testing.T) {
	seq, bind := smithBinding()
	text, err := ToSequel(context.Background(), seq, semantic.PersonnelSchema(), bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT ENAME FROM EMP WHERE E# IN",
		"SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE > 10 AND D# IN",
		"SELECT D# FROM DEPT WHERE MGR = 'SMITH'",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated SEQUEL missing %q:\n%s", want, text)
		}
	}
}

// TestPaperTemplateBEquality generates the paper's exact §4.1 example:
// department D2, three years of service.
func TestPaperTemplateBEquality(t *testing.T) {
	sem := semantic.PersonnelSchema()
	seq := &semantic.Sequence{
		Steps: []semantic.Step{
			{Kind: semantic.ViaSelf, Target: "DEPT", Via: "DEPT", CondFields: []string{"D#"}},
			{Kind: semantic.AssocViaSide, Target: "EMP-DEPT", Via: "DEPT", CondFields: []string{"YEAR-OF-SERVICE"}},
			{Kind: semantic.ViaAssoc, Target: "EMP", Via: "EMP-DEPT"},
		},
		Op: semantic.Retrieve,
	}
	bind := Binding{
		{Field: "D#", Op: "=", V: value.Str("D2")},
		{Field: "YEAR-OF-SERVICE", Op: "=", V: value.Of(3)},
	}
	prog, err := ToNetworkProgram(context.Background(), "TPL-B", seq, sem, schema.EmpDeptNetwork(), bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	text := dbprog.Format(prog)
	// The generated text has the paper's template (B) skeleton.
	for _, want := range []string{
		"MOVE 'D2' TO D# IN DEPT",
		"FIND ANY DEPT USING D#",
		"MOVE 3 TO YEAR-OF-SERVICE IN EMP-DEPT",
		"FIND NEXT EMP-DEPT WITHIN ED USING YEAR-OF-SERVICE",
		"FIND OWNER WITHIN E-ED",
		"GET EMP",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("template B missing %q:\n%s", want, text)
		}
	}
	tr, err := dbprog.Run(prog, dbprog.Config{Net: netDB(t)})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range tr.Events {
		if e.Kind == dbprog.Terminal {
			names = append(names, e.Text)
		}
	}
	if strings.Join(names, ",") != "BAKER" {
		t.Errorf("template B answers = %v", names)
	}
	// The SEQUEL twin returns the same.
	sq, err := ToSequel(context.Background(), seq, sem, bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sequel.ParseQuery(sq)
	rows, err := sequel.Exec(relDB(t), q, nil)
	if err != nil || len(rows) != 1 || rows[0].MustGet("ENAME").AsString() != "BAKER" {
		t.Errorf("template A = %v, %v", rows, err)
	}
}

func TestGeneratorErrors(t *testing.T) {
	sem := semantic.PersonnelSchema()
	seq, bind := smithBinding()
	if _, err := ToSequel(context.Background(), &semantic.Sequence{}, sem, nil, nil); err == nil {
		t.Error("empty sequence")
	}
	if _, err := ToSequel(context.Background(), seq, sem, nil, []string{"ENAME"}); err == nil {
		t.Error("missing binding")
	}
	// Network: entry must be via-self.
	badSeq := &semantic.Sequence{Steps: []semantic.Step{
		{Kind: semantic.AssocViaSide, Target: "EMP-DEPT", Via: "DEPT"},
	}, Op: semantic.Retrieve}
	if _, err := ToNetworkProgram(context.Background(), "X", badSeq, sem, schema.EmpDeptNetwork(), nil, nil); err == nil {
		t.Error("non-entity entry")
	}
	// Non-equality on the entry step.
	seq2 := semantic.SmithQuery()
	bind2 := Binding{
		{Field: "MGR", Op: ">", V: value.Str("A")},
		{Field: "YEAR-OF-SERVICE", Op: "=", V: value.Of(3)},
	}
	if _, err := ToNetworkProgram(context.Background(), "X", seq2, sem, schema.EmpDeptNetwork(), bind2, nil); err == nil {
		t.Error("non-equality entry condition")
	}
	// Non-retrieve op.
	seq3 := semantic.SmithQuery()
	seq3.Op = semantic.Delete
	if _, err := ToNetworkProgram(context.Background(), "X", seq3, sem, schema.EmpDeptNetwork(), bind, nil); err == nil {
		t.Error("non-retrieve op")
	}
	// Missing set between entities.
	disconnected := schema.EmpDeptNetwork()
	disconnected.Sets = disconnected.Sets[:2] // drop E-ED and ED
	if _, err := ToNetworkProgram(context.Background(), "X", semantic.SmithQuery(), sem, disconnected, bind, nil); err == nil {
		t.Error("missing sets")
	}
	// Missing binding in network synthesis.
	if _, err := ToNetworkProgram(context.Background(), "X", semantic.SmithQuery(), sem, schema.EmpDeptNetwork(),
		Binding{{Field: "MGR", Op: "=", V: value.Str("S")}}, nil); err == nil {
		t.Error("missing YOS binding")
	}
}

// TestNonEqualityFilterInLoop: a > condition becomes an IF inside the
// loop rather than a USING clause.
func TestNonEqualityFilterInLoop(t *testing.T) {
	seq, bind := smithBinding()
	prog, err := ToNetworkProgram(context.Background(), "F", seq, semantic.PersonnelSchema(), schema.EmpDeptNetwork(), bind, []string{"ENAME"})
	if err != nil {
		t.Fatal(err)
	}
	text := dbprog.Format(prog)
	if !strings.Contains(text, "IF YEAR-OF-SERVICE IN EMP-DEPT > 10") {
		t.Errorf("filter IF missing:\n%s", text)
	}
	if strings.Contains(text, "USING YEAR-OF-SERVICE") {
		t.Errorf("non-equality must not ride USING:\n%s", text)
	}
}
