// Package generator is the Program Generator of Figure 4.1. Its two
// halves mirror the paper:
//
//   - program text generation for converted ASTs is dbprog.Format (the
//     Program Generator proper "produces a target program");
//   - language-template synthesis (§4.1, Nations & Su): the same
//     data-model-independent access-pattern sequence is realized as a
//     SEQUEL query block (the paper's template A) and as a CODASYL DML
//     program (template B), "since the conversion takes place at a level
//     of abstraction that is removed from an actual DBMS language".
package generator

import (
	"context"
	"fmt"
	"strings"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/value"
)

// Cond binds one constrained field of an access-pattern sequence to a
// concrete comparison.
type Cond struct {
	Field string
	Op    string // = <> < <= > >=
	V     value.Value
}

// Binding supplies the conditions for a sequence's CondFields.
type Binding []Cond

func (b Binding) find(field string) (Cond, bool) {
	for _, c := range b {
		if c.Field == field {
			return c, true
		}
	}
	return Cond{}, false
}

// ToSequel synthesizes the relational realization of an access-pattern
// sequence: nested SELECT blocks linked by IN on the entities' keys, the
// shape of the paper's template (A). Fields lists the output columns of
// the final target. A done ctx aborts with ctx.Err() wrapped.
func ToSequel(ctx context.Context, seq *semantic.Sequence, sem *semantic.Schema, bind Binding, fields []string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("generator: %w", err)
	}
	if err := seq.Validate(sem); err != nil {
		return "", err
	}
	if len(seq.Steps) == 0 {
		return "", fmt.Errorf("generator: empty sequence")
	}
	// linkCol(i) is the column tested by block i against block i-1: the
	// key of whichever of the two adjacent targets is the entity (the
	// association carries the entity's key as an attribute).
	linkCol := func(i int) (string, error) {
		if e := sem.Entity(seq.Steps[i].Target); e != nil && len(e.Key) > 0 {
			return e.Key[0], nil
		}
		if e := sem.Entity(seq.Steps[i-1].Target); e != nil && len(e.Key) > 0 {
			return e.Key[0], nil
		}
		return "", fmt.Errorf("generator: no linking key between %s and %s",
			seq.Steps[i-1].Target, seq.Steps[i].Target)
	}

	var inner string
	for i, st := range seq.Steps {
		conds, err := stepConds(st, bind)
		if err != nil {
			return "", err
		}
		if i > 0 {
			col, err := linkCol(i)
			if err != nil {
				return "", err
			}
			conds = append(conds, fmt.Sprintf("%s IN (%s)", col, inner))
		}
		sel := strings.Join(fields, ", ")
		if i+1 < len(seq.Steps) {
			col, err := linkCol(i + 1)
			if err != nil {
				return "", err
			}
			sel = col
		}
		q := fmt.Sprintf("SELECT %s FROM %s", sel, st.Target)
		if len(conds) > 0 {
			q += " WHERE " + strings.Join(conds, " AND ")
		}
		inner = q
	}
	return inner, nil
}

// stepConds renders a step's bound conditions.
func stepConds(st semantic.Step, bind Binding) ([]string, error) {
	var out []string
	for _, f := range st.CondFields {
		c, ok := bind.find(f)
		if !ok {
			return nil, fmt.Errorf("generator: no binding for condition field %s", f)
		}
		out = append(out, fmt.Sprintf("%s %s %s", c.Field, c.Op, c.V.Literal()))
	}
	return out, nil
}

// ToNetworkProgram synthesizes the CODASYL realization (the paper's
// template B): FIND ANY on the entry entity, a FIND NEXT ... WITHIN ...
// USING loop per association step, FIND OWNER to reach entities from
// association records, and a PRINT of the target's fields. Equality
// conditions ride the USING clauses; other comparisons become IF filters
// inside the loop, as a COBOL programmer would write them. A done ctx
// aborts with ctx.Err() wrapped.
func ToNetworkProgram(ctx context.Context, name string, seq *semantic.Sequence, sem *semantic.Schema,
	net *schema.Network, bind Binding, fields []string) (*dbprog.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("generator: %w", err)
	}
	if err := seq.Validate(sem); err != nil {
		return nil, err
	}
	if len(seq.Steps) == 0 || seq.Steps[0].Kind != semantic.ViaSelf {
		return nil, fmt.Errorf("generator: network template needs a via-self entry step")
	}
	if seq.Op != semantic.Retrieve {
		return nil, fmt.Errorf("generator: only RETRIEVE sequences are synthesized")
	}

	entry := seq.Steps[0]
	var stmts []dbprog.Stmt
	using, filters, err := splitConds(entry, bind)
	if err != nil {
		return nil, err
	}
	if len(filters) > 0 {
		return nil, fmt.Errorf("generator: non-equality condition on the entry step is not realizable as FIND ANY")
	}
	for _, c := range using {
		stmts = append(stmts, dbprog.Move{
			E: dbprog.Lit{V: c.V}, Field: c.Field, Record: entry.Target,
		})
	}
	stmts = append(stmts, dbprog.FindAny{Record: entry.Target, Using: condFieldNames(using)})
	notFound := dbprog.If{
		Cond: dbprog.Bin{Op: "<>", L: dbprog.StatusRef{}, R: dbprog.Lit{V: value.Str("OK")}},
		Then: []dbprog.Stmt{
			dbprog.Print{Args: []dbprog.Expr{dbprog.Lit{V: value.Str("NOT FOUND")}}},
			dbprog.Stop{},
		},
	}
	stmts = append(stmts, notFound)

	// The innermost body prints the final target's fields.
	final := seq.Steps[len(seq.Steps)-1]
	var printArgs []dbprog.Expr
	for _, f := range fields {
		printArgs = append(printArgs, dbprog.Field{Record: final.Target, Field: f})
	}
	body := []dbprog.Stmt{dbprog.Print{Args: printArgs}}

	// Build loops from the inside out.
	for i := len(seq.Steps) - 1; i >= 1; i-- {
		st := seq.Steps[i]
		switch st.Kind {
		case semantic.ViaAssoc:
			// Reach the entity from the association record: FIND OWNER in
			// the set whose owner is the entity and member the association
			// record.
			sets := net.SetsBetween(st.Target, st.Via)
			if len(sets) != 1 {
				return nil, fmt.Errorf("generator: need exactly one set from %s to %s, found %d",
					st.Target, st.Via, len(sets))
			}
			body = append([]dbprog.Stmt{
				dbprog.FindOwner{Set: sets[0].Name},
				dbprog.GetRec{Record: st.Target},
			}, body...)
		case semantic.AssocViaSide:
			sets := net.SetsBetween(st.Via, st.Target)
			if len(sets) != 1 {
				return nil, fmt.Errorf("generator: need exactly one set from %s to %s, found %d",
					st.Via, st.Target, len(sets))
			}
			using, filters, err := splitConds(st, bind)
			if err != nil {
				return nil, err
			}
			inner := append([]dbprog.Stmt{dbprog.GetRec{Record: st.Target}}, wrapFilters(st.Target, filters, body)...)
			var moves []dbprog.Stmt
			for _, c := range using {
				moves = append(moves, dbprog.Move{E: dbprog.Lit{V: c.V}, Field: c.Field, Record: st.Target})
			}
			loop := dbprog.PerformUntil{
				Cond: dbprog.Bin{Op: "<>", L: dbprog.StatusRef{}, R: dbprog.Lit{V: value.Str("OK")}},
				Body: []dbprog.Stmt{
					dbprog.FindInSet{Dir: "NEXT", Record: st.Target, Set: sets[0].Name,
						Using: condFieldNames(using)},
					dbprog.If{
						Cond: dbprog.Bin{Op: "=", L: dbprog.StatusRef{}, R: dbprog.Lit{V: value.Str("OK")}},
						Then: inner,
					},
				},
			}
			body = append(moves, loop)
		default:
			return nil, fmt.Errorf("generator: step kind %v not realizable in the network template", st.Kind)
		}
	}
	stmts = append(stmts, body...)
	return &dbprog.Program{Name: name, Dialect: dbprog.Network, Stmts: stmts}, nil
}

// splitConds separates a step's bound conditions into equality (USING)
// and filter comparisons.
func splitConds(st semantic.Step, bind Binding) (using []Cond, filters []Cond, err error) {
	for _, f := range st.CondFields {
		c, ok := bind.find(f)
		if !ok {
			return nil, nil, fmt.Errorf("generator: no binding for condition field %s", f)
		}
		if c.Op == "=" {
			using = append(using, c)
		} else {
			filters = append(filters, c)
		}
	}
	return using, filters, nil
}

func condFieldNames(cs []Cond) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Field
	}
	return out
}

// wrapFilters guards a body with IF filters for non-equality conditions.
func wrapFilters(record string, filters []Cond, body []dbprog.Stmt) []dbprog.Stmt {
	for i := len(filters) - 1; i >= 0; i-- {
		c := filters[i]
		body = []dbprog.Stmt{dbprog.If{
			Cond: dbprog.Bin{Op: c.Op,
				L: dbprog.Field{Record: record, Field: c.Field},
				R: dbprog.Lit{V: c.V}},
			Then: body,
		}}
	}
	return body
}
