// Package fingerprint computes canonical content hashes for the
// conversion pipeline's cacheable inputs: schemas, transformation
// plans, and programs. A hash identifies content, not identity — two
// structurally identical schemas parsed from different sources share a
// fingerprint — which is what lets the pair-scoped conversion cache
// (internal/plancache) be shared safely across runs, supervisors, and
// processes that happen to reload the same inputs.
//
// Every hash is SHA-256 over a domain-separated, length-prefixed
// serialization, so hashes of different kinds (or of concatenated
// parts) can never collide by construction. The serializations are the
// repository's existing canonical renderings: Figure 4.3 DDL for
// schemas, the plan's Describe listing, and the Program Generator's
// source text for programs.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// Hash is a lowercase-hex SHA-256 digest of a canonical serialization.
type Hash string

// Short returns the leading 12 hex digits — the display form used in
// audit trails and cache events, long enough to be unambiguous in any
// realistic cache and short enough to read.
func (h Hash) Short() string {
	if len(h) <= 12 {
		return string(h)
	}
	return string(h[:12])
}

// sum hashes domain-separated, length-prefixed parts.
func sum(domain string, parts ...string) Hash {
	d := sha256.New()
	io.WriteString(d, domain)
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		d.Write(n[:])
		io.WriteString(d, p)
	}
	return Hash(hex.EncodeToString(d.Sum(nil)))
}

// Schema fingerprints a network schema via its canonical DDL rendering.
// A nil schema has the (stable) empty fingerprint domain.
func Schema(n *schema.Network) Hash {
	if n == nil {
		return sum("schema")
	}
	return sum("schema", n.DDL())
}

// Plan fingerprints a transformation plan via its Describe listing,
// which names every step and its parameters in order. A nil plan has a
// stable empty fingerprint.
func Plan(p *xform.Plan) Hash {
	if p == nil {
		return sum("plan")
	}
	return sum("plan", p.Describe())
}

// Program fingerprints a parsed program via the Program Generator's
// canonical source rendering (name, dialect, and statements).
func Program(p *dbprog.Program) Hash {
	return sum("program", dbprog.Format(p))
}

// Sum hashes arbitrary domain-separated, length-prefixed parts — the
// escape hatch for callers with canonical serializations of their own
// (the dispatch coordinator fingerprints whole job submissions this
// way). Choose a domain no other caller uses.
func Sum(domain string, parts ...string) Hash {
	return sum(domain, parts...)
}

// Hierarchy fingerprints a hierarchical (DL/I) schema via its canonical
// DDL rendering. The domain differs from Schema's, so a network schema
// and a hierarchy can never share a fingerprint even if some rendering
// coincidence made their DDL texts equal.
func Hierarchy(h *schema.Hierarchy) Hash {
	if h == nil {
		return sum("hierschema")
	}
	return sum("hierschema", h.DDL())
}

// HierPlan fingerprints a hierarchical transformation plan via its
// Describe listing, mirroring Plan for the network model.
func HierPlan(p *xform.HierPlan) Hash {
	if p == nil {
		return sum("hierplan")
	}
	return sum("hierplan", p.Describe())
}

// PairKey identifies one conversion pair — the unit the pair-scoped
// cache is keyed on. With an explicit plan the pair is (source schema,
// plan) and dst contributes nothing (it may be nil); with a nil plan
// the pair is (source schema, target schema), since classification is
// a pure function of the two.
func PairKey(src, dst *schema.Network, plan *xform.Plan) Hash {
	if plan != nil {
		return sum("pair", string(Schema(src)), "plan", string(Plan(plan)))
	}
	return sum("pair", string(Schema(src)), "schema", string(Schema(dst)))
}

// HierPairKey identifies one hierarchical conversion pair. It mirrors
// PairKey's shape — (source, plan) when a plan is given, (source,
// target) otherwise — under a distinct domain, so network and
// hierarchical pairs occupy disjoint key spaces by construction.
func HierPairKey(src, dst *schema.Hierarchy, plan *xform.HierPlan) Hash {
	if plan != nil {
		return sum("hierpair", string(Hierarchy(src)), "plan", string(HierPlan(plan)))
	}
	return sum("hierpair", string(Hierarchy(src)), "schema", string(Hierarchy(dst)))
}
