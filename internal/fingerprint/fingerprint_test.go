package fingerprint

import (
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

func TestSchemaHashIsContentAddressed(t *testing.T) {
	a, b := Schema(schema.CompanyV1()), Schema(schema.CompanyV1())
	if a != b {
		t.Errorf("two fresh CompanyV1 values hash differently: %s vs %s", a, b)
	}
	if Schema(schema.CompanyV1()) == Schema(schema.CompanyV2()) {
		t.Error("CompanyV1 and CompanyV2 share a fingerprint")
	}
	mutated := schema.CompanyV1()
	mutated.Records[1].Fields[2].Name = "YEARS"
	if Schema(schema.CompanyV1()) == Schema(mutated) {
		t.Error("field rename did not change the schema fingerprint")
	}
	if Schema(nil) == Schema(schema.CompanyV1()) {
		t.Error("nil schema collides with a real one")
	}
}

func TestProgramAndPlanHashes(t *testing.T) {
	p1, err := dbprog.Parse("PROGRAM A DIALECT NETWORK. PRINT 'X'. END PROGRAM.")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dbprog.Parse("PROGRAM A DIALECT NETWORK. PRINT 'X'. END PROGRAM.")
	if err != nil {
		t.Fatal(err)
	}
	if Program(p1) != Program(p2) {
		t.Error("identical program text hashes differently")
	}
	p3, err := dbprog.Parse("PROGRAM A DIALECT NETWORK. PRINT 'Y'. END PROGRAM.")
	if err != nil {
		t.Fatal(err)
	}
	if Program(p1) == Program(p3) {
		t.Error("distinct program text shares a fingerprint")
	}

	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
	}}
	other := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameField{Record: "EMP", Old: "AGE", New: "Y"},
	}}
	if Plan(plan) == Plan(other) {
		t.Error("distinct plans share a fingerprint")
	}
	if Plan(plan) != Plan(plan) {
		t.Error("plan hash unstable")
	}
}

func TestPairKeyDistinguishesKeyingModes(t *testing.T) {
	src, dst := schema.CompanyV1(), schema.CompanyV2()
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameField{Record: "EMP", Old: "AGE", New: "YEARS"},
	}}
	withPlan := PairKey(src, dst, plan)
	// With an explicit plan, dst contributes nothing.
	if withPlan != PairKey(src, nil, plan) {
		t.Error("explicit-plan pair key depends on dst")
	}
	if withPlan == PairKey(src, dst, nil) {
		t.Error("plan-keyed and schema-diff-keyed pairs collide")
	}
	if PairKey(src, dst, nil) == PairKey(dst, src, nil) {
		t.Error("pair key is direction-insensitive")
	}
}

func TestShort(t *testing.T) {
	h := Schema(schema.CompanyV1())
	if len(h) != 64 || !strings.HasPrefix(string(h), h.Short()) || len(h.Short()) != 12 {
		t.Errorf("hash %q short %q", h, h.Short())
	}
}

func TestHierHashesAreDomainSeparated(t *testing.T) {
	h := schema.EmpDeptHierarchy()
	if Hierarchy(h) != Hierarchy(schema.EmpDeptHierarchy()) {
		t.Error("two fresh EmpDeptHierarchy values hash differently")
	}
	if Hierarchy(nil) == Hierarchy(h) {
		t.Error("nil hierarchy collides with a real one")
	}
	// Domain separation: a hierarchy key can never collide with a
	// network key, even for hand-crafted colliding description text —
	// the domain tags ("hierschema" vs "schema") are length-prefixed
	// into the digest. Spot-check on the shared LRU's real inputs.
	if string(Hierarchy(h)) == string(Schema(schema.CompanyV1())) {
		t.Error("hierarchy and network schema fingerprints collide")
	}

	dst, err := xform.HierReorder{Promote: "EMP"}.ApplySchema(h)
	if err != nil {
		t.Fatal(err)
	}
	plan := &xform.HierPlan{Steps: []xform.HierReorder{{Promote: "EMP"}}}
	withPlan := HierPairKey(h, dst, plan)
	if withPlan != HierPairKey(h, nil, plan) {
		t.Error("explicit-plan hier pair key depends on dst")
	}
	if withPlan == HierPairKey(h, dst, nil) {
		t.Error("plan-keyed and schema-diff-keyed hier pairs collide")
	}
	if HierPairKey(h, dst, nil) == HierPairKey(dst, h, nil) {
		t.Error("hier pair key is direction-insensitive")
	}
}
