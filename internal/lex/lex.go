// Package lex is the shared lexer for every source language in progconv:
// the Figure 4.3 schema DDL, the Maryland FIND DML, the SEQUEL subset, the
// network DML, and the dbprog host language.
//
// The lexical conventions are the paper's own 1979 COBOL-flavoured ones:
//
//   - identifiers are letters, digits, '-', '#' and '$', so EMP-DEPT,
//     YEAR-OF-SERVICE and E# are single tokens. Consequently binary minus
//     must be written with surrounding space (AGE - 1); "AGE-1" is an
//     identifier, exactly as in COBOL.
//   - string literals use single quotes with ” as the escape: 'D2',
//     'O”HARA'.
//   - keywords are not reserved; parsers match uppercase identifiers.
//   - comments run from '*>' to end of line.
package lex

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	Str
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Number:
		return "number"
	case Str:
		return "string"
	case Punct:
		return "punctuation"
	}
	return "token"
}

// Token is one lexical token. Text holds the identifier spelling, the
// number spelling, the decoded string payload, or the punctuation.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a positioned lexical or syntax error.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Errorf builds a positioned error at a token.
func Errorf(t Token, format string, args ...any) error {
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-' || c == '#' || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var multiPunct = []string{"<=", ">=", "<>", ":="}

// Scan tokenizes src. Identifier case is preserved; parsers that want
// case-insensitive keywords compare against strings.ToUpper of Text.
func Scan(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '*' && i+1 < n && src[i+1] == '>':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isIdentStart(c):
			start, sl, sc := i, line, col
			for i < n && isIdentPart(src[i]) {
				advance(1)
			}
			// A trailing hyphen belongs to punctuation, not the name:
			// "X- 1" lexes as X, -, 1.
			text := src[start:i]
			for strings.HasSuffix(text, "-") {
				text = text[:len(text)-1]
				i--
				col--
			}
			toks = append(toks, Token{Kind: Ident, Text: text, Line: sl, Col: sc})
		case isDigit(c):
			start, sl, sc := i, line, col
			for i < n && isDigit(src[i]) {
				advance(1)
			}
			if i+1 < n && src[i] == '.' && isDigit(src[i+1]) {
				advance(1)
				for i < n && isDigit(src[i]) {
					advance(1)
				}
			}
			toks = append(toks, Token{Kind: Number, Text: src[start:i], Line: sl, Col: sc})
		case c == '\'':
			sl, sc := line, col
			advance(1)
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						b.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				b.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, &Error{Line: sl, Col: sc, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: Str, Text: b.String(), Line: sl, Col: sc})
		default:
			sl, sc := line, col
			matched := false
			for _, mp := range multiPunct {
				if strings.HasPrefix(src[i:], mp) {
					toks = append(toks, Token{Kind: Punct, Text: mp, Line: sl, Col: sc})
					advance(len(mp))
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("().,:;=<>+-*/", rune(c)) {
				toks = append(toks, Token{Kind: Punct, Text: string(c), Line: sl, Col: sc})
				advance(1)
				continue
			}
			return nil, &Error{Line: sl, Col: sc, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: line, Col: col})
	return toks, nil
}

// Stream is a token cursor with the lookahead and matching helpers the
// recursive-descent parsers share.
type Stream struct {
	toks []Token
	pos  int
}

// NewStream scans src and returns a cursor over its tokens.
func NewStream(src string) (*Stream, error) {
	toks, err := Scan(src)
	if err != nil {
		return nil, err
	}
	return &Stream{toks: toks}, nil
}

// Peek returns the current token without consuming it.
func (s *Stream) Peek() Token { return s.toks[s.pos] }

// PeekAt returns the token k positions ahead (0 = current).
func (s *Stream) PeekAt(k int) Token {
	if s.pos+k >= len(s.toks) {
		return s.toks[len(s.toks)-1]
	}
	return s.toks[s.pos+k]
}

// Next consumes and returns the current token.
func (s *Stream) Next() Token {
	t := s.toks[s.pos]
	if s.pos < len(s.toks)-1 {
		s.pos++
	}
	return t
}

// AtEOF reports whether the cursor is at end of input.
func (s *Stream) AtEOF() bool { return s.toks[s.pos].Kind == EOF }

// IsKeyword reports whether the current token is the given keyword,
// case-insensitively.
func (s *Stream) IsKeyword(kw string) bool {
	t := s.Peek()
	return t.Kind == Ident && strings.EqualFold(t.Text, kw)
}

// IsPunct reports whether the current token is the given punctuation.
func (s *Stream) IsPunct(p string) bool {
	t := s.Peek()
	return t.Kind == Punct && t.Text == p
}

// TakeKeyword consumes the current token if it is the given keyword.
func (s *Stream) TakeKeyword(kw string) bool {
	if s.IsKeyword(kw) {
		s.Next()
		return true
	}
	return false
}

// TakePunct consumes the current token if it is the given punctuation.
func (s *Stream) TakePunct(p string) bool {
	if s.IsPunct(p) {
		s.Next()
		return true
	}
	return false
}

// ExpectKeyword consumes the given keyword or returns a positioned error.
func (s *Stream) ExpectKeyword(kw string) error {
	if s.TakeKeyword(kw) {
		return nil
	}
	return Errorf(s.Peek(), "expected %s, found %s", kw, s.Peek())
}

// ExpectKeywords consumes a sequence of keywords.
func (s *Stream) ExpectKeywords(kws ...string) error {
	for _, kw := range kws {
		if err := s.ExpectKeyword(kw); err != nil {
			return err
		}
	}
	return nil
}

// ExpectPunct consumes the given punctuation or returns a positioned error.
func (s *Stream) ExpectPunct(p string) error {
	if s.TakePunct(p) {
		return nil
	}
	return Errorf(s.Peek(), "expected %q, found %s", p, s.Peek())
}

// ExpectIdent consumes and returns an identifier or returns an error.
func (s *Stream) ExpectIdent() (string, error) {
	t := s.Peek()
	if t.Kind != Ident {
		return "", Errorf(t, "expected identifier, found %s", t)
	}
	s.Next()
	return t.Text, nil
}
