package lex

import (
	"strings"
	"testing"
	"testing/quick"
)

func scanKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Scan(src)
	if err != nil {
		t.Fatalf("Scan(%q): %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestHyphenatedIdentifiers(t *testing.T) {
	toks := scanKinds(t, "YEAR-OF-SERVICE EMP-DEPT E# D$V")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	want := []string{"YEAR-OF-SERVICE", "EMP-DEPT", "E#", "D$V"}
	for i, w := range want {
		if toks[i].Kind != Ident || toks[i].Text != w {
			t.Errorf("token %d = %v, want ident %q", i, toks[i], w)
		}
	}
}

func TestTrailingHyphenSplits(t *testing.T) {
	toks := scanKinds(t, "X- 1")
	if len(toks) != 3 || toks[0].Text != "X" || toks[1].Text != "-" || toks[2].Text != "1" {
		t.Errorf("X- 1 lexed as %v", toks)
	}
}

func TestMinusInsideNameVsSpaced(t *testing.T) {
	toks := scanKinds(t, "AGE-1")
	if len(toks) != 1 || toks[0].Text != "AGE-1" {
		t.Errorf("AGE-1 should be one identifier, got %v", toks)
	}
	toks = scanKinds(t, "AGE - 1")
	if len(toks) != 3 || toks[1].Text != "-" {
		t.Errorf("AGE - 1 should be three tokens, got %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	toks := scanKinds(t, "30 2.5 007")
	if toks[0].Text != "30" || toks[1].Text != "2.5" || toks[2].Text != "007" {
		t.Errorf("numbers = %v", toks)
	}
	for _, tok := range toks {
		if tok.Kind != Number {
			t.Errorf("%v should be a number", tok)
		}
	}
	// "1." is number then dot (statement terminator), not a float.
	toks = scanKinds(t, "1.")
	if len(toks) != 2 || toks[0].Text != "1" || toks[1].Text != "." {
		t.Errorf("1. = %v", toks)
	}
}

func TestStrings(t *testing.T) {
	toks := scanKinds(t, "'MACHINERY' 'O''HARA' ''")
	want := []string{"MACHINERY", "O'HARA", ""}
	for i, w := range want {
		if toks[i].Kind != Str || toks[i].Text != w {
			t.Errorf("string %d = %v, want %q", i, toks[i], w)
		}
	}
	if _, err := Scan("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestComments(t *testing.T) {
	toks := scanKinds(t, "A *> this is ignored\nB")
	if len(toks) != 2 || toks[0].Text != "A" || toks[1].Text != "B" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestMultiPunct(t *testing.T) {
	toks := scanKinds(t, "<= >= <> := < > =")
	want := []string{"<=", ">=", "<>", ":=", "<", ">", "="}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i, w := range want {
		if toks[i].Kind != Punct || toks[i].Text != w {
			t.Errorf("punct %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestPositions(t *testing.T) {
	toks := scanKinds(t, "A\n  B")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("A at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("B at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestBadCharacter(t *testing.T) {
	_, err := Scan("A @ B")
	if err == nil || !strings.Contains(err.Error(), "@") {
		t.Errorf("err = %v", err)
	}
	var le *Error
	if ok := strings.Contains(err.Error(), "line 1:3"); !ok {
		t.Errorf("error should carry position: %v", err)
	}
	_ = le
}

func TestStreamHelpers(t *testing.T) {
	s, err := NewStream("FIND next EMP WITHIN ED (AGE > 30).")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsKeyword("find") || !s.TakeKeyword("FIND") {
		t.Error("keyword matching should be case-insensitive")
	}
	if !s.TakeKeyword("NEXT") {
		t.Error("next")
	}
	id, err := s.ExpectIdent()
	if err != nil || id != "EMP" {
		t.Errorf("ExpectIdent = %q, %v", id, err)
	}
	if err := s.ExpectKeywords("WITHIN"); err != nil {
		t.Error(err)
	}
	if s.PeekAt(0).Text != "ED" || s.PeekAt(1).Text != "(" {
		t.Error("PeekAt")
	}
	if s.PeekAt(99).Kind != EOF {
		t.Error("PeekAt past end should be EOF")
	}
	s.Next() // ED
	if err := s.ExpectPunct("("); err != nil {
		t.Error(err)
	}
	if err := s.ExpectPunct(")"); err == nil {
		t.Error("ExpectPunct should fail on AGE")
	}
	if err := s.ExpectKeyword("NOPE"); err == nil {
		t.Error("ExpectKeyword should fail")
	}
	if _, err := NewStream("'bad"); err == nil {
		t.Error("NewStream should propagate scan errors")
	}
}

func TestStreamEOFBehaviour(t *testing.T) {
	s, _ := NewStream("A")
	s.Next()
	if !s.AtEOF() {
		t.Error("should be at EOF")
	}
	// Next at EOF stays at EOF.
	if s.Next().Kind != EOF || s.Next().Kind != EOF {
		t.Error("Next at EOF should keep returning EOF")
	}
	if _, err := s.ExpectIdent(); err == nil {
		t.Error("ExpectIdent at EOF should fail")
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: EOF}).String() != "end of input" {
		t.Error("EOF string")
	}
	if got := (Token{Kind: Ident, Text: "A"}).String(); got != `"A"` {
		t.Errorf("ident string = %s", got)
	}
	for k, w := range map[Kind]string{EOF: "end of input", Ident: "identifier",
		Number: "number", Str: "string", Punct: "punctuation", Kind(9): "token"} {
		if k.String() != w {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

// Property: any string literal round-trips through quoting and scanning.
func TestStringLiteralRoundTripProperty(t *testing.T) {
	f := func(payload string) bool {
		if strings.ContainsAny(payload, "\x00") {
			return true // skip NULs; not representable in sources
		}
		quoted := "'" + strings.ReplaceAll(payload, "'", "''") + "'"
		toks, err := Scan(quoted)
		return err == nil && len(toks) == 2 && toks[0].Kind == Str && toks[0].Text == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scanning never panics and always terminates with EOF on
// arbitrary printable input.
func TestScanTotalityProperty(t *testing.T) {
	f := func(s string) bool {
		toks, err := Scan(s)
		if err != nil {
			return true // rejection is fine; crashing is not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
