// Package bridge is the bridge-program strategy of §2.1.2: "the source
// application program's access requirements are supported by dynamically
// reconstructing from the target database that portion of the source
// database needed", with "a reverse mapping ... to reflect updates" and
// differential-file bookkeeping (Severance & Lohman) to decide what must
// be retranslated.
//
// The unmodified source program runs against the reconstruction; the
// strategy's cost is the reconstruction itself, which is why §2.1.2
// expects "a significant increase in processing requirements".
package bridge

import (
	"fmt"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// Bridge mediates between source-schema programs and a restructured
// database.
type Bridge struct {
	srcSchema *schema.Network
	plan      *xform.Plan // source → target
	inverse   *xform.Plan // target → source (the reverse mapping)
	target    *netstore.DB

	// reconstruction is the materialized source-shaped database; version
	// stamps play the role of the differential file: the reconstruction
	// is reused while the target is unchanged.
	reconstruction *netstore.DB
	targetVersion  int
	reconVersion   int
}

// New builds a bridge for programs written against src, over a target
// database produced by plan. The plan must be invertible — exactly
// Housel's restriction, which the paper notes "restricts the scope of the
// conversion problem that can be handled".
func New(src *schema.Network, target *netstore.DB, plan *xform.Plan) (*Bridge, error) {
	inv, err := plan.InversePlan(src)
	if err != nil {
		return nil, fmt.Errorf("bridge: plan has no reverse mapping: %w", err)
	}
	return &Bridge{srcSchema: src, plan: plan, inverse: inv, target: target}, nil
}

// Target returns the current restructured database.
func (b *Bridge) Target() *netstore.DB { return b.target }

// Reconstruct materializes the source-shaped database from the target if
// the cached reconstruction is stale.
func (b *Bridge) Reconstruct() (*netstore.DB, error) {
	if b.reconstruction != nil && b.reconVersion == b.targetVersion {
		return b.reconstruction, nil
	}
	recon, err := b.inverse.MigrateData(b.target)
	if err != nil {
		return nil, fmt.Errorf("bridge: reconstruction: %w", err)
	}
	b.reconstruction = recon
	b.reconVersion = b.targetVersion
	return recon, nil
}

// Run executes an unmodified source program through the bridge: the
// needed source database is reconstructed, the program runs against it,
// and if the program wrote to the database the changes are retranslated
// forward into the target ("each simulated source database segment that
// has changed must be retranslated").
func (b *Bridge) Run(p *dbprog.Program, cfg dbprog.Config) (*dbprog.Trace, error) {
	recon, err := b.Reconstruct()
	if err != nil {
		return nil, err
	}
	writes := Writes(p)
	runDB := recon
	if writes {
		runDB = recon.Clone()
	}
	cfg.Net = runDB
	trace, err := dbprog.Run(p, cfg)
	if err != nil {
		return trace, err
	}
	if writes {
		newTarget, err := b.plan.MigrateData(runDB)
		if err != nil {
			return trace, fmt.Errorf("bridge: retranslation: %w", err)
		}
		b.target = newTarget
		b.targetVersion++
	}
	return trace, nil
}

// Writes reports whether a program contains database-writing DML, the
// static check that decides whether retranslation is needed (the
// differential-file shortcut: pure retrievals never invalidate the
// reconstruction).
func Writes(p *dbprog.Program) bool {
	return blockWrites(p.Stmts)
}

func blockWrites(stmts []dbprog.Stmt) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case dbprog.StoreRec, dbprog.ModifyRec, dbprog.EraseRec,
			dbprog.ConnectRec, dbprog.DisconnectRec,
			dbprog.MDelete, dbprog.MModify, dbprog.MStore,
			dbprog.SqlExec, dbprog.DLIInsert, dbprog.DLIDelete, dbprog.DLIRepl:
			return true
		case dbprog.If:
			if blockWrites(s.Then) || blockWrites(s.Else) {
				return true
			}
		case dbprog.PerformUntil:
			if blockWrites(s.Body) {
				return true
			}
		case dbprog.ForEach:
			if blockWrites(s.Body) {
				return true
			}
		case dbprog.SqlForEach:
			if blockWrites(s.Body) {
				return true
			}
		}
	}
	return false
}
