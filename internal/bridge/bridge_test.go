package bridge

import (
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func v1DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const readerProgram = `
PROGRAM READER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP, DEPT-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`

// TestBridgeRunsUnmodifiedProgram: the original program, untouched, runs
// against the reconstruction and produces exactly its original output.
func TestBridgeRunsUnmodifiedProgram(t *testing.T) {
	src := v1DB(t)
	target, err := figurePlan().MigrateData(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(schema.CompanyV1(), target, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, readerProgram)
	want, err := dbprog.Run(p, dbprog.Config{Net: src.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Run(p, dbprog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("bridge trace differs:\n%s\nvs\n%s", want, got)
	}
}

func TestBridgeReconstructionCached(t *testing.T) {
	target, _ := figurePlan().MigrateData(v1DB(t))
	b, err := New(schema.CompanyV1(), target, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := b.Reconstruct()
	if r1 != r2 {
		t.Error("reconstruction should be cached while the target is unchanged")
	}
}

// TestBridgeWriteBack: an updating program's effects are retranslated
// into the target and visible to later bridge runs.
func TestBridgeWriteBack(t *testing.T) {
	target, _ := figurePlan().MigrateData(v1DB(t))
	b, err := New(schema.CompanyV1(), target, figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	writer := parse(t, `
PROGRAM WRITER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'FOSTER' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 29 TO AGE IN EMP.
  STORE EMP.
  PRINT DB-STATUS.
END PROGRAM.
`)
	tr, err := b.Run(writer, dbprog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Text != "OK" {
		t.Fatalf("store failed: %v", tr.Events)
	}
	// The retranslated target has the new employee under MACHINERY/SALES.
	if b.Target().Count("EMP") != 5 {
		t.Errorf("target EMP count = %d", b.Target().Count("EMP"))
	}
	// A later bridged reader sees the write.
	got, err := b.Run(parse(t, readerProgram), dbprog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.String(), "FOSTER SALES") {
		t.Errorf("write not visible to later run:\n%s", got)
	}
}

func TestBridgeRequiresInvertiblePlan(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.DropField{Record: "EMP", Field: "AGE"},
	}}
	if _, err := New(schema.CompanyV1(), netstore.NewDB(schema.CompanyV1()), plan); err == nil {
		t.Error("non-invertible plan must be refused (Housel's restriction)")
	}
}

func TestWritesDetection(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{readerProgram, false},
		{`PROGRAM W DIALECT NETWORK. STORE DIV. END PROGRAM.`, true},
		{`PROGRAM W DIALECT NETWORK. IF 1 = 1 ERASE EMP. END-IF. END PROGRAM.`, true},
		{`PROGRAM W DIALECT MARYLAND. FIND(DIV: SYSTEM, ALL-DIV, DIV) INTO C. DELETE C. END PROGRAM.`, true},
		{`PROGRAM W DIALECT MARYLAND. FIND(DIV: SYSTEM, ALL-DIV, DIV) INTO C. FOR EACH D IN C PRINT 'X'. END-FOR. END PROGRAM.`, false},
		{`PROGRAM W DIALECT SEQUEL. FOR EACH R IN (SELECT CNO FROM C) DELETE FROM C WHERE CNO = 'X'. END-FOR. END PROGRAM.`, true},
		{`PROGRAM W DIALECT NETWORK. PERFORM UNTIL 1 = 1 CONNECT EMP TO DIV-EMP. END-PERFORM. END PROGRAM.`, true},
	}
	for _, tc := range cases {
		if got := Writes(parse(t, tc.src)); got != tc.want {
			t.Errorf("Writes = %v, want %v for\n%s", got, tc.want, tc.src)
		}
	}
}
