package equiv

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
)

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cfg() dbprog.Config {
	return dbprog.Config{Net: netstore.NewDB(schema.CompanyV1())}
}

func TestCheckEqual(t *testing.T) {
	a := parse(t, `PROGRAM A DIALECT NETWORK. PRINT 'X'. PRINT 'Y'. END PROGRAM.`)
	b := parse(t, `PROGRAM B DIALECT NETWORK. PRINT 'X'. PRINT 'Y'. END PROGRAM.`)
	v := Check(context.Background(), a, cfg(), b, cfg())
	if !v.Equal {
		t.Errorf("verdict = %+v", v)
	}
	if v.Diff() != "traces identical" {
		t.Error("Diff on equal")
	}
}

func TestCheckDivergent(t *testing.T) {
	a := parse(t, `PROGRAM A DIALECT NETWORK. PRINT 'X'. END PROGRAM.`)
	b := parse(t, `PROGRAM B DIALECT NETWORK. PRINT 'Z'. END PROGRAM.`)
	v := Check(context.Background(), a, cfg(), b, cfg())
	if v.Equal {
		t.Error("should diverge")
	}
	if !strings.Contains(v.Diff(), "event 0") {
		t.Errorf("diff = %s", v.Diff())
	}
	// Length divergence.
	c := parse(t, `PROGRAM C DIALECT NETWORK. PRINT 'X'. PRINT 'MORE'. END PROGRAM.`)
	v2 := Check(context.Background(), a, cfg(), c, cfg())
	if v2.Equal || !strings.Contains(v2.Diff(), "source ended") {
		t.Errorf("diff = %s", v2.Diff())
	}
	v3 := Check(context.Background(), c, cfg(), a, cfg())
	if v3.Equal || !strings.Contains(v3.Diff(), "target ended") {
		t.Errorf("diff = %s", v3.Diff())
	}
}

func TestCheckAbortedRun(t *testing.T) {
	a := parse(t, `PROGRAM A DIALECT NETWORK. PRINT 'X'. END PROGRAM.`)
	bad := parse(t, `PROGRAM B DIALECT NETWORK. PRINT NOPE. END PROGRAM.`)
	v := Check(context.Background(), a, cfg(), bad, cfg())
	if v.Equal || v.TargetErr == nil {
		t.Errorf("verdict = %+v", v)
	}
	if !strings.Contains(v.Diff(), "aborted") {
		t.Errorf("diff = %s", v.Diff())
	}
}

func TestTerminalLinesAndSummary(t *testing.T) {
	a := parse(t, `PROGRAM A DIALECT NETWORK. PRINT 'X'. WRITE 'F' 'L'. PRINT 'Y'. END PROGRAM.`)
	tr, _ := dbprog.Run(a, cfg())
	lines := TerminalLines(tr)
	if len(lines) != 2 || lines[0] != "X" {
		t.Errorf("lines = %v", lines)
	}
	s := Summary(map[string]Verdict{
		"ok":  {Equal: true},
		"bad": {Equal: false, Source: &dbprog.Trace{}, Target: &dbprog.Trace{}},
	})
	if !strings.Contains(s, "1 equivalent, 1 divergent") || !strings.Contains(s, "bad:") {
		t.Errorf("summary = %s", s)
	}
}
