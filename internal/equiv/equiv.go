// Package equiv is the operational equivalence checker: the paper's §1.1
// rule that "except with respect to the database, a restructured program
// must preserve the input/output behavior of the original program" — the
// same terminal messages and the same series of reads and writes to
// non-database files, while "a different combination of interactions is
// acceptable with respect to the database".
package equiv

import (
	"context"
	"fmt"
	"strings"

	"progconv/internal/dbprog"
	"progconv/internal/obs"
)

// Verdict is the outcome of one equivalence check.
type Verdict struct {
	Equal  bool
	Source *dbprog.Trace
	Target *dbprog.Trace
	// SourceErr/TargetErr record aborted runs; two runs that abort are
	// not equal (the paper's conversions must preserve behaviour, and an
	// aborting program has none to preserve).
	SourceErr error
	TargetErr error
}

// Diff renders the first divergence for the conversion report.
func (v Verdict) Diff() string {
	if v.Equal {
		return "traces identical"
	}
	if v.SourceErr != nil || v.TargetErr != nil {
		return fmt.Sprintf("runs aborted: source=%v target=%v", v.SourceErr, v.TargetErr)
	}
	a, b := v.Source.Events, v.Target.Events
	for i := 0; i < len(a) || i < len(b); i++ {
		switch {
		case i >= len(a):
			return fmt.Sprintf("event %d: source ended, target has %s", i, b[i])
		case i >= len(b):
			return fmt.Sprintf("event %d: target ended, source has %s", i, a[i])
		case a[i] != b[i]:
			return fmt.Sprintf("event %d: source %s vs target %s", i, a[i], b[i])
		}
	}
	return "traces identical"
}

// Check runs the source program under its configuration and the target
// program under its configuration and compares the observable traces.
// The two runs execute concurrently — they share nothing (each run gets
// its own database clone from the caller) — and both poll ctx, so a
// canceled check aborts promptly on both sides. The verdict and the
// emitted Verify event are built after both runs join, on the calling
// goroutine, keeping the event stream deterministic. A done ctx yields
// a non-Equal verdict carrying ctx.Err() in both error slots, so
// canceled checks are never mistaken for divergence-free runs.
func Check(ctx context.Context, src *dbprog.Program, srcCfg dbprog.Config, dst *dbprog.Program, dstCfg dbprog.Config) Verdict {
	if err := ctx.Err(); err != nil {
		return Verdict{SourceErr: err, TargetErr: err}
	}
	if srcCfg.Ctx == nil {
		srcCfg.Ctx = ctx
	}
	if dstCfg.Ctx == nil {
		dstCfg.Ctx = ctx
	}
	var (
		tb   *dbprog.Trace
		eb   error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		tb, eb = dbprog.Run(dst, dstCfg)
	}()
	ta, ea := dbprog.Run(src, srcCfg)
	<-done
	v := Verdict{Source: ta, Target: tb, SourceErr: ea, TargetErr: eb}
	v.Equal = ea == nil && eb == nil && ta.Equal(tb)
	if em := obs.EmitterFrom(ctx); em.Enabled() {
		em.Verify(src.Name, v.Equal, v.Diff())
	}
	return v
}

// TerminalLines extracts the terminal output of a trace, a convenience
// for experiments that compare answers rather than full traces.
func TerminalLines(t *dbprog.Trace) []string {
	var out []string
	for _, e := range t.Events {
		if e.Kind == dbprog.Terminal {
			out = append(out, e.Text)
		}
	}
	return out
}

// Summary renders a batch of verdicts for a report.
func Summary(verdicts map[string]Verdict) string {
	var b strings.Builder
	pass, fail := 0, 0
	for name, v := range verdicts {
		if v.Equal {
			pass++
		} else {
			fail++
			fmt.Fprintf(&b, "  %s: %s\n", name, v.Diff())
		}
	}
	return fmt.Sprintf("%d equivalent, %d divergent\n%s", pass, fail, b.String())
}
