package wire

// The machine-readable error-code table. Every non-2xx response body
// the daemon (or the coordinator) serves is an ErrorDoc whose Code is
// drawn from this table, so clients can dispatch on a stable token
// instead of parsing prose; the prose Error field stays free to
// change. The codes are part of the v1 wire schema: additions are
// compatible, renames and removals bump the version.
//
// The table, with the HTTP statuses each code rides on:
//
//	bad_spec    400  the submission failed validation or did not parse
//	not_found   404  no such job (or worker)
//	queue_full  429  the admission queue is full; Retry-After is set
//	draining    503  the server is draining; Retry-After is set
//	no_worker   503  the coordinator has no healthy worker for the
//	                 job's pair; Retry-After is set
//	deadline    504→ the job's deadline expired before it finished
//	                 (served with the run-error status, 500)
//	canceled    499* the job was canceled by the client (served 500;
//	                 the 499 is the conventional nginx analogue)
//	failed      500  the run itself failed (classification failure,
//	                 exhausted failure budget, encoder error)
//	fail_on     409  the -fail-on/fail_on gate tripped (ExitFailOn)
//	pipeline    500  programs failed in the pipeline (ExitPipeline)
//	internal    500  anything else
//
// CLI exit paths speak the same table: cmd/progconv and cmd/progconvctl
// prefix their terminal error line with the code (`progconv: fail_on:
// ...`), mapped from the shared exit-code table by CodeFor.
type ErrorCode string

// The error codes.
const (
	CodeBadSpec   ErrorCode = "bad_spec"
	CodeNotFound  ErrorCode = "not_found"
	CodeQueueFull ErrorCode = "queue_full"
	CodeDraining  ErrorCode = "draining"
	CodeNoWorker  ErrorCode = "no_worker"
	CodeDeadline  ErrorCode = "deadline"
	CodeCanceled  ErrorCode = "canceled"
	CodeFailed    ErrorCode = "failed"
	CodeFailOn    ErrorCode = "fail_on"
	CodePipeline  ErrorCode = "pipeline"
	CodeInternal  ErrorCode = "internal"
)

// CodeFor maps the shared exit-code table onto the error-code table —
// the mapping CLI exit paths use so a scripted caller sees the same
// token on stderr that an HTTP client sees in the ErrorDoc. ExitOK has
// no code (empty string).
func CodeFor(c ExitCode) ErrorCode {
	switch c {
	case ExitOK:
		return ""
	case ExitUsage:
		return CodeBadSpec
	case ExitFailOn:
		return CodeFailOn
	case ExitPipeline:
		return CodePipeline
	}
	return CodeFailed
}
