package wire

import (
	"fmt"
	"time"
)

// JobSpec is the v1 submission body the conversion daemon accepts: one
// schema pair, its program inventory, and the run options. It is the
// network form of what the CLI expresses as file arguments and flags.
type JobSpec struct {
	// V is the wire schema version; zero is accepted as "current".
	V int `json:"v"`
	// Model names the data model the pair converts under: "network"
	// (CODASYL) or "hierarchical" (IMS / DL/I). Empty means "network",
	// so v1 clients that predate the field keep working unchanged.
	Model string `json:"model,omitempty"`
	// SourceDDL and TargetDDL are the schema pair in the model's
	// canonical DDL form: Figure 4.3-style network DDL (SCHEMA ...
	// RECORD ... SET ...) for the network model, SEGMENT-form hierarchy
	// DDL (HIERARCHY ... SEGMENT ... ROOT|PARENT) for the hierarchical
	// model.
	SourceDDL string `json:"source_ddl"`
	TargetDDL string `json:"target_ddl"`
	// Programs is the inventory to convert, in submission order.
	Programs []ProgramSpec `json:"programs"`
	// Options configures the run; the zero value matches the CLI
	// defaults.
	Options JobOptions `json:"options"`
}

// ProgramSpec is one program of a job's inventory.
type ProgramSpec struct {
	// Source is the program text in any of the embedded DML dialects.
	Source string `json:"source"`
}

// JobOptions mirrors the CLI convert flags onto the wire. Durations
// are Go duration strings ("90s", "1.5m"); empty means unbounded.
type JobOptions struct {
	// Parallelism bounds the per-job worker pool (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// MigrateParallel bounds the data-migration shard workers (0 = the
	// server default, which itself defaults to GOMAXPROCS). Results are
	// byte-identical at any setting.
	MigrateParallel int `json:"migrate_parallel,omitempty"`
	// AcceptOrder makes the policy analyst accept order changes.
	AcceptOrder bool `json:"accept_order,omitempty"`
	// Timeout, StageTimeout and AnalystTimeout are the PR-3 budgets
	// (-timeout, -stage-timeout, -analyst-timeout).
	Timeout        string `json:"timeout,omitempty"`
	StageTimeout   string `json:"stage_timeout,omitempty"`
	AnalystTimeout string `json:"analyst_timeout,omitempty"`
	// Retries retries transient stage errors (-retries).
	Retries int `json:"retries,omitempty"`
	// OnFailure is the batch failure policy: "fail-fast", "collect" or
	// "budget:N" (-on-failure).
	OnFailure string `json:"on_failure,omitempty"`
	// FailOn gates the job result like the CLI -fail-on flag: "manual"
	// or "qualified". A tripped gate maps to ExitFailOn.
	FailOn string `json:"fail_on,omitempty"`
	// VerifyInit is a program run against an empty source database to
	// populate it; the populated database is migrated and automatic
	// conversions are verified against it (-verify-init).
	VerifyInit string `json:"verify_init,omitempty"`
	// Deadline bounds the whole job, queue wait excluded; the server
	// clamps it to its configured maximum.
	Deadline string `json:"deadline,omitempty"`
	// Inject arms the deterministic fault injector (-inject grammar).
	Inject string `json:"inject,omitempty"`
}

// The data models a JobSpec may name. They match the core supervisor's
// model names; the empty string is the v1 default, "network".
const (
	ModelNetwork      = "network"
	ModelHierarchical = "hierarchical"
)

// ModelName resolves the spec's model, mapping the empty v1 default to
// "network".
func (s *JobSpec) ModelName() string {
	if s.Model == "" {
		return ModelNetwork
	}
	return s.Model
}

// ValidModel reports whether a model token is one this schema version
// understands (empty included, as the network default).
func ValidModel(m string) bool {
	return m == "" || m == ModelNetwork || m == ModelHierarchical
}

// Duration parses one of the option duration strings; empty is zero.
func Duration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}

// Validate checks a submission for structural problems the server must
// reject with a usage error before queuing: unknown wire version,
// missing schemas or programs, and malformed option grammar.
func (s *JobSpec) Validate() error {
	if s.V != 0 && s.V != Version {
		return fmt.Errorf("unsupported wire version %d (this server speaks v%d)", s.V, Version)
	}
	if !ValidModel(s.Model) {
		return fmt.Errorf("unknown model %q (this server speaks %q and %q)", s.Model, ModelNetwork, ModelHierarchical)
	}
	if s.SourceDDL == "" || s.TargetDDL == "" {
		return fmt.Errorf("source_ddl and target_ddl are required")
	}
	if len(s.Programs) == 0 {
		return fmt.Errorf("at least one program is required")
	}
	for i, p := range s.Programs {
		if p.Source == "" {
			return fmt.Errorf("programs[%d]: source is empty", i)
		}
	}
	if !ValidFailOn(s.Options.FailOn) {
		return fmt.Errorf("fail_on must be \"manual\" or \"qualified\", got %q", s.Options.FailOn)
	}
	if _, err := ParseFailurePolicy(s.Options.OnFailure); err != nil {
		return fmt.Errorf("on_failure: %w", err)
	}
	for _, d := range []struct{ name, val string }{
		{"timeout", s.Options.Timeout},
		{"stage_timeout", s.Options.StageTimeout},
		{"analyst_timeout", s.Options.AnalystTimeout},
		{"deadline", s.Options.Deadline},
	} {
		if _, err := Duration(d.val); err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
	}
	if s.Options.Retries < 0 || s.Options.Parallelism < 0 {
		return fmt.Errorf("retries and parallelism must be non-negative")
	}
	if s.Options.MigrateParallel < 0 {
		return fmt.Errorf("migrate_parallel must be non-negative")
	}
	return nil
}

// JobStatus is the v1 status document for one submitted job.
type JobStatus struct {
	V  int    `json:"v"`
	ID string `json:"id"`
	// State is "queued", "running", "done", "failed" or "canceled".
	State string `json:"state"`
	// ExitCode is present once the job reached a terminal state; it is
	// the code an equivalent CLI run would have exited with.
	ExitCode *int `json:"exit_code,omitempty"`
	// Error explains failed and canceled states, and carries the
	// ExitFor message for done jobs whose gate tripped.
	Error string `json:"error,omitempty"`
	// TraceID is the job's trace — the inbound traceparent's trace-id
	// when one was propagated, otherwise derived from the job content
	// and submission index. The span tree is at /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
}

// JobList is the v1 body of GET /v1/jobs: one page of job status
// documents in submission order, optionally filtered by state.
// NextPageToken, when present, is the opaque cursor that fetches the
// next page; its absence means the listing is exhausted.
type JobList struct {
	V    int         `json:"v"`
	Jobs []JobStatus `json:"jobs"`
	// NextPageToken resumes the listing where this page stopped. Treat
	// it as opaque: its format may change without a version bump.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// ErrorDoc is the v1 body of every non-2xx daemon response.
type ErrorDoc struct {
	V int `json:"v"`
	// Code is the machine-readable token from the ErrorCode table;
	// dispatch on it, not on Error's prose.
	Code  ErrorCode `json:"code,omitempty"`
	Error string    `json:"error"`
}
