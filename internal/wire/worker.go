package wire

import (
	"fmt"
	"net/url"
)

// WorkerSpec is the v1 body of POST /v1/workers: it registers (or
// re-admits) one worker daemon with a coordinator. URL is the worker's
// base URL — the address its v1 API is mounted on, the same address
// the coordinator's -workers flag lists at boot.
type WorkerSpec struct {
	V   int    `json:"v"`
	URL string `json:"url"`
}

// Validate checks a registration for the problems the coordinator must
// reject with a usage error: unknown wire version and a missing or
// unparseable base URL.
func (s *WorkerSpec) Validate() error {
	if s.V != 0 && s.V != Version {
		return fmt.Errorf("unsupported wire version %d (this server speaks v%d)", s.V, Version)
	}
	if s.URL == "" {
		return fmt.Errorf("url is required")
	}
	u, err := url.Parse(s.URL)
	if err != nil {
		return fmt.Errorf("url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("url must be absolute http(s), got %q", s.URL)
	}
	return nil
}

// WorkerDoc is one entry of the coordinator's worker registry as
// served by GET /v1/workers: the worker's address, its health state,
// and the routing counters the coordinator keeps for it.
type WorkerDoc struct {
	V   int    `json:"v"`
	URL string `json:"url"`
	// State is "healthy" or "quarantined". A quarantined worker gets
	// no new jobs and its in-flight jobs have been re-dispatched; the
	// health prober keeps probing it and re-admits it on success.
	State string `json:"state"`
	// Routed counts jobs the coordinator dispatched to this worker,
	// including re-dispatches landing here after another worker died.
	Routed int64 `json:"routed"`
	// Failovers counts jobs re-dispatched *away* from this worker
	// after it was found dead.
	Failovers int64 `json:"failovers"`
	// ConsecutiveFailures is the current run of failed /readyz probes;
	// reaching the coordinator's threshold quarantines the worker.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
}

// WorkerList is the v1 body of GET /v1/workers, in registration order.
type WorkerList struct {
	V       int         `json:"v"`
	Workers []WorkerDoc `json:"workers"`
}
