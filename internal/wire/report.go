package wire

import (
	"encoding/json"
	"io"

	"progconv/internal/core"
)

// Report is the v1 JSON document for one conversion run — the wire
// rendering of core.Report shared by the CLI's -report-json flag and
// the daemon's report endpoint. It carries no wall-clock values, so
// for identical inputs the document is byte-identical at any
// parallelism and across the CLI/daemon boundary.
type Report struct {
	V int `json:"v"`
	// Model names the data model the run converted under. Empty means
	// "network" — the v1 default, omitted so network documents keep
	// their historical bytes.
	Model      string `json:"model,omitempty"`
	Plan       string `json:"plan"`
	Invertible bool   `json:"invertible"`
	// TargetDDL is the target schema in its model's canonical DDL form:
	// Figure 4.3 network DDL, or SEGMENT-form hierarchy DDL.
	TargetDDL string `json:"target_ddl,omitempty"`
	// MigrationWarnings are the data translation's advisories (the
	// network migrator raises none today).
	MigrationWarnings []string  `json:"migration_warnings,omitempty"`
	Outcomes          []Outcome `json:"outcomes"`
	Auto              int       `json:"auto"`
	Qualified         int       `json:"qualified"`
	Manual            int       `json:"manual"`
	Failed            int       `json:"failed"`
}

// Outcome is one program's conversion record on the wire.
type Outcome struct {
	Name          string         `json:"name"`
	Disposition   string         `json:"disposition"`
	Issues        []Issue        `json:"issues,omitempty"`
	Notes         []string       `json:"notes,omitempty"`
	Optimizations []Optimization `json:"optimizations,omitempty"`
	Generated     string         `json:"generated,omitempty"`
	Verified      *Verdict       `json:"verified,omitempty"`
	Audit         Audit          `json:"audit"`
}

// Issue is one analyzer or converter finding.
type Issue struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// Optimization is one optimizer rewrite applied to a converted program.
type Optimization struct {
	Rule string `json:"rule"`
	Note string `json:"note"`
}

// Verdict is the equivalence check against the migrated data. Detail
// renders the first divergence and is empty for equal traces.
type Verdict struct {
	Equal  bool   `json:"equal"`
	Detail string `json:"detail,omitempty"`
}

// Audit is the decision trail behind an outcome's disposition.
type Audit struct {
	Reason string `json:"reason"`
	// Model names the data model the program converted under; empty
	// means "network" (the v1 default, omitted for byte compatibility).
	Model     string     `json:"model,omitempty"`
	Pair      string     `json:"pair,omitempty"`
	Hazards   []string   `json:"hazards,omitempty"`
	PlanStep  string     `json:"plan_step,omitempty"`
	Decisions []Decision `json:"decisions,omitempty"`
	Failure   *Failure   `json:"failure,omitempty"`
	Retries   []Retry    `json:"retries,omitempty"`
}

// Decision is one Analyst consultation.
type Decision struct {
	Kind     string `json:"kind"`
	Msg      string `json:"msg"`
	Accepted bool   `json:"accepted"`
	TimedOut bool   `json:"timed_out,omitempty"`
}

// Failure is the evidence behind a Failed disposition. The message is
// the deterministic rendering (never the panic stack), so documents
// stay byte-identical at any parallelism.
type Failure struct {
	Stage    string `json:"stage"`
	Kind     string `json:"kind"`
	Message  string `json:"message"`
	Attempts int    `json:"attempts,omitempty"`
}

// Retry is one transient-error retry taken while converting a program.
type Retry struct {
	Stage   string `json:"stage"`
	Attempt int    `json:"attempt"`
	Backoff string `json:"backoff"`
	Err     string `json:"err"`
}

// FromReport renders a core.Report as its v1 wire document.
func FromReport(r *core.Report) *Report {
	auto, qualified, manual := r.Counts()
	doc := &Report{
		V:          Version,
		Plan:       r.PlanDescription,
		Invertible: r.Invertible,
		Outcomes:   make([]Outcome, 0, len(r.Outcomes)),
		Auto:       auto,
		Qualified:  qualified,
		Manual:     manual,
		Failed:     r.FailedCount(),
	}
	if r.Model != "" && r.Model != core.ModelNetwork {
		doc.Model = r.Model
	}
	doc.MigrationWarnings = r.MigrationWarnings
	if r.TargetSchema != nil {
		doc.TargetDDL = r.TargetSchema.DDL()
	} else if r.TargetHierarchy != nil {
		doc.TargetDDL = r.TargetHierarchy.DDL()
	}
	for i := range r.Outcomes {
		doc.Outcomes = append(doc.Outcomes, fromOutcome(&r.Outcomes[i]))
	}
	return doc
}

func fromOutcome(o *core.Outcome) Outcome {
	w := Outcome{
		Name:        o.Name,
		Disposition: o.Disposition.String(),
		Notes:       o.Notes,
		Generated:   o.Generated,
	}
	for _, i := range o.Issues {
		w.Issues = append(w.Issues, Issue{Kind: i.Kind.String(), Msg: i.Msg})
	}
	for _, op := range o.Optimizations {
		w.Optimizations = append(w.Optimizations, Optimization{Rule: op.Rule, Note: op.Note})
	}
	if v := o.Verified; v != nil {
		wv := &Verdict{Equal: v.Equal}
		if !v.Equal {
			wv.Detail = v.Diff()
		}
		w.Verified = wv
	}
	w.Audit = Audit{
		Reason:   o.Audit.Reason,
		Pair:     o.Audit.Pair,
		Hazards:  o.Audit.Hazards,
		PlanStep: o.Audit.PlanStep,
	}
	if o.Audit.Model != "" && o.Audit.Model != core.ModelNetwork {
		w.Audit.Model = o.Audit.Model
	}
	for _, d := range o.Audit.Decisions {
		w.Audit.Decisions = append(w.Audit.Decisions, Decision{
			Kind: d.Issue.Kind.String(), Msg: d.Issue.Msg,
			Accepted: d.Accepted, TimedOut: d.TimedOut,
		})
	}
	if f := o.Audit.Failure; f != nil {
		w.Audit.Failure = &Failure{
			Stage: f.Stage, Kind: f.Kind.String(),
			Message: f.Error(), Attempts: f.Attempts,
		}
	}
	for _, rt := range o.Audit.Retries {
		w.Audit.Retries = append(w.Audit.Retries, Retry{
			Stage: rt.Stage, Attempt: rt.Attempt,
			Backoff: rt.Backoff.String(), Err: rt.Err,
		})
	}
	return w
}

// EncodeReport writes the v1 wire document for r: two-space-indented
// JSON plus a trailing newline, byte-deterministic for identical runs.
func EncodeReport(w io.Writer, r *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromReport(r))
}
