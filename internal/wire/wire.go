// Package wire pins the framework's versioned JSON wire schema. Every
// machine-readable artifact the toolchain emits — the structured event
// log behind the CLI's -events flag, the Report/Outcome/Audit document
// behind -report-json and the daemon's job endpoints, the job
// submission body cmd/progconvd accepts, and the exit-code table the
// CLIs and the server's HTTP status mapping share — is rendered through
// this package, so the daemon's output is byte-identical to the CLI's
// for the same inputs and consumers can dispatch on one explicit
// schema version field.
//
// Version is the current schema generation. Every document and every
// event line carries it as a leading "v" field; additive changes keep
// the version, renames and removals bump it. Encoders in this package
// never emit wall-clock values into versioned report documents, so a
// v1 report is byte-identical at any parallelism.
package wire

// Version is the wire schema generation stamped into the "v" field of
// every document and event line this package encodes.
const Version = 1
