package wire

import (
	"encoding/json"
	"io"

	"progconv/internal/telemetry"
)

// TraceDoc is the v1 JSON document for one job's span tree — what
// GET /v1/jobs/{id}/trace serves. Spans appear in deterministic tree
// order (root, phases, pair-scoped spans, then each program's subtree
// in submission order); with timing omitted the document is
// byte-identical at any parallelism, the same contract the events
// endpoint honors under ?omit_timing=1.
type TraceDoc struct {
	V       int    `json:"v"`
	TraceID string `json:"trace_id"`
	// RemoteParentID is the caller's span from an inbound traceparent
	// header, absent when the trace originated in this process.
	RemoteParentID string      `json:"remote_parent_id,omitempty"`
	Spans          []TraceSpan `json:"spans"`
}

// TraceSpan is one span on the wire.
type TraceSpan struct {
	ID       string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	Prog     string `json:"prog,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Label    string `json:"label,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// StartNs and DurNs are the wall-clock fields, dropped when timing
	// is omitted.
	StartNs int64 `json:"start_ns,omitempty"`
	DurNs   int64 `json:"dur_ns,omitempty"`
}

// FromTrace builds the wire document for a span tree.
func FromTrace(tr *telemetry.Trace, omitTiming bool) *TraceDoc {
	doc := &TraceDoc{V: Version}
	if tr == nil {
		return doc
	}
	doc.TraceID = tr.TraceID.String()
	if !tr.Remote.IsZero() {
		doc.RemoteParentID = tr.Remote.String()
	}
	doc.Spans = make([]TraceSpan, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		ws := TraceSpan{
			ID:      sp.ID.String(),
			Kind:    sp.Kind.String(),
			Name:    sp.Name,
			Prog:    sp.Prog,
			Stage:   sp.Stage,
			Attempt: sp.Attempt,
			Label:   sp.Label,
			Detail:  sp.Detail,
		}
		if !sp.Parent.IsZero() {
			ws.ParentID = sp.Parent.String()
		}
		if !omitTiming {
			ws.StartNs, ws.DurNs = int64(sp.Start), int64(sp.Dur)
		}
		doc.Spans = append(doc.Spans, ws)
	}
	return doc
}

// EncodeTrace writes the span tree as an indented wire-v1 JSON
// document, newline-terminated like EncodeReport.
func EncodeTrace(w io.Writer, tr *telemetry.Trace, omitTiming bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromTrace(tr, omitTiming))
}
