package wire

// BenchDoc is the versioned machine-readable benchmark document
// written by `exper bench-json` (BENCH_PR5.json) — part of the v1 wire
// schema so downstream tooling can dispatch on the same "v" field as
// every other artifact.
type BenchDoc struct {
	V          int        `json:"v"`
	Note       string     `json:"note"`
	Benchmarks []BenchRow `json:"benchmarks"`
}

// BenchRow is one benchmark's measured result.
type BenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}
