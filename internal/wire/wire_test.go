package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"progconv/internal/core"
	"progconv/internal/obs"
)

func TestEncodeJSONLShape(t *testing.T) {
	events := []obs.Event{
		{Seq: 1, T: time.Second, Prog: "P", Kind: obs.EvStageStart, Stage: obs.StageAnalyze},
		{Seq: 2, T: time.Second, Prog: "P", Kind: obs.EvStageEnd, Stage: obs.StageAnalyze, Dur: time.Millisecond},
		{Seq: 3, T: time.Second, Prog: "P", Kind: obs.EvDecision, Label: "order-dependence", Detail: "why", Accepted: true},
		{Seq: 4, T: time.Second, Prog: "P", Kind: obs.EvOutcome, Label: "auto", Detail: "reason"},
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, events, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	var m map[string]any
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if v, ok := m["v"].(float64); !ok || int(v) != Version {
			t.Errorf("line %d: v = %v, want %d", i, m["v"], Version)
		}
		if _, ok := m["t_ns"]; ok {
			t.Errorf("line %d: omitTiming left t_ns", i)
		}
		if _, ok := m["dur_ns"]; ok {
			t.Errorf("line %d: omitTiming left dur_ns", i)
		}
	}
	// The version field leads every line so consumers can dispatch on
	// it without parsing the rest.
	if !strings.HasPrefix(lines[0], `{"v":1,`) {
		t.Errorf("line 0 does not lead with the version: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"stage":"analyze"`) {
		t.Errorf("stage-start line missing stage: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"accepted":true`) {
		t.Errorf("decision line missing accepted: %s", lines[2])
	}
	if strings.Contains(lines[3], "accepted") || strings.Contains(lines[3], "stage") {
		t.Errorf("outcome line carries fields of other kinds: %s", lines[3])
	}

	// With timing on, the wall-clock fields appear.
	buf.Reset()
	if err := EncodeJSONL(&buf, events[1:2], false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"t_ns"`) || !strings.Contains(buf.String(), `"dur_ns"`) {
		t.Errorf("timed encoding missing wall-clock fields: %s", buf.String())
	}

	// EncodeEvent (the daemon's streaming form) produces the identical
	// line.
	buf.Reset()
	if err := EncodeEvent(&buf, events[0], true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(buf.String(), "\n"); got != lines[0] {
		t.Errorf("EncodeEvent = %s, want %s", got, lines[0])
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLSinkStickyError(t *testing.T) {
	w := &failWriter{}
	s := NewJSONLSink(w)
	s.Emit(obs.Event{Prog: "P"})
	s.Emit(obs.Event{Prog: "P"})
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if w.n != 1 {
		t.Errorf("writer called %d times after first error, want 1", w.n)
	}
}

func TestReportDocumentShape(t *testing.T) {
	r := &core.Report{
		PlanDescription: "plan text\n",
		Invertible:      true,
		Outcomes: []core.Outcome{
			{Name: "P-1", Disposition: core.Auto, Generated: "OUT",
				Audit: core.Audit{Reason: "every statement matched a rewrite rule", Pair: "abc123"}},
			{Name: "P-2", Disposition: core.Failed,
				Audit: core.Audit{
					Reason:  "the convert stage failed",
					Failure: &core.Failure{Stage: "convert", Kind: core.FailError, Err: errors.New("boom"), Attempts: 2},
					Retries: []core.Retry{{Stage: "convert", Attempt: 1, Err: "boom", Backoff: 50 * time.Millisecond}},
				}},
		},
	}
	var buf bytes.Buffer
	if err := EncodeReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "{\n  \"v\": 1,") {
		t.Errorf("report does not lead with the version:\n%s", buf.String())
	}
	var doc Report
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.V != Version || doc.Auto != 1 || doc.Failed != 1 || len(doc.Outcomes) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Outcomes[1].Audit.Failure == nil ||
		doc.Outcomes[1].Audit.Failure.Message != "convert stage failed after 2 attempts: boom" {
		t.Errorf("failure = %+v", doc.Outcomes[1].Audit.Failure)
	}
	if len(doc.Outcomes[1].Audit.Retries) != 1 || doc.Outcomes[1].Audit.Retries[0].Backoff != "50ms" {
		t.Errorf("retries = %+v", doc.Outcomes[1].Audit.Retries)
	}

	// Encoding is deterministic: a second pass yields identical bytes.
	var again bytes.Buffer
	if err := EncodeReport(&again, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("EncodeReport is not byte-deterministic")
	}
}

func TestExitTable(t *testing.T) {
	clean := &core.Report{Outcomes: []core.Outcome{{Disposition: core.Auto}}}
	if c, msg := ExitFor(clean, ""); c != ExitOK || msg != "" {
		t.Errorf("clean = %v %q", c, msg)
	}
	manual := &core.Report{Outcomes: []core.Outcome{{Disposition: core.Manual}, {Disposition: core.Auto}}}
	if c, msg := ExitFor(manual, "manual"); c != ExitFailOn ||
		msg != "fail-on manual: 1 of 2 programs were not converted automatically" {
		t.Errorf("manual gate = %v %q", c, msg)
	}
	if c, _ := ExitFor(manual, ""); c != ExitOK {
		t.Error("ungated manual outcome must exit 0")
	}
	qual := &core.Report{Outcomes: []core.Outcome{{Disposition: core.Qualified}}}
	if c, _ := ExitFor(qual, "manual"); c != ExitOK {
		t.Error("qualified must pass the manual gate")
	}
	if c, _ := ExitFor(qual, "qualified"); c != ExitFailOn {
		t.Error("qualified must trip the qualified gate")
	}
	failed := &core.Report{Outcomes: []core.Outcome{{Disposition: core.Failed}}}
	if c, msg := ExitFor(failed, ""); c != ExitPipeline ||
		msg != "1 of 1 programs failed in the pipeline" {
		t.Errorf("pipeline = %v %q", c, msg)
	}
	// Pipeline failures outrank the gate, matching the CLI's order.
	if c, _ := ExitFor(failed, "manual"); c != ExitPipeline {
		t.Error("pipeline failure must outrank the fail-on gate")
	}

	for c, want := range map[ExitCode]int{
		ExitOK:       http.StatusOK,
		ExitError:    http.StatusInternalServerError,
		ExitUsage:    http.StatusBadRequest,
		ExitFailOn:   http.StatusConflict,
		ExitPipeline: http.StatusInternalServerError,
		ExitCode(99): http.StatusInternalServerError,
	} {
		if got := c.HTTPStatus(); got != want {
			t.Errorf("HTTPStatus(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestParseFailurePolicy(t *testing.T) {
	for _, ok := range []string{"", "fail-fast", "collect", "budget:1", "budget:12"} {
		if _, err := ParseFailurePolicy(ok); err != nil {
			t.Errorf("ParseFailurePolicy(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"budget:0", "budget:x", "nope", "budget:-2"} {
		if _, err := ParseFailurePolicy(bad); err == nil {
			t.Errorf("ParseFailurePolicy(%q) succeeded", bad)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{
		SourceDDL: "S", TargetDDL: "T",
		Programs: []ProgramSpec{{Source: "P"}},
		Options:  JobOptions{Timeout: "2s", OnFailure: "budget:3", FailOn: "manual"},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	versioned := good
	versioned.V = Version
	if err := versioned.Validate(); err != nil {
		t.Fatalf("explicit v%d rejected: %v", Version, err)
	}
	for name, breakIt := range map[string]func(*JobSpec){
		"future version":  func(s *JobSpec) { s.V = Version + 1 },
		"no source":       func(s *JobSpec) { s.SourceDDL = "" },
		"no target":       func(s *JobSpec) { s.TargetDDL = "" },
		"no programs":     func(s *JobSpec) { s.Programs = nil },
		"empty program":   func(s *JobSpec) { s.Programs = []ProgramSpec{{}} },
		"bad fail_on":     func(s *JobSpec) { s.Options.FailOn = "everything" },
		"bad on_failure":  func(s *JobSpec) { s.Options.OnFailure = "budget:0" },
		"bad timeout":     func(s *JobSpec) { s.Options.Timeout = "fast" },
		"bad deadline":    func(s *JobSpec) { s.Options.Deadline = "soon" },
		"negative limits": func(s *JobSpec) { s.Options.Retries = -1 },
	} {
		spec := good
		breakIt(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", name)
		}
	}
}
