package wire

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"progconv/internal/core"
)

// ExitCode is the process exit-code table shared by cmd/progconv,
// cmd/exper and — through HTTPStatus — the daemon's status mapping.
// Before this table existed each CLI hard-coded the numbers
// separately; the values are frozen (they are an operator-facing
// contract) and belong to the v1 wire schema.
type ExitCode int

// The exit codes.
const (
	// ExitOK: the run completed cleanly.
	ExitOK ExitCode = 0
	// ExitError: the run itself failed (parse error, classification
	// failure, canceled batch, exhausted failure budget).
	ExitError ExitCode = 1
	// ExitUsage: the command line was malformed.
	ExitUsage ExitCode = 2
	// ExitFailOn: the -fail-on gate tripped — the batch completed but
	// the report contains gated dispositions.
	ExitFailOn ExitCode = 3
	// ExitPipeline: the batch completed around programs that failed in
	// the pipeline (possible only under collect or budget policies).
	ExitPipeline ExitCode = 4
)

// HTTPStatus maps an exit code onto the HTTP status the daemon serves
// a finished job's report with — the one table behind both process
// exits and responses.
func (c ExitCode) HTTPStatus() int {
	switch c {
	case ExitOK:
		return http.StatusOK
	case ExitUsage:
		return http.StatusBadRequest
	case ExitFailOn:
		return http.StatusConflict
	case ExitPipeline:
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// ValidFailOn reports whether s is an accepted -fail-on/fail_on gate:
// "" (no gate), "manual", or "qualified".
func ValidFailOn(s string) bool {
	return s == "" || s == "manual" || s == "qualified"
}

// ExitFor classifies a completed run against the shared exit-code
// table: ExitPipeline when programs failed in the pipeline, ExitFailOn
// when the failOn gate ("manual" or "qualified") trips, ExitOK
// otherwise. The message matches the CLIs' historical wording.
func ExitFor(r *core.Report, failOn string) (ExitCode, string) {
	if failed := r.FailedCount(); failed > 0 {
		return ExitPipeline,
			fmt.Sprintf("%d of %d programs failed in the pipeline", failed, len(r.Outcomes))
	}
	if failOn != "" {
		_, qualified, manual := r.Counts()
		bad := manual + r.FailedCount()
		if failOn == "qualified" {
			bad += qualified
		}
		if bad > 0 {
			return ExitFailOn,
				fmt.Sprintf("fail-on %s: %d of %d programs were not converted automatically",
					failOn, bad, len(r.Outcomes))
		}
	}
	return ExitOK, ""
}

// ParseFailurePolicy parses the shared failure-policy grammar used by
// the CLI -on-failure flag and the job option on_failure: "fail-fast",
// "collect", or "budget:N". The empty string is the default policy.
func ParseFailurePolicy(s string) (core.FailurePolicy, error) {
	switch {
	case s == "" || s == "fail-fast":
		return core.FailFast, nil
	case s == "collect":
		return core.CollectErrors, nil
	case strings.HasPrefix(s, "budget:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "budget:"))
		if err != nil || n < 1 {
			return core.FailFast, fmt.Errorf("budget:N needs a positive count, got %q", s)
		}
		return core.Budget(n), nil
	}
	return core.FailFast, fmt.Errorf("failure policy must be \"fail-fast\", \"collect\" or \"budget:N\", got %q", s)
}
