package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"

	"progconv/internal/obs"
)

// eventJSON is the stable v1 JSONL event shape; field order is pinned
// by golden-file tests. It is the wire rendering of obs.Event, shared
// by the CLI -events stream and the daemon's event endpoints.
type eventJSON struct {
	V        int    `json:"v"`
	Seq      uint64 `json:"seq"`
	TNs      int64  `json:"t_ns,omitempty"`
	Prog     string `json:"prog"`
	Kind     string `json:"kind"`
	Stage    string `json:"stage,omitempty"`
	DurNs    int64  `json:"dur_ns,omitempty"`
	Label    string `json:"label,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Accepted *bool  `json:"accepted,omitempty"`
}

func eventWire(ev obs.Event, omitTiming bool) eventJSON {
	j := eventJSON{V: Version, Seq: ev.Seq, Prog: ev.Prog, Kind: ev.Kind.String(),
		Label: ev.Label, Detail: ev.Detail}
	if !omitTiming {
		j.TNs = int64(ev.T)
		j.DurNs = int64(ev.Dur)
	}
	if ev.Kind == obs.EvStageStart || ev.Kind == obs.EvStageEnd {
		j.Stage = ev.Stage.String()
	}
	if ev.Kind == obs.EvDecision {
		a := ev.Accepted
		j.Accepted = &a
	}
	return j
}

// encodeBuf pairs a reusable buffer with an encoder bound to it, so
// the per-event encode path of the daemon's streaming endpoints stops
// allocating a fresh marshal buffer per line. json.Encoder.Encode
// emits compact JSON plus a trailing newline with the same HTML
// escaping as Marshal, so pooled output stays byte-identical.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encodePool = sync.Pool{New: func() any {
	b := &encodeBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// EncodeEvent writes one event as a single JSON line. omitTiming drops
// the wall-clock fields (t_ns, dur_ns) for byte-stable output.
func EncodeEvent(w io.Writer, ev obs.Event, omitTiming bool) error {
	b := encodePool.Get().(*encodeBuf)
	defer encodePool.Put(b)
	b.buf.Reset()
	if err := b.enc.Encode(eventWire(ev, omitTiming)); err != nil {
		return err
	}
	_, err := w.Write(b.buf.Bytes())
	return err
}

// EncodeJSONL writes events one JSON object per line. omitTiming drops
// the wall-clock fields so the output is byte-stable across runs — the
// representation golden-file tests pin.
func EncodeJSONL(w io.Writer, events []obs.Event, omitTiming bool) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, ev := range events {
		if err := enc.Encode(eventWire(ev, omitTiming)); err != nil {
			return err
		}
	}
	return nil
}

// JSONLSink streams events to a writer as wire-v1 JSON lines in
// arrival order. The first write error sticks and silences the rest;
// check Err after the run.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink encoding onto w (wrap w in a
// bufio.Writer for file output).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements obs.Sink.
func (s *JSONLSink) Emit(ev obs.Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(eventWire(ev, false))
	}
	s.mu.Unlock()
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
