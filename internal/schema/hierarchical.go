package schema

import (
	"fmt"
	"strings"
)

// Segment is an IMS-style segment type: a record type with at most one
// parent and an ordered list of child segment types. The order of
// children defines the hierarchic sequence, which is exactly what the
// Mehl & Wang order transformation (§2.2) changes.
type Segment struct {
	Name     string
	Fields   []Field // stored fields only; hierarchical has no virtuals
	Seq      string  // sequence field ordering twin occurrences, "" = insertion order
	Children []*Segment
}

// Field returns the named field, or nil.
func (s *Segment) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// FieldNames returns the declared field names in order.
func (s *Segment) FieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Clone returns a deep copy of the segment subtree.
func (s *Segment) Clone() *Segment {
	c := &Segment{Name: s.Name, Seq: s.Seq, Fields: append([]Field(nil), s.Fields...)}
	for _, ch := range s.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Hierarchy is a complete hierarchical schema: one root segment type per
// database, as in IMS physical databases.
type Hierarchy struct {
	Name string
	Root *Segment
}

// Segment returns the named segment type anywhere in the tree, or nil.
func (h *Hierarchy) Segment(name string) *Segment {
	var find func(s *Segment) *Segment
	find = func(s *Segment) *Segment {
		if s == nil {
			return nil
		}
		if s.Name == name {
			return s
		}
		for _, c := range s.Children {
			if hit := find(c); hit != nil {
				return hit
			}
		}
		return nil
	}
	return find(h.Root)
}

// Parent returns the parent segment type of the named segment, or nil for
// the root or an unknown segment.
func (h *Hierarchy) Parent(name string) *Segment {
	var find func(s *Segment) *Segment
	find = func(s *Segment) *Segment {
		if s == nil {
			return nil
		}
		for _, c := range s.Children {
			if c.Name == name {
				return s
			}
			if hit := find(c); hit != nil {
				return hit
			}
		}
		return nil
	}
	return find(h.Root)
}

// Preorder returns all segment types in hierarchic (preorder) sequence.
func (h *Hierarchy) Preorder() []*Segment {
	var out []*Segment
	var walk func(s *Segment)
	walk = func(s *Segment) {
		if s == nil {
			return
		}
		out = append(out, s)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(h.Root)
	return out
}

// Clone returns a deep copy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{Name: h.Name}
	if h.Root != nil {
		c.Root = h.Root.Clone()
	}
	return c
}

// Validate checks internal consistency: a root exists, segment names are
// unique, fields are unique per segment, sequence fields are declared.
func (h *Hierarchy) Validate() error {
	if h.Root == nil {
		return fmt.Errorf("hierarchy %s: no root segment", h.Name)
	}
	seen := map[string]bool{}
	for _, s := range h.Preorder() {
		if seen[s.Name] {
			return fmt.Errorf("hierarchy %s: duplicate segment %s", h.Name, s.Name)
		}
		seen[s.Name] = true
		fields := map[string]bool{}
		for _, f := range s.Fields {
			if f.Virtual != nil {
				return fmt.Errorf("segment %s: virtual fields are not supported in the hierarchical model", s.Name)
			}
			if fields[f.Name] {
				return fmt.Errorf("segment %s: duplicate field %s", s.Name, f.Name)
			}
			fields[f.Name] = true
		}
		if s.Seq != "" && !fields[s.Seq] {
			return fmt.Errorf("segment %s: sequence field %s not declared", s.Name, s.Seq)
		}
	}
	return nil
}

// DDL renders the hierarchy in the hierarchical DDL accepted by the ddl
// parser.
func (h *Hierarchy) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HIERARCHY NAME IS %s.\n", h.Name)
	var walk func(s *Segment, parent string)
	walk = func(s *Segment, parent string) {
		fmt.Fprintf(&b, "SEGMENT %s (", s.Name)
		for i, f := range s.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
		}
		b.WriteString(")")
		if parent == "" {
			b.WriteString(" ROOT")
		} else {
			fmt.Fprintf(&b, " PARENT %s", parent)
		}
		if s.Seq != "" {
			fmt.Fprintf(&b, " SEQ %s", s.Seq)
		}
		b.WriteString(".\n")
		for _, c := range s.Children {
			walk(c, s.Name)
		}
	}
	if h.Root != nil {
		walk(h.Root, "")
	}
	b.WriteString("END HIERARCHY.\n")
	return b.String()
}
