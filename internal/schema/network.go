package schema

import (
	"fmt"
	"strings"

	"progconv/internal/value"
)

// SystemOwner is the distinguished owner name for singular (SYSTEM-owned)
// sets, the entry points of a CODASYL database: Figure 4.3's
// "SET NAME IS ALL-DIV. OWNER IS SYSTEM."
const SystemOwner = "SYSTEM"

// Virtual describes a virtual (derived) field sourced from the owner of a
// set occurrence: Figure 4.3's
// "DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME."
type Virtual struct {
	ViaSet string // set whose owner supplies the value
	Using  string // field of the owner record
}

// Field is one field of a network record type.
type Field struct {
	Name    string
	Kind    value.Kind
	Virtual *Virtual // nil for stored fields
}

// RecordType is a CODASYL record type declaration.
type RecordType struct {
	Name   string
	Fields []Field
}

// Field returns the named field, or nil.
func (r *RecordType) Field(name string) *Field {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return &r.Fields[i]
		}
	}
	return nil
}

// FieldNames returns the declared field names in order.
func (r *RecordType) FieldNames() []string {
	names := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		names[i] = f.Name
	}
	return names
}

// StoredFieldNames returns the names of non-virtual fields in order.
func (r *RecordType) StoredFieldNames() []string {
	var names []string
	for _, f := range r.Fields {
		if f.Virtual == nil {
			names = append(names, f.Name)
		}
	}
	return names
}

// Clone returns a deep copy.
func (r *RecordType) Clone() *RecordType {
	c := &RecordType{Name: r.Name, Fields: append([]Field(nil), r.Fields...)}
	for i := range c.Fields {
		if v := c.Fields[i].Virtual; v != nil {
			vv := *v
			c.Fields[i].Virtual = &vv
		}
	}
	return c
}

// Insertion is the CODASYL set insertion mode (§3.1): AUTOMATIC members
// are connected by STORE; MANUAL members require an explicit CONNECT.
type Insertion uint8

// Insertion modes.
const (
	Automatic Insertion = iota
	Manual
)

func (m Insertion) String() string {
	if m == Manual {
		return "MANUAL"
	}
	return "AUTOMATIC"
}

// Retention is the CODASYL set retention mode (§3.1): MANDATORY members
// cannot exist outside the set (inserting a course-offering with no course
// fails; erasing the owner cascades), OPTIONAL members can.
type Retention uint8

// Retention modes.
const (
	Optional Retention = iota
	Mandatory
)

func (m Retention) String() string {
	if m == Mandatory {
		return "MANDATORY"
	}
	return "OPTIONAL"
}

// SetType is an owner-coupled set type declaration: single owner and
// member record types, ordered member instances, no duplicates within an
// occurrence (the Maryland DDL restrictions of §4.2).
type SetType struct {
	Name      string
	Owner     string // record type name, or SystemOwner
	Member    string // record type name
	Keys      []string
	Insertion Insertion
	Retention Retention
}

// IsSystem reports whether the set is SYSTEM-owned (an entry point).
func (s *SetType) IsSystem() bool { return s.Owner == SystemOwner }

// Clone returns a deep copy.
func (s *SetType) Clone() *SetType {
	c := *s
	c.Keys = append([]string(nil), s.Keys...)
	return &c
}

// Network is a complete CODASYL network schema: Figure 4.3.
type Network struct {
	Name    string
	Records []*RecordType
	Sets    []*SetType
}

// Record returns the named record type, or nil.
func (s *Network) Record(name string) *RecordType {
	for _, r := range s.Records {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Set returns the named set type, or nil.
func (s *Network) Set(name string) *SetType {
	for _, t := range s.Sets {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// SetsOwnedBy returns the set types whose owner is the given record type.
func (s *Network) SetsOwnedBy(record string) []*SetType {
	var out []*SetType
	for _, t := range s.Sets {
		if t.Owner == record {
			out = append(out, t)
		}
	}
	return out
}

// SetsWithMember returns the set types whose member is the given record type.
func (s *Network) SetsWithMember(record string) []*SetType {
	var out []*SetType
	for _, t := range s.Sets {
		if t.Member == record {
			out = append(out, t)
		}
	}
	return out
}

// SetsBetween returns the set types linking owner record o to member
// record m. Multiple data paths between the same pair are exactly the
// situation the Supervisor must resolve interactively (§4).
func (s *Network) SetsBetween(o, m string) []*SetType {
	var out []*SetType
	for _, t := range s.Sets {
		if t.Owner == o && t.Member == m {
			out = append(out, t)
		}
	}
	return out
}

// Clone returns a deep copy.
func (s *Network) Clone() *Network {
	c := &Network{Name: s.Name}
	for _, r := range s.Records {
		c.Records = append(c.Records, r.Clone())
	}
	for _, t := range s.Sets {
		c.Sets = append(c.Sets, t.Clone())
	}
	return c
}

// Validate checks internal consistency: unique names, set owner/member
// referring to declared record types, set keys being member fields,
// virtual fields referring to sets in which the record is the member and
// to fields of that set's owner.
func (s *Network) Validate() error {
	recs := map[string]*RecordType{}
	for _, r := range s.Records {
		if _, dup := recs[r.Name]; dup {
			return fmt.Errorf("schema %s: duplicate record type %s", s.Name, r.Name)
		}
		recs[r.Name] = r
		fields := map[string]bool{}
		for _, f := range r.Fields {
			if fields[f.Name] {
				return fmt.Errorf("record %s: duplicate field %s", r.Name, f.Name)
			}
			fields[f.Name] = true
		}
	}
	setNames := map[string]bool{}
	for _, t := range s.Sets {
		if setNames[t.Name] {
			return fmt.Errorf("schema %s: duplicate set type %s", s.Name, t.Name)
		}
		setNames[t.Name] = true
		if !t.IsSystem() && recs[t.Owner] == nil {
			return fmt.Errorf("set %s: unknown owner record %s", t.Name, t.Owner)
		}
		member := recs[t.Member]
		if member == nil {
			return fmt.Errorf("set %s: unknown member record %s", t.Name, t.Member)
		}
		for _, k := range t.Keys {
			if member.Field(k) == nil {
				return fmt.Errorf("set %s: key %s is not a field of member %s", t.Name, k, t.Member)
			}
		}
	}
	for _, r := range s.Records {
		for _, f := range r.Fields {
			if f.Virtual == nil {
				continue
			}
			set := s.Set(f.Virtual.ViaSet)
			if set == nil {
				return fmt.Errorf("record %s: virtual field %s via unknown set %s", r.Name, f.Name, f.Virtual.ViaSet)
			}
			if set.Member != r.Name {
				return fmt.Errorf("record %s: virtual field %s via set %s of which it is not the member", r.Name, f.Name, set.Name)
			}
			if set.IsSystem() {
				return fmt.Errorf("record %s: virtual field %s cannot source from SYSTEM set %s", r.Name, f.Name, set.Name)
			}
			owner := s.Record(set.Owner)
			if owner.Field(f.Virtual.Using) == nil {
				return fmt.Errorf("record %s: virtual field %s uses unknown owner field %s.%s",
					r.Name, f.Name, set.Owner, f.Virtual.Using)
			}
		}
	}
	return nil
}

// DDL renders the schema in the Figure 4.3 schema language, extended with
// typed fields and insertion/retention clauses.
func (s *Network) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCHEMA NAME IS %s\n", s.Name)
	b.WriteString("RECORD SECTION.\n")
	for _, r := range s.Records {
		fmt.Fprintf(&b, "  RECORD NAME IS %s.\n    FIELDS ARE.\n", r.Name)
		for _, f := range r.Fields {
			if f.Virtual != nil {
				fmt.Fprintf(&b, "      %s VIRTUAL VIA %s USING %s.\n", f.Name, f.Virtual.ViaSet, f.Virtual.Using)
			} else {
				fmt.Fprintf(&b, "      %s %s.\n", f.Name, f.Kind)
			}
		}
		b.WriteString("  END RECORD.\n")
	}
	b.WriteString("END RECORD SECTION.\nSET SECTION.\n")
	for _, t := range s.Sets {
		fmt.Fprintf(&b, "  SET NAME IS %s.\n    OWNER IS %s.\n    MEMBER IS %s.\n", t.Name, t.Owner, t.Member)
		if len(t.Keys) > 0 {
			fmt.Fprintf(&b, "    SET KEYS ARE (%s).\n", strings.Join(t.Keys, ", "))
		}
		fmt.Fprintf(&b, "    INSERTION IS %s.\n    RETENTION IS %s.\n", t.Insertion, t.Retention)
		b.WriteString("  END SET.\n")
	}
	b.WriteString("END SET SECTION.\nEND SCHEMA.\n")
	return b.String()
}
