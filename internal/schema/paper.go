package schema

import "progconv/internal/value"

// This file holds the paper's own example schemas, used throughout the
// tests, examples, and experiments so that every fixture is the one the
// paper drew.

// SchoolRelational is Figure 3.1a: the relational school database.
//
//	COURSE-OFFERING(CNO, S, INSTRUCTOR)
//	COURSE(CNO, CNAME)
//	SEMESTER(S, YEAR)
func SchoolRelational() *Relational {
	return &Relational{
		Name: "SCHOOL",
		Relations: []*Relation{
			{
				Name: "COURSE",
				Columns: []Column{
					{Name: "CNO", Kind: value.String},
					{Name: "CNAME", Kind: value.String},
				},
				Key: []string{"CNO"},
			},
			{
				Name: "SEMESTER",
				Columns: []Column{
					{Name: "S", Kind: value.String},
					{Name: "YEAR", Kind: value.Int},
				},
				Key: []string{"S"},
			},
			{
				Name: "COURSE-OFFERING",
				Columns: []Column{
					{Name: "CNO", Kind: value.String},
					{Name: "S", Kind: value.String},
					{Name: "INSTRUCTOR", Kind: value.String},
				},
				Key: []string{"CNO", "S"},
				ForeignKeys: []ForeignKey{
					{Fields: []string{"CNO"}, RefRel: "COURSE", RefFields: []string{"CNO"}},
					{Fields: []string{"S"}, RefRel: "SEMESTER", RefFields: []string{"S"}},
				},
			},
		},
	}
}

// SchoolNetwork is Figure 3.1b: the CODASYL school database, with
// COURSE-OFFERING an AUTOMATIC MANDATORY member of both the
// COURSE'S-OFFERING and SEMESTER'S-OFFERING sets, capturing the existence
// constraint the way §3.1 describes.
func SchoolNetwork() *Network {
	return &Network{
		Name: "SCHOOL",
		Records: []*RecordType{
			{Name: "COURSE", Fields: []Field{
				{Name: "CNO", Kind: value.String},
				{Name: "CNAME", Kind: value.String},
			}},
			{Name: "SEMESTER", Fields: []Field{
				{Name: "S", Kind: value.String},
				{Name: "YEAR", Kind: value.Int},
			}},
			{Name: "COURSE-OFFERING", Fields: []Field{
				{Name: "CNO", Kind: value.String},
				{Name: "S", Kind: value.String},
				{Name: "INSTRUCTOR", Kind: value.String},
			}},
		},
		Sets: []*SetType{
			{Name: "ALL-COURSE", Owner: SystemOwner, Member: "COURSE", Keys: []string{"CNO"}},
			{Name: "ALL-SEMESTER", Owner: SystemOwner, Member: "SEMESTER", Keys: []string{"S"}},
			{Name: "COURSES-OFFERING", Owner: "COURSE", Member: "COURSE-OFFERING",
				Insertion: Automatic, Retention: Mandatory, Keys: []string{"S"}},
			{Name: "SEMESTERS-OFFERING", Owner: "SEMESTER", Member: "COURSE-OFFERING",
				Insertion: Automatic, Retention: Mandatory, Keys: []string{"CNO"}},
		},
	}
}

// CompanyV1 is Figures 4.2/4.3: the COMPANY schema with DIV owning EMP
// directly through DIV-EMP, EMP carrying DEPT-NAME as a plain field and
// DIV-NAME as a virtual field sourced from the owner.
func CompanyV1() *Network {
	return &Network{
		Name: "COMPANY-NAME",
		Records: []*RecordType{
			{Name: "DIV", Fields: []Field{
				{Name: "DIV-NAME", Kind: value.String},
				{Name: "DIV-LOC", Kind: value.String},
			}},
			{Name: "EMP", Fields: []Field{
				{Name: "EMP-NAME", Kind: value.String},
				{Name: "DEPT-NAME", Kind: value.String},
				{Name: "AGE", Kind: value.Int},
				{Name: "DIV-NAME", Virtual: &Virtual{ViaSet: "DIV-EMP", Using: "DIV-NAME"}},
			}},
		},
		Sets: []*SetType{
			{Name: "ALL-DIV", Owner: SystemOwner, Member: "DIV", Keys: []string{"DIV-NAME"}},
			{Name: "DIV-EMP", Owner: "DIV", Member: "EMP", Keys: []string{"EMP-NAME"},
				Insertion: Automatic, Retention: Mandatory},
		},
	}
}

// CompanyV2 is Figure 4.4: the revised COMPANY schema with an intermediate
// DEPT record between DIV and EMP. DEPT-NAME moves out of EMP into the new
// DEPT record; EMP instances hang off their department.
func CompanyV2() *Network {
	return &Network{
		Name: "COMPANY-NAME",
		Records: []*RecordType{
			{Name: "DIV", Fields: []Field{
				{Name: "DIV-NAME", Kind: value.String},
				{Name: "DIV-LOC", Kind: value.String},
			}},
			{Name: "DEPT", Fields: []Field{
				{Name: "DEPT-NAME", Kind: value.String},
				{Name: "DIV-NAME", Virtual: &Virtual{ViaSet: "DIV-DEPT", Using: "DIV-NAME"}},
			}},
			{Name: "EMP", Fields: []Field{
				{Name: "EMP-NAME", Kind: value.String},
				{Name: "DEPT-NAME", Virtual: &Virtual{ViaSet: "DEPT-EMP", Using: "DEPT-NAME"}},
				{Name: "AGE", Kind: value.Int},
				{Name: "DIV-NAME", Virtual: &Virtual{ViaSet: "DEPT-EMP", Using: "DIV-NAME"}},
			}},
		},
		Sets: []*SetType{
			{Name: "ALL-DIV", Owner: SystemOwner, Member: "DIV", Keys: []string{"DIV-NAME"}},
			{Name: "DIV-DEPT", Owner: "DIV", Member: "DEPT", Keys: []string{"DEPT-NAME"},
				Insertion: Automatic, Retention: Mandatory},
			{Name: "DEPT-EMP", Owner: "DEPT", Member: "EMP", Keys: []string{"EMP-NAME"},
				Insertion: Automatic, Retention: Mandatory},
		},
	}
}

// EmpDeptNetwork is the §4.1 (University of Florida) example database in
// network form:
//
//	EMP(E#, ENAME, AGE)
//	DEPT(D#, DNAME, MGR)
//	EMP-DEPT(E#, D#, YEAR-OF-SERVICE)  — the association record
//
// The association is realized as an intersection record owned by both EMP
// (set E-ED) and DEPT (set ED, the name the paper's CODASYL template
// uses: "FIND NEXT EMP-DEPT WITHIN ED").
func EmpDeptNetwork() *Network {
	return &Network{
		Name: "PERSONNEL",
		Records: []*RecordType{
			{Name: "EMP", Fields: []Field{
				{Name: "E#", Kind: value.String},
				{Name: "ENAME", Kind: value.String},
				{Name: "AGE", Kind: value.Int},
			}},
			{Name: "DEPT", Fields: []Field{
				{Name: "D#", Kind: value.String},
				{Name: "DNAME", Kind: value.String},
				{Name: "MGR", Kind: value.String},
			}},
			{Name: "EMP-DEPT", Fields: []Field{
				{Name: "E#", Kind: value.String},
				{Name: "D#", Kind: value.String},
				{Name: "YEAR-OF-SERVICE", Kind: value.Int},
			}},
		},
		Sets: []*SetType{
			{Name: "ALL-EMP", Owner: SystemOwner, Member: "EMP", Keys: []string{"E#"}},
			{Name: "ALL-DEPT", Owner: SystemOwner, Member: "DEPT", Keys: []string{"D#"}},
			{Name: "E-ED", Owner: "EMP", Member: "EMP-DEPT",
				Insertion: Automatic, Retention: Mandatory, Keys: []string{"D#"}},
			{Name: "ED", Owner: "DEPT", Member: "EMP-DEPT",
				Insertion: Automatic, Retention: Mandatory, Keys: []string{"E#"}},
		},
	}
}

// EmpDeptRelational is the §4.1 example in relational form: the schema the
// paper's SEQUEL template (A) queries.
func EmpDeptRelational() *Relational {
	return &Relational{
		Name: "PERSONNEL",
		Relations: []*Relation{
			{
				Name: "EMP",
				Columns: []Column{
					{Name: "E#", Kind: value.String},
					{Name: "ENAME", Kind: value.String},
					{Name: "AGE", Kind: value.Int},
				},
				Key: []string{"E#"},
			},
			{
				Name: "DEPT",
				Columns: []Column{
					{Name: "D#", Kind: value.String},
					{Name: "DNAME", Kind: value.String},
					{Name: "MGR", Kind: value.String},
				},
				Key: []string{"D#"},
			},
			{
				Name: "EMP-DEPT",
				Columns: []Column{
					{Name: "E#", Kind: value.String},
					{Name: "D#", Kind: value.String},
					{Name: "YEAR-OF-SERVICE", Kind: value.Int},
				},
				Key: []string{"E#", "D#"},
				ForeignKeys: []ForeignKey{
					{Fields: []string{"E#"}, RefRel: "EMP", RefFields: []string{"E#"}},
					{Fields: []string{"D#"}, RefRel: "DEPT", RefFields: []string{"D#"}},
				},
			},
		},
	}
}

// EmpDeptHierarchy is the §4.1 example as an IMS-style hierarchy rooted at
// DEPT, with EMP-DEPT intersection data and EMP data beneath. It is the
// substrate for the Mehl & Wang order-transformation experiment.
func EmpDeptHierarchy() *Hierarchy {
	return &Hierarchy{
		Name: "PERSONNEL",
		Root: &Segment{
			Name: "DEPT",
			Seq:  "D#",
			Fields: []Field{
				{Name: "D#", Kind: value.String},
				{Name: "DNAME", Kind: value.String},
				{Name: "MGR", Kind: value.String},
			},
			Children: []*Segment{
				{
					Name: "EMP",
					Seq:  "E#",
					Fields: []Field{
						{Name: "E#", Kind: value.String},
						{Name: "ENAME", Kind: value.String},
						{Name: "AGE", Kind: value.Int},
						{Name: "YEAR-OF-SERVICE", Kind: value.Int},
					},
				},
			},
		},
	}
}
