package schema

import (
	"strings"
	"testing"

	"progconv/internal/value"
)

func TestPaperSchemasValidate(t *testing.T) {
	if err := SchoolRelational().Validate(); err != nil {
		t.Errorf("SchoolRelational: %v", err)
	}
	if err := SchoolNetwork().Validate(); err != nil {
		t.Errorf("SchoolNetwork: %v", err)
	}
	if err := CompanyV1().Validate(); err != nil {
		t.Errorf("CompanyV1: %v", err)
	}
	if err := CompanyV2().Validate(); err != nil {
		t.Errorf("CompanyV2: %v", err)
	}
	if err := EmpDeptNetwork().Validate(); err != nil {
		t.Errorf("EmpDeptNetwork: %v", err)
	}
	if err := EmpDeptRelational().Validate(); err != nil {
		t.Errorf("EmpDeptRelational: %v", err)
	}
	if err := EmpDeptHierarchy().Validate(); err != nil {
		t.Errorf("EmpDeptHierarchy: %v", err)
	}
}

func TestRelationLookups(t *testing.T) {
	s := SchoolRelational()
	co := s.Relation("COURSE-OFFERING")
	if co == nil {
		t.Fatal("COURSE-OFFERING missing")
	}
	if c := co.Column("CNO"); c == nil || c.Kind != value.String {
		t.Error("CNO column")
	}
	if co.Column("NOPE") != nil {
		t.Error("unknown column should be nil")
	}
	if !co.IsKey("CNO") || !co.IsKey("S") || co.IsKey("INSTRUCTOR") {
		t.Error("IsKey")
	}
	got := co.ColumnNames()
	if len(got) != 3 || got[0] != "CNO" {
		t.Errorf("ColumnNames = %v", got)
	}
	if s.Relation("NOPE") != nil {
		t.Error("unknown relation should be nil")
	}
}

func TestRelationalValidationFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Relational)
		want string
	}{
		{"duplicate relation", func(s *Relational) {
			s.Relations = append(s.Relations, s.Relations[0].Clone())
		}, "duplicate relation"},
		{"duplicate column", func(s *Relational) {
			r := s.Relation("COURSE")
			r.Columns = append(r.Columns, Column{Name: "CNO", Kind: value.String})
		}, "duplicate column"},
		{"no key", func(s *Relational) { s.Relation("COURSE").Key = nil }, "no key"},
		{"key not declared", func(s *Relational) { s.Relation("COURSE").Key = []string{"XX"} }, "not declared"},
		{"fk unknown relation", func(s *Relational) {
			s.Relation("COURSE-OFFERING").ForeignKeys[0].RefRel = "NOPE"
		}, "unknown relation"},
		{"fk field not declared", func(s *Relational) {
			s.Relation("COURSE-OFFERING").ForeignKeys[0].Fields = []string{"ZZ"}
		}, "not declared"},
		{"fk not to key", func(s *Relational) {
			s.Relation("COURSE-OFFERING").ForeignKeys[0].RefFields = []string{"CNAME"}
		}, "must reference its key"},
		{"fk arity", func(s *Relational) {
			s.Relation("COURSE-OFFERING").ForeignKeys[0].Fields = []string{"CNO", "S"}
		}, "malformed"},
	}
	for _, tc := range cases {
		s := SchoolRelational()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNetworkLookups(t *testing.T) {
	s := CompanyV1()
	if s.Record("EMP") == nil || s.Record("NOPE") != nil {
		t.Error("Record lookup")
	}
	if s.Set("DIV-EMP") == nil || s.Set("NOPE") != nil {
		t.Error("Set lookup")
	}
	if got := s.SetsOwnedBy("DIV"); len(got) != 1 || got[0].Name != "DIV-EMP" {
		t.Errorf("SetsOwnedBy(DIV) = %v", got)
	}
	if got := s.SetsWithMember("EMP"); len(got) != 1 {
		t.Errorf("SetsWithMember(EMP) = %v", got)
	}
	if got := s.SetsBetween("DIV", "EMP"); len(got) != 1 {
		t.Errorf("SetsBetween = %v", got)
	}
	emp := s.Record("EMP")
	if f := emp.Field("DIV-NAME"); f == nil || f.Virtual == nil || f.Virtual.ViaSet != "DIV-EMP" {
		t.Error("virtual field lookup")
	}
	stored := emp.StoredFieldNames()
	if len(stored) != 3 {
		t.Errorf("StoredFieldNames = %v", stored)
	}
	if len(emp.FieldNames()) != 4 {
		t.Errorf("FieldNames = %v", emp.FieldNames())
	}
}

func TestSetTypeModes(t *testing.T) {
	s := SchoolNetwork()
	co := s.Set("COURSES-OFFERING")
	if co.Insertion != Automatic || co.Retention != Mandatory {
		t.Error("Figure 3.1b set modes")
	}
	if co.Insertion.String() != "AUTOMATIC" || co.Retention.String() != "MANDATORY" {
		t.Error("mode strings")
	}
	if Manual.String() != "MANUAL" || Optional.String() != "OPTIONAL" {
		t.Error("other mode strings")
	}
	if !s.Set("ALL-COURSE").IsSystem() || co.IsSystem() {
		t.Error("IsSystem")
	}
}

func TestNetworkValidationFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Network)
		want string
	}{
		{"duplicate record", func(s *Network) { s.Records = append(s.Records, s.Records[0].Clone()) }, "duplicate record"},
		{"duplicate set", func(s *Network) { s.Sets = append(s.Sets, s.Sets[0].Clone()) }, "duplicate set"},
		{"duplicate field", func(s *Network) {
			r := s.Record("DIV")
			r.Fields = append(r.Fields, Field{Name: "DIV-NAME", Kind: value.String})
		}, "duplicate field"},
		{"unknown owner", func(s *Network) { s.Set("DIV-EMP").Owner = "NOPE" }, "unknown owner"},
		{"unknown member", func(s *Network) { s.Set("DIV-EMP").Member = "NOPE" }, "unknown member"},
		{"bad set key", func(s *Network) { s.Set("DIV-EMP").Keys = []string{"NOPE"} }, "not a field of member"},
		{"virtual unknown set", func(s *Network) {
			s.Record("EMP").Field("DIV-NAME").Virtual.ViaSet = "NOPE"
		}, "unknown set"},
		{"virtual not member", func(s *Network) {
			s.Record("EMP").Field("DIV-NAME").Virtual.ViaSet = "ALL-DIV"
		}, "not the member"},
		{"virtual unknown owner field", func(s *Network) {
			s.Record("EMP").Field("DIV-NAME").Virtual.Using = "NOPE"
		}, "unknown owner field"},
	}
	for _, tc := range cases {
		s := CompanyV1()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestVirtualViaSystemSetRejected(t *testing.T) {
	s := CompanyV1()
	// Make DIV itself a member of a SYSTEM set and give it a virtual via it.
	s.Record("DIV").Fields = append(s.Record("DIV").Fields,
		Field{Name: "V", Virtual: &Virtual{ViaSet: "ALL-DIV", Using: "DIV-NAME"}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "SYSTEM") {
		t.Errorf("err = %v", err)
	}
}

func TestHierarchyLookups(t *testing.T) {
	h := EmpDeptHierarchy()
	if h.Segment("EMP") == nil || h.Segment("NOPE") != nil {
		t.Error("Segment lookup")
	}
	if p := h.Parent("EMP"); p == nil || p.Name != "DEPT" {
		t.Error("Parent(EMP)")
	}
	if h.Parent("DEPT") != nil {
		t.Error("root has no parent")
	}
	pre := h.Preorder()
	if len(pre) != 2 || pre[0].Name != "DEPT" || pre[1].Name != "EMP" {
		t.Errorf("Preorder = %v", pre)
	}
	emp := h.Segment("EMP")
	if emp.Field("AGE") == nil || emp.Field("NOPE") != nil {
		t.Error("segment Field lookup")
	}
	if len(emp.FieldNames()) != 4 {
		t.Error("segment FieldNames")
	}
}

func TestHierarchyValidationFailures(t *testing.T) {
	h := &Hierarchy{Name: "X"}
	if err := h.Validate(); err == nil {
		t.Error("no root should fail")
	}
	h = EmpDeptHierarchy()
	h.Root.Children = append(h.Root.Children, &Segment{Name: "DEPT"})
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate segment") {
		t.Errorf("duplicate segment: %v", err)
	}
	h = EmpDeptHierarchy()
	h.Root.Seq = "NOPE"
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "sequence field") {
		t.Errorf("bad seq: %v", err)
	}
	h = EmpDeptHierarchy()
	h.Root.Fields = append(h.Root.Fields, Field{Name: "D#", Kind: value.String})
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate field") {
		t.Errorf("dup field: %v", err)
	}
	h = EmpDeptHierarchy()
	h.Root.Fields[0].Virtual = &Virtual{ViaSet: "X", Using: "Y"}
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "virtual") {
		t.Errorf("virtual in hierarchy: %v", err)
	}
}

func TestClonesAreDeep(t *testing.T) {
	n := CompanyV1()
	c := n.Clone()
	c.Record("EMP").Fields[0].Name = "MUTATED"
	c.Set("DIV-EMP").Keys[0] = "MUTATED"
	c.Record("EMP").Field("DIV-NAME").Virtual.ViaSet = "MUTATED"
	if n.Record("EMP").Fields[0].Name != "EMP-NAME" ||
		n.Set("DIV-EMP").Keys[0] != "EMP-NAME" ||
		n.Record("EMP").Field("DIV-NAME").Virtual.ViaSet != "DIV-EMP" {
		t.Error("network Clone shares state")
	}

	r := SchoolRelational()
	rc := r.Clone()
	rc.Relation("COURSE-OFFERING").ForeignKeys[0].RefRel = "MUTATED"
	rc.Relation("COURSE").Key[0] = "MUTATED"
	if r.Relation("COURSE-OFFERING").ForeignKeys[0].RefRel != "COURSE" ||
		r.Relation("COURSE").Key[0] != "CNO" {
		t.Error("relational Clone shares state")
	}

	h := EmpDeptHierarchy()
	hc := h.Clone()
	hc.Root.Children[0].Fields[0].Name = "MUTATED"
	if h.Root.Children[0].Fields[0].Name != "E#" {
		t.Error("hierarchy Clone shares state")
	}
}

func TestDDLRendering(t *testing.T) {
	ddl := CompanyV1().DDL()
	for _, want := range []string{
		"SCHEMA NAME IS COMPANY-NAME",
		"RECORD NAME IS DIV.",
		"DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.",
		"SET NAME IS ALL-DIV.",
		"OWNER IS SYSTEM.",
		"SET KEYS ARE (EMP-NAME).",
		"INSERTION IS AUTOMATIC.",
		"RETENTION IS MANDATORY.",
		"END SCHEMA.",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("network DDL missing %q\n%s", want, ddl)
		}
	}

	rddl := SchoolRelational().DDL()
	for _, want := range []string{
		"RELATION COURSE (CNO STRING KEY, CNAME STRING).",
		"FOREIGN KEY (CNO) REFERENCES COURSE (CNO)",
	} {
		if !strings.Contains(rddl, want) {
			t.Errorf("relational DDL missing %q\n%s", want, rddl)
		}
	}

	hddl := EmpDeptHierarchy().DDL()
	for _, want := range []string{
		"HIERARCHY NAME IS PERSONNEL.",
		"SEGMENT DEPT (D# STRING, DNAME STRING, MGR STRING) ROOT SEQ D#.",
		"PARENT DEPT",
	} {
		if !strings.Contains(hddl, want) {
			t.Errorf("hierarchical DDL missing %q\n%s", want, hddl)
		}
	}
}
