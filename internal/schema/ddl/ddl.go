// Package ddl parses the schema definition languages: the Figure 4.3
// network schema language (RECORD SECTION / SET SECTION, with PIC clauses
// and VIRTUAL ... VIA ... USING fields), a relational DDL, and a
// hierarchical DDL. Each parser produces the corresponding object from
// package schema and validates it.
//
// The network grammar accepts Figure 4.3 verbatim, including its
// statement-terminating periods and the optional INSERTION/RETENTION
// clauses this reproduction adds for the §3.1 discussion.
package ddl

import (
	"fmt"
	"strings"

	"progconv/internal/lex"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// Parsed carries whichever schema kind the source declared.
type Parsed struct {
	Network    *schema.Network
	Relational *schema.Relational
	Hierarchy  *schema.Hierarchy
}

// Kind returns "network", "relational" or "hierarchical".
func (p *Parsed) Kind() string {
	switch {
	case p.Network != nil:
		return "network"
	case p.Relational != nil:
		return "relational"
	case p.Hierarchy != nil:
		return "hierarchical"
	}
	return "empty"
}

// Parse dispatches on the leading keywords: HIERARCHY introduces a
// hierarchical schema; SCHEMA introduces relational (RELATION bodies) or
// network (RECORD SECTION bodies).
func Parse(src string) (*Parsed, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	switch {
	case s.IsKeyword("HIERARCHY"):
		h, err := parseHierarchy(s)
		if err != nil {
			return nil, err
		}
		return &Parsed{Hierarchy: h}, nil
	case s.IsKeyword("SCHEMA"):
		// Peek past "SCHEMA NAME IS <name> ." for the body keyword.
		if s.PeekAt(4).Kind == lex.Ident && strings.EqualFold(s.PeekAt(4).Text, "RELATION") ||
			s.PeekAt(5).Kind == lex.Ident && strings.EqualFold(s.PeekAt(5).Text, "RELATION") {
			r, err := parseRelational(s)
			if err != nil {
				return nil, err
			}
			return &Parsed{Relational: r}, nil
		}
		n, err := parseNetwork(s)
		if err != nil {
			return nil, err
		}
		return &Parsed{Network: n}, nil
	}
	return nil, lex.Errorf(s.Peek(), "expected SCHEMA or HIERARCHY, found %s", s.Peek())
}

// ParseNetwork parses a Figure 4.3 network schema.
func ParseNetwork(src string) (*schema.Network, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	return parseNetwork(s)
}

// ParseRelational parses a relational schema.
func ParseRelational(src string) (*schema.Relational, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	return parseRelational(s)
}

// ParseHierarchy parses a hierarchical schema.
func ParseHierarchy(src string) (*schema.Hierarchy, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	return parseHierarchy(s)
}

// terminator consumes a statement terminator: '.' or ';' (Figure 4.3 as
// printed uses both).
func terminator(s *lex.Stream) error {
	if s.TakePunct(".") || s.TakePunct(";") {
		return nil
	}
	return lex.Errorf(s.Peek(), "expected '.' to end statement, found %s", s.Peek())
}

func parseSchemaHeader(s *lex.Stream, kw string) (string, error) {
	if err := s.ExpectKeywords(kw, "NAME", "IS"); err != nil {
		return "", err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return "", err
	}
	// Figure 4.3 has no period after the schema name; accept either.
	s.TakePunct(".")
	return name, nil
}

// ---- network ----

func parseNetwork(s *lex.Stream) (*schema.Network, error) {
	name, err := parseSchemaHeader(s, "SCHEMA")
	if err != nil {
		return nil, err
	}
	n := &schema.Network{Name: name}

	if err := s.ExpectKeywords("RECORD", "SECTION"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	for s.IsKeyword("RECORD") {
		r, err := parseRecordType(s)
		if err != nil {
			return nil, err
		}
		n.Records = append(n.Records, r)
	}
	if err := s.ExpectKeywords("END", "RECORD", "SECTION"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}

	if err := s.ExpectKeywords("SET", "SECTION"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	for s.IsKeyword("SET") {
		t, err := parseSetType(s)
		if err != nil {
			return nil, err
		}
		n.Sets = append(n.Sets, t)
	}
	if err := s.ExpectKeywords("END", "SET", "SECTION"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}

	if err := s.ExpectKeywords("END", "SCHEMA"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after END SCHEMA: %s", s.Peek())
	}
	return n, n.Validate()
}

func parseRecordType(s *lex.Stream) (*schema.RecordType, error) {
	if err := s.ExpectKeywords("RECORD", "NAME", "IS"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	if err := s.ExpectKeywords("FIELDS", "ARE"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	r := &schema.RecordType{Name: name}
	for !s.IsKeyword("END") {
		f, err := parseField(s)
		if err != nil {
			return nil, err
		}
		r.Fields = append(r.Fields, f)
	}
	if err := s.ExpectKeywords("END", "RECORD"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	return r, nil
}

// parseField parses one field declaration:
//
//	DIV-NAME PIC X(20).
//	AGE PIC 9(2).             — numeric picture, INT
//	AGE INT.                  — direct type name
//	DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
func parseField(s *lex.Stream) (schema.Field, error) {
	var f schema.Field
	name, err := s.ExpectIdent()
	if err != nil {
		return f, err
	}
	f.Name = name
	switch {
	case s.TakeKeyword("VIRTUAL"):
		if err := s.ExpectKeyword("VIA"); err != nil {
			return f, err
		}
		via, err := s.ExpectIdent()
		if err != nil {
			return f, err
		}
		if err := s.ExpectKeyword("USING"); err != nil {
			return f, err
		}
		using, err := s.ExpectIdent()
		if err != nil {
			return f, err
		}
		f.Virtual = &schema.Virtual{ViaSet: via, Using: using}
	case s.TakeKeyword("PIC"):
		kind, err := parsePicture(s)
		if err != nil {
			return f, err
		}
		f.Kind = kind
	default:
		tname, err := s.ExpectIdent()
		if err != nil {
			return f, lex.Errorf(s.Peek(), "field %s: expected PIC, VIRTUAL or a type name", name)
		}
		kind, err := value.ParseKind(tname)
		if err != nil {
			return f, lex.Errorf(s.Peek(), "field %s: %v", name, err)
		}
		f.Kind = kind
	}
	if err := terminator(s); err != nil {
		return f, err
	}
	return f, nil
}

// parsePicture parses the clause after PIC: X(20) → STRING, 9(5) → INT,
// 9(5)V9(2) style decimals → FLOAT.
func parsePicture(s *lex.Stream) (value.Kind, error) {
	t := s.Next()
	var kind value.Kind
	switch {
	case t.Kind == lex.Ident && strings.EqualFold(t.Text, "X"):
		kind = value.String
	case t.Kind == lex.Number && t.Text == "9":
		kind = value.Int
	default:
		return value.Null, lex.Errorf(t, "unsupported PICTURE %s", t)
	}
	if s.TakePunct("(") {
		if s.Peek().Kind != lex.Number {
			return value.Null, lex.Errorf(s.Peek(), "expected length in PICTURE")
		}
		s.Next()
		if err := s.ExpectPunct(")"); err != nil {
			return value.Null, err
		}
	}
	// Decimal tail: V9(n) promotes to FLOAT.
	if kind == value.Int && s.Peek().Kind == lex.Ident && strings.HasPrefix(strings.ToUpper(s.Peek().Text), "V9") {
		s.Next()
		if s.TakePunct("(") {
			s.Next()
			if err := s.ExpectPunct(")"); err != nil {
				return value.Null, err
			}
		}
		kind = value.Float
	}
	return kind, nil
}

func parseSetType(s *lex.Stream) (*schema.SetType, error) {
	if err := s.ExpectKeywords("SET", "NAME", "IS"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	t := &schema.SetType{Name: name}
	for {
		switch {
		case s.TakeKeyword("OWNER"):
			if err := s.ExpectKeyword("IS"); err != nil {
				return nil, err
			}
			if t.Owner, err = s.ExpectIdent(); err != nil {
				return nil, err
			}
		case s.TakeKeyword("MEMBER"):
			if err := s.ExpectKeyword("IS"); err != nil {
				return nil, err
			}
			if t.Member, err = s.ExpectIdent(); err != nil {
				return nil, err
			}
		case s.IsKeyword("SET") && strings.EqualFold(s.PeekAt(1).Text, "KEYS"):
			s.Next()
			s.Next()
			if err := s.ExpectKeyword("ARE"); err != nil {
				return nil, err
			}
			if err := s.ExpectPunct("("); err != nil {
				return nil, err
			}
			for {
				k, err := s.ExpectIdent()
				if err != nil {
					return nil, err
				}
				t.Keys = append(t.Keys, k)
				if !s.TakePunct(",") {
					break
				}
			}
			if err := s.ExpectPunct(")"); err != nil {
				return nil, err
			}
		case s.TakeKeyword("INSERTION"):
			if err := s.ExpectKeyword("IS"); err != nil {
				return nil, err
			}
			switch {
			case s.TakeKeyword("AUTOMATIC"):
				t.Insertion = schema.Automatic
			case s.TakeKeyword("MANUAL"):
				t.Insertion = schema.Manual
			default:
				return nil, lex.Errorf(s.Peek(), "expected AUTOMATIC or MANUAL")
			}
		case s.TakeKeyword("RETENTION"):
			if err := s.ExpectKeyword("IS"); err != nil {
				return nil, err
			}
			switch {
			case s.TakeKeyword("MANDATORY"):
				t.Retention = schema.Mandatory
			case s.TakeKeyword("OPTIONAL"):
				t.Retention = schema.Optional
			default:
				return nil, lex.Errorf(s.Peek(), "expected MANDATORY or OPTIONAL")
			}
		case s.IsKeyword("END"):
			if err := s.ExpectKeywords("END", "SET"); err != nil {
				return nil, err
			}
			if err := terminator(s); err != nil {
				return nil, err
			}
			if t.Owner == "" || t.Member == "" {
				return nil, fmt.Errorf("ddl: set %s must declare OWNER and MEMBER", t.Name)
			}
			return t, nil
		default:
			return nil, lex.Errorf(s.Peek(), "unexpected %s in SET declaration", s.Peek())
		}
		if err := terminator(s); err != nil {
			return nil, err
		}
	}
}

// ---- relational ----

func parseRelational(s *lex.Stream) (*schema.Relational, error) {
	name, err := parseSchemaHeader(s, "SCHEMA")
	if err != nil {
		return nil, err
	}
	rs := &schema.Relational{Name: name}
	for s.IsKeyword("RELATION") {
		r, err := parseRelation(s)
		if err != nil {
			return nil, err
		}
		rs.Relations = append(rs.Relations, r)
	}
	if err := s.ExpectKeywords("END", "SCHEMA"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after END SCHEMA: %s", s.Peek())
	}
	// Resolve defaulted foreign-key targets to the referenced relation's key.
	for _, r := range rs.Relations {
		for i := range r.ForeignKeys {
			fk := &r.ForeignKeys[i]
			if len(fk.RefFields) == 0 {
				if ref := rs.Relation(fk.RefRel); ref != nil {
					fk.RefFields = append([]string(nil), ref.Key...)
				}
			}
		}
	}
	return rs, rs.Validate()
}

func parseRelation(s *lex.Stream) (*schema.Relation, error) {
	if err := s.ExpectKeyword("RELATION"); err != nil {
		return nil, err
	}
	name, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	r := &schema.Relation{Name: name}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	for {
		cname, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		tname, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := value.ParseKind(tname)
		if err != nil {
			return nil, lex.Errorf(s.Peek(), "column %s: %v", cname, err)
		}
		r.Columns = append(r.Columns, schema.Column{Name: cname, Kind: kind})
		if s.TakeKeyword("KEY") {
			r.Key = append(r.Key, cname)
		}
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	for s.IsKeyword("FOREIGN") {
		fk, err := parseForeignKey(s)
		if err != nil {
			return nil, err
		}
		r.ForeignKeys = append(r.ForeignKeys, fk)
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	return r, nil
}

func parseForeignKey(s *lex.Stream) (schema.ForeignKey, error) {
	var fk schema.ForeignKey
	if err := s.ExpectKeywords("FOREIGN", "KEY"); err != nil {
		return fk, err
	}
	fields, err := parseIdentList(s)
	if err != nil {
		return fk, err
	}
	fk.Fields = fields
	if err := s.ExpectKeyword("REFERENCES"); err != nil {
		return fk, err
	}
	if fk.RefRel, err = s.ExpectIdent(); err != nil {
		return fk, err
	}
	if s.IsPunct("(") {
		if fk.RefFields, err = parseIdentList(s); err != nil {
			return fk, err
		}
	}
	// With no explicit column list the reference defaults to the target's
	// key; that is resolved after all relations are parsed.
	return fk, nil
}

func parseIdentList(s *lex.Stream) ([]string, error) {
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// ---- hierarchical ----

func parseHierarchy(s *lex.Stream) (*schema.Hierarchy, error) {
	name, err := parseSchemaHeader(s, "HIERARCHY")
	if err != nil {
		return nil, err
	}
	h := &schema.Hierarchy{Name: name}
	parents := map[string]*schema.Segment{}
	for s.IsKeyword("SEGMENT") {
		s.Next()
		segName, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		seg := &schema.Segment{Name: segName}
		if err := s.ExpectPunct("("); err != nil {
			return nil, err
		}
		for {
			fname, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			tname, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := value.ParseKind(tname)
			if err != nil {
				return nil, lex.Errorf(s.Peek(), "field %s: %v", fname, err)
			}
			seg.Fields = append(seg.Fields, schema.Field{Name: fname, Kind: kind})
			if !s.TakePunct(",") {
				break
			}
		}
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		switch {
		case s.TakeKeyword("ROOT"):
			if h.Root != nil {
				return nil, fmt.Errorf("ddl: hierarchy %s declares two roots", name)
			}
			h.Root = seg
		case s.TakeKeyword("PARENT"):
			pname, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			p, ok := parents[pname]
			if !ok {
				return nil, fmt.Errorf("ddl: segment %s: parent %s not yet declared", segName, pname)
			}
			p.Children = append(p.Children, seg)
		default:
			return nil, lex.Errorf(s.Peek(), "segment %s: expected ROOT or PARENT", segName)
		}
		if s.TakeKeyword("SEQ") {
			if seg.Seq, err = s.ExpectIdent(); err != nil {
				return nil, err
			}
		}
		if err := terminator(s); err != nil {
			return nil, err
		}
		parents[segName] = seg
	}
	if err := s.ExpectKeywords("END", "HIERARCHY"); err != nil {
		return nil, err
	}
	if err := terminator(s); err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after END HIERARCHY: %s", s.Peek())
	}
	return h, h.Validate()
}
