package ddl

import (
	"strings"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// figure43 is the schema declaration of Figure 4.3, as printed in the
// paper (including the section-terminating punctuation it uses).
const figure43 = `
SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;

  RECORD NAME IS DIV.
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.

  RECORD NAME IS EMP.
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME PIC X(5).
      AGE PIC 9(2).
      DIV-NAME VIRTUAL
        VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.

  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.

  SET NAME IS DIV-EMP.
    OWNER IS DIV.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
    INSERTION IS AUTOMATIC.
    RETENTION IS MANDATORY.
  END SET.
END SET SECTION.
END SCHEMA.
`

func TestParseFigure43(t *testing.T) {
	n, err := ParseNetwork(figure43)
	if err != nil {
		t.Fatalf("ParseNetwork(figure 4.3): %v", err)
	}
	if n.Name != "COMPANY-NAME" {
		t.Errorf("schema name = %q", n.Name)
	}
	if len(n.Records) != 2 || len(n.Sets) != 2 {
		t.Fatalf("records=%d sets=%d", len(n.Records), len(n.Sets))
	}
	emp := n.Record("EMP")
	if emp == nil {
		t.Fatal("EMP missing")
	}
	if f := emp.Field("AGE"); f == nil || f.Kind != value.Int {
		t.Error("AGE should be INT via PIC 9(2)")
	}
	if f := emp.Field("EMP-NAME"); f == nil || f.Kind != value.String {
		t.Error("EMP-NAME should be STRING via PIC X(25)")
	}
	if f := emp.Field("DIV-NAME"); f == nil || f.Virtual == nil ||
		f.Virtual.ViaSet != "DIV-EMP" || f.Virtual.Using != "DIV-NAME" {
		t.Error("DIV-NAME virtual clause")
	}
	de := n.Set("DIV-EMP")
	if de == nil || de.Owner != "DIV" || de.Member != "EMP" {
		t.Fatal("DIV-EMP set")
	}
	if len(de.Keys) != 1 || de.Keys[0] != "EMP-NAME" {
		t.Errorf("DIV-EMP keys = %v", de.Keys)
	}
	if de.Insertion != schema.Automatic || de.Retention != schema.Mandatory {
		t.Error("DIV-EMP modes")
	}
	if ad := n.Set("ALL-DIV"); ad == nil || !ad.IsSystem() {
		t.Error("ALL-DIV should be SYSTEM owned")
	}
}

func TestNetworkDDLRoundTrip(t *testing.T) {
	for _, orig := range []*schema.Network{
		schema.CompanyV1(), schema.CompanyV2(), schema.SchoolNetwork(), schema.EmpDeptNetwork(),
	} {
		parsed, err := ParseNetwork(orig.DDL())
		if err != nil {
			t.Fatalf("%s: reparse: %v", orig.Name, err)
		}
		if parsed.DDL() != orig.DDL() {
			t.Errorf("%s: DDL round trip mismatch:\n%s\nvs\n%s", orig.Name, orig.DDL(), parsed.DDL())
		}
	}
}

func TestRelationalDDLRoundTrip(t *testing.T) {
	for _, orig := range []*schema.Relational{
		schema.SchoolRelational(), schema.EmpDeptRelational(),
	} {
		parsed, err := ParseRelational(orig.DDL())
		if err != nil {
			t.Fatalf("%s: reparse: %v", orig.Name, err)
		}
		if parsed.DDL() != orig.DDL() {
			t.Errorf("%s: DDL round trip mismatch:\n%s\nvs\n%s", orig.Name, orig.DDL(), parsed.DDL())
		}
	}
}

func TestHierarchyDDLRoundTrip(t *testing.T) {
	orig := schema.EmpDeptHierarchy()
	parsed, err := ParseHierarchy(orig.DDL())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if parsed.DDL() != orig.DDL() {
		t.Errorf("DDL round trip mismatch:\n%s\nvs\n%s", orig.DDL(), parsed.DDL())
	}
}

func TestParseDispatch(t *testing.T) {
	p, err := Parse(figure43)
	if err != nil || p.Kind() != "network" {
		t.Errorf("figure43 dispatch: %v %v", p, err)
	}
	p, err = Parse(schema.SchoolRelational().DDL())
	if err != nil || p.Kind() != "relational" {
		t.Errorf("relational dispatch: %v %v", p, err)
	}
	p, err = Parse(schema.EmpDeptHierarchy().DDL())
	if err != nil || p.Kind() != "hierarchical" {
		t.Errorf("hierarchy dispatch: %v %v", p, err)
	}
	if _, err = Parse("NONSENSE"); err == nil {
		t.Error("dispatch should reject unknown leading keyword")
	}
	if (&Parsed{}).Kind() != "empty" {
		t.Error("empty Parsed kind")
	}
}

func TestDecimalPicture(t *testing.T) {
	src := `
SCHEMA NAME IS T
RECORD SECTION.
  RECORD NAME IS R.
    FIELDS ARE.
      AMOUNT PIC 9(5)V9(2).
      PLAIN PIC 9.
      NAME PIC X.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-R. OWNER IS SYSTEM. MEMBER IS R. END SET.
END SET SECTION.
END SCHEMA.
`
	n, err := ParseNetwork(src)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Record("R")
	if r.Field("AMOUNT").Kind != value.Float {
		t.Error("9(5)V9(2) should be FLOAT")
	}
	if r.Field("PLAIN").Kind != value.Int {
		t.Error("PIC 9 should be INT")
	}
	if r.Field("NAME").Kind != value.String {
		t.Error("PIC X should be STRING")
	}
}

func TestNetworkParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing owner", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END RECORD. END RECORD SECTION. SET SECTION. SET NAME IS S. MEMBER IS R. END SET. END SET SECTION. END SCHEMA.`, "must declare OWNER"},
		{"bad picture", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A PIC Z(3). END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`, "unsupported PICTURE"},
		{"bad type", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A BLOB. END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`, "unknown type"},
		{"bad insertion", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END RECORD. END RECORD SECTION. SET SECTION. SET NAME IS S. OWNER IS SYSTEM. MEMBER IS R. INSERTION IS SOMETIMES. END SET. END SET SECTION. END SCHEMA.`, "AUTOMATIC or MANUAL"},
		{"bad retention", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END RECORD. END RECORD SECTION. SET SECTION. SET NAME IS S. OWNER IS SYSTEM. MEMBER IS R. RETENTION IS MAYBE. END SET. END SET SECTION. END SCHEMA.`, "MANDATORY or OPTIONAL"},
		{"trailing input", `SCHEMA NAME IS T RECORD SECTION. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA. EXTRA`, "trailing input"},
		{"validation runs", `SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END RECORD. END RECORD SECTION. SET SECTION. SET NAME IS S. OWNER IS NOPE. MEMBER IS R. END SET. END SET SECTION. END SCHEMA.`, "unknown owner"},
		{"unexpected in set", `SCHEMA NAME IS T RECORD SECTION. END RECORD SECTION. SET SECTION. SET NAME IS S. BANANA. END SET. END SET SECTION. END SCHEMA.`, "unexpected"},
		{"lex error", "SCHEMA NAME IS T @", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := ParseNetwork(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRelationalParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad type", `SCHEMA NAME IS T. RELATION R (A BLOB KEY). END SCHEMA.`, "unknown type"},
		{"no key", `SCHEMA NAME IS T. RELATION R (A INT). END SCHEMA.`, "no key"},
		{"trailing", `SCHEMA NAME IS T. RELATION R (A INT KEY). END SCHEMA. MORE`, "trailing input"},
		{"fk to unknown", `SCHEMA NAME IS T. RELATION R (A INT KEY) FOREIGN KEY (A) REFERENCES NOPE (A). END SCHEMA.`, "unknown relation"},
	}
	for _, tc := range cases {
		_, err := ParseRelational(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestForeignKeyDefaultRefFields(t *testing.T) {
	src := `SCHEMA NAME IS T.
RELATION P (ID INT KEY).
RELATION C (ID INT KEY, PID INT) FOREIGN KEY (PID) REFERENCES P.
END SCHEMA.`
	rs, err := ParseRelational(src)
	if err != nil {
		t.Fatal(err)
	}
	fk := rs.Relation("C").ForeignKeys[0]
	if len(fk.RefFields) != 1 || fk.RefFields[0] != "ID" {
		t.Fatalf("defaulted RefFields should be the target's key, got %+v", fk)
	}
}

func TestHierarchyParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"two roots", `HIERARCHY NAME IS H. SEGMENT A (X INT) ROOT. SEGMENT B (Y INT) ROOT. END HIERARCHY.`, "two roots"},
		{"unknown parent", `HIERARCHY NAME IS H. SEGMENT A (X INT) ROOT. SEGMENT B (Y INT) PARENT NOPE. END HIERARCHY.`, "not yet declared"},
		{"no root/parent", `HIERARCHY NAME IS H. SEGMENT A (X INT). END HIERARCHY.`, "expected ROOT or PARENT"},
		{"bad seq", `HIERARCHY NAME IS H. SEGMENT A (X INT) ROOT SEQ NOPE. END HIERARCHY.`, "sequence field"},
		{"trailing", `HIERARCHY NAME IS H. SEGMENT A (X INT) ROOT. END HIERARCHY. JUNK`, "trailing input"},
	}
	for _, tc := range cases {
		_, err := ParseHierarchy(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParsedWrappersPropagateErrors(t *testing.T) {
	if _, err := ParseNetwork("'x"); err == nil {
		t.Error("ParseNetwork lex error")
	}
	if _, err := ParseRelational("'x"); err == nil {
		t.Error("ParseRelational lex error")
	}
	if _, err := ParseHierarchy("'x"); err == nil {
		t.Error("ParseHierarchy lex error")
	}
	if _, err := Parse("'x"); err == nil {
		t.Error("Parse lex error")
	}
}

func TestMoreParseErrorPaths(t *testing.T) {
	cases := []string{
		// Missing terminator after schema body statements.
		`SCHEMA NAME IS T RECORD SECTION RECORD NAME IS R`,
		// RECORD without NAME IS.
		`SCHEMA NAME IS T RECORD SECTION. RECORD R. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`,
		// FIELDS ARE missing.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. A INT. END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`,
		// Virtual clause missing VIA.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A VIRTUAL USING B. END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`,
		// Virtual clause missing USING.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A VIRTUAL VIA S. END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`,
		// SET KEYS with unclosed parenthesis.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END RECORD. END RECORD SECTION. SET SECTION. SET NAME IS S. OWNER IS SYSTEM. MEMBER IS R. SET KEYS ARE (A. END SET. END SET SECTION. END SCHEMA.`,
		// OWNER without IS.
		`SCHEMA NAME IS T RECORD SECTION. END RECORD SECTION. SET SECTION. SET NAME IS S. OWNER SYSTEM. END SET. END SET SECTION. END SCHEMA.`,
		// PICTURE with bad length token.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A PIC X(B). END RECORD. END RECORD SECTION. SET SECTION. END SET SECTION. END SCHEMA.`,
		// END RECORD missing.
		`SCHEMA NAME IS T RECORD SECTION. RECORD NAME IS R. FIELDS ARE. A INT. END SECTION.`,
	}
	for _, src := range cases {
		if _, err := ParseNetwork(src); err == nil {
			t.Errorf("should not parse:\n%s", src)
		}
	}
}

func TestMoreRelationalErrorPaths(t *testing.T) {
	cases := []string{
		// Missing column list.
		`SCHEMA NAME IS T. RELATION R. END SCHEMA.`,
		// FOREIGN KEY with bad field list.
		`SCHEMA NAME IS T. RELATION R (A INT KEY) FOREIGN KEY A REFERENCES P. END SCHEMA.`,
		// FOREIGN KEY missing REFERENCES.
		`SCHEMA NAME IS T. RELATION R (A INT KEY) FOREIGN KEY (A) P. END SCHEMA.`,
		// REFERENCES with unclosed column list.
		`SCHEMA NAME IS T. RELATION P (A INT KEY). RELATION R (A INT KEY) FOREIGN KEY (A) REFERENCES P (A. END SCHEMA.`,
		// Missing comma handling: stray token in columns.
		`SCHEMA NAME IS T. RELATION R (A INT KEY B INT). END SCHEMA.`,
	}
	for _, src := range cases {
		if _, err := ParseRelational(src); err == nil {
			t.Errorf("should not parse:\n%s", src)
		}
	}
}

func TestSemicolonTerminatorsAccepted(t *testing.T) {
	// Figure 4.3 as printed uses ';' after RECORD SECTION; accept it
	// anywhere a '.' terminator is legal.
	src := `SCHEMA NAME IS T
RECORD SECTION;
  RECORD NAME IS R;
    FIELDS ARE;
      A INT;
  END RECORD;
END RECORD SECTION;
SET SECTION;
  SET NAME IS S; OWNER IS SYSTEM; MEMBER IS R; END SET;
END SET SECTION;
END SCHEMA;`
	if _, err := ParseNetwork(src); err != nil {
		t.Errorf("semicolon terminators: %v", err)
	}
}
