// Package schema defines the schema objects for the three data models the
// paper reasons about — relational, CODASYL network (owner-coupled sets),
// and hierarchical — together with validation and rendering. These are the
// "database description" inputs of Figure 4.1: the Conversion Analyzer
// consumes a source and a target schema in these forms.
package schema

import (
	"fmt"
	"strings"

	"progconv/internal/value"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind value.Kind
}

// ForeignKey is a referential (existence) constraint: the paper's §3.1
// "a course-offering instance cannot exist unless the course and semester
// instances it references do".
type ForeignKey struct {
	Fields    []string // referencing fields in this relation
	RefRel    string   // referenced relation
	RefFields []string // referenced fields (must be the key)
}

// Relation is a relational schema element: Figure 3.1a's
// COURSE-OFFERING(CNO, S, ...) etc. Key is the (composite) primary key;
// "the only constraint maintained explicitly in the relational model is
// tuple uniqueness (by means of key declarations)".
type Relation struct {
	Name        string
	Columns     []Column
	Key         []string
	ForeignKeys []ForeignKey
}

// Column returns the named column, or nil.
func (r *Relation) Column(name string) *Column {
	for i := range r.Columns {
		if r.Columns[i].Name == name {
			return &r.Columns[i]
		}
	}
	return nil
}

// ColumnNames returns the declared column names in order.
func (r *Relation) ColumnNames() []string {
	names := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		names[i] = c.Name
	}
	return names
}

// IsKey reports whether the named column is part of the primary key.
func (r *Relation) IsKey(name string) bool {
	for _, k := range r.Key {
		if k == name {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		Name:    r.Name,
		Columns: append([]Column(nil), r.Columns...),
		Key:     append([]string(nil), r.Key...),
	}
	for _, fk := range r.ForeignKeys {
		c.ForeignKeys = append(c.ForeignKeys, ForeignKey{
			Fields:    append([]string(nil), fk.Fields...),
			RefRel:    fk.RefRel,
			RefFields: append([]string(nil), fk.RefFields...),
		})
	}
	return c
}

// Relational is a complete relational schema.
type Relational struct {
	Name      string
	Relations []*Relation
}

// Relation returns the named relation, or nil.
func (s *Relational) Relation(name string) *Relation {
	for _, r := range s.Relations {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *Relational) Clone() *Relational {
	c := &Relational{Name: s.Name}
	for _, r := range s.Relations {
		c.Relations = append(c.Relations, r.Clone())
	}
	return c
}

// Validate checks internal consistency: unique names, keys and foreign
// keys referring to declared columns/relations, FK targets being keys.
func (s *Relational) Validate() error {
	seen := map[string]bool{}
	for _, r := range s.Relations {
		if seen[r.Name] {
			return fmt.Errorf("schema %s: duplicate relation %s", s.Name, r.Name)
		}
		seen[r.Name] = true
		cols := map[string]bool{}
		for _, c := range r.Columns {
			if cols[c.Name] {
				return fmt.Errorf("relation %s: duplicate column %s", r.Name, c.Name)
			}
			cols[c.Name] = true
		}
		if len(r.Key) == 0 {
			return fmt.Errorf("relation %s: no key declared", r.Name)
		}
		for _, k := range r.Key {
			if !cols[k] {
				return fmt.Errorf("relation %s: key column %s not declared", r.Name, k)
			}
		}
		for _, fk := range r.ForeignKeys {
			if len(fk.Fields) == 0 || len(fk.Fields) != len(fk.RefFields) {
				return fmt.Errorf("relation %s: malformed foreign key to %s", r.Name, fk.RefRel)
			}
			for _, f := range fk.Fields {
				if !cols[f] {
					return fmt.Errorf("relation %s: foreign key field %s not declared", r.Name, f)
				}
			}
			ref := s.Relation(fk.RefRel)
			if ref == nil {
				return fmt.Errorf("relation %s: foreign key references unknown relation %s", r.Name, fk.RefRel)
			}
			if strings.Join(ref.Key, ",") != strings.Join(fk.RefFields, ",") {
				return fmt.Errorf("relation %s: foreign key to %s must reference its key (%v)", r.Name, fk.RefRel, ref.Key)
			}
		}
	}
	return nil
}

// DDL renders the schema in the relational DDL accepted by the ddl parser.
func (s *Relational) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCHEMA NAME IS %s.\n", s.Name)
	for _, r := range s.Relations {
		fmt.Fprintf(&b, "RELATION %s (", r.Name)
		for i, c := range r.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
			if r.IsKey(c.Name) {
				b.WriteString(" KEY")
			}
		}
		b.WriteString(")")
		for _, fk := range r.ForeignKeys {
			fmt.Fprintf(&b, "\n  FOREIGN KEY (%s) REFERENCES %s (%s)",
				strings.Join(fk.Fields, ", "), fk.RefRel, strings.Join(fk.RefFields, ", "))
		}
		b.WriteString(".\n")
	}
	b.WriteString("END SCHEMA.\n")
	return b.String()
}
