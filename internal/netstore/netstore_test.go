package netstore

import (
	"strings"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// seedCompany loads the Figure 4.2 database used across these tests:
// two divisions, four employees.
func seedCompany(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	divs := []*value.Record{
		value.FromPairs("DIV-NAME", "MACHINERY", "DIV-LOC", "DETROIT"),
		value.FromPairs("DIV-NAME", "TEXTILES", "DIV-LOC", "ATLANTA"),
	}
	for _, d := range divs {
		if _, st, err := s.Store("DIV", d); err != nil || st != OK {
			t.Fatalf("store DIV: %v %v", st, err)
		}
	}
	emps := []struct {
		div  string
		name string
		dept string
		age  int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	}
	for _, e := range emps {
		// Position set currency on the right division first.
		if st, err := s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div)); err != nil || st != OK {
			t.Fatalf("find DIV %s: %v %v", e.div, st, err)
		}
		if _, st, err := s.Store("EMP", value.FromPairs(
			"EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age)); err != nil || st != OK {
			t.Fatalf("store EMP %s: %v %v", e.name, st, err)
		}
	}
	return db, s
}

func TestStoreAndFindAny(t *testing.T) {
	db, s := seedCompany(t)
	if db.Count("DIV") != 2 || db.Count("EMP") != 4 {
		t.Fatalf("counts: DIV=%d EMP=%d", db.Count("DIV"), db.Count("EMP"))
	}
	st, err := s.FindAny("EMP", value.FromPairs("EMP-NAME", "CLARK"))
	if err != nil || st != OK {
		t.Fatalf("FindAny: %v %v", st, err)
	}
	rec, st, err := s.Get("EMP")
	if err != nil || st != OK {
		t.Fatalf("Get: %v %v", st, err)
	}
	if rec.MustGet("AGE").AsInt() != 33 {
		t.Error("wrong record")
	}
	if rec.MustGet("DIV-NAME").AsString() != "MACHINERY" {
		t.Errorf("virtual DIV-NAME = %v", rec.MustGet("DIV-NAME"))
	}
}

func TestFindAnyNotFound(t *testing.T) {
	_, s := seedCompany(t)
	st, err := s.FindAny("EMP", value.FromPairs("EMP-NAME", "NOBODY"))
	if err != nil || st != NotFound {
		t.Errorf("st=%v err=%v", st, err)
	}
	if s.Status() != NotFound {
		t.Error("DB-STATUS register not set")
	}
}

func TestFindDuplicate(t *testing.T) {
	_, s := seedCompany(t)
	match := value.FromPairs("DEPT-NAME", "SALES")
	var names []string
	st, _ := s.FindAny("EMP", match)
	for st == OK {
		rec, _, _ := s.Get("EMP")
		names = append(names, rec.MustGet("EMP-NAME").AsString())
		st, _ = s.FindDuplicate("EMP", match)
	}
	if st != NotFound {
		t.Errorf("final status %v", st)
	}
	// Insertion order: ADAMS, BAKER, DAVIS.
	if strings.Join(names, ",") != "ADAMS,BAKER,DAVIS" {
		t.Errorf("SALES employees = %v", names)
	}
}

func TestFindDuplicateWithoutCurrency(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	st, err := s.FindDuplicate("EMP", nil)
	if err != nil || st != NoCurrency {
		t.Errorf("st=%v err=%v", st, err)
	}
}

func TestSetOrderingByKeys(t *testing.T) {
	_, s := seedCompany(t)
	// DIV-EMP is keyed on EMP-NAME: members come back alphabetically.
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	var names []string
	st, _ := s.FindInSet("DIV-EMP", First, nil)
	for st == OK {
		rec, _, _ := s.Get("EMP")
		names = append(names, rec.MustGet("EMP-NAME").AsString())
		st, _ = s.FindInSet("DIV-EMP", Next, nil)
	}
	if st != EndOfSet {
		t.Errorf("final status %v", st)
	}
	if strings.Join(names, ",") != "ADAMS,BAKER,CLARK" {
		t.Errorf("set order = %v", names)
	}
}

func TestFindInSetPriorAndLast(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	st, _ := s.FindInSet("DIV-EMP", Last, nil)
	if st != OK {
		t.Fatal(st)
	}
	rec, _, _ := s.Get("EMP")
	if rec.MustGet("EMP-NAME").AsString() != "CLARK" {
		t.Error("LAST should be CLARK")
	}
	st, _ = s.FindInSet("DIV-EMP", Prior, nil)
	rec, _, _ = s.Get("EMP")
	if st != OK || rec.MustGet("EMP-NAME").AsString() != "BAKER" {
		t.Errorf("PRIOR: %v %v", st, rec)
	}
	// PRIOR from the owner position = last member.
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	st, _ = s.FindInSet("DIV-EMP", Prior, nil)
	rec, _, _ = s.Get("EMP")
	if st != OK || rec.MustGet("EMP-NAME").AsString() != "CLARK" {
		t.Errorf("PRIOR from owner: %v %v", st, rec)
	}
}

func TestFindInSetUsingMatch(t *testing.T) {
	_, s := seedCompany(t)
	// The paper's template (B) pattern: FIND NEXT ... WITHIN set USING field.
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	match := value.FromPairs("DEPT-NAME", "WELDING")
	st, err := s.FindInSet("DIV-EMP", Next, match)
	if err != nil || st != OK {
		t.Fatalf("%v %v", st, err)
	}
	rec, _, _ := s.Get("EMP")
	if rec.MustGet("EMP-NAME").AsString() != "CLARK" {
		t.Error("USING match found wrong record")
	}
	st, _ = s.FindInSet("DIV-EMP", Next, match)
	if st != EndOfSet {
		t.Errorf("no more WELDING: %v", st)
	}
}

func TestSystemSetIteration(t *testing.T) {
	_, s := seedCompany(t)
	var names []string
	st, _ := s.FindInSet("ALL-DIV", First, nil)
	for st == OK {
		rec, _, _ := s.Get("DIV")
		names = append(names, rec.MustGet("DIV-NAME").AsString())
		st, _ = s.FindInSet("ALL-DIV", Next, nil)
	}
	// ALL-DIV is keyed on DIV-NAME.
	if strings.Join(names, ",") != "MACHINERY,TEXTILES" {
		t.Errorf("system set order = %v", names)
	}
}

func TestFindOwner(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "DAVIS"))
	st, err := s.FindOwner("DIV-EMP")
	if err != nil || st != OK {
		t.Fatalf("%v %v", st, err)
	}
	rec, _, _ := s.Get("DIV")
	if rec.MustGet("DIV-NAME").AsString() != "TEXTILES" {
		t.Error("owner should be TEXTILES")
	}
	// FIND OWNER when already on the owner is a no-op success.
	st, _ = s.FindOwner("DIV-EMP")
	if st != OK {
		t.Error("owner-on-owner")
	}
	// FIND OWNER within a SYSTEM set has no owner record.
	st, _ = s.FindOwner("ALL-DIV")
	if st != NotMember {
		t.Errorf("system set owner: %v", st)
	}
}

func TestStoreWithoutOwnerCurrency(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	// EMP is an AUTOMATIC member of DIV-EMP; with no DIV current the store
	// must fail and store nothing.
	_, st, err := s.Store("EMP", value.FromPairs("EMP-NAME", "X", "DEPT-NAME", "Y", "AGE", 1))
	if err != nil || st != NoCurrentOwner {
		t.Fatalf("%v %v", st, err)
	}
	if db.Count("EMP") != 0 {
		t.Error("failed store must not leave a record behind")
	}
}

func TestStoreDuplicateInSet(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	_, st, err := s.Store("EMP", value.FromPairs("EMP-NAME", "ADAMS", "DEPT-NAME", "Z", "AGE", 1))
	if err != nil || st != DuplicateInSet {
		t.Fatalf("%v %v", st, err)
	}
	if s.DB().Count("EMP") != 4 {
		t.Error("duplicate store must not persist")
	}
	// Same name under the other division is fine (uniqueness is per
	// occurrence, not global).
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "TEXTILES"))
	_, st, _ = s.Store("EMP", value.FromPairs("EMP-NAME", "ADAMS", "DEPT-NAME", "Z", "AGE", 1))
	if st != OK {
		t.Errorf("per-occurrence duplicate rule: %v", st)
	}
}

func TestStoreUsageErrors(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	if _, _, err := s.Store("NOPE", value.NewRecord()); err == nil {
		t.Error("unknown type")
	}
	if _, _, err := s.Store("DIV", value.FromPairs("DIV-NAME", 9, "DIV-LOC", "X")); err == nil {
		t.Error("kind mismatch")
	}
	if _, _, err := s.Store("DIV", value.FromPairs("DIV-NAME", "A", "NOPE", "X")); err == nil {
		t.Error("unknown field")
	}
	s.Store("DIV", value.FromPairs("DIV-NAME", "D", "DIV-LOC", "L"))
	if _, _, err := s.Store("EMP", value.FromPairs("EMP-NAME", "E", "DIV-NAME", "D")); err == nil {
		t.Error("storing a virtual field should be a usage error")
	}
}

func TestGetStatuses(t *testing.T) {
	db, s := seedCompany(t)
	_ = db
	if _, _, err := s.Get("NOPE"); err == nil {
		t.Error("unknown type")
	}
	s2 := NewSession(db)
	if _, st, _ := s2.Get("EMP"); st != NoCurrency {
		t.Errorf("no currency: %v", st)
	}
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	if _, st, _ := s.Get("EMP"); st != WrongType {
		t.Errorf("wrong type: %v", st)
	}
}

func TestModifyRepositionsInSet(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	st, err := s.Modify("EMP", value.FromPairs("EMP-NAME", "ZEBRA"))
	if err != nil || st != OK {
		t.Fatalf("%v %v", st, err)
	}
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	var names []string
	fst, _ := s.FindInSet("DIV-EMP", First, nil)
	for fst == OK {
		rec, _, _ := s.Get("EMP")
		names = append(names, rec.MustGet("EMP-NAME").AsString())
		fst, _ = s.FindInSet("DIV-EMP", Next, nil)
	}
	if strings.Join(names, ",") != "BAKER,CLARK,ZEBRA" {
		t.Errorf("order after modify = %v", names)
	}
}

func TestModifyDuplicateRejected(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	st, err := s.Modify("EMP", value.FromPairs("EMP-NAME", "BAKER"))
	if err != nil || st != DuplicateInSet {
		t.Fatalf("%v %v", st, err)
	}
	rec, _, _ := s.Get("EMP")
	if rec.MustGet("EMP-NAME").AsString() != "ADAMS" {
		t.Error("failed modify must not change the record")
	}
}

func TestModifyUsageAndStatusErrors(t *testing.T) {
	db, s := seedCompany(t)
	if _, err := s.Modify("NOPE", value.NewRecord()); err == nil {
		t.Error("unknown type")
	}
	s2 := NewSession(db)
	if st, _ := s2.Modify("EMP", value.NewRecord()); st != NoCurrency {
		t.Error("no currency")
	}
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	if st, _ := s.Modify("EMP", value.NewRecord()); st != WrongType {
		t.Error("wrong type")
	}
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	if _, err := s.Modify("EMP", value.FromPairs("NOPE", 1)); err == nil {
		t.Error("unknown field")
	}
	if _, err := s.Modify("EMP", value.FromPairs("DIV-NAME", "X")); err == nil {
		t.Error("virtual field")
	}
	if _, err := s.Modify("EMP", value.FromPairs("AGE", "old")); err == nil {
		t.Error("kind mismatch")
	}
}

func TestEraseCascadesMandatory(t *testing.T) {
	db, s := seedCompany(t)
	// DIV-EMP is MANDATORY: erasing MACHINERY takes its three EMPs with it.
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	st, err := s.Erase("DIV")
	if err != nil || st != OK {
		t.Fatalf("%v %v", st, err)
	}
	if db.Count("DIV") != 1 || db.Count("EMP") != 1 {
		t.Errorf("after cascade: DIV=%d EMP=%d", db.Count("DIV"), db.Count("EMP"))
	}
	// Currency scrubbed; GET now reports no currency.
	if _, st, _ := s.Get("DIV"); st != NoCurrency {
		t.Errorf("stale currency: %v", st)
	}
}

func TestEraseDisconnectsOptional(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Retention = schema.Optional
	db := NewDB(sch)
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "M", "DIV-LOC", "D"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "A", "DEPT-NAME", "S", "AGE", 1))
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "M"))
	if st, _ := s.Erase("DIV"); st != OK {
		t.Fatal(st)
	}
	if db.Count("EMP") != 1 {
		t.Error("OPTIONAL member should survive owner erase")
	}
	// The survivor is disconnected: its virtual DIV-NAME is now null.
	id := db.AllOf("EMP")[0]
	if !db.Data(id).MustGet("DIV-NAME").IsNull() {
		t.Error("virtual through a gone owner should be null")
	}
}

func TestEraseStatusesAndErrors(t *testing.T) {
	db, s := seedCompany(t)
	if _, err := s.Erase("NOPE"); err == nil {
		t.Error("unknown type")
	}
	s2 := NewSession(db)
	if st, _ := s2.Erase("EMP"); st != NoCurrency {
		t.Error("no currency")
	}
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	if st, _ := s.Erase("EMP"); st != WrongType {
		t.Error("wrong type")
	}
}

func TestConnectAndDisconnectManualOptional(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	db := NewDB(sch)
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "M", "DIV-LOC", "D"))
	// MANUAL: store does not connect.
	s.Store("EMP", value.FromPairs("EMP-NAME", "A", "DEPT-NAME", "S", "AGE", 1))
	empID := db.AllOf("EMP")[0]
	if _, connected := db.OwnerOf("DIV-EMP", empID); connected {
		t.Fatal("MANUAL member must not auto-connect")
	}
	// Connect needs the owner current of its type; it is (stored above).
	if st, _ := s.Connect("DIV-EMP"); st != OK {
		t.Fatalf("connect: %v", s.Status())
	}
	if owner, connected := db.OwnerOf("DIV-EMP", empID); !connected || owner == 0 {
		t.Error("connect failed to wire membership")
	}
	if st, _ := s.Connect("DIV-EMP"); st != AlreadyMember {
		t.Errorf("double connect: %v", st)
	}
	if st, _ := s.Disconnect("DIV-EMP"); st != OK {
		t.Errorf("disconnect: %v", st)
	}
	if st, _ := s.Disconnect("DIV-EMP"); st != NotMember {
		t.Errorf("double disconnect: %v", st)
	}
}

func TestDisconnectMandatoryIsRetentionViolation(t *testing.T) {
	_, s := seedCompany(t)
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	st, err := s.Disconnect("DIV-EMP")
	if err != nil || st != Retention {
		t.Errorf("%v %v", st, err)
	}
}

func TestConnectStatusesAndErrors(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	db := NewDB(sch)
	s := NewSession(db)
	if _, err := s.Connect("NOPE"); err == nil {
		t.Error("unknown set")
	}
	if st, _ := s.Connect("DIV-EMP"); st != NoCurrency {
		t.Error("no currency")
	}
	s.Store("DIV", value.FromPairs("DIV-NAME", "M", "DIV-LOC", "D"))
	if st, _ := s.Connect("DIV-EMP"); st != WrongType {
		t.Error("DIV is not the member type")
	}
	if _, err := s.Disconnect("NOPE"); err == nil {
		t.Error("unknown set disconnect")
	}
	s2 := NewSession(db)
	if st, _ := s2.Disconnect("DIV-EMP"); st != NoCurrency {
		t.Error("disconnect no currency")
	}
	if st, _ := s.Disconnect("DIV-EMP"); st != WrongType {
		t.Error("disconnect wrong type")
	}
}

func TestConnectDuplicateInSet(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	db := NewDB(sch)
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "M", "DIV-LOC", "D"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "A", "DEPT-NAME", "S", "AGE", 1))
	s.Connect("DIV-EMP")
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "M"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "A", "DEPT-NAME", "T", "AGE", 2))
	if st, _ := s.Connect("DIV-EMP"); st != DuplicateInSet {
		t.Errorf("duplicate connect: %v", st)
	}
}

func TestFindInSetStatuses(t *testing.T) {
	db, s := seedCompany(t)
	if _, err := s.FindInSet("NOPE", First, nil); err == nil {
		t.Error("unknown set")
	}
	if _, err := s.FindInSet("DIV-EMP", First, value.FromPairs("NOPE", 1)); err == nil {
		t.Error("bad match field")
	}
	s2 := NewSession(db)
	if st, _ := s2.FindInSet("DIV-EMP", First, nil); st != NoCurrency {
		t.Error("no set currency")
	}
	if st, _ := s2.FindInSet("DIV-EMP", Next, nil); st != NoCurrency {
		t.Error("NEXT without currency")
	}
	// Empty occurrence: a fresh DIV with no EMPs.
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "TEXTILES"))
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "DAVIS"))
	s.Erase("EMP")
	s.FindAny("DIV", value.FromPairs("DIV-NAME", "TEXTILES"))
	if st, _ := s.FindInSet("DIV-EMP", First, nil); st != EndOfSet {
		t.Errorf("empty occurrence: %v", st)
	}
}

func TestFindOwnerStatuses(t *testing.T) {
	db, _ := seedCompany(t)
	s := NewSession(db)
	if _, err := s.FindOwner("NOPE"); err == nil {
		t.Error("unknown set")
	}
	if st, _ := s.FindOwner("DIV-EMP"); st != NoCurrency {
		t.Error("no currency")
	}
}

func TestFindAnyUsageErrors(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	if _, err := s.FindAny("NOPE", nil); err == nil {
		t.Error("unknown type")
	}
	if _, err := s.FindAny("EMP", value.FromPairs("NOPE", 1)); err == nil {
		t.Error("bad match field")
	}
}

func TestMatchOnVirtualField(t *testing.T) {
	_, s := seedCompany(t)
	// FIND ANY EMP with a virtual field condition resolves ownership.
	st, err := s.FindAny("EMP", value.FromPairs("DIV-NAME", "TEXTILES"))
	if err != nil || st != OK {
		t.Fatalf("%v %v", st, err)
	}
	rec, _, _ := s.Get("EMP")
	if rec.MustGet("EMP-NAME").AsString() != "DAVIS" {
		t.Error("virtual match found wrong record")
	}
}

func TestChainedVirtualResolution(t *testing.T) {
	// Figure 4.4: EMP.DIV-NAME resolves EMP → DEPT → DIV.
	db := NewDB(schema.CompanyV2())
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "MACHINERY", "DIV-LOC", "DETROIT"))
	s.Store("DEPT", value.FromPairs("DEPT-NAME", "SALES"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "ADAMS", "AGE", 45))
	id := db.AllOf("EMP")[0]
	rec := db.Data(id)
	if rec.MustGet("DEPT-NAME").AsString() != "SALES" {
		t.Errorf("one-level virtual: %v", rec)
	}
	if rec.MustGet("DIV-NAME").AsString() != "MACHINERY" {
		t.Errorf("two-level virtual: %v", rec)
	}
}

func TestDataAndTypeOfStaleID(t *testing.T) {
	db, s := seedCompany(t)
	id := db.AllOf("EMP")[0]
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	s.Erase("EMP")
	if db.Data(id) != nil || db.StoredData(id) != nil {
		t.Error("stale Data should be nil")
	}
	if db.TypeOf(id) != "" || db.Exists(id) {
		t.Error("stale TypeOf/Exists")
	}
	if _, connected := db.OwnerOf("DIV-EMP", id); connected {
		t.Error("stale OwnerOf")
	}
}

func TestCloneIndependence(t *testing.T) {
	db, _ := seedCompany(t)
	c := db.Clone()
	cs := NewSession(c)
	cs.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	cs.Erase("DIV")
	if db.Count("DIV") != 2 || db.Count("EMP") != 4 {
		t.Error("clone erase leaked into original")
	}
	if c.Count("DIV") != 1 {
		t.Error("clone erase did not apply")
	}
	// IDs preserved across clone.
	for _, id := range db.AllOf("EMP") {
		if db.TypeOf(id) != "EMP" {
			t.Error("original IDs broken")
		}
	}
}

func TestMembersAndSystemMembers(t *testing.T) {
	db, s := seedCompany(t)
	divs := db.SystemMembers("ALL-DIV")
	if len(divs) != 2 {
		t.Fatalf("system members = %v", divs)
	}
	emps := db.Members("DIV-EMP", divs[0])
	if len(emps) != 3 {
		t.Errorf("MACHINERY emps = %d", len(emps))
	}
	if db.Members("NOPE", 1) != nil {
		t.Error("unknown set Members should be nil")
	}
	_ = s
}

func TestNewDBPanicsOnInvalidSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDB(&schema.Network{Name: "BAD", Sets: []*schema.SetType{{Name: "S", Owner: "X", Member: "Y"}}})
}

func TestDirectionString(t *testing.T) {
	for d, w := range map[Direction]string{First: "FIRST", Last: "LAST", Next: "NEXT", Prior: "PRIOR", Direction(9): "?"} {
		if d.String() != w {
			t.Errorf("%d = %q", d, d.String())
		}
	}
}

func TestStatusString(t *testing.T) {
	for st, w := range map[Status]string{
		OK: "OK", EndOfSet: "END-OF-SET", NotFound: "NOT-FOUND",
		NoCurrency: "NO-CURRENCY", NoCurrentOwner: "NO-CURRENT-OWNER",
		DuplicateInSet: "DUPLICATE-IN-SET", AlreadyMember: "ALREADY-MEMBER",
		NotMember: "NOT-MEMBER", Retention: "RETENTION-VIOLATION",
		WrongType: "WRONG-TYPE", Status(42): "UNKNOWN-STATUS",
	} {
		if st.String() != w {
			t.Errorf("%d = %q", st, st.String())
		}
	}
}

func TestCurrencyAccessors(t *testing.T) {
	db, s := seedCompany(t)
	s.FindAny("EMP", value.FromPairs("EMP-NAME", "ADAMS"))
	if s.Current() == 0 || s.CurrentOfType("EMP") != s.Current() {
		t.Error("currency accessors")
	}
	if s.CurrentOfSet("DIV-EMP") != s.Current() {
		t.Error("set currency should follow the member")
	}
	if s.DB() != db {
		t.Error("DB accessor")
	}
}
