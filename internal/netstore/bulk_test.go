package netstore

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// dumpState renders the complete database state deterministically:
// every occurrence in byType order with its stored fields and
// memberships, every set occurrence's member list, and the index
// contents. Two databases built by equivalent insert sequences must
// dump byte-identically.
func dumpState(db *DB) string {
	var b strings.Builder
	for _, t := range db.schema.Records {
		for _, id := range db.byType[t.Name] {
			o := db.recs[id]
			fmt.Fprintf(&b, "#%d %s {", id, t.Name)
			first := true
			for _, f := range t.Fields {
				if f.Virtual != nil {
					continue
				}
				if !first {
					b.WriteString(" ")
				}
				first = false
				v, _ := o.data.Get(f.Name)
				fmt.Fprintf(&b, "%s=%s", f.Name, v.String())
			}
			b.WriteString("}")
			sets := make([]string, 0, len(o.memberOf))
			for s := range o.memberOf {
				sets = append(sets, s)
			}
			sort.Strings(sets)
			for _, s := range sets {
				fmt.Fprintf(&b, " %s<-#%d", s, o.memberOf[s])
			}
			b.WriteString("\n")
		}
	}
	for _, set := range db.schema.Sets {
		owners := make([]RecordID, 0, len(db.members[set.Name]))
		for o := range db.members[set.Name] {
			owners = append(owners, o)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		for _, o := range owners {
			if lst := db.members[set.Name][o]; len(lst) > 0 {
				fmt.Fprintf(&b, "set %s owner #%d: %v\n", set.Name, o, lst)
			}
		}
	}
	b.WriteString(db.IndexDump())
	return b.String()
}

// storeFunc abstracts the two insert paths so the same scripted load
// can drive StoreWith and BulkLoader.Store.
type storeFunc func(recType string, rec *value.Record, memberships map[string]RecordID) (RecordID, error)

// loadCompany drives a fixed CompanyV1 load — divisions under the
// SYSTEM set, employees deliberately out of key order so Close's sort
// has real work — and returns every assigned ID in store order.
func loadCompany(t *testing.T, store storeFunc) []RecordID {
	t.Helper()
	var ids []RecordID
	must := func(recType string, rec *value.Record, m map[string]RecordID) RecordID {
		id, err := store(recType, rec, m)
		if err != nil {
			t.Fatalf("store %s: %v", recType, err)
		}
		ids = append(ids, id)
		return id
	}
	mach := must("DIV", value.FromPairs("DIV-NAME", "MACHINERY", "DIV-LOC", "DETROIT"),
		map[string]RecordID{"ALL-DIV": OwnerSystem})
	tex := must("DIV", value.FromPairs("DIV-NAME", "TEXTILES", "DIV-LOC", "ATLANTA"),
		map[string]RecordID{"ALL-DIV": OwnerSystem})
	for _, e := range []struct {
		owner RecordID
		name  string
		dept  string
		age   int
	}{
		{mach, "ZIEGLER", "WELDING", 60},
		{mach, "ADAMS", "SALES", 45},
		{tex, "QUINN", "SALES", 39},
		{mach, "MILLER", "SALES", 28},
		{tex, "BAKER", "WEAVING", 51},
	} {
		must("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age),
			map[string]RecordID{"DIV-EMP": e.owner})
	}
	// A record connected to no set at all still loads.
	must("EMP", value.FromPairs("EMP-NAME", "ORPHAN", "DEPT-NAME", "NONE", "AGE", 1), nil)
	return ids
}

// TestBulkLoaderParity: the same insert sequence through StoreWith and
// through a BulkLoader yields byte-identical databases — IDs, stored
// data, memberships, keyed-set orderings, and index buckets.
func TestBulkLoaderParity(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("close-parallelism-%d", par), func(t *testing.T) {
			serial := NewDB(schema.CompanyV1())
			serialIDs := loadCompany(t, serial.StoreWith)

			bulkDB := NewDB(schema.CompanyV1())
			bl := bulkDB.NewBulkLoader(8)
			bulkIDs := loadCompany(t, bl.Store)
			bl.Close(par)

			if fmt.Sprint(serialIDs) != fmt.Sprint(bulkIDs) {
				t.Fatalf("assigned IDs diverge:\nserial %v\nbulk   %v", serialIDs, bulkIDs)
			}
			if bl.Loaded() != len(bulkIDs) {
				t.Errorf("Loaded() = %d, want %d", bl.Loaded(), len(bulkIDs))
			}
			if got, want := dumpState(bulkDB), dumpState(serial); got != want {
				t.Errorf("bulk-loaded state diverges:\n--- StoreWith ---\n%s--- BulkLoader ---\n%s", want, got)
			}
		})
	}
}

// TestBulkLoaderParityUnindexed: the loader behaves identically when
// the keyed FIND fast path is disabled (db.indexes == nil).
func TestBulkLoaderParityUnindexed(t *testing.T) {
	serial := NewDB(schema.CompanyV1())
	serial.SetIndexing(false)
	loadCompany(t, serial.StoreWith)

	bulkDB := NewDB(schema.CompanyV1())
	bulkDB.SetIndexing(false)
	bl := bulkDB.NewBulkLoader(8)
	loadCompany(t, bl.Store)
	bl.Close(2)

	if got, want := dumpState(bulkDB), dumpState(serial); got != want {
		t.Errorf("unindexed state diverges:\n--- StoreWith ---\n%s--- BulkLoader ---\n%s", want, got)
	}
}

// TestBulkLoaderErrorParity: every validation failure surfaces the same
// error string as StoreWith, rejects the record in both paths (no ID is
// consumed), and leaves both databases equal afterward.
func TestBulkLoaderErrorParity(t *testing.T) {
	serial := NewDB(schema.CompanyV1())
	loadCompany(t, serial.StoreWith)
	bulkDB := NewDB(schema.CompanyV1())
	bl := bulkDB.NewBulkLoader(8)
	loadCompany(t, bl.Store)

	emp := value.FromPairs("EMP-NAME", "NEW", "DEPT-NAME", "SALES", "AGE", 30)
	cases := []struct {
		name    string
		recType string
		rec     *value.Record
		m       map[string]RecordID
	}{
		{"unknown-record-type", "NOPE", emp, nil},
		{"kind-mismatch", "EMP",
			value.FromPairs("EMP-NAME", "NEW", "DEPT-NAME", "SALES", "AGE", "old"), nil},
		{"unknown-set", "EMP", emp, map[string]RecordID{"NO-SET": 1}},
		{"not-member-type", "DIV",
			value.FromPairs("DIV-NAME", "X", "DIV-LOC", "Y"), map[string]RecordID{"DIV-EMP": 1}},
		{"system-owned", "DIV",
			value.FromPairs("DIV-NAME", "X", "DIV-LOC", "Y"), map[string]RecordID{"ALL-DIV": 1}},
		{"owner-missing", "EMP", emp, map[string]RecordID{"DIV-EMP": 999}},
		{"owner-wrong-type", "EMP", emp, map[string]RecordID{"DIV-EMP": 3}}, // #3 is an EMP
		{"duplicate-set-key", "EMP",
			value.FromPairs("EMP-NAME", "ADAMS", "DEPT-NAME", "SALES", "AGE", 45),
			map[string]RecordID{"DIV-EMP": 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := serial.StoreWith(tc.recType, tc.rec, tc.m)
			_, berr := bl.Store(tc.recType, tc.rec, tc.m)
			if serr == nil || berr == nil {
				t.Fatalf("expected errors, got StoreWith=%v bulk=%v", serr, berr)
			}
			if serr.Error() != berr.Error() {
				t.Errorf("error strings diverge:\nStoreWith: %v\nbulk:      %v", serr, berr)
			}
		})
	}
	// Failed stores consumed no IDs; the next insert stays in lockstep.
	sid, serr := serial.StoreWith("EMP", emp, map[string]RecordID{"DIV-EMP": 2})
	bid, berr := bl.Store("EMP", emp, map[string]RecordID{"DIV-EMP": 2})
	if serr != nil || berr != nil || sid != bid {
		t.Fatalf("post-error store: serial (%d, %v) vs bulk (%d, %v)", sid, serr, bid, berr)
	}
	bl.Close(0)
	if got, want := dumpState(bulkDB), dumpState(serial); got != want {
		t.Errorf("state diverges after error sequence:\n--- StoreWith ---\n%s--- BulkLoader ---\n%s", want, got)
	}
}

// TestBulkLoaderIntoPopulatedDB: a bulk load into a database that
// already holds records keeps StoreWith's duplicate-key checks against
// the pre-existing members and merges identically to the serial path.
func TestBulkLoaderIntoPopulatedDB(t *testing.T) {
	serial, _ := seedCompany(t)
	bulkDB := serial.Clone()

	bl := bulkDB.NewBulkLoader(4)
	// Duplicate of the pre-existing ADAMS key under division #1: both
	// paths must reject it even though the loader never stored ADAMS.
	dup := value.FromPairs("EMP-NAME", "ADAMS", "DEPT-NAME", "SALES", "AGE", 45)
	_, serr := serial.StoreWith("EMP", dup, map[string]RecordID{"DIV-EMP": 1})
	_, berr := bl.Store("EMP", dup, map[string]RecordID{"DIV-EMP": 1})
	if serr == nil || berr == nil || serr.Error() != berr.Error() {
		t.Fatalf("pre-existing duplicate: StoreWith=%v bulk=%v", serr, berr)
	}
	for _, name := range []string{"EARLY", "YOUNG"} {
		rec := value.FromPairs("EMP-NAME", name, "DEPT-NAME", "SALES", "AGE", 20)
		if _, err := serial.StoreWith("EMP", rec, map[string]RecordID{"DIV-EMP": 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := bl.Store("EMP", rec, map[string]RecordID{"DIV-EMP": 2}); err != nil {
			t.Fatal(err)
		}
	}
	bl.Close(2)
	if got, want := dumpState(bulkDB), dumpState(serial); got != want {
		t.Errorf("populated-DB load diverges:\n--- StoreWith ---\n%s--- BulkLoader ---\n%s", want, got)
	}
}
