package netstore

import (
	"fmt"
	"math/rand"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// checkInvariants verifies the structural invariants the engine promises
// after any operation sequence:
//
//  1. membership is bidirectional: OwnerOf and Members agree exactly;
//  2. every set occurrence is ordered by the set's keys;
//  3. no duplicate set-key values inside one occurrence;
//  4. AUTOMATIC+MANDATORY members of non-SYSTEM sets are always connected
//     (they cannot be stored without an owner or disconnected later).
func checkInvariants(t *testing.T, db *DB) {
	t.Helper()
	sch := db.Schema()
	for _, set := range sch.Sets {
		// Collect owner → members as recorded in the occurrence lists.
		owners := []RecordID{OwnerSystem}
		if !set.IsSystem() {
			owners = db.AllOf(set.Owner)
		}
		listed := map[RecordID]RecordID{} // member -> owner per lists
		for _, owner := range owners {
			members := db.Members(set.Name, owner)
			seenKeys := map[string]bool{}
			for i, m := range members {
				listed[m] = owner
				data := db.StoredData(m)
				if data == nil {
					t.Fatalf("set %s lists erased record %d", set.Name, m)
				}
				if len(set.Keys) > 0 {
					k := data.KeyOf(set.Keys)
					if seenKeys[k] {
						t.Fatalf("set %s occurrence of %d has duplicate key %v", set.Name, owner, set.Keys)
					}
					seenKeys[k] = true
					if i > 0 {
						prev := db.StoredData(members[i-1])
						if value.CompareBy(prev, data, set.Keys) > 0 {
							t.Fatalf("set %s occurrence of %d out of order at %d", set.Name, owner, i)
						}
					}
				}
			}
		}
		// Every member's OwnerOf agrees with the occurrence lists.
		for _, m := range db.AllOf(set.Member) {
			owner, connected := db.OwnerOf(set.Name, m)
			lo, inList := listed[m]
			if connected != inList {
				t.Fatalf("set %s: record %d connected=%v but inList=%v", set.Name, m, connected, inList)
			}
			if connected && owner != lo {
				t.Fatalf("set %s: record %d OwnerOf=%d but listed under %d", set.Name, m, owner, lo)
			}
			if !connected && set.Insertion == schema.Automatic && set.Retention == schema.Mandatory {
				t.Fatalf("set %s: AUTOMATIC MANDATORY member %d is disconnected", set.Name, m)
			}
		}
	}
}

// TestRandomOperationSequencesPreserveInvariants drives the engine with
// seeded random operation mixes and checks the invariants throughout.
func TestRandomOperationSequencesPreserveInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(schema.CompanyV1())
		s := NewSession(db)
		divs := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1: // store a division
				s.Store("DIV", value.FromPairs(
					"DIV-NAME", fmt.Sprintf("DIV-%03d", divs),
					"DIV-LOC", fmt.Sprintf("L%d", rng.Intn(5))))
				divs++
			case 2, 3, 4: // position on a random division and store an employee
				if divs == 0 {
					continue
				}
				s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%03d", rng.Intn(divs))))
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000)),
					"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(4)),
					"AGE", 20+rng.Intn(40)))
			case 5: // modify a random employee's set key (forces reordering)
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Modify("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000))))
			case 6: // modify a non-key field
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Modify("EMP", value.FromPairs("AGE", value.Of(int64(20+rng.Intn(40)))))
			case 7: // erase a random employee
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("EMP")
			case 8: // erase a random division (cascades its employees)
				ids := db.AllOf("DIV")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("DIV")
			case 9: // navigate around (must not corrupt anything)
				s.FindInSet("ALL-DIV", First, nil)
				s.FindInSet("ALL-DIV", Next, nil)
				s.FindInSet("DIV-EMP", Next, nil)
				s.FindOwner("DIV-EMP")
			}
			if op%50 == 0 {
				checkInvariants(t, db)
			}
		}
		checkInvariants(t, db)
		// The clone carries identical structure.
		checkInvariants(t, db.Clone())
	}
}

// TestRandomSequencesWithManualOptionalSets exercises CONNECT/DISCONNECT
// under the same invariant checks.
func TestRandomSequencesWithManualOptionalSets(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(sch.Clone())
		s := NewSession(db)
		for d := 0; d < 3; d++ {
			s.Store("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%d", d), "DIV-LOC", "X"))
		}
		for op := 0; op < 300; op++ {
			switch rng.Intn(6) {
			case 0, 1: // store a free-floating employee
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(500)),
					"DEPT-NAME", "D", "AGE", 30))
			case 2, 3: // connect a random employee under a random division
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%d", rng.Intn(3))))
				s.Position(ids[rng.Intn(len(ids))])
				s.Connect("DIV-EMP")
			case 4: // disconnect
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Disconnect("DIV-EMP")
			case 5: // erase
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("EMP")
			}
			if op%40 == 0 {
				checkInvariants(t, db)
			}
		}
		checkInvariants(t, db)
	}
}
