package netstore

import (
	"fmt"
	"math/rand"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// checkInvariants verifies the structural invariants the engine promises
// after any operation sequence:
//
//  1. membership is bidirectional: OwnerOf and Members agree exactly;
//  2. every set occurrence is ordered by the set's keys;
//  3. no duplicate set-key values inside one occurrence;
//  4. AUTOMATIC+MANDATORY members of non-SYSTEM sets are always connected
//     (they cannot be stored without an owner or disconnected later);
//  5. every hash index is exactly the partition of byType by key value,
//     with buckets in ascending (= scan) order.
func checkInvariants(t *testing.T, db *DB) {
	t.Helper()
	checkIndexStructure(t, db)
	sch := db.Schema()
	for _, set := range sch.Sets {
		// Collect owner → members as recorded in the occurrence lists.
		owners := []RecordID{OwnerSystem}
		if !set.IsSystem() {
			owners = db.AllOf(set.Owner)
		}
		listed := map[RecordID]RecordID{} // member -> owner per lists
		for _, owner := range owners {
			members := db.Members(set.Name, owner)
			seenKeys := map[string]bool{}
			for i, m := range members {
				listed[m] = owner
				data := db.StoredData(m)
				if data == nil {
					t.Fatalf("set %s lists erased record %d", set.Name, m)
				}
				if len(set.Keys) > 0 {
					k := data.KeyOf(set.Keys)
					if seenKeys[k] {
						t.Fatalf("set %s occurrence of %d has duplicate key %v", set.Name, owner, set.Keys)
					}
					seenKeys[k] = true
					if i > 0 {
						prev := db.StoredData(members[i-1])
						if value.CompareBy(prev, data, set.Keys) > 0 {
							t.Fatalf("set %s occurrence of %d out of order at %d", set.Name, owner, i)
						}
					}
				}
			}
		}
		// Every member's OwnerOf agrees with the occurrence lists.
		for _, m := range db.AllOf(set.Member) {
			owner, connected := db.OwnerOf(set.Name, m)
			lo, inList := listed[m]
			if connected != inList {
				t.Fatalf("set %s: record %d connected=%v but inList=%v", set.Name, m, connected, inList)
			}
			if connected && owner != lo {
				t.Fatalf("set %s: record %d OwnerOf=%d but listed under %d", set.Name, m, owner, lo)
			}
			if !connected && set.Insertion == schema.Automatic && set.Retention == schema.Mandatory {
				t.Fatalf("set %s: AUTOMATIC MANDATORY member %d is disconnected", set.Name, m)
			}
		}
	}
}

// checkIndexStructure rebuilds every index's expected buckets from the
// byType lists and compares them with the incrementally maintained ones.
func checkIndexStructure(t *testing.T, db *DB) {
	t.Helper()
	for typ, idxs := range db.indexes {
		for _, ix := range idxs {
			want := map[string][]RecordID{}
			for _, id := range db.byType[typ] {
				k := db.recs[id].data.KeyOf(ix.fields)
				want[k] = append(want[k], id)
			}
			if len(want) != len(ix.buckets) {
				t.Fatalf("index %s%v: %d buckets, want %d", typ, ix.fields, len(ix.buckets), len(want))
			}
			for k, ids := range want {
				got := ix.buckets[k]
				if len(got) != len(ids) {
					t.Fatalf("index %s%v bucket %q: %v, want %v", typ, ix.fields, k, got, ids)
				}
				for i := range ids {
					if got[i] != ids[i] {
						t.Fatalf("index %s%v bucket %q: %v, want %v", typ, ix.fields, k, got, ids)
					}
				}
			}
		}
	}
}

// oracleFind is an independent reimplementation of the FIND scan used as
// ground truth: first occurrence after `after` in insertion order whose
// resolved record agrees with every non-null match field.
func oracleFind(db *DB, recType string, match *value.Record, after RecordID) RecordID {
	skipping := after != 0
	for _, id := range db.AllOf(recType) {
		if skipping {
			if id == after {
				skipping = false
			}
			continue
		}
		ok := true
		if match != nil {
			rec := db.Data(id)
			for _, n := range match.Names() {
				want := match.MustGet(n)
				if want.IsNull() {
					continue
				}
				if !rec.MustGet(n).Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return id
		}
	}
	return 0
}

// checkFindAgainstOracle runs FindAny and the full FindDuplicate chain on
// a fresh session and asserts each step lands exactly where the oracle
// scan says it must — regardless of whether the index or the scan path
// answered.
func checkFindAgainstOracle(t *testing.T, db *DB, recType string, match *value.Record) {
	t.Helper()
	s := NewSession(db)
	st, err := s.FindAny(recType, match)
	if err != nil {
		t.Fatalf("FindAny %s %v: %v", recType, match, err)
	}
	cur := oracleFind(db, recType, match, 0)
	if cur == 0 {
		if st != NotFound {
			t.Fatalf("FindAny %s %v: status %v, oracle found nothing", recType, match, st)
		}
		return
	}
	if st != OK || s.Current() != cur {
		t.Fatalf("FindAny %s %v: got (%v, %d), oracle %d", recType, match, st, s.Current(), cur)
	}
	for {
		st, err = s.FindDuplicate(recType, match)
		if err != nil {
			t.Fatalf("FindDuplicate %s %v: %v", recType, match, err)
		}
		next := oracleFind(db, recType, match, cur)
		if next == 0 {
			if st != NotFound {
				t.Fatalf("FindDuplicate %s %v after %d: status %v, oracle exhausted", recType, match, cur, st)
			}
			return
		}
		if st != OK || s.Current() != next {
			t.Fatalf("FindDuplicate %s %v after %d: got (%v, %d), oracle %d",
				recType, match, cur, st, s.Current(), next)
		}
		cur = next
	}
}

// TestRandomOperationSequencesPreserveInvariants drives the engine with
// seeded random operation mixes and checks the invariants throughout.
func TestRandomOperationSequencesPreserveInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(schema.CompanyV1())
		s := NewSession(db)
		divs := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1: // store a division
				s.Store("DIV", value.FromPairs(
					"DIV-NAME", fmt.Sprintf("DIV-%03d", divs),
					"DIV-LOC", fmt.Sprintf("L%d", rng.Intn(5))))
				divs++
			case 2, 3, 4: // position on a random division and store an employee
				if divs == 0 {
					continue
				}
				s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%03d", rng.Intn(divs))))
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000)),
					"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(4)),
					"AGE", 20+rng.Intn(40)))
			case 5: // modify a random employee's set key (forces reordering)
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Modify("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000))))
			case 6: // modify a non-key field
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Modify("EMP", value.FromPairs("AGE", value.Of(int64(20+rng.Intn(40)))))
			case 7: // erase a random employee
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("EMP")
			case 8: // erase a random division (cascades its employees)
				ids := db.AllOf("DIV")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("DIV")
			case 9: // navigate around (must not corrupt anything)
				s.FindInSet("ALL-DIV", First, nil)
				s.FindInSet("ALL-DIV", Next, nil)
				s.FindInSet("DIV-EMP", Next, nil)
				s.FindOwner("DIV-EMP")
			}
			// Indexed FIND agrees with the scan oracle after every op.
			recType := "EMP"
			if rng.Intn(3) == 0 {
				recType = "DIV"
			}
			checkFindAgainstOracle(t, db, recType, randomMatch(rng, recType))
			if op%50 == 0 {
				checkInvariants(t, db)
			}
		}
		checkInvariants(t, db)
		// The clone carries identical structure.
		checkInvariants(t, db.Clone())
	}
}

// TestRandomSequencesWithManualOptionalSets exercises CONNECT/DISCONNECT
// under the same invariant checks.
func TestRandomSequencesWithManualOptionalSets(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB(sch.Clone())
		s := NewSession(db)
		for d := 0; d < 3; d++ {
			s.Store("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%d", d), "DIV-LOC", "X"))
		}
		for op := 0; op < 300; op++ {
			switch rng.Intn(6) {
			case 0, 1: // store a free-floating employee
				s.Store("EMP", value.FromPairs(
					"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(500)),
					"DEPT-NAME", "D", "AGE", 30))
			case 2, 3: // connect a random employee under a random division
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%d", rng.Intn(3))))
				s.Position(ids[rng.Intn(len(ids))])
				s.Connect("DIV-EMP")
			case 4: // disconnect
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Disconnect("DIV-EMP")
			case 5: // erase
				ids := db.AllOf("EMP")
				if len(ids) == 0 {
					continue
				}
				s.Position(ids[rng.Intn(len(ids))])
				s.Erase("EMP")
			}
			// CONNECT/DISCONNECT don't change stored keys, but the index
			// must still agree with the oracle after every interleaving.
			checkFindAgainstOracle(t, db, "EMP",
				value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(500))))
			if op%40 == 0 {
				checkInvariants(t, db)
			}
		}
		checkInvariants(t, db)
	}
}
