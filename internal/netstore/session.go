package netstore

import (
	"fmt"
	"sort"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// Direction selects the variant of FIND ... WITHIN set.
type Direction uint8

// FIND directions.
const (
	First Direction = iota
	Last
	Next
	Prior
)

func (d Direction) String() string {
	switch d {
	case First:
		return "FIRST"
	case Last:
		return "LAST"
	case Next:
		return "NEXT"
	case Prior:
		return "PRIOR"
	}
	return "?"
}

// Session is a run-unit: the currency indicators and DB-STATUS register
// of one executing program. DML verbs are methods on Session; each sets
// Status and, on success, the currency indicators, exactly the state the
// paper's §2.1.2 warns a DML-emulation layer must track ("status values
// (e.g., currency)").
type Session struct {
	db     *DB
	status Status
	// Currency indicators.
	runUnit RecordID            // current of run-unit
	ofType  map[string]RecordID // current of record type
	ofSet   map[string]RecordID // current of set type (owner or member occurrence)
}

// NewSession opens a run-unit on the database.
func NewSession(db *DB) *Session {
	return &Session{
		db:     db,
		ofType: make(map[string]RecordID),
		ofSet:  make(map[string]RecordID),
	}
}

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Status returns the DB-STATUS register: the outcome of the last DML verb.
func (s *Session) Status() Status { return s.status }

// Current returns the current of run-unit, or 0 if none.
func (s *Session) Current() RecordID { return s.runUnit }

// CurrentOfType returns the current of the given record type, or 0.
func (s *Session) CurrentOfType(recType string) RecordID { return s.ofType[recType] }

// CurrentOfSet returns the current of the given set type, or 0.
func (s *Session) CurrentOfSet(set string) RecordID { return s.ofSet[set] }

// setCurrency makes o current of run-unit, of its record type, and of
// every set type in which its record type participates as owner or
// member (the DBTG currency update rule).
func (s *Session) setCurrency(o *occurrence) {
	s.runUnit = o.id
	s.ofType[o.typ.Name] = o.id
	for _, set := range s.db.schema.Sets {
		if set.Member == o.typ.Name || set.Owner == o.typ.Name {
			s.ofSet[set.Name] = o.id
		}
	}
}

// scrubStale clears currency indicators that point at erased records.
func (s *Session) scrubStale() {
	if s.runUnit != 0 && !s.db.Exists(s.runUnit) {
		s.runUnit = 0
	}
	for k, id := range s.ofType {
		if !s.db.Exists(id) {
			delete(s.ofType, k)
		}
	}
	for k, id := range s.ofSet {
		if !s.db.Exists(id) {
			delete(s.ofSet, k)
		}
	}
}

func (s *Session) fail(st Status) Status {
	s.status = st
	return st
}

// matchShape verifies that every non-null field of match names a field of
// the record type; this is a usage error, not a DB-STATUS condition.
func matchShape(typ *schema.RecordType, match *value.Record) error {
	if match == nil {
		return nil
	}
	for _, n := range match.Names() {
		if typ.Field(n) == nil {
			return fmt.Errorf("netstore: %s has no field %s", typ.Name, n)
		}
	}
	return nil
}

// matches reports whether the occurrence's resolved record agrees with
// every non-null field of match.
func (s *Session) matches(o *occurrence, match *value.Record) bool {
	if match == nil {
		return true
	}
	var resolved *value.Record
	for _, n := range match.Names() {
		want := match.MustGet(n)
		if want.IsNull() {
			continue
		}
		f := o.typ.Field(n)
		var got value.Value
		if f.Virtual == nil {
			got = o.data.MustGet(n)
		} else {
			if resolved == nil {
				resolved = s.db.Data(o.id)
			}
			got = resolved.MustGet(n)
		}
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

// Store implements STORE <record>: creates an occurrence from the record's
// stored fields and connects it into every AUTOMATIC set of which its type
// is the member. For a non-SYSTEM AUTOMATIC set the owner occurrence is
// selected through the set's currency (the "set selection" of DBTG); with
// no currency the store fails with NoCurrentOwner and nothing is stored.
func (s *Session) Store(recType string, rec *value.Record) (RecordID, Status, error) {
	typ := s.db.schema.Record(recType)
	if typ == nil {
		return 0, s.status, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	data := value.NewRecord()
	for _, f := range typ.Fields {
		if f.Virtual != nil {
			continue
		}
		v, _ := rec.Get(f.Name)
		if !v.IsNull() && v.Kind() != f.Kind {
			return 0, s.status, fmt.Errorf("netstore: %s.%s: value kind %v, field kind %v",
				recType, f.Name, v.Kind(), f.Kind)
		}
		data.Set(f.Name, v)
	}
	for _, n := range rec.Names() {
		f := typ.Field(n)
		if f == nil {
			return 0, s.status, fmt.Errorf("netstore: %s has no field %s", recType, n)
		}
		if f.Virtual != nil && !rec.MustGet(n).IsNull() {
			return 0, s.status, fmt.Errorf("netstore: %s.%s is virtual and cannot be stored", recType, n)
		}
	}

	// Resolve the target owner of every AUTOMATIC set before mutating.
	type target struct {
		set   *schema.SetType
		owner RecordID
	}
	var targets []target
	for _, set := range s.db.schema.SetsWithMember(recType) {
		if set.Insertion != schema.Automatic {
			continue
		}
		if set.IsSystem() {
			targets = append(targets, target{set, systemOwner})
			continue
		}
		owner, st := s.ownerFromCurrency(set)
		if st != OK {
			return 0, s.fail(st), nil
		}
		targets = append(targets, target{set, owner})
	}
	for _, tg := range targets {
		if s.db.duplicateInOcc(tg.set, tg.owner, data, -1) {
			return 0, s.fail(DuplicateInSet), nil
		}
	}

	o := &occurrence{
		id:       s.db.nextID,
		typ:      typ,
		data:     data,
		memberOf: make(map[string]RecordID),
	}
	s.db.nextID++
	s.db.recs[o.id] = o
	s.db.byType[recType] = append(s.db.byType[recType], o.id)
	s.db.indexAdd(o)
	for _, tg := range targets {
		s.db.insertOrdered(tg.set, tg.owner, o)
		o.memberOf[tg.set.Name] = tg.owner
	}
	s.setCurrency(o)
	return o.id, s.fail(OK), nil
}

// ownerFromCurrency resolves the owner occurrence a set-level operation
// should use: the current of set, walked up to the owner if the currency
// points at a member occurrence.
func (s *Session) ownerFromCurrency(set *schema.SetType) (RecordID, Status) {
	cur, ok := s.ofSet[set.Name]
	if !ok || !s.db.Exists(cur) {
		return 0, NoCurrentOwner
	}
	o := s.db.recs[cur]
	if o.typ.Name == set.Owner {
		return o.id, OK
	}
	owner, connected := o.memberOf[set.Name]
	if !connected {
		return 0, NoCurrentOwner
	}
	return owner, OK
}

// Position sets the currency indicators directly to an occurrence. It is
// not a DBTG verb; it is the utility entry point the data translator and
// the higher-level DMLs use to address a record they already hold, where
// FIND ANY by field values could hit a different record with equal fields.
func (s *Session) Position(id RecordID) Status {
	o, ok := s.db.recs[id]
	if !ok {
		return s.fail(NoCurrency)
	}
	s.setCurrency(o)
	return s.fail(OK)
}

// FindAny implements FIND ANY <record> [matching the non-null fields of
// match]: the first occurrence of the type, in insertion order, that
// agrees with the match record.
func (s *Session) FindAny(recType string, match *value.Record) (Status, error) {
	return s.findScan(recType, match, 0)
}

// FindDuplicate implements FIND DUPLICATE: the next matching occurrence
// after the current of the record type.
func (s *Session) FindDuplicate(recType string, match *value.Record) (Status, error) {
	cur := s.ofType[recType]
	if cur == 0 || !s.db.Exists(cur) {
		return s.fail(NoCurrency), nil
	}
	return s.findScan(recType, match, cur)
}

func (s *Session) findScan(recType string, match *value.Record, after RecordID) (Status, error) {
	typ := s.db.schema.Record(recType)
	if typ == nil {
		return s.status, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	if err := matchShape(typ, match); err != nil {
		return s.status, err
	}
	// Fast path: when the match's non-null fields are exactly an indexed
	// key combination, probe the hash index. Buckets are in ascending ID
	// order — the byType scan order — so the first bucket entry beyond
	// `after` is precisely the record the scan below would surface.
	if bucket, ok := s.db.probeIndex(typ, match); ok {
		s.db.stats.probes.Add(1)
		pos := sort.Search(len(bucket), func(i int) bool { return bucket[i] > after })
		if pos < len(bucket) {
			s.setCurrency(s.db.recs[bucket[pos]])
			return s.fail(OK), nil
		}
		return s.fail(NotFound), nil
	}
	s.db.stats.scans.Add(1)
	skipping := after != 0
	for _, id := range s.db.byType[recType] {
		if skipping {
			if id == after {
				skipping = false
			}
			continue
		}
		if s.matches(s.db.recs[id], match) {
			s.setCurrency(s.db.recs[id])
			return s.fail(OK), nil
		}
	}
	return s.fail(NotFound), nil
}

// FindInSet implements FIND FIRST/LAST/NEXT/PRIOR <member> WITHIN <set>
// [USING the non-null fields of match]. The set occurrence is selected by
// the set's currency. NEXT and PRIOR move relative to the current of set;
// when the current of set is the owner occurrence, NEXT starts at the
// first member and PRIOR at the last.
func (s *Session) FindInSet(set string, dir Direction, match *value.Record) (Status, error) {
	st := s.db.schema.Set(set)
	if st == nil {
		return s.status, fmt.Errorf("netstore: unknown set %s", set)
	}
	member := s.db.schema.Record(st.Member)
	if err := matchShape(member, match); err != nil {
		return s.status, err
	}
	var owner RecordID
	if st.IsSystem() {
		owner = systemOwner
	} else {
		var ost Status
		owner, ost = s.ownerFromCurrency(st)
		if ost != OK {
			return s.fail(NoCurrency), nil
		}
	}
	lst := s.db.members[set][owner]
	if len(lst) == 0 {
		return s.fail(EndOfSet), nil
	}

	// Establish the scan start and direction.
	idx, step := 0, 1
	switch dir {
	case First:
		idx, step = 0, 1
	case Last:
		idx, step = len(lst)-1, -1
	case Next, Prior:
		step = 1
		if dir == Prior {
			step = -1
		}
		cur, ok := s.ofSet[set]
		if !ok || !s.db.Exists(cur) {
			return s.fail(NoCurrency), nil
		}
		curOcc := s.db.recs[cur]
		if curOcc.typ.Name == st.Owner && !st.IsSystem() {
			// Positioned on the owner: NEXT = first, PRIOR = last.
			if dir == Next {
				idx = 0
			} else {
				idx = len(lst) - 1
			}
		} else {
			pos := -1
			for i, id := range lst {
				if id == cur {
					pos = i
					break
				}
			}
			if pos < 0 {
				return s.fail(NoCurrency), nil
			}
			idx = pos + step
		}
	}
	for ; idx >= 0 && idx < len(lst); idx += step {
		o := s.db.recs[lst[idx]]
		if s.matches(o, match) {
			s.setCurrency(o)
			return s.fail(OK), nil
		}
	}
	return s.fail(EndOfSet), nil
}

// FindOwner implements FIND OWNER WITHIN <set>: moves currency to the
// owner of the set occurrence containing the current of set.
func (s *Session) FindOwner(set string) (Status, error) {
	st := s.db.schema.Set(set)
	if st == nil {
		return s.status, fmt.Errorf("netstore: unknown set %s", set)
	}
	if st.IsSystem() {
		return s.fail(NotMember), nil
	}
	cur, ok := s.ofSet[set]
	if !ok || !s.db.Exists(cur) {
		return s.fail(NoCurrency), nil
	}
	o := s.db.recs[cur]
	if o.typ.Name == st.Owner {
		return s.fail(OK), nil // already on the owner
	}
	owner, connected := o.memberOf[set]
	if !connected {
		return s.fail(NotMember), nil
	}
	s.setCurrency(s.db.recs[owner])
	return s.fail(OK), nil
}

// Get implements GET <record>: delivers the current of run-unit, which
// must be of the stated type, with virtual fields resolved.
func (s *Session) Get(recType string) (*value.Record, Status, error) {
	if s.db.schema.Record(recType) == nil {
		return nil, s.status, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	if s.runUnit == 0 || !s.db.Exists(s.runUnit) {
		return nil, s.fail(NoCurrency), nil
	}
	o := s.db.recs[s.runUnit]
	if o.typ.Name != recType {
		return nil, s.fail(WrongType), nil
	}
	s.status = OK
	return s.db.Data(o.id), OK, nil
}

// Modify implements MODIFY <record>: replaces the stated stored fields of
// the current of run-unit and repositions it in every set occurrence whose
// keys it moved under. A reposition that would duplicate a set key fails
// with DuplicateInSet and leaves the record unchanged.
func (s *Session) Modify(recType string, rec *value.Record) (Status, error) {
	typ := s.db.schema.Record(recType)
	if typ == nil {
		return s.status, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	if s.runUnit == 0 || !s.db.Exists(s.runUnit) {
		return s.fail(NoCurrency), nil
	}
	o := s.db.recs[s.runUnit]
	if o.typ.Name != recType {
		return s.fail(WrongType), nil
	}
	newData := o.data.Clone()
	for _, n := range rec.Names() {
		f := typ.Field(n)
		if f == nil {
			return s.status, fmt.Errorf("netstore: %s has no field %s", recType, n)
		}
		if f.Virtual != nil {
			return s.status, fmt.Errorf("netstore: %s.%s is virtual and cannot be modified", recType, n)
		}
		v := rec.MustGet(n)
		if !v.IsNull() && v.Kind() != f.Kind {
			return s.status, fmt.Errorf("netstore: %s.%s: value kind %v, field kind %v",
				recType, n, v.Kind(), f.Kind)
		}
		newData.Set(n, v)
	}
	// Check duplicates in every set occurrence the record belongs to.
	for setName, owner := range o.memberOf {
		set := s.db.schema.Set(setName)
		if s.db.duplicateInOcc(set, owner, newData, o.id) {
			return s.fail(DuplicateInSet), nil
		}
	}
	// Reposition under the new key values.
	for setName, owner := range o.memberOf {
		s.db.removeMember(setName, owner, o.id)
	}
	s.db.indexRemove(o) // keyed by the old data; re-add under the new below
	o.data = newData
	s.db.indexAdd(o)
	for setName, owner := range o.memberOf {
		s.db.insertOrdered(s.db.schema.Set(setName), owner, o)
	}
	return s.fail(OK), nil
}

// Erase implements ERASE <record> on the current of run-unit: MANDATORY
// members of sets it owns are erased with it, OPTIONAL members are
// disconnected (§3.1's DELETE-with-cascade behaviour).
func (s *Session) Erase(recType string) (Status, error) {
	if s.db.schema.Record(recType) == nil {
		return s.status, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	if s.runUnit == 0 || !s.db.Exists(s.runUnit) {
		return s.fail(NoCurrency), nil
	}
	o := s.db.recs[s.runUnit]
	if o.typ.Name != recType {
		return s.fail(WrongType), nil
	}
	s.db.eraseOccurrence(o)
	s.scrubStale()
	return s.fail(OK), nil
}

// Connect implements CONNECT <record> TO <set>: wires the current of
// run-unit into the set occurrence selected by the set's currency.
func (s *Session) Connect(set string) (Status, error) {
	st := s.db.schema.Set(set)
	if st == nil {
		return s.status, fmt.Errorf("netstore: unknown set %s", set)
	}
	if s.runUnit == 0 || !s.db.Exists(s.runUnit) {
		return s.fail(NoCurrency), nil
	}
	o := s.db.recs[s.runUnit]
	if o.typ.Name != st.Member {
		return s.fail(WrongType), nil
	}
	var owner RecordID
	if st.IsSystem() {
		owner = systemOwner
	} else {
		// The record being connected is also current of the set (currency
		// follows the run-unit), so owner selection must not resolve
		// through it: use the current of the owner's record type.
		cur := s.ofType[st.Owner]
		if cur == 0 || !s.db.Exists(cur) {
			return s.fail(NoCurrentOwner), nil
		}
		owner = cur
	}
	return s.fail(s.db.connect(st, owner, o)), nil
}

// Disconnect implements DISCONNECT <record> FROM <set>. Disconnecting
// from a MANDATORY set is the retention violation of §3.1.
func (s *Session) Disconnect(set string) (Status, error) {
	st := s.db.schema.Set(set)
	if st == nil {
		return s.status, fmt.Errorf("netstore: unknown set %s", set)
	}
	if s.runUnit == 0 || !s.db.Exists(s.runUnit) {
		return s.fail(NoCurrency), nil
	}
	o := s.db.recs[s.runUnit]
	if o.typ.Name != st.Member {
		return s.fail(WrongType), nil
	}
	if _, connected := o.memberOf[set]; !connected {
		return s.fail(NotMember), nil
	}
	if st.Retention == schema.Mandatory {
		return s.fail(Retention), nil
	}
	s.db.disconnect(set, o)
	return s.fail(OK), nil
}
