// Package netstore is the CODASYL DBTG network engine: record occurrences
// connected into owner-coupled set occurrences, navigated by a run-unit
// holding currency indicators, through the DML verbs the paper's programs
// use (FIND, GET, STORE, ERASE, MODIFY, CONNECT, DISCONNECT).
//
// The engine exposes DB-STATUS codes rather than hiding outcomes in
// errors, because §3.2's status-code dependence hazard is about programs
// branching on those codes: the program layer must see exactly what a
// 1979 program saw.
package netstore

// Status is the DB-STATUS register value after a DML operation. The
// numeric codes follow the DBTG convention of a major code per statement
// class; programs (and the §3.2 hazard analysis) branch on them.
type Status int

// DB-STATUS values.
const (
	OK             Status = 0      // operation succeeded
	EndOfSet       Status = 307100 // FIND NEXT/PRIOR exhausted the set occurrence
	NotFound       Status = 326500 // FIND ANY/DUPLICATE found no matching record
	NoCurrency     Status = 306300 // operation needs a current record and none is set
	NoCurrentOwner Status = 306100 // STORE/CONNECT found no current owner for a set
	DuplicateInSet Status = 321205 // CONNECT/STORE would duplicate a set key in an occurrence
	AlreadyMember  Status = 330500 // CONNECT target is already a member of the set
	NotMember      Status = 322500 // DISCONNECT/FIND OWNER target is not a member
	Retention      Status = 323100 // DISCONNECT from a MANDATORY set
	WrongType      Status = 308200 // currency does not match the statement's record type
)

// String renders the status the way conversion reports spell it.
func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case EndOfSet:
		return "END-OF-SET"
	case NotFound:
		return "NOT-FOUND"
	case NoCurrency:
		return "NO-CURRENCY"
	case NoCurrentOwner:
		return "NO-CURRENT-OWNER"
	case DuplicateInSet:
		return "DUPLICATE-IN-SET"
	case AlreadyMember:
		return "ALREADY-MEMBER"
	case NotMember:
		return "NOT-MEMBER"
	case Retention:
		return "RETENTION-VIOLATION"
	case WrongType:
		return "WRONG-TYPE"
	}
	return "UNKNOWN-STATUS"
}
