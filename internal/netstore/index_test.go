package netstore

import (
	"fmt"
	"math/rand"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// randomMatch produces a match record across the shapes the FIND fast
// path must handle: indexed single-key probes, non-indexed multi-field
// shapes, virtual-field matches (scan only), and nil (first of type).
func randomMatch(rng *rand.Rand, recType string) *value.Record {
	if recType == "DIV" {
		switch rng.Intn(3) {
		case 0:
			return value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%03d", rng.Intn(30)))
		case 1:
			return value.FromPairs("DIV-LOC", fmt.Sprintf("L%d", rng.Intn(5)))
		default:
			return nil
		}
	}
	switch rng.Intn(5) {
	case 0:
		return value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000)))
	case 1:
		return value.FromPairs("DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(4)))
	case 2:
		return value.FromPairs(
			"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000)),
			"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(4)))
	case 3: // virtual field: must fall back to the scan
		return value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%03d", rng.Intn(30)))
	default:
		return nil
	}
}

// applyRandomOp drives one random mutation or navigation against the
// session, mirroring the invariants-test workload.
func applyRandomOp(rng *rand.Rand, db *DB, s *Session, divs *int) {
	switch rng.Intn(10) {
	case 0, 1:
		s.Store("DIV", value.FromPairs(
			"DIV-NAME", fmt.Sprintf("DIV-%03d", *divs),
			"DIV-LOC", fmt.Sprintf("L%d", rng.Intn(5))))
		*divs++
	case 2, 3, 4:
		if *divs == 0 {
			return
		}
		s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%03d", rng.Intn(*divs))))
		s.Store("EMP", value.FromPairs(
			"EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000)),
			"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(4)),
			"AGE", 20+rng.Intn(40)))
	case 5:
		ids := db.AllOf("EMP")
		if len(ids) == 0 {
			return
		}
		s.Position(ids[rng.Intn(len(ids))])
		s.Modify("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", rng.Intn(2000))))
	case 6:
		ids := db.AllOf("EMP")
		if len(ids) == 0 {
			return
		}
		s.Position(ids[rng.Intn(len(ids))])
		s.Modify("EMP", value.FromPairs("AGE", value.Of(int64(20+rng.Intn(40)))))
	case 7:
		ids := db.AllOf("EMP")
		if len(ids) == 0 {
			return
		}
		s.Position(ids[rng.Intn(len(ids))])
		s.Erase("EMP")
	case 8:
		ids := db.AllOf("DIV")
		if len(ids) == 0 {
			return
		}
		s.Position(ids[rng.Intn(len(ids))])
		s.Erase("DIV")
	case 9:
		s.FindInSet("ALL-DIV", First, nil)
		s.FindInSet("DIV-EMP", Next, nil)
	}
}

// TestIndexedFindEquivalentToScan is the index ≡ scan property test: the
// same seeded random workload runs against an indexed database and an
// identical database with indexing disabled, and every FIND must agree
// on status and currency at every step.
func TestIndexedFindEquivalentToScan(t *testing.T) {
	for _, seed := range []int64{21, 22, 23, 24, 25} {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewDB(schema.CompanyV1())
		plain := NewDB(schema.CompanyV1())
		plain.SetIndexing(false)
		si, sp := NewSession(indexed), NewSession(plain)
		divs, divsP := 0, 0
		for op := 0; op < 500; op++ {
			// Mutations use an independent rng stream position per DB?
			// No: replay the same ops on both by splitting the stream.
			opSeed := rng.Int63()
			applyRandomOp(rand.New(rand.NewSource(opSeed)), indexed, si, &divs)
			applyRandomOp(rand.New(rand.NewSource(opSeed)), plain, sp, &divsP)

			recType := "EMP"
			if rng.Intn(3) == 0 {
				recType = "DIV"
			}
			match := randomMatch(rng, recType)
			sti, erri := si.FindAny(recType, match)
			stp, errp := sp.FindAny(recType, match)
			if (erri == nil) != (errp == nil) || sti != stp || si.Current() != sp.Current() {
				t.Fatalf("seed %d op %d: FindAny %s %v diverged: indexed (%v,%d,%v) scan (%v,%d,%v)",
					seed, op, recType, match, sti, si.Current(), erri, stp, sp.Current(), errp)
			}
			// Walk the duplicate chain to exhaustion on both paths.
			for sti == OK {
				sti, erri = si.FindDuplicate(recType, match)
				stp, errp = sp.FindDuplicate(recType, match)
				if (erri == nil) != (errp == nil) || sti != stp || si.Current() != sp.Current() {
					t.Fatalf("seed %d op %d: FindDuplicate %s %v diverged: indexed (%v,%d) scan (%v,%d)",
						seed, op, recType, match, sti, si.Current(), stp, sp.Current())
				}
			}
		}
		probes, _ := indexed.IndexStatsOf().Snapshot()
		if probes == 0 {
			t.Fatalf("seed %d: indexed run never probed an index", seed)
		}
		pProbes, _ := plain.IndexStatsOf().Snapshot()
		if pProbes != 0 {
			t.Fatalf("seed %d: unindexed run recorded %d probes", seed, pProbes)
		}
	}
}

// TestProbeEligibility pins down which match shapes may use the index:
// exactly an indexed key combination of stored fields, nothing else.
func TestProbeEligibility(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "D1", "DIV-LOC", "NYC"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "SMITH", "DEPT-NAME", "SALES", "AGE", 30))

	find := func(recType string, match *value.Record) {
		t.Helper()
		if st, err := s.FindAny(recType, match); err != nil || st != OK {
			t.Fatalf("FindAny %s %v: (%v, %v)", recType, match, st, err)
		}
	}
	delta := func(f func()) (probes, scans int64) {
		p0, s0 := db.stats.Snapshot()
		f()
		p1, s1 := db.stats.Snapshot()
		return p1 - p0, s1 - s0
	}

	if p, sc := delta(func() { find("EMP", value.FromPairs("EMP-NAME", "SMITH")) }); p != 1 || sc != 0 {
		t.Fatalf("indexed key shape: probes=%d scans=%d, want 1/0", p, sc)
	}
	if p, sc := delta(func() { find("EMP", value.FromPairs("DEPT-NAME", "SALES")) }); p != 0 || sc != 1 {
		t.Fatalf("non-indexed shape: probes=%d scans=%d, want 0/1", p, sc)
	}
	// EMP.DIV-NAME is virtual (resolved via DIV-EMP ownership): scan only.
	if p, sc := delta(func() { find("EMP", value.FromPairs("DIV-NAME", "D1")) }); p != 0 || sc != 1 {
		t.Fatalf("virtual field shape: probes=%d scans=%d, want 0/1", p, sc)
	}
	// A match with the indexed field null alongside a non-null field is
	// not the indexed combination.
	if p, sc := delta(func() {
		find("EMP", value.FromPairs("EMP-NAME", nil, "DEPT-NAME", "SALES"))
	}); p != 0 || sc != 1 {
		t.Fatalf("null-key shape: probes=%d scans=%d, want 0/1", p, sc)
	}
	// nil match (first of type) stays on the scan path.
	if p, sc := delta(func() { find("EMP", nil) }); p != 0 || sc != 1 {
		t.Fatalf("nil match: probes=%d scans=%d, want 0/1", p, sc)
	}
}

// TestProbeNumericKeyNormalization verifies the probe honours Value
// equality across numeric kinds: an integral Float match must hit the
// bucket of an Int-stored key, exactly as Equal-based matching would.
func TestProbeNumericKeyNormalization(t *testing.T) {
	sch := &schema.Network{
		Name: "NUM",
		Records: []*schema.RecordType{
			{Name: "ITEM", Fields: []schema.Field{
				{Name: "CODE", Kind: value.Int},
				{Name: "LABEL", Kind: value.String},
			}},
		},
		Sets: []*schema.SetType{
			{Name: "ALL-ITEM", Owner: schema.SystemOwner, Member: "ITEM", Keys: []string{"CODE"},
				Insertion: schema.Automatic, Retention: schema.Mandatory},
		},
	}
	db := NewDB(sch)
	s := NewSession(db)
	if _, st, err := s.Store("ITEM", value.FromPairs("CODE", 7, "LABEL", "seven")); err != nil || st != OK {
		t.Fatalf("store: (%v, %v)", st, err)
	}
	st, err := s.FindAny("ITEM", value.FromPairs("CODE", value.F(7.0)))
	if err != nil || st != OK {
		t.Fatalf("FindAny CODE=7.0: (%v, %v)", st, err)
	}
	if probes, _ := db.stats.Snapshot(); probes != 1 {
		t.Fatalf("float-for-int probe did not use the index (probes=%d)", probes)
	}
}

// TestCloneSharesIndexStats pins the aggregation contract: probes on a
// clone (how verification runs execute) count toward the original.
func TestCloneSharesIndexStats(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "D1", "DIV-LOC", "X"))
	clone := db.Clone()
	cs := NewSession(clone)
	if st, err := cs.FindAny("DIV", value.FromPairs("DIV-NAME", "D1")); err != nil || st != OK {
		t.Fatalf("clone FindAny: (%v, %v)", st, err)
	}
	if probes, _ := db.IndexStatsOf().Snapshot(); probes != 1 {
		t.Fatalf("clone probe not visible on original stats (probes=%d)", probes)
	}
}

// TestEraseFromMiddleOfLargeSetOccurrence is the regression test for the
// splice paths: deleting from the middle of a member list or byType list
// must clear the vacated tail slot so backing arrays never alias a stale
// RecordID.
func TestEraseFromMiddleOfLargeSetOccurrence(t *testing.T) {
	db := NewDB(schema.CompanyV1())
	s := NewSession(db)
	if _, st, err := s.Store("DIV", value.FromPairs("DIV-NAME", "D1", "DIV-LOC", "X")); err != nil || st != OK {
		t.Fatalf("store DIV: (%v, %v)", st, err)
	}
	div := s.Current()
	const n = 100
	emps := make([]RecordID, 0, n)
	for i := 0; i < n; i++ {
		id, st, err := s.Store("EMP", value.FromPairs(
			"EMP-NAME", fmt.Sprintf("E-%03d", i), "DEPT-NAME", "D", "AGE", 30))
		if err != nil || st != OK {
			t.Fatalf("store EMP %d: (%v, %v)", i, st, err)
		}
		emps = append(emps, id)
	}

	// Capture the live backing arrays before the mid-list erase.
	memberList := db.members["DIV-EMP"][div]
	typeList := db.byType["EMP"]
	if len(memberList) != n || len(typeList) != n {
		t.Fatalf("setup: %d members, %d byType", len(memberList), len(typeList))
	}

	s.Position(emps[n/2])
	if st, err := s.Erase("EMP"); err != nil || st != OK {
		t.Fatalf("erase: (%v, %v)", st, err)
	}

	if got := len(db.members["DIV-EMP"][div]); got != n-1 {
		t.Fatalf("member list length %d after erase, want %d", got, n-1)
	}
	// The vacated tail slots of the original backing arrays must be
	// cleared: a stale ID there aliases the next append.
	if memberList[n-1] != 0 {
		t.Fatalf("member list tail still holds stale ID %d", memberList[n-1])
	}
	if typeList[n-1] != 0 {
		t.Fatalf("byType tail still holds stale ID %d", typeList[n-1])
	}
	// The erased employee is gone from scan and probe alike.
	if st, _ := s.FindAny("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%03d", n/2))); st != NotFound {
		t.Fatalf("erased employee still findable: %v", st)
	}
	checkInvariants(t, db)
}
