package netstore

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// IndexStats counts exact-key index probes versus full scans across the
// FIND fast path. The counters are atomic and the pointer is shared by
// Clone, so verification runs on cloned databases aggregate into the
// same totals as the database they were cloned from.
type IndexStats struct {
	probes atomic.Int64
	scans  atomic.Int64
}

// Snapshot returns the probe and scan totals observed so far.
func (s *IndexStats) Snapshot() (probes, scans int64) {
	if s == nil {
		return 0, 0
	}
	return s.probes.Load(), s.scans.Load()
}

// typeIndex is one hash index over a record type: a composite key built
// from the stored fields named in fields maps to the occurrence IDs
// holding those exact values. Buckets are kept in ascending ID order,
// which is exactly the byType scan order (IDs are monotonic and never
// reused, and splices preserve relative order), so a probe answers
// FindAny (first bucket entry) and FindDuplicate (first bucket entry
// after the currency) with the same record a scan would surface.
type typeIndex struct {
	fields  []string // stored key fields, in set-key declaration order
	buckets map[string][]RecordID
}

func (ix *typeIndex) keyOf(data *value.Record) string { return data.KeyOf(ix.fields) }

func (ix *typeIndex) add(id RecordID, data *value.Record) {
	k := ix.keyOf(data)
	lst := ix.buckets[k]
	if n := len(lst); n == 0 || lst[n-1] < id {
		ix.buckets[k] = append(lst, id)
		return
	}
	pos := sort.Search(len(lst), func(i int) bool { return lst[i] >= id })
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = id
	ix.buckets[k] = lst
}

func (ix *typeIndex) remove(id RecordID, data *value.Record) {
	k := ix.keyOf(data)
	lst := ix.buckets[k]
	pos := sort.Search(len(lst), func(i int) bool { return lst[i] >= id })
	if pos >= len(lst) || lst[pos] != id {
		return
	}
	copy(lst[pos:], lst[pos+1:])
	lst[len(lst)-1] = 0 // clear the stale tail so backing arrays don't alias
	lst = lst[:len(lst)-1]
	if len(lst) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = lst
	}
}

// buildIndexes derives the index set from the schema: one index per
// distinct key-field combination declared by a set type over its member
// record (the CALC/key fields of the 1971 DBTG report). Combinations
// containing virtual fields are skipped — virtuals are not stored, so a
// probe could not be maintained incrementally from occurrence data.
func buildIndexes(s *schema.Network) map[string][]*typeIndex {
	idx := make(map[string][]*typeIndex)
	for _, set := range s.Sets {
		if len(set.Keys) == 0 {
			continue
		}
		member := s.Record(set.Member)
		if member == nil {
			continue
		}
		stored := true
		for _, k := range set.Keys {
			f := member.Field(k)
			if f == nil || f.Virtual != nil {
				stored = false
				break
			}
		}
		if !stored {
			continue
		}
		if indexFor(idx[set.Member], set.Keys) != nil {
			continue // an identical field combination is already indexed
		}
		idx[set.Member] = append(idx[set.Member], &typeIndex{
			fields:  append([]string(nil), set.Keys...),
			buckets: make(map[string][]RecordID),
		})
	}
	return idx
}

// indexFor returns the index over exactly the given field set (order
// insensitive), or nil.
func indexFor(idxs []*typeIndex, fields []string) *typeIndex {
	for _, ix := range idxs {
		if len(ix.fields) != len(fields) {
			continue
		}
		all := true
		for _, f := range fields {
			found := false
			for _, g := range ix.fields {
				if f == g {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			return ix
		}
	}
	return nil
}

// indexAdd registers a freshly stored occurrence with every index over
// its type. Callers invoke it after o.data is final.
func (db *DB) indexAdd(o *occurrence) {
	for _, ix := range db.indexes[o.typ.Name] {
		ix.add(o.id, o.data)
	}
}

// indexRemove unregisters an occurrence, keyed by its current stored
// data. Callers invoke it before mutating or deleting o.data.
func (db *DB) indexRemove(o *occurrence) {
	for _, ix := range db.indexes[o.typ.Name] {
		ix.remove(o.id, o.data)
	}
}

// probeIndex answers a FIND match by exact-key lookup when the match's
// non-null fields coincide exactly with an indexed field combination.
// The second result reports whether a probe was possible; when false the
// caller must fall back to the scan. The returned slice is the live
// bucket in ascending ID order and must not be retained or mutated.
func (db *DB) probeIndex(typ *schema.RecordType, match *value.Record) ([]RecordID, bool) {
	idxs := db.indexes[typ.Name]
	if len(idxs) == 0 || match == nil {
		return nil, false
	}
	nonNull := 0
	for _, n := range match.Names() {
		if match.MustGet(n).IsNull() {
			continue
		}
		f := typ.Field(n)
		if f == nil || f.Virtual != nil {
			// Virtual fields resolve through ownership, not stored
			// data; only the scan can evaluate such a match.
			return nil, false
		}
		nonNull++
	}
	if nonNull == 0 {
		return nil, false // an empty match means "first of type": scan is O(1)
	}
	for _, ix := range idxs {
		if len(ix.fields) != nonNull {
			continue
		}
		covered := true
		for _, f := range ix.fields {
			if v, ok := match.Get(f); !ok || v.IsNull() {
				covered = false
				break
			}
		}
		if covered {
			return ix.buckets[match.KeyOf(ix.fields)], true
		}
	}
	return nil, false
}

// IndexStatsOf returns the database's shared probe/scan counters.
func (db *DB) IndexStatsOf() *IndexStats { return db.stats }

// IndexDump renders every index deterministically — record type, key
// fields, then each bucket's key and ID list in sorted order — so
// tests can compare index contents byte for byte across build paths
// (incremental maintenance vs bulk load).
func (db *DB) IndexDump() string {
	var b strings.Builder
	types := make([]string, 0, len(db.indexes))
	for t := range db.indexes {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		for _, ix := range db.indexes[t] {
			fmt.Fprintf(&b, "index %s(%s)\n", t, strings.Join(ix.fields, ","))
			keys := make([]string, 0, len(ix.buckets))
			for k := range ix.buckets {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %q -> %v\n", k, ix.buckets[k])
			}
		}
	}
	return b.String()
}

// SetIndexing enables or disables the keyed FIND fast path. Disabling
// drops the indexes (every FIND scans, as before the fast path existed);
// enabling rebuilds them from the live occurrences. Behaviour is
// identical either way — only the access path changes.
func (db *DB) SetIndexing(enabled bool) {
	if !enabled {
		db.indexes = nil
		return
	}
	db.indexes = buildIndexes(db.schema)
	for _, t := range db.schema.Records {
		for _, id := range db.byType[t.Name] {
			db.indexAdd(db.recs[id])
		}
	}
}
