package netstore

import (
	"fmt"
	"sort"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// RecordID identifies a record occurrence. IDs are never reused, so a
// stale currency indicator can be detected after an ERASE.
type RecordID int64

// systemOwner is the pseudo-owner of SYSTEM (singular) set occurrences.
const systemOwner RecordID = 0

type occurrence struct {
	id   RecordID
	typ  *schema.RecordType
	data *value.Record // stored fields only
	// memberOf maps set type name to the owner occurrence of the set
	// occurrence this record is connected into (systemOwner for SYSTEM
	// sets). Absent key = not connected.
	memberOf map[string]RecordID
}

// DB is an in-memory CODASYL database instance. Navigation state lives in
// Session, not here, so several run-units can share one database.
type DB struct {
	schema *schema.Network
	recs   map[RecordID]*occurrence
	byType map[string][]RecordID // insertion-ordered occurrences per record type
	// members maps set type -> owner occurrence -> ordered member IDs.
	members map[string]map[RecordID][]RecordID
	nextID  RecordID
	// indexes maps record type -> hash indexes over its schema key
	// fields, maintained incrementally by every mutation path. nil when
	// indexing is disabled (SetIndexing(false)).
	indexes map[string][]*typeIndex
	stats   *IndexStats // shared with clones; see IndexStats
}

// NewDB creates an empty database for the schema. The schema must be
// valid; NewDB panics otherwise.
func NewDB(s *schema.Network) *DB {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("netstore: invalid schema: %v", err))
	}
	db := &DB{
		schema:  s,
		recs:    make(map[RecordID]*occurrence),
		byType:  make(map[string][]RecordID),
		members: make(map[string]map[RecordID][]RecordID),
		nextID:  1,
		indexes: buildIndexes(s),
		stats:   &IndexStats{},
	}
	for _, t := range s.Sets {
		db.members[t.Name] = make(map[RecordID][]RecordID)
	}
	return db
}

// Schema returns the database's schema.
func (db *DB) Schema() *schema.Network { return db.schema }

// Count returns the number of occurrences of the record type.
func (db *DB) Count(recType string) int { return len(db.byType[recType]) }

// Len returns the total number of record occurrences in the database.
func (db *DB) Len() int { return len(db.recs) }

// IDBound returns the exclusive upper bound of assigned record IDs:
// every live occurrence's ID is in [1, IDBound). Dense per-source-ID
// tables (the data translator's ID map) size themselves with it.
func (db *DB) IDBound() RecordID { return db.nextID }

// AllOf returns the occurrence IDs of a record type in insertion order.
// The returned slice is a copy.
func (db *DB) AllOf(recType string) []RecordID {
	return append([]RecordID(nil), db.byType[recType]...)
}

// EachOf visits the occurrence IDs of a record type in insertion order,
// stopping early when fn returns false. It is the allocation-free
// counterpart of AllOf: the database must not be mutated during the
// visit (use AllOf to take a snapshot when the loop body stores,
// erases, or reconnects records).
func (db *DB) EachOf(recType string, fn func(RecordID) bool) {
	for _, id := range db.byType[recType] {
		if !fn(id) {
			return
		}
	}
}

// EachMember visits the ordered member IDs of the set occurrence owned
// by owner, stopping early when fn returns false. Allocation-free
// counterpart of Members; the same no-mutation-during-visit contract as
// EachOf applies.
func (db *DB) EachMember(set string, owner RecordID, fn func(RecordID) bool) {
	occ, ok := db.members[set]
	if !ok {
		return
	}
	for _, id := range occ[owner] {
		if !fn(id) {
			return
		}
	}
}

// TypeOf returns the record type name of an occurrence, or "" if the ID
// is stale.
func (db *DB) TypeOf(id RecordID) string {
	if o, ok := db.recs[id]; ok {
		return o.typ.Name
	}
	return ""
}

// Exists reports whether the occurrence still exists.
func (db *DB) Exists(id RecordID) bool {
	_, ok := db.recs[id]
	return ok
}

// StoredData returns a copy of the occurrence's stored fields (no
// virtuals), or nil for a stale ID.
func (db *DB) StoredData(id RecordID) *value.Record {
	o, ok := db.recs[id]
	if !ok {
		return nil
	}
	return o.data.Clone()
}

// StoredDataInto copies the occurrence's stored fields into out
// (resetting it first), the allocation-free counterpart of StoredData
// for loops that reuse one staging buffer. It reports whether the
// occurrence exists; out is left reset when it does not.
func (db *DB) StoredDataInto(id RecordID, out *value.Record) bool {
	o, ok := db.recs[id]
	if !ok {
		out.Reset()
		return false
	}
	out.CopyFrom(o.data)
	return true
}

// Data returns a copy of the occurrence's record with virtual fields
// resolved through set ownership (recursively, so a virtual sourced from
// an owner's virtual — the Figure 4.4 EMP.DIV-NAME — resolves through two
// levels). Unresolvable virtuals (record not connected) surface as null.
func (db *DB) Data(id RecordID) *value.Record {
	o, ok := db.recs[id]
	if !ok {
		return nil
	}
	out := value.NewRecord()
	for _, f := range o.typ.Fields {
		if f.Virtual == nil {
			out.Set(f.Name, o.data.MustGet(f.Name))
		} else {
			out.Set(f.Name, db.resolveVirtual(o, &f))
		}
	}
	return out
}

// DataInto resolves the occurrence's record into out (resetting it
// first), the allocation-free counterpart of Data for loops that reuse
// one buffer. It reports whether the occurrence exists; out is left
// reset when it does not.
func (db *DB) DataInto(id RecordID, out *value.Record) bool {
	o, ok := db.recs[id]
	out.Reset()
	if !ok {
		return false
	}
	for _, f := range o.typ.Fields {
		if f.Virtual == nil {
			out.Set(f.Name, o.data.MustGet(f.Name))
		} else {
			out.Set(f.Name, db.resolveVirtual(o, &f))
		}
	}
	return true
}

func (db *DB) resolveVirtual(o *occurrence, f *schema.Field) value.Value {
	ownerID, connected := o.memberOf[f.Virtual.ViaSet]
	if !connected || ownerID == systemOwner {
		return value.NullValue()
	}
	owner, ok := db.recs[ownerID]
	if !ok {
		return value.NullValue()
	}
	of := owner.typ.Field(f.Virtual.Using)
	if of == nil {
		return value.NullValue()
	}
	if of.Virtual != nil {
		return db.resolveVirtual(owner, of)
	}
	return owner.data.MustGet(of.Name)
}

// Members returns the ordered member IDs of the set occurrence owned by
// owner (systemOwner semantics: pass OwnerSystem). The slice is a copy.
func (db *DB) Members(set string, owner RecordID) []RecordID {
	occ, ok := db.members[set]
	if !ok {
		return nil
	}
	return append([]RecordID(nil), occ[owner]...)
}

// SystemMembers returns the members of a SYSTEM set's singular occurrence.
func (db *DB) SystemMembers(set string) []RecordID {
	return db.Members(set, systemOwner)
}

// OwnerOf returns the owner occurrence of the set occurrence containing
// id, and whether id is connected into the set at all. For SYSTEM sets
// the owner is systemOwner and the second result is still true.
func (db *DB) OwnerOf(set string, id RecordID) (RecordID, bool) {
	o, ok := db.recs[id]
	if !ok {
		return 0, false
	}
	owner, connected := o.memberOf[set]
	return owner, connected
}

// insertOrdered connects member into the occurrence list keeping the set
// ordering: ascending by set keys, insertion order among equals (and for
// keyless sets).
func (db *DB) insertOrdered(set *schema.SetType, owner RecordID, member *occurrence) {
	lst := db.members[set.Name][owner]
	if len(set.Keys) == 0 {
		db.members[set.Name][owner] = append(lst, member.id)
		return
	}
	pos := sort.Search(len(lst), func(i int) bool {
		other := db.recs[lst[i]]
		return value.CompareBy(other.data, member.data, set.Keys) > 0
	})
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = member.id
	db.members[set.Name][owner] = lst
}

func (db *DB) removeMember(set string, owner RecordID, id RecordID) {
	lst := db.members[set][owner]
	for i, m := range lst {
		if m == id {
			copy(lst[i:], lst[i+1:])
			lst[len(lst)-1] = 0 // clear the tail so the backing array can't alias
			db.members[set][owner] = lst[:len(lst)-1]
			return
		}
	}
}

// duplicateInOcc reports whether the set occurrence owned by owner already
// holds a member with the same set-key values ("duplicates are not allowed
// within a set occurrence", §4.2).
func (db *DB) duplicateInOcc(set *schema.SetType, owner RecordID, data *value.Record, exclude RecordID) bool {
	if len(set.Keys) == 0 {
		return false
	}
	for _, m := range db.members[set.Name][owner] {
		if m == exclude {
			continue
		}
		if value.CompareBy(db.recs[m].data, data, set.Keys) == 0 {
			return true
		}
	}
	return false
}

// connect wires member into set under owner, preserving ordering, after
// the duplicate check. Callers have validated set membership types.
func (db *DB) connect(set *schema.SetType, owner RecordID, member *occurrence) Status {
	if _, already := member.memberOf[set.Name]; already {
		return AlreadyMember
	}
	if db.duplicateInOcc(set, owner, member.data, -1) {
		return DuplicateInSet
	}
	db.insertOrdered(set, owner, member)
	member.memberOf[set.Name] = owner
	return OK
}

// disconnect unwires member from the set; retention is the caller's
// concern (ERASE bypasses it, DISCONNECT enforces it).
func (db *DB) disconnect(set string, member *occurrence) {
	owner, connected := member.memberOf[set]
	if !connected {
		return
	}
	db.removeMember(set, owner, member.id)
	delete(member.memberOf, set)
}

// eraseOccurrence removes the record and recursively applies retention
// semantics to sets it owns: MANDATORY members are erased with it (the
// §3.1 cascade that "violates the system's integrity constraints" when
// applied carelessly), OPTIONAL members are disconnected.
func (db *DB) eraseOccurrence(o *occurrence) {
	for _, set := range db.schema.SetsOwnedBy(o.typ.Name) {
		memberIDs := append([]RecordID(nil), db.members[set.Name][o.id]...)
		for _, mid := range memberIDs {
			m, ok := db.recs[mid]
			if !ok {
				continue
			}
			if set.Retention == schema.Mandatory {
				db.eraseOccurrence(m)
			} else {
				db.disconnect(set.Name, m)
			}
		}
		delete(db.members[set.Name], o.id)
	}
	for set := range o.memberOf {
		db.disconnect(set, o)
	}
	lst := db.byType[o.typ.Name]
	for i, id := range lst {
		if id == o.id {
			copy(lst[i:], lst[i+1:])
			lst[len(lst)-1] = 0 // clear the tail so the backing array can't alias
			db.byType[o.typ.Name] = lst[:len(lst)-1]
			break
		}
	}
	db.indexRemove(o)
	delete(db.recs, o.id)
}

// OwnerSystem is the owner to pass to StoreWith for SYSTEM set
// occurrences.
const OwnerSystem = systemOwner

// StoreWith inserts a record with explicit set memberships (set name →
// owner occurrence ID; OwnerSystem for SYSTEM sets), bypassing run-unit
// currency. It is the entry point for the data translator, the bridge
// reconstructor, and the DML emulator, which place records by mapping
// description rather than by navigation. Insertion modes are not
// consulted: the memberships map says exactly which sets to connect.
func (db *DB) StoreWith(recType string, rec *value.Record, memberships map[string]RecordID) (RecordID, error) {
	typ := db.schema.Record(recType)
	if typ == nil {
		return 0, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	data := value.NewRecord()
	for _, f := range typ.Fields {
		if f.Virtual != nil {
			continue
		}
		v, _ := rec.Get(f.Name)
		if !v.IsNull() && v.Kind() != f.Kind {
			return 0, fmt.Errorf("netstore: %s.%s: value kind %v, field kind %v",
				recType, f.Name, v.Kind(), f.Kind)
		}
		data.Set(f.Name, v)
	}
	type target struct {
		set   *schema.SetType
		owner RecordID
	}
	var targets []target
	for setName, owner := range memberships {
		set := db.schema.Set(setName)
		if set == nil {
			return 0, fmt.Errorf("netstore: unknown set %s", setName)
		}
		if set.Member != recType {
			return 0, fmt.Errorf("netstore: %s is not the member type of set %s", recType, setName)
		}
		if set.IsSystem() {
			if owner != OwnerSystem {
				return 0, fmt.Errorf("netstore: set %s is SYSTEM-owned", setName)
			}
		} else {
			o, ok := db.recs[owner]
			if !ok {
				return 0, fmt.Errorf("netstore: set %s: owner %d does not exist", setName, owner)
			}
			if o.typ.Name != set.Owner {
				return 0, fmt.Errorf("netstore: set %s: owner %d is a %s, not a %s",
					setName, owner, o.typ.Name, set.Owner)
			}
		}
		if db.duplicateInOcc(set, owner, data, -1) {
			return 0, fmt.Errorf("netstore: set %s: duplicate set key in occurrence", setName)
		}
		targets = append(targets, target{set, owner})
	}
	o := &occurrence{
		id:       db.nextID,
		typ:      typ,
		data:     data,
		memberOf: make(map[string]RecordID),
	}
	db.nextID++
	db.recs[o.id] = o
	db.byType[recType] = append(db.byType[recType], o.id)
	db.indexAdd(o)
	for _, tg := range targets {
		db.insertOrdered(tg.set, tg.owner, o)
		o.memberOf[tg.set.Name] = tg.owner
	}
	return o.id, nil
}

// Clone returns an independent deep copy of the database, for the
// restructurer and the bridge baseline. Record IDs are preserved.
func (db *DB) Clone() *DB {
	c := NewDB(db.schema.Clone())
	c.nextID = db.nextID
	for id, o := range db.recs {
		c.recs[id] = &occurrence{
			id:       o.id,
			typ:      c.schema.Record(o.typ.Name),
			data:     o.data.Clone(),
			memberOf: make(map[string]RecordID, len(o.memberOf)),
		}
		for s, owner := range o.memberOf {
			c.recs[id].memberOf[s] = owner
		}
	}
	for t, ids := range db.byType {
		c.byType[t] = append([]RecordID(nil), ids...)
	}
	for s, occs := range db.members {
		for owner, lst := range occs {
			c.members[s][owner] = append([]RecordID(nil), lst...)
		}
	}
	// Rebuild rather than deep-copy the indexes (same result, simpler),
	// and share the stats counters so probes on clones — the verify
	// runs execute on clones — aggregate with the original's.
	c.SetIndexing(db.indexes != nil)
	c.stats = db.stats
	return c
}
