package netstore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// BulkMembership is one resolved set connection for a bulk-loaded
// record: the destination set type (already looked up in the schema)
// and the owner occurrence to connect under (OwnerSystem for SYSTEM
// sets).
type BulkMembership struct {
	Set   *schema.SetType
	Owner RecordID
}

// bulkKey identifies one set-key composite within a set occurrence, the
// hash form of the duplicate check StoreWith performs by scanning.
type bulkKey struct {
	set   string
	owner RecordID
	key   string
}

// BulkLoader is the batched insert path of the data translator's merge
// phase. It produces a database indistinguishable from one built by the
// same sequence of StoreWith calls — same record IDs, same set
// orderings, same index contents, same error messages in the same
// order — while deferring the per-record costs that dominate StoreWith:
//
//   - index maintenance is postponed; Close rebuilds each touched
//     type's indexes once, in ascending-ID order (identical buckets,
//     since incremental adds see monotonic IDs too);
//   - keyed-set member ordering is postponed: members append in
//     insertion order and Close runs one stable sort per occurrence
//     list, which reproduces insertOrdered's ascending-keys,
//     insertion-order-among-equals placement;
//   - the §4.2 duplicate-key check is a hash probe on the composite
//     key form instead of a CompareBy scan (equivalent, because stored
//     values of one field are kind-checked to a single kind and
//     value.Key normalizes integral floats);
//   - occurrences are slab-allocated and the record table is pre-sized.
//
// Between NewBulkLoader and Close the database must not be read or
// mutated through any other path. A loader is single-use: discard it
// after Close.
type BulkLoader struct {
	db      *DB
	slab    []occurrence
	dup     map[bulkKey]struct{}
	touched map[string]struct{}
	pending []bulkKey
	loaded  int
}

const bulkSlabSize = 512

// NewBulkLoader starts a bulk load expecting about `expected` records
// (a sizing hint; zero is fine).
func (db *DB) NewBulkLoader(expected int) *BulkLoader {
	if expected > 0 && len(db.recs) == 0 {
		db.recs = make(map[RecordID]*occurrence, expected)
	}
	b := &BulkLoader{
		db:      db,
		dup:     make(map[bulkKey]struct{}, expected),
		touched: make(map[string]struct{}),
	}
	// Seed the duplicate table with the pre-existing members of keyed
	// sets, so loads into a non-empty database keep StoreWith's checks.
	for _, set := range db.schema.Sets {
		if len(set.Keys) == 0 {
			continue
		}
		for owner, lst := range db.members[set.Name] {
			for _, id := range lst {
				b.dup[bulkKey{set.Name, owner, db.recs[id].data.KeyOf(set.Keys)}] = struct{}{}
			}
		}
	}
	return b
}

// Loaded returns how many records this loader has inserted.
func (b *BulkLoader) Loaded() int { return b.loaded }

func (b *BulkLoader) alloc() *occurrence {
	if len(b.slab) == 0 {
		b.slab = make([]occurrence, bulkSlabSize)
	}
	o := &b.slab[0]
	b.slab = b.slab[1:]
	return o
}

// Store inserts a record through the bulk path with the same contract —
// validation order, error messages, resulting state — as StoreWith.
func (b *BulkLoader) Store(recType string, rec *value.Record, memberships map[string]RecordID) (RecordID, error) {
	db := b.db
	typ := db.schema.Record(recType)
	if typ == nil {
		return 0, fmt.Errorf("netstore: unknown record type %s", recType)
	}
	data := value.NewRecordSize(len(typ.Fields))
	for _, f := range typ.Fields {
		if f.Virtual != nil {
			continue
		}
		v, _ := rec.Get(f.Name)
		if !v.IsNull() && v.Kind() != f.Kind {
			return 0, fmt.Errorf("netstore: %s.%s: value kind %v, field kind %v",
				recType, f.Name, v.Kind(), f.Kind)
		}
		data.Set(f.Name, v)
	}
	var targets []BulkMembership
	for setName, owner := range memberships {
		set := db.schema.Set(setName)
		if set == nil {
			return 0, fmt.Errorf("netstore: unknown set %s", setName)
		}
		targets = append(targets, BulkMembership{Set: set, Owner: owner})
	}
	return b.StorePrepared(typ, data, targets)
}

// StorePrepared inserts a pre-built data record (stored fields only, in
// schema field order, already kind-checked against typ) with resolved
// membership targets. It is the zero-copy entry point for the sharded
// data translator, whose workers prepare data records off-thread; the
// membership validation — and its error strings — match StoreWith's
// exactly.
func (b *BulkLoader) StorePrepared(typ *schema.RecordType, data *value.Record, targets []BulkMembership) (RecordID, error) {
	db := b.db
	b.pending = b.pending[:0]
	for _, tg := range targets {
		set := tg.Set
		if set.Member != typ.Name {
			return 0, fmt.Errorf("netstore: %s is not the member type of set %s", typ.Name, set.Name)
		}
		if set.IsSystem() {
			if tg.Owner != OwnerSystem {
				return 0, fmt.Errorf("netstore: set %s is SYSTEM-owned", set.Name)
			}
		} else {
			o, ok := db.recs[tg.Owner]
			if !ok {
				return 0, fmt.Errorf("netstore: set %s: owner %d does not exist", set.Name, tg.Owner)
			}
			if o.typ.Name != set.Owner {
				return 0, fmt.Errorf("netstore: set %s: owner %d is a %s, not a %s",
					set.Name, tg.Owner, o.typ.Name, set.Owner)
			}
		}
		if len(set.Keys) > 0 {
			k := bulkKey{set.Name, tg.Owner, data.KeyOf(set.Keys)}
			if _, dup := b.dup[k]; dup {
				return 0, fmt.Errorf("netstore: set %s: duplicate set key in occurrence", set.Name)
			}
			b.pending = append(b.pending, k)
		}
	}
	o := b.alloc()
	o.id = db.nextID
	o.typ = typ
	o.data = data
	o.memberOf = make(map[string]RecordID, len(targets))
	db.nextID++
	db.recs[o.id] = o
	db.byType[typ.Name] = append(db.byType[typ.Name], o.id)
	b.touched[typ.Name] = struct{}{}
	for _, tg := range targets {
		db.members[tg.Set.Name][tg.Owner] = append(db.members[tg.Set.Name][tg.Owner], o.id)
		o.memberOf[tg.Set.Name] = tg.Owner
	}
	for _, k := range b.pending {
		b.dup[k] = struct{}{}
	}
	b.loaded++
	return o.id, nil
}

// Close finishes the load: keyed-set member lists regain their ordered
// form and every touched type's indexes are rebuilt, fanned out over up
// to `parallelism` workers (<= 0 means GOMAXPROCS). The database is
// fully consistent — and identical to the StoreWith-built equivalent —
// once Close returns.
func (b *BulkLoader) Close(parallelism int) {
	db := b.db
	var tasks []func()
	for _, set := range db.schema.Sets {
		if len(set.Keys) == 0 {
			continue
		}
		if _, ok := b.touched[set.Member]; !ok {
			continue
		}
		keys := set.Keys
		for _, lst := range db.members[set.Name] {
			if len(lst) < 2 {
				continue
			}
			lst := lst
			tasks = append(tasks, func() {
				sort.SliceStable(lst, func(i, j int) bool {
					return value.CompareBy(db.recs[lst[i]].data, db.recs[lst[j]].data, keys) < 0
				})
			})
		}
	}
	if db.indexes != nil {
		for typName := range b.touched {
			idxs := db.indexes[typName]
			if len(idxs) == 0 {
				continue
			}
			ids := db.byType[typName]
			for _, ix := range idxs {
				ix := ix
				tasks = append(tasks, func() {
					// IDs ascend in byType order, so every add takes the
					// append fast path and buckets come out exactly as
					// incremental maintenance would have built them.
					ix.buckets = make(map[string][]RecordID, len(ids))
					for _, id := range ids {
						ix.add(id, db.recs[id].data)
					}
				})
			}
		}
	}
	runTasks(tasks, parallelism)
}

// runTasks drains independent closures over a bounded worker pool.
// Tasks only read shared state (db.recs) and write disjoint slices, so
// any interleaving yields the same database.
func runTasks(tasks []func(), parallelism int) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan func())
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}
