package convert

// Unit tests for the §2.2 DL/I command substitution rules, program
// shape by program shape.

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

func empPromotePlan() *xform.HierPlan {
	return &xform.HierPlan{Steps: []xform.HierReorder{{Promote: "EMP"}}}
}

func convertHier(t *testing.T, src string) *Result {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := ConvertHier(context.Background(), p, schema.EmpDeptHierarchy(), empPromotePlan())
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return res
}

func formatted(t *testing.T, res *Result) string {
	t.Helper()
	if res.Program == nil {
		t.Fatal("no converted program")
	}
	return dbprog.Format(res.Program)
}

// Parent-targeted GU: the path is restated child-first, entering
// through the promoted segment unqualified.
func TestHierParentTargetedRestates(t *testing.T) {
	res := convertHier(t, `
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2').
  PRINT DNAME IN DEPT.
END PROGRAM.
`)
	if !res.Auto {
		t.Fatalf("not auto: %v", res.Issues)
	}
	out := formatted(t, res)
	if !strings.Contains(out, "GU EMP, DEPT(D# = 'D2')") {
		t.Errorf("parent-targeted path not restated child-first:\n%s", out)
	}
	var rewrites int
	for _, tr := range res.Trail {
		if tr.Rewrite {
			rewrites++
		}
	}
	if rewrites == 0 {
		t.Error("no rewrite recorded in the trail")
	}
}

// Child-targeted GU with an unqualified parent SSA: the ancestor drops;
// the promoted segment is the root now.
func TestHierChildTargetedDropsAncestor(t *testing.T) {
	res := convertHier(t, `
PROGRAM P DIALECT DLI.
  GU DEPT, EMP(E# = 'E1').
  PRINT ENAME IN EMP.
END PROGRAM.
`)
	if !res.Auto {
		t.Fatalf("not auto: %v", res.Issues)
	}
	out := formatted(t, res)
	if !strings.Contains(out, "GU EMP(E# = 'E1').") || strings.Contains(out, "DEPT,") {
		t.Errorf("ancestor SSA not dropped:\n%s", out)
	}
}

// Child-targeted GU with a qualified parent SSA needs the emulated
// command sequence (descendant qualification) — manual.
func TestHierDescendantQualificationFlags(t *testing.T) {
	res := convertHier(t, `
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2'), EMP(E# = 'E1').
  PRINT ENAME IN EMP.
END PROGRAM.
`)
	if res.Auto {
		t.Fatal("descendant qualification converted automatically")
	}
	if len(res.Issues) == 0 || !strings.Contains(res.Issues[len(res.Issues)-1].Msg, "emulated command sequence") {
		t.Errorf("issues = %v", res.Issues)
	}
	if res.PlanStep == "" {
		t.Error("no plan step recorded for the hazard")
	}
}

// GNP under inverted parentage, positioned updates, and inserts into
// the reordered pair all flag for manual review.
func TestHierManualShapes(t *testing.T) {
	for name, src := range map[string]string{
		"gnp": `
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2').
  GNP EMP.
END PROGRAM.
`,
		"dlet": `
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2').
  DLET.
END PROGRAM.
`,
		"repl": `
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2').
  REPL (MGR = 'NEW').
END PROGRAM.
`,
		"isrt": `
PROGRAM P DIALECT DLI.
  ISRT EMP (E# = 'E9', ENAME = 'NEW', AGE = 20, YEAR-OF-SERVICE = 0) UNDER DEPT(D# = 'D2').
END PROGRAM.
`,
	} {
		t.Run(name, func(t *testing.T) {
			if res := convertHier(t, src); res.Auto {
				t.Errorf("%s converted automatically; issues = %v", name, res.Issues)
			}
		})
	}
}

// A non-DL/I program and an identity plan both pass through untouched.
func TestHierPassThrough(t *testing.T) {
	p, err := dbprog.Parse(`
PROGRAM P DIALECT NETWORK.
  PRINT 'X'.
END PROGRAM.
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConvertHier(context.Background(), p, schema.EmpDeptHierarchy(), empPromotePlan())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Auto || res.Program != p {
		t.Errorf("non-DL/I program not passed through: auto=%v", res.Auto)
	}

	dli, err := dbprog.Parse(`
PROGRAM P DIALECT DLI.
  GU DEPT(D# = 'D2').
END PROGRAM.
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ConvertHier(context.Background(), dli, schema.EmpDeptHierarchy(), &xform.HierPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Auto || res.Program != dli {
		t.Errorf("identity plan did not pass the program through: auto=%v", res.Auto)
	}
}
