package convert

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

func renamePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "WORKER"},
		xform.RenameField{Record: "WORKER", Old: "AGE", New: "YEARS"},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-WORKER"},
	}}
}

// TestMStoreUnderRenames: a Maryland STORE whose set is only renamed
// converts fully, with assignments, owner paths and set names mapped.
func TestMStoreUnderRenames(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM ST DIALECT MARYLAND.
  STORE EMP (EMP-NAME = 'NEW', DEPT-NAME = 'SALES', AGE = 31)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')).
  PRINT 'STORED'.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), renamePlan())
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	for _, want := range []string{"STORE WORKER", "YEARS = 31", "VIA DIV-WORKER ="} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
	// And it runs equivalently.
	v1 := companyV1DB(t)
	v2, err := renamePlan().MigrateData(v1)
	if err != nil {
		t.Fatal(err)
	}
	tr1, err1 := dbprog.Run(p, dbprog.Config{Net: v1})
	tr2, err2 := dbprog.Run(res.Program, dbprog.Config{Net: v2})
	if err1 != nil || err2 != nil || !tr1.Equal(tr2) {
		t.Errorf("traces: %v %v\n%s\n%s", err1, err2, tr1, tr2)
	}
	if v2.Count("WORKER") != 5 {
		t.Errorf("store did not land: %d workers", v2.Count("WORKER"))
	}
}

// TestMModifyUnderRenames: collection modification under a rename plan.
func TestMModifyUnderRenames(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM MM DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 40)) INTO C.
  MODIFY C SET (AGE = 39).
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 40)) INTO D.
  FOR EACH E IN D
    PRINT EMP-NAME IN E.
  END-FOR.
  PRINT 'DONE'.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), renamePlan())
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	if !strings.Contains(text, "MODIFY C SET (YEARS = 39)") ||
		!strings.Contains(text, "WORKER(YEARS > 40)") {
		t.Errorf("renamed modify:\n%s", text)
	}
	v1 := companyV1DB(t)
	v2, _ := renamePlan().MigrateData(v1)
	tr1, err1 := dbprog.Run(p, dbprog.Config{Net: v1})
	tr2, err2 := dbprog.Run(res.Program, dbprog.Config{Net: v2})
	if err1 != nil || err2 != nil || !tr1.Equal(tr2) {
		t.Errorf("traces: %v %v\n%svs\n%s", err1, err2, tr1, tr2)
	}
}

// TestQualConnectivesRewritten: OR/NOT qualifications survive renames.
func TestQualConnectivesRewritten(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM Q DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 40 OR NOT AGE > 25)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), renamePlan())
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	if !strings.Contains(text, "(YEARS > 40 OR (NOT YEARS > 25))") {
		t.Errorf("connectives:\n%s", text)
	}
}

// TestHostExpressionRewrites: WRITE, arithmetic, unary, RECORD refs, and
// loop-variable buffers all map fields correctly.
func TestHostExpressionRewrites(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM HX DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) INTO C.
  FOR EACH E IN C
    LET X = - (AGE IN E) + 1.
    WRITE 'OUT' AGE IN E, X.
    IF NOT (AGE IN E > 100)
      PRINT RECORD E.
    END-IF.
  END-FOR.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), renamePlan())
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	for _, want := range []string{"YEARS IN E", "WRITE 'OUT' YEARS IN E, X", "RECORD E"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}

// TestDroppedFieldInAllPositions: the drop-field plan blocks every
// reference position — qual, SORT keys, modify, store assigns, exprs.
func TestDroppedFieldInAllPositions(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.DropField{Record: "EMP", Field: "AGE"},
	}}
	sources := []string{
		`PROGRAM D1 DIALECT MARYLAND.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE) INTO C.
END PROGRAM.`,
		`PROGRAM D2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) INTO C.
  MODIFY C SET (AGE = 1).
END PROGRAM.`,
		`PROGRAM D3 DIALECT MARYLAND.
  STORE EMP (EMP-NAME = 'X', AGE = 1)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M')).
END PROGRAM.`,
		`PROGRAM D4 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) INTO C.
  FOR EACH E IN C
    PRINT AGE IN E.
  END-FOR.
END PROGRAM.`,
		`PROGRAM D5 DIALECT NETWORK.
  MOVE 30 TO AGE IN EMP.
  FIND ANY EMP USING AGE.
END PROGRAM.`,
	}
	for _, src := range sources {
		p, err := dbprog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if res.Auto {
			t.Errorf("dropped-field reference should block:\n%s", src)
		}
	}
}

// TestNetworkFindDupAndSystemSweepRenames: remaining raw statements map
// names through rename plans.
func TestNetworkFindDupAndSystemSweepRenames(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM FD DIALECT NETWORK.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  FIND ANY EMP USING DEPT-NAME.
  FIND DUPLICATE EMP USING DEPT-NAME.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT DIV WITHIN ALL-DIV.
    IF DB-STATUS = 'OK'
      GET DIV.
      PRINT DIV-NAME IN DIV.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), renamePlan())
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	for _, want := range []string{"FIND DUPLICATE WORKER USING DEPT-NAME", "FIND ANY WORKER"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
	v1 := companyV1DB(t)
	v2, _ := renamePlan().MigrateData(v1)
	tr1, e1 := dbprog.Run(p, dbprog.Config{Net: v1})
	tr2, e2 := dbprog.Run(res.Program, dbprog.Config{Net: v2})
	if e1 != nil || e2 != nil || !tr1.Equal(tr2) {
		t.Errorf("traces differ: %v %v\n%svs\n%s", e1, e2, tr1, tr2)
	}
}

// TestOrderChangedSilentLoopGetsNote: ChangeSetKeys over an unobservable
// loop converts with the behaviour note carried through.
func TestEraseAndDisconnectUnderRenames(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-STAFF"},
	}}
	p, _ := dbprog.Parse(`
PROGRAM ED DIALECT NETWORK.
  MOVE 'ADAMS' TO EMP-NAME IN EMP.
  FIND ANY EMP USING EMP-NAME.
  DISCONNECT EMP FROM DIV-EMP.
  PRINT DB-STATUS.
  CONNECT EMP TO DIV-EMP.
  PRINT DB-STATUS.
  ERASE EMP.
  PRINT DB-STATUS.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, sch, plan)
	if err != nil || !res.Auto {
		t.Fatalf("%+v %v", res, err)
	}
	text := dbprog.Format(res.Program)
	for _, want := range []string{"DISCONNECT EMP FROM DIV-STAFF", "CONNECT EMP TO DIV-STAFF", "ERASE EMP"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}
