// Package convert is the Program Converter of Figure 4.1: it takes the
// Program Analyzer's abstract representation and the Conversion
// Analyzer's transformation plan and "selects the proper transformation
// rules for use in mapping the source program representation to the
// target program representation".
//
// Conversion is best-effort in exactly the paper's sense: programs whose
// accesses fit the templates convert automatically; programs exhibiting
// the §3.2 hazards against the parts of the schema the plan touches are
// flagged for the Conversion Analyst, and the result records why.
package convert

import (
	"context"
	"fmt"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/obs"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func oneV() value.Value  { return value.Of(1) }
func zeroV() value.Value { return value.Of(0) }
func okV() value.Value   { return value.Str("OK") }

// Result is a conversion outcome.
type Result struct {
	// Program is the converted program, non-nil even when Auto is false
	// if a best-effort rewrite exists (nil when nothing could be done).
	Program *dbprog.Program
	// Auto reports a fully automatic, equivalence-preserving conversion.
	Auto bool
	// Issues are the findings that prevented (or qualified) automation.
	Issues []analyzer.Issue
	// Notes are behavioural observations carried from the plan.
	Notes []string
	// PlanStep is the catalogue name of the plan step implicated by the
	// converter-raised findings ("" when none was attributable) — the
	// audit trail's answer to "which restructuring caused this".
	PlanStep string
	// Trail is the converter's event stream — the hazards it raised and
	// the DML rewrites it performed, in statement order. A supervisor
	// serving this Result from a cache replays the trail so the observed
	// per-program event sequence matches a cold conversion.
	Trail []TrailEntry
}

// TrailEntry is one replayable converter event.
type TrailEntry struct {
	// Rewrite distinguishes a DML rewrite from a converter-raised hazard.
	Rewrite bool
	Label   string // hazard kind, or rewrite verb
	Detail  string // hazard message, or rewrite detail
}

// Convert rewrites a program for a transformation plan over its source
// network schema. A done ctx aborts the conversion with ctx.Err()
// wrapped, so batch supervisors can cancel mid-inventory.
func Convert(ctx context.Context, p *dbprog.Program, src *schema.Network, plan *xform.Plan) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("convert: %s: %w", p.Name, err)
	}
	return ConvertAnalyzed(ctx, analyzer.Analyze(ctx, p, src), src, plan)
}

// ConvertAnalyzed converts a program whose Program Analyzer pass already
// ran, so supervisors that analyze and convert as separate instrumented
// stages do not pay for the analysis twice. abs must come from
// analyzer.Analyze over the same program and schema.
func ConvertAnalyzed(ctx context.Context, abs *analyzer.Abstract, src *schema.Network, plan *xform.Plan) (*Result, error) {
	rewriters, err := plan.Rewriters(src)
	if err != nil {
		return nil, err
	}
	return ConvertPrepared(ctx, abs, src, rewriters)
}

// ConvertPrepared converts with the plan's rewrite rules already
// composed. Composing rewriters is pair-scoped work — it depends only on
// (plan, source schema) — so the supervisor's pair context computes it
// once per schema pair instead of once per program; rewriters must come
// from plan.Rewriters over the same source schema.
func ConvertPrepared(ctx context.Context, abs *analyzer.Abstract, src *schema.Network, rewriters []*xform.Rewriter) (*Result, error) {
	p := abs.Prog
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("convert: %s: %w", p.Name, err)
	}
	res := &Result{Auto: true}
	for _, r := range rewriters {
		res.Notes = append(res.Notes, r.Notes...)
	}

	res.Issues = append(res.Issues, abs.Issues...)
	if abs.HasBlockingIssue() {
		res.Auto = false
		return res, nil
	}

	c := &converter{src: src, rewriters: rewriters, res: res,
		em: obs.EmitterFrom(ctx), prog: p.Name}
	switch p.Dialect {
	case dbprog.Maryland:
		out := &dbprog.Program{Name: p.Name, Dialect: p.Dialect}
		c.collTypes = map[string]string{}
		out.Stmts = c.maryland(p.Stmts)
		res.Program = out
	case dbprog.Network:
		out := &dbprog.Program{Name: p.Name, Dialect: p.Dialect}
		out.Stmts = c.network(abs.Nodes)
		res.Program = out
	default:
		// SEQUEL and DL/I programs are untouched by a network-model plan.
		res.Program = p
	}
	if c.failed {
		res.Auto = false
	}
	return res, nil
}

type converter struct {
	src       *schema.Network
	rewriters []*xform.Rewriter
	res       *Result
	failed    bool
	collTypes map[string]string // Maryland collection → record type
	varTypes  map[string]string // loop variable → record type
	genCount  int
	em        *obs.Emitter // event log (nil when the run is unobserved)
	prog      string
}

func (c *converter) flag(kind analyzer.IssueKind, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.failed = true
	c.res.Issues = append(c.res.Issues, analyzer.Issue{Kind: kind, Msg: msg})
	c.res.Trail = append(c.res.Trail, TrailEntry{Label: kind.String(), Detail: msg})
	c.em.Hazard(c.prog, kind.String(), msg)
}

// flagAt is flag plus audit attribution: the finding is pinned on the
// named plan step (the first attribution wins — it is the decisive one
// in statement order).
func (c *converter) flagAt(step string, kind analyzer.IssueKind, format string, args ...any) {
	if c.res.PlanStep == "" {
		c.res.PlanStep = step
	}
	c.flag(kind, format, args...)
}

// rewrote logs one DML statement mapped to the target schema.
func (c *converter) rewrote(verb, detail string) {
	c.res.Trail = append(c.res.Trail, TrailEntry{Rewrite: true, Label: verb, Detail: detail})
	c.em.Rewrite(c.prog, verb, detail)
}

// mapRecord chains record renames across the plan.
func (c *converter) mapRecord(name string) string {
	for _, r := range c.rewriters {
		name = r.MapRecord(name)
	}
	return name
}

// mapField chains field relocations; the second result is false when the
// field was dropped somewhere along the plan.
func (c *converter) mapField(record, field string) (string, string, bool) {
	for _, r := range c.rewriters {
		if r.IsDropped(record, field) {
			return record, field, false
		}
		record, field = r.MapField(record, field)
	}
	return record, field, true
}

// mapSet chains set renames; false when the set was split away.
func (c *converter) mapSet(name string) (string, bool) {
	for _, r := range c.rewriters {
		n, ok := r.MapSet(name)
		if !ok {
			return name, false
		}
		name = n
	}
	return name, true
}

// splitFor returns the (single-plan-step) split affecting a set, if any.
func (c *converter) splitFor(set string) (xform.PathSplit, *xform.Rewriter, bool) {
	for _, r := range c.rewriters {
		if sp, ok := r.Splits[set]; ok {
			return sp, r, true
		}
	}
	return xform.PathSplit{}, nil, false
}

// orderChangedKeys returns the old ordering keys (and the responsible
// plan step) if the plan changed the set's enumeration order without
// splitting it.
func (c *converter) orderChangedKeys(set string) ([]string, string, bool) {
	for _, r := range c.rewriters {
		if keys, ok := r.OrderChanged[set]; ok {
			return keys, r.Step, true
		}
	}
	return nil, "", false
}

func (c *converter) gensym(prefix string) string {
	c.genCount++
	return fmt.Sprintf("%s-%d", prefix, c.genCount)
}

// recordTypeOfBuffer resolves a buffer name (record type or loop
// variable) to the record type it holds, for field mapping.
func (c *converter) recordTypeOfBuffer(name string) string {
	if c.varTypes != nil {
		if t, ok := c.varTypes[name]; ok {
			return t
		}
	}
	return name
}

// rewriteExpr applies field relocations to buffer references. Field
// *reads* keep working after a split because the member retains the
// moved field virtually, so only renames apply here; dropped fields are
// fatal.
func (c *converter) rewriteExpr(e dbprog.Expr) dbprog.Expr {
	switch x := e.(type) {
	case dbprog.Field:
		recType := c.recordTypeOfBuffer(x.Record)
		_, nf, ok := c.mapField(recType, x.Field)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate,
				"expression references dropped field %s.%s", recType, x.Field)
			return e
		}
		// The buffer name follows the record rename only when the buffer
		// is the record type itself (loop variables keep their names).
		newRec := x.Record
		if recType == x.Record {
			newRec = c.mapRecord(x.Record)
		}
		return dbprog.Field{Record: newRec, Field: nf}
	case dbprog.RecordRef:
		recType := c.recordTypeOfBuffer(x.Record)
		if recType == x.Record {
			return dbprog.RecordRef{Record: c.mapRecord(x.Record)}
		}
		return x
	case dbprog.Bin:
		return dbprog.Bin{Op: x.Op, L: c.rewriteExpr(x.L), R: c.rewriteExpr(x.R)}
	case dbprog.Un:
		return dbprog.Un{Op: x.Op, E: c.rewriteExpr(x.E)}
	}
	return e
}

func (c *converter) rewriteExprs(es []dbprog.Expr) []dbprog.Expr {
	out := make([]dbprog.Expr, len(es))
	for i, e := range es {
		out[i] = c.rewriteExpr(e)
	}
	return out
}

// rewriteHostStmt applies expression rewriting to a host statement.
func (c *converter) rewriteHostStmt(st dbprog.Stmt) dbprog.Stmt {
	switch s := st.(type) {
	case dbprog.Let:
		return dbprog.Let{Var: s.Var, E: c.rewriteExpr(s.E)}
	case dbprog.Print:
		return dbprog.Print{Args: c.rewriteExprs(s.Args)}
	case dbprog.WriteFile:
		return dbprog.WriteFile{File: s.File, Args: c.rewriteExprs(s.Args)}
	case dbprog.Move:
		// A MOVE writes a buffer field: the write target follows the field
		// to its new home. A split's group field moves to the
		// intermediate's buffer (reads keep working through the member's
		// virtual, so only writes retarget).
		for _, r := range c.rewriters {
			for _, sp := range r.Splits {
				if s.Record == sp.Member && s.Field == sp.GroupField {
					c.rewrote("move", sp.Inter)
					return dbprog.Move{E: c.rewriteExpr(s.E), Field: sp.GroupField, Record: sp.Inter}
				}
			}
		}
		nr, nf, ok := c.mapField(s.Record, s.Field)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate, "MOVE to dropped field %s.%s", s.Record, s.Field)
			return st
		}
		c.rewrote("move", nr)
		return dbprog.Move{E: c.rewriteExpr(s.E), Field: nf, Record: nr}
	}
	return st
}
