package convert

import (
	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/mdml"
	"progconv/internal/xform"
)

// maryland rewrites a Maryland-dialect statement block. FIND paths are
// rewritten step-by-step; a split inserts the intermediate chain, moves
// equality conjuncts on the lifted field to the intermediate step, and
// wraps the FIND in SORT on the old ordering keys when the rewrite
// crosses group boundaries — exactly the paper's two §4.2 conversions.
func (c *converter) maryland(stmts []dbprog.Stmt) []dbprog.Stmt {
	var out []dbprog.Stmt
	for _, st := range stmts {
		switch s := st.(type) {
		case dbprog.MFind:
			out = append(out, c.rewriteMFind(s))
		case dbprog.ForEach:
			if c.varTypes == nil {
				c.varTypes = map[string]string{}
			}
			c.varTypes[s.Var] = c.collTypes[s.Coll]
			body := c.maryland(s.Body)
			delete(c.varTypes, s.Var)
			out = append(out, dbprog.ForEach{Var: s.Var, Coll: s.Coll, Body: body})
		case dbprog.MDelete:
			c.rewrote("m-delete", s.Coll)
			out = append(out, s)
		case dbprog.MModify:
			out = append(out, c.rewriteMModify(s))
		case dbprog.MStore:
			out = append(out, c.rewriteMStore(s))
		case dbprog.If:
			out = append(out, dbprog.If{
				Cond: c.rewriteExpr(s.Cond),
				Then: c.maryland(s.Then),
				Else: c.maryland(s.Else),
			})
		case dbprog.PerformUntil:
			out = append(out, dbprog.PerformUntil{
				Cond: c.rewriteExpr(s.Cond),
				Body: c.maryland(s.Body),
			})
		default:
			out = append(out, c.rewriteHostStmt(st))
		}
	}
	return out
}

func (c *converter) rewriteMFind(s dbprog.MFind) dbprog.Stmt {
	var find *mdml.Find
	var sortOn []string
	if s.Sort != nil {
		find = s.Sort.Inner
		sortOn = s.Sort.On
	} else {
		find = s.Find
	}
	newFind, needSort := c.rewriteFindPath(find)
	c.collTypes[s.Coll] = newFind.Target
	c.rewrote("m-find", s.Coll)
	out := dbprog.MFind{Coll: s.Coll}
	switch {
	case sortOn != nil:
		// An explicit SORT dominates the final order; keep it (fields may
		// have been renamed).
		on := make([]string, len(sortOn))
		for i, f := range sortOn {
			_, nf, ok := c.mapField(find.Target, f)
			if !ok {
				c.flag(analyzer.UnmatchedTemplate, "SORT on dropped field %s.%s", find.Target, f)
				nf = f
			}
			on[i] = nf
		}
		out.Sort = &mdml.Sort{Inner: newFind, On: on}
	case needSort != nil:
		out.Sort = &mdml.Sort{Inner: newFind, On: needSort}
	default:
		out.Find = newFind
	}
	return out
}

// rewriteFindPath maps a FIND's access path through the plan's
// rewriters. The second result is non-nil when the converted path may
// enumerate in a different order and must be SORT-wrapped with those
// keys.
func (c *converter) rewriteFindPath(f *mdml.Find) (*mdml.Find, []string) {
	cur := &mdml.Find{Target: f.Target, Steps: append([]mdml.Step(nil), f.Steps...)}
	var needSort []string
	for _, r := range c.rewriters {
		next := &mdml.Find{Target: r.MapRecord(cur.Target)}
		steps := cur.Steps
		for i := 0; i < len(steps); i++ {
			st := steps[i]
			switch st.Kind {
			case mdml.SystemStep, mdml.CollectionStep:
				next.Steps = append(next.Steps, st)
			case mdml.SetStep:
				if sp, ok := r.Splits[st.Name]; ok {
					interStep := mdml.Step{Kind: mdml.RecordStep, Name: sp.Inter}
					// Pull equality conjuncts on the lifted field out of the
					// following member step into the intermediate step.
					if i+1 < len(steps) && steps[i+1].Kind == mdml.RecordStep {
						member := steps[i+1]
						var moved, kept []mdml.Qual
						for _, cj := range mdml.Conjuncts(member.Qual) {
							fields := mdml.QualFields(cj)
							if len(fields) == 1 && fields[0] == sp.GroupField {
								if cmp, isCmp := cj.(mdml.Cmp); isCmp && cmp.Op == "=" {
									moved = append(moved, cj)
									continue
								}
							}
							kept = append(kept, cj)
						}
						interStep.Qual = mdml.Conjoin(moved)
						member.Qual = mdml.Conjoin(kept)
						steps[i+1] = member
					}
					next.Steps = append(next.Steps,
						mdml.Step{Kind: mdml.SetStep, Name: sp.Upper},
						interStep,
						mdml.Step{Kind: mdml.SetStep, Name: sp.Lower})
					// Order is preserved only when the intermediate step pins
					// one group; otherwise SORT on the old keys is required.
					if !mdml.IsEqualityOn(interStep.Qual, sp.GroupField) && len(sp.OldKeys) > 0 {
						needSort = append([]string(nil), sp.OldKeys...)
					}
					continue
				}
				merged := false
				for _, m := range r.Merges {
					if st.Name != m.Upper || i+2 >= len(steps) {
						continue
					}
					interStep, lowerStep := steps[i+1], steps[i+2]
					if interStep.Kind != mdml.RecordStep || interStep.Name != m.Inter ||
						lowerStep.Kind != mdml.SetStep || lowerStep.Name != m.Lower {
						continue
					}
					// The chain contracts to one set; the intermediate step's
					// qualification transfers to the member step, whose field
					// is stored again after the collapse.
					next.Steps = append(next.Steps, mdml.Step{Kind: mdml.SetStep, Name: m.NewSet})
					if interStep.Qual != nil && i+3 < len(steps) && steps[i+3].Kind == mdml.RecordStep {
						member := steps[i+3]
						member.Qual = mdml.Conjoin(append(mdml.Conjuncts(member.Qual),
							mdml.Conjuncts(interStep.Qual)...))
						steps[i+3] = member
					}
					i += 2
					merged = true
					break
				}
				if merged {
					continue
				}
				name, ok := r.MapSet(st.Name)
				if !ok {
					name = st.Name
				}
				next.Steps = append(next.Steps, mdml.Step{Kind: mdml.SetStep, Name: name, Qual: st.Qual})
			case mdml.RecordStep:
				ns := mdml.Step{Kind: mdml.RecordStep, Name: r.MapRecord(st.Name)}
				ns.Qual = c.rewriteQual(st.Qual, st.Name, r)
				next.Steps = append(next.Steps, ns)
			}
		}
		cur = next
	}
	return cur, needSort
}

// rewriteQual renames qualification fields through one rewriter. Moved
// fields (splits) are left in place: the member still presents them
// virtually, and the split logic lifts the movable conjuncts separately.
func (c *converter) rewriteQual(q mdml.Qual, record string, r *xform.Rewriter) mdml.Qual {
	switch x := q.(type) {
	case nil:
		return nil
	case mdml.Cmp:
		if r.IsDropped(record, x.Field) {
			c.flag(analyzer.UnmatchedTemplate,
				"qualification references dropped field %s.%s", record, x.Field)
			return x
		}
		if nf, ok := r.Field[[2]string{record, x.Field}]; ok {
			x.Field = nf[1]
		}
		return x
	case mdml.And:
		return mdml.And{L: c.rewriteQual(x.L, record, r), R: c.rewriteQual(x.R, record, r)}
	case mdml.Or:
		return mdml.Or{L: c.rewriteQual(x.L, record, r), R: c.rewriteQual(x.R, record, r)}
	case mdml.Not:
		return mdml.Not{Q: c.rewriteQual(x.Q, record, r)}
	}
	return q
}

// rewriteMModify converts collection modifications: assignments to a
// split's lifted field would regroup records, which is the open update
// problem (§4.3: "extend the approach to handle updates as well as
// retrievals ... updates may be ambiguous"); those are flagged manual.
func (c *converter) rewriteMModify(s dbprog.MModify) dbprog.Stmt {
	target := c.collTypes[s.Coll]
	assigns := make([]dbprog.FieldAssign, len(s.Assigns))
	for i, a := range s.Assigns {
		for _, r := range c.rewriters {
			for _, sp := range r.Splits {
				if target == sp.Member && a.Field == sp.GroupField {
					c.flagAt(r.Step, analyzer.UnmatchedTemplate,
						"MODIFY of %s.%s regroups records across %s occurrences (view-update ambiguity)",
						target, a.Field, sp.Inter)
				}
			}
		}
		nr, nf, ok := c.mapField(target, a.Field)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate, "MODIFY of dropped field %s.%s", target, a.Field)
			nf = a.Field
		}
		_ = nr
		assigns[i] = dbprog.FieldAssign{Field: nf, E: c.rewriteExpr(a.E)}
	}
	c.rewrote("m-modify", s.Coll)
	return dbprog.MModify{Coll: s.Coll, Assigns: assigns}
}

// rewriteMStore converts stores. Storing the member of a split set needs
// an intermediate occurrence that may not exist — the insert side of the
// view-update problem — so it is flagged for the analyst.
func (c *converter) rewriteMStore(s dbprog.MStore) dbprog.Stmt {
	for _, r := range c.rewriters {
		for _, sp := range r.Splits {
			if s.Record == sp.Member {
				c.flagAt(r.Step, analyzer.UnmatchedTemplate,
					"STORE %s through split set requires creating/locating a %s occurrence (view-update ambiguity)",
					s.Record, sp.Inter)
				return s
			}
		}
	}
	assigns := make([]dbprog.FieldAssign, len(s.Assigns))
	for i, a := range s.Assigns {
		_, nf, ok := c.mapField(s.Record, a.Field)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate, "STORE of dropped field %s.%s", s.Record, a.Field)
			nf = a.Field
		}
		assigns[i] = dbprog.FieldAssign{Field: nf, E: c.rewriteExpr(a.E)}
	}
	owners := make(map[string]*mdml.Find, len(s.Owners))
	for set, path := range s.Owners {
		newPath, _ := c.rewriteFindPath(path)
		newSet, ok := c.mapSet(set)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate, "STORE owner path names split set %s", set)
			newSet = set
		}
		owners[newSet] = newPath
	}
	c.rewrote("m-store", s.Record)
	return dbprog.MStore{Record: c.mapRecord(s.Record), Assigns: assigns, Owners: owners}
}
