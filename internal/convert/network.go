package convert

import (
	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
)

// network rewrites the abstract nodes of a network-dialect program back
// into statements for the target schema. Lifted retrieval loops over a
// split set regenerate as nested loops (the paper: "the system will
// insert statements to traverse this relationship"); everything else is
// renamed in place. DML touching a split set outside a lifted template is
// flagged for the analyst.
func (c *converter) network(nodes []analyzer.Node) []dbprog.Stmt {
	var out []dbprog.Stmt
	for _, n := range nodes {
		switch x := n.(type) {
		case analyzer.Host:
			out = append(out, c.rewriteHostStmt(x.Stmt))
		case analyzer.IfNode:
			out = append(out, dbprog.If{
				Cond: c.rewriteExpr(x.Cond),
				Then: c.network(x.Then),
				Else: c.network(x.Else),
			})
		case analyzer.LoopNode:
			out = append(out, dbprog.PerformUntil{
				Cond: c.rewriteExpr(x.Cond),
				Body: c.network(x.Body),
			})
		case analyzer.RetrieveLoop:
			out = append(out, c.rewriteRetrieveLoop(x)...)
		case analyzer.RawDML:
			out = append(out, c.rewriteRawDML(x.Stmt))
		}
	}
	return out
}

// rewriteRetrieveLoop regenerates a lifted sweep for the target schema.
func (c *converter) rewriteRetrieveLoop(rl analyzer.RetrieveLoop) []dbprog.Stmt {
	sp, spRW, split := c.splitFor(rl.Set)
	c.rewrote("sweep", rl.Set)

	// Order-change without structural change: observable loops become
	// analyst work, silent loops convert with a note.
	if oldKeys, step, changed := c.orderChangedKeys(rl.Set); changed && rl.Observable {
		c.flagAt(step, analyzer.OrderDependence,
			"loop over %s emits output per record and the set's ordering changed from %v",
			rl.Set, oldKeys)
	}

	if !split {
		return c.regenerateSweep(rl)
	}

	// Split: decide whether the old order survives the regrouping.
	usingHasGroup := false
	var memberUsing []string
	for _, f := range rl.Using {
		if f == sp.GroupField {
			usingHasGroup = true
		} else {
			memberUsing = append(memberUsing, f)
		}
	}
	if !usingHasGroup && rl.Observable {
		orderPreserved := len(sp.OldKeys) > 0 && sp.OldKeys[0] == sp.GroupField
		if !orderPreserved {
			// Flag the order change but still emit the nested rewrite: it
			// is the correct program for the new schema up to output order,
			// and the Analyst may accept it (§5.2's qualified conversion).
			c.flagAt(spRW.Step, analyzer.OrderDependence,
				"sweep of %s prints per record; after the split enumeration groups by %s and the network DML cannot re-sort a stream",
				rl.Set, sp.GroupField)
		}
	}

	// Nested regeneration. The generated flag variables keep the outer
	// loop alive across the inner loop's END-OF-SET.
	outerDone := c.gensym("CV-OUTER")
	innerDone := c.gensym("CV-INNER")
	member := c.mapRecord(rl.Member)
	body := c.network(rl.Body)

	innerFind := dbprog.FindInSet{Dir: "NEXT", Record: member, Set: sp.Lower, Using: memberUsing}
	inner := dbprog.PerformUntil{
		Cond: dbprog.Bin{Op: "=", L: dbprog.Var{Name: innerDone}, R: dbprog.Lit{V: oneV()}},
		Body: []dbprog.Stmt{
			innerFind,
			dbprog.If{
				Cond: statusNotOK(),
				Then: []dbprog.Stmt{dbprog.Let{Var: innerDone, E: dbprog.Lit{V: oneV()}}},
				Else: append([]dbprog.Stmt{dbprog.GetRec{Record: member}}, body...),
			},
		},
	}

	var interUsing []string
	if usingHasGroup {
		interUsing = []string{sp.GroupField}
	}
	outerFind := dbprog.FindInSet{Dir: "NEXT", Record: sp.Inter, Set: sp.Upper, Using: interUsing}
	outer := dbprog.PerformUntil{
		Cond: dbprog.Bin{Op: "=", L: dbprog.Var{Name: outerDone}, R: dbprog.Lit{V: oneV()}},
		Body: []dbprog.Stmt{
			outerFind,
			dbprog.If{
				Cond: statusNotOK(),
				Then: []dbprog.Stmt{dbprog.Let{Var: outerDone, E: dbprog.Lit{V: oneV()}}},
				Else: []dbprog.Stmt{
					dbprog.Let{Var: innerDone, E: dbprog.Lit{V: zeroV()}},
					inner,
				},
			},
		},
	}

	var out []dbprog.Stmt
	if rl.Owner != "" {
		out = append(out, dbprog.FindAny{Record: c.mapRecord(rl.Owner), Using: c.mapUsing(rl.Owner, rl.OwnerUsing)})
	}
	out = append(out,
		dbprog.Let{Var: outerDone, E: dbprog.Lit{V: zeroV()}},
		outer,
	)
	return out
}

// regenerateSweep re-emits an unsplit lifted loop with names mapped.
func (c *converter) regenerateSweep(rl analyzer.RetrieveLoop) []dbprog.Stmt {
	set, ok := c.mapSet(rl.Set)
	if !ok {
		set = rl.Set
	}
	member := c.mapRecord(rl.Member)
	var out []dbprog.Stmt
	if rl.Owner != "" {
		out = append(out, dbprog.FindAny{Record: c.mapRecord(rl.Owner), Using: c.mapUsing(rl.Owner, rl.OwnerUsing)})
	}
	out = append(out, dbprog.PerformUntil{
		Cond: statusNotOK(),
		Body: []dbprog.Stmt{
			dbprog.FindInSet{Dir: "NEXT", Record: member, Set: set, Using: c.mapUsing(rl.Member, rl.Using)},
			dbprog.If{
				Cond: statusOK(),
				Then: append([]dbprog.Stmt{dbprog.GetRec{Record: member}}, c.network(rl.Body)...),
			},
		},
	})
	return out
}

// mapUsing renames a USING field list for a record type.
func (c *converter) mapUsing(record string, using []string) []string {
	if len(using) == 0 {
		return nil
	}
	out := make([]string, len(using))
	for i, f := range using {
		_, nf, ok := c.mapField(record, f)
		if !ok {
			c.flag(analyzer.UnmatchedTemplate, "USING references dropped field %s.%s", record, f)
			nf = f
		}
		out[i] = nf
	}
	return out
}

// rewriteRawDML renames an unlifted DML statement; any reference to a
// split set is beyond statement-level rules and goes to the analyst.
func (c *converter) rewriteRawDML(st dbprog.Stmt) dbprog.Stmt {
	splitTouched := func(set string) (string, bool) {
		_, rw, ok := c.splitFor(set)
		if !ok {
			return "", false
		}
		return rw.Step, true
	}
	switch s := st.(type) {
	case dbprog.Move:
		return c.rewriteHostStmt(s)
	case dbprog.FindAny:
		c.rewrote("find-any", s.Record)
		return dbprog.FindAny{Record: c.mapRecord(s.Record), Using: c.mapUsing(s.Record, s.Using)}
	case dbprog.FindDup:
		c.rewrote("find-dup", s.Record)
		return dbprog.FindDup{Record: c.mapRecord(s.Record), Using: c.mapUsing(s.Record, s.Using)}
	case dbprog.FindInSet:
		if step, ok := splitTouched(s.Set); ok {
			c.flagAt(step, analyzer.UnmatchedTemplate,
				"FIND %s WITHIN %s outside a lifted sweep cannot be rewritten across the split", s.Dir, s.Set)
			return st
		}
		set, _ := c.mapSet(s.Set)
		c.rewrote("find-in-set", set)
		return dbprog.FindInSet{Dir: s.Dir, Record: c.mapRecord(s.Record), Set: set,
			Using: c.mapUsing(s.Record, s.Using)}
	case dbprog.FindOwner:
		if sp, _, ok := c.splitFor(s.Set); ok {
			// FIND OWNER across a split climbs both new sets: the one
			// structural raw rewrite that is always safe.
			c.rewrote("find-owner", s.Set)
			return seqStmt(
				dbprog.FindOwner{Set: sp.Lower},
				dbprog.FindOwner{Set: sp.Upper},
			)
		}
		set, _ := c.mapSet(s.Set)
		c.rewrote("find-owner", set)
		return dbprog.FindOwner{Set: set}
	case dbprog.GetRec:
		c.rewrote("get", s.Record)
		return dbprog.GetRec{Record: c.mapRecord(s.Record)}
	case dbprog.StoreRec:
		for _, r := range c.rewriters {
			for _, sp := range r.Splits {
				if s.Record == sp.Member {
					c.flagAt(r.Step, analyzer.UnmatchedTemplate,
						"STORE %s must select or create a %s occurrence (view-update ambiguity)", s.Record, sp.Inter)
					return st
				}
			}
		}
		c.rewrote("store", s.Record)
		return dbprog.StoreRec{Record: c.mapRecord(s.Record)}
	case dbprog.ModifyRec:
		for _, r := range c.rewriters {
			for _, sp := range r.Splits {
				if s.Record == sp.Member {
					for _, f := range s.Using {
						if f == sp.GroupField {
							c.flagAt(r.Step, analyzer.UnmatchedTemplate,
								"MODIFY %s USING %s regroups records across %s occurrences", s.Record, f, sp.Inter)
							return st
						}
					}
					if len(s.Using) == 0 {
						c.flagAt(r.Step, analyzer.UnmatchedTemplate,
							"MODIFY %s without USING may touch the lifted field %s", s.Record, sp.GroupField)
						return st
					}
				}
			}
		}
		c.rewrote("modify", s.Record)
		return dbprog.ModifyRec{Record: c.mapRecord(s.Record), Using: c.mapUsing(s.Record, s.Using)}
	case dbprog.EraseRec:
		c.rewrote("erase", s.Record)
		return dbprog.EraseRec{Record: c.mapRecord(s.Record)}
	case dbprog.ConnectRec:
		if step, ok := splitTouched(s.Set); ok {
			c.flagAt(step, analyzer.UnmatchedTemplate, "CONNECT through split set %s", s.Set)
			return st
		}
		set, _ := c.mapSet(s.Set)
		c.rewrote("connect", set)
		return dbprog.ConnectRec{Record: c.mapRecord(s.Record), Set: set}
	case dbprog.DisconnectRec:
		if step, ok := splitTouched(s.Set); ok {
			c.flagAt(step, analyzer.UnmatchedTemplate, "DISCONNECT from split set %s", s.Set)
			return st
		}
		set, _ := c.mapSet(s.Set)
		c.rewrote("disconnect", set)
		return dbprog.DisconnectRec{Record: c.mapRecord(s.Record), Set: set}
	}
	return st
}

// seqStmt packs a two-statement rewrite into an always-true IF so that a
// single statement slot can expand (the formatter renders it naturally).
func seqStmt(a, b dbprog.Stmt) dbprog.Stmt {
	return dbprog.If{
		Cond: dbprog.Bin{Op: "=", L: dbprog.Lit{V: oneV()}, R: dbprog.Lit{V: oneV()}},
		Then: []dbprog.Stmt{a, b},
	}
}

func statusOK() dbprog.Expr {
	return dbprog.Bin{Op: "=", L: dbprog.StatusRef{}, R: dbprog.Lit{V: okV()}}
}

func statusNotOK() dbprog.Expr {
	return dbprog.Bin{Op: "<>", L: dbprog.StatusRef{}, R: dbprog.Lit{V: okV()}}
}
