package convert

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func companyV1DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

// convertAndCompare runs the source program against the V1 database and
// the converted program against the migrated V2 database, asserting
// identical non-database I/O — the paper's §1.1 equivalence test.
func convertAndCompare(t *testing.T, src string) *Result {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan := figurePlan()
	res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if !res.Auto {
		t.Fatalf("not auto-converted: %v", res.Issues)
	}
	v1 := companyV1DB(t)
	v2, err := plan.MigrateData(v1)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	tr1, err1 := dbprog.Run(p, dbprog.Config{Net: v1})
	tr2, err2 := dbprog.Run(res.Program, dbprog.Config{Net: v2})
	if err1 != nil || err2 != nil {
		t.Fatalf("run: %v / %v\nconverted:\n%s", err1, err2, dbprog.Format(res.Program))
	}
	if !tr1.Equal(tr2) {
		t.Fatalf("traces differ.\nsource trace:\n%s\nconverted trace:\n%s\nconverted program:\n%s",
			tr1, tr2, dbprog.Format(res.Program))
	}
	return res
}

// TestPaperFindExample1 is §4.2 example 1 converted per the paper: the
// FIND gains the DIV-DEPT/DEPT/DEPT-EMP chain and a SORT ON (EMP-NAME).
func TestPaperFindExample1(t *testing.T) {
	res := convertAndCompare(t, `
PROGRAM EX1 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	for _, want := range []string{
		"SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30))) ON (EMP-NAME)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("converted text missing %q:\n%s", want, text)
		}
	}
}

// TestPaperFindExample2 is §4.2 example 2: the DEPT-NAME equality moves
// to the new DEPT step and no SORT is needed.
func TestPaperFindExample2(t *testing.T) {
	res := convertAndCompare(t, `
PROGRAM EX2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES')) INTO SALES.
  FOR EACH E IN SALES
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	want := "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)"
	if !strings.Contains(text, want) {
		t.Errorf("converted text missing %q:\n%s", want, text)
	}
	if strings.Contains(text, "SORT") {
		t.Errorf("pinned group needs no SORT:\n%s", text)
	}
}

func TestMarylandExplicitSortDominates(t *testing.T) {
	res := convertAndCompare(t, `
PROGRAM EXS DIALECT MARYLAND.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) ON (AGE) INTO BYAGE.
  FOR EACH E IN BYAGE
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	if !strings.Contains(text, "ON (AGE)") || strings.Contains(text, "ON (EMP-NAME)") {
		t.Errorf("explicit SORT should dominate:\n%s", text)
	}
}

func TestMarylandMixedQualSplits(t *testing.T) {
	// DEPT-NAME equality moves; the AGE conjunct stays on EMP.
	res := convertAndCompare(t, `
PROGRAM EXM DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SALES' AND AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	if !strings.Contains(text, "DEPT(DEPT-NAME = 'SALES')") || !strings.Contains(text, "EMP(AGE > 30)") {
		t.Errorf("conjunct split wrong:\n%s", text)
	}
}

func TestMarylandNonEqualityGroupQualSorts(t *testing.T) {
	// DEPT-NAME <> 'SALES' cannot pin a group: stays on EMP (virtual) and
	// forces a SORT.
	res := convertAndCompare(t, `
PROGRAM EXN DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME <> 'SALES')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	if !strings.Contains(text, "SORT") || !strings.Contains(text, "EMP(DEPT-NAME <> 'SALES')") {
		t.Errorf("non-equality group qual:\n%s", text)
	}
}

// TestNetworkSweepPinnedGroup: a network sweep USING the lifted field
// converts to nested loops with the outer loop pinned, preserving order.
func TestNetworkSweepPinnedGroup(t *testing.T) {
	res := convertAndCompare(t, `
PROGRAM NSW DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP, AGE IN EMP.
    END-IF.
  END-PERFORM.
  PRINT 'DONE'.
END PROGRAM.
`)
	text := dbprog.Format(res.Program)
	for _, want := range []string{
		"MOVE 'SALES' TO DEPT-NAME IN DEPT",
		"FIND NEXT DEPT WITHIN DIV-DEPT USING DEPT-NAME",
		"FIND NEXT EMP WITHIN DEPT-EMP",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("converted text missing %q:\n%s", want, text)
		}
	}
}

// TestNetworkSilentSweepConverts: an unpinned sweep with an accumulating
// (unobservable) body converts despite the order change.
func TestNetworkSilentSweepConverts(t *testing.T) {
	convertAndCompare(t, `
PROGRAM NSUM DIALECT NETWORK.
  LET TOTAL = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET TOTAL = TOTAL + AGE IN EMP.
    END-IF.
  END-PERFORM.
  PRINT TOTAL.
END PROGRAM.
`)
}

// TestNetworkObservableUnpinnedSweepFlagged: printing per record with the
// order changed by the split cannot be auto-converted in the network DML.
func TestNetworkObservableUnpinnedSweepFlagged(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM NOBS DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if res.Auto {
		t.Fatal("observable unpinned sweep should not auto-convert")
	}
	if !hasIssue(res, analyzer.OrderDependence) {
		t.Errorf("issues = %v", res.Issues)
	}
}

func hasIssue(r *Result, k analyzer.IssueKind) bool {
	for _, i := range r.Issues {
		if i.Kind == k {
			return true
		}
	}
	return false
}

func TestRenamePlanNetworkProgram(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "WORKER"},
		xform.RenameField{Record: "WORKER", Old: "AGE", New: "YEARS"},
		xform.RenameSet{Old: "DIV-EMP", New: "DIV-WORKER"},
	}}
	p, _ := dbprog.Parse(`
PROGRAM RN DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP, AGE IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
	if err != nil || !res.Auto {
		t.Fatalf("%v %v", res, err)
	}
	v1 := companyV1DB(t)
	v2, err := plan.MigrateData(v1)
	if err != nil {
		t.Fatal(err)
	}
	tr1, _ := dbprog.Run(p, dbprog.Config{Net: v1})
	tr2, err2 := dbprog.Run(res.Program, dbprog.Config{Net: v2})
	if err2 != nil {
		t.Fatalf("converted run: %v\n%s", err2, dbprog.Format(res.Program))
	}
	if !tr1.Equal(tr2) {
		t.Errorf("traces differ:\n%s\nvs\n%s\n%s", tr1, tr2, dbprog.Format(res.Program))
	}
	text := dbprog.Format(res.Program)
	for _, want := range []string{"WORKER", "DIV-WORKER", "YEARS IN WORKER"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}

func TestDroppedFieldBlocksConversion(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.DropField{Record: "EMP", Field: "AGE"},
	}}
	p, _ := dbprog.Parse(`
PROGRAM DF DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Auto {
		t.Error("program referencing a dropped field must not auto-convert")
	}
	// A program not touching the field converts fine.
	p2, _ := dbprog.Parse(`
PROGRAM DF2 DIALECT MARYLAND.
  FIND(DIV: SYSTEM, ALL-DIV, DIV) INTO C.
  FOR EACH D IN C
    PRINT DIV-NAME IN D.
  END-FOR.
END PROGRAM.
`)
	res2, err := Convert(context.Background(), p2, schema.CompanyV1(), plan)
	if err != nil || !res2.Auto {
		t.Errorf("unaffected program should convert: %v %v", res2.Issues, err)
	}
}

func TestRunTimeVariabilityBlocks(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM RTV DIALECT NETWORK.
  ACCEPT MODE.
  IF MODE = 'W'
    STORE DIV.
  END-IF.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if res.Auto || res.Program != nil {
		t.Errorf("blocking hazard should stop conversion: %+v", res)
	}
}

func TestViewUpdateFlags(t *testing.T) {
	cases := []string{
		// STORE of the split member.
		`PROGRAM S1 DIALECT MARYLAND.
  STORE EMP (EMP-NAME = 'X', DEPT-NAME = 'Y', AGE = 1)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')).
END PROGRAM.`,
		// MODIFY of the lifted field.
		`PROGRAM S2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) INTO C.
  MODIFY C SET (DEPT-NAME = 'Z').
END PROGRAM.`,
	}
	for _, src := range cases {
		p, err := dbprog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Convert(context.Background(), p, schema.CompanyV1(), figurePlan())
		if err != nil {
			t.Fatal(err)
		}
		if res.Auto {
			t.Errorf("view-update case should be flagged:\n%s", src)
		}
	}
}

func TestNetworkRawDMLFlagsOnSplit(t *testing.T) {
	cases := []struct {
		src  string
		auto bool
	}{
		{`PROGRAM R1 DIALECT NETWORK. FIND ANY DIV. FIND FIRST EMP WITHIN DIV-EMP. GET EMP. PRINT EMP-NAME IN EMP. END PROGRAM.`, false},
		{`PROGRAM R2 DIALECT NETWORK. FIND ANY EMP. CONNECT EMP TO DIV-EMP. END PROGRAM.`, false},
		{`PROGRAM R3 DIALECT NETWORK. FIND ANY EMP. DISCONNECT EMP FROM DIV-EMP. END PROGRAM.`, false},
		{`PROGRAM R4 DIALECT NETWORK. MOVE 'X' TO EMP-NAME IN EMP. FIND ANY EMP USING EMP-NAME. ERASE EMP. END PROGRAM.`, true},
		{`PROGRAM R5 DIALECT NETWORK. FIND ANY EMP. MODIFY EMP USING AGE. END PROGRAM.`, true},
		{`PROGRAM R6 DIALECT NETWORK. FIND ANY EMP. MODIFY EMP. END PROGRAM.`, false},
		{`PROGRAM R7 DIALECT NETWORK. FIND ANY EMP. STORE EMP. END PROGRAM.`, false},
	}
	for _, tc := range cases {
		p, err := dbprog.Parse(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Convert(context.Background(), p, schema.CompanyV1(), figurePlan())
		if err != nil {
			t.Fatal(err)
		}
		if res.Auto != tc.auto {
			t.Errorf("auto = %v, want %v for:\n%s\nissues: %v", res.Auto, tc.auto, tc.src, res.Issues)
		}
	}
}

// TestFindOwnerAcrossSplit: the one raw structural rewrite — FIND OWNER
// becomes a two-step climb — runs equivalently.
func TestFindOwnerAcrossSplit(t *testing.T) {
	convertAndCompare(t, `
PROGRAM FO DIALECT NETWORK.
  MOVE 'DAVIS' TO EMP-NAME IN EMP.
  FIND ANY EMP USING EMP-NAME.
  FIND OWNER WITHIN DIV-EMP.
  GET DIV.
  PRINT DIV-NAME IN DIV, DIV-LOC IN DIV.
END PROGRAM.
`)
}

// TestOrderChangeOnObservableLoop: ChangeSetKeys plus a printing loop is
// the §3.2 order-dependence hazard made concrete.
func TestOrderChangeOnObservableLoop(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.ChangeSetKeys{Set: "DIV-EMP", Keys: []string{"AGE"}},
	}}
	p, _ := dbprog.Parse(`
PROGRAM OC DIALECT NETWORK.
  FIND ANY DIV.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Auto || !hasIssue(res, analyzer.OrderDependence) {
		t.Errorf("order change over printing loop: %+v", res.Issues)
	}
	// The same plan with a silent loop converts.
	p2, _ := dbprog.Parse(`
PROGRAM OC2 DIALECT NETWORK.
  LET N = 0.
  FIND ANY DIV.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT N.
END PROGRAM.
`)
	res2, err := Convert(context.Background(), p2, schema.CompanyV1(), plan)
	if err != nil || !res2.Auto {
		t.Errorf("silent loop should convert: %v %v", res2.Issues, err)
	}
}

func TestSequelProgramsPassThrough(t *testing.T) {
	p, _ := dbprog.Parse(`
PROGRAM SQ DIALECT SEQUEL.
  FOR EACH R IN (SELECT CNO FROM COURSE)
    PRINT CNO IN R.
  END-FOR.
END PROGRAM.
`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), figurePlan())
	if err != nil || !res.Auto || res.Program != p {
		t.Errorf("SEQUEL pass-through: %+v %v", res, err)
	}
}

func TestRetentionNoteSurfaces(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.ChangeRetention{Set: "DIV-EMP", Retention: schema.Optional},
	}}
	p, _ := dbprog.Parse(`PROGRAM N DIALECT NETWORK. PRINT 'HI'. END PROGRAM.`)
	res, err := Convert(context.Background(), p, schema.CompanyV1(), plan)
	if err != nil || !res.Auto {
		t.Fatal(err)
	}
	if len(res.Notes) != 1 || !strings.Contains(res.Notes[0], "retention") {
		t.Errorf("notes = %v", res.Notes)
	}
}

func TestConvertErrorPropagation(t *testing.T) {
	bad := &xform.Plan{Steps: []xform.Transformation{xform.RenameRecord{Old: "NOPE", New: "X"}}}
	p, _ := dbprog.Parse(`PROGRAM X DIALECT NETWORK. PRINT 'HI'. END PROGRAM.`)
	if _, err := Convert(context.Background(), p, schema.CompanyV1(), bad); err == nil {
		t.Error("bad plan should error")
	}
}
