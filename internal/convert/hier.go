// Hierarchical (DL/I) program conversion: the §2.2 command substitution
// rules applied statement-by-statement. A hierarchical reorder keeps
// every segment type's name and fields, so host expressions never need
// rewriting; what changes is parentage, and with it the shape of every
// SSA path that walks through the reordered pair.
package convert

import (
	"context"
	"fmt"

	"progconv/internal/analyzer"
	"progconv/internal/dbprog"
	"progconv/internal/obs"
	"progconv/internal/schema"
	"progconv/internal/xform"
)

// ConvertHier rewrites a program for a hierarchical transformation plan
// over its source hierarchy. A done ctx aborts with ctx.Err() wrapped,
// matching Convert.
func ConvertHier(ctx context.Context, p *dbprog.Program, src *schema.Hierarchy, plan *xform.HierPlan) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("convert: %s: %w", p.Name, err)
	}
	return ConvertHierAnalyzed(ctx, analyzer.Analyze(ctx, p, nil), src, plan)
}

// ConvertHierAnalyzed converts a program whose Program Analyzer pass
// already ran — the entry point supervisors use so analysis and
// conversion remain separate instrumented stages. abs must come from
// analyzer.Analyze over the same program.
func ConvertHierAnalyzed(ctx context.Context, abs *analyzer.Abstract, src *schema.Hierarchy, plan *xform.HierPlan) (*Result, error) {
	p := abs.Prog
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("convert: %s: %w", p.Name, err)
	}
	res := &Result{Auto: true}
	res.Issues = append(res.Issues, abs.Issues...)
	if abs.HasBlockingIssue() {
		res.Auto = false
		return res, nil
	}
	if p.Dialect != dbprog.DLI || len(plan.Steps) == 0 {
		// Non-DL/I programs are untouched by a hierarchical plan, and an
		// identity plan (classified from equal hierarchies) touches nothing.
		res.Program = p
		return res, nil
	}

	c := &hierConverter{res: res, em: obs.EmitterFrom(ctx), prog: p.Name}
	// Precompute the schema each step transforms, so every step knows
	// which segment type was the root when it applied.
	cur := src
	for _, t := range plan.Steps {
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("convert: %s: %w", p.Name, err)
		}
		c.steps = append(c.steps, hierStep{reorder: t, oldRoot: cur.Root.Name})
		cur = next
	}

	out := &dbprog.Program{Name: p.Name, Dialect: p.Dialect}
	out.Stmts = c.block(p.Stmts)
	res.Program = out
	if c.failed {
		res.Auto = false
	}
	return res, nil
}

// hierStep is one reorder with the root name of the hierarchy it
// applied to — the "old root" its substitution rules are stated over.
type hierStep struct {
	reorder xform.HierReorder
	oldRoot string
}

type hierConverter struct {
	steps  []hierStep
	res    *Result
	failed bool
	em     *obs.Emitter
	prog   string
}

func (c *hierConverter) flag(kind analyzer.IssueKind, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.failed = true
	c.res.Issues = append(c.res.Issues, analyzer.Issue{Kind: kind, Msg: msg})
	c.res.Trail = append(c.res.Trail, TrailEntry{Label: kind.String(), Detail: msg})
	c.em.Hazard(c.prog, kind.String(), msg)
}

func (c *hierConverter) flagAt(step string, kind analyzer.IssueKind, format string, args ...any) {
	if c.res.PlanStep == "" {
		c.res.PlanStep = step
	}
	c.flag(kind, format, args...)
}

func (c *hierConverter) rewrote(verb, detail string) {
	c.res.Trail = append(c.res.Trail, TrailEntry{Rewrite: true, Label: verb, Detail: detail})
	c.em.Rewrite(c.prog, verb, detail)
}

func (c *hierConverter) block(stmts []dbprog.Stmt) []dbprog.Stmt {
	out := make([]dbprog.Stmt, 0, len(stmts))
	for _, st := range stmts {
		out = append(out, c.stmt(st))
	}
	return out
}

func (c *hierConverter) stmt(st dbprog.Stmt) dbprog.Stmt {
	switch s := st.(type) {
	case dbprog.If:
		return dbprog.If{Cond: s.Cond, Then: c.block(s.Then), Else: c.block(s.Else)}
	case dbprog.PerformUntil:
		return dbprog.PerformUntil{Cond: s.Cond, Body: c.block(s.Body)}
	case dbprog.DLIGet:
		return c.get(s)
	case dbprog.DLIInsert:
		return c.insert(s)
	case dbprog.DLIDelete:
		c.flagAt(c.steps[0].reorder.Name(), analyzer.UnmatchedTemplate,
			"DLET deletes at the current position, whose parentage the reorder inverted; manual review required")
		return st
	case dbprog.DLIRepl:
		c.flagAt(c.steps[0].reorder.Name(), analyzer.UnmatchedTemplate,
			"REPL updates at the current position, whose parentage the reorder inverted; manual review required")
		return st
	}
	return st
}

// get applies every step's substitution rule to one GU/GN/GNP path.
func (c *hierConverter) get(s dbprog.DLIGet) dbprog.Stmt {
	ssas := s.SSAs
	for _, step := range c.steps {
		var ok bool
		ssas, ok = c.getStep(step, s.Func, ssas)
		if !ok {
			return s // hazard flagged; keep the statement as written
		}
	}
	return dbprog.DLIGet{Func: s.Func, SSAs: ssas}
}

// getStep rewrites one get path for one reorder, or flags why it
// cannot. The rules are HierReorder.RewriteSSAs restated over the
// program-level SSAs, plus the cases the data-level rule never sees: a
// child-targeted call with a parent qualification needs EmulateGU's
// command sequence (DL/I paths qualify ancestors, never descendants),
// and GNP parentage is inverted outright.
func (c *hierConverter) getStep(step hierStep, fn string, ssas []dbprog.SSASpec) ([]dbprog.SSASpec, bool) {
	oldRoot, promote := step.oldRoot, step.reorder.Promote
	var parentQ, childQ *dbprog.SSASpec
	var rest []dbprog.SSASpec
	for i := range ssas {
		switch ssas[i].Segment {
		case oldRoot:
			parentQ = &ssas[i]
		case promote:
			childQ = &ssas[i]
		default:
			rest = append(rest, ssas[i])
		}
	}
	if parentQ == nil && childQ == nil {
		return ssas, true // path never walks the reordered pair
	}
	target := ssas[len(ssas)-1].Segment

	if fn == "GNP" {
		c.flagAt(step.reorder.Name(), analyzer.UnmatchedTemplate,
			"GNP %s enumerates under a parent the reorder inverted (%s was the root, %s its child)",
			target, oldRoot, promote)
		return nil, false
	}
	switch target {
	case oldRoot:
		// Parent-targeted: restate the path in the new order, entering
		// through the child unqualified when the call never named it.
		out := make([]dbprog.SSASpec, 0, len(ssas)+1)
		if childQ != nil {
			out = append(out, *childQ)
		} else {
			out = append(out, dbprog.SSASpec{Segment: promote})
		}
		out = append(out, *parentQ)
		out = append(out, rest...)
		c.rewrote("dli-path", fmt.Sprintf("%s %s: path restated %s under %s", fn, oldRoot, oldRoot, promote))
		return out, true
	case promote:
		if parentQ != nil && parentQ.Field != "" {
			// The qualification now names a descendant, which no single SSA
			// path can express — the §2.1.2 emulation overhead.
			c.flagAt(step.reorder.Name(), analyzer.UnmatchedTemplate,
				"%s %s qualified on %s.%s requires the emulated command sequence (descendant qualification)",
				fn, promote, oldRoot, parentQ.Field)
			return nil, false
		}
		// The old-root ancestor SSA, when present, was unqualified — drop
		// it: the promoted segment is now the root.
		out := make([]dbprog.SSASpec, 0, len(ssas))
		if childQ != nil {
			out = append(out, *childQ)
		} else {
			out = append(out, dbprog.SSASpec{Segment: promote})
		}
		out = append(out, rest...)
		if parentQ != nil {
			c.rewrote("dli-path", fmt.Sprintf("%s %s: ancestor %s dropped; %s is the root", fn, promote, oldRoot, promote))
		}
		return out, true
	default:
		// The path walks through the reordered pair to some other segment;
		// no such shape exists in the two-level catalogue's schemas.
		c.flagAt(step.reorder.Name(), analyzer.UnmatchedTemplate,
			"%s %s walks through reordered segments %s/%s; manual review required", fn, target, oldRoot, promote)
		return nil, false
	}
}

func (c *hierConverter) insert(s dbprog.DLIInsert) dbprog.Stmt {
	for _, step := range c.steps {
		oldRoot, promote := step.oldRoot, step.reorder.Promote
		touches := s.Record == oldRoot || s.Record == promote
		for _, u := range s.Under {
			if u.Segment == oldRoot || u.Segment == promote {
				touches = true
			}
		}
		if touches {
			// An insert fixes its occurrence's parentage; after the reorder
			// one logical insert may fan out to several physical ones (a
			// parent copy beneath every promoted child).
			c.flagAt(step.reorder.Name(), analyzer.UnmatchedTemplate,
				"ISRT %s places an occurrence under parentage the reorder inverted; manual review required", s.Record)
			return s
		}
	}
	return s
}
