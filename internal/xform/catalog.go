package xform

import (
	"fmt"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// rebuildFns parameterizes the generic data translator.
type rebuildFns struct {
	// mapType returns the destination record type ("" = drop the record).
	mapType func(srcType string) string
	// mapData transforms a stored record (never nil; identity by default).
	mapData func(srcType string, data *value.Record) *value.Record
	// mapSet returns the destination set for a source membership
	// ("" = drop the membership).
	mapSet func(srcSet string) string
}

// rebuild copies src into a fresh database under dst, applying the
// mapping functions. Record types are processed owners-first so that
// destination memberships can be wired as occurrences appear.
func rebuild(src *netstore.DB, dst *schema.Network, f rebuildFns) (*netstore.DB, error) {
	out := netstore.NewDB(dst)
	idMap := map[netstore.RecordID]netstore.RecordID{}
	srcSchema := src.Schema()
	for _, srcType := range topoRecordOrder(srcSchema) {
		dstType := srcType
		if f.mapType != nil {
			dstType = f.mapType(srcType)
		}
		if dstType == "" {
			continue
		}
		memberSets := srcSchema.SetsWithMember(srcType)
		var visitErr error
		// EachOf iterates src without copying; only out is mutated here,
		// so the no-mutation-during-visit contract holds.
		src.EachOf(srcType, func(id netstore.RecordID) bool {
			data := src.StoredData(id)
			if f.mapData != nil {
				data = f.mapData(srcType, data)
			}
			memberships := map[string]netstore.RecordID{}
			for _, set := range memberSets {
				owner, connected := src.OwnerOf(set.Name, id)
				if !connected {
					continue
				}
				dstSet := set.Name
				if f.mapSet != nil {
					dstSet = f.mapSet(set.Name)
				}
				if dstSet == "" {
					continue
				}
				if set.IsSystem() {
					memberships[dstSet] = netstore.OwnerSystem
				} else {
					dstOwner, ok := idMap[owner]
					if !ok {
						visitErr = fmt.Errorf("xform: %s occurrence's owner in %s not yet migrated", srcType, set.Name)
						return false
					}
					memberships[dstSet] = dstOwner
				}
			}
			nid, err := out.StoreWith(dstType, data, memberships)
			if err != nil {
				visitErr = err
				return false
			}
			idMap[id] = nid
			return true
		})
		if visitErr != nil {
			return nil, visitErr
		}
	}
	return out, nil
}

// ---- RenameRecord ----

// RenameRecord renames a record type.
type RenameRecord struct{ Old, New string }

// Name implements Transformation.
func (t RenameRecord) Name() string { return "rename-record" }

// Describe implements Transformation.
func (t RenameRecord) Describe() string { return fmt.Sprintf("record %s becomes %s", t.Old, t.New) }

// Invertible implements Transformation.
func (t RenameRecord) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t RenameRecord) ApplySchema(src *schema.Network) (*schema.Network, error) {
	if src.Record(t.Old) == nil {
		return nil, fmt.Errorf("no record type %s", t.Old)
	}
	if src.Record(t.New) != nil {
		return nil, fmt.Errorf("record type %s already exists", t.New)
	}
	out := src.Clone()
	out.Record(t.Old).Name = t.New
	for _, s := range out.Sets {
		if s.Owner == t.Old {
			s.Owner = t.New
		}
		if s.Member == t.Old {
			s.Member = t.New
		}
	}
	return out, out.Validate()
}

// fuseFns implements fusible.
func (t RenameRecord) fuseFns() rebuildFns {
	return rebuildFns{mapType: func(s string) string {
		if s == t.Old {
			return t.New
		}
		return s
	}}
}

// MigrateData implements Transformation.
func (t RenameRecord) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, t.fuseFns())
}

// Rewriter implements Transformation.
func (t RenameRecord) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	r.Record[t.Old] = t.New
	return r, nil
}

// ---- RenameField ----

// RenameField renames a field of a record type, updating set keys and
// virtual sources that mention it.
type RenameField struct{ Record, Old, New string }

// Name implements Transformation.
func (t RenameField) Name() string { return "rename-field" }

// Describe implements Transformation.
func (t RenameField) Describe() string {
	return fmt.Sprintf("%s.%s becomes %s", t.Record, t.Old, t.New)
}

// Invertible implements Transformation.
func (t RenameField) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t RenameField) ApplySchema(src *schema.Network) (*schema.Network, error) {
	rec := src.Record(t.Record)
	if rec == nil {
		return nil, fmt.Errorf("no record type %s", t.Record)
	}
	if rec.Field(t.Old) == nil {
		return nil, fmt.Errorf("%s has no field %s", t.Record, t.Old)
	}
	if rec.Field(t.New) != nil {
		return nil, fmt.Errorf("%s already has field %s", t.Record, t.New)
	}
	out := src.Clone()
	out.Record(t.Record).Field(t.Old).Name = t.New
	for _, s := range out.Sets {
		if s.Member == t.Record {
			for i, k := range s.Keys {
				if k == t.Old {
					s.Keys[i] = t.New
				}
			}
		}
	}
	for _, r := range out.Records {
		for i := range r.Fields {
			v := r.Fields[i].Virtual
			if v == nil {
				continue
			}
			set := out.Set(v.ViaSet)
			if set != nil && set.Owner == t.Record && v.Using == t.Old {
				v.Using = t.New
			}
		}
	}
	return out, out.Validate()
}

// fuseFns implements fusible.
func (t RenameField) fuseFns() rebuildFns {
	return rebuildFns{mapData: func(typ string, data *value.Record) *value.Record {
		if typ == t.Record {
			data.Rename(t.Old, t.New)
		}
		return data
	}}
}

// MigrateData implements Transformation.
func (t RenameField) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, t.fuseFns())
}

// Rewriter implements Transformation.
func (t RenameField) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	r.Field[[2]string{t.Record, t.Old}] = [2]string{t.Record, t.New}
	return r, nil
}

// ---- RenameSet ----

// RenameSet renames a set type.
type RenameSet struct{ Old, New string }

// Name implements Transformation.
func (t RenameSet) Name() string { return "rename-set" }

// Describe implements Transformation.
func (t RenameSet) Describe() string { return fmt.Sprintf("set %s becomes %s", t.Old, t.New) }

// Invertible implements Transformation.
func (t RenameSet) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t RenameSet) ApplySchema(src *schema.Network) (*schema.Network, error) {
	if src.Set(t.Old) == nil {
		return nil, fmt.Errorf("no set type %s", t.Old)
	}
	if src.Set(t.New) != nil {
		return nil, fmt.Errorf("set type %s already exists", t.New)
	}
	out := src.Clone()
	out.Set(t.Old).Name = t.New
	for _, r := range out.Records {
		for i := range r.Fields {
			if v := r.Fields[i].Virtual; v != nil && v.ViaSet == t.Old {
				v.ViaSet = t.New
			}
		}
	}
	return out, out.Validate()
}

// fuseFns implements fusible.
func (t RenameSet) fuseFns() rebuildFns {
	return rebuildFns{mapSet: func(s string) string {
		if s == t.Old {
			return t.New
		}
		return s
	}}
}

// MigrateData implements Transformation.
func (t RenameSet) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, t.fuseFns())
}

// Rewriter implements Transformation.
func (t RenameSet) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	r.Set[t.Old] = t.New
	return r, nil
}

// ---- AddField ----

// AddField adds a stored field with a constant default. Its inverse is
// DropField, so it is invertible in Housel's sense only because the
// default carries no information.
type AddField struct {
	Record  string
	Field   string
	Kind    value.Kind
	Default value.Value
}

// Name implements Transformation.
func (t AddField) Name() string { return "add-field" }

// Describe implements Transformation.
func (t AddField) Describe() string {
	return fmt.Sprintf("%s gains field %s %v (default %s)", t.Record, t.Field, t.Kind, t.Default)
}

// Invertible implements Transformation.
func (t AddField) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t AddField) ApplySchema(src *schema.Network) (*schema.Network, error) {
	rec := src.Record(t.Record)
	if rec == nil {
		return nil, fmt.Errorf("no record type %s", t.Record)
	}
	if rec.Field(t.Field) != nil {
		return nil, fmt.Errorf("%s already has field %s", t.Record, t.Field)
	}
	out := src.Clone()
	r := out.Record(t.Record)
	r.Fields = append(r.Fields, schema.Field{Name: t.Field, Kind: t.Kind})
	return out, out.Validate()
}

// fuseFns implements fusible.
func (t AddField) fuseFns() rebuildFns {
	return rebuildFns{mapData: func(typ string, data *value.Record) *value.Record {
		if typ == t.Record {
			data.Set(t.Field, t.Default)
		}
		return data
	}}
}

// MigrateData implements Transformation.
func (t AddField) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, t.fuseFns())
}

// Rewriter implements Transformation.
func (t AddField) Rewriter(src *schema.Network) (*Rewriter, error) {
	return NewRewriter(), nil
}

// ---- DropField ----

// DropField removes a stored field. Information is lost, so the
// transformation is not invertible and programs that reference the field
// cannot be converted (§2.2, Housel's restriction; §5.2's warning case).
type DropField struct{ Record, Field string }

// Name implements Transformation.
func (t DropField) Name() string { return "drop-field" }

// Describe implements Transformation.
func (t DropField) Describe() string { return fmt.Sprintf("%s loses field %s", t.Record, t.Field) }

// Invertible implements Transformation.
func (t DropField) Invertible() bool { return false }

// ApplySchema implements Transformation.
func (t DropField) ApplySchema(src *schema.Network) (*schema.Network, error) {
	rec := src.Record(t.Record)
	if rec == nil {
		return nil, fmt.Errorf("no record type %s", t.Record)
	}
	if rec.Field(t.Field) == nil {
		return nil, fmt.Errorf("%s has no field %s", t.Record, t.Field)
	}
	for _, s := range src.Sets {
		if s.Member == t.Record {
			for _, k := range s.Keys {
				if k == t.Field {
					return nil, fmt.Errorf("field %s.%s is a key of set %s", t.Record, t.Field, s.Name)
				}
			}
		}
	}
	for _, r := range src.Records {
		for i := range r.Fields {
			v := r.Fields[i].Virtual
			if v == nil {
				continue
			}
			set := src.Set(v.ViaSet)
			if set != nil && set.Owner == t.Record && v.Using == t.Field {
				return nil, fmt.Errorf("field %s.%s sources virtual %s.%s", t.Record, t.Field, r.Name, r.Fields[i].Name)
			}
		}
	}
	out := src.Clone()
	r := out.Record(t.Record)
	for i := range r.Fields {
		if r.Fields[i].Name == t.Field {
			r.Fields = append(r.Fields[:i], r.Fields[i+1:]...)
			break
		}
	}
	return out, out.Validate()
}

// fuseFns implements fusible.
func (t DropField) fuseFns() rebuildFns {
	return rebuildFns{mapData: func(typ string, data *value.Record) *value.Record {
		if typ == t.Record {
			data.Delete(t.Field)
		}
		return data
	}}
}

// MigrateData implements Transformation.
func (t DropField) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, t.fuseFns())
}

// Rewriter implements Transformation.
func (t DropField) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	r.Dropped = append(r.Dropped, [2]string{t.Record, t.Field})
	return r, nil
}

// ---- ChangeSetKeys ----

// ChangeSetKeys changes a set's ordering keys. No information moves, but
// member enumeration order changes: the §3.2 order-dependence hazard in
// transformation form.
type ChangeSetKeys struct {
	Set  string
	Keys []string
}

// Name implements Transformation.
func (t ChangeSetKeys) Name() string { return "change-set-keys" }

// Describe implements Transformation.
func (t ChangeSetKeys) Describe() string {
	return fmt.Sprintf("set %s reordered on %v", t.Set, t.Keys)
}

// Invertible implements Transformation.
func (t ChangeSetKeys) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t ChangeSetKeys) ApplySchema(src *schema.Network) (*schema.Network, error) {
	if src.Set(t.Set) == nil {
		return nil, fmt.Errorf("no set type %s", t.Set)
	}
	out := src.Clone()
	out.Set(t.Set).Keys = append([]string(nil), t.Keys...)
	return out, out.Validate()
}

// fuseFns implements fusible. The reordering itself happens in
// StoreWith under the destination schema's keys, so the mapping is the
// identity.
func (t ChangeSetKeys) fuseFns() rebuildFns { return rebuildFns{} }

// MigrateData implements Transformation.
func (t ChangeSetKeys) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, rebuildFns{})
}

// Rewriter implements Transformation.
func (t ChangeSetKeys) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	old := src.Set(t.Set)
	if old == nil {
		return nil, fmt.Errorf("no set type %s", t.Set)
	}
	r.OrderChanged[t.Set] = append([]string(nil), old.Keys...)
	return r, nil
}

// ---- ChangeRetention ----

// ChangeRetention flips a set's retention mode. The structure is
// untouched but behaviour changes (ERASE cascades appear or disappear),
// which is exactly the §5.2 "not strictly equivalent but desired"
// situation; the rewriter records it as a note.
type ChangeRetention struct {
	Set       string
	Retention schema.Retention
}

// Name implements Transformation.
func (t ChangeRetention) Name() string { return "change-retention" }

// Describe implements Transformation.
func (t ChangeRetention) Describe() string {
	return fmt.Sprintf("set %s retention becomes %v", t.Set, t.Retention)
}

// Invertible implements Transformation.
func (t ChangeRetention) Invertible() bool { return true }

// ApplySchema implements Transformation.
func (t ChangeRetention) ApplySchema(src *schema.Network) (*schema.Network, error) {
	if src.Set(t.Set) == nil {
		return nil, fmt.Errorf("no set type %s", t.Set)
	}
	out := src.Clone()
	out.Set(t.Set).Retention = t.Retention
	return out, out.Validate()
}

// fuseFns implements fusible: retention is schema-only, the data
// mapping is the identity.
func (t ChangeRetention) fuseFns() rebuildFns { return rebuildFns{} }

// MigrateData implements Transformation.
func (t ChangeRetention) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	return rebuild(src, dst, rebuildFns{})
}

// Rewriter implements Transformation.
func (t ChangeRetention) Rewriter(src *schema.Network) (*Rewriter, error) {
	r := NewRewriter()
	r.Notes = append(r.Notes, fmt.Sprintf(
		"set %s retention changed to %v: ERASE cascade behaviour differs; converted programs preserve I/O but not database side effects",
		t.Set, t.Retention))
	return r, nil
}
