// Package xform is the transformation catalog of the conversion
// framework: each Transformation bundles the four aspects the paper's
// architecture needs from a schema change —
//
//  1. the schema mapping (Conversion Analyzer input),
//  2. the induced data restructuring (the data translation the paper
//     cites as prior art: EXPRESS, the Michigan translator),
//  3. the program-conversion rewrite rules (Program Converter input),
//  4. invertibility, Housel's precondition: "the assumption of the
//     existence of inverse operators restricts the scope of the
//     conversion problem".
//
// A Plan chains transformations; Classify infers a Plan from a source and
// target schema pair, flagging anything it cannot explain for the
// Conversion Analyst.
package xform

import (
	"fmt"
	"strings"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/value"
)

// PathSplit records that one set was replaced by an
// owner→intermediate→member chain (the Figure 4.2→4.4 change), with
// everything the program rewriter needs.
type PathSplit struct {
	Upper      string   // new owner→intermediate set
	Inter      string   // intermediate record type
	GroupField string   // field identifying the intermediate
	Lower      string   // new intermediate→member set
	Member     string   // the member record type of the replaced set
	Owner      string   // the owner record type of the replaced set
	OldKeys    []string // the replaced set's ordering keys
}

// PathMerge records that an owner→intermediate→member chain was
// collapsed into one set.
type PathMerge struct {
	Upper  string // removed owner→intermediate set
	Inter  string // removed intermediate record type
	Lower  string // removed intermediate→member set
	NewSet string // restored owner→member set
}

// Rewriter holds one transformation's program-conversion mapping rules.
// The Program Converter composes these across a Plan.
type Rewriter struct {
	// Record maps renamed record types (old → new).
	Record map[string]string
	// Field maps relocated or renamed fields: {record, field} → {record, field}.
	Field map[[2]string][2]string
	// Set maps renamed set types.
	Set map[string]string
	// Splits maps a removed set to its replacement chain.
	Splits map[string]PathSplit
	// Merges lists chains collapsed into a single set (the inverse of a
	// split).
	Merges []PathMerge
	// Dropped lists {record, field} pairs that no longer exist in any
	// form; programs referencing them are not convertible.
	Dropped [][2]string
	// OrderChanged maps sets whose member enumeration order changed to
	// the old ordering keys (programs depending on the order need SORT).
	OrderChanged map[string][]string
	// Notes records behavioural changes that preserve structure but not
	// strict equivalence (§5.2's levels of successful conversion), e.g. a
	// retention change.
	Notes []string
	// Step is the catalogue name of the plan step this rewriter came
	// from (set by Plan.Rewriters), so converter findings can attribute
	// themselves in the decision audit trail.
	Step string
}

// NewRewriter returns an empty rewriter (identity mapping).
func NewRewriter() *Rewriter {
	return &Rewriter{
		Record:       map[string]string{},
		Field:        map[[2]string][2]string{},
		Set:          map[string]string{},
		Splits:       map[string]PathSplit{},
		OrderChanged: map[string][]string{},
	}
}

// MapRecord returns the new name of a record type.
func (r *Rewriter) MapRecord(name string) string {
	if n, ok := r.Record[name]; ok {
		return n
	}
	return name
}

// MapSet returns the new name of a set type ("" if the set was split
// away and has no single successor).
func (r *Rewriter) MapSet(name string) (string, bool) {
	if _, split := r.Splits[name]; split {
		return "", false
	}
	if n, ok := r.Set[name]; ok {
		return n, true
	}
	return name, true
}

// MapField returns the new home of a field.
func (r *Rewriter) MapField(record, field string) (string, string) {
	if nf, ok := r.Field[[2]string{record, field}]; ok {
		return nf[0], nf[1]
	}
	return r.MapRecord(record), field
}

// IsDropped reports whether the field was dropped outright.
func (r *Rewriter) IsDropped(record, field string) bool {
	for _, d := range r.Dropped {
		if d[0] == record && d[1] == field {
			return true
		}
	}
	return false
}

// RewriteHops maps a network access path through the transformation:
// renames, split expansion (a downward hop through a split set becomes
// two downward hops; upward reverses), and merge contraction (a chain's
// two hops collapse into one).
func (r *Rewriter) RewriteHops(hops []semantic.Hop) []semantic.Hop {
	var out []semantic.Hop
	for i := 0; i < len(hops); i++ {
		h := hops[i]
		if sp, ok := r.Splits[h.Set]; ok {
			if h.Down {
				out = append(out,
					semantic.Hop{Set: sp.Upper, Down: true},
					semantic.Hop{Set: sp.Lower, Down: true})
			} else {
				out = append(out,
					semantic.Hop{Set: sp.Lower, Down: false},
					semantic.Hop{Set: sp.Upper, Down: false})
			}
			continue
		}
		merged := false
		for _, m := range r.Merges {
			if i+1 < len(hops) {
				next := hops[i+1]
				if h.Down && next.Down && h.Set == m.Upper && next.Set == m.Lower {
					out = append(out, semantic.Hop{Set: m.NewSet, Down: true})
					i++
					merged = true
					break
				}
				if !h.Down && !next.Down && h.Set == m.Lower && next.Set == m.Upper {
					out = append(out, semantic.Hop{Set: m.NewSet, Down: false})
					i++
					merged = true
					break
				}
			}
		}
		if merged {
			continue
		}
		name, _ := r.MapSet(h.Set)
		out = append(out, semantic.Hop{Set: name, Down: h.Down})
	}
	return out
}

// Transformation is one catalogued schema transformation over the
// network model.
type Transformation interface {
	// Name is the catalogue identifier.
	Name() string
	// Describe renders the transformation for conversion reports.
	Describe() string
	// Invertible reports whether an inverse data mapping exists.
	Invertible() bool
	// ApplySchema produces the transformed schema.
	ApplySchema(src *schema.Network) (*schema.Network, error)
	// MigrateData restructures a database instance into dst, which must
	// be ApplySchema's result.
	MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error)
	// Rewriter returns the program-conversion rules.
	Rewriter(src *schema.Network) (*Rewriter, error)
}

// Plan is an ordered sequence of transformations: the "definition of a
// restructuring" of the paper's problem statement.
type Plan struct {
	Steps []Transformation
}

// Describe renders the plan one transformation per line.
func (p *Plan) Describe() string {
	var b strings.Builder
	for i, t := range p.Steps {
		fmt.Fprintf(&b, "%d. %s: %s\n", i+1, t.Name(), t.Describe())
	}
	return b.String()
}

// Invertible reports whether every step admits an inverse data mapping.
func (p *Plan) Invertible() bool {
	for _, t := range p.Steps {
		if !t.Invertible() {
			return false
		}
	}
	return true
}

// ApplySchema chains the steps' schema mappings.
func (p *Plan) ApplySchema(src *schema.Network) (*schema.Network, error) {
	cur := src
	for _, t := range p.Steps {
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// fusible is the optional interface of catalogued transformations whose
// data restructuring is a pure per-record / per-membership mapping —
// exactly the functions they would hand to the generic rebuild. Runs of
// fusible steps compose into a single pass over the occurrences.
type fusible interface {
	fuseFns() rebuildFns
}

// FuseStats reports how a plan's data migration executed: how many
// steps were composed into fused single-pass runs, how many ran their
// own full-database pass, and the total passes made.
type FuseStats struct {
	FusedSteps    int
	StepwiseSteps int
	Passes        int
}

// MigrateData chains the steps' data restructurings, fusing maximal
// runs of per-record mapping steps into single passes. The result is
// identical to MigrateDataStepwise for every plan whose stepwise
// migration succeeds (a plan failing an intermediate-schema validity
// check mid-chain may fail differently fused).
func (p *Plan) MigrateData(src *netstore.DB) (*netstore.DB, error) {
	out, _, err := p.MigrateDataFused(src)
	return out, err
}

// MigrateDataFused is MigrateData with the fuse accounting exposed for
// observability and benchmarks.
func (p *Plan) MigrateDataFused(src *netstore.DB) (*netstore.DB, FuseStats, error) {
	var stats FuseStats
	cur := src
	curSchema := src.Schema()
	for i := 0; i < len(p.Steps); {
		// Extend a maximal run of fusible steps starting at i.
		j := i
		for j < len(p.Steps) {
			if _, ok := p.Steps[j].(fusible); !ok {
				break
			}
			j++
		}
		if j-i >= 2 {
			// Compose the run's mapping functions across the step chain
			// and rebuild once, directly into the run's final schema.
			finalSchema := curSchema
			chain := make([]rebuildFns, 0, j-i)
			for k := i; k < j; k++ {
				next, err := p.Steps[k].ApplySchema(finalSchema)
				if err != nil {
					return nil, stats, fmt.Errorf("xform: %s: %w", p.Steps[k].Name(), err)
				}
				chain = append(chain, p.Steps[k].(fusible).fuseFns())
				finalSchema = next
			}
			next, err := rebuild(cur, finalSchema, composeFns(chain))
			if err != nil {
				return nil, stats, fmt.Errorf("xform: fused steps %d..%d: %w", i+1, j, err)
			}
			stats.FusedSteps += j - i
			stats.Passes++
			cur, curSchema = next, finalSchema
			i = j
			continue
		}
		t := p.Steps[i]
		nextSchema, err := t.ApplySchema(curSchema)
		if err != nil {
			return nil, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		next, err := t.MigrateData(cur, nextSchema)
		if err != nil {
			return nil, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		stats.StepwiseSteps++
		stats.Passes++
		cur, curSchema = next, nextSchema
		i++
	}
	return cur, stats, nil
}

// MigrateDataStepwise chains the steps' data restructurings one
// full-database pass per step — the pre-fusion path, kept as the
// byte-identity oracle and benchmark baseline.
func (p *Plan) MigrateDataStepwise(src *netstore.DB) (*netstore.DB, error) {
	cur := src
	curSchema := src.Schema()
	for _, t := range p.Steps {
		nextSchema, err := t.ApplySchema(curSchema)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		next, err := t.MigrateData(cur, nextSchema)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		cur = next
		curSchema = nextSchema
	}
	return cur, nil
}

// composeFns chains mapping-function sets left to right. mapData sees
// the record under the type name it has at entry to that step, so
// renames and data edits interleave exactly as the stepwise passes
// would apply them.
func composeFns(chain []rebuildFns) rebuildFns {
	return rebuildFns{
		mapType: func(srcType string) string {
			cur := srcType
			for _, f := range chain {
				if f.mapType != nil {
					cur = f.mapType(cur)
					if cur == "" {
						return ""
					}
				}
			}
			return cur
		},
		mapData: func(srcType string, data *value.Record) *value.Record {
			cur := srcType
			for _, f := range chain {
				if f.mapData != nil {
					data = f.mapData(cur, data)
				}
				if f.mapType != nil {
					cur = f.mapType(cur)
				}
			}
			return data
		},
		mapSet: func(srcSet string) string {
			cur := srcSet
			for _, f := range chain {
				if f.mapSet != nil {
					cur = f.mapSet(cur)
					if cur == "" {
						return ""
					}
				}
			}
			return cur
		},
	}
}

// Rewriters returns the per-step rewrite rules against the schemas each
// step actually sees.
func (p *Plan) Rewriters(src *schema.Network) ([]*Rewriter, error) {
	cur := src
	var out []*Rewriter
	for _, t := range p.Steps {
		r, err := t.Rewriter(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		r.Step = t.Name()
		out = append(out, r)
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		cur = next
	}
	return out, nil
}

// topoRecordOrder orders record types so that every set owner precedes
// its members, which is the order the data translator must create
// occurrences in. Cycles (legal in CODASYL, rare) fall back to schema
// order after the acyclic prefix.
func topoRecordOrder(s *schema.Network) []string {
	indeg := map[string]int{}
	for _, r := range s.Records {
		indeg[r.Name] = 0
	}
	for _, t := range s.Sets {
		if t.IsSystem() || t.Owner == t.Member {
			continue
		}
		indeg[t.Member]++
	}
	var order []string
	placed := map[string]bool{}
	for len(order) < len(s.Records) {
		progressed := false
		for _, r := range s.Records {
			if placed[r.Name] || indeg[r.Name] != 0 {
				continue
			}
			placed[r.Name] = true
			order = append(order, r.Name)
			progressed = true
			for _, t := range s.Sets {
				if !t.IsSystem() && t.Owner == r.Name && t.Owner != t.Member && !placed[t.Member] {
					indeg[t.Member]--
				}
			}
		}
		if !progressed {
			for _, r := range s.Records {
				if !placed[r.Name] {
					placed[r.Name] = true
					order = append(order, r.Name)
				}
			}
		}
	}
	return order
}
