package xform

import (
	"fmt"

	"progconv/internal/hierstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// HierReorder is the Mehl & Wang transformation of §2.2: a change in the
// hierarchical order of an IMS structure. A child segment type is
// promoted to the root, its former parent becoming its child — the
// classic DEPT→EMP to EMP→DEPT inversion for a one-to-one-ish pairing,
// generalized here by duplicating the old parent beneath each promoted
// child. Old programs keep working through "command substitution rules"
// (RewriteSSAs).
type HierReorder struct {
	// Promote names the child segment type that becomes the new root.
	Promote string
}

// Name identifies the transformation.
func (t HierReorder) Name() string { return "hier-reorder" }

// Describe renders the transformation.
func (t HierReorder) Describe() string {
	return fmt.Sprintf("segment %s promoted to root; former root becomes its child", t.Promote)
}

// Invertible reports whether an inverse mapping exists: yes, the same
// reorder applied the other way, provided no occurrences were orphaned.
func (t HierReorder) Invertible() bool { return true }

// ApplySchema transforms the hierarchy. The promoted segment must be a
// direct child of the root in a two-level hierarchy (the shape Mehl &
// Wang's order transformations address call-by-call).
func (t HierReorder) ApplySchema(src *schema.Hierarchy) (*schema.Hierarchy, error) {
	root := src.Root
	if root == nil {
		return nil, fmt.Errorf("empty hierarchy")
	}
	var promoted *schema.Segment
	for _, c := range root.Children {
		if c.Name == t.Promote {
			promoted = c
		}
	}
	if promoted == nil {
		return nil, fmt.Errorf("%s is not a child of root %s", t.Promote, root.Name)
	}
	if len(promoted.Children) > 0 {
		return nil, fmt.Errorf("%s has children of its own; only leaf promotion is catalogued", t.Promote)
	}
	newRoot := promoted.Clone()
	oldRoot := root.Clone()
	var keptChildren []*schema.Segment
	for _, c := range oldRoot.Children {
		if c.Name != t.Promote {
			keptChildren = append(keptChildren, c)
		}
	}
	oldRoot.Children = keptChildren
	newRoot.Children = []*schema.Segment{oldRoot}
	out := &schema.Hierarchy{Name: src.Name, Root: newRoot}
	return out, out.Validate()
}

// MigrateData restructures the database: each promoted occurrence
// becomes a root, with a copy of its former parent beneath it. Parent
// occurrences with no promoted children are dropped (they are
// unreachable in the new order) — the migration reports them.
func (t HierReorder) MigrateData(src *hierstore.DB, dst *schema.Hierarchy) (*hierstore.DB, []string, error) {
	out := hierstore.NewDB(dst)
	sess := hierstore.NewSession(out)
	oldRootType := src.Schema().Root.Name
	var warnings []string
	newRootSeg := dst.Root
	for _, rootID := range src.Roots() {
		parentData := src.Data(rootID)
		children := src.ChildrenOf(rootID, t.Promote)
		if len(children) == 0 {
			warnings = append(warnings,
				fmt.Sprintf("%s %s has no %s occurrences and is unreachable after reorder",
					oldRootType, parentData.String(), t.Promote))
			continue
		}
		for _, cid := range children {
			cdata := src.Data(cid)
			st := sess.ISRT(cdata, hierstore.U(t.Promote))
			if st == hierstore.II {
				// The child already exists as a root (promoted from another
				// parent occurrence); the new root is shared.
				warnings = append(warnings,
					fmt.Sprintf("%s %s promoted once; parents merge beneath it", t.Promote, cdata.String()))
			} else if st != hierstore.OK {
				return nil, warnings, fmt.Errorf("migrating %s: ISRT status %v", t.Promote, st)
			}
			seqField := newRootSeg.Seq
			path := []hierstore.SSA{hierstore.U(t.Promote)}
			if seqField != "" {
				path = []hierstore.SSA{hierstore.Q(t.Promote, seqField, hierstore.EQ, cdata.MustGet(seqField))}
			}
			if st := sess.ISRT(parentData, append(path, hierstore.U(oldRootType))...); st != hierstore.OK {
				return nil, warnings, fmt.Errorf("migrating %s under %s: ISRT status %v", oldRootType, t.Promote, st)
			}
		}
	}
	return out, warnings, nil
}

// RewriteSSAs is the command substitution rule for calls whose target is
// the old root: an SSA path stated in the old order (PARENT, CHILD)
// becomes the new order (CHILD, PARENT) with the qualification payloads
// carried along. A call targeting the promoted child cannot be rewritten
// into a single SSA path — DL/I paths qualify ancestors, never
// descendants — and needs EmulateGU's command sequence instead, which is
// the very complication §2.1.2 attributes to the emulation strategy.
func (t HierReorder) RewriteSSAs(oldRootType string, ssas []hierstore.SSA) []hierstore.SSA {
	var parentQ, childQ *hierstore.SSA
	var rest []hierstore.SSA
	for i := range ssas {
		switch ssas[i].Segment {
		case oldRootType:
			parentQ = &ssas[i]
		case t.Promote:
			childQ = &ssas[i]
		default:
			rest = append(rest, ssas[i])
		}
	}
	var out []hierstore.SSA
	if childQ != nil {
		out = append(out, *childQ)
	}
	if parentQ != nil {
		if childQ == nil {
			// Target is the parent alone: in the new order it lives under
			// every promoted child, so the path must pass through the child
			// unqualified.
			out = append(out, hierstore.U(t.Promote))
		}
		out = append(out, *parentQ)
	}
	return append(out, rest...)
}

// EmulateGU executes an old-order GU against the reordered database by
// the substituted command sequence: when the call targets the promoted
// child with a parent qualification, the emulator sweeps the child roots
// and probes each one's parent copies with GNP until the qualification
// holds — Mehl & Wang's per-call evaluation, and the source of the
// emulation strategy's overhead.
func (t HierReorder) EmulateGU(sess *hierstore.Session, oldRootType string, path []hierstore.SSA) (*value.Record, hierstore.Status) {
	if len(path) == 0 {
		return sess.GU()
	}
	target := path[len(path)-1].Segment
	if target == oldRootType {
		// Parent-targeted calls rewrite to a direct path.
		return sess.GU(t.RewriteSSAs(oldRootType, path)...)
	}
	if target != t.Promote {
		return sess.GU(path...)
	}
	var childSSA, parentSSA *hierstore.SSA
	for i := range path {
		switch path[i].Segment {
		case t.Promote:
			childSSA = &path[i]
		case oldRootType:
			parentSSA = &path[i]
		}
	}
	childPath := hierstore.U(t.Promote)
	if childSSA != nil {
		childPath = *childSSA
	}
	rec, st := sess.GU(childPath)
	for st == hierstore.OK {
		if parentSSA == nil {
			return rec, hierstore.OK
		}
		if _, pst := sess.GNP(*parentSSA); pst == hierstore.OK {
			// Reposition on the child so the caller's currency matches the
			// original call's.
			return sess.GU(exactChildSSA(sess.DB().Schema().Root, rec, childPath))
		}
		rec, st = sess.GN(childPath)
	}
	return nil, hierstore.GE
}

// exactChildSSA pins a retrieved child record by its sequence field so a
// re-GU lands on the same occurrence.
func exactChildSSA(root *schema.Segment, rec *value.Record, fallback hierstore.SSA) hierstore.SSA {
	if root.Seq == "" {
		return fallback
	}
	return hierstore.Q(root.Name, root.Seq, hierstore.EQ, rec.MustGet(root.Seq))
}

// ReorderedValueEqual verifies migration fidelity field-by-field: every
// (parent, child) pair of the source appears as a (child, parent-copy)
// pair in the target. It returns the number of pairs checked.
func (t HierReorder) ReorderedValueEqual(src, dst *hierstore.DB) (int, error) {
	oldRootType := src.Schema().Root.Name
	pairs := 0
	for _, rootID := range src.Roots() {
		parentData := src.Data(rootID)
		for _, cid := range src.ChildrenOf(rootID, t.Promote) {
			cdata := src.Data(cid)
			found := false
			for _, nr := range dst.Roots() {
				if !dst.Data(nr).Equal(cdata) {
					continue
				}
				for _, pc := range dst.ChildrenOf(nr, oldRootType) {
					if dst.Data(pc).Equal(parentData) {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				return pairs, fmt.Errorf("pair (%s, %s) missing after reorder", parentData, cdata)
			}
			pairs++
		}
	}
	return pairs, nil
}
