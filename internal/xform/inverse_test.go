package xform

import (
	"errors"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

func TestInversePlanRoundTripsSchema(t *testing.T) {
	src := schema.CompanyV1()
	plan := &Plan{Steps: []Transformation{
		RenameRecord{Old: "EMP", New: "WORKER"},
		RenameField{Record: "WORKER", Old: "AGE", New: "YEARS"},
		RenameSet{Old: "DIV-EMP", New: "DIV-WORKER"},
		AddField{Record: "DIV", Field: "BUDGET", Kind: value.Int, Default: value.Of(0)},
		ChangeSetKeys{Set: "DIV-WORKER", Keys: []string{"YEARS"}},
		ChangeRetention{Set: "DIV-WORKER", Retention: schema.Optional},
	}}
	dst, err := plan.ApplySchema(src)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := plan.InversePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.ApplySchema(dst)
	if err != nil {
		t.Fatal(err)
	}
	if back.DDL() != src.DDL() {
		t.Errorf("round trip:\n%s\nwant:\n%s", back.DDL(), src.DDL())
	}
}

func TestInverseIntroduceCollapsePair(t *testing.T) {
	src := schema.CompanyV1()
	intro := IntroduceIntermediate{Set: "DIV-EMP", Inter: "DEPT",
		GroupField: "DEPT-NAME", Upper: "DIV-DEPT", Lower: "DEPT-EMP"}
	inv, err := Inverse(intro, src)
	if err != nil {
		t.Fatal(err)
	}
	col, ok := inv.(CollapseIntermediate)
	if !ok || col.NewSet != "DIV-EMP" || col.GroupField != "DEPT-NAME" {
		t.Errorf("inverse = %+v", inv)
	}
	v2, _ := intro.ApplySchema(src)
	inv2, err := Inverse(col, v2)
	if err != nil {
		t.Fatal(err)
	}
	intro2, ok := inv2.(IntroduceIntermediate)
	if !ok || intro2.Inter != "DEPT" || intro2.Set != "DIV-EMP" {
		t.Errorf("double inverse = %+v", inv2)
	}
}

func TestInversePlanRoundTripsData(t *testing.T) {
	src := companyV1DB(t)
	plan := &Plan{Steps: []Transformation{figure42to44()}}
	dst, err := plan.MigrateData(src)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := plan.InversePlan(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.MigrateData(dst)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count("EMP") != src.Count("EMP") || back.Count("DIV") != src.Count("DIV") {
		t.Error("data round trip lost records")
	}
	for _, id := range back.AllOf("EMP") {
		rec := back.Data(id)
		found := false
		for _, sid := range src.AllOf("EMP") {
			if src.Data(sid).Equal(rec) {
				found = true
			}
		}
		if !found {
			t.Errorf("EMP %v differs after data round trip", rec)
		}
	}
}

func TestInverseDropFieldFails(t *testing.T) {
	_, err := Inverse(DropField{Record: "EMP", Field: "AGE"}, schema.CompanyV1())
	if !errors.Is(err, ErrNotInvertible) {
		t.Errorf("drop-field inverse err = %v, want ErrNotInvertible", err)
	}
	plan := &Plan{Steps: []Transformation{DropField{Record: "EMP", Field: "AGE"}}}
	if _, err := plan.InversePlan(schema.CompanyV1()); !errors.Is(err, ErrNotInvertible) {
		t.Errorf("plan inverse err = %v, want ErrNotInvertible", err)
	}
}

func TestInverseErrorsOnMissingContext(t *testing.T) {
	if _, err := Inverse(ChangeSetKeys{Set: "NOPE"}, schema.CompanyV1()); err == nil {
		t.Error("unknown set in ChangeSetKeys inverse")
	}
	if _, err := Inverse(ChangeRetention{Set: "NOPE"}, schema.CompanyV1()); err == nil {
		t.Error("unknown set in ChangeRetention inverse")
	}
	if _, err := Inverse(CollapseIntermediate{Upper: "NOPE"}, schema.CompanyV1()); err == nil {
		t.Error("unknown upper in Collapse inverse")
	}
	bad := &Plan{Steps: []Transformation{RenameRecord{Old: "NOPE", New: "X"}}}
	if _, err := bad.InversePlan(schema.CompanyV1()); err == nil {
		t.Error("bad plan should fail inversion")
	}
}
