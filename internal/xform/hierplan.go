package xform

import (
	"fmt"
	"strings"

	"progconv/internal/hierstore"
	"progconv/internal/schema"
)

// HierPlan is an ordered sequence of hierarchical transformations — the
// DL/I counterpart of Plan. The catalogue currently holds one entry,
// the §2.2 hierarchical reorder, so steps are concrete HierReorder
// values rather than an interface: the program converter needs their
// command substitution rules (RewriteSSAs, EmulateGU) directly.
type HierPlan struct {
	Steps []HierReorder
}

// Describe renders the plan one transformation per line, in the same
// numbered format as Plan.Describe.
func (p *HierPlan) Describe() string {
	var b strings.Builder
	for i, t := range p.Steps {
		fmt.Fprintf(&b, "%d. %s: %s\n", i+1, t.Name(), t.Describe())
	}
	return b.String()
}

// Invertible reports whether every step admits an inverse data mapping.
func (p *HierPlan) Invertible() bool {
	for _, t := range p.Steps {
		if !t.Invertible() {
			return false
		}
	}
	return true
}

// ApplySchema chains the steps' schema mappings.
func (p *HierPlan) ApplySchema(src *schema.Hierarchy) (*schema.Hierarchy, error) {
	cur := src
	for _, t := range p.Steps {
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// MigrateData chains the steps' data restructurings and accumulates
// their warnings (dropped unreachable occurrences, merged roots).
// Hierarchical migrations are not fused: every catalogued step reorders
// parentage, which is inherently a full restructuring pass.
func (p *HierPlan) MigrateData(src *hierstore.DB) (*hierstore.DB, []string, error) {
	cur := src
	curSchema := src.Schema()
	var warnings []string
	for _, t := range p.Steps {
		nextSchema, err := t.ApplySchema(curSchema)
		if err != nil {
			return nil, warnings, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		next, warns, err := t.MigrateData(cur, nextSchema)
		warnings = append(warnings, warns...)
		if err != nil {
			return nil, warnings, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		cur, curSchema = next, nextSchema
	}
	if cur == src {
		// Identity plan: hand back a clone so the "migrated" database
		// never aliases the caller's source.
		return src.Clone(), warnings, nil
	}
	return cur, warnings, nil
}

// ClassifyHier is the Conversion Analyzer over the hierarchical model:
// it compares source and target hierarchies and produces a HierPlan
// drawn from the catalogue. Identical hierarchies classify to the empty
// plan; a target reachable by promoting one direct leaf child of the
// source root classifies to that reorder. Anything else is the
// situation an interactive Conversion Analyst must resolve with an
// explicit plan.
func ClassifyHier(src, dst *schema.Hierarchy) (*HierPlan, error) {
	if src == nil || src.Root == nil || dst == nil || dst.Root == nil {
		return nil, fmt.Errorf("xform: classify: empty hierarchy")
	}
	if src.DDL() == dst.DDL() {
		return &HierPlan{}, nil
	}
	for _, c := range src.Root.Children {
		if c.Name != dst.Root.Name || len(c.Children) > 0 {
			continue
		}
		t := HierReorder{Promote: c.Name}
		out, err := t.ApplySchema(src)
		if err != nil {
			continue
		}
		if out.DDL() == dst.DDL() {
			return &HierPlan{Steps: []HierReorder{t}}, nil
		}
	}
	return nil, fmt.Errorf("xform: cannot classify hierarchy change %s -> %s: not a catalogued reorder (supply an explicit plan)",
		src.Root.Name, dst.Root.Name)
}
