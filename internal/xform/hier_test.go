package xform

import (
	"strings"
	"testing"

	"progconv/internal/hierstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func personnelHierDB(t *testing.T) *hierstore.DB {
	t.Helper()
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	for _, d := range []struct{ d, n, m string }{
		{"D12", "ACCT", "SMITH"}, {"D2", "SALES", "JONES"}, {"D9", "EMPTY", "NOONE"},
	} {
		s.ISRT(value.FromPairs("D#", d.d, "DNAME", d.n, "MGR", d.m), hierstore.U("DEPT"))
	}
	for _, e := range []struct {
		dept, e, n string
		age, yos   int
	}{
		{"D12", "E1", "BAKER", 28, 3},
		{"D12", "E3", "ADAMS", 45, 12},
		{"D2", "E2", "CLARK", 33, 3},
	} {
		s.ISRT(value.FromPairs("E#", e.e, "ENAME", e.n, "AGE", e.age, "YEAR-OF-SERVICE", e.yos),
			hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str(e.dept)), hierstore.U("EMP"))
	}
	return db
}

func TestHierReorderSchema(t *testing.T) {
	tr := HierReorder{Promote: "EMP"}
	out, err := tr.ApplySchema(schema.EmpDeptHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Name != "EMP" {
		t.Errorf("new root = %s", out.Root.Name)
	}
	if len(out.Root.Children) != 1 || out.Root.Children[0].Name != "DEPT" {
		t.Errorf("children = %v", out.Root.Children)
	}
	if !tr.Invertible() {
		t.Error("reorder is invertible")
	}
	if !strings.Contains(tr.Describe(), "EMP") || tr.Name() != "hier-reorder" {
		t.Error("naming")
	}
}

func TestHierReorderSchemaErrors(t *testing.T) {
	tr := HierReorder{Promote: "NOPE"}
	if _, err := tr.ApplySchema(schema.EmpDeptHierarchy()); err == nil {
		t.Error("unknown segment")
	}
	if _, err := tr.ApplySchema(&schema.Hierarchy{Name: "E"}); err == nil {
		t.Error("empty hierarchy")
	}
	deep := schema.EmpDeptHierarchy()
	deep.Root.Children[0].Children = []*schema.Segment{
		{Name: "SKILL", Fields: []schema.Field{{Name: "S", Kind: value.String}}},
	}
	if _, err := (HierReorder{Promote: "EMP"}).ApplySchema(deep); err == nil {
		t.Error("non-leaf promotion")
	}
}

func TestHierReorderMigration(t *testing.T) {
	src := personnelHierDB(t)
	tr := HierReorder{Promote: "EMP"}
	dstSchema, err := tr.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	dst, warnings, err := tr.MigrateData(src, dstSchema)
	if err != nil {
		t.Fatal(err)
	}
	// D9 had no employees: unreachable, warned about.
	if len(warnings) != 1 || !strings.Contains(warnings[0], "D9") {
		t.Errorf("warnings = %v", warnings)
	}
	if dst.Count("EMP") != 3 || dst.Count("DEPT") != 3 {
		t.Errorf("counts: EMP=%d DEPT=%d", dst.Count("EMP"), dst.Count("DEPT"))
	}
	pairs, err := tr.ReorderedValueEqual(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 3 {
		t.Errorf("checked %d pairs", pairs)
	}
}

func TestHierReorderSSARewrite(t *testing.T) {
	tr := HierReorder{Promote: "EMP"}
	// Old-order path DEPT(D#='D12'), EMP(E#='E1') → EMP(E#='E1'), DEPT(D#='D12').
	old := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D12")),
		hierstore.Q("EMP", "E#", hierstore.EQ, value.Str("E1")),
	}
	got := tr.RewriteSSAs("DEPT", old)
	if len(got) != 2 || got[0].Segment != "EMP" || got[1].Segment != "DEPT" {
		t.Errorf("rewritten = %v", got)
	}
	// Parent-only path gains an unqualified child step.
	pOnly := tr.RewriteSSAs("DEPT", []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D12")),
	})
	if len(pOnly) != 2 || pOnly[0].Segment != "EMP" || len(pOnly[0].Quals) != 0 || pOnly[1].Segment != "DEPT" {
		t.Errorf("parent-only = %v", pOnly)
	}
	// Child-only path is unchanged in content.
	cOnly := tr.RewriteSSAs("DEPT", []hierstore.SSA{
		hierstore.Q("EMP", "E#", hierstore.EQ, value.Str("E1")),
	})
	if len(cOnly) != 1 || cOnly[0].Segment != "EMP" {
		t.Errorf("child-only = %v", cOnly)
	}
}

// TestHierReorderEndToEnd is the Mehl & Wang result: a program's queries,
// rewritten by the command substitution rule, return the same answers on
// the reordered database.
func TestHierReorderEndToEnd(t *testing.T) {
	src := personnelHierDB(t)
	tr := HierReorder{Promote: "EMP"}
	dstSchema, _ := tr.ApplySchema(src.Schema())
	dst, _, err := tr.MigrateData(src, dstSchema)
	if err != nil {
		t.Fatal(err)
	}

	oldSess := hierstore.NewSession(src)
	newSess := hierstore.NewSession(dst)

	oldPath := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D12")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.EQ, value.Of(3)),
	}
	oldRec, oldSt := oldSess.GU(oldPath...)
	newRec, newSt := tr.EmulateGU(newSess, "DEPT", oldPath)
	if oldSt != hierstore.OK || newSt != hierstore.OK {
		t.Fatalf("statuses %v %v", oldSt, newSt)
	}
	if oldRec.MustGet("ENAME").AsString() != newRec.MustGet("ENAME").AsString() {
		t.Errorf("answers differ: %v vs %v", oldRec, newRec)
	}
	// A parent-targeted call rewrites to a single path.
	pPath := []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D2")),
	}
	oldP, _ := oldSess.GU(pPath...)
	newP, pst := tr.EmulateGU(newSess, "DEPT", pPath)
	if pst != hierstore.OK || !oldP.Equal(newP) {
		t.Errorf("parent target: %v vs %v (%v)", oldP, newP, pst)
	}
	// A miss stays a miss.
	if _, st := tr.EmulateGU(newSess, "DEPT", []hierstore.SSA{
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D12")),
		hierstore.Q("EMP", "YEAR-OF-SERVICE", hierstore.EQ, value.Of(99)),
	}); st != hierstore.GE {
		t.Errorf("miss status = %v", st)
	}

	// Sweep: every EMP reachable in both orders.
	count := func(s *hierstore.Session, ssas ...hierstore.SSA) int {
		s.Reset()
		n := 0
		for {
			_, st := s.GN(ssas...)
			if st != hierstore.OK {
				return n
			}
			n++
		}
	}
	if a, b := count(oldSess, hierstore.U("EMP")), count(newSess, hierstore.U("EMP")); a != b {
		t.Errorf("EMP sweep: %d vs %d", a, b)
	}
}

func TestHierReorderSharedChildMerges(t *testing.T) {
	// Two departments share an employee number: after promotion the roots
	// merge and both parents hang beneath.
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	s.ISRT(value.FromPairs("D#", "D1", "DNAME", "A", "MGR", "M"), hierstore.U("DEPT"))
	s.ISRT(value.FromPairs("D#", "D2", "DNAME", "B", "MGR", "N"), hierstore.U("DEPT"))
	shared := value.FromPairs("E#", "E1", "ENAME", "X", "AGE", 1, "YEAR-OF-SERVICE", 1)
	s.ISRT(shared, hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D1")), hierstore.U("EMP"))
	s.ISRT(shared, hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D2")), hierstore.U("EMP"))

	tr := HierReorder{Promote: "EMP"}
	dstSchema, _ := tr.ApplySchema(db.Schema())
	dst, warnings, err := tr.MigrateData(db, dstSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "merge") {
		t.Errorf("warnings = %v", warnings)
	}
	if dst.Count("EMP") != 1 || dst.Count("DEPT") != 2 {
		t.Errorf("counts: EMP=%d DEPT=%d", dst.Count("EMP"), dst.Count("DEPT"))
	}
}
