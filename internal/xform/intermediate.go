package xform

import (
	"fmt"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// IntroduceIntermediate is the paper's Figure 4.2 → Figure 4.4
// transformation: a set OWNER→MEMBER is replaced by a chain
// OWNER→INTER→MEMBER, where the new intermediate record type is
// identified by a field lifted out of the member (DEPT, identified by
// DEPT-NAME, between DIV and EMP). The member keeps the lifted field and
// any owner-sourced virtuals as virtual fields through the new chain, so
// the logical member record is unchanged.
type IntroduceIntermediate struct {
	Set        string // the set to split (DIV-EMP)
	Inter      string // new intermediate record type (DEPT)
	GroupField string // member field identifying the intermediate (DEPT-NAME)
	Upper      string // new owner→intermediate set (DIV-DEPT)
	Lower      string // new intermediate→member set (DEPT-EMP)
}

// Name implements Transformation.
func (t IntroduceIntermediate) Name() string { return "introduce-intermediate" }

// Describe implements Transformation.
func (t IntroduceIntermediate) Describe() string {
	return fmt.Sprintf("set %s splits into %s → %s(%s) → %s", t.Set, t.Upper, t.Inter, t.GroupField, t.Lower)
}

// Invertible implements Transformation: the member's grouping value is
// recoverable from its intermediate owner, so the inverse mapping exists.
func (t IntroduceIntermediate) Invertible() bool { return true }

func (t IntroduceIntermediate) check(src *schema.Network) (*schema.SetType, *schema.RecordType, *schema.Field, error) {
	set := src.Set(t.Set)
	if set == nil {
		return nil, nil, nil, fmt.Errorf("no set type %s", t.Set)
	}
	if set.IsSystem() {
		return nil, nil, nil, fmt.Errorf("cannot split SYSTEM set %s", t.Set)
	}
	member := src.Record(set.Member)
	gf := member.Field(t.GroupField)
	if gf == nil {
		return nil, nil, nil, fmt.Errorf("member %s has no field %s", set.Member, t.GroupField)
	}
	if gf.Virtual != nil {
		return nil, nil, nil, fmt.Errorf("group field %s.%s is virtual", set.Member, t.GroupField)
	}
	if src.Record(t.Inter) != nil {
		return nil, nil, nil, fmt.Errorf("record type %s already exists", t.Inter)
	}
	if src.Set(t.Upper) != nil || src.Set(t.Lower) != nil {
		return nil, nil, nil, fmt.Errorf("set %s or %s already exists", t.Upper, t.Lower)
	}
	for _, k := range set.Keys {
		if k == t.GroupField {
			return nil, nil, nil, fmt.Errorf("group field %s is a key of set %s", t.GroupField, t.Set)
		}
	}
	return set, member, gf, nil
}

// ApplySchema implements Transformation.
func (t IntroduceIntermediate) ApplySchema(src *schema.Network) (*schema.Network, error) {
	set, member, gf, err := t.check(src)
	if err != nil {
		return nil, err
	}
	out := src.Clone()
	oldSet := out.Set(t.Set)

	// Build the intermediate record: the group field, plus a virtual
	// replica of every virtual the member sourced through the split set.
	inter := &schema.RecordType{Name: t.Inter, Fields: []schema.Field{
		{Name: t.GroupField, Kind: gf.Kind},
	}}
	newMember := out.Record(set.Member)
	for i := range newMember.Fields {
		f := &newMember.Fields[i]
		switch {
		case f.Name == t.GroupField:
			// The lifted field stays visible on the member as a virtual.
			f.Kind = value.Null
			f.Virtual = &schema.Virtual{ViaSet: t.Lower, Using: t.GroupField}
		case f.Virtual != nil && f.Virtual.ViaSet == t.Set:
			// Owner-sourced virtual: re-route through the chain, giving the
			// intermediate a pass-through virtual of the same name.
			if inter.Field(f.Virtual.Using) == nil {
				inter.Fields = append(inter.Fields, schema.Field{
					Name:    f.Virtual.Using,
					Virtual: &schema.Virtual{ViaSet: t.Upper, Using: f.Virtual.Using},
				})
			}
			f.Virtual = &schema.Virtual{ViaSet: t.Lower, Using: f.Virtual.Using}
		}
	}

	// Insert the intermediate record before the member, as Figure 4.4
	// draws it.
	var recs []*schema.RecordType
	for _, r := range out.Records {
		if r.Name == set.Member {
			recs = append(recs, inter)
		}
		recs = append(recs, r)
	}
	out.Records = recs

	// Replace the set with the chain.
	var sets []*schema.SetType
	for _, s := range out.Sets {
		if s.Name == t.Set {
			sets = append(sets,
				&schema.SetType{Name: t.Upper, Owner: set.Owner, Member: t.Inter,
					Keys: []string{t.GroupField}, Insertion: oldSet.Insertion, Retention: oldSet.Retention},
				&schema.SetType{Name: t.Lower, Owner: t.Inter, Member: set.Member,
					Keys: append([]string(nil), oldSet.Keys...), Insertion: oldSet.Insertion, Retention: oldSet.Retention})
			continue
		}
		sets = append(sets, s)
	}
	out.Sets = sets
	_ = member
	return out, out.Validate()
}

// MigrateData implements Transformation: members are regrouped beneath
// intermediates created per (owner, group value).
func (t IntroduceIntermediate) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	set, _, _, err := t.check(src.Schema())
	if err != nil {
		return nil, err
	}
	memberType := set.Member

	out := netstore.NewDB(dst)
	idMap := map[netstore.RecordID]netstore.RecordID{}
	// inters maps (dst owner ID, group key) to the intermediate created.
	type interKey struct {
		owner netstore.RecordID
		group string
	}
	inters := map[interKey]netstore.RecordID{}

	srcSchema := src.Schema()
	for _, srcType := range topoRecordOrder(srcSchema) {
		memberSets := srcSchema.SetsWithMember(srcType)
		var visitErr error
		src.EachOf(srcType, func(id netstore.RecordID) bool {
			data := src.StoredData(id)
			memberships := map[string]netstore.RecordID{}
			for _, s := range memberSets {
				owner, connected := src.OwnerOf(s.Name, id)
				if !connected {
					continue
				}
				if s.IsSystem() {
					memberships[s.Name] = netstore.OwnerSystem
					continue
				}
				dstOwner, ok := idMap[owner]
				if !ok {
					visitErr = fmt.Errorf("xform: owner of %s in %s not yet migrated", srcType, s.Name)
					return false
				}
				if srcType == memberType && s.Name == t.Set {
					// Route through an intermediate for this group value.
					gv := data.MustGet(t.GroupField)
					k := interKey{dstOwner, gv.Key()}
					interID, have := inters[k]
					if !have {
						rec := value.NewRecord()
						rec.Set(t.GroupField, gv)
						interID, visitErr = out.StoreWith(t.Inter, rec,
							map[string]netstore.RecordID{t.Upper: dstOwner})
						if visitErr != nil {
							return false
						}
						inters[k] = interID
					}
					memberships[t.Lower] = interID
					continue
				}
				memberships[s.Name] = dstOwner
			}
			if srcType == memberType {
				data.Delete(t.GroupField) // now virtual through the chain
			}
			nid, err := out.StoreWith(srcType, data, memberships)
			if err != nil {
				visitErr = err
				return false
			}
			idMap[id] = nid
			return true
		})
		if visitErr != nil {
			return nil, visitErr
		}
	}
	return out, nil
}

// Rewriter implements Transformation.
func (t IntroduceIntermediate) Rewriter(src *schema.Network) (*Rewriter, error) {
	set, _, _, err := t.check(src)
	if err != nil {
		return nil, err
	}
	r := NewRewriter()
	r.Splits[t.Set] = PathSplit{
		Upper:      t.Upper,
		Inter:      t.Inter,
		GroupField: t.GroupField,
		Lower:      t.Lower,
		Member:     set.Member,
		Owner:      set.Owner,
		OldKeys:    append([]string(nil), set.Keys...),
	}
	return r, nil
}

// CollapseIntermediate is the inverse transformation: the chain
// OWNER→INTER→MEMBER collapses back to a single set, the intermediate's
// identifying field returning to the member as a stored field.
type CollapseIntermediate struct {
	Upper      string // owner→intermediate set to remove
	Lower      string // intermediate→member set to remove
	GroupField string // intermediate field to push back down
	NewSet     string // restored owner→member set
}

// Name implements Transformation.
func (t CollapseIntermediate) Name() string { return "collapse-intermediate" }

// Describe implements Transformation.
func (t CollapseIntermediate) Describe() string {
	return fmt.Sprintf("chain %s/%s collapses into set %s, %s rejoining the member", t.Upper, t.Lower, t.NewSet, t.GroupField)
}

// Invertible implements Transformation.
func (t CollapseIntermediate) Invertible() bool { return true }

func (t CollapseIntermediate) check(src *schema.Network) (upper, lower *schema.SetType, err error) {
	upper = src.Set(t.Upper)
	lower = src.Set(t.Lower)
	if upper == nil || lower == nil {
		return nil, nil, fmt.Errorf("missing set %s or %s", t.Upper, t.Lower)
	}
	if upper.Member != lower.Owner {
		return nil, nil, fmt.Errorf("%s and %s do not chain", t.Upper, t.Lower)
	}
	inter := src.Record(upper.Member)
	if f := inter.Field(t.GroupField); f == nil || f.Virtual != nil {
		return nil, nil, fmt.Errorf("intermediate %s has no stored field %s", inter.Name, t.GroupField)
	}
	if src.Set(t.NewSet) != nil {
		return nil, nil, fmt.Errorf("set %s already exists", t.NewSet)
	}
	// The intermediate must participate in nothing else.
	for _, s := range src.Sets {
		if s.Name == t.Upper || s.Name == t.Lower {
			continue
		}
		if s.Owner == inter.Name || s.Member == inter.Name {
			return nil, nil, fmt.Errorf("intermediate %s participates in set %s", inter.Name, s.Name)
		}
	}
	return upper, lower, nil
}

// ApplySchema implements Transformation.
func (t CollapseIntermediate) ApplySchema(src *schema.Network) (*schema.Network, error) {
	upper, lower, err := t.check(src)
	if err != nil {
		return nil, err
	}
	interName := upper.Member
	out := src.Clone()
	interRec := out.Record(interName)
	member := out.Record(lower.Member)
	gf := interRec.Field(t.GroupField)

	for i := range member.Fields {
		f := &member.Fields[i]
		if f.Virtual == nil || f.Virtual.ViaSet != t.Lower {
			continue
		}
		if f.Virtual.Using == t.GroupField && f.Name == t.GroupField {
			// The lifted field comes back as stored.
			f.Virtual = nil
			f.Kind = gf.Kind
			continue
		}
		// Pass-through virtual: re-route directly through the new set if
		// the intermediate's source was itself a virtual via Upper.
		srcField := interRec.Field(f.Virtual.Using)
		if srcField != nil && srcField.Virtual != nil && srcField.Virtual.ViaSet == t.Upper {
			f.Virtual = &schema.Virtual{ViaSet: t.NewSet, Using: srcField.Virtual.Using}
		} else {
			return nil, fmt.Errorf("member virtual %s.%s cannot be re-routed", member.Name, f.Name)
		}
	}

	// Remove the intermediate record.
	var recs []*schema.RecordType
	for _, r := range out.Records {
		if r.Name != interName {
			recs = append(recs, r)
		}
	}
	out.Records = recs

	// Replace the chain with the restored set (keys from Lower).
	var sets []*schema.SetType
	replaced := false
	for _, s := range out.Sets {
		switch s.Name {
		case t.Upper:
			if !replaced {
				sets = append(sets, &schema.SetType{
					Name: t.NewSet, Owner: upper.Owner, Member: lower.Member,
					Keys: append([]string(nil), lower.Keys...), Insertion: lower.Insertion, Retention: lower.Retention})
				replaced = true
			}
		case t.Lower:
			// dropped
		default:
			sets = append(sets, s)
		}
	}
	out.Sets = sets
	return out, out.Validate()
}

// MigrateData implements Transformation.
func (t CollapseIntermediate) MigrateData(src *netstore.DB, dst *schema.Network) (*netstore.DB, error) {
	upper, lower, err := t.check(src.Schema())
	if err != nil {
		return nil, err
	}
	interName := upper.Member
	memberType := lower.Member

	out := netstore.NewDB(dst)
	idMap := map[netstore.RecordID]netstore.RecordID{}
	srcSchema := src.Schema()
	for _, srcType := range topoRecordOrder(srcSchema) {
		if srcType == interName {
			continue // intermediates vanish
		}
		memberSets := srcSchema.SetsWithMember(srcType)
		var visitErr error
		src.EachOf(srcType, func(id netstore.RecordID) bool {
			data := src.StoredData(id)
			memberships := map[string]netstore.RecordID{}
			for _, s := range memberSets {
				owner, connected := src.OwnerOf(s.Name, id)
				if !connected {
					continue
				}
				if s.IsSystem() {
					memberships[s.Name] = netstore.OwnerSystem
					continue
				}
				if srcType == memberType && s.Name == t.Lower {
					// Reattach to the intermediate's owner, pulling the
					// group field back down.
					gv := src.StoredData(owner).MustGet(t.GroupField)
					data.Set(t.GroupField, gv)
					grand, ok := src.OwnerOf(t.Upper, owner)
					if !ok {
						visitErr = fmt.Errorf("xform: intermediate %d has no %s owner", owner, t.Upper)
						return false
					}
					dstOwner, ok := idMap[grand]
					if !ok {
						visitErr = fmt.Errorf("xform: owner of intermediate not yet migrated")
						return false
					}
					memberships[t.NewSet] = dstOwner
					continue
				}
				dstOwner, ok := idMap[owner]
				if !ok {
					visitErr = fmt.Errorf("xform: owner of %s in %s not yet migrated", srcType, s.Name)
					return false
				}
				memberships[s.Name] = dstOwner
			}
			nid, err := out.StoreWith(srcType, data, memberships)
			if err != nil {
				visitErr = err
				return false
			}
			idMap[id] = nid
			return true
		})
		if visitErr != nil {
			return nil, visitErr
		}
	}
	return out, nil
}

// Rewriter implements Transformation.
func (t CollapseIntermediate) Rewriter(src *schema.Network) (*Rewriter, error) {
	upper, lower, err := t.check(src)
	if err != nil {
		return nil, err
	}
	r := NewRewriter()
	// A collapse merges two hops into one: expressed as set renames onto
	// the new set plus removal of the intermediate record step; the
	// converter recognizes the Merges entry.
	r.Merges = append(r.Merges, PathMerge{
		Upper:  t.Upper,
		Inter:  upper.Member,
		Lower:  t.Lower,
		NewSet: t.NewSet,
	})
	_ = lower
	return r, nil
}
