package xform

import (
	"fmt"
	"strings"

	"progconv/internal/schema"
)

// Classify is the Conversion Analyzer of Figure 4.1: it "analyzes the
// source and target databases in order to classify the types of changes
// that have been made", producing a Plan drawn from the catalogue. A
// change it cannot explain is returned in the error — the situation an
// interactive Conversion Analyst must resolve (renames, for instance,
// are indistinguishable from drop-and-add without human input, so they
// must be supplied in an explicit plan).
func Classify(src, dst *schema.Network) (*Plan, error) {
	plan := &Plan{}
	cur := src.Clone()

	// 1. Introduced intermediates: a source set gone, replaced by an
	// upper/lower chain through a new record type.
	for _, s := range src.Sets {
		if s.IsSystem() || dst.Set(s.Name) != nil {
			continue
		}
		t, ok := detectIntroduce(cur, dst, s.Name)
		if !ok {
			continue
		}
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: classified %s but cannot apply: %w", t.Name(), err)
		}
		plan.Steps = append(plan.Steps, t)
		cur = next
	}

	// 2. Collapsed intermediates: a source record type gone, its chain
	// replaced by one set.
	for _, r := range src.Records {
		if dst.Record(r.Name) != nil {
			continue
		}
		t, ok := detectCollapse(cur, dst, r.Name)
		if !ok {
			continue
		}
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, fmt.Errorf("xform: classified %s but cannot apply: %w", t.Name(), err)
		}
		plan.Steps = append(plan.Steps, t)
		cur = next
	}

	// 3. Same-named set property changes.
	for _, s := range cur.Sets {
		d := dst.Set(s.Name)
		if d == nil {
			continue
		}
		if strings.Join(s.Keys, ",") != strings.Join(d.Keys, ",") {
			t := ChangeSetKeys{Set: s.Name, Keys: append([]string(nil), d.Keys...)}
			next, err := t.ApplySchema(cur)
			if err != nil {
				return nil, err
			}
			plan.Steps = append(plan.Steps, t)
			cur = next
		}
		if s.Retention != d.Retention {
			t := ChangeRetention{Set: s.Name, Retention: d.Retention}
			next, err := t.ApplySchema(cur)
			if err != nil {
				return nil, err
			}
			plan.Steps = append(plan.Steps, t)
			cur = next
		}
	}

	// 4. Same-named record field adds and drops.
	for _, r := range cur.Records {
		d := dst.Record(r.Name)
		if d == nil {
			continue
		}
		for _, f := range r.Fields {
			if d.Field(f.Name) == nil && f.Virtual == nil {
				t := DropField{Record: r.Name, Field: f.Name}
				next, err := t.ApplySchema(cur)
				if err != nil {
					return nil, fmt.Errorf("xform: field %s.%s disappeared but cannot be dropped: %w", r.Name, f.Name, err)
				}
				plan.Steps = append(plan.Steps, t)
				cur = next
			}
		}
		for _, f := range d.Fields {
			if cur.Record(r.Name).Field(f.Name) == nil && f.Virtual == nil {
				t := AddField{Record: r.Name, Field: f.Name, Kind: f.Kind}
				next, err := t.ApplySchema(cur)
				if err != nil {
					return nil, err
				}
				plan.Steps = append(plan.Steps, t)
				cur = next
			}
		}
	}

	// Whatever remains unexplained goes to the Analyst.
	if diff := describeDiff(cur, dst); diff != "" {
		return plan, fmt.Errorf("%w: changes not in the catalogue:\n%s", ErrHazardUnresolved, diff)
	}
	return plan, nil
}

// detectIntroduce matches the IntroduceIntermediate signature for a
// source set that vanished.
func detectIntroduce(src, dst *schema.Network, setName string) (IntroduceIntermediate, bool) {
	s := src.Set(setName)
	for _, upper := range dst.Sets {
		if upper.Owner != s.Owner || upper.IsSystem() {
			continue
		}
		inter := upper.Member
		if src.Record(inter) != nil {
			continue // not a new record type
		}
		for _, lower := range dst.Sets {
			if lower.Owner != inter || lower.Member != s.Member {
				continue
			}
			interRec := dst.Record(inter)
			if interRec == nil || len(upper.Keys) != 1 {
				continue
			}
			group := upper.Keys[0]
			gf := interRec.Field(group)
			if gf == nil || gf.Virtual != nil {
				continue
			}
			// The member must have carried the group field as stored data.
			mf := src.Record(s.Member).Field(group)
			if mf == nil || mf.Virtual != nil {
				continue
			}
			return IntroduceIntermediate{
				Set: setName, Inter: inter, GroupField: group,
				Upper: upper.Name, Lower: lower.Name,
			}, true
		}
	}
	return IntroduceIntermediate{}, false
}

// detectCollapse matches the CollapseIntermediate signature for a source
// record type that vanished.
func detectCollapse(src, dst *schema.Network, interName string) (CollapseIntermediate, bool) {
	var upper, lower *schema.SetType
	for _, s := range src.Sets {
		if s.Member == interName && !s.IsSystem() {
			if upper != nil {
				return CollapseIntermediate{}, false
			}
			upper = s
		}
		if s.Owner == interName {
			if lower != nil {
				return CollapseIntermediate{}, false
			}
			lower = s
		}
	}
	if upper == nil || lower == nil || len(upper.Keys) != 1 {
		return CollapseIntermediate{}, false
	}
	for _, d := range dst.Sets {
		if d.Owner == upper.Owner && d.Member == lower.Member && src.Set(d.Name) == nil {
			return CollapseIntermediate{
				Upper: upper.Name, Lower: lower.Name,
				GroupField: upper.Keys[0], NewSet: d.Name,
			}, true
		}
	}
	return CollapseIntermediate{}, false
}

// describeDiff lists structural differences between two schemas, for the
// analyst escalation message. DDL text is the comparison medium: two
// schemas are the same exactly when they render the same.
func describeDiff(a, b *schema.Network) string {
	if a.DDL() == b.DDL() {
		return ""
	}
	var lines []string
	for _, r := range a.Records {
		if b.Record(r.Name) == nil {
			lines = append(lines, fmt.Sprintf("  record %s exists only in source", r.Name))
		}
	}
	for _, r := range b.Records {
		if a.Record(r.Name) == nil {
			lines = append(lines, fmt.Sprintf("  record %s exists only in target", r.Name))
		}
	}
	for _, s := range a.Sets {
		if b.Set(s.Name) == nil {
			lines = append(lines, fmt.Sprintf("  set %s exists only in source", s.Name))
		}
	}
	for _, s := range b.Sets {
		if a.Set(s.Name) == nil {
			lines = append(lines, fmt.Sprintf("  set %s exists only in target", s.Name))
		}
	}
	for _, r := range a.Records {
		o := b.Record(r.Name)
		if o == nil {
			continue
		}
		for _, f := range r.Fields {
			if o.Field(f.Name) == nil {
				lines = append(lines, fmt.Sprintf("  field %s.%s exists only in source", r.Name, f.Name))
			}
		}
		for _, f := range o.Fields {
			if r.Field(f.Name) == nil {
				lines = append(lines, fmt.Sprintf("  field %s.%s exists only in target", r.Name, f.Name))
			}
		}
	}
	if len(lines) == 0 {
		lines = append(lines, "  declarations differ in detail (kinds, virtuals, modes, or ordering)")
	}
	return strings.Join(lines, "\n")
}
