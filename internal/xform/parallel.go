package xform

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// MigrateOptions configures the parallel data-translation path.
type MigrateOptions struct {
	// Parallelism bounds the shard workers per rebuild pass; <= 0 means
	// GOMAXPROCS. The output is byte-identical at every setting.
	Parallelism int
}

// MigrateStats extends the fuse accounting with the sharded path's
// counters: how many shards the passes fanned out into and how many
// records went through the bulk-load merge phase.
type MigrateStats struct {
	FuseStats
	Shards      int
	BulkRecords int
}

// minShardRecords is the smallest extent worth a dedicated shard: below
// this, goroutine handoff costs more than the transform it parallelizes.
const minShardRecords = 64

// ctxPollEvery is how many records the shard workers and the splice
// loop process between context polls, mirroring equiv.Check's cadence.
const ctxPollEvery = 256

// shardCount partitions n records for the given parallelism bound.
// It depends only on (n, parallelism), never on runtime load, so a
// migration shards identically on every machine and every run.
func shardCount(n, parallelism int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	shards := parallelism
	if max := (n + minShardRecords - 1) / minShardRecords; shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// Migrate is the ctx-aware, sharded counterpart of MigrateDataFused:
// same pass structure (maximal fusible runs compose into single passes,
// remaining steps run their own pass), same results byte for byte —
// record IDs, set orderings, index contents, error text and order —
// with each rebuild pass fanned out over opts.Parallelism shard
// workers and merged through the netstore bulk loader. Cancelling ctx
// aborts mid-pass; the cause surfaces unwrapped inside the usual
// per-step error wrapping, so errors.Is(err, context.DeadlineExceeded)
// sees through it.
func (p *Plan) Migrate(ctx context.Context, src *netstore.DB, opts MigrateOptions) (*netstore.DB, MigrateStats, error) {
	var stats MigrateStats
	cur := src
	curSchema := src.Schema()
	for i := 0; i < len(p.Steps); {
		j := i
		for j < len(p.Steps) {
			if _, ok := p.Steps[j].(fusible); !ok {
				break
			}
			j++
		}
		if j-i >= 2 {
			finalSchema := curSchema
			chain := make([]rebuildFns, 0, j-i)
			for k := i; k < j; k++ {
				next, err := p.Steps[k].ApplySchema(finalSchema)
				if err != nil {
					return nil, stats, fmt.Errorf("xform: %s: %w", p.Steps[k].Name(), err)
				}
				chain = append(chain, p.Steps[k].(fusible).fuseFns())
				finalSchema = next
			}
			next, err := rebuildParallel(ctx, cur, finalSchema, composeFns(chain), opts.Parallelism, &stats)
			if err != nil {
				return nil, stats, fmt.Errorf("xform: fused steps %d..%d: %w", i+1, j, err)
			}
			stats.FusedSteps += j - i
			stats.Passes++
			cur, curSchema = next, finalSchema
			i = j
			continue
		}
		t := p.Steps[i]
		nextSchema, err := t.ApplySchema(curSchema)
		if err != nil {
			return nil, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		var next *netstore.DB
		if ft, ok := t.(fusible); ok {
			// A lone fusible step still takes the sharded rebuild; only
			// the fuse accounting differs from a composed run.
			next, err = rebuildParallel(ctx, cur, nextSchema, ft.fuseFns(), opts.Parallelism, &stats)
		} else {
			// The structural steps (intermediate introduction/collapse)
			// synthesize occurrences as they go; they keep their serial
			// single pass.
			next, err = t.MigrateData(cur, nextSchema)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		stats.StepwiseSteps++
		stats.Passes++
		cur, curSchema = next, nextSchema
		i++
	}
	return cur, stats, nil
}

// stagedMember is one source set membership a shard worker collected:
// the spliceSet index and the source owner occurrence, resolved to a
// destination owner only at splice time (the owner's destination ID
// does not exist until its own splice).
type stagedMember struct {
	si    int
	owner netstore.RecordID
}

// stagedRec is one shard-prepared record awaiting its splice: the
// destination data record (built off-thread, kind-checked), the
// memberships to wire, and any error the preparation raised — held
// back so errors surface in submission order, exactly as the serial
// rebuild raises them.
type stagedRec struct {
	data    *value.Record
	members []stagedMember
	err     error
}

// spliceSet is one source member set of the type being rebuilt, with
// its destination mapping pre-resolved once per pass instead of per
// record.
type spliceSet struct {
	srcName string
	dstName string
	dst     *schema.SetType // nil when dstName is absent from dst (StoreWith's unknown-set case)
	system  bool
	drop    bool
}

// stagingRecPool recycles the per-worker scratch record that holds a
// source occurrence's stored data during the transform. The staged
// destination records are NOT pooled — they become the new database's
// occurrence data.
var stagingRecPool = sync.Pool{New: func() any { return value.NewRecord() }}

// rebuildParallel is rebuild with the per-record transform fanned out
// over shard workers. Each record type pass partitions the source
// occurrences into contiguous ID-range shards, transforms each shard
// into private staging, then splices the staged records into the
// destination sequentially in source insertion order — so IDs, set
// orderings, index contents, and error precedence match the serial
// rebuild exactly. The merge phase goes through the bulk loader, which
// defers member ordering and index maintenance to one batched
// finalization per pass.
func rebuildParallel(ctx context.Context, src *netstore.DB, dst *schema.Network, f rebuildFns, parallelism int, stats *MigrateStats) (*netstore.DB, error) {
	out := netstore.NewDB(dst)
	bl := out.NewBulkLoader(src.Len())
	// idMap is dense: source IDs are bounded by IDBound and destination
	// IDs start at 1, so 0 doubles as "not migrated".
	idMap := make([]netstore.RecordID, src.IDBound())
	srcSchema := src.Schema()

	var staged []stagedRec
	var memBuf []stagedMember
	var targets []netstore.BulkMembership

	for _, srcType := range topoRecordOrder(srcSchema) {
		dstType := srcType
		if f.mapType != nil {
			dstType = f.mapType(srcType)
		}
		if dstType == "" {
			continue
		}
		ids := src.AllOf(srcType)
		n := len(ids)
		if n == 0 {
			// The serial rebuild never reaches StoreWith for an empty
			// extent, so even an unmapped destination type is not an error.
			continue
		}
		typ := dst.Record(dstType)
		if typ == nil {
			return nil, fmt.Errorf("netstore: unknown record type %s", dstType)
		}

		memberSets := srcSchema.SetsWithMember(srcType)
		sets := make([]spliceSet, len(memberSets))
		for si, set := range memberSets {
			dstSet := set.Name
			if f.mapSet != nil {
				dstSet = f.mapSet(set.Name)
			}
			e := spliceSet{srcName: set.Name, dstName: dstSet, system: set.IsSystem(), drop: dstSet == ""}
			if !e.drop {
				e.dst = dst.Set(dstSet)
			}
			sets[si] = e
		}
		k := len(sets)

		if cap(staged) < n {
			staged = make([]stagedRec, n)
		}
		staged = staged[:n]
		if k > 0 {
			if cap(memBuf) < n*k {
				memBuf = make([]stagedMember, n*k)
			}
		}

		prepare := func(lo, hi int) {
			tmp := stagingRecPool.Get().(*value.Record)
			defer stagingRecPool.Put(tmp)
			for i := lo; i < hi; i++ {
				if i%ctxPollEvery == 0 && ctx.Err() != nil {
					for ; i < hi; i++ {
						staged[i] = stagedRec{err: ctx.Err()}
					}
					return
				}
				id := ids[i]
				st := &staged[i]
				st.err = nil
				st.members = nil
				src.StoredDataInto(id, tmp)
				data := tmp
				if f.mapData != nil {
					data = f.mapData(srcType, data)
				}
				if k > 0 {
					mem := memBuf[i*k : i*k : i*k+k]
					for si := range sets {
						if sets[si].drop {
							continue
						}
						owner, connected := src.OwnerOf(sets[si].srcName, id)
						if !connected {
							continue
						}
						mem = append(mem, stagedMember{si: si, owner: owner})
					}
					st.members = mem
				}
				rec := value.NewRecordSize(len(typ.Fields))
				for _, fld := range typ.Fields {
					if fld.Virtual != nil {
						continue
					}
					v, _ := data.Get(fld.Name)
					if !v.IsNull() && v.Kind() != fld.Kind {
						st.err = fmt.Errorf("netstore: %s.%s: value kind %v, field kind %v",
							dstType, fld.Name, v.Kind(), fld.Kind)
						rec = nil
						break
					}
					rec.Set(fld.Name, v)
				}
				st.data = rec
			}
		}

		shards := shardCount(n, parallelism)
		stats.Shards += shards
		if shards == 1 {
			prepare(0, n)
		} else {
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				lo, hi := s*n/shards, (s+1)*n/shards
				wg.Add(1)
				go func() {
					defer wg.Done()
					prepare(lo, hi)
				}()
			}
			wg.Wait()
		}

		// Splice sequentially in source insertion order. Error precedence
		// per record matches the serial rebuild: unmigrated owners (found
		// while collecting memberships) before the staged kind error
		// before StoreWith's membership validation.
		if cap(targets) < k {
			targets = make([]netstore.BulkMembership, 0, k)
		}
		for i := range staged {
			if i%ctxPollEvery == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			st := &staged[i]
			for _, m := range st.members {
				if sets[m.si].system {
					continue
				}
				if idMap[m.owner] == 0 {
					return nil, fmt.Errorf("xform: %s occurrence's owner in %s not yet migrated", srcType, sets[m.si].srcName)
				}
			}
			if st.err != nil {
				return nil, st.err
			}
			targets = targets[:0]
			for _, m := range st.members {
				e := &sets[m.si]
				if e.dst == nil {
					return nil, fmt.Errorf("netstore: unknown set %s", e.dstName)
				}
				owner := netstore.OwnerSystem
				if !e.system {
					owner = idMap[m.owner]
				}
				targets = append(targets, netstore.BulkMembership{Set: e.dst, Owner: owner})
			}
			nid, err := bl.StorePrepared(typ, st.data, targets)
			if err != nil {
				return nil, err
			}
			idMap[ids[i]] = nid
		}
	}
	bl.Close(parallelism)
	stats.BulkRecords += bl.Loaded()
	return out, nil
}

// stagedRoot is one shard-prepared source root of a hierarchical
// reorder: the parent's data and every promoted child's, read
// off-thread so the sequential ISRT splice only replays inserts.
type stagedRoot struct {
	parentData *value.Record
	childData  []*value.Record
	canceled   bool
}

// Migrate is the ctx-aware, sharded counterpart of
// HierPlan.MigrateData: identical databases, warnings (text and
// order), and errors, with each step's per-root reads fanned out over
// shard workers ahead of the sequential insert splice.
func (p *HierPlan) Migrate(ctx context.Context, src *hierstore.DB, opts MigrateOptions) (*hierstore.DB, []string, MigrateStats, error) {
	var stats MigrateStats
	cur := src
	curSchema := src.Schema()
	var warnings []string
	for _, t := range p.Steps {
		nextSchema, err := t.ApplySchema(curSchema)
		if err != nil {
			return nil, warnings, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		next, warns, err := t.migrateDataParallel(ctx, cur, nextSchema, opts.Parallelism, &stats)
		warnings = append(warnings, warns...)
		if err != nil {
			return nil, warnings, stats, fmt.Errorf("xform: %s: %w", t.Name(), err)
		}
		stats.StepwiseSteps++
		stats.Passes++
		cur, curSchema = next, nextSchema
	}
	if cur == src {
		return src.Clone(), warnings, stats, nil
	}
	return cur, warnings, stats, nil
}

// migrateDataParallel is MigrateData with the per-root source reads
// (parent data, promoted children, child data — all clone-returning
// lookups on the unmutated source) sharded across workers; the ISRT
// replay into the destination stays sequential in root order, so the
// new database, the warning list, and any migration error come out
// identical to the serial pass.
func (t HierReorder) migrateDataParallel(ctx context.Context, src *hierstore.DB, dst *schema.Hierarchy, parallelism int, stats *MigrateStats) (*hierstore.DB, []string, error) {
	roots := src.Roots()
	n := len(roots)
	promote := t.Promote

	stagedRoots := make([]stagedRoot, n)
	prepare := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%ctxPollEvery == 0 && ctx.Err() != nil {
				for ; i < hi; i++ {
					stagedRoots[i].canceled = true
				}
				return
			}
			st := &stagedRoots[i]
			st.parentData = src.Data(roots[i])
			children := src.ChildrenOf(roots[i], promote)
			if len(children) > 0 {
				st.childData = make([]*value.Record, len(children))
				for ci, cid := range children {
					st.childData[ci] = src.Data(cid)
				}
			}
		}
	}

	shards := shardCount(n, parallelism)
	stats.Shards += shards
	if shards == 1 {
		prepare(0, n)
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			lo, hi := s*n/shards, (s+1)*n/shards
			wg.Add(1)
			go func() {
				defer wg.Done()
				prepare(lo, hi)
			}()
		}
		wg.Wait()
	}

	out := hierstore.NewDB(dst)
	sess := hierstore.NewSession(out)
	oldRootType := src.Schema().Root.Name
	var warnings []string
	newRootSeg := dst.Root
	for i := range stagedRoots {
		if i%ctxPollEvery == 0 && ctx.Err() != nil {
			return nil, warnings, ctx.Err()
		}
		st := &stagedRoots[i]
		if st.canceled {
			return nil, warnings, ctx.Err()
		}
		if len(st.childData) == 0 {
			warnings = append(warnings,
				fmt.Sprintf("%s %s has no %s occurrences and is unreachable after reorder",
					oldRootType, st.parentData.String(), promote))
			continue
		}
		for _, cdata := range st.childData {
			ist := sess.ISRT(cdata, hierstore.U(promote))
			if ist == hierstore.II {
				warnings = append(warnings,
					fmt.Sprintf("%s %s promoted once; parents merge beneath it", promote, cdata.String()))
			} else if ist != hierstore.OK {
				return nil, warnings, fmt.Errorf("migrating %s: ISRT status %v", promote, ist)
			}
			seqField := newRootSeg.Seq
			path := []hierstore.SSA{hierstore.U(promote)}
			if seqField != "" {
				path = []hierstore.SSA{hierstore.Q(promote, seqField, hierstore.EQ, cdata.MustGet(seqField))}
			}
			if ist := sess.ISRT(st.parentData, append(path, hierstore.U(oldRootType))...); ist != hierstore.OK {
				return nil, warnings, fmt.Errorf("migrating %s under %s: ISRT status %v", oldRootType, promote, ist)
			}
		}
	}
	return out, warnings, nil
}
