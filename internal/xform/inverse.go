package xform

import (
	"fmt"

	"progconv/internal/schema"
)

// Inverse returns the transformation that undoes t, given the schema t
// was applied to. It exists because Housel's approach (§2.2) and the
// bridge-program strategy (§2.1.2) both need the inverse data mapping:
// "the source database can be reconstructed from the target database by
// applying some inverse operators". Non-invertible transformations
// (DropField) return an error.
func Inverse(t Transformation, src *schema.Network) (Transformation, error) {
	switch x := t.(type) {
	case RenameRecord:
		return RenameRecord{Old: x.New, New: x.Old}, nil
	case RenameField:
		return RenameField{Record: x.Record, Old: x.New, New: x.Old}, nil
	case RenameSet:
		return RenameSet{Old: x.New, New: x.Old}, nil
	case AddField:
		return DropField{Record: x.Record, Field: x.Field}, nil
	case DropField:
		return nil, fmt.Errorf("%w: drop-field of %s.%s loses information", ErrNotInvertible, x.Record, x.Field)
	case ChangeSetKeys:
		old := src.Set(x.Set)
		if old == nil {
			return nil, fmt.Errorf("xform: no set %s in source schema", x.Set)
		}
		return ChangeSetKeys{Set: x.Set, Keys: append([]string(nil), old.Keys...)}, nil
	case ChangeRetention:
		old := src.Set(x.Set)
		if old == nil {
			return nil, fmt.Errorf("xform: no set %s in source schema", x.Set)
		}
		return ChangeRetention{Set: x.Set, Retention: old.Retention}, nil
	case IntroduceIntermediate:
		return CollapseIntermediate{
			Upper: x.Upper, Lower: x.Lower, GroupField: x.GroupField, NewSet: x.Set,
		}, nil
	case CollapseIntermediate:
		upper := src.Set(x.Upper)
		if upper == nil {
			return nil, fmt.Errorf("xform: no set %s in source schema", x.Upper)
		}
		return IntroduceIntermediate{
			Set: x.NewSet, Inter: upper.Member, GroupField: x.GroupField,
			Upper: x.Upper, Lower: x.Lower,
		}, nil
	}
	return nil, fmt.Errorf("%w: no inverse rule for %T", ErrNotInvertible, t)
}

// InversePlan builds the plan that maps the target schema back to the
// source: each step inverted, in reverse order. This is the bridge
// strategy's reverse mapping.
func (p *Plan) InversePlan(src *schema.Network) (*Plan, error) {
	// Collect the schema each step sees.
	schemas := []*schema.Network{src}
	cur := src
	for _, t := range p.Steps {
		next, err := t.ApplySchema(cur)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, next)
		cur = next
	}
	inv := &Plan{}
	for i := len(p.Steps) - 1; i >= 0; i-- {
		it, err := Inverse(p.Steps[i], schemas[i])
		if err != nil {
			return nil, err
		}
		inv.Steps = append(inv.Steps, it)
	}
	return inv, nil
}
