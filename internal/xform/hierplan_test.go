package xform

import (
	"strings"
	"testing"

	"progconv/internal/hierstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// TestClassifyHier: equal hierarchies classify to the identity plan, a
// root inversion classifies to the single catalogued reorder, and an
// uncatalogued change names both schemas in its error.
func TestClassifyHier(t *testing.T) {
	src := schema.EmpDeptHierarchy()

	identity, err := ClassifyHier(src, schema.EmpDeptHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if len(identity.Steps) != 0 || !identity.Invertible() {
		t.Errorf("identity plan = %+v", identity)
	}

	dst, err := HierReorder{Promote: "EMP"}.ApplySchema(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ClassifyHier(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Promote != "EMP" {
		t.Fatalf("classified plan = %+v", plan)
	}
	if !strings.Contains(plan.Describe(), "EMP") {
		t.Errorf("plan description: %q", plan.Describe())
	}

	// An uncatalogued change (different segment population) refuses.
	other := schema.EmpDeptHierarchy()
	other.Name = "OTHER"
	if _, err := ClassifyHier(src, other); err == nil {
		t.Error("uncatalogued hierarchy change classified without error")
	}
}

// TestHierPlanApplyAndMigrate: the plan's schema chain matches its
// steps and the data migration carries every record across.
func TestHierPlanApplyAndMigrate(t *testing.T) {
	src := schema.EmpDeptHierarchy()
	plan := &HierPlan{Steps: []HierReorder{{Promote: "EMP"}}}

	got, err := plan.ApplySchema(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root.Name != "EMP" {
		t.Errorf("reordered root = %q, want EMP", got.Root.Name)
	}

	db := hierstore.NewDB(src)
	s := hierstore.NewSession(db)
	s.ISRT(value.FromPairs("D#", "D1", "DNAME", "OPS", "MGR", "KAY"), hierstore.U("DEPT"))
	s.ISRT(value.FromPairs("E#", "E1", "ENAME", "LEE", "AGE", 40, "YEAR-OF-SERVICE", 7),
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D1")), hierstore.U("EMP"))

	out, warnings, err := plan.MigrateData(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Root.Name != "EMP" {
		t.Errorf("migrated root = %q", out.Schema().Root.Name)
	}
	_ = warnings // the two-level promote migrates without advisories here

	// The identity plan clones rather than aliasing.
	id := &HierPlan{}
	same, _, err := id.MigrateData(db)
	if err != nil {
		t.Fatal(err)
	}
	if same == db {
		t.Error("identity migration aliases the source database")
	}
}
