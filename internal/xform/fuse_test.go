package xform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// dumpDB renders a database canonically — schema DDL, every occurrence
// (virtuals resolved) in ID order, every set occurrence's member list —
// so two migrations can be compared byte for byte.
func dumpDB(db *netstore.DB) string {
	var b strings.Builder
	sch := db.Schema()
	b.WriteString(sch.DDL())
	for _, r := range sch.Records {
		fmt.Fprintf(&b, "== %s ==\n", r.Name)
		for _, id := range db.AllOf(r.Name) {
			fmt.Fprintf(&b, "#%d %s\n", id, db.Data(id).String())
		}
	}
	for _, s := range sch.Sets {
		fmt.Fprintf(&b, "set %s\n", s.Name)
		owners := []netstore.RecordID{netstore.OwnerSystem}
		if !s.IsSystem() {
			owners = db.AllOf(s.Owner)
		}
		for _, o := range owners {
			fmt.Fprintf(&b, "  %d -> %v\n", o, db.Members(s.Name, o))
		}
	}
	return b.String()
}

// fourStepFusiblePlan is the benchmark/byte-identity fixture: four
// per-record mapping steps that must fuse into one pass.
func fourStepFusiblePlan() *Plan {
	return &Plan{Steps: []Transformation{
		RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		AddField{Record: "EMPLOYEE", Field: "STATUS", Kind: value.String, Default: value.Str("ACTIVE")},
		RenameSet{Old: "DIV-EMP", New: "DIV-EMPLOYEE"},
	}}
}

// TestFusedMigrationByteIdenticalToStepwise proves the fused single-pass
// migration produces exactly the database the stepwise chain does,
// record IDs included.
func TestFusedMigrationByteIdenticalToStepwise(t *testing.T) {
	src := companyV1DB(t)
	p := fourStepFusiblePlan()

	fused, stats, err := p.MigrateDataFused(src)
	if err != nil {
		t.Fatalf("fused: %v", err)
	}
	stepwise, err := p.MigrateDataStepwise(src)
	if err != nil {
		t.Fatalf("stepwise: %v", err)
	}
	if stats.FusedSteps != 4 || stats.StepwiseSteps != 0 || stats.Passes != 1 {
		t.Fatalf("fuse stats = %+v, want 4 fused steps in 1 pass", stats)
	}
	if got, want := dumpDB(fused), dumpDB(stepwise); got != want {
		t.Fatalf("fused migration diverged from stepwise:\n--- fused ---\n%s\n--- stepwise ---\n%s", got, want)
	}
}

// TestFusedMigrationBailsOutAroundIntermediates pins the fusion rules on
// a mixed plan: runs of mapping steps fuse, the structural
// IntroduceIntermediate step runs its own pass, and a trailing run of
// length one gains nothing and stays stepwise.
func TestFusedMigrationBailsOutAroundIntermediates(t *testing.T) {
	src := companyV1DB(t)
	p := &Plan{Steps: []Transformation{
		RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
		AddField{Record: "DIV", Field: "REGION", Kind: value.String, Default: value.Str("NA")},
		figure42to44(),
		RenameRecord{Old: "EMP", New: "EMPLOYEE"},
	}}

	fused, stats, err := p.MigrateDataFused(src)
	if err != nil {
		t.Fatalf("fused: %v", err)
	}
	stepwise, err := p.MigrateDataStepwise(src)
	if err != nil {
		t.Fatalf("stepwise: %v", err)
	}
	want := FuseStats{FusedSteps: 2, StepwiseSteps: 2, Passes: 3}
	if stats != want {
		t.Fatalf("fuse stats = %+v, want %+v", stats, want)
	}
	if got, want := dumpDB(fused), dumpDB(stepwise); got != want {
		t.Fatalf("mixed-plan fusion diverged from stepwise:\n--- fused ---\n%s\n--- stepwise ---\n%s", got, want)
	}
}

// TestFusedMigrationRandomizedContent re-proves byte identity over
// seeded random databases, including disconnected records under a
// MANUAL/OPTIONAL set (memberships must map — or vanish — identically).
func TestFusedMigrationRandomizedContent(t *testing.T) {
	base := schema.CompanyV1()
	base.Set("DIV-EMP").Insertion = schema.Manual
	base.Set("DIV-EMP").Retention = schema.Optional
	for _, seed := range []int64{31, 32, 33} {
		rng := rand.New(rand.NewSource(seed))
		db := netstore.NewDB(base.Clone())
		s := netstore.NewSession(db)
		nDiv := 3 + rng.Intn(4)
		for d := 0; d < nDiv; d++ {
			s.Store("DIV", value.FromPairs(
				"DIV-NAME", fmt.Sprintf("DIV-%02d", d),
				"DIV-LOC", fmt.Sprintf("L%d", rng.Intn(4))))
		}
		for e := 0; e < 120; e++ {
			s.Store("EMP", value.FromPairs(
				"EMP-NAME", fmt.Sprintf("E-%04d", e),
				"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(5)),
				"AGE", 20+rng.Intn(45)))
			if rng.Intn(3) > 0 { // two thirds get connected, the rest float free
				s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%02d", rng.Intn(nDiv))))
				s.FindAny("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", e)))
				s.Connect("DIV-EMP")
			}
		}

		p := fourStepFusiblePlan()
		fused, _, err := p.MigrateDataFused(db)
		if err != nil {
			t.Fatalf("seed %d fused: %v", seed, err)
		}
		stepwise, err := p.MigrateDataStepwise(db)
		if err != nil {
			t.Fatalf("seed %d stepwise: %v", seed, err)
		}
		if got, want := dumpDB(fused), dumpDB(stepwise); got != want {
			t.Fatalf("seed %d: fused migration diverged from stepwise", seed)
		}
	}
}
