package xform

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// randomCompanyDB builds a seeded random CompanyV1 population with a
// MANUAL/OPTIONAL DIV-EMP set, so a third of the employees float free
// of any set occurrence — the memberships must map (or vanish)
// identically across migration paths.
func randomCompanyDB(t *testing.T, seed int64) *netstore.DB {
	t.Helper()
	base := schema.CompanyV1()
	base.Set("DIV-EMP").Insertion = schema.Manual
	base.Set("DIV-EMP").Retention = schema.Optional
	rng := rand.New(rand.NewSource(seed))
	db := netstore.NewDB(base.Clone())
	s := netstore.NewSession(db)
	nDiv := 3 + rng.Intn(4)
	for d := 0; d < nDiv; d++ {
		s.Store("DIV", value.FromPairs(
			"DIV-NAME", fmt.Sprintf("DIV-%02d", d),
			"DIV-LOC", fmt.Sprintf("L%d", rng.Intn(4))))
	}
	nEmp := 100 + rng.Intn(120)
	for e := 0; e < nEmp; e++ {
		s.Store("EMP", value.FromPairs(
			"EMP-NAME", fmt.Sprintf("E-%04d", e),
			"DEPT-NAME", fmt.Sprintf("D%d", rng.Intn(5)),
			"AGE", 20+rng.Intn(45)))
		if rng.Intn(3) > 0 {
			s.FindAny("DIV", value.FromPairs("DIV-NAME", fmt.Sprintf("DIV-%02d", rng.Intn(nDiv))))
			s.FindAny("EMP", value.FromPairs("EMP-NAME", fmt.Sprintf("E-%04d", e)))
			s.Connect("DIV-EMP")
		}
	}
	return db
}

// planTemplates is the randomized-plan pool: all-fusible runs, a mixed
// plan around the paper's flagship structural step, and a lossy plan
// with drops — every per-record shape the sharded rebuild must handle.
func planTemplates() map[string]*Plan {
	return map[string]*Plan{
		"fused-run": fourStepFusiblePlan(),
		"mixed-structural": {Steps: []Transformation{
			RenameField{Record: "DIV", Old: "DIV-LOC", New: "LOCATION"},
			AddField{Record: "DIV", Field: "REGION", Kind: value.String, Default: value.Str("NA")},
			figure42to44(),
			RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		}},
		"lossy-drops": {Steps: []Transformation{
			DropField{Record: "EMP", Field: "AGE"},
			RenameSet{Old: "DIV-EMP", New: "STAFF"},
			AddField{Record: "EMP", Field: "GRADE", Kind: value.Int, Default: value.Of(1)},
		}},
		"lone-step": {Steps: []Transformation{
			RenameRecord{Old: "EMP", New: "WORKER"},
		}},
	}
}

// TestParallelMigrateByteIdentical is the property test: randomized
// databases × randomized plans × shard counts {1, 2, 8}, with the
// parallel migration compared byte for byte — record IDs, set
// orderings, index buckets, index counters — against the serial
// stepwise oracle.
func TestParallelMigrateByteIdentical(t *testing.T) {
	for name, p := range planTemplates() {
		for _, seed := range []int64{41, 42, 43} {
			src := randomCompanyDB(t, seed)
			want, err := p.MigrateDataStepwise(src)
			if err != nil {
				t.Fatalf("%s seed %d stepwise: %v", name, seed, err)
			}
			wantDump, wantIdx := dumpDB(want), want.IndexDump()
			wantProbes, wantScans := want.IndexStatsOf().Snapshot()
			for _, par := range []int{1, 2, 8} {
				got, stats, err := p.Migrate(context.Background(), src, MigrateOptions{Parallelism: par})
				if err != nil {
					t.Fatalf("%s seed %d par %d: %v", name, seed, par, err)
				}
				if d := dumpDB(got); d != wantDump {
					t.Fatalf("%s seed %d par %d: database diverges from stepwise:\n--- parallel ---\n%s\n--- stepwise ---\n%s",
						name, seed, par, d, wantDump)
				}
				if ix := got.IndexDump(); ix != wantIdx {
					t.Fatalf("%s seed %d par %d: indexes diverge:\n--- parallel ---\n%s\n--- stepwise ---\n%s",
						name, seed, par, ix, wantIdx)
				}
				if p, s := got.IndexStatsOf().Snapshot(); p != wantProbes || s != wantScans {
					t.Errorf("%s seed %d par %d: index stats (%d, %d), want (%d, %d)",
						name, seed, par, p, s, wantProbes, wantScans)
				}
				if stats.Shards < 1 {
					t.Errorf("%s seed %d par %d: stats.Shards = %d", name, seed, par, stats.Shards)
				}
				if stats.BulkRecords < 1 {
					t.Errorf("%s seed %d par %d: stats.BulkRecords = %d", name, seed, par, stats.BulkRecords)
				}
			}
		}
	}
}

// TestParallelMigrateShardStats pins the shard accounting: a type with
// over minShardRecords records fans out when parallelism allows, and
// the bulk-record counter equals the records the rebuild passes stored.
func TestParallelMigrateShardStats(t *testing.T) {
	src := randomCompanyDB(t, 44) // >= 100 EMPs: enough for 2+ shards
	p := fourStepFusiblePlan()

	_, serialStats, err := p.Migrate(context.Background(), src, MigrateOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, parStats, err := p.Migrate(context.Background(), src, MigrateOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	// One pass, two types: serial runs one shard per type.
	if serialStats.Shards != 2 {
		t.Errorf("serial Shards = %d, want 2", serialStats.Shards)
	}
	if parStats.Shards <= serialStats.Shards {
		t.Errorf("parallel Shards = %d, want > %d", parStats.Shards, serialStats.Shards)
	}
	if parStats.BulkRecords != out.Len() || parStats.BulkRecords != serialStats.BulkRecords {
		t.Errorf("BulkRecords = %d (serial %d), want %d",
			parStats.BulkRecords, serialStats.BulkRecords, out.Len())
	}
	if parStats.FusedSteps != 4 || parStats.Passes != 1 {
		t.Errorf("fuse stats = %+v, want 4 fused steps in 1 pass", parStats.FuseStats)
	}
}

// TestParallelMigrateErrorParity: a store-time failure (a default whose
// kind contradicts the declared field kind) surfaces the identical
// error string at every shard count, serial oracle included.
func TestParallelMigrateErrorParity(t *testing.T) {
	src := randomCompanyDB(t, 45)
	p := &Plan{Steps: []Transformation{
		RenameRecord{Old: "EMP", New: "EMPLOYEE"},
		AddField{Record: "EMPLOYEE", Field: "BAD", Kind: value.Int, Default: value.Str("oops")},
	}}
	_, _, serr := p.MigrateDataFused(src)
	if serr == nil {
		t.Fatal("fused oracle did not fail")
	}
	for _, par := range []int{1, 2, 8} {
		_, _, err := p.Migrate(context.Background(), src, MigrateOptions{Parallelism: par})
		if err == nil {
			t.Fatalf("par %d: migration did not fail", par)
		}
		if err.Error() != serr.Error() {
			t.Errorf("par %d error diverges:\nparallel: %v\nserial:   %v", par, err, serr)
		}
	}
}

// TestParallelMigrateContextCanceled: shard workers poll the context;
// a canceled context aborts the rebuild with the cause intact.
func TestParallelMigrateContextCanceled(t *testing.T) {
	src := randomCompanyDB(t, 46)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := fourStepFusiblePlan().Migrate(ctx, src, MigrateOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelHierMigrate: the sharded hierarchical migration matches
// the serial path byte for byte — hierarchic sequence and advisory
// warnings — at every shard count, and the identity plan still clones.
func TestParallelHierMigrate(t *testing.T) {
	src := personnelHierDB(t)
	plan := &HierPlan{Steps: []HierReorder{{Promote: "EMP"}}}

	want, wantWarnings, err := plan.MigrateData(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		got, warnings, stats, err := plan.Migrate(context.Background(), src, MigrateOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if got.DumpSequence() != want.DumpSequence() {
			t.Fatalf("par %d: sequence diverges:\n--- parallel ---\n%s\n--- serial ---\n%s",
				par, got.DumpSequence(), want.DumpSequence())
		}
		if strings.Join(warnings, "|") != strings.Join(wantWarnings, "|") {
			t.Errorf("par %d: warnings = %v, want %v", par, warnings, wantWarnings)
		}
		if stats.Shards < 1 {
			t.Errorf("par %d: stats.Shards = %d", par, stats.Shards)
		}
	}

	identity := &HierPlan{}
	same, _, _, err := identity.Migrate(context.Background(), src, MigrateOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if same == src {
		t.Error("identity migration aliases the source database")
	}
	if same.DumpSequence() != src.DumpSequence() {
		t.Error("identity migration altered the database")
	}
}

// TestParallelHierMigrateContextCanceled mirrors the network test for
// the hierarchical path.
func TestParallelHierMigrateContextCanceled(t *testing.T) {
	src := personnelHierDB(t)
	plan := &HierPlan{Steps: []HierReorder{{Promote: "EMP"}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := plan.Migrate(ctx, src, MigrateOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
