package xform

import (
	"errors"
	"strings"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/semantic"
	"progconv/internal/value"
)

// figure42to44 is the paper's flagship transformation.
func figure42to44() IntroduceIntermediate {
	return IntroduceIntermediate{
		Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
		Upper: "DIV-DEPT", Lower: "DEPT-EMP",
	}
}

// companyV1DB populates Figure 4.2.
func companyV1DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

// TestIntroduceIntermediateMatchesFigure44 verifies the schema mapping
// reproduces Figure 4.4 exactly (against the hand-built fixture).
func TestIntroduceIntermediateMatchesFigure44(t *testing.T) {
	got, err := figure42to44().ApplySchema(schema.CompanyV1())
	if err != nil {
		t.Fatal(err)
	}
	want := schema.CompanyV2()
	if got.DDL() != want.DDL() {
		t.Errorf("transformed schema:\n%s\nwant (Figure 4.4):\n%s", got.DDL(), want.DDL())
	}
}

func TestIntroduceIntermediateMigration(t *testing.T) {
	src := companyV1DB(t)
	tr := figure42to44()
	dst, err := tr.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.MigrateData(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count("DIV") != 2 || out.Count("EMP") != 4 {
		t.Errorf("counts: DIV=%d EMP=%d", out.Count("DIV"), out.Count("EMP"))
	}
	// MACHINERY has SALES and WELDING; TEXTILES has SALES: 3 DEPTs.
	if out.Count("DEPT") != 3 {
		t.Errorf("DEPT count = %d", out.Count("DEPT"))
	}
	// Logical EMP records are unchanged: DEPT-NAME and DIV-NAME resolve
	// through the chain.
	for _, id := range out.AllOf("EMP") {
		rec := out.Data(id)
		if rec.MustGet("DEPT-NAME").IsNull() || rec.MustGet("DIV-NAME").IsNull() {
			t.Errorf("EMP %v lost logical fields", rec)
		}
		if rec.MustGet("EMP-NAME").AsString() == "CLARK" &&
			rec.MustGet("DEPT-NAME").AsString() != "WELDING" {
			t.Errorf("CLARK regrouped wrongly: %v", rec)
		}
	}
}

func TestIntroduceCollapseRoundTrip(t *testing.T) {
	src := companyV1DB(t)
	intro := figure42to44()
	v2schema, err := intro.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	v2db, err := intro.MigrateData(src, v2schema)
	if err != nil {
		t.Fatal(err)
	}
	collapse := CollapseIntermediate{
		Upper: "DIV-DEPT", Lower: "DEPT-EMP", GroupField: "DEPT-NAME", NewSet: "DIV-EMP",
	}
	backSchema, err := collapse.ApplySchema(v2schema)
	if err != nil {
		t.Fatal(err)
	}
	if backSchema.DDL() != src.Schema().DDL() {
		t.Errorf("round trip schema:\n%s\nwant:\n%s", backSchema.DDL(), src.Schema().DDL())
	}
	backDB, err := collapse.MigrateData(v2db, backSchema)
	if err != nil {
		t.Fatal(err)
	}
	// Same logical EMP records, same counts.
	if backDB.Count("EMP") != 4 || backDB.Count("DIV") != 2 {
		t.Error("round trip lost records")
	}
	for _, id := range backDB.AllOf("EMP") {
		rec := backDB.Data(id)
		name := rec.MustGet("EMP-NAME").AsString()
		found := false
		for _, sid := range src.AllOf("EMP") {
			if src.Data(sid).Equal(rec) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("EMP %s differs after round trip: %v", name, rec)
		}
	}
}

func TestIntroduceIntermediateChecks(t *testing.T) {
	cases := []struct {
		name string
		t    IntroduceIntermediate
		want string
	}{
		{"no set", IntroduceIntermediate{Set: "NOPE", Inter: "X", GroupField: "F", Upper: "U", Lower: "L"}, "no set type"},
		{"system set", IntroduceIntermediate{Set: "ALL-DIV", Inter: "X", GroupField: "F", Upper: "U", Lower: "L"}, "SYSTEM"},
		{"no group field", IntroduceIntermediate{Set: "DIV-EMP", Inter: "X", GroupField: "NOPE", Upper: "U", Lower: "L"}, "no field"},
		{"virtual group", IntroduceIntermediate{Set: "DIV-EMP", Inter: "X", GroupField: "DIV-NAME", Upper: "U", Lower: "L"}, "virtual"},
		{"inter exists", IntroduceIntermediate{Set: "DIV-EMP", Inter: "DIV", GroupField: "DEPT-NAME", Upper: "U", Lower: "L"}, "already exists"},
		{"set exists", IntroduceIntermediate{Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME", Upper: "ALL-DIV", Lower: "L"}, "already exists"},
		{"group is key", IntroduceIntermediate{Set: "DIV-EMP", Inter: "DEPT", GroupField: "EMP-NAME", Upper: "U", Lower: "L"}, "is a key"},
	}
	for _, tc := range cases {
		_, err := tc.t.ApplySchema(schema.CompanyV1())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestRenameTransformations(t *testing.T) {
	src := companyV1DB(t)
	plan := &Plan{Steps: []Transformation{
		RenameRecord{Old: "EMP", New: "WORKER"},
		RenameField{Record: "WORKER", Old: "AGE", New: "YEARS"},
		RenameSet{Old: "DIV-EMP", New: "DIV-WORKER"},
	}}
	dstSchema, err := plan.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if dstSchema.Record("WORKER") == nil || dstSchema.Record("EMP") != nil {
		t.Error("record rename")
	}
	if dstSchema.Record("WORKER").Field("YEARS") == nil {
		t.Error("field rename")
	}
	if dstSchema.Set("DIV-WORKER") == nil {
		t.Error("set rename")
	}
	// Virtual re-pointed.
	v := dstSchema.Record("WORKER").Field("DIV-NAME").Virtual
	if v == nil || v.ViaSet != "DIV-WORKER" {
		t.Errorf("virtual after set rename: %+v", v)
	}
	out, err := plan.MigrateData(src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count("WORKER") != 4 {
		t.Error("migration lost workers")
	}
	rec := out.Data(out.AllOf("WORKER")[0])
	if !rec.Has("YEARS") || rec.Has("AGE") {
		t.Errorf("field rename in data: %v", rec)
	}
	if !plan.Invertible() {
		t.Error("renames are invertible")
	}
	if !strings.Contains(plan.Describe(), "rename-record") {
		t.Error("Describe")
	}
	rews, err := plan.Rewriters(src.Schema())
	if err != nil || len(rews) != 3 {
		t.Fatalf("%v %v", rews, err)
	}
	if rews[0].MapRecord("EMP") != "WORKER" {
		t.Error("record map")
	}
	if r, f := rews[1].MapField("WORKER", "AGE"); r != "WORKER" || f != "YEARS" {
		t.Error("field map")
	}
	if n, ok := rews[2].MapSet("DIV-EMP"); !ok || n != "DIV-WORKER" {
		t.Error("set map")
	}
}

func TestRenameKeysFollowFieldRename(t *testing.T) {
	tr := RenameField{Record: "EMP", Old: "EMP-NAME", New: "WNAME"}
	out, err := tr.ApplySchema(schema.CompanyV1())
	if err != nil {
		t.Fatal(err)
	}
	if out.Set("DIV-EMP").Keys[0] != "WNAME" {
		t.Errorf("set keys = %v", out.Set("DIV-EMP").Keys)
	}
}

func TestAddDropField(t *testing.T) {
	src := companyV1DB(t)
	add := AddField{Record: "EMP", Field: "SALARY", Kind: value.Int, Default: value.Of(0)}
	s2, err := add.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := add.MigrateData(src, s2)
	if err != nil {
		t.Fatal(err)
	}
	rec := db2.Data(db2.AllOf("EMP")[0])
	if rec.MustGet("SALARY").AsInt() != 0 {
		t.Errorf("default missing: %v", rec)
	}
	if !add.Invertible() {
		t.Error("add is invertible")
	}

	drop := DropField{Record: "EMP", Field: "AGE"}
	s3, err := drop.ApplySchema(s2)
	if err != nil {
		t.Fatal(err)
	}
	db3, err := drop.MigrateData(db2, s3)
	if err != nil {
		t.Fatal(err)
	}
	if db3.Data(db3.AllOf("EMP")[0]).Has("AGE") {
		t.Error("AGE survived drop")
	}
	if drop.Invertible() {
		t.Error("drop loses information")
	}
	r, _ := drop.Rewriter(s2)
	if !r.IsDropped("EMP", "AGE") || r.IsDropped("EMP", "SALARY") {
		t.Error("dropped bookkeeping")
	}
}

func TestDropFieldGuards(t *testing.T) {
	if _, err := (DropField{Record: "EMP", Field: "EMP-NAME"}).ApplySchema(schema.CompanyV1()); err == nil {
		t.Error("dropping a set key must fail")
	}
	if _, err := (DropField{Record: "DIV", Field: "DIV-NAME"}).ApplySchema(schema.CompanyV1()); err == nil {
		t.Error("dropping a virtual source must fail")
	}
	if _, err := (DropField{Record: "NOPE", Field: "X"}).ApplySchema(schema.CompanyV1()); err == nil {
		t.Error("unknown record")
	}
	if _, err := (DropField{Record: "EMP", Field: "NOPE"}).ApplySchema(schema.CompanyV1()); err == nil {
		t.Error("unknown field")
	}
}

func TestChangeSetKeysAndRetention(t *testing.T) {
	src := companyV1DB(t)
	keys := ChangeSetKeys{Set: "DIV-EMP", Keys: []string{"AGE"}}
	s2, err := keys.ApplySchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := keys.MigrateData(src, s2)
	if err != nil {
		t.Fatal(err)
	}
	// MACHINERY employees now ordered by AGE: BAKER(28), CLARK(33), ADAMS(45).
	div := db2.SystemMembers("ALL-DIV")[0]
	emps := db2.Members("DIV-EMP", div)
	var names []string
	for _, id := range emps {
		names = append(names, db2.Data(id).MustGet("EMP-NAME").AsString())
	}
	if strings.Join(names, ",") != "BAKER,CLARK,ADAMS" {
		t.Errorf("reordered = %v", names)
	}
	r, err := keys.Rewriter(src.Schema())
	if err != nil || strings.Join(r.OrderChanged["DIV-EMP"], ",") != "EMP-NAME" {
		t.Errorf("OrderChanged = %v, %v", r.OrderChanged, err)
	}

	ret := ChangeRetention{Set: "DIV-EMP", Retention: schema.Optional}
	s3, err := ret.ApplySchema(src.Schema())
	if err != nil || s3.Set("DIV-EMP").Retention != schema.Optional {
		t.Errorf("retention: %v", err)
	}
	rr, _ := ret.Rewriter(src.Schema())
	if len(rr.Notes) != 1 {
		t.Error("retention note missing")
	}
}

func TestRewriteHopsSplitAndMerge(t *testing.T) {
	intro := figure42to44()
	r, err := intro.Rewriter(schema.CompanyV1())
	if err != nil {
		t.Fatal(err)
	}
	down := r.RewriteHops([]semantic.Hop{{Set: "DIV-EMP", Down: true}})
	if len(down) != 2 || down[0].Set != "DIV-DEPT" || down[1].Set != "DEPT-EMP" {
		t.Errorf("down split = %v", down)
	}
	up := r.RewriteHops([]semantic.Hop{{Set: "DIV-EMP", Down: false}})
	if len(up) != 2 || up[0].Set != "DEPT-EMP" || up[0].Down || up[1].Set != "DIV-DEPT" {
		t.Errorf("up split = %v", up)
	}

	collapse := CollapseIntermediate{Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		GroupField: "DEPT-NAME", NewSet: "DIV-EMP"}
	cr, err := collapse.Rewriter(schema.CompanyV2())
	if err != nil {
		t.Fatal(err)
	}
	merged := cr.RewriteHops([]semantic.Hop{
		{Set: "DIV-DEPT", Down: true}, {Set: "DEPT-EMP", Down: true},
	})
	if len(merged) != 1 || merged[0].Set != "DIV-EMP" || !merged[0].Down {
		t.Errorf("merged = %v", merged)
	}
	mergedUp := cr.RewriteHops([]semantic.Hop{
		{Set: "DEPT-EMP", Down: false}, {Set: "DIV-DEPT", Down: false},
	})
	if len(mergedUp) != 1 || mergedUp[0].Set != "DIV-EMP" || mergedUp[0].Down {
		t.Errorf("merged up = %v", mergedUp)
	}
}

func TestClassifyFigure42to44(t *testing.T) {
	plan, err := Classify(schema.CompanyV1(), schema.CompanyV2())
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("plan = %s", plan.Describe())
	}
	tr, ok := plan.Steps[0].(IntroduceIntermediate)
	if !ok || tr.Set != "DIV-EMP" || tr.Inter != "DEPT" || tr.GroupField != "DEPT-NAME" {
		t.Errorf("classified = %+v", plan.Steps[0])
	}
	// And the reverse direction.
	rev, err := Classify(schema.CompanyV2(), schema.CompanyV1())
	if err != nil {
		t.Fatalf("reverse classify: %v", err)
	}
	if len(rev.Steps) != 1 {
		t.Fatalf("reverse plan = %s", rev.Describe())
	}
	if _, ok := rev.Steps[0].(CollapseIntermediate); !ok {
		t.Errorf("reverse = %+v", rev.Steps[0])
	}
}

func TestClassifyPropertyChanges(t *testing.T) {
	src := schema.CompanyV1()
	dst := schema.CompanyV1()
	dst.Set("DIV-EMP").Keys = []string{"AGE"}
	dst.Set("DIV-EMP").Retention = schema.Optional
	dst.Record("DIV").Fields = append(dst.Record("DIV").Fields,
		schema.Field{Name: "BUDGET", Kind: value.Int})
	plan, err := Classify(src, dst)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	kinds := map[string]bool{}
	for _, s := range plan.Steps {
		kinds[s.Name()] = true
	}
	for _, want := range []string{"change-set-keys", "change-retention", "add-field"} {
		if !kinds[want] {
			t.Errorf("plan missing %s:\n%s", want, plan.Describe())
		}
	}
}

func TestClassifyDropField(t *testing.T) {
	src := schema.CompanyV1()
	dst := schema.CompanyV1()
	emp := dst.Record("EMP")
	var kept []schema.Field
	for _, f := range emp.Fields {
		if f.Name != "AGE" {
			kept = append(kept, f)
		}
	}
	emp.Fields = kept
	plan, err := Classify(src, dst)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Name() != "drop-field" {
		t.Errorf("plan = %s", plan.Describe())
	}
	if plan.Invertible() {
		t.Error("drop plan must not be invertible")
	}
}

func TestClassifyEscalatesUnknownChanges(t *testing.T) {
	src := schema.CompanyV1()
	dst := schema.CompanyV1()
	// A brand-new unrelated record type with its own set: not catalogued.
	dst.Records = append(dst.Records, &schema.RecordType{Name: "AUDIT",
		Fields: []schema.Field{{Name: "NOTE", Kind: value.String}}})
	dst.Sets = append(dst.Sets, &schema.SetType{Name: "ALL-AUDIT",
		Owner: schema.SystemOwner, Member: "AUDIT"})
	_, err := Classify(src, dst)
	if !errors.Is(err, ErrHazardUnresolved) {
		t.Errorf("err = %v, want ErrHazardUnresolved", err)
	}
}

func TestTopoRecordOrder(t *testing.T) {
	order := topoRecordOrder(schema.CompanyV2())
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["DIV"] < pos["DEPT"] && pos["DEPT"] < pos["EMP"]) {
		t.Errorf("order = %v", order)
	}
	// A cyclic ownership still yields all records.
	cyc := &schema.Network{Name: "C", Records: []*schema.RecordType{
		{Name: "A", Fields: []schema.Field{{Name: "X", Kind: value.Int}}},
		{Name: "B", Fields: []schema.Field{{Name: "Y", Kind: value.Int}}},
	}, Sets: []*schema.SetType{
		{Name: "AB", Owner: "A", Member: "B"},
		{Name: "BA", Owner: "B", Member: "A"},
	}}
	if len(topoRecordOrder(cyc)) != 2 {
		t.Error("cycle fallback")
	}
}

func TestTransformationErrorPaths(t *testing.T) {
	v1 := schema.CompanyV1()
	cases := []struct {
		name string
		err  func() error
	}{
		{"rename record missing", func() error { _, e := (RenameRecord{Old: "X", New: "Y"}).ApplySchema(v1); return e }},
		{"rename record clash", func() error { _, e := (RenameRecord{Old: "EMP", New: "DIV"}).ApplySchema(v1); return e }},
		{"rename field missing rec", func() error { _, e := (RenameField{Record: "X", Old: "A", New: "B"}).ApplySchema(v1); return e }},
		{"rename field missing", func() error { _, e := (RenameField{Record: "EMP", Old: "X", New: "B"}).ApplySchema(v1); return e }},
		{"rename field clash", func() error {
			_, e := (RenameField{Record: "EMP", Old: "AGE", New: "EMP-NAME"}).ApplySchema(v1)
			return e
		}},
		{"rename set missing", func() error { _, e := (RenameSet{Old: "X", New: "Y"}).ApplySchema(v1); return e }},
		{"rename set clash", func() error { _, e := (RenameSet{Old: "DIV-EMP", New: "ALL-DIV"}).ApplySchema(v1); return e }},
		{"add field missing rec", func() error { _, e := (AddField{Record: "X", Field: "F"}).ApplySchema(v1); return e }},
		{"add field clash", func() error { _, e := (AddField{Record: "EMP", Field: "AGE"}).ApplySchema(v1); return e }},
		{"change keys missing", func() error { _, e := (ChangeSetKeys{Set: "X"}).ApplySchema(v1); return e }},
		{"change retention missing", func() error { _, e := (ChangeRetention{Set: "X"}).ApplySchema(v1); return e }},
		{"collapse missing", func() error {
			_, e := (CollapseIntermediate{Upper: "X", Lower: "Y", GroupField: "G", NewSet: "Z"}).ApplySchema(v1)
			return e
		}},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPlanErrorPropagation(t *testing.T) {
	bad := &Plan{Steps: []Transformation{RenameRecord{Old: "NOPE", New: "X"}}}
	if _, err := bad.ApplySchema(schema.CompanyV1()); err == nil {
		t.Error("ApplySchema should propagate")
	}
	if _, err := bad.MigrateData(companyV1DB(t)); err == nil {
		t.Error("MigrateData should propagate")
	}
	if _, err := bad.Rewriters(schema.CompanyV1()); err == nil {
		t.Error("Rewriters should propagate")
	}
}
