// Typed sentinel errors: the conversion framework's failure contract.
// Callers branch on these with errors.Is rather than matching message
// strings; every error raised here wraps one of the sentinels via %w.
package xform

import "errors"

var (
	// ErrNotInvertible reports a transformation with no inverse data
	// mapping — Housel's restriction (§2.2): information-losing steps
	// (drop-field) exclude bridge reconstruction and plan inversion.
	ErrNotInvertible = errors.New("xform: transformation not invertible")

	// ErrHazardUnresolved reports a schema change the automatic
	// classifier cannot explain from the catalogue: the hazard needs a
	// Conversion Analyst decision before any plan can exist.
	ErrHazardUnresolved = errors.New("xform: schema change needs analyst resolution")
)
