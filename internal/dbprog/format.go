package dbprog

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a program back to source text. The Program Generator of
// Figure 4.1 is a printer over the converted AST; Parse(Format(p)) yields
// a program that formats identically, which the tests rely on.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s DIALECT %s.\n", p.Name, p.Dialect)
	formatBlock(&b, p.Stmts, 1)
	b.WriteString("END PROGRAM.\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatBlock(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(b, s, depth)
	}
}

func formatStmt(b *strings.Builder, st Stmt, depth int) {
	indent(b, depth)
	switch s := st.(type) {
	case Let:
		fmt.Fprintf(b, "LET %s = %s.\n", s.Var, FormatExpr(s.E))
	case Print:
		fmt.Fprintf(b, "PRINT %s.\n", formatExprList(s.Args))
	case Accept:
		fmt.Fprintf(b, "ACCEPT %s.\n", s.Var)
	case ReadFile:
		fmt.Fprintf(b, "READ '%s' INTO %s.\n", s.File, s.Var)
	case WriteFile:
		fmt.Fprintf(b, "WRITE '%s' %s.\n", s.File, formatExprList(s.Args))
	case If:
		fmt.Fprintf(b, "IF %s\n", FormatExpr(s.Cond))
		formatBlock(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			indent(b, depth)
			b.WriteString("ELSE\n")
			formatBlock(b, s.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("END-IF.\n")
	case PerformUntil:
		fmt.Fprintf(b, "PERFORM UNTIL %s\n", FormatExpr(s.Cond))
		formatBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("END-PERFORM.\n")
	case Stop:
		b.WriteString("STOP.\n")
	case Move:
		fmt.Fprintf(b, "MOVE %s TO %s IN %s.\n", FormatExpr(s.E), s.Field, s.Record)
	case FindAny:
		fmt.Fprintf(b, "FIND ANY %s%s.\n", s.Record, usingSuffix(s.Using))
	case FindDup:
		fmt.Fprintf(b, "FIND DUPLICATE %s%s.\n", s.Record, usingSuffix(s.Using))
	case FindInSet:
		fmt.Fprintf(b, "FIND %s %s WITHIN %s%s.\n", s.Dir, s.Record, s.Set, usingSuffix(s.Using))
	case FindOwner:
		fmt.Fprintf(b, "FIND OWNER WITHIN %s.\n", s.Set)
	case GetRec:
		fmt.Fprintf(b, "GET %s.\n", s.Record)
	case StoreRec:
		fmt.Fprintf(b, "STORE %s.\n", s.Record)
	case ModifyRec:
		fmt.Fprintf(b, "MODIFY %s%s.\n", s.Record, usingSuffix(s.Using))
	case EraseRec:
		fmt.Fprintf(b, "ERASE %s.\n", s.Record)
	case ConnectRec:
		fmt.Fprintf(b, "CONNECT %s TO %s.\n", s.Record, s.Set)
	case DisconnectRec:
		fmt.Fprintf(b, "DISCONNECT %s FROM %s.\n", s.Record, s.Set)
	case MFind:
		if s.Sort != nil {
			fmt.Fprintf(b, "%s INTO %s.\n", s.Sort, s.Coll)
		} else {
			fmt.Fprintf(b, "%s INTO %s.\n", s.Find, s.Coll)
		}
	case ForEach:
		fmt.Fprintf(b, "FOR EACH %s IN %s\n", s.Var, s.Coll)
		formatBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("END-FOR.\n")
	case MDelete:
		fmt.Fprintf(b, "DELETE %s.\n", s.Coll)
	case MModify:
		fmt.Fprintf(b, "MODIFY %s SET (%s).\n", s.Coll, formatAssigns(s.Assigns))
	case MStore:
		fmt.Fprintf(b, "STORE %s (%s)", s.Record, formatAssigns(s.Assigns))
		sets := make([]string, 0, len(s.Owners))
		for set := range s.Owners {
			sets = append(sets, set)
		}
		sort.Strings(sets)
		for i, set := range sets {
			if i == 0 {
				b.WriteString("\n")
				indent(b, depth+1)
				b.WriteString("VIA ")
			} else {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s = %s", set, s.Owners[set])
		}
		b.WriteString(".\n")
	case SqlForEach:
		fmt.Fprintf(b, "FOR EACH %s IN (%s)\n", s.Var, s.Query)
		formatBlock(b, s.Body, depth+1)
		indent(b, depth)
		b.WriteString("END-FOR.\n")
	case SqlExec:
		fmt.Fprintf(b, "%s.\n", s.Stmt)
	case DLIGet:
		fmt.Fprintf(b, "%s%s.\n", s.Func, ssaSuffix(s.SSAs))
	case DLIInsert:
		fmt.Fprintf(b, "ISRT %s (%s)", s.Record, formatAssigns(s.Assigns))
		if len(s.Under) > 0 {
			fmt.Fprintf(b, " UNDER%s", ssaSuffix(s.Under))
		}
		b.WriteString(".\n")
	case DLIDelete:
		b.WriteString("DLET.\n")
	case DLIRepl:
		fmt.Fprintf(b, "REPL (%s).\n", formatAssigns(s.Assigns))
	default:
		fmt.Fprintf(b, "*> unformattable statement %T\n", st)
	}
}

func formatExprList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = FormatExpr(a)
	}
	return strings.Join(parts, ", ")
}

func usingSuffix(using []string) string {
	if len(using) == 0 {
		return ""
	}
	return " USING " + strings.Join(using, ", ")
}

func formatAssigns(assigns []FieldAssign) string {
	parts := make([]string, len(assigns))
	for i, a := range assigns {
		parts[i] = fmt.Sprintf("%s = %s", a.Field, FormatExpr(a.E))
	}
	return strings.Join(parts, ", ")
}

func ssaSuffix(ssas []SSASpec) string {
	if len(ssas) == 0 {
		return ""
	}
	parts := make([]string, len(ssas))
	for i, s := range ssas {
		if s.Field == "" {
			parts[i] = s.Segment
		} else {
			parts[i] = fmt.Sprintf("%s(%s %s %s)", s.Segment, s.Field, s.Op, FormatExpr(s.E))
		}
	}
	return " " + strings.Join(parts, ", ")
}

// FormatExpr renders an expression, parenthesizing nested binaries so the
// output re-parses with identical structure.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case Lit:
		return x.V.Literal()
	case Var:
		return x.Name
	case Field:
		return fmt.Sprintf("%s IN %s", x.Field, x.Record)
	case StatusRef:
		return "DB-STATUS"
	case RecordRef:
		return "RECORD " + x.Record
	case Bin:
		l, r := FormatExpr(x.L), FormatExpr(x.R)
		if needsParens(x.L) {
			l = "(" + l + ")"
		}
		if needsParens(x.R) {
			r = "(" + r + ")"
		}
		return fmt.Sprintf("%s %s %s", l, x.Op, r)
	case Un:
		inner := FormatExpr(x.E)
		if needsParens(x.E) {
			inner = "(" + inner + ")"
		}
		if x.Op == "NOT" {
			return "NOT " + inner
		}
		return "- " + inner
	}
	return fmt.Sprintf("<%T>", e)
}

func needsParens(e Expr) bool {
	switch e.(type) {
	case Bin, Un:
		return true
	}
	return false
}
