package dbprog

import (
	"strconv"
	"strings"

	"progconv/internal/lex"
	"progconv/internal/mdml"
	"progconv/internal/sequel"
	"progconv/internal/value"
)

// Parse parses a complete program:
//
//	PROGRAM <name> DIALECT <NETWORK|MARYLAND|SEQUEL|DLI>.
//	  <statements>
//	END PROGRAM.
func Parse(src string) (*Program, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	p := &parser{s: s}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after END PROGRAM: %s", s.Peek())
	}
	return prog, nil
}

type parser struct {
	s       *lex.Stream
	dialect Dialect
}

func (p *parser) program() (*Program, error) {
	if err := p.s.ExpectKeyword("PROGRAM"); err != nil {
		return nil, err
	}
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("DIALECT"); err != nil {
		return nil, err
	}
	dname, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	d, err := ParseDialect(dname)
	if err != nil {
		return nil, err
	}
	p.dialect = d
	if err := p.s.ExpectPunct("."); err != nil {
		return nil, err
	}
	prog := &Program{Name: name, Dialect: d}
	stmts, err := p.block("END")
	if err != nil {
		return nil, err
	}
	prog.Stmts = stmts
	if err := p.s.ExpectKeywords("END", "PROGRAM"); err != nil {
		return nil, err
	}
	if err := p.s.ExpectPunct("."); err != nil {
		return nil, err
	}
	return prog, nil
}

// block parses statements until one of the stop keywords appears.
func (p *parser) block(stops ...string) ([]Stmt, error) {
	var out []Stmt
	for {
		if p.s.AtEOF() {
			return nil, lex.Errorf(p.s.Peek(), "unexpected end of program")
		}
		for _, stop := range stops {
			if p.s.IsKeyword(stop) {
				return out, nil
			}
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.s.IsKeyword("LET"):
		return p.letStmt()
	case p.s.IsKeyword("PRINT"):
		return p.printStmt()
	case p.s.IsKeyword("ACCEPT"):
		return p.acceptStmt()
	case p.s.IsKeyword("READ"):
		return p.readStmt()
	case p.s.IsKeyword("WRITE"):
		return p.writeStmt()
	case p.s.IsKeyword("IF"):
		return p.ifStmt()
	case p.s.IsKeyword("PERFORM"):
		return p.performStmt()
	case p.s.IsKeyword("STOP"):
		p.s.Next()
		return Stop{}, p.s.ExpectPunct(".")
	case p.s.IsKeyword("FOR"):
		return p.forEachStmt()
	case p.s.IsKeyword("MOVE"):
		return p.moveStmt()
	case p.s.IsKeyword("FIND"):
		return p.findStmt()
	case p.s.IsKeyword("GET"):
		return p.getStmt()
	case p.s.IsKeyword("STORE"):
		return p.storeStmt()
	case p.s.IsKeyword("MODIFY"):
		return p.modifyStmt()
	case p.s.IsKeyword("ERASE"):
		return p.eraseStmt()
	case p.s.IsKeyword("CONNECT"):
		return p.connectStmt()
	case p.s.IsKeyword("DISCONNECT"):
		return p.disconnectStmt()
	case p.s.IsKeyword("DELETE") && p.dialect == Maryland:
		return p.mDeleteStmt()
	case p.s.IsKeyword("SORT") && p.dialect == Maryland:
		return p.mFindStmt()
	case p.dialect == Sequel && (p.s.IsKeyword("INSERT") || p.s.IsKeyword("DELETE") || p.s.IsKeyword("UPDATE")):
		stmt, err := sequel.ParseStatementFrom(p.s)
		if err != nil {
			return nil, err
		}
		return SqlExec{Stmt: stmt}, p.s.ExpectPunct(".")
	case p.dialect == DLI && (p.s.IsKeyword("GU") || p.s.IsKeyword("GN") || p.s.IsKeyword("GNP")):
		return p.dliGetStmt()
	case p.dialect == DLI && p.s.IsKeyword("ISRT"):
		return p.dliInsertStmt()
	case p.dialect == DLI && p.s.IsKeyword("DLET"):
		p.s.Next()
		return DLIDelete{}, p.s.ExpectPunct(".")
	case p.dialect == DLI && p.s.IsKeyword("REPL"):
		return p.dliReplStmt()
	}
	return nil, lex.Errorf(p.s.Peek(), "unexpected statement start %s", p.s.Peek())
}

func (p *parser) letStmt() (Stmt, error) {
	p.s.Next()
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectPunct("="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Let{Var: name, E: e}, p.s.ExpectPunct(".")
}

func (p *parser) printStmt() (Stmt, error) {
	p.s.Next()
	args, err := p.exprList()
	if err != nil {
		return nil, err
	}
	return Print{Args: args}, p.s.ExpectPunct(".")
}

func (p *parser) acceptStmt() (Stmt, error) {
	p.s.Next()
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return Accept{Var: name}, p.s.ExpectPunct(".")
}

func (p *parser) readStmt() (Stmt, error) {
	p.s.Next()
	t := p.s.Peek()
	if t.Kind != lex.Str {
		return nil, lex.Errorf(t, "READ expects a file name string, found %s", t)
	}
	p.s.Next()
	if err := p.s.ExpectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return ReadFile{File: t.Text, Var: name}, p.s.ExpectPunct(".")
}

func (p *parser) writeStmt() (Stmt, error) {
	p.s.Next()
	t := p.s.Peek()
	if t.Kind != lex.Str {
		return nil, lex.Errorf(t, "WRITE expects a file name string, found %s", t)
	}
	p.s.Next()
	args, err := p.exprList()
	if err != nil {
		return nil, err
	}
	return WriteFile{File: t.Text, Args: args}, p.s.ExpectPunct(".")
}

func (p *parser) ifStmt() (Stmt, error) {
	p.s.Next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block("ELSE", "END-IF")
	if err != nil {
		return nil, err
	}
	st := If{Cond: cond, Then: then}
	if p.s.TakeKeyword("ELSE") {
		els, err := p.block("END-IF")
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	if err := p.s.ExpectKeyword("END-IF"); err != nil {
		return nil, err
	}
	return st, p.s.ExpectPunct(".")
}

func (p *parser) performStmt() (Stmt, error) {
	p.s.Next()
	if err := p.s.ExpectKeyword("UNTIL"); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block("END-PERFORM")
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("END-PERFORM"); err != nil {
		return nil, err
	}
	return PerformUntil{Cond: cond, Body: body}, p.s.ExpectPunct(".")
}

func (p *parser) forEachStmt() (Stmt, error) {
	p.s.Next()
	if err := p.s.ExpectKeyword("EACH"); err != nil {
		return nil, err
	}
	v, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("IN"); err != nil {
		return nil, err
	}
	// SEQUEL dialect: FOR EACH R IN (SELECT ...); Maryland: FOR EACH R IN COLL.
	if p.dialect == Sequel {
		if err := p.s.ExpectPunct("("); err != nil {
			return nil, err
		}
		stmt, err := sequel.ParseStatementFrom(p.s)
		if err != nil {
			return nil, err
		}
		q, ok := stmt.(*sequel.Select)
		if !ok {
			return nil, lex.Errorf(p.s.Peek(), "FOR EACH requires a SELECT")
		}
		if err := p.s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block("END-FOR")
		if err != nil {
			return nil, err
		}
		if err := p.s.ExpectKeyword("END-FOR"); err != nil {
			return nil, err
		}
		return SqlForEach{Var: v, Query: q, Body: body}, p.s.ExpectPunct(".")
	}
	coll, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	body, err := p.block("END-FOR")
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("END-FOR"); err != nil {
		return nil, err
	}
	return ForEach{Var: v, Coll: coll, Body: body}, p.s.ExpectPunct(".")
}

func (p *parser) moveStmt() (Stmt, error) {
	p.s.Next()
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("TO"); err != nil {
		return nil, err
	}
	f, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("IN"); err != nil {
		return nil, err
	}
	r, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return Move{E: e, Field: f, Record: r}, p.s.ExpectPunct(".")
}

// findStmt dispatches the FIND forms of the network and Maryland dialects.
func (p *parser) findStmt() (Stmt, error) {
	if p.dialect == Maryland {
		return p.mFindStmt()
	}
	p.s.Next()
	switch {
	case p.s.TakeKeyword("ANY"):
		rec, using, err := p.recUsing()
		if err != nil {
			return nil, err
		}
		return FindAny{Record: rec, Using: using}, p.s.ExpectPunct(".")
	case p.s.TakeKeyword("DUPLICATE"):
		rec, using, err := p.recUsing()
		if err != nil {
			return nil, err
		}
		return FindDup{Record: rec, Using: using}, p.s.ExpectPunct(".")
	case p.s.TakeKeyword("OWNER"):
		if err := p.s.ExpectKeyword("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		return FindOwner{Set: set}, p.s.ExpectPunct(".")
	case p.s.IsKeyword("FIRST") || p.s.IsKeyword("NEXT") || p.s.IsKeyword("PRIOR") || p.s.IsKeyword("LAST"):
		dir := strings.ToUpper(p.s.Next().Text)
		rec, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.s.ExpectKeyword("WITHIN"); err != nil {
			return nil, err
		}
		set, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		using, err := p.usingClause()
		if err != nil {
			return nil, err
		}
		return FindInSet{Dir: dir, Record: rec, Set: set, Using: using}, p.s.ExpectPunct(".")
	}
	return nil, lex.Errorf(p.s.Peek(), "expected ANY, DUPLICATE, OWNER, FIRST, NEXT, PRIOR or LAST after FIND")
}

func (p *parser) recUsing() (string, []string, error) {
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return "", nil, err
	}
	using, err := p.usingClause()
	return rec, using, err
}

func (p *parser) usingClause() ([]string, error) {
	if !p.s.TakeKeyword("USING") {
		return nil, nil
	}
	var out []string
	for {
		f, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
		if !p.s.TakePunct(",") {
			break
		}
	}
	return out, nil
}

// mFindStmt parses FIND(...) INTO COLL. or SORT(FIND(...)) ON (...) INTO COLL.
func (p *parser) mFindStmt() (Stmt, error) {
	st := MFind{}
	if p.s.IsKeyword("SORT") {
		srt, err := mdml.ParseSortFrom(p.s)
		if err != nil {
			return nil, err
		}
		st.Sort = srt
	} else {
		f, err := mdml.ParseFindFrom(p.s)
		if err != nil {
			return nil, err
		}
		st.Find = f
	}
	if err := p.s.ExpectKeyword("INTO"); err != nil {
		return nil, err
	}
	coll, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	st.Coll = coll
	return st, p.s.ExpectPunct(".")
}

func (p *parser) getStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return GetRec{Record: rec}, p.s.ExpectPunct(".")
}

// storeStmt parses the network STORE REC. and the Maryland
// STORE REC (F = e, ...) [VIA SET = FIND(...), ...].
func (p *parser) storeStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if p.dialect != Maryland {
		return StoreRec{Record: rec}, p.s.ExpectPunct(".")
	}
	assigns, err := p.assignList()
	if err != nil {
		return nil, err
	}
	st := MStore{Record: rec, Assigns: assigns, Owners: map[string]*mdml.Find{}}
	for p.s.TakeKeyword("VIA") {
		set, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.s.ExpectPunct("="); err != nil {
			return nil, err
		}
		f, err := mdml.ParseFindFrom(p.s)
		if err != nil {
			return nil, err
		}
		st.Owners[set] = f
		if !p.s.TakePunct(",") {
			break
		}
	}
	return st, p.s.ExpectPunct(".")
}

// assignList parses (F = expr, ...).
func (p *parser) assignList() ([]FieldAssign, error) {
	if err := p.s.ExpectPunct("("); err != nil {
		return nil, err
	}
	var out []FieldAssign
	for {
		f, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.s.ExpectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, FieldAssign{Field: f, E: e})
		if !p.s.TakePunct(",") {
			break
		}
	}
	return out, p.s.ExpectPunct(")")
}

// modifyStmt parses the network MODIFY REC [USING ...]. and the Maryland
// MODIFY COLL SET (F = e, ...).
func (p *parser) modifyStmt() (Stmt, error) {
	p.s.Next()
	name, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if p.dialect == Maryland {
		if err := p.s.ExpectKeyword("SET"); err != nil {
			return nil, err
		}
		assigns, err := p.assignList()
		if err != nil {
			return nil, err
		}
		return MModify{Coll: name, Assigns: assigns}, p.s.ExpectPunct(".")
	}
	using, err := p.usingClause()
	if err != nil {
		return nil, err
	}
	return ModifyRec{Record: name, Using: using}, p.s.ExpectPunct(".")
}

func (p *parser) eraseStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return EraseRec{Record: rec}, p.s.ExpectPunct(".")
}

func (p *parser) connectStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("TO"); err != nil {
		return nil, err
	}
	set, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return ConnectRec{Record: rec, Set: set}, p.s.ExpectPunct(".")
}

func (p *parser) disconnectStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.s.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	set, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return DisconnectRec{Record: rec, Set: set}, p.s.ExpectPunct(".")
}

func (p *parser) mDeleteStmt() (Stmt, error) {
	p.s.Next()
	coll, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	return MDelete{Coll: coll}, p.s.ExpectPunct(".")
}

// dliGetStmt parses GU/GN/GNP [SSA [, SSA ...]].
func (p *parser) dliGetStmt() (Stmt, error) {
	fn := strings.ToUpper(p.s.Next().Text)
	st := DLIGet{Func: fn}
	for p.s.Peek().Kind == lex.Ident {
		ssa, err := p.ssaSpec()
		if err != nil {
			return nil, err
		}
		st.SSAs = append(st.SSAs, ssa)
		if !p.s.TakePunct(",") {
			break
		}
	}
	return st, p.s.ExpectPunct(".")
}

func (p *parser) ssaSpec() (SSASpec, error) {
	var ssa SSASpec
	seg, err := p.s.ExpectIdent()
	if err != nil {
		return ssa, err
	}
	ssa.Segment = seg
	if p.s.TakePunct("(") {
		f, err := p.s.ExpectIdent()
		if err != nil {
			return ssa, err
		}
		op := p.s.Peek()
		if op.Kind != lex.Punct || !isCmpOp(op.Text) {
			return ssa, lex.Errorf(op, "expected comparison operator in SSA")
		}
		p.s.Next()
		e, err := p.expr()
		if err != nil {
			return ssa, err
		}
		ssa.Field, ssa.Op, ssa.E = f, op.Text, e
		if err := p.s.ExpectPunct(")"); err != nil {
			return ssa, err
		}
	}
	return ssa, nil
}

func (p *parser) dliInsertStmt() (Stmt, error) {
	p.s.Next()
	rec, err := p.s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	assigns, err := p.assignList()
	if err != nil {
		return nil, err
	}
	st := DLIInsert{Record: rec, Assigns: assigns}
	if p.s.TakeKeyword("UNDER") {
		for {
			ssa, err := p.ssaSpec()
			if err != nil {
				return nil, err
			}
			st.Under = append(st.Under, ssa)
			if !p.s.TakePunct(",") {
				break
			}
		}
	}
	return st, p.s.ExpectPunct(".")
}

func (p *parser) dliReplStmt() (Stmt, error) {
	p.s.Next()
	assigns, err := p.assignList()
	if err != nil {
		return nil, err
	}
	return DLIRepl{Assigns: assigns}, p.s.ExpectPunct(".")
}

// ---- expressions ----

func (p *parser) exprList() ([]Expr, error) {
	var out []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.s.TakePunct(",") {
			break
		}
	}
	return out, nil
}

// expr parses with precedence OR < AND < NOT < comparison < additive <
// multiplicative < unary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.s.TakeKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.s.TakeKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.s.TakeKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Un{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.s.Peek()
	if t.Kind == lex.Punct && isCmpOp(t.Text) {
		p.s.Next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Bin{Op: t.Text, L: l, R: r}, nil
	}
	return l, nil
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.s.IsPunct("+") || p.s.IsPunct("-") {
		op := p.s.Next().Text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.s.IsPunct("*") || p.s.IsPunct("/") {
		op := p.s.Next().Text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.s.TakePunct("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Un{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.s.Peek()
	switch {
	case t.Kind == lex.Str:
		p.s.Next()
		return Lit{V: value.Str(t.Text)}, nil
	case t.Kind == lex.Number:
		p.s.Next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, lex.Errorf(t, "bad number %q", t.Text)
			}
			return Lit{V: value.F(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, lex.Errorf(t, "bad number %q", t.Text)
		}
		return Lit{V: value.Of(i)}, nil
	case t.Kind == lex.Punct && t.Text == "(":
		p.s.Next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.s.ExpectPunct(")")
	case t.Kind == lex.Ident && strings.EqualFold(t.Text, "DB-STATUS"):
		p.s.Next()
		return StatusRef{}, nil
	case t.Kind == lex.Ident && strings.EqualFold(t.Text, "RECORD"):
		p.s.Next()
		rec, err := p.s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		return RecordRef{Record: rec}, nil
	case t.Kind == lex.Ident:
		p.s.Next()
		// FIELD IN REC, or a bare variable.
		if p.s.TakeKeyword("IN") {
			rec, err := p.s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			return Field{Record: rec, Field: t.Text}, nil
		}
		return Var{Name: t.Text}, nil
	}
	return nil, lex.Errorf(t, "expected expression, found %s", t)
}
