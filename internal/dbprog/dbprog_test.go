package dbprog

import (
	"errors"
	"strings"
	"testing"

	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func terminalLines(tr *Trace) []string {
	var out []string
	for _, e := range tr.Events {
		if e.Kind == Terminal {
			out = append(out, e.Text)
		}
	}
	return out
}

// companyNet loads the Figure 4.2 population.
func companyNet(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

func TestHostLanguageBasics(t *testing.T) {
	p := mustParse(t, `
PROGRAM HOST-BASICS DIALECT NETWORK.
  LET X = 2 + 3 * 4.
  LET Y = (2 + 3) * 4.
  LET NAME = 'AL' + 'ICE'.
  LET NEG = - X.
  PRINT X, Y, NAME, NEG.
  IF X < Y PRINT 'LESS'. ELSE PRINT 'NOT LESS'. END-IF.
  LET I = 0.
  PERFORM UNTIL I >= 3
    LET I = I + 1.
    PRINT 'ITER', I.
  END-PERFORM.
  PRINT 1.5 + 1, 7 / 2, 8.0 / 2.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: netstore.NewDB(schema.CompanyV1())})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"14 20 ALICE -14",
		"LESS",
		"ITER 1", "ITER 2", "ITER 3",
		"2.5 3 4",
	}
	got := terminalLines(tr)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("terminal:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestStopAndBooleans(t *testing.T) {
	p := mustParse(t, `
PROGRAM STOPS DIALECT NETWORK.
  IF 1 = 1 AND NOT 2 = 3 PRINT 'YES'. END-IF.
  IF 1 = 2 OR 3 = 3 PRINT 'ALSO'. END-IF.
  STOP.
  PRINT 'NEVER'.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: netstore.NewDB(schema.CompanyV1())})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	if len(got) != 2 || got[0] != "YES" || got[1] != "ALSO" {
		t.Errorf("terminal = %v", got)
	}
}

func TestAcceptAndFiles(t *testing.T) {
	p := mustParse(t, `
PROGRAM FILES DIALECT NETWORK.
  ACCEPT WHO.
  PRINT 'HELLO', WHO.
  READ 'IN-FILE' INTO L1.
  READ 'IN-FILE' INTO L2.
  READ 'IN-FILE' INTO L3.
  WRITE 'OUT-FILE' L1, '/', L2.
  IF L3 = 'X' PRINT 'IMPOSSIBLE'. END-IF.
END PROGRAM.
`)
	_, err := Run(p, Config{
		Net:           netstore.NewDB(schema.CompanyV1()),
		TerminalInput: []string{"WORLD"},
		Files:         map[string][]string{"IN-FILE": {"A", "B"}},
	})
	// L3 is null after EOF; comparing null with a string is an error per
	// the host semantics? No: Compare treats null as ordered-below, so
	// L3 = 'X' is false, not an error.
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, _ := Run(p, Config{
		Net:           netstore.NewDB(schema.CompanyV1()),
		TerminalInput: []string{"WORLD"},
		Files:         map[string][]string{"IN-FILE": {"A", "B"}},
	})
	var kinds []string
	for _, e := range tr.Events {
		kinds = append(kinds, e.String())
	}
	joined := strings.Join(kinds, "\n")
	for _, want := range []string{
		"TERMINAL| HELLO WORLD",
		"READ IN-FILE| A",
		"READ IN-FILE| B",
		"READ IN-FILE| <eof>",
		"WRITE OUT-FILE| A / B",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

// TestPaperTemplateB runs the paper's §4.1 CODASYL template (B) shape:
// find EMP-DEPT records for department D2 with three years of service.
func TestPaperTemplateB(t *testing.T) {
	db := netstore.NewDB(schema.EmpDeptNetwork())
	s := netstore.NewSession(db)
	s.Store("DEPT", value.FromPairs("D#", "D2", "DNAME", "SALES", "MGR", "SMITH"))
	s.Store("DEPT", value.FromPairs("D#", "D12", "DNAME", "ACCT", "MGR", "JONES"))
	for _, e := range []struct {
		e, d string
		yos  int
	}{
		{"E1", "D2", 3}, {"E2", "D2", 11}, {"E3", "D12", 3},
	} {
		s.FindAny("EMP", nil) // ensure EMP currency not needed; store EMPs first
		s.Store("EMP", value.FromPairs("E#", e.e, "ENAME", "EMP-"+e.e, "AGE", 30))
		s.FindAny("DEPT", value.FromPairs("D#", e.d))
		s.FindAny("EMP", value.FromPairs("E#", e.e))
		// Order matters: currency for both sets must be right before STORE.
		s.FindAny("DEPT", value.FromPairs("D#", e.d))
		sEmp := value.FromPairs("E#", e.e, "D#", e.d, "YEAR-OF-SERVICE", e.yos)
		// Need EMP currency for E-ED: restore it via FindAny on EMP.
		s2 := netstore.NewSession(db)
		s2.FindAny("DEPT", value.FromPairs("D#", e.d))
		s2.FindAny("EMP", value.FromPairs("E#", e.e))
		if _, st, err := s2.Store("EMP-DEPT", sEmp); st != netstore.OK || err != nil {
			t.Fatalf("store EMP-DEPT: %v %v", st, err)
		}
	}

	p := mustParse(t, `
PROGRAM TEMPLATE-B DIALECT NETWORK.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF DB-STATUS <> 'OK'
    PRINT 'NOT FOUND'.
    STOP.
  END-IF.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP-DEPT.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP-DEPT WITHIN ED USING YEAR-OF-SERVICE.
    IF DB-STATUS = 'OK'
      GET EMP-DEPT.
      PRINT E# IN EMP-DEPT, YEAR-OF-SERVICE IN EMP-DEPT.
    END-IF.
  END-PERFORM.
  PRINT 'DONE'.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{"E1 3", "DONE"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v, want %v", got, want)
	}
}

func TestNetworkStoreModifyEraseConnect(t *testing.T) {
	sch := schema.CompanyV1()
	sch.Set("DIV-EMP").Insertion = schema.Manual
	sch.Set("DIV-EMP").Retention = schema.Optional
	db := netstore.NewDB(sch)
	p := mustParse(t, `
PROGRAM LIFECYCLE DIALECT NETWORK.
  MOVE 'M' TO DIV-NAME IN DIV.
  MOVE 'DETROIT' TO DIV-LOC IN DIV.
  STORE DIV.
  MOVE 'ADAMS' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 45 TO AGE IN EMP.
  STORE EMP.
  CONNECT EMP TO DIV-EMP.
  PRINT DB-STATUS.
  GET EMP.
  PRINT DIV-NAME IN EMP.
  MOVE 46 TO AGE IN EMP.
  MODIFY EMP USING AGE.
  GET EMP.
  PRINT AGE IN EMP.
  DISCONNECT EMP FROM DIV-EMP.
  PRINT DB-STATUS.
  ERASE EMP.
  PRINT DB-STATUS.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{"OK", "M", "46", "OK", "OK"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v, want %v", got, want)
	}
	if db.Count("EMP") != 0 {
		t.Error("EMP not erased")
	}
}

func TestFindVariantsAndOwner(t *testing.T) {
	db := companyNet(t)
	p := mustParse(t, `
PROGRAM NAV DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND LAST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  FIND PRIOR EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  FIND FIRST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  FIND OWNER WITHIN DIV-EMP.
  GET DIV.
  PRINT DIV-LOC IN DIV.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  FIND ANY EMP USING DEPT-NAME.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  FIND DUPLICATE EMP USING DEPT-NAME.
  GET EMP.
  PRINT EMP-NAME IN EMP.
  PRINT RECORD DIV.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{"CLARK", "BAKER", "ADAMS", "DETROIT", "ADAMS", "BAKER",
		"{DIV-NAME=MACHINERY, DIV-LOC=DETROIT}"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v, want %v", got, want)
	}
}

func TestMarylandDialect(t *testing.T) {
	db := companyNet(t)
	p := mustParse(t, `
PROGRAM MD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) ON (AGE) INTO BYAGE.
  FOR EACH E IN BYAGE
    PRINT EMP-NAME IN E.
  END-FOR.
  MODIFY OLD SET (DEPT-NAME = 'SENIOR').
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SENIOR')) INTO SENIORS.
  FOR EACH E IN SENIORS
    PRINT 'S', EMP-NAME IN E.
  END-FOR.
  STORE EMP (EMP-NAME = 'FOSTER', DEPT-NAME = 'LOOMS', AGE = 30)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'TEXTILES')).
  DELETE SENIORS.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) INTO REST.
  FOR EACH E IN REST
    PRINT 'R', EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{
		"ADAMS 45", "CLARK 33", "DAVIS 51",
		"CLARK", "ADAMS", "DAVIS",
		"S ADAMS", "S CLARK", "S DAVIS",
		"R BAKER", "R FOSTER",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v\nwant %v", got, want)
	}
}

func TestSequelDialect(t *testing.T) {
	db := relstore.NewDB(schema.EmpDeptRelational())
	for _, r := range []struct {
		rel string
		rec *value.Record
	}{
		{"EMP", value.FromPairs("E#", "E1", "ENAME", "BAKER", "AGE", 28)},
		{"EMP", value.FromPairs("E#", "E2", "ENAME", "CLARK", "AGE", 33)},
		{"DEPT", value.FromPairs("D#", "D2", "DNAME", "SALES", "MGR", "SMITH")},
		{"EMP-DEPT", value.FromPairs("E#", "E1", "D#", "D2", "YEAR-OF-SERVICE", 3)},
	} {
		db.Insert(r.rel, r.rec)
	}
	p := mustParse(t, `
PROGRAM SQ DIALECT SEQUEL.
  LET MIN = 30.
  FOR EACH R IN (SELECT ENAME, AGE FROM EMP WHERE AGE > :MIN)
    PRINT ENAME IN R, AGE IN R.
  END-FOR.
  INSERT INTO EMP (E#, ENAME, AGE) VALUES ('E9', 'NEW', 20).
  UPDATE EMP SET AGE = 21 WHERE E# = 'E9'.
  FOR EACH R IN (SELECT ENAME FROM EMP WHERE E# IN
      (SELECT E# FROM EMP-DEPT WHERE D# = 'D2' AND YEAR-OF-SERVICE = 3))
    PRINT 'TPL-A', ENAME IN R.
  END-FOR.
  DELETE FROM EMP WHERE E# = 'E9'.
  FOR EACH R IN (SELECT E# FROM EMP)
    PRINT 'LEFT', E# IN R.
  END-FOR.
END PROGRAM.
`)
	tr, err := Run(p, Config{Rel: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{"CLARK 33", "TPL-A BAKER", "LEFT E1", "LEFT E2"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v, want %v", got, want)
	}
}

func TestDLIDialect(t *testing.T) {
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	p := mustParse(t, `
PROGRAM HIER DIALECT DLI.
  ISRT DEPT (D# = 'D12', DNAME = 'ACCT', MGR = 'SMITH').
  ISRT DEPT (D# = 'D2', DNAME = 'SALES', MGR = 'JONES').
  ISRT EMP (E# = 'E1', ENAME = 'BAKER', AGE = 28, YEAR-OF-SERVICE = 3) UNDER DEPT(D# = 'D12').
  ISRT EMP (E# = 'E2', ENAME = 'CLARK', AGE = 33, YEAR-OF-SERVICE = 3) UNDER DEPT(D# = 'D2').
  GU DEPT(D# = 'D12').
  PRINT DNAME IN DEPT.
  GNP EMP.
  PRINT ENAME IN EMP.
  GNP EMP.
  PRINT DB-STATUS.
  GU DEPT(D# = 'D2'), EMP(E# = 'E2').
  REPL (AGE = 34).
  GU EMP(AGE > 30).
  PRINT ENAME IN EMP, AGE IN EMP.
  DLET.
  GU EMP(AGE > 30).
  PRINT DB-STATUS.
  GU DEPT(D# = 'D12').
  PERFORM UNTIL DB-STATUS <> 'OK'
    GN EMP.
    IF DB-STATUS = 'OK'
      PRINT 'SWEEP', ENAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`)
	tr, err := Run(p, Config{Hier: db})
	if err != nil {
		t.Fatal(err)
	}
	got := terminalLines(tr)
	want := []string{"ACCT", "BAKER", "GE", "CLARK 34", "GE", "SWEEP BAKER"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("terminal = %v, want %v", got, want)
	}
}

func TestStepBudget(t *testing.T) {
	p := mustParse(t, `
PROGRAM RUNAWAY DIALECT NETWORK.
  LET I = 0.
  PERFORM UNTIL 1 = 2
    LET I = I + 1.
  END-PERFORM.
END PROGRAM.
`)
	_, err := Run(p, Config{Net: netstore.NewDB(schema.CompanyV1()), MaxSteps: 1000})
	if !errors.Is(err, ErrSteps) {
		t.Errorf("err = %v, want ErrSteps", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	net := netstore.NewDB(schema.CompanyV1())
	cases := []struct {
		name, src string
	}{
		{"unknown var", `PROGRAM X DIALECT NETWORK. PRINT NOPE. END PROGRAM.`},
		{"no buffer", `PROGRAM X DIALECT NETWORK. PRINT F IN EMP. END PROGRAM.`},
		{"unknown set", `PROGRAM X DIALECT NETWORK. FIND FIRST EMP WITHIN NOPE. END PROGRAM.`},
		{"bad record ref", `PROGRAM X DIALECT NETWORK. PRINT RECORD EMP. END PROGRAM.`},
		{"division by zero", `PROGRAM X DIALECT NETWORK. PRINT 1 / 0. END PROGRAM.`},
		{"float div by zero", `PROGRAM X DIALECT NETWORK. PRINT 1.0 / 0.0. END PROGRAM.`},
		{"not on number", `PROGRAM X DIALECT NETWORK. PRINT NOT 3. END PROGRAM.`},
		{"neg on string", `PROGRAM X DIALECT NETWORK. PRINT - 'A'. END PROGRAM.`},
		{"and on number", `PROGRAM X DIALECT NETWORK. PRINT 1 AND 2. END PROGRAM.`},
		{"and rhs not bool", `PROGRAM X DIALECT NETWORK. PRINT 1 = 1 AND 2. END PROGRAM.`},
		{"arith on string", `PROGRAM X DIALECT NETWORK. PRINT 'A' * 2. END PROGRAM.`},
		{"incomparable", `PROGRAM X DIALECT NETWORK. PRINT 'A' < 2. END PROGRAM.`},
		{"cond not bool", `PROGRAM X DIALECT NETWORK. IF 3 PRINT 'X'. END-IF. END PROGRAM.`},
		{"unknown collection", `PROGRAM X DIALECT MARYLAND. FOR EACH E IN NOPE PRINT 'X'. END-FOR. END PROGRAM.`},
		{"unknown coll delete", `PROGRAM X DIALECT MARYLAND. DELETE NOPE. END PROGRAM.`},
		{"unknown coll modify", `PROGRAM X DIALECT MARYLAND. MODIFY NOPE SET (A = 1). END PROGRAM.`},
		{"bad net record", `PROGRAM X DIALECT NETWORK. FIND ANY NOPE. END PROGRAM.`},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := Run(p, Config{Net: net}); err == nil {
			t.Errorf("%s: expected runtime error", tc.name)
		}
	}
}

func TestMissingDatabaseConfig(t *testing.T) {
	for _, src := range []string{
		`PROGRAM X DIALECT NETWORK. PRINT 'HI'. END PROGRAM.`,
		`PROGRAM X DIALECT MARYLAND. PRINT 'HI'. END PROGRAM.`,
		`PROGRAM X DIALECT SEQUEL. PRINT 'HI'. END PROGRAM.`,
		`PROGRAM X DIALECT DLI. PRINT 'HI'. END PROGRAM.`,
	} {
		p := mustParse(t, src)
		if _, err := Run(p, Config{}); err == nil {
			t.Errorf("%s: expected config error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"PROGRAM X DIALECT COBOL.",
		"PROGRAM X DIALECT NETWORK. FROB. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. PRINT 'X'.",
		"PROGRAM X DIALECT NETWORK. IF 1 = 1 PRINT 'X'.",
		"PROGRAM X DIALECT NETWORK. FIND SIDEWAYS EMP. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. LET X 3. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. READ BADNAME INTO X. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. WRITE BADNAME X. END PROGRAM.",
		"PROGRAM X DIALECT SEQUEL. FOR EACH R IN (DELETE FROM X) PRINT 'A'. END-FOR. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. PRINT 9999999999999999999999999. END PROGRAM.",
		"PROGRAM X DIALECT NETWORK. END PROGRAM. JUNK",
		"PROGRAM X DIALECT MARYLAND. FIND(EMP: SYSTEM INTO C. END PROGRAM.",
		"PROGRAM X DIALECT DLI. GU DEPT(D# ! 1). END PROGRAM.",
		"'lex",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should not parse", src)
		}
	}
}

func TestTraceEqualAndString(t *testing.T) {
	a := &Trace{Events: []Event{{Kind: Terminal, Text: "X"}}}
	b := &Trace{Events: []Event{{Kind: Terminal, Text: "X"}}}
	c := &Trace{Events: []Event{{Kind: Terminal, Text: "Y"}}}
	d := &Trace{}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Trace.Equal")
	}
	if !strings.Contains(a.String(), "TERMINAL| X") {
		t.Error("Trace.String")
	}
	if (Event{Kind: FileWrite, File: "F", Text: "L"}).String() != "WRITE F| L" {
		t.Error("Event.String")
	}
	if Terminal.String() != "TERMINAL" || FileRead.String() != "READ" ||
		FileWrite.String() != "WRITE" || EventKind(9).String() != "?" {
		t.Error("EventKind.String")
	}
}

func TestDialectString(t *testing.T) {
	for d, w := range map[Dialect]string{Network: "NETWORK", Maryland: "MARYLAND",
		Sequel: "SEQUEL", DLI: "DLI", Dialect(9): "?"} {
		if d.String() != w {
			t.Errorf("%d = %q", d, d.String())
		}
	}
	if _, err := ParseDialect("nope"); err == nil {
		t.Error("ParseDialect")
	}
	for _, n := range []string{"network", "MARYLAND", "Sequel", "dli"} {
		if _, err := ParseDialect(n); err != nil {
			t.Errorf("ParseDialect(%q): %v", n, err)
		}
	}
}

func TestNullComparisonsInHost(t *testing.T) {
	// ACCEPT at exhausted input yields null; null sorts below everything,
	// so WHO = '' is false and WHO < 'A' is true. Programs use this to
	// detect end-of-input.
	p := mustParse(t, `
PROGRAM NULLS DIALECT NETWORK.
  ACCEPT WHO.
  IF WHO < 'A' PRINT 'NO INPUT'. END-IF.
END PROGRAM.
`)
	tr, err := Run(p, Config{Net: netstore.NewDB(schema.CompanyV1())})
	if err != nil {
		t.Fatal(err)
	}
	if got := terminalLines(tr); len(got) != 1 || got[0] != "NO INPUT" {
		t.Errorf("terminal = %v", got)
	}
}
