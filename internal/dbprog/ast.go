// Package dbprog defines database programs as the paper defines them
// (§1.1): "a program written in a conventional programming language, with
// embedded data manipulation statements which interact with a database
// system". The host language is a small deterministic COBOL-flavoured
// language (LET, IF, PERFORM UNTIL, PRINT, ACCEPT, READ/WRITE of
// non-database files), and the embedded DML comes in four dialects:
// CODASYL network DML, the Maryland FIND-path DML, the SEQUEL subset, and
// DL/I. The interpreter captures all non-database input/output — the
// paper's operational definition of program behaviour, which conversion
// must preserve.
package dbprog

import (
	"fmt"
	"strings"

	"progconv/internal/mdml"
	"progconv/internal/sequel"

	"progconv/internal/value"
)

// Dialect identifies which DML a program embeds.
type Dialect uint8

// The DML dialects.
const (
	Network Dialect = iota
	Maryland
	Sequel
	DLI
)

// String returns the dialect keyword used in program headers.
func (d Dialect) String() string {
	switch d {
	case Network:
		return "NETWORK"
	case Maryland:
		return "MARYLAND"
	case Sequel:
		return "SEQUEL"
	case DLI:
		return "DLI"
	}
	return "?"
}

// ParseDialect parses a dialect keyword.
func ParseDialect(s string) (Dialect, error) {
	switch strings.ToUpper(s) {
	case "NETWORK":
		return Network, nil
	case "MARYLAND":
		return Maryland, nil
	case "SEQUEL":
		return Sequel, nil
	case "DLI":
		return DLI, nil
	}
	return 0, fmt.Errorf("dbprog: unknown dialect %q", s)
}

// Program is one database program.
type Program struct {
	Name    string
	Dialect Dialect
	Stmts   []Stmt
}

// ---- expressions ----

// Expr is a host-language expression.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V value.Value }

// Var references a scalar host variable.
type Var struct{ Name string }

// Field references a field of a record buffer (a record type's UWA buffer
// after GET/MOVE, or a loop variable): ENAME IN EMP.
type Field struct {
	Record string
	Field  string
}

// StatusRef reads the DB-STATUS register as a string ("OK",
// "END-OF-SET", "GE", ...), the §3.2 status-code dependence surface.
type StatusRef struct{}

// RecordRef renders a whole record buffer as a string, for PRINT RECORD.
type RecordRef struct{ Record string }

// Bin is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or boolean (AND OR).
type Bin struct {
	Op   string
	L, R Expr
}

// Un is unary NOT or numeric negation ("-").
type Un struct {
	Op string
	E  Expr
}

func (Lit) expr()       {}
func (Var) expr()       {}
func (Field) expr()     {}
func (StatusRef) expr() {}
func (RecordRef) expr() {}
func (Bin) expr()       {}
func (Un) expr()        {}

// ---- host statements ----

// Stmt is one program statement.
type Stmt interface{ stmt() }

// Let assigns an expression to a scalar variable.
type Let struct {
	Var string
	E   Expr
}

// Print writes to the terminal: one line, arguments joined by a space.
type Print struct{ Args []Expr }

// Accept reads one line from the terminal into a variable.
type Accept struct{ Var string }

// ReadFile reads the next line of a non-database file into a variable
// (null once the file is exhausted).
type ReadFile struct {
	File string
	Var  string
}

// WriteFile appends one line to a non-database file.
type WriteFile struct {
	File string
	Args []Expr
}

// If branches on a condition.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// PerformUntil loops until the condition holds, testing before each pass
// (COBOL PERFORM UNTIL).
type PerformUntil struct {
	Cond Expr
	Body []Stmt
}

// Stop ends the program.
type Stop struct{}

func (Let) stmt()          {}
func (Print) stmt()        {}
func (Accept) stmt()       {}
func (ReadFile) stmt()     {}
func (WriteFile) stmt()    {}
func (If) stmt()           {}
func (PerformUntil) stmt() {}
func (Stop) stmt()         {}

// ---- network DML statements ----

// Move sets one field of a record type's UWA buffer: MOVE e TO F IN REC.
type Move struct {
	E      Expr
	Field  string
	Record string
}

// FindAny is FIND ANY REC [USING F1, F2]: locate by the listed buffer
// fields (all non-null buffer fields when USING is absent).
type FindAny struct {
	Record string
	Using  []string
}

// FindDup is FIND DUPLICATE REC [USING ...].
type FindDup struct {
	Record string
	Using  []string
}

// FindInSet is FIND FIRST/NEXT/PRIOR/LAST REC WITHIN SET [USING ...].
type FindInSet struct {
	Dir    string // FIRST, NEXT, PRIOR, LAST
	Record string
	Set    string
	Using  []string
}

// FindOwner is FIND OWNER WITHIN SET.
type FindOwner struct{ Set string }

// GetRec is GET REC: load the record buffer from the current of run-unit.
type GetRec struct{ Record string }

// StoreRec is STORE REC: store from the record buffer.
type StoreRec struct{ Record string }

// ModifyRec is MODIFY REC [USING F1...]: update the current record from
// the buffer (the listed fields, or every stored field).
type ModifyRec struct {
	Record string
	Using  []string
}

// EraseRec is ERASE REC.
type EraseRec struct{ Record string }

// ConnectRec is CONNECT REC TO SET.
type ConnectRec struct {
	Record string
	Set    string
}

// DisconnectRec is DISCONNECT REC FROM SET.
type DisconnectRec struct {
	Record string
	Set    string
}

func (Move) stmt()          {}
func (FindAny) stmt()       {}
func (FindDup) stmt()       {}
func (FindInSet) stmt()     {}
func (FindOwner) stmt()     {}
func (GetRec) stmt()        {}
func (StoreRec) stmt()      {}
func (ModifyRec) stmt()     {}
func (EraseRec) stmt()      {}
func (ConnectRec) stmt()    {}
func (DisconnectRec) stmt() {}

// ---- Maryland DML statements ----

// FieldAssign is F = expr inside Maryland/DLI assignment lists.
type FieldAssign struct {
	Field string
	E     Expr
}

// MFind evaluates a FIND or SORT(FIND) into a named collection:
// FIND(...) INTO COLL. / SORT(FIND(...)) ON (...) INTO COLL.
type MFind struct {
	Coll string
	Find *mdml.Find
	Sort *mdml.Sort // non-nil when wrapped in SORT
}

// ForEach iterates a collection, binding each record to a buffer name:
// FOR EACH E IN COLL ... END-FOR.
type ForEach struct {
	Var  string
	Coll string
	Body []Stmt
}

// MDelete deletes every record in a collection: DELETE COLL.
type MDelete struct{ Coll string }

// MModify applies assignments to every record in a collection:
// MODIFY COLL SET (F = e, ...).
type MModify struct {
	Coll    string
	Assigns []FieldAssign
}

// MStore stores a new record: STORE REC (F = e, ...) VIA SET = FIND(...).
type MStore struct {
	Record  string
	Assigns []FieldAssign
	Owners  map[string]*mdml.Find
}

func (MFind) stmt()   {}
func (ForEach) stmt() {}
func (MDelete) stmt() {}
func (MModify) stmt() {}
func (MStore) stmt()  {}

// ---- SEQUEL statements ----

// SqlForEach iterates a query's result: FOR EACH R IN (SELECT...) ... END-FOR.
type SqlForEach struct {
	Var   string
	Query *sequel.Select
	Body  []Stmt
}

// SqlExec runs an INSERT, DELETE or UPDATE (one of *sequel.Insert,
// *sequel.Delete, *sequel.Update).
type SqlExec struct{ Stmt any }

func (SqlForEach) stmt() {}
func (SqlExec) stmt()    {}

// ---- DL/I statements ----

// SSASpec is a dbprog-level segment search argument whose comparison
// value is a host expression, evaluated at call time (the §3.2 run-time
// variability surface).
type SSASpec struct {
	Segment string
	Field   string // empty = unqualified
	Op      string
	E       Expr
}

// DLIGet is GU/GN/GNP with SSAs; the retrieved segment lands in the
// buffer named by its segment type.
type DLIGet struct {
	Func string // GU, GN, GNP
	SSAs []SSASpec
}

// DLIInsert is ISRT REC (assigns) [UNDER ssa-path].
type DLIInsert struct {
	Record  string
	Assigns []FieldAssign
	Under   []SSASpec
}

// DLIDelete is DLET (current position).
type DLIDelete struct{}

// DLIRepl is REPL (assigns) on the current position.
type DLIRepl struct{ Assigns []FieldAssign }

func (DLIGet) stmt()    {}
func (DLIInsert) stmt() {}
func (DLIDelete) stmt() {}
func (DLIRepl) stmt()   {}
