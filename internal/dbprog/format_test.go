package dbprog

import (
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// formatSources exercises every statement and expression form once.
var formatSources = []string{
	`
PROGRAM NET-ALL DIALECT NETWORK.
  LET X = 1 + 2 * (3 - 4) / 5.
  LET Y = NOT (X = 1) AND ('A' + 'B') = 'AB' OR 1 < 2.
  LET Z = - (X + 1).
  PRINT X, Y, RECORD DIV, DB-STATUS.
  ACCEPT W.
  READ 'F1' INTO L.
  WRITE 'F2' L, X.
  IF X > 0
    PRINT 'POS'.
  ELSE
    PRINT 'NEG'.
  END-IF.
  PERFORM UNTIL X >= 3
    LET X = X + 1.
  END-PERFORM.
  MOVE 'M' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND DUPLICATE DIV.
  FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
  FIND OWNER WITHIN DIV-EMP.
  GET EMP.
  STORE EMP.
  MODIFY EMP USING AGE.
  ERASE EMP.
  CONNECT EMP TO DIV-EMP.
  DISCONNECT EMP FROM DIV-EMP.
  STOP.
END PROGRAM.
`,
	`
PROGRAM MD-ALL DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'), DIV-EMP, EMP(AGE > 30 AND DEPT-NAME <> 'X')) INTO C1.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME, AGE) INTO C2.
  FOR EACH E IN C1
    PRINT EMP-NAME IN E.
  END-FOR.
  DELETE C2.
  MODIFY C1 SET (AGE = 1, DEPT-NAME = 'Y').
  STORE EMP (EMP-NAME = 'Z', AGE = 2)
    VIA DIV-EMP = FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M')).
END PROGRAM.
`,
	`
PROGRAM SQ-ALL DIALECT SEQUEL.
  FOR EACH R IN (SELECT ENAME, AGE FROM EMP WHERE AGE > :MIN AND E# IN (SELECT E# FROM EMP-DEPT WHERE D# = 'D2'))
    PRINT ENAME IN R.
  END-FOR.
  INSERT INTO EMP (E#, ENAME) VALUES ('E9', 'NEW').
  DELETE FROM EMP WHERE E# = 'E9'.
  UPDATE EMP SET AGE = 1 WHERE ENAME = 'NEW'.
END PROGRAM.
`,
	`
PROGRAM DLI-ALL DIALECT DLI.
  ISRT DEPT (D# = 'D1', DNAME = 'A', MGR = 'M').
  ISRT EMP (E# = 'E1', ENAME = 'X', AGE = 1, YEAR-OF-SERVICE = 1) UNDER DEPT(D# = 'D1').
  GU DEPT(D# = 'D1'), EMP.
  GN EMP(AGE >= 1).
  GNP EMP.
  REPL (AGE = 2).
  DLET.
END PROGRAM.
`,
}

// TestFormatRoundTrip: Format(Parse(src)) re-parses and re-formats to the
// identical text — the generator's core guarantee.
func TestFormatRoundTrip(t *testing.T) {
	for _, src := range formatSources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		text1 := Format(p1)
		p2, err := Parse(text1)
		if err != nil {
			t.Fatalf("formatted program does not reparse: %v\n%s", err, text1)
		}
		text2 := Format(p2)
		if text1 != text2 {
			t.Errorf("format not stable:\n%s\nvs\n%s", text1, text2)
		}
	}
}

// TestFormatPreservesBehaviour: a formatted program traces identically to
// the original (on the dialects with simple fixtures).
func TestFormatPreservesBehaviour(t *testing.T) {
	src := `
PROGRAM P DIALECT NETWORK.
  LET I = 0.
  PERFORM UNTIL I = 3
    LET I = I + 1.
    IF I = 2
      PRINT 'TWO'.
    ELSE
      PRINT I * 10.
    END-IF.
  END-PERFORM.
END PROGRAM.
`
	p1 := mustParse(t, src)
	p2 := mustParse(t, Format(p1))
	tr1, err1 := Run(p1, Config{Net: netstore.NewDB(schema.CompanyV1())})
	tr2, err2 := Run(p2, Config{Net: netstore.NewDB(schema.CompanyV1())})
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if !tr1.Equal(tr2) {
		t.Errorf("traces differ:\n%s\nvs\n%s", tr1, tr2)
	}
}

func TestFormatExprForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit{V: value.Str("a'b")}, "'a''b'"},
		{Field{Record: "EMP", Field: "AGE"}, "AGE IN EMP"},
		{StatusRef{}, "DB-STATUS"},
		{RecordRef{Record: "EMP"}, "RECORD EMP"},
		{Un{Op: "NOT", E: Var{Name: "X"}}, "NOT X"},
		{Un{Op: "-", E: Bin{Op: "+", L: Var{Name: "X"}, R: Var{Name: "Y"}}}, "- (X + Y)"},
	}
	for _, tc := range cases {
		if got := FormatExpr(tc.e); got != tc.want {
			t.Errorf("FormatExpr = %q, want %q", got, tc.want)
		}
	}
}
