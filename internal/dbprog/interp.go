package dbprog

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"progconv/internal/hierstore"
	"progconv/internal/mdml"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/sequel"
	"progconv/internal/value"
)

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds. The trace records exactly the behaviour the paper's
// §1.1 equivalence definition fixes: terminal messages and the series of
// reads and writes to non-database files.
const (
	Terminal EventKind = iota
	FileRead
	FileWrite
)

func (k EventKind) String() string {
	switch k {
	case Terminal:
		return "TERMINAL"
	case FileRead:
		return "READ"
	case FileWrite:
		return "WRITE"
	}
	return "?"
}

// Event is one observable input/output action.
type Event struct {
	Kind EventKind
	File string // empty for Terminal
	Text string
}

func (e Event) String() string {
	if e.Kind == Terminal {
		return "TERMINAL| " + e.Text
	}
	return fmt.Sprintf("%s %s| %s", e.Kind, e.File, e.Text)
}

// Trace is the observable behaviour of one program run.
type Trace struct {
	Events []Event
}

// String renders the trace one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether two traces are identical — the paper's
// operational test of a successful conversion.
func (t *Trace) Equal(o *Trace) bool {
	if len(t.Events) != len(o.Events) {
		return false
	}
	for i := range t.Events {
		if t.Events[i] != o.Events[i] {
			return false
		}
	}
	return true
}

// Config supplies a program run's database and non-database environment.
type Config struct {
	Net  *netstore.DB  // for Network and Maryland dialects
	Rel  *relstore.DB  // for the Sequel dialect
	Hier *hierstore.DB // for the DLI dialect

	TerminalInput []string            // lines consumed by ACCEPT
	Files         map[string][]string // initial contents of non-database files

	// MaxSteps bounds statement executions (0 = 1,000,000); programs with
	// runaway loops — hazardous corpus members — terminate with ErrSteps.
	MaxSteps int

	// Ctx, when non-nil, is polled periodically by the interpreter so a
	// canceled context aborts the run with ctx.Err(). The verifier uses
	// this to cancel the concurrent source/target runs together.
	Ctx context.Context
}

// ErrSteps reports that a run exceeded its statement budget.
var ErrSteps = errors.New("dbprog: statement budget exceeded")

// errStop unwinds the interpreter on STOP.
var errStop = errors.New("stop")

// Run executes the program and returns its observable trace. A non-nil
// error means the run aborted (usage error, step budget); the trace holds
// everything observed up to that point.
func Run(p *Program, cfg Config) (*Trace, error) {
	in := &interp{
		cfg:   cfg,
		trace: &Trace{},
		vars:  make(map[string]value.Value),
		bufs:  make(map[string]*value.Record),
	}
	in.maxSteps = cfg.MaxSteps
	if in.maxSteps == 0 {
		in.maxSteps = 1_000_000
	}
	switch p.Dialect {
	case Network:
		if cfg.Net == nil {
			return in.trace, fmt.Errorf("dbprog: %s: NETWORK dialect requires a network database", p.Name)
		}
		in.netSess = netstore.NewSession(cfg.Net)
	case Maryland:
		if cfg.Net == nil {
			return in.trace, fmt.Errorf("dbprog: %s: MARYLAND dialect requires a network database", p.Name)
		}
		in.mEval = mdml.NewEvaluator(cfg.Net)
	case Sequel:
		if cfg.Rel == nil {
			return in.trace, fmt.Errorf("dbprog: %s: SEQUEL dialect requires a relational database", p.Name)
		}
	case DLI:
		if cfg.Hier == nil {
			return in.trace, fmt.Errorf("dbprog: %s: DLI dialect requires a hierarchical database", p.Name)
		}
		in.hierSess = hierstore.NewSession(cfg.Hier)
	}
	in.files = make(map[string][]string, len(cfg.Files))
	for f, lines := range cfg.Files {
		in.files[f] = append([]string(nil), lines...)
	}
	in.fileCursor = make(map[string]int)
	err := in.execBlock(p.Stmts)
	if errors.Is(err, errStop) {
		err = nil
	}
	return in.trace, err
}

type interp struct {
	cfg   Config
	trace *Trace

	vars  map[string]value.Value
	bufs  map[string]*value.Record
	mColl map[string][]netstore.RecordID

	netSess  *netstore.Session
	hierSess *hierstore.Session
	mEval    *mdml.Evaluator

	termIn     int
	files      map[string][]string
	fileCursor map[string]int

	steps    int
	maxSteps int

	// matchBuf is the pooled FIND match record: one allocation per run
	// instead of one per FIND. Safe because netstore only reads a match
	// during the call.
	matchBuf *value.Record
}

func (in *interp) emit(e Event) { in.trace.Events = append(in.trace.Events, e) }

func (in *interp) execBlock(stmts []Stmt) error {
	for _, st := range stmts {
		if err := in.exec(st); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) exec(st Stmt) error {
	in.steps++
	if in.steps > in.maxSteps {
		return ErrSteps
	}
	if in.cfg.Ctx != nil && in.steps&255 == 0 {
		if err := in.cfg.Ctx.Err(); err != nil {
			return err
		}
	}
	switch s := st.(type) {
	case Let:
		v, err := in.eval(s.E)
		if err != nil {
			return err
		}
		in.vars[s.Var] = v
		return nil
	case Print:
		line, err := in.renderArgs(s.Args)
		if err != nil {
			return err
		}
		in.emit(Event{Kind: Terminal, Text: line})
		return nil
	case Accept:
		if in.termIn < len(in.cfg.TerminalInput) {
			in.vars[s.Var] = value.Str(in.cfg.TerminalInput[in.termIn])
			in.termIn++
		} else {
			in.vars[s.Var] = value.NullValue()
		}
		return nil
	case ReadFile:
		cur := in.fileCursor[s.File]
		lines := in.files[s.File]
		if cur < len(lines) {
			in.vars[s.Var] = value.Str(lines[cur])
			in.fileCursor[s.File] = cur + 1
			in.emit(Event{Kind: FileRead, File: s.File, Text: lines[cur]})
		} else {
			in.vars[s.Var] = value.NullValue()
			in.emit(Event{Kind: FileRead, File: s.File, Text: "<eof>"})
		}
		return nil
	case WriteFile:
		line, err := in.renderArgs(s.Args)
		if err != nil {
			return err
		}
		in.files[s.File] = append(in.files[s.File], line)
		in.emit(Event{Kind: FileWrite, File: s.File, Text: line})
		return nil
	case If:
		c, err := in.evalBool(s.Cond)
		if err != nil {
			return err
		}
		if c {
			return in.execBlock(s.Then)
		}
		return in.execBlock(s.Else)
	case PerformUntil:
		for {
			c, err := in.evalBool(s.Cond)
			if err != nil {
				return err
			}
			if c {
				return nil
			}
			if err := in.execBlock(s.Body); err != nil {
				return err
			}
			in.steps++
			if in.steps > in.maxSteps {
				return ErrSteps
			}
		}
	case Stop:
		return errStop
	case Move:
		return in.execMove(s)
	case FindAny:
		match, err := in.matchFromBuffer(s.Record, s.Using)
		if err != nil {
			return err
		}
		_, err = in.netSession().FindAny(s.Record, match)
		return err
	case FindDup:
		match, err := in.matchFromBuffer(s.Record, s.Using)
		if err != nil {
			return err
		}
		_, err = in.netSession().FindDuplicate(s.Record, match)
		return err
	case FindInSet:
		return in.execFindInSet(s)
	case FindOwner:
		_, err := in.netSession().FindOwner(s.Set)
		return err
	case GetRec:
		rec, st, err := in.netSession().Get(s.Record)
		if err != nil {
			return err
		}
		if st == netstore.OK {
			in.bufs[s.Record] = rec
		}
		return nil
	case StoreRec:
		buf := in.buffer(s.Record)
		stored := in.storedOnly(s.Record, buf)
		_, _, err := in.netSession().Store(s.Record, stored)
		return err
	case ModifyRec:
		return in.execModifyRec(s)
	case EraseRec:
		_, err := in.netSession().Erase(s.Record)
		return err
	case ConnectRec:
		_, err := in.netSession().Connect(s.Set)
		return err
	case DisconnectRec:
		_, err := in.netSession().Disconnect(s.Set)
		return err
	case MFind:
		return in.execMFind(s)
	case ForEach:
		ids, ok := in.mColls()[s.Coll]
		if !ok {
			return fmt.Errorf("dbprog: unknown collection %s", s.Coll)
		}
		// One pooled record per loop execution (not per iteration): each
		// iteration overwrote the binding anyway, so refilling in place
		// is observationally identical. Nested loops get their own.
		rec := value.NewRecord()
		for _, id := range ids {
			if !in.cfg.Net.DataInto(id, rec) {
				continue
			}
			in.bufs[s.Var] = rec
			if err := in.execBlock(s.Body); err != nil {
				return err
			}
		}
		return nil
	case MDelete:
		ids, ok := in.mColls()[s.Coll]
		if !ok {
			return fmt.Errorf("dbprog: unknown collection %s", s.Coll)
		}
		_, err := in.mEvaluator().Delete(ids)
		return err
	case MModify:
		return in.execMModify(s)
	case MStore:
		return in.execMStore(s)
	case SqlForEach:
		return in.execSqlForEach(s)
	case SqlExec:
		return in.execSqlExec(s)
	case DLIGet:
		return in.execDLIGet(s)
	case DLIInsert:
		return in.execDLIInsert(s)
	case DLIDelete:
		in.hierSess.DLET()
		return nil
	case DLIRepl:
		rec, err := in.assignsToRecord(s.Assigns)
		if err != nil {
			return err
		}
		in.hierSess.REPL(rec)
		return nil
	}
	return fmt.Errorf("dbprog: unhandled statement %T", st)
}

func (in *interp) netSession() *netstore.Session { return in.netSess }

func (in *interp) mEvaluator() *mdml.Evaluator { return in.mEval }

func (in *interp) mColls() map[string][]netstore.RecordID {
	if in.mColl == nil {
		in.mColl = make(map[string][]netstore.RecordID)
	}
	return in.mColl
}

// buffer returns (creating if needed) the UWA buffer for a record type.
func (in *interp) buffer(rec string) *value.Record {
	b, ok := in.bufs[rec]
	if !ok {
		b = value.NewRecord()
		in.bufs[rec] = b
	}
	return b
}

// storedOnly projects a buffer down to the record type's stored fields,
// so a buffer filled by GET (including virtuals) can be fed back to STORE.
func (in *interp) storedOnly(recType string, buf *value.Record) *value.Record {
	if in.cfg.Net == nil {
		return buf
	}
	rt := in.cfg.Net.Schema().Record(recType)
	if rt == nil {
		return buf
	}
	out := value.NewRecord()
	for _, f := range rt.StoredFieldNames() {
		if v, ok := buf.Get(f); ok {
			out.Set(f, v)
		}
	}
	return out
}

func (in *interp) execMove(s Move) error {
	v, err := in.eval(s.E)
	if err != nil {
		return err
	}
	in.buffer(s.Record).Set(s.Field, v)
	return nil
}

// matchFromBuffer builds the FIND match record: the USING fields of the
// buffer, or every non-null buffer field when USING is absent.
func (in *interp) matchFromBuffer(rec string, using []string) (*value.Record, error) {
	buf := in.buffer(rec)
	if in.matchBuf == nil {
		in.matchBuf = value.NewRecord()
	}
	match := in.matchBuf
	match.Reset()
	if len(using) == 0 {
		for _, n := range buf.Names() {
			if v := buf.MustGet(n); !v.IsNull() {
				match.Set(n, v)
			}
		}
		return match, nil
	}
	for _, f := range using {
		v, ok := buf.Get(f)
		if !ok {
			return nil, fmt.Errorf("dbprog: USING field %s not set in %s buffer", f, rec)
		}
		match.Set(f, v)
	}
	return match, nil
}

func (in *interp) execFindInSet(s FindInSet) error {
	match, err := in.matchFromBuffer(s.Record, s.Using)
	if err != nil {
		return err
	}
	if len(s.Using) == 0 {
		match = nil // positional FIND NEXT has no qualification
	}
	var dir netstore.Direction
	switch s.Dir {
	case "FIRST":
		dir = netstore.First
	case "LAST":
		dir = netstore.Last
	case "NEXT":
		dir = netstore.Next
	case "PRIOR":
		dir = netstore.Prior
	default:
		return fmt.Errorf("dbprog: bad FIND direction %s", s.Dir)
	}
	_, err = in.netSession().FindInSet(s.Set, dir, match)
	return err
}

func (in *interp) execModifyRec(s ModifyRec) error {
	buf := in.buffer(s.Record)
	var rec *value.Record
	if len(s.Using) == 0 {
		rec = in.storedOnly(s.Record, buf)
	} else {
		rec = value.NewRecord()
		for _, f := range s.Using {
			v, ok := buf.Get(f)
			if !ok {
				return fmt.Errorf("dbprog: USING field %s not set in %s buffer", f, s.Record)
			}
			rec.Set(f, v)
		}
	}
	_, err := in.netSession().Modify(s.Record, rec)
	return err
}

func (in *interp) execMFind(s MFind) error {
	ev := in.mEvaluator()
	ev.Params = in.scalarParams()
	var ids []netstore.RecordID
	var err error
	if s.Sort != nil {
		ids, err = ev.EvalSort(s.Sort)
	} else {
		ids, err = ev.Eval(s.Find)
	}
	if err != nil {
		return err
	}
	in.mColls()[s.Coll] = ids
	ev.Collections[s.Coll] = ids
	return nil
}

func (in *interp) execMModify(s MModify) error {
	ids, ok := in.mColls()[s.Coll]
	if !ok {
		return fmt.Errorf("dbprog: unknown collection %s", s.Coll)
	}
	rec, err := in.assignsToRecord(s.Assigns)
	if err != nil {
		return err
	}
	_, err = in.mEvaluator().Modify(ids, rec)
	return err
}

func (in *interp) execMStore(s MStore) error {
	rec, err := in.assignsToRecord(s.Assigns)
	if err != nil {
		return err
	}
	ev := in.mEvaluator()
	ev.Params = in.scalarParams()
	_, err = ev.Store(s.Record, rec, s.Owners)
	return err
}

func (in *interp) assignsToRecord(assigns []FieldAssign) (*value.Record, error) {
	rec := value.NewRecord()
	for _, a := range assigns {
		v, err := in.eval(a.E)
		if err != nil {
			return nil, err
		}
		rec.Set(a.Field, v)
	}
	return rec, nil
}

// scalarParams snapshots the host variables for :NAME parameter binding.
func (in *interp) scalarParams() map[string]value.Value {
	out := make(map[string]value.Value, len(in.vars))
	for k, v := range in.vars {
		out[k] = v
	}
	return out
}

func (in *interp) execSqlForEach(s SqlForEach) error {
	rows, err := sequel.Exec(in.cfg.Rel, s.Query, sequel.Params(in.scalarParams()))
	if err != nil {
		return err
	}
	for _, row := range rows {
		in.bufs[s.Var] = row
		if err := in.execBlock(s.Body); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) execSqlExec(s SqlExec) error {
	params := sequel.Params(in.scalarParams())
	switch stmt := s.Stmt.(type) {
	case *sequel.Insert:
		return sequel.ExecInsert(in.cfg.Rel, stmt, params)
	case *sequel.Delete:
		_, err := sequel.ExecDelete(in.cfg.Rel, stmt, params)
		return err
	case *sequel.Update:
		_, err := sequel.ExecUpdate(in.cfg.Rel, stmt, params)
		return err
	}
	return fmt.Errorf("dbprog: unsupported SQL statement %T", s.Stmt)
}

func (in *interp) ssas(specs []SSASpec) ([]hierstore.SSA, error) {
	out := make([]hierstore.SSA, len(specs))
	for i, sp := range specs {
		if sp.Field == "" {
			out[i] = hierstore.U(sp.Segment)
			continue
		}
		v, err := in.eval(sp.E)
		if err != nil {
			return nil, err
		}
		var op hierstore.CompareOp
		switch sp.Op {
		case "=":
			op = hierstore.EQ
		case "<>":
			op = hierstore.NE
		case "<":
			op = hierstore.LT
		case "<=":
			op = hierstore.LE
		case ">":
			op = hierstore.GT
		case ">=":
			op = hierstore.GE_
		default:
			return nil, fmt.Errorf("dbprog: bad SSA operator %q", sp.Op)
		}
		out[i] = hierstore.Q(sp.Segment, sp.Field, op, v)
	}
	return out, nil
}

func (in *interp) execDLIGet(s DLIGet) error {
	ssas, err := in.ssas(s.SSAs)
	if err != nil {
		return err
	}
	var rec *value.Record
	var st hierstore.Status
	switch s.Func {
	case "GU":
		rec, st = in.hierSess.GU(ssas...)
	case "GN":
		rec, st = in.hierSess.GN(ssas...)
	case "GNP":
		rec, st = in.hierSess.GNP(ssas...)
	default:
		return fmt.Errorf("dbprog: bad DL/I function %s", s.Func)
	}
	if st == hierstore.OK {
		segType := in.cfg.Hier.TypeOf(in.hierSess.Position())
		in.bufs[segType] = rec
	}
	return nil
}

func (in *interp) execDLIInsert(s DLIInsert) error {
	rec, err := in.assignsToRecord(s.Assigns)
	if err != nil {
		return err
	}
	path, err := in.ssas(s.Under)
	if err != nil {
		return err
	}
	path = append(path, hierstore.U(s.Record))
	in.hierSess.ISRT(rec, path...)
	return nil
}

func (in *interp) renderArgs(args []Expr) (string, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		v, err := in.eval(a)
		if err != nil {
			return "", err
		}
		parts[i] = v.String()
	}
	return strings.Join(parts, " "), nil
}

// ---- expression evaluation ----

func (in *interp) eval(e Expr) (value.Value, error) {
	switch x := e.(type) {
	case Lit:
		return x.V, nil
	case Var:
		v, ok := in.vars[x.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("dbprog: unknown variable %s", x.Name)
		}
		return v, nil
	case Field:
		buf, ok := in.bufs[x.Record]
		if !ok {
			return value.Value{}, fmt.Errorf("dbprog: no record buffer %s", x.Record)
		}
		v, ok := buf.Get(x.Field)
		if !ok {
			return value.Value{}, fmt.Errorf("dbprog: buffer %s has no field %s", x.Record, x.Field)
		}
		return v, nil
	case StatusRef:
		return value.Str(in.statusString()), nil
	case RecordRef:
		buf, ok := in.bufs[x.Record]
		if !ok {
			return value.Value{}, fmt.Errorf("dbprog: no record buffer %s", x.Record)
		}
		return value.Str(buf.String()), nil
	case Bin:
		return in.evalBin(x)
	case Un:
		v, err := in.eval(x.E)
		if err != nil {
			return value.Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.Kind() != value.Bool {
				return value.Value{}, fmt.Errorf("dbprog: NOT requires a boolean")
			}
			return value.B(!v.AsBool()), nil
		case "-":
			switch v.Kind() {
			case value.Int:
				return value.Of(-v.AsInt()), nil
			case value.Float:
				return value.F(-v.AsFloat()), nil
			}
			return value.Value{}, fmt.Errorf("dbprog: negation requires a number")
		}
		return value.Value{}, fmt.Errorf("dbprog: bad unary operator %q", x.Op)
	}
	return value.Value{}, fmt.Errorf("dbprog: unhandled expression %T", e)
}

func (in *interp) statusString() string {
	switch {
	case in.netSess != nil:
		return in.netSess.Status().String()
	case in.hierSess != nil:
		return in.hierSess.Status().String()
	default:
		return "OK"
	}
}

func (in *interp) evalBin(x Bin) (value.Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := in.eval(x.L)
		if err != nil {
			return value.Value{}, err
		}
		if l.Kind() != value.Bool {
			return value.Value{}, fmt.Errorf("dbprog: %s requires booleans", x.Op)
		}
		// Short-circuit.
		if x.Op == "AND" && !l.AsBool() {
			return value.B(false), nil
		}
		if x.Op == "OR" && l.AsBool() {
			return value.B(true), nil
		}
		r, err := in.eval(x.R)
		if err != nil {
			return value.Value{}, err
		}
		if r.Kind() != value.Bool {
			return value.Value{}, fmt.Errorf("dbprog: %s requires booleans", x.Op)
		}
		return r, nil
	}
	l, err := in.eval(x.L)
	if err != nil {
		return value.Value{}, err
	}
	r, err := in.eval(x.R)
	if err != nil {
		return value.Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := l.Compare(r)
		if !ok {
			return value.Value{}, fmt.Errorf("dbprog: cannot compare %v and %v", l.Kind(), r.Kind())
		}
		var res bool
		switch x.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return value.B(res), nil
	case "+":
		if l.Kind() == value.String && r.Kind() == value.String {
			return value.Str(l.AsString() + r.AsString()), nil
		}
		fallthrough
	case "-", "*", "/":
		if !isNumeric(l) || !isNumeric(r) {
			return value.Value{}, fmt.Errorf("dbprog: %q requires numbers", x.Op)
		}
		if l.Kind() == value.Float || r.Kind() == value.Float {
			a, b := l.AsFloat(), r.AsFloat()
			switch x.Op {
			case "+":
				return value.F(a + b), nil
			case "-":
				return value.F(a - b), nil
			case "*":
				return value.F(a * b), nil
			case "/":
				if b == 0 {
					return value.Value{}, fmt.Errorf("dbprog: division by zero")
				}
				return value.F(a / b), nil
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch x.Op {
		case "+":
			return value.Of(a + b), nil
		case "-":
			return value.Of(a - b), nil
		case "*":
			return value.Of(a * b), nil
		case "/":
			if b == 0 {
				return value.Value{}, fmt.Errorf("dbprog: division by zero")
			}
			return value.Of(a / b), nil
		}
	}
	return value.Value{}, fmt.Errorf("dbprog: bad operator %q", x.Op)
}

func isNumeric(v value.Value) bool {
	return v.Kind() == value.Int || v.Kind() == value.Float
}

func (in *interp) evalBool(e Expr) (bool, error) {
	v, err := in.eval(e)
	if err != nil {
		return false, err
	}
	if v.Kind() != value.Bool {
		return false, fmt.Errorf("dbprog: condition is not a boolean")
	}
	return v.AsBool(), nil
}
