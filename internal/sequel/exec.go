package sequel

import (
	"fmt"

	"progconv/internal/relstore"
	"progconv/internal/value"
)

// execCtx carries the database and parameters through condition
// evaluation, memoizing sub-select results (a sub-select in this subset
// is uncorrelated, so one evaluation serves every outer row).
type execCtx struct {
	db     *relstore.DB
	params Params
	subs   map[*Select]map[string]bool
}

func (ctx *execCtx) subquerySet(q *Select) (map[string]bool, error) {
	if set, ok := ctx.subs[q]; ok {
		return set, nil
	}
	if len(q.Fields) != 1 {
		return nil, fmt.Errorf("sequel: IN sub-select must produce exactly one column")
	}
	rows, err := Exec(ctx.db, q, ctx.params)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(rows))
	for _, r := range rows {
		set[r.MustGet(q.Fields[0]).Key()] = true
	}
	if ctx.subs == nil {
		ctx.subs = make(map[*Select]map[string]bool)
	}
	ctx.subs[q] = set
	return set, nil
}

// Exec runs a SELECT and returns the projected rows in the relation's
// insertion order — the "given order" programs come to depend on (§3.2).
func Exec(db *relstore.DB, q *Select, params Params) ([]*value.Record, error) {
	rel := db.Schema().Relation(q.From)
	if rel == nil {
		return nil, fmt.Errorf("sequel: unknown relation %s", q.From)
	}
	fields := q.Fields
	if fields == nil {
		fields = rel.ColumnNames()
	}
	for _, f := range fields {
		if rel.Column(f) == nil {
			return nil, fmt.Errorf("sequel: relation %s has no column %s", q.From, f)
		}
	}
	ctx := &execCtx{db: db, params: params}
	var out []*value.Record
	var evalErr error
	db.Scan(q.From, func(row *value.Record) bool {
		if q.Where != nil {
			keep, err := q.Where.eval(row, ctx)
			if err != nil {
				evalErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		out = append(out, row.Project(fields))
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// ExecInsert runs an INSERT.
func ExecInsert(db *relstore.DB, s *Insert, params Params) error {
	rel := db.Schema().Relation(s.Into)
	if rel == nil {
		return fmt.Errorf("sequel: unknown relation %s", s.Into)
	}
	if len(s.Cols) != len(s.Values) {
		return fmt.Errorf("sequel: INSERT into %s: %d columns, %d values", s.Into, len(s.Cols), len(s.Values))
	}
	rec := value.NewRecord()
	for _, c := range rel.Columns {
		rec.Set(c.Name, value.NullValue())
	}
	for i, c := range s.Cols {
		v, err := s.Values[i].eval(nil, params)
		if err != nil {
			return err
		}
		rec.Set(c, v)
	}
	return db.Insert(s.Into, rec)
}

// ExecDelete runs a DELETE, returning the number of rows removed.
func ExecDelete(db *relstore.DB, s *Delete, params Params) (int, error) {
	ctx := &execCtx{db: db, params: params}
	var evalErr error
	n, err := db.DeleteWhere(s.From, func(row *value.Record) bool {
		if evalErr != nil {
			return false
		}
		if s.Where == nil {
			return true
		}
		keep, err := s.Where.eval(row, ctx)
		if err != nil {
			evalErr = err
			return false
		}
		return keep
	})
	if evalErr != nil {
		return 0, evalErr
	}
	return n, err
}

// ExecUpdate runs an UPDATE, returning the number of rows changed.
func ExecUpdate(db *relstore.DB, s *Update, params Params) (int, error) {
	ctx := &execCtx{db: db, params: params}
	var evalErr error
	n, err := db.Update(s.Rel,
		func(row *value.Record) bool {
			if evalErr != nil {
				return false
			}
			if s.Where == nil {
				return true
			}
			keep, err := s.Where.eval(row, ctx)
			if err != nil {
				evalErr = err
				return false
			}
			return keep
		},
		func(row *value.Record) {
			for _, a := range s.Set {
				v, err := a.Rhs.eval(row, params)
				if err != nil {
					evalErr = err
					return
				}
				row.Set(a.Col, v)
			}
		})
	if evalErr != nil {
		return 0, evalErr
	}
	return n, err
}
