package sequel

import (
	"fmt"
	"strconv"
	"strings"

	"progconv/internal/lex"
	"progconv/internal/value"
)

// ParseQuery parses a complete SELECT block.
func ParseQuery(src string) (*Select, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	q, err := parseSelect(s)
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after query: %s", s.Peek())
	}
	return q, nil
}

// ParseStatement parses one SEQUEL statement: SELECT, INSERT, DELETE or
// UPDATE. The result is one of *Select, *Insert, *Delete, *Update.
func ParseStatement(src string) (any, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	stmt, err := ParseStatementFrom(s)
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after statement: %s", s.Peek())
	}
	return stmt, nil
}

// ParseStatementFrom parses one statement from an existing token stream,
// leaving the stream positioned after it. This is how the dbprog host
// language embeds SEQUEL.
func ParseStatementFrom(s *lex.Stream) (any, error) {
	switch {
	case s.IsKeyword("SELECT"):
		return parseSelect(s)
	case s.IsKeyword("INSERT"):
		return parseInsert(s)
	case s.IsKeyword("DELETE"):
		return parseDelete(s)
	case s.IsKeyword("UPDATE"):
		return parseUpdate(s)
	}
	return nil, lex.Errorf(s.Peek(), "expected SELECT, INSERT, DELETE or UPDATE, found %s", s.Peek())
}

func parseSelect(s *lex.Stream) (*Select, error) {
	if err := s.ExpectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Select{}
	if s.TakePunct("*") {
		q.Fields = nil
	} else {
		for {
			f, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			q.Fields = append(q.Fields, f)
			if !s.TakePunct(",") {
				break
			}
		}
	}
	if err := s.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	q.From = from
	if s.TakeKeyword("WHERE") {
		cond, err := parseOr(s)
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	return q, nil
}

func parseOr(s *lex.Stream) (Cond, error) {
	l, err := parseAnd(s)
	if err != nil {
		return nil, err
	}
	for s.TakeKeyword("OR") {
		r, err := parseAnd(s)
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func parseAnd(s *lex.Stream) (Cond, error) {
	l, err := parseUnary(s)
	if err != nil {
		return nil, err
	}
	for s.TakeKeyword("AND") {
		r, err := parseUnary(s)
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func parseUnary(s *lex.Stream) (Cond, error) {
	if s.TakeKeyword("NOT") {
		c, err := parseUnary(s)
		if err != nil {
			return nil, err
		}
		return Not{c}, nil
	}
	if s.TakePunct("(") {
		c, err := parseOr(s)
		if err != nil {
			return nil, err
		}
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return parsePredicate(s)
}

func parsePredicate(s *lex.Stream) (Cond, error) {
	col, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if s.TakeKeyword("IN") {
		// Parenthesis around the sub-select is optional, as in the paper's
		// template (A), which nests the block bare.
		paren := s.TakePunct("(")
		sub, err := parseSelect(s)
		if err != nil {
			return nil, err
		}
		if paren {
			if err := s.ExpectPunct(")"); err != nil {
				return nil, err
			}
		}
		return In{Col: col, Sub: sub}, nil
	}
	op := s.Peek()
	if op.Kind != lex.Punct || !isCmpOp(op.Text) {
		return nil, lex.Errorf(op, "expected comparison operator, found %s", op)
	}
	s.Next()
	rhs, err := parseOperand(s)
	if err != nil {
		return nil, err
	}
	return Cmp{Col: col, Op: op.Text, Rhs: rhs}, nil
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func parseOperand(s *lex.Stream) (Operand, error) {
	t := s.Peek()
	switch {
	case t.Kind == lex.Str:
		s.Next()
		return Lit(value.Str(t.Text)), nil
	case t.Kind == lex.Number:
		s.Next()
		return numberOperand(t)
	case t.Kind == lex.Punct && t.Text == "-" && s.PeekAt(1).Kind == lex.Number:
		s.Next()
		n := s.Next()
		op, err := numberOperand(n)
		if err != nil {
			return Operand{}, err
		}
		if op.Lit.Kind() == value.Float {
			return Lit(value.F(-op.Lit.AsFloat())), nil
		}
		return Lit(value.Of(-op.Lit.AsInt())), nil
	case t.Kind == lex.Punct && t.Text == ":":
		s.Next()
		name, err := s.ExpectIdent()
		if err != nil {
			return Operand{}, err
		}
		return Param(name), nil
	case t.Kind == lex.Ident:
		s.Next()
		return Col(t.Text), nil
	}
	return Operand{}, lex.Errorf(t, "expected literal, :parameter or column, found %s", t)
}

func numberOperand(t lex.Token) (Operand, error) {
	if strings.Contains(t.Text, ".") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return Operand{}, lex.Errorf(t, "bad number %q", t.Text)
		}
		return Lit(value.F(f)), nil
	}
	i, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return Operand{}, lex.Errorf(t, "bad number %q", t.Text)
	}
	return Lit(value.Of(i)), nil
}

func parseInsert(s *lex.Stream) (*Insert, error) {
	if err := s.ExpectKeywords("INSERT", "INTO"); err != nil {
		return nil, err
	}
	into, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Into: into}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	for {
		c, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		ins.Cols = append(ins.Cols, c)
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	if err := s.ExpectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := parseOperand(s)
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	if len(ins.Cols) != len(ins.Values) {
		return nil, fmt.Errorf("sequel: INSERT into %s: %d columns, %d values",
			ins.Into, len(ins.Cols), len(ins.Values))
	}
	return ins, nil
}

func parseDelete(s *lex.Stream) (*Delete, error) {
	if err := s.ExpectKeywords("DELETE", "FROM"); err != nil {
		return nil, err
	}
	from, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	d := &Delete{From: from}
	if s.TakeKeyword("WHERE") {
		if d.Where, err = parseOr(s); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func parseUpdate(s *lex.Stream) (*Update, error) {
	if err := s.ExpectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	rel, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	u := &Update{Rel: rel}
	if err := s.ExpectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		if err := s.ExpectPunct("="); err != nil {
			return nil, err
		}
		rhs, err := parseOperand(s)
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assign{Col: col, Rhs: rhs})
		if !s.TakePunct(",") {
			break
		}
	}
	if s.TakeKeyword("WHERE") {
		if u.Where, err = parseOr(s); err != nil {
			return nil, err
		}
	}
	return u, nil
}
