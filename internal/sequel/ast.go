// Package sequel implements the SEQUEL subset the paper's language
// template (A) is written in: single-relation SELECT blocks with
// AND/OR/NOT conditions and nested IN sub-selects, plus the INSERT,
// DELETE and UPDATE statements database programs need.
//
//	SELECT ENAME FROM EMP WHERE E# IN
//	    SELECT E# FROM EMP-DEPT WHERE D# = 'D2'
//	    AND YEAR-OF-SERVICE = 3
//
// Host programs bind variables through named parameters (:NAME), the
// 1979 call-interface style in which "the request is passed as an
// argument ... usually a program variable" (§3.2).
package sequel

import (
	"fmt"
	"strings"

	"progconv/internal/value"
)

// Params supplies values for :NAME placeholders at execution time.
type Params map[string]value.Value

// Operand is the right-hand side of a comparison: a literal, a parameter,
// or another column of the same relation.
type Operand struct {
	Lit   value.Value
	Param string // non-empty: look up in Params
	Col   string // non-empty: compare against this column
}

// Lit builds a literal operand.
func Lit(v value.Value) Operand { return Operand{Lit: v} }

// Param builds a parameter operand.
func Param(name string) Operand { return Operand{Param: name} }

// Col builds a column operand.
func Col(name string) Operand { return Operand{Col: name} }

func (o Operand) String() string {
	switch {
	case o.Param != "":
		return ":" + o.Param
	case o.Col != "":
		return o.Col
	default:
		return o.Lit.Literal()
	}
}

func (o Operand) eval(row *value.Record, params Params) (value.Value, error) {
	switch {
	case o.Param != "":
		v, ok := params[o.Param]
		if !ok {
			return value.Value{}, fmt.Errorf("sequel: unbound parameter :%s", o.Param)
		}
		return v, nil
	case o.Col != "":
		v, ok := row.Get(o.Col)
		if !ok {
			return value.Value{}, fmt.Errorf("sequel: unknown column %s", o.Col)
		}
		return v, nil
	default:
		return o.Lit, nil
	}
}

// Cond is a boolean condition over one row.
type Cond interface {
	fmt.Stringer
	eval(row *value.Record, ctx *execCtx) (bool, error)
}

// Cmp compares a column against an operand: A op B.
type Cmp struct {
	Col string
	Op  string // = <> < <= > >=
	Rhs Operand
}

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Rhs) }

func (c Cmp) eval(row *value.Record, ctx *execCtx) (bool, error) {
	lhs, ok := row.Get(c.Col)
	if !ok {
		return false, fmt.Errorf("sequel: unknown column %s", c.Col)
	}
	rhs, err := c.Rhs.eval(row, ctx.params)
	if err != nil {
		return false, err
	}
	cmp, comparable := lhs.Compare(rhs)
	if !comparable || lhs.IsNull() || rhs.IsNull() {
		return false, nil // 1979 null semantics: comparisons with null fail
	}
	switch c.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("sequel: unknown operator %q", c.Op)
}

// In tests membership of a column in a sub-select: A IN (SELECT ...).
type In struct {
	Col string
	Sub *Select
}

func (c In) String() string { return fmt.Sprintf("%s IN (%s)", c.Col, c.Sub) }

func (c In) eval(row *value.Record, ctx *execCtx) (bool, error) {
	lhs, ok := row.Get(c.Col)
	if !ok {
		return false, fmt.Errorf("sequel: unknown column %s", c.Col)
	}
	if lhs.IsNull() {
		return false, nil
	}
	set, err := ctx.subquerySet(c.Sub)
	if err != nil {
		return false, err
	}
	return set[lhs.Key()], nil
}

// And is conjunction.
type And struct{ L, R Cond }

func (c And) String() string { return fmt.Sprintf("(%s AND %s)", c.L, c.R) }

func (c And) eval(row *value.Record, ctx *execCtx) (bool, error) {
	l, err := c.L.eval(row, ctx)
	if err != nil || !l {
		return false, err
	}
	return c.R.eval(row, ctx)
}

// Or is disjunction.
type Or struct{ L, R Cond }

func (c Or) String() string { return fmt.Sprintf("(%s OR %s)", c.L, c.R) }

func (c Or) eval(row *value.Record, ctx *execCtx) (bool, error) {
	l, err := c.L.eval(row, ctx)
	if err != nil || l {
		return l, err
	}
	return c.R.eval(row, ctx)
}

// Not is negation.
type Not struct{ C Cond }

func (c Not) String() string { return fmt.Sprintf("(NOT %s)", c.C) }

func (c Not) eval(row *value.Record, ctx *execCtx) (bool, error) {
	v, err := c.C.eval(row, ctx)
	return !v, err
}

// Select is a query block. Fields nil means SELECT *.
type Select struct {
	Fields []string
	From   string
	Where  Cond // nil = no condition
}

func (q *Select) String() string {
	fields := "*"
	if q.Fields != nil {
		fields = strings.Join(q.Fields, ", ")
	}
	s := fmt.Sprintf("SELECT %s FROM %s", fields, q.From)
	if q.Where != nil {
		s += " WHERE " + q.Where.String()
	}
	return s
}

// Insert is INSERT INTO rel (cols) VALUES (operands).
type Insert struct {
	Into   string
	Cols   []string
	Values []Operand
}

func (s *Insert) String() string {
	vals := make([]string, len(s.Values))
	for i, v := range s.Values {
		vals[i] = v.String()
	}
	return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		s.Into, strings.Join(s.Cols, ", "), strings.Join(vals, ", "))
}

// Delete is DELETE FROM rel WHERE cond.
type Delete struct {
	From  string
	Where Cond
}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.From
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Assign is one SET clause of an UPDATE.
type Assign struct {
	Col string
	Rhs Operand
}

// Update is UPDATE rel SET assignments WHERE cond.
type Update struct {
	Rel   string
	Set   []Assign
	Where Cond
}

func (s *Update) String() string {
	sets := make([]string, len(s.Set))
	for i, a := range s.Set {
		sets[i] = fmt.Sprintf("%s = %s", a.Col, a.Rhs)
	}
	out := fmt.Sprintf("UPDATE %s SET %s", s.Rel, strings.Join(sets, ", "))
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}
