package sequel

import (
	"strings"
	"testing"

	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// personnelDB loads the §4.1 relational database.
func personnelDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB(schema.EmpDeptRelational())
	rows := []struct {
		rel string
		rec *value.Record
	}{
		{"EMP", value.FromPairs("E#", "E1", "ENAME", "BAKER", "AGE", 28)},
		{"EMP", value.FromPairs("E#", "E2", "ENAME", "CLARK", "AGE", 33)},
		{"EMP", value.FromPairs("E#", "E3", "ENAME", "ADAMS", "AGE", 45)},
		{"DEPT", value.FromPairs("D#", "D2", "DNAME", "SALES", "MGR", "SMITH")},
		{"DEPT", value.FromPairs("D#", "D12", "DNAME", "ACCT", "MGR", "JONES")},
		{"EMP-DEPT", value.FromPairs("E#", "E1", "D#", "D2", "YEAR-OF-SERVICE", 3)},
		{"EMP-DEPT", value.FromPairs("E#", "E2", "D#", "D2", "YEAR-OF-SERVICE", 11)},
		{"EMP-DEPT", value.FromPairs("E#", "E3", "D#", "D12", "YEAR-OF-SERVICE", 3)},
	}
	for _, r := range rows {
		if err := db.Insert(r.rel, r.rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPaperTemplateA runs the paper's §4.1 SEQUEL template (A) verbatim:
// "Get the names of those employees who have worked for department D2
// for three years."
func TestPaperTemplateA(t *testing.T) {
	db := personnelDB(t)
	q, err := ParseQuery(`
SELECT ENAME FROM EMP WHERE E# IN
    SELECT E# FROM EMP-DEPT WHERE D# = 'D2'
    AND YEAR-OF-SERVICE = 3`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Exec(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].MustGet("ENAME").AsString() != "BAKER" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := personnelDB(t)
	q, err := ParseQuery("SELECT * FROM DEPT WHERE MGR = 'SMITH'")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Exec(db, q, nil)
	if err != nil || len(rows) != 1 {
		t.Fatalf("%v %v", rows, err)
	}
	if rows[0].Len() != 3 {
		t.Error("SELECT * should project all columns")
	}
}

func TestComparisonOperators(t *testing.T) {
	db := personnelDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"AGE = 28", 1}, {"AGE <> 28", 2}, {"AGE < 33", 1},
		{"AGE <= 33", 2}, {"AGE > 33", 1}, {"AGE >= 33", 2},
	}
	for _, tc := range cases {
		q, err := ParseQuery("SELECT E# FROM EMP WHERE " + tc.where)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Exec(db, q, nil)
		if err != nil || len(rows) != tc.want {
			t.Errorf("%s: %d rows, %v", tc.where, len(rows), err)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	db := personnelDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"AGE > 30 AND AGE < 40", 1},
		{"AGE < 30 OR AGE > 40", 2},
		{"NOT AGE = 28", 2},
		{"(AGE = 28 OR AGE = 33) AND ENAME = 'CLARK'", 1},
	}
	for _, tc := range cases {
		q, err := ParseQuery("SELECT E# FROM EMP WHERE " + tc.where)
		if err != nil {
			t.Fatalf("%s: %v", tc.where, err)
		}
		rows, err := Exec(db, q, nil)
		if err != nil || len(rows) != tc.want {
			t.Errorf("%s: %d rows, %v", tc.where, len(rows), err)
		}
	}
}

func TestColumnToColumnComparison(t *testing.T) {
	db := relstore.NewDB(&schema.Relational{Name: "T", Relations: []*schema.Relation{
		{Name: "R", Columns: []schema.Column{
			{Name: "K", Kind: value.Int}, {Name: "A", Kind: value.Int}, {Name: "B", Kind: value.Int}},
			Key: []string{"K"}},
	}})
	db.Insert("R", value.FromPairs("K", 1, "A", 5, "B", 5))
	db.Insert("R", value.FromPairs("K", 2, "A", 5, "B", 6))
	q, _ := ParseQuery("SELECT K FROM R WHERE A = B")
	rows, err := Exec(db, q, nil)
	if err != nil || len(rows) != 1 || rows[0].MustGet("K").AsInt() != 1 {
		t.Errorf("%v %v", rows, err)
	}
}

func TestParameters(t *testing.T) {
	db := personnelDB(t)
	q, err := ParseQuery("SELECT ENAME FROM EMP WHERE AGE > :MINAGE")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Exec(db, q, Params{"MINAGE": value.Of(30)})
	if err != nil || len(rows) != 2 {
		t.Errorf("%v %v", rows, err)
	}
	if _, err := Exec(db, q, nil); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Errorf("unbound: %v", err)
	}
}

func TestNullComparisons(t *testing.T) {
	db := relstore.NewDB(schema.SchoolRelational())
	db.Insert("COURSE", value.FromPairs("CNO", "C1", "CNAME", nil))
	q, _ := ParseQuery("SELECT CNO FROM COURSE WHERE CNAME = ''")
	rows, err := Exec(db, q, nil)
	if err != nil || len(rows) != 0 {
		t.Errorf("null should not match: %v %v", rows, err)
	}
	q, _ = ParseQuery("SELECT CNO FROM COURSE WHERE CNAME <> 'x'")
	rows, _ = Exec(db, q, nil)
	if len(rows) != 0 {
		t.Error("null should fail <> too")
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	db := personnelDB(t)
	q, err := ParseQuery("SELECT E# FROM EMP WHERE AGE > -1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Exec(db, q, nil)
	if err != nil || len(rows) != 3 {
		t.Errorf("%v %v", rows, err)
	}
}

func TestFloatLiteral(t *testing.T) {
	q, err := ParseQuery("SELECT E# FROM EMP WHERE AGE > 2.5")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(Cmp)
	if cmp.Rhs.Lit.Kind() != value.Float {
		t.Error("2.5 should parse as float")
	}
}

func TestQueryStringRendering(t *testing.T) {
	q, err := ParseQuery("SELECT ENAME FROM EMP WHERE E# IN (SELECT E# FROM EMP-DEPT WHERE D# = 'D2' AND YEAR-OF-SERVICE = 3) OR AGE > :X")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT ENAME FROM EMP", "E# IN (SELECT E# FROM EMP-DEPT",
		"AND YEAR-OF-SERVICE = 3", ":X", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q: %s", want, s)
		}
	}
	// Rendered queries re-parse (modulo parens).
	if _, err := ParseQuery(s); err != nil {
		t.Errorf("rendered query does not re-parse: %v\n%s", err, s)
	}
	q2, _ := ParseQuery("SELECT * FROM EMP")
	if q2.String() != "SELECT * FROM EMP" {
		t.Errorf("star rendering: %s", q2)
	}
	n, _ := ParseQuery("SELECT E# FROM EMP WHERE NOT AGE = 1")
	if !strings.Contains(n.String(), "(NOT AGE = 1)") {
		t.Errorf("NOT rendering: %s", n)
	}
}

func TestExecErrors(t *testing.T) {
	db := personnelDB(t)
	for _, src := range []string{
		"SELECT X FROM NOPE",
		"SELECT NOPE FROM EMP",
		"SELECT E# FROM EMP WHERE NOPE = 1",
	} {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s should parse: %v", src, err)
		}
		if _, err := Exec(db, q, nil); err == nil {
			t.Errorf("%s should fail at exec", src)
		}
	}
	// Multi-column sub-select is rejected.
	q, _ := ParseQuery("SELECT E# FROM EMP WHERE E# IN (SELECT E#, D# FROM EMP-DEPT)")
	if _, err := Exec(db, q, nil); err == nil || !strings.Contains(err.Error(), "exactly one column") {
		t.Errorf("multi-column IN: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT",
		"SELECT E# EMP",
		"SELECT E# FROM EMP WHERE",
		"SELECT E# FROM EMP WHERE AGE !! 3",
		"SELECT E# FROM EMP WHERE (AGE = 1",
		"SELECT E# FROM EMP WHERE AGE = :",
		"FROB",
		"'unterminated",
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("%q should not parse", src)
		}
	}
	if _, err := ParseQuery("SELECT E# FROM EMP JUNK"); err == nil {
		t.Error("trailing input")
	}
}

func TestInsertStatement(t *testing.T) {
	db := personnelDB(t)
	stmt, err := ParseStatement("INSERT INTO EMP (E#, ENAME, AGE) VALUES ('E9', 'NEW', :A)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if err := ExecInsert(db, ins, Params{"A": value.Of(20)}); err != nil {
		t.Fatal(err)
	}
	got, _ := db.FindByKey("EMP", value.Str("E9"))
	if got == nil || got.MustGet("AGE").AsInt() != 20 {
		t.Errorf("inserted = %v", got)
	}
	if !strings.Contains(ins.String(), "INSERT INTO EMP") {
		t.Error("Insert String")
	}
	// Missing columns arrive as null.
	stmt, _ = ParseStatement("INSERT INTO COURSE-OFFERING-X (A) VALUES (1)")
	if err := ExecInsert(db, stmt.(*Insert), nil); err == nil {
		t.Error("unknown relation insert")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	if _, err := ParseStatement("INSERT INTO R (A, B) VALUES (1)"); err == nil {
		t.Error("arity mismatch should fail to parse")
	}
}

func TestDeleteStatement(t *testing.T) {
	db := personnelDB(t)
	stmt, err := ParseStatement("DELETE FROM EMP-DEPT WHERE D# = 'D2'")
	if err != nil {
		t.Fatal(err)
	}
	d := stmt.(*Delete)
	n, err := ExecDelete(db, d, nil)
	if err != nil || n != 2 {
		t.Errorf("deleted %d, %v", n, err)
	}
	if !strings.Contains(d.String(), "DELETE FROM EMP-DEPT WHERE") {
		t.Error("Delete String")
	}
	// Unconditional delete.
	stmt, _ = ParseStatement("DELETE FROM EMP-DEPT")
	n, err = ExecDelete(db, stmt.(*Delete), nil)
	if err != nil || n != 1 {
		t.Errorf("unconditional delete: %d, %v", n, err)
	}
}

func TestUpdateStatement(t *testing.T) {
	db := personnelDB(t)
	stmt, err := ParseStatement("UPDATE EMP SET AGE = :NEW, ENAME = 'X' WHERE E# = 'E1'")
	if err != nil {
		t.Fatal(err)
	}
	u := stmt.(*Update)
	n, err := ExecUpdate(db, u, Params{"NEW": value.Of(29)})
	if err != nil || n != 1 {
		t.Fatalf("updated %d, %v", n, err)
	}
	got, _ := db.FindByKey("EMP", value.Str("E1"))
	if got.MustGet("AGE").AsInt() != 29 || got.MustGet("ENAME").AsString() != "X" {
		t.Errorf("row = %v", got)
	}
	if !strings.Contains(u.String(), "UPDATE EMP SET AGE = :NEW, ENAME = 'X'") {
		t.Error("Update String")
	}
}

func TestUpdateColumnFromColumn(t *testing.T) {
	db := personnelDB(t)
	stmt, _ := ParseStatement("UPDATE EMP-DEPT SET YEAR-OF-SERVICE = AGE WHERE E# = 'E1'")
	// AGE is not a column of EMP-DEPT: operand eval fails.
	if _, err := ExecUpdate(db, stmt.(*Update), nil); err == nil {
		t.Error("unknown rhs column should fail")
	}
}

func TestExecStatementErrors(t *testing.T) {
	db := personnelDB(t)
	d := &Delete{From: "NOPE"}
	if _, err := ExecDelete(db, d, nil); err == nil {
		t.Error("delete unknown relation")
	}
	u := &Update{Rel: "NOPE"}
	if _, err := ExecUpdate(db, u, nil); err == nil {
		t.Error("update unknown relation")
	}
	// Where eval error propagates.
	d2 := &Delete{From: "EMP", Where: Cmp{Col: "NOPE", Op: "=", Rhs: Lit(value.Of(1))}}
	if _, err := ExecDelete(db, d2, nil); err == nil {
		t.Error("delete bad where")
	}
	u2 := &Update{Rel: "EMP", Set: []Assign{{Col: "AGE", Rhs: Param("MISSING")}},
		Where: Cmp{Col: "E#", Op: "=", Rhs: Lit(value.Str("E1"))}}
	if _, err := ExecUpdate(db, u2, nil); err == nil {
		t.Error("update unbound param in set")
	}
}

func TestParseStatementDispatchErrors(t *testing.T) {
	if _, err := ParseStatement("GRANT ALL"); err == nil {
		t.Error("unknown statement")
	}
	if _, err := ParseStatement("DELETE FROM R JUNK EXTRA ("); err == nil {
		t.Error("trailing junk")
	}
	if _, err := ParseStatement("'bad"); err == nil {
		t.Error("lex error")
	}
}

func TestSubqueryMemoization(t *testing.T) {
	// The sub-select is uncorrelated; memoization means one execution no
	// matter how many outer rows. Verify by behaviour: results stay right
	// with many outer rows.
	db := personnelDB(t)
	for i := 0; i < 50; i++ {
		db.Insert("EMP", value.FromPairs("E#", value.Str("X"+string(rune('A'+i%26))+string(rune('A'+i/26))), "ENAME", "F", "AGE", 1))
	}
	q, _ := ParseQuery("SELECT ENAME FROM EMP WHERE E# IN (SELECT E# FROM EMP-DEPT WHERE YEAR-OF-SERVICE = 3)")
	rows, err := Exec(db, q, nil)
	if err != nil || len(rows) != 2 {
		t.Errorf("%d rows, %v", len(rows), err)
	}
}
