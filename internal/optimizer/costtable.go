package optimizer

import (
	"progconv/internal/schema"
	"progconv/internal/semantic"
)

// CostTable is the Optimizer's pair-scoped cost model: for every
// ordered pair of record types in one schema, the minimal set route
// access-path selection could substitute, with the properties the
// substitution rule tests (cost, uniqueness among minimal routes,
// all-downward traversal). Built once per schema pair — typically
// through internal/plancache — it makes per-program optimization free
// of path search. A CostTable is immutable and safe for concurrent
// readers.
type CostTable struct {
	routes map[[2]string]Route
}

// Route is one CostTable entry.
type Route struct {
	Hops   []semantic.Hop
	Cost   int
	Unique bool
	// Down reports whether every hop runs owner→member, the only
	// direction a FIND path can traverse.
	Down bool
}

// NewCostTable precomputes the table for a schema from its access-path
// graph (a nil graph is built on the spot).
func NewCostTable(net *schema.Network, g *semantic.PathGraph) *CostTable {
	if g == nil {
		g = semantic.NewPathGraph(net)
	}
	t := &CostTable{routes: make(map[[2]string]Route)}
	bound := len(net.Sets)
	for _, from := range net.Records {
		for _, to := range net.Records {
			p, unique, err := g.Shortest(from.Name, to.Name, bound)
			if err != nil {
				continue
			}
			down := true
			for _, h := range p.Hops {
				if !h.Down {
					down = false
				}
			}
			t.routes[[2]string{from.Name, to.Name}] = Route{
				Hops:   p.Hops,
				Cost:   p.Cost(),
				Unique: unique,
				Down:   down,
			}
		}
	}
	return t
}

// Lookup returns the minimal route between two record types, if any.
func (t *CostTable) Lookup(from, to string) (Route, bool) {
	r, ok := t.routes[[2]string{from, to}]
	return r, ok
}

// route returns a substitute set chain from→to that access-path
// selection may splice in: strictly shorter than hops, unique among
// minimal routes, and all-downward. It consults the precomputed cost
// table when one was supplied, else runs the bounded search; the
// verdicts are identical (see semantic.PathGraph.Shortest).
func (o *optimizer) route(from, to string, hops int) ([]semantic.Hop, int, bool) {
	if o.cost != nil {
		r, ok := o.cost.Lookup(from, to)
		if !ok || r.Cost >= hops || !r.Unique || !r.Down {
			return nil, 0, false
		}
		return r.Hops, r.Cost, true
	}
	short, unique, err := semantic.ShortestNetworkPath(o.net, from, to, hops)
	if err != nil || !unique || short.Cost() >= hops {
		return nil, 0, false
	}
	for _, h := range short.Hops {
		if !h.Down {
			return nil, 0, false
		}
	}
	return short.Hops, short.Cost(), true
}
