package optimizer

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/schema"
)

// shortcutSchema is CompanyV2 plus a unique DIV→EMP shortcut, the shape
// access-path selection fires on.
func shortcutSchema() *schema.Network {
	sch := schema.CompanyV2()
	sch.Sets = append(sch.Sets, &schema.SetType{
		Name: "DIV-EMP-X", Owner: "DIV", Member: "EMP", Keys: []string{"EMP-NAME"},
		Insertion: schema.Manual, Retention: schema.Optional,
	})
	return sch
}

// TestOptimizeWithCostTableMatches: OptimizeWith over a precomputed
// CostTable produces exactly the program and rewrite list Optimize
// produces by on-the-fly search, on schemas with and without viable
// shortcuts.
func TestOptimizeWithCostTableMatches(t *testing.T) {
	srcs := []string{
		`
PROGRAM AP DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`,
		`
PROGRAM SE DIALECT MARYLAND.
  SORT(FIND(DIV: SYSTEM, ALL-DIV, DIV)) ON (DIV-NAME) INTO C.
  FOR EACH D IN C
    PRINT DIV-NAME IN D.
  END-FOR.
END PROGRAM.
`,
	}
	for _, sch := range []*schema.Network{schema.CompanyV2(), shortcutSchema()} {
		ct := NewCostTable(sch, nil)
		for _, src := range srcs {
			p := parse(t, src)
			wantProg, wantOpts := Optimize(context.Background(), p, sch)
			gotProg, gotOpts := OptimizeWith(context.Background(), p, sch, ct)
			if dbprog.Format(wantProg) != dbprog.Format(gotProg) {
				t.Errorf("programs diverge:\n%s\nvs\n%s", dbprog.Format(wantProg), dbprog.Format(gotProg))
			}
			if !reflect.DeepEqual(wantOpts, gotOpts) {
				t.Errorf("optimizations diverge: %v vs %v", wantOpts, gotOpts)
			}
		}
	}
}

// TestCostTableShortcutChosen: the table-driven path still performs the
// access-path-selection rewrite.
func TestCostTableShortcutChosen(t *testing.T) {
	sch := shortcutSchema()
	p := parse(t, `
PROGRAM AP DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)) INTO C.
END PROGRAM.
`)
	out, opts := OptimizeWith(context.Background(), p, sch, NewCostTable(sch, nil))
	if !strings.Contains(dbprog.Format(out), "DIV-EMP-X") {
		t.Errorf("shortcut not chosen:\n%s", dbprog.Format(out))
	}
	found := false
	for _, o := range opts {
		if o.Rule == "access-path-selection" {
			found = true
		}
	}
	if !found {
		t.Errorf("opts = %v", opts)
	}
}

// TestOptimizeDoesNotMutateInput: classification happens on a copy, so
// a shared parse tree keeps its provisional step kinds — the invariant
// that makes cached programs safe to optimize concurrently.
func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := parse(t, `
PROGRAM M DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)) INTO C.
END PROGRAM.
`)
	before := dbprog.Format(p)
	mf := p.Stmts[0].(dbprog.MFind)
	var beforeKinds []int
	for _, st := range mf.Find.Steps {
		beforeKinds = append(beforeKinds, int(st.Kind))
	}
	Optimize(context.Background(), p, schema.CompanyV2())
	if dbprog.Format(p) != before {
		t.Error("Optimize mutated the input program text")
	}
	for i, st := range mf.Find.Steps {
		if int(st.Kind) != beforeKinds[i] {
			t.Errorf("step %d kind mutated in place: %d → %d", i, beforeKinds[i], st.Kind)
		}
	}
}
