// Package optimizer is the Optimizer of Figure 4.1: it "refines the
// representation, improving access paths, algorithms, and data handling"
// after conversion. Three refinements are implemented, each motivated by
// a sentence of the paper:
//
//   - redundant SORT elimination — a SORT whose keys are already the
//     enumeration order guaranteed by the access path is dropped;
//   - qualification pushdown — a condition on a virtual field sourced
//     from a record earlier on the path moves to that record's step, so
//     whole sub-occurrences are skipped ("the original source program may
//     not be efficiently coded");
//   - access-path selection — a longer set chain is replaced by a shorter
//     one with the same endpoints when the path graph offers a unique
//     minimal route (§5.4: "closely related to the access path selection
//     problem").
package optimizer

import (
	"context"
	"strconv"

	"progconv/internal/dbprog"
	"progconv/internal/mdml"
	"progconv/internal/schema"
)

// Optimization names one applied rewrite, for the conversion report.
type Optimization struct {
	Rule string
	Note string
}

// Optimize refines a program against its (target) schema, returning the
// refined program and the rewrites applied. Only Maryland and network
// dialects have database-visible structure to refine; other dialects
// return unchanged.
//
// A done ctx returns the program unrefined (optimization is optional;
// skipping it preserves correctness). Callers wanting cancellation
// semantics should check ctx.Err() afterwards, as the supervisor does.
func Optimize(ctx context.Context, p *dbprog.Program, net *schema.Network) (*dbprog.Program, []Optimization) {
	return OptimizeWith(ctx, p, net, nil)
}

// OptimizeWith is Optimize with a precomputed pair-scoped CostTable for
// access-path selection. A nil table falls back to on-the-fly bounded
// path search; the refined program and applied rewrites are identical
// either way.
func OptimizeWith(ctx context.Context, p *dbprog.Program, net *schema.Network, ct *CostTable) (*dbprog.Program, []Optimization) {
	if ctx.Err() != nil {
		return p, nil
	}
	o := &optimizer{net: net, cost: ct}
	out := &dbprog.Program{Name: p.Name, Dialect: p.Dialect}
	switch p.Dialect {
	case dbprog.Maryland:
		out.Stmts = o.block(p.Stmts)
	case dbprog.Network:
		out.Stmts = o.flatten(p.Stmts)
	default:
		return p, nil
	}
	return out, o.applied
}

type optimizer struct {
	net     *schema.Network
	cost    *CostTable
	applied []Optimization
}

func (o *optimizer) note(rule, note string) {
	o.applied = append(o.applied, Optimization{Rule: rule, Note: note})
}

func (o *optimizer) block(stmts []dbprog.Stmt) []dbprog.Stmt {
	var out []dbprog.Stmt
	for _, st := range stmts {
		switch s := st.(type) {
		case dbprog.MFind:
			out = append(out, o.optimizeMFind(s))
		case dbprog.ForEach:
			out = append(out, dbprog.ForEach{Var: s.Var, Coll: s.Coll, Body: o.block(s.Body)})
		case dbprog.If:
			out = append(out, dbprog.If{Cond: s.Cond, Then: o.block(s.Then), Else: o.block(s.Else)})
		case dbprog.PerformUntil:
			out = append(out, dbprog.PerformUntil{Cond: s.Cond, Body: o.block(s.Body)})
		default:
			out = append(out, st)
		}
	}
	return out
}

func (o *optimizer) optimizeMFind(s dbprog.MFind) dbprog.Stmt {
	find := s.Find
	if s.Sort != nil {
		find = s.Sort.Inner
	}
	// Parsed paths carry provisional step kinds; resolve them against the
	// schema before structural rewriting — on a copy, since the parse
	// tree may be shared with concurrent runs. An unclassifiable path is
	// left untouched (it will fail at run time with its own diagnostic).
	find, err := find.Classified(
		func(n string) bool { return o.net.Set(n) != nil },
		func(n string) bool { return o.net.Record(n) != nil },
	)
	if err != nil {
		return s
	}
	find = o.pushdown(find)
	find = o.shortenPath(find)
	if s.Sort != nil {
		if order, ok := o.guaranteedOrder(find); ok && sameFields(order, s.Sort.On) {
			o.note("sort-elimination",
				"SORT ON ("+joinFields(s.Sort.On)+") matches the path's guaranteed order")
			return dbprog.MFind{Coll: s.Coll, Find: find}
		}
		return dbprog.MFind{Coll: s.Coll, Sort: &mdml.Sort{Inner: find, On: s.Sort.On}}
	}
	return dbprog.MFind{Coll: s.Coll, Find: find}
}

// guaranteedOrder computes the enumeration order a path guarantees: the
// final set's keys, provided every earlier record step is pinned to a
// single occurrence by an equality on its step set's keys — then the
// final occurrence is unique and its internal order is the answer. A
// single-set path from SYSTEM qualifies trivially.
func (o *optimizer) guaranteedOrder(f *mdml.Find) ([]string, bool) {
	var lastSet *schema.SetType
	var sets []*schema.SetType
	var recSteps []mdml.Step
	for _, st := range f.Steps {
		switch st.Kind {
		case mdml.SetStep:
			t := o.net.Set(st.Name)
			if t == nil {
				return nil, false
			}
			sets = append(sets, t)
			lastSet = t
		case mdml.RecordStep:
			recSteps = append(recSteps, st)
		case mdml.CollectionStep:
			return nil, false // unknown base order
		}
	}
	if lastSet == nil || len(lastSet.Keys) == 0 {
		return nil, false
	}
	// Every set before the last must be pinned by its following record
	// step: an equality on each of its keys.
	for i := 0; i < len(sets)-1; i++ {
		if i >= len(recSteps) {
			return nil, false
		}
		for _, k := range sets[i].Keys {
			if !mdml.IsEqualityOn(recSteps[i].Qual, k) {
				return nil, false
			}
		}
		if len(sets[i].Keys) == 0 {
			return nil, false
		}
	}
	return lastSet.Keys, true
}

// pushdown moves equality conjuncts on pass-through virtual fields to the
// earliest step that stores the field.
func (o *optimizer) pushdown(f *mdml.Find) *mdml.Find {
	out := &mdml.Find{Target: f.Target, Steps: append([]mdml.Step(nil), f.Steps...)}
	last := len(out.Steps) - 1
	if last < 0 || out.Steps[last].Kind != mdml.RecordStep || out.Steps[last].Qual == nil {
		return out
	}
	member := o.net.Record(out.Steps[last].Name)
	if member == nil {
		return out
	}
	var kept []mdml.Qual
	for _, cj := range mdml.Conjuncts(out.Steps[last].Qual) {
		fields := mdml.QualFields(cj)
		moved := false
		if len(fields) == 1 {
			if vf := member.Field(fields[0]); vf != nil && vf.Virtual != nil {
				// Find the step of the record that stores the source field.
				if idx, ok := o.sourceStep(out.Steps[:last], vf); ok {
					out.Steps[idx].Qual = mdml.Conjoin(append(mdml.Conjuncts(out.Steps[idx].Qual), renameQualField(cj, vf.Virtual.Using)))
					o.note("qualification-pushdown",
						"condition on virtual "+member.Name+"."+fields[0]+" moved to "+out.Steps[idx].Name)
					moved = true
				}
			}
		}
		if !moved {
			kept = append(kept, cj)
		}
	}
	out.Steps[last].Qual = mdml.Conjoin(kept)
	return out
}

// sourceStep locates the path step holding the record type that stores a
// virtual field's source, following pass-through virtuals.
func (o *optimizer) sourceStep(steps []mdml.Step, vf *schema.Field) (int, bool) {
	set := o.net.Set(vf.Virtual.ViaSet)
	if set == nil {
		return 0, false
	}
	ownerType := set.Owner
	owner := o.net.Record(ownerType)
	if owner == nil {
		return 0, false
	}
	srcField := owner.Field(vf.Virtual.Using)
	if srcField == nil {
		return 0, false
	}
	if srcField.Virtual != nil {
		// Pass-through: keep climbing.
		for i := len(steps) - 1; i >= 0; i-- {
			if steps[i].Kind == mdml.RecordStep && steps[i].Name == ownerType {
				if idx, ok := o.sourceStep(steps[:i], srcField); ok {
					return idx, true
				}
				return i, true
			}
		}
		return 0, false
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if steps[i].Kind == mdml.RecordStep && steps[i].Name == ownerType {
			return i, true
		}
	}
	return 0, false
}

func renameQualField(q mdml.Qual, newField string) mdml.Qual {
	switch x := q.(type) {
	case mdml.Cmp:
		x.Field = newField
		return x
	case mdml.Not:
		return mdml.Not{Q: renameQualField(x.Q, newField)}
	case mdml.Or:
		return mdml.Or{L: renameQualField(x.L, newField), R: renameQualField(x.R, newField)}
	case mdml.And:
		return mdml.And{L: renameQualField(x.L, newField), R: renameQualField(x.R, newField)}
	}
	return q
}

// shortenPath replaces an unqualified set chain with a unique shorter
// route between the same record endpoints.
func (o *optimizer) shortenPath(f *mdml.Find) *mdml.Find {
	// Locate a maximal run SetStep (RecordStep unqualified SetStep)* and
	// try to replace it. Only fully unqualified interior records may be
	// skipped.
	steps := f.Steps
	for start := 0; start < len(steps); start++ {
		if steps[start].Kind != mdml.RecordStep {
			continue
		}
		// Chain: record at start, then alternate set/record to another
		// record with only unqualified records in between.
		end := start
		hops := 0
		for j := start + 1; j+1 < len(steps); j += 2 {
			if steps[j].Kind != mdml.SetStep || steps[j+1].Kind != mdml.RecordStep {
				break
			}
			hops++
			end = j + 1
			if steps[j+1].Qual != nil {
				break // qualified: cannot skip past it, but may end here
			}
		}
		if hops < 2 {
			continue
		}
		// Interior records must be unqualified.
		interiorClean := true
		for j := start + 1; j < end; j++ {
			if steps[j].Kind == mdml.RecordStep && steps[j].Qual != nil {
				interiorClean = false
			}
		}
		if !interiorClean {
			continue
		}
		from, to := steps[start].Name, steps[end].Name
		route, cost, ok := o.route(from, to, hops)
		if !ok {
			continue
		}
		var repl []mdml.Step
		repl = append(repl, steps[:start+1]...)
		cur := from
		for _, h := range route {
			set := o.net.Set(h.Set)
			repl = append(repl, mdml.Step{Kind: mdml.SetStep, Name: h.Set})
			cur = set.Member
			last := h == route[len(route)-1]
			step := mdml.Step{Kind: mdml.RecordStep, Name: cur}
			if last {
				step.Qual = steps[end].Qual
			}
			repl = append(repl, step)
		}
		repl = append(repl, steps[end+1:]...)
		o.note("access-path-selection",
			"chain "+from+"→"+to+" shortened from "+strconv.Itoa(hops)+" to "+strconv.Itoa(cost)+" sets")
		return &mdml.Find{Target: f.Target, Steps: repl}
	}
	return f
}

// flatten removes the always-true IF wrappers the converter uses to
// expand one statement into two, and recurses into blocks.
func (o *optimizer) flatten(stmts []dbprog.Stmt) []dbprog.Stmt {
	var out []dbprog.Stmt
	for _, st := range stmts {
		switch s := st.(type) {
		case dbprog.If:
			if isAlwaysTrue(s.Cond) && len(s.Else) == 0 {
				o.note("constant-fold", "always-true IF flattened")
				out = append(out, o.flatten(s.Then)...)
				continue
			}
			out = append(out, dbprog.If{Cond: s.Cond, Then: o.flatten(s.Then), Else: o.flatten(s.Else)})
		case dbprog.PerformUntil:
			out = append(out, dbprog.PerformUntil{Cond: s.Cond, Body: o.flatten(s.Body)})
		default:
			out = append(out, st)
		}
	}
	return out
}

func isAlwaysTrue(e dbprog.Expr) bool {
	b, ok := e.(dbprog.Bin)
	if !ok || b.Op != "=" {
		return false
	}
	l, lok := b.L.(dbprog.Lit)
	r, rok := b.R.(dbprog.Lit)
	return lok && rok && l.V.Equal(r.V)
}

func sameFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinFields(fs []string) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += ", "
		}
		out += f
	}
	return out
}
