package optimizer

import (
	"context"
	"strings"
	"testing"

	"progconv/internal/dbprog"
	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

func parse(t *testing.T, src string) *dbprog.Program {
	t.Helper()
	p, err := dbprog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func v2DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV2())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, dept, name string
		age             int
	}{
		{"MACHINERY", "SALES", "ADAMS", 45},
		{"MACHINERY", "SALES", "BAKER", 28},
		{"MACHINERY", "WELDING", "CLARK", 33},
		{"TEXTILES", "SALES", "DAVIS", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		if st, _ := s.FindAny("DEPT", value.FromPairs("DEPT-NAME", e.dept, "DIV-NAME", e.div)); st != netstore.OK {
			s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
			s.Store("DEPT", value.FromPairs("DEPT-NAME", e.dept))
		}
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "AGE", e.age))
	}
	return db
}

// assertSameTrace runs both programs on fresh copies of the database and
// compares I/O.
func assertSameTrace(t *testing.T, a, b *dbprog.Program, db *netstore.DB) {
	t.Helper()
	tr1, err1 := dbprog.Run(a, dbprog.Config{Net: db.Clone()})
	tr2, err2 := dbprog.Run(b, dbprog.Config{Net: db.Clone()})
	if err1 != nil || err2 != nil {
		t.Fatalf("runs: %v / %v", err1, err2)
	}
	if !tr1.Equal(tr2) {
		t.Fatalf("optimization changed behaviour:\n%s\nvs\n%s\noptimized:\n%s",
			tr1, tr2, dbprog.Format(b))
	}
}

func TestSortEliminationOnSystemSet(t *testing.T) {
	p := parse(t, `
PROGRAM SE DIALECT MARYLAND.
  SORT(FIND(DIV: SYSTEM, ALL-DIV, DIV)) ON (DIV-NAME) INTO C.
  FOR EACH D IN C
    PRINT DIV-NAME IN D.
  END-FOR.
END PROGRAM.
`)
	out, opts := Optimize(context.Background(), p, schema.CompanyV2())
	text := dbprog.Format(out)
	if strings.Contains(text, "SORT") {
		t.Errorf("SORT not eliminated:\n%s", text)
	}
	if len(opts) == 0 || opts[0].Rule != "sort-elimination" {
		t.Errorf("opts = %v", opts)
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestSortKeptWhenOrderDiffers(t *testing.T) {
	p := parse(t, `
PROGRAM SK DIALECT MARYLAND.
  SORT(FIND(DIV: SYSTEM, ALL-DIV, DIV)) ON (DIV-LOC) INTO C.
  FOR EACH D IN C
    PRINT DIV-NAME IN D.
  END-FOR.
END PROGRAM.
`)
	out, _ := Optimize(context.Background(), p, schema.CompanyV2())
	if !strings.Contains(dbprog.Format(out), "SORT") {
		t.Error("SORT on non-key order must stay")
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestSortEliminationPinnedChain(t *testing.T) {
	// DIV pinned by equality on ALL-DIV's key, DEPT pinned on DIV-DEPT's
	// key: enumeration over DEPT-EMP is by EMP-NAME, so the SORT drops.
	p := parse(t, `
PROGRAM SP DIALECT MARYLAND.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)) ON (EMP-NAME) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	out, _ := Optimize(context.Background(), p, schema.CompanyV2())
	if strings.Contains(dbprog.Format(out), "SORT") {
		t.Errorf("pinned chain SORT should drop:\n%s", dbprog.Format(out))
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestSortKeptWhenChainUnpinned(t *testing.T) {
	p := parse(t, `
PROGRAM SU DIALECT MARYLAND.
  SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP)) ON (EMP-NAME) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	out, _ := Optimize(context.Background(), p, schema.CompanyV2())
	if !strings.Contains(dbprog.Format(out), "SORT") {
		t.Error("unpinned chain crosses occurrences; SORT must stay")
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestQualificationPushdown(t *testing.T) {
	// DIV-NAME on EMP is a two-level pass-through virtual: the condition
	// moves all the way up to the DIV step.
	p := parse(t, `
PROGRAM QP DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(DIV-NAME = 'TEXTILES')) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	out, opts := Optimize(context.Background(), p, schema.CompanyV2())
	text := dbprog.Format(out)
	if !strings.Contains(text, "DIV(DIV-NAME = 'TEXTILES')") {
		t.Errorf("condition not pushed to DIV:\n%s", text)
	}
	if !strings.Contains(text, "EMP)") || strings.Contains(text, "EMP(DIV-NAME") {
		t.Errorf("member step should lose the condition:\n%s", text)
	}
	found := false
	for _, o := range opts {
		if o.Rule == "qualification-pushdown" {
			found = true
		}
	}
	if !found {
		t.Errorf("opts = %v", opts)
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestPushdownOneLevelVirtual(t *testing.T) {
	// DEPT-NAME on EMP is sourced from DEPT: moves one level.
	p := parse(t, `
PROGRAM QP1 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(DEPT-NAME = 'SALES' AND AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	out, _ := Optimize(context.Background(), p, schema.CompanyV2())
	text := dbprog.Format(out)
	if !strings.Contains(text, "DEPT(DEPT-NAME = 'SALES')") || !strings.Contains(text, "EMP(AGE > 30)") {
		t.Errorf("one-level pushdown:\n%s", text)
	}
	assertSameTrace(t, p, out, v2DB(t))
}

func TestAccessPathSelection(t *testing.T) {
	// Add a shortcut set DIV→EMP alongside the chain; the long path
	// rewrites onto it.
	sch := schema.CompanyV2()
	sch.Sets = append(sch.Sets, &schema.SetType{
		Name: "DIV-EMP-X", Owner: "DIV", Member: "EMP", Keys: []string{"EMP-NAME"},
		Insertion: schema.Manual, Retention: schema.Optional,
	})
	p := parse(t, `
PROGRAM AP DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)) INTO C.
  FOR EACH E IN C
    PRINT EMP-NAME IN E.
  END-FOR.
END PROGRAM.
`)
	out, opts := Optimize(context.Background(), p, sch)
	text := dbprog.Format(out)
	if !strings.Contains(text, "DIV-EMP-X") {
		t.Errorf("shortcut not chosen:\n%s", text)
	}
	found := false
	for _, o := range opts {
		if o.Rule == "access-path-selection" {
			found = true
		}
	}
	if !found {
		t.Errorf("opts = %v", opts)
	}
}

func TestNoPathSelectionWhenAmbiguous(t *testing.T) {
	// Two parallel shortcuts: ambiguous, keep the original chain.
	sch := schema.CompanyV2()
	sch.Sets = append(sch.Sets,
		&schema.SetType{Name: "DIV-EMP-X", Owner: "DIV", Member: "EMP", Insertion: schema.Manual},
		&schema.SetType{Name: "DIV-EMP-Y", Owner: "DIV", Member: "EMP", Insertion: schema.Manual},
	)
	p := parse(t, `
PROGRAM AP2 DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'), DIV-DEPT, DEPT, DEPT-EMP, EMP) INTO C.
END PROGRAM.
`)
	out, _ := Optimize(context.Background(), p, sch)
	if strings.Contains(dbprog.Format(out), "DIV-EMP-X") {
		t.Error("ambiguous shortcut must not be chosen")
	}
}

func TestFlattenGeneratedIf(t *testing.T) {
	p := &dbprog.Program{Name: "F", Dialect: dbprog.Network, Stmts: []dbprog.Stmt{
		dbprog.If{
			Cond: dbprog.Bin{Op: "=", L: dbprog.Lit{V: value.Of(1)}, R: dbprog.Lit{V: value.Of(1)}},
			Then: []dbprog.Stmt{
				dbprog.FindOwner{Set: "DEPT-EMP"},
				dbprog.FindOwner{Set: "DIV-DEPT"},
			},
		},
	}}
	out, opts := Optimize(context.Background(), p, schema.CompanyV2())
	if len(out.Stmts) != 2 {
		t.Errorf("not flattened: %v", out.Stmts)
	}
	if len(opts) != 1 || opts[0].Rule != "constant-fold" {
		t.Errorf("opts = %v", opts)
	}
}

func TestOtherDialectsUntouched(t *testing.T) {
	p := parse(t, `PROGRAM S DIALECT SEQUEL. PRINT 'HI'. END PROGRAM.`)
	out, opts := Optimize(context.Background(), p, schema.CompanyV2())
	if out != p || opts != nil {
		t.Error("SEQUEL programs should pass through")
	}
}
