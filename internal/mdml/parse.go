package mdml

import (
	"strconv"
	"strings"

	"progconv/internal/lex"
	"progconv/internal/value"
)

// ParseFind parses a FIND expression in the paper's syntax:
//
//	FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP)
//
// A leading @NAME step starts the path from a previously retrieved
// collection instead of SYSTEM.
func ParseFind(src string) (*Find, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	f, err := ParseFindFrom(s)
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input after FIND: %s", s.Peek())
	}
	return f, nil
}

// ParseSortOrFind parses either a bare FIND or a SORT(FIND(...)) ON (...)
// wrapper; the result is *Find or *Sort.
func ParseSortOrFind(src string) (any, error) {
	s, err := lex.NewStream(src)
	if err != nil {
		return nil, err
	}
	var out any
	if s.IsKeyword("SORT") {
		out, err = ParseSortFrom(s)
	} else {
		out, err = ParseFindFrom(s)
	}
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "trailing input: %s", s.Peek())
	}
	return out, nil
}

// ParseSortFrom parses SORT(FIND(...)) ON (fields) from a token stream.
func ParseSortFrom(s *lex.Stream) (*Sort, error) {
	if err := s.ExpectKeyword("SORT"); err != nil {
		return nil, err
	}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	inner, err := ParseFindFrom(s)
	if err != nil {
		return nil, err
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	if err := s.ExpectKeyword("ON"); err != nil {
		return nil, err
	}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	srt := &Sort{Inner: inner}
	for {
		f, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		srt.On = append(srt.On, f)
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return srt, nil
}

// ParseFindFrom parses a FIND from a token stream, leaving the stream
// after the closing parenthesis. This is how dbprog embeds the dialect.
func ParseFindFrom(s *lex.Stream) (*Find, error) {
	if err := s.ExpectKeyword("FIND"); err != nil {
		return nil, err
	}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	target, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	if err := s.ExpectPunct(":"); err != nil {
		return nil, err
	}
	f := &Find{Target: target}
	// Steps alternate between sets and records starting from SYSTEM or a
	// collection; the parser does not know the schema, so it records names
	// and lets the evaluator classify them.
	first := true
	for {
		var step Step
		switch {
		case first && s.TakeKeyword("SYSTEM"):
			step = Step{Kind: SystemStep}
		case first && s.IsPunct("@"):
			return nil, lex.Errorf(s.Peek(), "collection reference must be an identifier")
		default:
			name, err := s.ExpectIdent()
			if err != nil {
				return nil, err
			}
			step = Step{Kind: SetStep, Name: name} // classified later
			if s.TakePunct("(") {
				q, err := parseQualOr(s)
				if err != nil {
					return nil, err
				}
				if err := s.ExpectPunct(")"); err != nil {
					return nil, err
				}
				step.Qual = q
				step.Kind = RecordStep
			}
		}
		f.Steps = append(f.Steps, step)
		first = false
		if !s.TakePunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// Classify resolves the parser's provisional step kinds against a schema
// vocabulary: names that are set types become SetStep, record types
// RecordStep; a leading unknown name is a collection reference. It is
// separated from parsing so that programs can be parsed without their
// schema at hand and classified later by the analyzer.
func (f *Find) Classify(isSet func(string) bool, isRecord func(string) bool) error {
	for i := range f.Steps {
		st := &f.Steps[i]
		if st.Kind == SystemStep {
			continue
		}
		switch {
		case st.Qual != nil:
			if !isRecord(st.Name) {
				return &ClassifyError{Name: st.Name, Reason: "qualified step is not a record type"}
			}
			st.Kind = RecordStep
		case isSet(st.Name):
			st.Kind = SetStep
		case isRecord(st.Name):
			st.Kind = RecordStep
		case i == 0:
			st.Kind = CollectionStep
		default:
			return &ClassifyError{Name: st.Name, Reason: "not a set, record type, or leading collection"}
		}
	}
	return nil
}

// Classified returns a copy of the path with step kinds resolved by
// Classify, leaving the receiver untouched. Evaluation and optimization
// classify through this copy because a parsed program may be shared —
// the conversion cache hands one parse tree to many concurrent runs —
// so resolved kinds must never be written back into the shared tree.
func (f *Find) Classified(isSet func(string) bool, isRecord func(string) bool) (*Find, error) {
	c := &Find{Target: f.Target, Steps: append([]Step(nil), f.Steps...)}
	if err := c.Classify(isSet, isRecord); err != nil {
		return nil, err
	}
	return c, nil
}

// ClassifyError reports a path name that fits no schema vocabulary.
type ClassifyError struct {
	Name   string
	Reason string
}

func (e *ClassifyError) Error() string {
	return "mdml: cannot classify path step " + e.Name + ": " + e.Reason
}

func parseQualOr(s *lex.Stream) (Qual, error) {
	l, err := parseQualAnd(s)
	if err != nil {
		return nil, err
	}
	for s.TakeKeyword("OR") {
		r, err := parseQualAnd(s)
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func parseQualAnd(s *lex.Stream) (Qual, error) {
	l, err := parseQualUnary(s)
	if err != nil {
		return nil, err
	}
	for s.TakeKeyword("AND") {
		r, err := parseQualUnary(s)
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func parseQualUnary(s *lex.Stream) (Qual, error) {
	if s.TakeKeyword("NOT") {
		q, err := parseQualUnary(s)
		if err != nil {
			return nil, err
		}
		return Not{q}, nil
	}
	if s.TakePunct("(") {
		q, err := parseQualOr(s)
		if err != nil {
			return nil, err
		}
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	field, err := s.ExpectIdent()
	if err != nil {
		return nil, err
	}
	op := s.Peek()
	if op.Kind != lex.Punct || !isCmpOp(op.Text) {
		return nil, lex.Errorf(op, "expected comparison operator, found %s", op)
	}
	s.Next()
	t := s.Peek()
	switch {
	case t.Kind == lex.Str:
		s.Next()
		return Cmp{Field: field, Op: op.Text, Lit: value.Str(t.Text)}, nil
	case t.Kind == lex.Number:
		s.Next()
		return Cmp{Field: field, Op: op.Text, Lit: numberLit(t.Text)}, nil
	case t.Kind == lex.Punct && t.Text == "-" && s.PeekAt(1).Kind == lex.Number:
		s.Next()
		n := s.Next()
		v := numberLit(n.Text)
		if v.Kind() == value.Float {
			v = value.F(-v.AsFloat())
		} else {
			v = value.Of(-v.AsInt())
		}
		return Cmp{Field: field, Op: op.Text, Lit: v}, nil
	case t.Kind == lex.Punct && t.Text == ":":
		s.Next()
		name, err := s.ExpectIdent()
		if err != nil {
			return nil, err
		}
		return Cmp{Field: field, Op: op.Text, Param: name}, nil
	}
	return nil, lex.Errorf(t, "expected literal or :parameter, found %s", t)
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func numberLit(text string) value.Value {
	if strings.Contains(text, ".") {
		f, _ := strconv.ParseFloat(text, 64)
		return value.F(f)
	}
	i, _ := strconv.ParseInt(text, 10, 64)
	return value.Of(i)
}
