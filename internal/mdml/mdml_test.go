package mdml

import (
	"strings"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// companyDB loads the Figure 4.2 database used by the paper's two FIND
// examples.
func companyDB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{
		{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"},
	} {
		if _, st, err := s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l)); st != netstore.OK || err != nil {
			t.Fatalf("store DIV: %v %v", st, err)
		}
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
		{"TEXTILES", "EVANS", "LOOMS", 24},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		if _, st, err := s.Store("EMP", value.FromPairs(
			"EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age)); st != netstore.OK || err != nil {
			t.Fatalf("store EMP %s: %v %v", e.name, st, err)
		}
	}
	return db
}

func names(e *Evaluator, ids []netstore.RecordID) []string {
	var out []string
	for _, r := range e.Records(ids) {
		out = append(out, r.MustGet("EMP-NAME").AsString())
	}
	return out
}

// TestPaperExample1 runs §4.2 example 1: "Find all employee records for
// employees whose age is greater than 30."
func TestPaperExample1(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	f, err := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(names(e, ids), ",")
	// ALL-DIV is keyed (MACHINERY before TEXTILES); DIV-EMP keyed by name.
	if got != "ADAMS,CLARK,DAVIS" {
		t.Errorf("EMP(AGE>30) = %s", got)
	}
}

// TestPaperExample2 runs §4.2 example 2: employees in the SALES department
// of the MACHINERY division.
func TestPaperExample2(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	f, err := ParseFind(`FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
	                          DIV-EMP, EMP(DEPT-NAME = 'SALES'))`)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names(e, ids), ","); got != "ADAMS,BAKER" {
		t.Errorf("MACHINERY/SALES = %s", got)
	}
}

func TestSortWrapper(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	v, err := ParseSortOrFind("SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) ON (AGE)")
	if err != nil {
		t.Fatal(err)
	}
	srt := v.(*Sort)
	ids, err := e.EvalSort(srt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names(e, ids), ","); got != "CLARK,ADAMS,DAVIS" {
		t.Errorf("sorted by age = %s", got)
	}
	if !strings.Contains(srt.String(), "SORT(FIND(EMP:") || !strings.Contains(srt.String(), "ON (AGE)") {
		t.Errorf("Sort rendering: %s", srt)
	}
}

func TestFindRendersAndReparses(t *testing.T) {
	src := "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(AGE > 30 AND DEPT-NAME <> 'SALES'))"
	f, err := ParseFind(src)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ParseFind(f.String())
	if err != nil {
		t.Fatalf("rendered FIND does not reparse: %v\n%s", err, f)
	}
	e := NewEvaluator(companyDB(t))
	ids1, err1 := e.Eval(f)
	ids2, err2 := e.Eval(f2)
	if err1 != nil || err2 != nil || len(ids1) != len(ids2) {
		t.Errorf("round-trip changed semantics: %v/%v %v/%v", ids1, err1, ids2, err2)
	}
}

func TestCollectionStart(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f1, _ := ParseFind("FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'TEXTILES'))")
	divs, err := e.Eval(f1)
	if err != nil || len(divs) != 1 {
		t.Fatalf("%v %v", divs, err)
	}
	e.Collections["TEXDIVS"] = divs
	f2, err := ParseFind("FIND(EMP: TEXDIVS, DIV-EMP, EMP)")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f2)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(names(e, ids), ","); got != "DAVIS,EVANS" {
		t.Errorf("collection start = %s", got)
	}
}

func TestQualOperatorsAndConnectives(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	cases := []struct {
		qual string
		want int
	}{
		{"AGE >= 45", 2},
		{"AGE <= 24", 1},
		{"AGE < 28", 1},
		{"AGE <> 45", 4},
		{"AGE = 45", 1},
		{"AGE > 30 AND DEPT-NAME = 'SALES'", 2},
		{"AGE < 25 OR AGE > 50", 2},
		{"NOT DEPT-NAME = 'SALES'", 2},
		{"(AGE > 30 OR AGE < 25) AND DEPT-NAME = 'SALES'", 2},
	}
	for _, tc := range cases {
		f, err := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(" + tc.qual + "))")
		if err != nil {
			t.Fatalf("%s: %v", tc.qual, err)
		}
		ids, err := e.Eval(f)
		if err != nil || len(ids) != tc.want {
			t.Errorf("%s: %d records, %v", tc.qual, len(ids), err)
		}
	}
}

func TestQualParams(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	e.Params["MIN"] = value.Of(40)
	f, err := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > :MIN))")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f)
	if err != nil || len(ids) != 2 {
		t.Errorf("%v %v", ids, err)
	}
	delete(e.Params, "MIN")
	if _, err := e.Eval(f); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Errorf("unbound: %v", err)
	}
}

func TestQualOnVirtualField(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	// DIV-NAME on EMP is virtual; a FIND can still qualify on it.
	f, err := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DIV-NAME = 'TEXTILES'))")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f)
	if err != nil || len(ids) != 2 {
		t.Errorf("%v %v", ids, err)
	}
}

func TestNegativeLiteralQual(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	f, err := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > -1))")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.Eval(f)
	if err != nil || len(ids) != 5 {
		t.Errorf("%v %v", ids, err)
	}
}

func TestEvalErrors(t *testing.T) {
	e := NewEvaluator(companyDB(t))
	cases := []struct {
		src, want string
	}{
		{"FIND(NOPE: SYSTEM, ALL-DIV, DIV)", "unknown target"},
		{"FIND(EMP: SYSTEM, DIV-EMP, EMP)", "not SYSTEM-owned"},
		{"FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP)", "must end at the target"},
		{"FIND(EMP: SYSTEM, ALL-DIV, EMP)", "yields DIV records"},
		{"FIND(EMP: MYSTERY, DIV-EMP, EMP)", "unknown collection"},
		{"FIND(EMP: SYSTEM, ALL-DIV, DIV, NONSET, EMP)", "cannot classify"},
		{"FIND(EMP: SYSTEM, ALL-DIV, DIV(AGE > 1), DIV-EMP, EMP)", "no field AGE"},
	}
	for _, tc := range cases {
		f, err := ParseFind(tc.src)
		if err != nil {
			t.Fatalf("%s should parse: %v", tc.src, err)
		}
		if _, err := e.Eval(f); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.src, err, tc.want)
		}
	}
	if _, err := e.Eval(&Find{Target: "EMP"}); err == nil {
		t.Error("empty path")
	}
	// SYSTEM not at the start.
	f := &Find{Target: "EMP", Steps: []Step{
		{Kind: SetStep, Name: "ALL-DIV"}, {Kind: SystemStep},
	}}
	if _, err := e.Eval(f); err == nil {
		t.Error("SYSTEM mid-path")
	}
	// Traversing a set from the wrong record type.
	f2 := &Find{Target: "EMP", Steps: []Step{
		{Kind: SystemStep}, {Kind: SetStep, Name: "ALL-DIV"},
		{Kind: RecordStep, Name: "DIV"}, {Kind: SetStep, Name: "ALL-DIV"},
		{Kind: RecordStep, Name: "EMP"},
	}}
	if _, err := e.Eval(f2); err == nil {
		t.Error("re-traversing ALL-DIV from DIV members")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"FIND EMP: SYSTEM)",
		"FIND(EMP SYSTEM)",
		"FIND(EMP: SYSTEM, DIV(AGE >)",
		"FIND(EMP: SYSTEM, DIV(AGE ! 3))",
		"FIND(EMP: SYSTEM, DIV) JUNK",
		"SORT(FIND(EMP: SYSTEM, DIV)) ON",
		"'bad",
	} {
		if _, err := ParseSortOrFind(src); err == nil {
			t.Errorf("%q should not parse", src)
		}
	}
	if _, err := ParseFind("'bad"); err == nil {
		t.Error("ParseFind lex error")
	}
}

func TestDeleteCollection(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SALES'))")
	ids, err := e.Eval(f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Delete(ids)
	if err != nil || n != 3 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	if db.Count("EMP") != 2 {
		t.Errorf("EMP count = %d", db.Count("EMP"))
	}
	// Deleting owners cascades; a second delete over stale IDs is a no-op.
	n, err = e.Delete(ids)
	if err != nil || n != 0 {
		t.Errorf("re-delete: %d, %v", n, err)
	}
}

func TestDeleteOwnersCascades(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(DIV: SYSTEM, ALL-DIV, DIV)")
	ids, _ := e.Eval(f)
	n, err := e.Delete(ids)
	if err != nil || n != 2 {
		t.Fatalf("%d %v", n, err)
	}
	if db.Count("EMP") != 0 {
		t.Error("MANDATORY members should cascade")
	}
}

func TestModifyCollection(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DEPT-NAME = 'SALES'))")
	ids, _ := e.Eval(f)
	n, err := e.Modify(ids, value.FromPairs("DEPT-NAME", "MARKETING"))
	if err != nil || n != 3 {
		t.Fatalf("%d %v", n, err)
	}
	ids2, _ := e.Eval(f)
	if len(ids2) != 0 {
		t.Error("SALES records should be gone")
	}
	_ = db
}

func TestModifyDuplicateFails(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(EMP-NAME = 'ADAMS'))")
	ids, _ := e.Eval(f)
	if _, err := e.Modify(ids, value.FromPairs("EMP-NAME", "BAKER")); err == nil {
		t.Error("duplicate set key should fail")
	}
}

func TestStoreViaOwnerPath(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	owner, _ := ParseFind("FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'TEXTILES'))")
	id, err := e.Store("EMP",
		value.FromPairs("EMP-NAME", "FOSTER", "DEPT-NAME", "LOOMS", "AGE", 30),
		map[string]*Find{"DIV-EMP": owner})
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Data(id)
	if rec.MustGet("DIV-NAME").AsString() != "TEXTILES" {
		t.Errorf("stored under wrong owner: %v", rec)
	}
}

func TestStoreErrors(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	if _, err := e.Store("NOPE", value.NewRecord(), nil); err == nil {
		t.Error("unknown type")
	}
	// Ambiguous owner path.
	allDivs, _ := ParseFind("FIND(DIV: SYSTEM, ALL-DIV, DIV)")
	_, err := e.Store("EMP", value.FromPairs("EMP-NAME", "X", "DEPT-NAME", "Y", "AGE", 1),
		map[string]*Find{"DIV-EMP": allDivs})
	if err == nil || !strings.Contains(err.Error(), "need exactly 1") {
		t.Errorf("ambiguous owner: %v", err)
	}
	// No owner path for an AUTOMATIC set.
	if _, err := e.Store("EMP", value.FromPairs("EMP-NAME", "X", "DEPT-NAME", "Y", "AGE", 1), nil); err == nil {
		t.Error("missing owner path should fail")
	}
	// Duplicate set key.
	owner, _ := ParseFind("FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'))")
	if _, err := e.Store("EMP", value.FromPairs("EMP-NAME", "ADAMS", "DEPT-NAME", "Y", "AGE", 1),
		map[string]*Find{"DIV-EMP": owner}); err == nil {
		t.Error("duplicate in set should fail")
	}
}

func TestSortIDsErrors(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)")
	ids, _ := e.Eval(f)
	if _, err := e.SortIDs(ids, []string{"NOPE"}); err == nil {
		t.Error("unknown sort field")
	}
	if _, err := e.SortIDs([]netstore.RecordID{999999}, []string{"AGE"}); err == nil {
		t.Error("stale ID")
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	db := companyDB(t)
	e := NewEvaluator(db)
	if e.DB() != db {
		t.Error("DB accessor")
	}
}

func TestDedupAcrossPaths(t *testing.T) {
	// Two DIVs share no EMPs here, but dedup must hold structurally: build
	// a schema where two set steps could reach the same record twice.
	db := companyDB(t)
	e := NewEvaluator(db)
	f, _ := ParseFind("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)")
	ids, err := e.Eval(f)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netstore.RecordID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate record in collection")
		}
		seen[id] = true
	}
	if len(ids) != 5 {
		t.Errorf("all-EMP count = %d", len(ids))
	}
}
