// Package mdml implements the University of Maryland conversion-oriented
// DML of §4.2 (Shneiderman): retrievals that "return collections of
// records of a single record type", specified by a FIND with a qualified
// access path that "begins with a SYSTEM owned set or a collection of
// previously retrieved target records" and is extended by set-name /
// record-name pairs, plus SORT, STORE, DELETE and MODIFY.
//
//	FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
//	     DIV-EMP, EMP(DEPT-NAME = 'SALES'))
//
// The language exists to be easy to convert: the paper's Figure 4.2→4.4
// transformation rewrites these FIND paths mechanically, which
// package xform reproduces.
package mdml

import (
	"fmt"
	"strings"

	"progconv/internal/netstore"
	"progconv/internal/value"
)

// Qual is a boolean qualification over one record's fields.
type Qual interface {
	fmt.Stringer
	// Eval tests the record; params supply :NAME placeholders.
	Eval(rec *value.Record, params map[string]value.Value) (bool, error)
}

// Cmp is FIELD op operand.
type Cmp struct {
	Field string
	Op    string
	Lit   value.Value // used when Param is empty
	Param string
}

func (c Cmp) String() string {
	if c.Param != "" {
		return fmt.Sprintf("%s %s :%s", c.Field, c.Op, c.Param)
	}
	return fmt.Sprintf("%s %s %s", c.Field, c.Op, c.Lit.Literal())
}

// Eval implements Qual.
func (c Cmp) Eval(rec *value.Record, params map[string]value.Value) (bool, error) {
	lhs, ok := rec.Get(c.Field)
	if !ok {
		return false, fmt.Errorf("mdml: record has no field %s", c.Field)
	}
	rhs := c.Lit
	if c.Param != "" {
		v, bound := params[c.Param]
		if !bound {
			return false, fmt.Errorf("mdml: unbound parameter :%s", c.Param)
		}
		rhs = v
	}
	if lhs.IsNull() || rhs.IsNull() {
		return false, nil
	}
	cmp, comparable := lhs.Compare(rhs)
	if !comparable {
		return false, nil
	}
	switch c.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("mdml: unknown operator %q", c.Op)
}

// And is conjunction.
type And struct{ L, R Qual }

func (q And) String() string { return fmt.Sprintf("(%s AND %s)", q.L, q.R) }

// Eval implements Qual.
func (q And) Eval(rec *value.Record, params map[string]value.Value) (bool, error) {
	l, err := q.L.Eval(rec, params)
	if err != nil || !l {
		return false, err
	}
	return q.R.Eval(rec, params)
}

// Or is disjunction.
type Or struct{ L, R Qual }

func (q Or) String() string { return fmt.Sprintf("(%s OR %s)", q.L, q.R) }

// Eval implements Qual.
func (q Or) Eval(rec *value.Record, params map[string]value.Value) (bool, error) {
	l, err := q.L.Eval(rec, params)
	if err != nil || l {
		return l, err
	}
	return q.R.Eval(rec, params)
}

// Not is negation.
type Not struct{ Q Qual }

func (q Not) String() string { return fmt.Sprintf("(NOT %s)", q.Q) }

// Eval implements Qual.
func (q Not) Eval(rec *value.Record, params map[string]value.Value) (bool, error) {
	v, err := q.Q.Eval(rec, params)
	return !v, err
}

// Conjuncts decomposes a qualification into its top-level AND conjuncts,
// the unit the Program Converter moves between path steps (a DEPT-NAME
// condition migrates from the EMP step to the new DEPT step in the
// Figure 4.2→4.4 conversion).
func Conjuncts(q Qual) []Qual {
	if q == nil {
		return nil
	}
	if a, ok := q.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Qual{q}
}

// Conjoin rebuilds a qualification from conjuncts (nil for none).
func Conjoin(qs []Qual) Qual {
	var out Qual
	for _, q := range qs {
		if out == nil {
			out = q
		} else {
			out = And{out, q}
		}
	}
	return out
}

// QualFields returns every field name a qualification mentions.
func QualFields(q Qual) []string {
	switch x := q.(type) {
	case nil:
		return nil
	case Cmp:
		return []string{x.Field}
	case And:
		return append(QualFields(x.L), QualFields(x.R)...)
	case Or:
		return append(QualFields(x.L), QualFields(x.R)...)
	case Not:
		return QualFields(x.Q)
	}
	return nil
}

// IsEqualityOn reports whether the qualification pins the given field
// with a top-level equality conjunct — the condition under which a
// rewritten path stays within one set occurrence and needs no SORT.
func IsEqualityOn(q Qual, field string) bool {
	for _, c := range Conjuncts(q) {
		if cmp, ok := c.(Cmp); ok && cmp.Field == field && cmp.Op == "=" {
			return true
		}
	}
	return false
}

// StepKind distinguishes path elements.
type StepKind uint8

// Path step kinds.
const (
	SystemStep     StepKind = iota // the SYSTEM entry point
	CollectionStep                 // a previously retrieved collection, by name
	SetStep                        // traverse a set from owners to members
	RecordStep                     // filter to a record type, optionally qualified
)

// Step is one element of a FIND access path.
type Step struct {
	Kind StepKind
	Name string // set name, record name, or collection name
	Qual Qual   // only for RecordStep, may be nil
}

func (s Step) String() string {
	switch s.Kind {
	case SystemStep:
		return "SYSTEM"
	case CollectionStep:
		return "@" + s.Name
	case SetStep:
		return s.Name
	default:
		if s.Qual != nil {
			return fmt.Sprintf("%s(%s)", s.Name, s.Qual)
		}
		return s.Name
	}
}

// Find is a FIND(target: path...) retrieval.
type Find struct {
	Target string
	Steps  []Step
}

// String renders the FIND in the paper's syntax.
func (f *Find) String() string {
	parts := make([]string, len(f.Steps))
	for i, s := range f.Steps {
		parts[i] = s.String()
	}
	return fmt.Sprintf("FIND(%s: %s)", f.Target, strings.Join(parts, ", "))
}

// Sort wraps a Find (or collection) with an ordering, the paper's
// SORT(FIND(...)) ON (EMP-NAME).
type Sort struct {
	Inner *Find
	On    []string
}

// String renders the SORT in the paper's syntax.
func (s *Sort) String() string {
	return fmt.Sprintf("SORT(%s) ON (%s)", s.Inner, strings.Join(s.On, ", "))
}

// Evaluator runs Maryland DML against a network database.
type Evaluator struct {
	db *netstore.DB
	// Collections holds previously retrieved collections by name, for
	// paths that start from one.
	Collections map[string][]netstore.RecordID
	// Params supplies :NAME qualification placeholders.
	Params map[string]value.Value
}

// NewEvaluator creates an evaluator over the database.
func NewEvaluator(db *netstore.DB) *Evaluator {
	return &Evaluator{
		db:          db,
		Collections: make(map[string][]netstore.RecordID),
		Params:      make(map[string]value.Value),
	}
}

// DB returns the underlying database.
func (e *Evaluator) DB() *netstore.DB { return e.db }

// Eval runs a FIND and returns the resulting collection of record IDs,
// in traversal order, without duplicates (§4.2: "Duplicates are not
// allowed").
func (e *Evaluator) Eval(f *Find) ([]netstore.RecordID, error) {
	if e.db.Schema().Record(f.Target) == nil {
		return nil, fmt.Errorf("mdml: unknown target record type %s", f.Target)
	}
	if len(f.Steps) == 0 {
		return nil, fmt.Errorf("mdml: empty access path")
	}
	sch := e.db.Schema()
	f, err := f.Classified(
		func(n string) bool { return sch.Set(n) != nil },
		func(n string) bool { return sch.Record(n) != nil },
	)
	if err != nil {
		return nil, err
	}
	var current []netstore.RecordID
	sawSystem := false
	for i, step := range f.Steps {
		switch step.Kind {
		case SystemStep:
			if i != 0 {
				return nil, fmt.Errorf("mdml: SYSTEM must begin the path")
			}
			sawSystem = true
		case CollectionStep:
			if i != 0 {
				return nil, fmt.Errorf("mdml: collection %s must begin the path", step.Name)
			}
			coll, ok := e.Collections[step.Name]
			if !ok {
				return nil, fmt.Errorf("mdml: unknown collection %s", step.Name)
			}
			current = append([]netstore.RecordID(nil), coll...)
		case SetStep:
			set := e.db.Schema().Set(step.Name)
			if set == nil {
				return nil, fmt.Errorf("mdml: unknown set %s", step.Name)
			}
			if i == 1 && sawSystem {
				if !set.IsSystem() {
					return nil, fmt.Errorf("mdml: set %s after SYSTEM is not SYSTEM-owned", step.Name)
				}
				current = e.db.SystemMembers(step.Name)
				continue
			}
			var next []netstore.RecordID
			seen := make(map[netstore.RecordID]bool)
			for _, owner := range current {
				if e.db.TypeOf(owner) != set.Owner {
					return nil, fmt.Errorf("mdml: set %s cannot be traversed from %s records",
						step.Name, e.db.TypeOf(owner))
				}
				e.db.EachMember(step.Name, owner, func(m netstore.RecordID) bool {
					if !seen[m] {
						seen[m] = true
						next = append(next, m)
					}
					return true
				})
			}
			current = next
		case RecordStep:
			if e.db.Schema().Record(step.Name) == nil {
				return nil, fmt.Errorf("mdml: unknown record type %s", step.Name)
			}
			var next []netstore.RecordID
			for _, id := range current {
				if e.db.TypeOf(id) != step.Name {
					return nil, fmt.Errorf("mdml: path yields %s records where %s expected",
						e.db.TypeOf(id), step.Name)
				}
				if step.Qual != nil {
					keep, err := step.Qual.Eval(e.db.Data(id), e.Params)
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
				}
				next = append(next, id)
			}
			current = next
		}
	}
	last := f.Steps[len(f.Steps)-1]
	if last.Kind != RecordStep || last.Name != f.Target {
		return nil, fmt.Errorf("mdml: path must end at the target record type %s", f.Target)
	}
	return current, nil
}

// EvalSort runs a SORT(FIND(...)) ON (fields).
func (e *Evaluator) EvalSort(s *Sort) ([]netstore.RecordID, error) {
	ids, err := e.Eval(s.Inner)
	if err != nil {
		return nil, err
	}
	return e.SortIDs(ids, s.On)
}

// SortIDs orders a collection by the given fields of the records' data.
func (e *Evaluator) SortIDs(ids []netstore.RecordID, on []string) ([]netstore.RecordID, error) {
	type pair struct {
		id  netstore.RecordID
		rec *value.Record
	}
	pairs := make([]pair, len(ids))
	for i, id := range ids {
		rec := e.db.Data(id)
		if rec == nil {
			return nil, fmt.Errorf("mdml: stale record %d in collection", id)
		}
		for _, f := range on {
			if !rec.Has(f) {
				return nil, fmt.Errorf("mdml: sort field %s not in record", f)
			}
		}
		pairs[i] = pair{id, rec}
	}
	recs := make([]*value.Record, len(pairs))
	order := make(map[*value.Record]netstore.RecordID, len(pairs))
	for i, p := range pairs {
		recs[i] = p.rec
		order[p.rec] = p.id
	}
	value.SortRecords(recs, on)
	out := make([]netstore.RecordID, len(recs))
	for i, r := range recs {
		out[i] = order[r]
	}
	return out, nil
}

// Records resolves a collection to its record data, in order.
func (e *Evaluator) Records(ids []netstore.RecordID) []*value.Record {
	out := make([]*value.Record, 0, len(ids))
	for _, id := range ids {
		if r := e.db.Data(id); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Delete erases every record in the collection, with the engine's
// retention semantics (MANDATORY members cascade).
func (e *Evaluator) Delete(ids []netstore.RecordID) (int, error) {
	sess := netstore.NewSession(e.db)
	n := 0
	for _, id := range ids {
		if !e.db.Exists(id) {
			continue // already cascaded away
		}
		recType := e.db.TypeOf(id)
		if sess.Position(id) != netstore.OK {
			continue
		}
		if _, err := sess.Erase(recType); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Modify applies the assignments to every record in the collection.
func (e *Evaluator) Modify(ids []netstore.RecordID, set *value.Record) (int, error) {
	sess := netstore.NewSession(e.db)
	n := 0
	for _, id := range ids {
		if !e.db.Exists(id) {
			continue
		}
		recType := e.db.TypeOf(id)
		if st := sess.Position(id); st != netstore.OK {
			return n, fmt.Errorf("mdml: cannot reposition on record %d (%v)", id, st)
		}
		mst, err := sess.Modify(recType, set)
		if err != nil {
			return n, err
		}
		if mst != netstore.OK {
			return n, fmt.Errorf("mdml: modify failed with %v", mst)
		}
		n++
	}
	return n, nil
}

// Store creates a record of the target type. ownerPaths names, for each
// non-SYSTEM AUTOMATIC set the type is a member of, a FIND that must
// resolve to exactly one owner occurrence; the new record is connected
// beneath it.
func (e *Evaluator) Store(target string, rec *value.Record, ownerPaths map[string]*Find) (netstore.RecordID, error) {
	typ := e.db.Schema().Record(target)
	if typ == nil {
		return 0, fmt.Errorf("mdml: unknown record type %s", target)
	}
	sess := netstore.NewSession(e.db)
	for _, set := range e.db.Schema().SetsWithMember(target) {
		if set.IsSystem() {
			continue
		}
		path, ok := ownerPaths[set.Name]
		if !ok {
			continue // MANUAL sets need no owner; AUTOMATIC will fail in Store
		}
		owners, err := e.Eval(path)
		if err != nil {
			return 0, err
		}
		if len(owners) != 1 {
			return 0, fmt.Errorf("mdml: owner path for set %s resolved to %d records, need exactly 1",
				set.Name, len(owners))
		}
		// Position the set's currency on the owner.
		if st := sess.Position(owners[0]); st != netstore.OK {
			return 0, fmt.Errorf("mdml: cannot position on owner for set %s (%v)", set.Name, st)
		}
	}
	id, st, err := sess.Store(target, rec)
	if err != nil {
		return 0, err
	}
	if st != netstore.OK {
		return 0, fmt.Errorf("mdml: store failed with %v", st)
	}
	return id, nil
}
