package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"progconv"
	"progconv/internal/dbprog"
	"progconv/internal/fault"
	"progconv/internal/netstore"
	"progconv/internal/wire"
)

// deadlineExceeded is the cause installed on a job's deadline context,
// distinguishable from other run errors so the report endpoint can
// serve the "deadline" error code instead of the generic "failed".
type deadlineExceeded struct{ d time.Duration }

func (e deadlineExceeded) Error() string {
	return fmt.Sprintf("job deadline %s exceeded", e.d)
}

// jobState is one job's lifecycle position.
type jobState int

const (
	stateQueued jobState = iota
	stateRunning
	stateDone     // the conversion produced a report (exit 0, 3 or 4)
	stateFailed   // the run itself errored (parse-time errors never queue)
	stateCanceled // canceled by the client or the job deadline
)

func (s jobState) String() string {
	switch s {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateCanceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// job is one admitted conversion: the parsed workload, its event hub,
// and the terminal result.
type job struct {
	id   string
	spec *wire.JobSpec
	hub  *hub

	// Parsed at submission so a malformed job is a 400, not a queued
	// failure. src/dst hold network-model pairs, hierSrc/hierDst
	// hierarchical ones, per the spec's model field.
	src, dst         *progconv.Schema
	hierSrc, hierDst *progconv.Hierarchy
	programs         []*progconv.Program
	verifyDB         *progconv.Database
	hierVerifyDB     *progconv.HierDatabase

	// trace and submitted are set under the server mutex at admission
	// and read-only afterwards; the builder itself is internally
	// synchronized, so handlers may snapshot it mid-run.
	trace     *progconv.TraceBuilder
	submitted time.Time

	mu         sync.Mutex
	state      jobState
	cancel     context.CancelFunc // non-nil while running
	wantCancel bool               // cancel requested before the run started
	exit       wire.ExitCode
	errCode    wire.ErrorCode
	errMsg     string
	reportJSON []byte
}

// snapshotState is the consistent view handlers render from.
type snapshotState struct {
	state      jobState
	exit       wire.ExitCode
	errCode    wire.ErrorCode
	errMsg     string
	reportJSON []byte
}

func (j *job) snapshot() snapshotState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return snapshotState{j.state, j.exit, j.errCode, j.errMsg, j.reportJSON}
}

func (j *job) status() wire.JobStatus {
	st := j.snapshot()
	doc := wire.JobStatus{V: wire.Version, ID: j.id, State: st.state.String(), Error: st.errMsg}
	if j.trace != nil {
		doc.TraceID = j.trace.TraceID().String()
	}
	if st.state == stateDone || st.state == stateFailed || st.state == stateCanceled {
		code := int(st.exit)
		doc.ExitCode = &code
	}
	return doc
}

// traceSeed returns the job-content strings a fallback trace ID is
// derived from; the caller appends the submission index so identical
// resubmissions still get distinct traces.
func (j *job) traceSeed() []string {
	seed := []string{j.spec.SourceDDL, j.spec.TargetDDL}
	for _, p := range j.spec.Programs {
		seed = append(seed, p.Source)
	}
	return seed
}

// requestCancel cancels a running job or marks a queued one so the
// runner skips it; terminal jobs are unaffected.
func (j *job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateQueued:
		j.wantCancel = true
	case stateRunning:
		j.wantCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// newJob parses a validated spec into a runnable job. Parse errors are
// the caller's (HTTP 400); nothing is queued.
func (s *Server) newJob(spec *wire.JobSpec) (*job, error) {
	j := &job{spec: spec, hub: newHub()}
	var err error
	switch spec.ModelName() {
	case wire.ModelHierarchical:
		if j.hierSrc, err = progconv.ParseHierarchySchema(spec.SourceDDL); err != nil {
			return nil, fmt.Errorf("source_ddl: %w", err)
		}
		if j.hierDst, err = progconv.ParseHierarchySchema(spec.TargetDDL); err != nil {
			return nil, fmt.Errorf("target_ddl: %w", err)
		}
	default:
		if j.src, err = progconv.ParseNetworkSchema(spec.SourceDDL); err != nil {
			return nil, fmt.Errorf("source_ddl: %w", err)
		}
		if j.dst, err = progconv.ParseNetworkSchema(spec.TargetDDL); err != nil {
			return nil, fmt.Errorf("target_ddl: %w", err)
		}
	}
	for i, p := range spec.Programs {
		prog, err := progconv.ParseProgram(p.Source)
		if err != nil {
			return nil, fmt.Errorf("programs[%d]: %w", i, err)
		}
		j.programs = append(j.programs, prog)
	}
	if spec.Options.VerifyInit != "" {
		init, err := progconv.ParseProgram(spec.Options.VerifyInit)
		if err != nil {
			return nil, fmt.Errorf("verify_init: %w", err)
		}
		if j.hierSrc != nil {
			db := progconv.NewHierDatabase(j.hierSrc)
			if _, err := dbprog.Run(init, dbprog.Config{Hier: db}); err != nil {
				return nil, fmt.Errorf("verify_init program: %w", err)
			}
			j.hierVerifyDB = db
		} else {
			db := netstore.NewDB(j.src)
			if _, err := dbprog.Run(init, dbprog.Config{Net: db}); err != nil {
				return nil, fmt.Errorf("verify_init program: %w", err)
			}
			j.verifyDB = db
		}
	}
	return j, nil
}

// options maps the wire job options onto the facade's functional
// options — the same mapping cmd/progconv applies to its flags. The
// spec was validated at submission, so the duration and policy parses
// cannot fail here.
func (s *Server) options(j *job) []progconv.Option {
	o := j.spec.Options
	timeout, _ := wire.Duration(o.Timeout)
	stageTimeout, _ := wire.Duration(o.StageTimeout)
	analystTimeout, _ := wire.Duration(o.AnalystTimeout)
	policy, _ := wire.ParseFailurePolicy(o.OnFailure)
	migrateParallel := o.MigrateParallel
	if migrateParallel == 0 {
		migrateParallel = s.cfg.DefaultMigrateParallel
	}
	opts := []progconv.Option{
		progconv.WithAnalyst(progconv.Policy{AcceptOrderChanges: o.AcceptOrder}),
		progconv.WithParallelism(o.Parallelism),
		progconv.WithMigrationParallelism(migrateParallel),
		progconv.WithProgramTimeout(timeout),
		progconv.WithStageTimeout(stageTimeout),
		progconv.WithAnalystTimeout(analystTimeout),
		progconv.WithRetries(o.Retries, 0),
		progconv.WithFailurePolicy(policy),
		progconv.WithMetrics(),
		progconv.WithEventSink(progconv.MultiSink(j.hub, s.tally, s.inst.StageSink())),
	}
	if j.trace != nil {
		opts = append(opts, progconv.WithTraceSink(j.trace))
	}
	if s.cfg.Cache != nil {
		opts = append(opts, progconv.WithCache(s.cfg.Cache))
	}
	if j.verifyDB != nil {
		opts = append(opts, progconv.WithVerifyDB(j.verifyDB))
	}
	if j.hierVerifyDB != nil {
		opts = append(opts, progconv.WithVerifyHierDB(j.hierVerifyDB))
	}
	return opts
}

// runJob executes one admitted job on a runner goroutine.
func (s *Server) runJob(j *job) {
	defer j.hub.finish()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadline, _ := wire.Duration(j.spec.Options.Deadline)
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if max := s.cfg.MaxDeadline; max > 0 && (deadline <= 0 || deadline > max) {
		deadline = max
	}
	if deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeoutCause(ctx, deadline, deadlineExceeded{deadline})
		defer cancelT()
	}
	if j.spec.Options.Inject != "" {
		if inj, err := fault.Parse(j.spec.Options.Inject); err == nil {
			ctx = fault.With(ctx, inj)
		}
	}

	j.mu.Lock()
	if j.wantCancel {
		j.state = stateCanceled
		j.exit = wire.ExitError
		j.errCode = wire.CodeCanceled
		j.errMsg = "canceled before the run started"
		j.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.cancel = cancel
	j.mu.Unlock()

	// Queue wait ends here; the job trace records it as a leading phase
	// so the gap between submission and first stage is visible.
	wait := time.Since(j.submitted)
	s.inst.QueueWait.ObserveDuration("", wait)
	if j.trace != nil {
		j.trace.Phase("queue-wait", 0, wait)
	}
	jobStart := time.Now()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var report *progconv.Report
	var err error
	if j.hierSrc != nil {
		report, err = progconv.ConvertHier(ctx, j.hierSrc, j.hierDst, nil, j.programs, s.options(j)...)
	} else {
		report, err = progconv.Convert(ctx, j.src, j.dst, nil, j.programs, s.options(j)...)
	}

	s.inst.JobDur.ObserveDuration("", time.Since(jobStart))
	if j.trace != nil {
		j.trace.End(time.Since(jobStart))
	}
	if err == nil && report != nil {
		s.tally.AddDataPlane(report.DataPlane)
		s.inst.ObserveDataPlane(report.DataPlane)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	if err != nil {
		// A client cancel lands at canceled; everything else — including
		// an expired job deadline, whose cause the error message names —
		// is a failed run. The error code distinguishes the three for
		// machine consumers.
		if j.wantCancel {
			j.state = stateCanceled
			j.errCode = wire.CodeCanceled
		} else {
			j.state = stateFailed
			j.errCode = wire.CodeFailed
			var de deadlineExceeded
			if errors.As(err, &de) || errors.As(context.Cause(ctx), &de) {
				j.errCode = wire.CodeDeadline
			}
		}
		j.exit = wire.ExitError
		j.errMsg = err.Error()
		return
	}
	var buf bytes.Buffer
	if encErr := progconv.EncodeReportJSON(&buf, report); encErr != nil {
		j.state = stateFailed
		j.exit = wire.ExitError
		j.errCode = wire.CodeInternal
		j.errMsg = "encoding report: " + encErr.Error()
		return
	}
	j.state = stateDone
	j.reportJSON = buf.Bytes()
	j.exit, j.errMsg = wire.ExitFor(report, j.spec.Options.FailOn)
}

// hub fans one job's event stream out to any number of followers: it
// retains every event (jobs are batch-sized, not unbounded) and wakes
// blocked followers on append and at end-of-stream.
type hub struct {
	mu      sync.Mutex
	events  []progconv.Event
	changed chan struct{}
	closed  bool
}

func newHub() *hub {
	return &hub{changed: make(chan struct{})}
}

// Emit implements progconv.Sink (obs.Sink).
func (h *hub) Emit(ev progconv.Event) {
	h.mu.Lock()
	h.events = append(h.events, ev)
	close(h.changed)
	h.changed = make(chan struct{})
	h.mu.Unlock()
}

// finish marks end-of-stream and releases every follower.
func (h *hub) finish() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.changed)
	}
	h.mu.Unlock()
}

// since returns the events at and after index from, a channel that
// closes on the next append, and whether the stream has ended.
func (h *hub) since(from int) ([]progconv.Event, <-chan struct{}, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var events []progconv.Event
	if from < len(h.events) {
		events = append(events, h.events[from:]...)
	}
	return events, h.changed, h.closed && from+len(events) >= len(h.events)
}
