package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"progconv"
	"progconv/internal/schema"
	"progconv/internal/wire"
)

const initProgram = `
PROGRAM INIT-DB DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  MOVE 'DETROIT' TO DIV-LOC IN DIV.
  STORE DIV.
  MOVE 'TEXTILES' TO DIV-NAME IN DIV.
  MOVE 'ATLANTA' TO DIV-LOC IN DIV.
  STORE DIV.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'ADAMS' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 45 TO AGE IN EMP.
  STORE EMP.
  MOVE 'BAKER' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 28 TO AGE IN EMP.
  STORE EMP.
  MOVE 'CLARK' TO EMP-NAME IN EMP.
  MOVE 'WELDING' TO DEPT-NAME IN EMP.
  MOVE 33 TO AGE IN EMP.
  STORE EMP.
  MOVE 'TEXTILES' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'DAVIS' TO EMP-NAME IN EMP.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  MOVE 51 TO AGE IN EMP.
  STORE EMP.
END PROGRAM.
`

var testPrograms = []string{`
PROGRAM LIST-OLD DIALECT MARYLAND.
  FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) INTO OLD.
  FOR EACH E IN OLD
    PRINT EMP-NAME IN E, AGE IN E.
  END-FOR.
END PROGRAM.
`, `
PROGRAM COUNT-SALES DIALECT NETWORK.
  LET N = 0.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  MOVE 'SALES' TO DEPT-NAME IN EMP.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP USING DEPT-NAME.
    IF DB-STATUS = 'OK'
      GET EMP.
      LET N = N + 1.
    END-IF.
  END-PERFORM.
  PRINT 'SALES EMPLOYEES', N.
END PROGRAM.
`, `
PROGRAM ROSTER DIALECT NETWORK.
  MOVE 'MACHINERY' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  PERFORM UNTIL DB-STATUS <> 'OK'
    FIND NEXT EMP WITHIN DIV-EMP.
    IF DB-STATUS = 'OK'
      GET EMP.
      PRINT EMP-NAME IN EMP.
    END-IF.
  END-PERFORM.
END PROGRAM.
`}

// testSpec is the canonical COMPANY job every test submits.
func testSpec() wire.JobSpec {
	spec := wire.JobSpec{
		V:         wire.Version,
		SourceDDL: schema.CompanyV1().DDL(),
		TargetDDL: schema.CompanyV2().DDL(),
		Options:   wire.JobOptions{Parallelism: 1, VerifyInit: initProgram},
	}
	for _, src := range testPrograms {
		spec.Programs = append(spec.Programs, wire.ProgramSpec{Source: src})
	}
	return spec
}

// newTestServer boots a Server over httptest and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.StartDrain()
	})
	return srv, ts
}

func submit(t *testing.T, base string, spec wire.JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitOK(t *testing.T, base string, spec wire.JobSpec) string {
	t.Helper()
	resp := submit(t, base, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: got HTTP %d: %s", resp.StatusCode, b)
	}
	var st wire.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.V != wire.Version || st.ID == "" || st.State != "queued" {
		t.Fatalf("submit status = %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	return st.ID
}

func getStatus(t *testing.T, base, id string) wire.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reports an exit code.
func waitTerminal(t *testing.T, base, id string) wire.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.ExitCode != nil {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return wire.JobStatus{}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestSubmitStatusReportEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submitOK(t, ts.URL, testSpec())

	st := waitTerminal(t, ts.URL, id)
	if st.State != "done" || *st.ExitCode != 0 {
		t.Fatalf("terminal status = %+v", st)
	}

	// The listing knows the job.
	code, body := getBody(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(body), id) {
		t.Fatalf("list: HTTP %d %s", code, body)
	}

	// The report is a wire-v1 document served with the exit-table status.
	code, body = getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	if !bytes.HasPrefix(body, []byte("{\n  \"v\": 1,")) {
		t.Fatalf("report does not lead with the wire version: %.60s", body)
	}
	var rep wire.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 3 || rep.Auto+rep.Qualified+rep.Manual+rep.Failed != 3 {
		t.Fatalf("report tallies = %d auto %d qualified %d manual %d failed",
			rep.Auto, rep.Qualified, rep.Manual, rep.Failed)
	}

	// Events replay as NDJSON; every line is versioned.
	code, body = getBody(t, ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1")
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < len(testPrograms) {
		t.Fatalf("only %d event lines", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `{"v":1,`) {
			t.Fatalf("unversioned event line: %s", ln)
		}
		if strings.Contains(ln, `"t_ns"`) {
			t.Fatalf("omit_timing leaked a timestamp: %s", ln)
		}
	}

	// The same stream over SSE frames each event as a data: line.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	for _, ln := range strings.Split(strings.TrimRight(string(sse), "\n"), "\n") {
		if ln != "" && !strings.HasPrefix(ln, "data: ") {
			t.Fatalf("SSE line without data prefix: %s", ln)
		}
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name    string
		breakIt func(*wire.JobSpec)
	}{
		{"missing DDL", func(s *wire.JobSpec) { s.SourceDDL = "" }},
		{"unparsable DDL", func(s *wire.JobSpec) { s.SourceDDL = "SCHEMA NONSENSE" }},
		{"unparsable program", func(s *wire.JobSpec) { s.Programs[0].Source = "NOT A PROGRAM" }},
		{"bad fail_on", func(s *wire.JobSpec) { s.Options.FailOn = "always" }},
		{"bad deadline", func(s *wire.JobSpec) { s.Options.Deadline = "soon" }},
		{"bad verify_init", func(s *wire.JobSpec) { s.Options.VerifyInit = "BROKEN" }},
		{"future version", func(s *wire.JobSpec) { s.V = wire.Version + 1 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.breakIt(&spec)
		resp := submit(t, ts.URL, spec)
		var ed wire.ErrorDoc
		json.NewDecoder(resp.Body).Decode(&ed)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
		if ed.V != wire.Version || ed.Error == "" {
			t.Errorf("%s: error doc = %+v", tc.name, ed)
		}
	}

	// Malformed JSON is also a 400, and unknown jobs are 404 everywhere.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: HTTP %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/report", "/v1/jobs/nope/events"} {
		if code, _ := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, code)
		}
	}
}

func TestFailOnGateMapsToConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := testSpec()
	spec.Options.FailOn = "qualified"
	id := submitOK(t, ts.URL, spec)
	st := waitTerminal(t, ts.URL, id)
	if st.State != "done" || *st.ExitCode != int(wire.ExitFailOn) {
		t.Fatalf("status = %+v, want done with exit %d", st, wire.ExitFailOn)
	}
	if !strings.Contains(st.Error, "fail-on qualified") {
		t.Fatalf("gate message = %q", st.Error)
	}
	// The report still renders — HTTP status carries the gate.
	code, body := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != http.StatusConflict || !bytes.HasPrefix(body, []byte("{\n  \"v\": 1,")) {
		t.Fatalf("report: HTTP %d %.60s", code, body)
	}
}

// slowSpec delays every analyze stage so jobs stay in flight long
// enough to observe queue overflow, cancellation and drain.
func slowSpec(delay string) wire.JobSpec {
	spec := testSpec()
	spec.Options.Inject = "delay=" + delay + "@*/analyze"
	return spec
}

func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 1, Runners: 1, RetryAfter: 3 * time.Second})
	var ids []string
	rejected := 0
	for i := 0; i < 8; i++ {
		resp := submit(t, ts.URL, slowSpec("150ms"))
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st wire.JobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			rejected++
			if ra := resp.Header.Get("Retry-After"); ra != "3" {
				t.Fatalf("Retry-After = %q, want seconds hint \"3\"", ra)
			}
		default:
			t.Fatalf("submission %d: HTTP %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if rejected == 0 {
		t.Fatal("a depth-1 queue admitted 8 concurrent slow jobs without a 429")
	}
	// Everything admitted still completes.
	for _, id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != "done" {
			t.Fatalf("admitted job %s ended %q (%s)", id, st.State, st.Error)
		}
	}
}

func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 4, Runners: 1})
	running := submitOK(t, ts.URL, slowSpec("400ms"))
	queued := submitOK(t, ts.URL, slowSpec("400ms"))

	// Cancel the queued job before a runner reaches it.
	resp, err := http.Post(ts.URL+"/v1/jobs/"+queued+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Give the first job time to start, then cancel it mid-run.
	for getStatus(t, ts.URL, running).State == "queued" {
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/"+running+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if st := waitTerminal(t, ts.URL, running); st.State != "canceled" || *st.ExitCode != int(wire.ExitError) {
		t.Fatalf("running job after cancel = %+v", st)
	}
	st := waitTerminal(t, ts.URL, queued)
	if st.State != "canceled" || !strings.Contains(st.Error, "before the run started") {
		t.Fatalf("queued job after cancel = %+v", st)
	}
	// A canceled job's report endpoint carries the error document.
	code, body := getBody(t, ts.URL+"/v1/jobs/"+queued+"/report")
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "before the run started") {
		t.Fatalf("canceled report: HTTP %d %s", code, body)
	}
}

func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := slowSpec("30s")
	spec.Options.Deadline = "50ms"
	id := submitOK(t, ts.URL, spec)
	st := waitTerminal(t, ts.URL, id)
	if st.State != "failed" || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline job = %+v", st)
	}
}

func TestMaxDeadlineClamps(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeadline: 50 * time.Millisecond})
	spec := slowSpec("30s")
	spec.Options.Deadline = "1h"
	id := submitOK(t, ts.URL, spec)
	st := waitTerminal(t, ts.URL, id)
	if st.State != "failed" || !strings.Contains(st.Error, "deadline 50ms") {
		t.Fatalf("clamped job = %+v", st)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Runners: 1})
	slow := submitOK(t, ts.URL, slowSpec("100ms"))
	quick := submitOK(t, ts.URL, testSpec())

	srv.StartDrain()

	// New submissions bounce with 503; readiness flips; liveness stays.
	resp := submit(t, ts.URL, testSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d", resp.StatusCode)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: HTTP %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: HTTP %d", code)
	}

	// The admitted jobs run to completion before the pool exits.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{slow, quick} {
		st := getStatus(t, ts.URL, id)
		if st.State != "done" {
			t.Fatalf("job %s after drain: %+v", id, st)
		}
	}
	// Reports stay readable after the drain.
	if code, _ := getBody(t, ts.URL+"/v1/jobs/"+quick+"/report"); code != http.StatusOK {
		t.Fatalf("report after drain: HTTP %d", code)
	}
	// Metrics exported something for the finished jobs.
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "progconv_programs_total") {
		t.Fatalf("metrics: HTTP %d %.80s", code, body)
	}
}

func TestCacheSharedAcrossJobs(t *testing.T) {
	cache := progconv.NewCache(0)
	_, ts := newTestServer(t, Config{Cache: cache})
	a := submitOK(t, ts.URL, testSpec())
	waitTerminal(t, ts.URL, a)
	b := submitOK(t, ts.URL, testSpec())
	waitTerminal(t, ts.URL, b)
	stats := cache.Stats()
	if stats.PairHits == 0 {
		t.Fatalf("second identical job did not hit the pair cache: %+v", stats)
	}
	_, bodyA := getBody(t, ts.URL+"/v1/jobs/"+a+"/report")
	_, bodyB := getBody(t, ts.URL+"/v1/jobs/"+b+"/report")
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("cache hit changed the report bytes")
	}
}
