// Package serve is the conversion service behind cmd/progconvd: an
// HTTP/JSON facade over the progconv pipeline that accepts conversion
// jobs (schema pair + programs + options, the wire.JobSpec shape),
// runs them on a shared runner pool through the conversion cache, and
// streams each job's structured event log as NDJSON or SSE.
//
// The paper's Conversion Supervisor is an operator-facing facility,
// not a one-shot batch tool; this package gives it the operational
// contract such a facility needs:
//
//   - admission control: a bounded job queue; a full queue rejects the
//     submission with 429 and a Retry-After hint instead of queueing
//     unbounded work;
//   - per-job deadlines clamped to a server maximum, mapped onto the
//     supervisor's timeout/retry/failure-policy options;
//   - observability: /healthz, /readyz, and the Prometheus text
//     exporter at /metrics folding every job's event tally;
//   - graceful drain: StartDrain (wired to SIGTERM in cmd/progconvd)
//     stops admissions with 503 while in-flight and queued jobs run to
//     completion, then the runner pool exits.
//
// Every response body is a versioned wire-v1 document, and a finished
// job's report endpoint serves exactly the bytes the CLI's
// -report-json flag writes for the same inputs at any parallelism.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progconv"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
)

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// running); 0 means 16. A full queue answers 429.
	QueueDepth int
	// Runners is how many jobs convert concurrently; 0 means 2.
	Runners int
	// DefaultDeadline bounds jobs that request no deadline; 0 means
	// unbounded.
	DefaultDeadline time.Duration
	// MaxDeadline clamps the per-job deadline option; 0 means
	// unclamped.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses; 0 means 1s.
	RetryAfter time.Duration
	// DefaultMigrateParallel bounds the data-migration shard workers of
	// jobs that leave migrate_parallel unset; 0 means GOMAXPROCS.
	// Results are byte-identical at any setting.
	DefaultMigrateParallel int
	// Cache, when non-nil, is the shared conversion cache every job
	// runs through, so repeated pairs and programs convert once.
	Cache *progconv.Cache
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 16
	}
	return c.QueueDepth
}

func (c Config) runners() int {
	if c.Runners <= 0 {
		return 2
	}
	return c.Runners
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// Server is the conversion service. Create with New, mount Handler,
// and call StartDrain/Wait (or Drain) to shut down gracefully.
type Server struct {
	cfg   Config
	tally *progconv.Tally
	start time.Time

	// The telemetry plane: histogram instruments and gauges exported
	// at /metrics alongside the tally counters, and summarized on
	// /statusz. inflight counts jobs currently on a runner.
	reg      *telemetry.Registry
	inst     *telemetry.Instruments
	inflight atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for deterministic listings
	nextID   int
	draining bool
	queue    chan *job

	runnersDone chan struct{}
}

// New returns a Server with its runner pool started.
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg,
		tally:       progconv.NewTally(),
		start:       time.Now(),
		reg:         telemetry.NewRegistry(),
		jobs:        make(map[string]*job),
		queue:       make(chan *job, cfg.queueDepth()),
		runnersDone: make(chan struct{}),
	}
	s.inst = telemetry.NewInstruments(s.reg)
	s.reg.Gauge("progconv_queue_depth",
		"Jobs admitted but not yet picked up by a runner.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.Gauge("progconv_inflight_jobs",
		"Jobs currently converting on a runner.",
		func() float64 { return float64(s.inflight.Load()) })
	s.reg.Gauge("progconv_jobs_total",
		"Jobs admitted since the server started.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.jobs)) })
	s.reg.Gauge("progconv_cache_entries",
		"Live conversion-cache entries (pair contexts plus memos).",
		func() float64 {
			if s.cfg.Cache == nil {
				return 0
			}
			return float64(s.cfg.Cache.Stats().Entries())
		})
	var wg sync.WaitGroup
	for i := 0; i < cfg.runners(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(s.runnersDone)
	}()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.Handle("GET /statusz", s.Statusz())
	return mux
}

// MetricsHandler returns the Prometheus scrape handler: the event
// tally's counter families followed by the telemetry registry's
// histograms and gauges. cmd/progconvd mounts it on -debug-addr too.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := progconv.WritePrometheus(w, s.tally, nil); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := s.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Statusz returns the human-readable snapshot handler: build info,
// uptime, queue and pool occupancy, cache counters, and histogram
// summaries.
func (s *Server) Statusz() http.Handler {
	return telemetry.StatuszHandler(s.start,
		telemetry.StatusSection{Title: "server", Write: func(w io.Writer) {
			s.mu.Lock()
			jobs, draining := len(s.jobs), s.draining
			s.mu.Unlock()
			fmt.Fprintf(w, "  jobs        %d admitted, %d queued, %d in flight\n",
				jobs, len(s.queue), s.inflight.Load())
			fmt.Fprintf(w, "  queue cap   %d\n", s.cfg.queueDepth())
			fmt.Fprintf(w, "  runners     %d\n", s.cfg.runners())
			fmt.Fprintf(w, "  draining    %v\n", draining)
		}},
		telemetry.StatusSection{Title: "cache", Write: func(w io.Writer) {
			if s.cfg.Cache == nil {
				fmt.Fprintf(w, "  disabled\n")
				return
			}
			st := s.cfg.Cache.Stats()
			fmt.Fprintf(w, "  entries     %d (%d pairs, %d memos)\n", st.Entries(), st.Pairs, st.Memos)
			fmt.Fprintf(w, "  pair        %d hits / %d misses / %d evictions\n", st.PairHits, st.PairMisses, st.PairEvictions)
			fmt.Fprintf(w, "  analysis    %d hits / %d misses / %d evictions\n", st.AnalysisHits, st.AnalysisMisses, st.AnalysisEvictions)
			fmt.Fprintf(w, "  conversion  %d hits / %d misses / %d evictions\n", st.ConversionHits, st.ConversionMisses, st.ConversionEvictions)
			fmt.Fprintf(w, "  codegen     %d hits / %d misses / %d evictions\n", st.CodegenHits, st.CodegenMisses, st.CodegenEvictions)
		}},
		telemetry.StatusSection{Title: "histograms", Write: s.reg.WriteSummary},
	)
}

// StartDrain stops admissions: new submissions answer 503 while
// in-flight and queued jobs run to completion. Safe to call more than
// once.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	// Submissions check the flag under the same lock before sending, so
	// nothing can race this close.
	close(s.queue)
}

// Wait blocks until every admitted job has finished and the runner
// pool has exited, or ctx ends. Call StartDrain first.
func (s *Server) Wait(ctx context.Context) error {
	select {
	case <-s.runnersDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with jobs still in flight")
	}
}

// Drain is StartDrain followed by Wait.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	return s.Wait(ctx)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func writeError(w http.ResponseWriter, status int, code wire.ErrorCode, msg string) {
	writeJSON(w, status, wire.ErrorDoc{V: wire.Version, Code: code, Error: msg})
}

// retryAfterHeader sets the Retry-After hint rounded up to whole
// seconds — shared by the 429 queue-full and 503 draining paths so
// well-behaved clients pace their retries the same way for both.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int((s.cfg.retryAfter()+time.Second-1)/time.Second)))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec wire.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, "decoding job: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}
	j, err := s.newJob(&spec)
	if err != nil {
		// The schemas or programs do not parse: a client error, found
		// before the job consumes a queue slot.
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}

	// An inbound W3C traceparent continues the caller's trace; anything
	// malformed (or absent) falls back to a trace ID derived from the
	// job content and submission index — deterministic, per the repo's
	// no-wall-clock-IDs contract.
	tid, remote, tpErr := telemetry.ParseTraceparent(r.Header.Get("traceparent"))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		// Mirror the 429 admission path: a drain is usually a rolling
		// restart, so tell the client when to come back.
		s.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, wire.CodeDraining,
			"server is draining; not accepting jobs")
		return
	}
	// Register before enqueueing so a runner can never observe a job the
	// status endpoints do not know; the send is under the same lock that
	// guards draining, so it cannot race StartDrain's close.
	s.nextID++
	j.id = fmt.Sprintf("j-%06d", s.nextID)
	if tpErr != nil {
		tid = telemetry.DeriveTraceID(append(j.traceSeed(), strconv.Itoa(s.nextID))...)
	}
	j.submitted = time.Now()
	j.trace = telemetry.NewTraceBuilder(tid, j.id)
	if tpErr == nil {
		j.trace.SetRemoteParent(remote)
	}
	names := make([]string, len(j.programs))
	for i, p := range j.programs {
		names[i] = p.Name
	}
	j.trace.SetPrograms(names)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.nextID--
		s.mu.Unlock()
		s.retryAfterHeader(w)
		writeError(w, http.StatusTooManyRequests, wire.CodeQueueFull,
			fmt.Sprintf("job queue is full (%d queued); retry later", s.cfg.queueDepth()))
		return
	}
	s.mu.Unlock()

	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("traceparent", telemetry.Traceparent(j.trace.TraceID(), j.trace.Root()))
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleTrace serves the job's span tree as a wire-v1 document. A
// running job yields a consistent partial tree, a finished one the
// full trace; ?omit_timing=1 drops the wall-clock fields, leaving the
// parallelism-independent bytes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("traceparent", telemetry.Traceparent(j.trace.TraceID(), j.trace.Root()))
	omit := r.URL.Query().Get("omit_timing") != ""
	if err := wire.EncodeTrace(w, j.trace.Snapshot(), omit); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "no such job")
	}
	return j
}

// Listing limits: pages default to defaultListLimit entries and are
// clamped to maxListLimit, so the listing is never the unbounded full
// job table however long the daemon has been up.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// ListPage parses the pagination query parameters shared by the
// daemon's and the coordinator's GET /v1/jobs: limit (page size),
// page_token (opaque resume cursor) and state (filter). It reports the
// scan start index, the page size, and the filter.
func ListPage(r *http.Request) (start, limit int, state string, err error) {
	q := r.URL.Query()
	limit = defaultListLimit
	if ls := q.Get("limit"); ls != "" {
		n, perr := strconv.Atoi(ls)
		if perr != nil || n < 1 {
			return 0, 0, "", fmt.Errorf("limit must be a positive integer, got %q", ls)
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	state = q.Get("state")
	switch state {
	case "", "queued", "running", "done", "failed", "canceled":
	default:
		return 0, 0, "", fmt.Errorf("state must be one of queued, running, done, failed or canceled, got %q", state)
	}
	if tok := q.Get("page_token"); tok != "" {
		n, perr := parsePageToken(tok)
		if perr != nil {
			return 0, 0, "", perr
		}
		start = n
	}
	return start, limit, state, nil
}

// Page tokens are an opaque cursor into the submission order; clients
// must not construct or interpret them.
func PageToken(next int) string { return fmt.Sprintf("o%d", next) }

func parsePageToken(tok string) (int, error) {
	n, err := strconv.Atoi(strings.TrimPrefix(tok, "o"))
	if err != nil || !strings.HasPrefix(tok, "o") || n < 0 {
		return 0, fmt.Errorf("invalid page_token %q", tok)
	}
	return n, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	start, limit, state, err := ListPage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeBadSpec, err.Error())
		return
	}
	doc := wire.JobList{V: wire.Version, Jobs: []wire.JobStatus{}}
	s.mu.Lock()
	for i := start; i < len(s.order); i++ {
		if len(doc.Jobs) == limit {
			doc.NextPageToken = PageToken(i)
			break
		}
		st := s.jobs[s.order[i]].status()
		if state != "" && st.State != state {
			continue
		}
		doc.Jobs = append(doc.Jobs, st)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	st := j.snapshot()
	switch st.state {
	case stateQueued, stateRunning:
		writeJSON(w, http.StatusAccepted, j.status())
	case stateDone:
		// The body is exactly what the CLI's -report-json writes for the
		// same inputs; the HTTP status comes from the shared exit table.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st.exit.HTTPStatus())
		w.Write(st.reportJSON)
	default: // failed, canceled
		writeError(w, st.exit.HTTPStatus(), st.errCode, st.errMsg)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	omitTiming := r.URL.Query().Get("omit_timing") != ""
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	from := 0
	for {
		events, changed, closed := j.hub.since(from)
		for _, ev := range events {
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := wire.EncodeEvent(w, ev, omitTiming); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
		}
		from += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
