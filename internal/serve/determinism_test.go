package serve

import (
	"bytes"
	"context"
	"testing"

	"progconv"
	"progconv/internal/dbprog"
	"progconv/internal/netstore"
)

// directRun executes the testSpec workload through the public facade
// exactly as cmd/progconv would — the reference the daemon's wire
// output must match byte for byte.
func directRun(t *testing.T, parallelism int) ([]byte, []progconv.Event) {
	t.Helper()
	spec := testSpec()
	src, err := progconv.ParseNetworkSchema(spec.SourceDDL)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := progconv.ParseNetworkSchema(spec.TargetDDL)
	if err != nil {
		t.Fatal(err)
	}
	var programs []*progconv.Program
	for _, p := range spec.Programs {
		prog, err := progconv.ParseProgram(p.Source)
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, prog)
	}
	init, err := progconv.ParseProgram(spec.Options.VerifyInit)
	if err != nil {
		t.Fatal(err)
	}
	db := netstore.NewDB(src)
	if _, err := dbprog.Run(init, dbprog.Config{Net: db}); err != nil {
		t.Fatal(err)
	}
	ring := progconv.NewRingSink(4096)
	report, err := progconv.Convert(context.Background(), src, dst, nil, programs,
		progconv.WithParallelism(parallelism),
		progconv.WithEventSink(ring),
		progconv.WithVerifyDB(db))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := progconv.EncodeReportJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ring.Events()
}

// serverRun submits the same workload to a fresh daemon and returns
// the served report and event-stream bytes.
func serverRun(t *testing.T, parallelism int) (report, events []byte) {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	spec := testSpec()
	spec.Options.Parallelism = parallelism
	id := submitOK(t, ts.URL, spec)
	if st := waitTerminal(t, ts.URL, id); st.State != "done" {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}
	code, report := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != 200 {
		t.Fatalf("report: HTTP %d", code)
	}
	code, events = getBody(t, ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1")
	if code != 200 {
		t.Fatalf("events: HTTP %d", code)
	}
	return report, events
}

// TestServerReportMatchesCLI is the tentpole invariant: the daemon's
// report endpoint serves exactly the bytes the CLI writes for the same
// inputs, at any parallelism.
func TestServerReportMatchesCLI(t *testing.T) {
	cliReport, _ := directRun(t, 1)
	for _, parallelism := range []int{1, 8} {
		serverReport, _ := serverRun(t, parallelism)
		if !bytes.Equal(cliReport, serverReport) {
			t.Fatalf("parallelism %d: server report diverges from the CLI bytes\nCLI:    %.200s\nserver: %.200s",
				parallelism, cliReport, serverReport)
		}
	}
	// The direct run is itself parallelism-independent.
	cliReport8, _ := directRun(t, 8)
	if !bytes.Equal(cliReport, cliReport8) {
		t.Fatal("direct runs diverge between parallelism 1 and 8")
	}
}

// TestServerMigrateParallelByteIdentical: the report, the event
// stream, and the trace the daemon serves are byte-identical whether
// the data migration runs serial or sharded eight ways — and whether
// the shard count arrives per job or as the server default.
func TestServerMigrateParallelByteIdentical(t *testing.T) {
	run := func(migratePar, serverDefault int) (report, events, trace []byte) {
		t.Helper()
		_, ts := newTestServer(t, Config{DefaultMigrateParallel: serverDefault})
		spec := testSpec()
		spec.Options.MigrateParallel = migratePar
		id := submitOK(t, ts.URL, spec)
		if st := waitTerminal(t, ts.URL, id); st.State != "done" {
			t.Fatalf("job ended %q: %s", st.State, st.Error)
		}
		code, report := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
		if code != 200 {
			t.Fatalf("report: HTTP %d", code)
		}
		code, events = getBody(t, ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1")
		if code != 200 {
			t.Fatalf("events: HTTP %d", code)
		}
		code, trace = getBody(t, ts.URL+"/v1/jobs/"+id+"/trace?omit_timing=1")
		if code != 200 {
			t.Fatalf("trace: HTTP %d", code)
		}
		return report, events, trace
	}

	baseReport, baseEvents, baseTrace := run(1, 0)
	for _, c := range []struct {
		name               string
		migratePar, server int
	}{
		{"job-option-2", 2, 0},
		{"job-option-8", 8, 0},
		{"server-default-8", 0, 8},
		{"job-overrides-default", 8, 1},
	} {
		report, events, trace := run(c.migratePar, c.server)
		if !bytes.Equal(report, baseReport) {
			t.Errorf("%s: report diverges from serial bytes\nserial: %.200s\ngot:    %.200s",
				c.name, baseReport, report)
		}
		if !bytes.Equal(events, baseEvents) {
			t.Errorf("%s: event stream diverges from serial bytes\nserial: %.200s\ngot:    %.200s",
				c.name, baseEvents, events)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("%s: trace diverges from serial bytes\nserial: %.200s\ngot:    %.200s",
				c.name, baseTrace, trace)
		}
	}
}

// TestServerHierMigrateParallelByteIdentical: the hierarchical (DL/I)
// counterpart — per-root sharded reorder migration serves the same
// report and event bytes as the serial path.
func TestServerHierMigrateParallelByteIdentical(t *testing.T) {
	run := func(migratePar int) (report, events []byte) {
		t.Helper()
		_, ts := newTestServer(t, Config{})
		spec := hierSpec(t)
		spec.Options.MigrateParallel = migratePar
		id := submitOK(t, ts.URL, spec)
		if st := waitTerminal(t, ts.URL, id); st.State != "done" {
			t.Fatalf("job ended %q: %s", st.State, st.Error)
		}
		code, report := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
		if code != 200 {
			t.Fatalf("report: HTTP %d", code)
		}
		code, events = getBody(t, ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1")
		if code != 200 {
			t.Fatalf("events: HTTP %d", code)
		}
		return report, events
	}
	baseReport, baseEvents := run(1)
	for _, migratePar := range []int{2, 8} {
		report, events := run(migratePar)
		if !bytes.Equal(report, baseReport) {
			t.Errorf("migrate_parallel %d: hier report diverges from serial bytes", migratePar)
		}
		if !bytes.Equal(events, baseEvents) {
			t.Errorf("migrate_parallel %d: hier event stream diverges from serial bytes", migratePar)
		}
	}
}

// TestServerEventsMatchCLI checks the event stream against the CLI's
// -events JSONL at parallelism 1, where the interleaving itself is
// deterministic (timing fields omitted on both sides).
func TestServerEventsMatchCLI(t *testing.T) {
	_, cliEvents := directRun(t, 1)
	var buf bytes.Buffer
	if err := progconv.EncodeJSONL(&buf, cliEvents, true); err != nil {
		t.Fatal(err)
	}
	_, serverEvents := serverRun(t, 1)
	if !bytes.Equal(buf.Bytes(), serverEvents) {
		t.Fatalf("server event stream diverges from CLI JSONL\nCLI:    %.200s\nserver: %.200s",
			buf.Bytes(), serverEvents)
	}
}
