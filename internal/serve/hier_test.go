package serve

// Hierarchical-model daemon tests: a DL/I job submitted over HTTP must
// produce exactly the bytes a direct in-process run produces, the
// report document must carry the model and migration facts, and the
// wire layer must keep v1 network clients byte-compatible.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"progconv"
	"progconv/internal/corpus"
	"progconv/internal/dbprog"
	"progconv/internal/wire"
)

// hierInit populates the DEPT→EMP source hierarchy with the §2.2 study
// data — the DL/I form of corpus.IMSReorder's seed database.
const hierInit = `
PROGRAM SEED DIALECT DLI.
  ISRT DEPT (D# = 'D2', DNAME = 'SALES', MGR = 'SMITH').
  ISRT DEPT (D# = 'D12', DNAME = 'ACCOUNTING', MGR = 'JONES').
  ISRT EMP (E# = 'E1', ENAME = 'BAKER', AGE = 30, YEAR-OF-SERVICE = 3) UNDER DEPT(D# = 'D2').
  ISRT EMP (E# = 'E2', ENAME = 'CLARK', AGE = 30, YEAR-OF-SERVICE = 11) UNDER DEPT(D# = 'D2').
  ISRT EMP (E# = 'E3', ENAME = 'ADAMS', AGE = 30, YEAR-OF-SERVICE = 3) UNDER DEPT(D# = 'D12').
END PROGRAM.
`

// hierSpec is the corpus.IMSReorder workload as a wire submission.
func hierSpec(t *testing.T) wire.JobSpec {
	t.Helper()
	entry, err := corpus.IMSReorder()
	if err != nil {
		t.Fatal(err)
	}
	spec := wire.JobSpec{
		V:         wire.Version,
		Model:     wire.ModelHierarchical,
		SourceDDL: entry.Source.DDL(),
		TargetDDL: entry.Target.DDL(),
		Options:   wire.JobOptions{Parallelism: 1, VerifyInit: hierInit},
	}
	for _, m := range entry.Members {
		spec.Programs = append(spec.Programs, wire.ProgramSpec{Source: m.Source})
	}
	return spec
}

// directHierRun executes the hierSpec workload through the public
// facade — the reference the daemon's wire output must match byte for
// byte (the hierarchical counterpart of directRun).
func directHierRun(t *testing.T, parallelism int) ([]byte, []progconv.Event) {
	t.Helper()
	spec := hierSpec(t)
	src, err := progconv.ParseHierarchySchema(spec.SourceDDL)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := progconv.ParseHierarchySchema(spec.TargetDDL)
	if err != nil {
		t.Fatal(err)
	}
	var programs []*progconv.Program
	for _, p := range spec.Programs {
		prog, err := progconv.ParseProgram(p.Source)
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, prog)
	}
	init, err := progconv.ParseProgram(spec.Options.VerifyInit)
	if err != nil {
		t.Fatal(err)
	}
	db := progconv.NewHierDatabase(src)
	if _, err := dbprog.Run(init, dbprog.Config{Hier: db}); err != nil {
		t.Fatal(err)
	}
	ring := progconv.NewRingSink(4096)
	report, err := progconv.ConvertHier(context.Background(), src, dst, nil, programs,
		progconv.WithParallelism(parallelism),
		progconv.WithEventSink(ring),
		progconv.WithVerifyHierDB(db))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := progconv.EncodeReportJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ring.Events()
}

// serverHierRun submits the workload to a fresh daemon and returns the
// served report and event-stream bytes plus the job ID.
func serverHierRun(t *testing.T, parallelism int) (report, events []byte, base, id string) {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	spec := hierSpec(t)
	spec.Options.Parallelism = parallelism
	id = submitOK(t, ts.URL, spec)
	if st := waitTerminal(t, ts.URL, id); st.State != "done" {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}
	code, report := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != 200 {
		t.Fatalf("report: HTTP %d: %s", code, report)
	}
	code, events = getBody(t, ts.URL+"/v1/jobs/"+id+"/events?omit_timing=1")
	if code != 200 {
		t.Fatalf("events: HTTP %d", code)
	}
	return report, events, ts.URL, id
}

// TestHierServerReportMatchesDirect is the tentpole acceptance check:
// a hierarchical job through the daemon serves exactly the bytes a
// direct in-process supervisor run produces, at any parallelism.
func TestHierServerReportMatchesDirect(t *testing.T) {
	direct, _ := directHierRun(t, 1)
	for _, parallelism := range []int{1, 8} {
		served, _, _, _ := serverHierRun(t, parallelism)
		if !bytes.Equal(direct, served) {
			t.Fatalf("parallelism %d: server report diverges from the direct bytes\ndirect: %.300s\nserver: %.300s",
				parallelism, direct, served)
		}
	}
	direct8, _ := directHierRun(t, 8)
	if !bytes.Equal(direct, direct8) {
		t.Fatal("direct hierarchical runs diverge between parallelism 1 and 8")
	}
}

// TestHierServerEventsMatchDirect checks the hierarchical event stream
// against the direct run's JSONL at parallelism 1.
func TestHierServerEventsMatchDirect(t *testing.T) {
	_, directEvents := directHierRun(t, 1)
	var buf bytes.Buffer
	if err := progconv.EncodeJSONL(&buf, directEvents, true); err != nil {
		t.Fatal(err)
	}
	_, served, _, _ := serverHierRun(t, 1)
	if !bytes.Equal(buf.Bytes(), served) {
		t.Fatalf("server event stream diverges from direct JSONL\ndirect: %.300s\nserver: %.300s",
			buf.Bytes(), served)
	}
}

// TestHierReportDocument pins the model-specific surface of the served
// report: the model field, per-program dispositions, the target DDL in
// hierarchy form, and a trace with every program span.
func TestHierReportDocument(t *testing.T) {
	report, _, base, id := serverHierRun(t, 1)
	var doc wire.Report
	if err := json.Unmarshal(report, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, report)
	}
	if doc.Model != wire.ModelHierarchical {
		t.Errorf("report model = %q, want %q", doc.Model, wire.ModelHierarchical)
	}
	entry, err := corpus.IMSReorder()
	if err != nil {
		t.Fatal(err)
	}
	if doc.TargetDDL != entry.Target.DDL() {
		t.Errorf("report target_ddl does not round-trip the reordered hierarchy:\n%s", doc.TargetDDL)
	}
	want := map[string]string{"DEPTMGR": "auto", "EMPBYID": "auto", "TENURED": "manual"}
	for _, o := range doc.Outcomes {
		if d := want[o.Name]; d != o.Disposition {
			t.Errorf("%s disposition = %q, want %q", o.Name, o.Disposition, d)
		}
		if o.Audit.Model != wire.ModelHierarchical {
			t.Errorf("%s audit model = %q, want %q", o.Name, o.Audit.Model, wire.ModelHierarchical)
		}
	}
	if len(doc.Outcomes) != len(want) {
		t.Errorf("outcomes = %d, want %d", len(doc.Outcomes), len(want))
	}

	// The span tree covers the job, each program, and the pipeline
	// stages — including a verify span for the verified conversions.
	trace := getTrace(t, base, id)
	kinds := map[string]int{}
	progs := map[string]bool{}
	stages := map[string]int{}
	for _, sp := range trace.Spans {
		kinds[sp.Kind]++
		if sp.Kind == "program" {
			progs[sp.Name] = true
		}
		if sp.Kind == "stage" {
			stages[sp.Stage]++
		}
	}
	if kinds["job"] != 1 {
		t.Errorf("job spans = %d, want 1", kinds["job"])
	}
	for name := range want {
		if !progs[name] {
			t.Errorf("no program span for %s; got %v", name, progs)
		}
	}
	for _, stage := range []string{"analyze", "convert", "optimize", "generate", "verify"} {
		if stages[stage] == 0 {
			t.Errorf("no %s stage span in hierarchical trace; got %v", stage, stages)
		}
	}
}

// TestHierUnknownModelRejected: an unknown model is a 400 bad_spec at
// submission, not a queued failure.
func TestHierUnknownModelRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := hierSpec(t)
	spec.Model = "inverted-list"
	resp := submit(t, ts.URL, spec)
	defer resp.Body.Close()
	var ed wire.ErrorDoc
	if err := json.NewDecoder(resp.Body).Decode(&ed); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || ed.Code != wire.CodeBadSpec {
		t.Fatalf("unknown model: HTTP %d code %q, want 400 %q", resp.StatusCode, ed.Code, wire.CodeBadSpec)
	}
}

// TestNetworkReportOmitsModel pins v1 compatibility from the other
// side: a network job's report document carries no model field at all,
// so historical goldens and clients that predate the field see
// unchanged bytes.
func TestNetworkReportOmitsModel(t *testing.T) {
	report, _ := serverRun(t, 1)
	if bytes.Contains(report, []byte(`"model"`)) {
		t.Errorf("network report leaks a model field:\n%.300s", report)
	}
}
