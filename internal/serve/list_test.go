package serve

// Tests for the API-hardening surface: cursor pagination and state
// filters on GET /v1/jobs, the machine-readable error codes every
// non-2xx body carries, and the Retry-After hint on 503 drain
// responses (mirroring the 429 queue-full path).

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"progconv/internal/wire"
)

func getList(t *testing.T, url string) wire.JobList {
	t.Helper()
	code, body := getBody(t, url)
	if code != http.StatusOK {
		t.Fatalf("list %s: HTTP %d %s", url, code, body)
	}
	var doc wire.JobList
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("list %s: %v", url, err)
	}
	if doc.V != wire.Version {
		t.Fatalf("list version = %d", doc.V)
	}
	return doc
}

func errorDoc(t *testing.T, body []byte) wire.ErrorDoc {
	t.Helper()
	var doc wire.ErrorDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("error body %s: %v", body, err)
	}
	return doc
}

func TestListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 8, Runners: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, submitOK(t, ts.URL, testSpec()))
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
	}

	// Page through with limit=2: 2+2+1 in submission order, then no
	// token on the final page.
	var got []string
	url := ts.URL + "/v1/jobs?limit=2"
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination never terminated")
		}
		doc := getList(t, url)
		for _, st := range doc.Jobs {
			got = append(got, st.ID)
		}
		if doc.NextPageToken == "" {
			break
		}
		if len(doc.Jobs) != 2 {
			t.Fatalf("non-final page had %d jobs", len(doc.Jobs))
		}
		url = ts.URL + "/v1/jobs?limit=2&page_token=" + doc.NextPageToken
	}
	if len(got) != len(ids) {
		t.Fatalf("paged listing returned %d jobs, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("page order[%d] = %s, want %s (submission order)", i, got[i], ids[i])
		}
	}

	// The state filter partitions the listing.
	if doc := getList(t, ts.URL+"/v1/jobs?state=done"); len(doc.Jobs) != 5 {
		t.Fatalf("state=done listed %d jobs, want 5", len(doc.Jobs))
	}
	if doc := getList(t, ts.URL+"/v1/jobs?state=failed"); len(doc.Jobs) != 0 {
		t.Fatalf("state=failed listed %d jobs, want 0", len(doc.Jobs))
	}

	// Malformed query parameters are usage errors with a code.
	for _, q := range []string{"?limit=0", "?limit=x", "?state=bogus", "?page_token=@@"} {
		code, body := getBody(t, ts.URL+"/v1/jobs"+q)
		if code != http.StatusBadRequest {
			t.Fatalf("list %s: HTTP %d", q, code)
		}
		if doc := errorDoc(t, body); doc.Code != wire.CodeBadSpec {
			t.Fatalf("list %s: code = %q, want %q", q, doc.Code, wire.CodeBadSpec)
		}
	}
}

func TestErrorCodes(t *testing.T) {
	srv, ts := newTestServer(t, Config{QueueDepth: 1, Runners: 1, RetryAfter: 2 * time.Second})

	// 400 bad_spec on a malformed submission.
	resp := submit(t, ts.URL, wire.JobSpec{})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: HTTP %d", resp.StatusCode)
	}
	if doc := errorDoc(t, body); doc.Code != wire.CodeBadSpec {
		t.Fatalf("bad spec code = %q", doc.Code)
	}

	// 404 not_found on an unknown job.
	code, b := getBody(t, ts.URL+"/v1/jobs/j-999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", code)
	}
	if doc := errorDoc(t, b); doc.Code != wire.CodeNotFound {
		t.Fatalf("unknown job code = %q", doc.Code)
	}

	// Fill the queue; the 429 carries queue_full.
	sawQueueFull := false
	for i := 0; i < 8 && !sawQueueFull; i++ {
		resp := submit(t, ts.URL, slowSpec("150ms"))
		b := readAll(t, resp)
		if resp.StatusCode == http.StatusTooManyRequests {
			sawQueueFull = true
			if doc := errorDoc(t, b); doc.Code != wire.CodeQueueFull {
				t.Fatalf("queue-full code = %q", doc.Code)
			}
		}
	}
	if !sawQueueFull {
		t.Fatal("never saw a 429 from a depth-1 queue")
	}

	// Draining: 503 with the draining code AND the same Retry-After
	// hint the 429 path sends — a drain is usually a rolling restart,
	// so the client should know when to come back.
	srv.StartDrain()
	resp = submit(t, ts.URL, testSpec())
	b = readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain submit: HTTP %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("drain Retry-After = %q, want \"2\"", ra)
	}
	if doc := errorDoc(t, b); doc.Code != wire.CodeDraining {
		t.Fatalf("drain code = %q", doc.Code)
	}
}

func TestTerminalStatusCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 4, Runners: 1})

	// A deadline kill is classified distinctly from a cancel.
	spec := slowSpec("30s")
	spec.Options.Deadline = "50ms"
	dead := submitOK(t, ts.URL, spec)
	if st := waitTerminal(t, ts.URL, dead); st.State != "failed" {
		t.Fatalf("deadline job = %+v", st)
	}
	code, b := getBody(t, ts.URL+"/v1/jobs/"+dead+"/report")
	if code != http.StatusInternalServerError {
		t.Fatalf("deadline report: HTTP %d", code)
	}
	if doc := errorDoc(t, b); doc.Code != wire.CodeDeadline {
		t.Fatalf("deadline report code = %q, want %q", doc.Code, wire.CodeDeadline)
	}

	// A canceled job's report carries the canceled code.
	canceled := submitOK(t, ts.URL, slowSpec("400ms"))
	resp, err := http.Post(ts.URL+"/v1/jobs/"+canceled+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := waitTerminal(t, ts.URL, canceled); st.State != "canceled" {
		t.Fatalf("canceled job = %+v", st)
	}
	code, b = getBody(t, ts.URL+"/v1/jobs/"+canceled+"/report")
	if code != http.StatusInternalServerError {
		t.Fatalf("canceled report: HTTP %d", code)
	}
	if doc := errorDoc(t, b); doc.Code != wire.CodeCanceled {
		t.Fatalf("canceled report code = %q, want %q", doc.Code, wire.CodeCanceled)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b := make([]byte, 0, 512)
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		b = append(b, buf[:n]...)
		if err != nil {
			return b
		}
	}
}
