package serve

// Tests for the telemetry plane: traceparent propagation, the trace
// endpoint, the extended /metrics exposition, /statusz, and mid-run
// scrapes racing a live job.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"progconv"
	"progconv/internal/telemetry"
	"progconv/internal/wire"
)

// submitWithHeader posts a spec with extra request headers and returns
// the response.
func submitWithHeader(t *testing.T, base string, spec wire.JobSpec, headers map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getTrace(t *testing.T, base, id string) wire.TraceDoc {
	t.Helper()
	code, body := getBody(t, base+"/v1/jobs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace endpoint: HTTP %d: %s", code, body)
	}
	var doc wire.TraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	return doc
}

// TestTraceparentPropagation is the ISSUE's propagation acceptance
// criterion: a submission carrying a W3C traceparent yields a job whose
// trace continues the caller's trace ID, records the caller's span as
// the remote parent, and has at least one span per pipeline stage.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	inbound := "00-" + callerTrace + "-" + callerSpan + "-01"

	resp := submitWithHeader(t, ts.URL, testSpec(), map[string]string{"traceparent": inbound})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// The response traceparent continues the caller's trace and names
	// the job's root span.
	echo := resp.Header.Get("traceparent")
	echoT, echoS, err := telemetry.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echo, err)
	}
	if echoT.String() != callerTrace {
		t.Errorf("response trace ID = %s, want %s", echoT, callerTrace)
	}
	var st wire.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != callerTrace {
		t.Errorf("status trace_id = %q, want %q", st.TraceID, callerTrace)
	}

	done := waitTerminal(t, ts.URL, st.ID)
	if done.State != "done" {
		t.Fatalf("job state = %q, error %q", done.State, done.Error)
	}
	if done.TraceID != callerTrace {
		t.Errorf("terminal status trace_id = %q, want %q", done.TraceID, callerTrace)
	}

	doc := getTrace(t, ts.URL, st.ID)
	if doc.V != wire.Version {
		t.Errorf("trace doc v = %d, want %d", doc.V, wire.Version)
	}
	if doc.TraceID != callerTrace {
		t.Errorf("trace doc trace_id = %q, want %q", doc.TraceID, callerTrace)
	}
	if doc.RemoteParentID != callerSpan {
		t.Errorf("remote_parent_id = %q, want %q", doc.RemoteParentID, callerSpan)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	root := doc.Spans[0]
	if root.Kind != "job" || root.ParentID != callerSpan {
		t.Errorf("root = %+v, want a job span parented to the caller", root)
	}
	if root.ID != echoS.String() {
		t.Errorf("root span %s, but response traceparent named %s", root.ID, echoS)
	}
	// At least one stage attempt per pipeline stage, and a queue-wait
	// phase.
	byStage := map[string]int{}
	phases := 0
	for _, sp := range doc.Spans {
		if sp.Kind == "stage" {
			byStage[sp.Stage]++
		}
		if sp.Kind == "phase" && sp.Name == "queue-wait" {
			phases++
		}
	}
	for _, stage := range []string{"analyze", "convert", "optimize", "generate", "verify"} {
		if byStage[stage] == 0 {
			t.Errorf("no %s stage span in trace; got %v", stage, byStage)
		}
	}
	if phases != 1 {
		t.Errorf("queue-wait phases = %d, want 1", phases)
	}
	// Every program of the spec has a program span.
	progs := map[string]bool{}
	for _, sp := range doc.Spans {
		if sp.Kind == "program" {
			progs[sp.Name] = true
		}
	}
	for _, name := range []string{"LIST-OLD", "COUNT-SALES", "ROSTER"} {
		if !progs[name] {
			t.Errorf("no program span for %s; got %v", name, progs)
		}
	}
}

// TestTraceWithoutTraceparent: no inbound header still yields a trace,
// with a deterministic content-derived trace ID and no remote parent.
func TestTraceWithoutTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submitOK(t, ts.URL, testSpec())
	waitTerminal(t, ts.URL, id)

	doc := getTrace(t, ts.URL, id)
	if doc.TraceID == "" || doc.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("trace_id = %q, want a non-zero derived ID", doc.TraceID)
	}
	if doc.RemoteParentID != "" {
		t.Errorf("remote_parent_id = %q, want empty without an inbound header", doc.RemoteParentID)
	}
	// A malformed header is ignored, not an error.
	resp := submitWithHeader(t, ts.URL, testSpec(), map[string]string{"traceparent": "garbage"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with malformed traceparent: HTTP %d", resp.StatusCode)
	}
	var st wire.JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	if st.TraceID == doc.TraceID {
		t.Error("same spec resubmitted got the same trace ID; submission index must differentiate")
	}
	if _, _, err := telemetry.ParseTraceparent(resp.Header.Get("traceparent")); err != nil {
		t.Errorf("response traceparent invalid: %v", err)
	}

	// Unknown job: 404.
	code, _ := getBody(t, ts.URL+"/v1/jobs/j-999999/trace")
	if code != http.StatusNotFound {
		t.Errorf("unknown job trace = HTTP %d, want 404", code)
	}
}

// TestTraceOmitTimingDeterministic: the ?omit_timing=1 rendering is
// byte-identical across parallelism 1 and 8 — the trace-side analogue
// of the events endpoint's determinism guarantee.
func TestTraceOmitTimingDeterministic(t *testing.T) {
	run := func(parallelism int) []byte {
		_, ts := newTestServer(t, Config{})
		spec := testSpec()
		spec.Options.Parallelism = parallelism
		// Pin the trace ID so the two runs derive identical span IDs.
		resp := submitWithHeader(t, ts.URL, spec, map[string]string{
			"traceparent": "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		})
		defer resp.Body.Close()
		var st wire.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, ts.URL, st.ID)
		code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace?omit_timing=1")
		if code != http.StatusOK {
			t.Fatalf("trace: HTTP %d", code)
		}
		return body
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("omit_timing trace differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if strings.Contains(string(serial), "start_ns") || strings.Contains(string(serial), "dur_ns") {
		t.Error("omit_timing output still carries wall-clock fields")
	}
}

// TestMetricsAndStatusz: the daemon's /metrics serves the four
// histogram families plus gauges alongside the tally counters, and
// /statusz renders the human snapshot.
func TestMetricsAndStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: newTestCache()})
	id := submitOK(t, ts.URL, testSpec())
	waitTerminal(t, ts.URL, id)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	out := string(body)
	for _, want := range []string{
		// Tally counter families.
		"progconv_programs_total",
		// Data-plane counters export even before/without traffic.
		"progconv_index_probes_total",
		// The four histogram families with deterministic buckets.
		`progconv_queue_wait_seconds_bucket{le="1e-06"}`,
		`progconv_job_duration_seconds_bucket{le="+Inf"} 1`,
		`progconv_stage_latency_seconds_bucket{stage="analyze",le="1e-06"}`,
		`progconv_dataplane_probe_count_bucket{op="probe",le="1"}`,
		// Gauges.
		"progconv_queue_depth",
		"progconv_inflight_jobs",
		"progconv_jobs_total 1",
		"progconv_cache_entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if n := strings.Count(out, " histogram\n"); n < 4 {
		t.Errorf("/metrics histogram families = %d, want >= 4\n%s", n, out)
	}

	code, body = getBody(t, ts.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz: HTTP %d", code)
	}
	for _, want := range []string{"== server ==", "== cache ==", "== histograms ==", "admitted", "progconv_job_duration_seconds"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/statusz missing %q:\n%s", want, body)
		}
	}
}

// TestScrapeMidRun hammers /metrics and the trace endpoint while a
// delayed job is converting — the serve-layer half of satellite 3.
func TestScrapeMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	spec := testSpec()
	spec.Options.Parallelism = 2
	spec.Options.Inject = "delay=30ms@*/analyze"
	id := submitOK(t, ts.URL, spec)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"/metrics", "/v1/jobs/" + id + "/trace", "/v1/jobs/" + id + "/trace?omit_timing=1", "/statusz"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				code, body := getBody(t, ts.URL+paths[(i+n)%len(paths)])
				if code != http.StatusOK {
					t.Errorf("mid-run scrape: HTTP %d: %s", code, body)
					return
				}
			}
		}(i)
	}
	st := waitTerminal(t, ts.URL, id)
	close(stop)
	wg.Wait()
	if st.State != "done" {
		t.Fatalf("job state = %q, error %q", st.State, st.Error)
	}
	// After the run the trace is complete and internally consistent.
	doc := getTrace(t, ts.URL, id)
	ids := map[string]bool{}
	for _, sp := range doc.Spans {
		ids[sp.ID] = true
	}
	for i, sp := range doc.Spans {
		if i == 0 {
			continue
		}
		if sp.ParentID != "" && sp.ParentID != doc.RemoteParentID && !ids[sp.ParentID] {
			t.Errorf("span %s has dangling parent %s", sp.ID, sp.ParentID)
		}
	}
}

// newTestCache builds a small conversion cache for gauge coverage.
func newTestCache() *progconv.Cache { return progconv.NewCache(4) }
