// Package relstore is the relational engine: an in-memory store of typed
// tuples with primary-key uniqueness (the one constraint §3.1 says the
// relational model maintains explicitly, "by means of key declarations")
// and optional foreign-key (existence) enforcement.
//
// Foreign-key enforcement is off by default, matching the paper's 1979
// observation that existence constraints "can be and are maintained by
// the programs that access the database". Turning it on moves those
// constraints out of program logic and into the model, which is exactly
// the centralization §3.1 argues for; the EXP-F3.1 experiment exercises
// both configurations.
package relstore

import (
	"fmt"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// Option configures a DB.
type Option func(*DB)

// EnforceForeignKeys makes Insert, Update and Delete maintain the
// schema's referential constraints centrally.
func EnforceForeignKeys() Option {
	return func(db *DB) { db.enforceFK = true }
}

// DB is an in-memory relational database instance.
type DB struct {
	schema    *schema.Relational
	tables    map[string]*table
	enforceFK bool
}

type table struct {
	rel   *schema.Relation
	rows  []*value.Record
	byKey map[string]*value.Record
}

// NewDB creates an empty database for the schema. The schema must be
// valid; NewDB panics otherwise, since an invalid schema is a programming
// error in the caller.
func NewDB(s *schema.Relational, opts ...Option) *DB {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("relstore: invalid schema: %v", err))
	}
	db := &DB{schema: s, tables: make(map[string]*table, len(s.Relations))}
	for _, r := range s.Relations {
		db.tables[r.Name] = &table{rel: r, byKey: make(map[string]*value.Record)}
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Schema returns the database's schema.
func (db *DB) Schema() *schema.Relational { return db.schema }

// EnforcesForeignKeys reports whether referential constraints are
// maintained centrally.
func (db *DB) EnforcesForeignKeys() bool { return db.enforceFK }

func (db *DB) table(rel string) (*table, error) {
	t, ok := db.tables[rel]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown relation %s", rel)
	}
	return t, nil
}

// checkShape verifies the tuple matches the relation: every declared
// column present with a value of the declared kind (or null for non-key
// columns), and no extra fields.
func checkShape(rel *schema.Relation, rec *value.Record) error {
	if rec.Len() != len(rel.Columns) {
		return fmt.Errorf("relstore: %s: tuple has %d fields, relation has %d columns",
			rel.Name, rec.Len(), len(rel.Columns))
	}
	for _, c := range rel.Columns {
		v, ok := rec.Get(c.Name)
		if !ok {
			return fmt.Errorf("relstore: %s: missing column %s", rel.Name, c.Name)
		}
		if v.IsNull() {
			if rel.IsKey(c.Name) {
				// §3.1: "In particular, CNO and S can not have null values."
				return fmt.Errorf("relstore: %s: key column %s cannot be null", rel.Name, c.Name)
			}
			continue
		}
		if v.Kind() != c.Kind {
			return fmt.Errorf("relstore: %s.%s: value kind %v, column kind %v",
				rel.Name, c.Name, v.Kind(), c.Kind)
		}
	}
	return nil
}

func (db *DB) checkForeign(rel *schema.Relation, rec *value.Record) error {
	for _, fk := range rel.ForeignKeys {
		vals := make([]value.Value, len(fk.Fields))
		anyNull := false
		for i, f := range fk.Fields {
			vals[i] = rec.MustGet(f)
			anyNull = anyNull || vals[i].IsNull()
		}
		if anyNull {
			continue // a null reference asserts nothing
		}
		ref := db.tables[fk.RefRel]
		probe := value.NewRecord()
		for i, f := range fk.RefFields {
			probe.Set(f, vals[i])
		}
		if _, ok := ref.byKey[probe.KeyOf(fk.RefFields)]; !ok {
			return fmt.Errorf("relstore: %s: foreign key (%v) has no matching %s tuple",
				rel.Name, vals, fk.RefRel)
		}
	}
	return nil
}

// referencedBy reports an error if any tuple elsewhere references rec
// through a foreign key of the schema.
func (db *DB) referencedBy(rel *schema.Relation, rec *value.Record) error {
	for _, other := range db.schema.Relations {
		for _, fk := range other.ForeignKeys {
			if fk.RefRel != rel.Name {
				continue
			}
			for _, row := range db.tables[other.Name].rows {
				match := true
				for i, f := range fk.Fields {
					fv := row.MustGet(f)
					if fv.IsNull() || !fv.Equal(rec.MustGet(fk.RefFields[i])) {
						match = false
						break
					}
				}
				if match {
					return fmt.Errorf("relstore: %s tuple is referenced by %s", rel.Name, other.Name)
				}
			}
		}
	}
	return nil
}

// Insert adds a tuple. The record is cloned; the caller keeps ownership
// of its argument.
func (db *DB) Insert(rel string, rec *value.Record) error {
	t, err := db.table(rel)
	if err != nil {
		return err
	}
	if err := checkShape(t.rel, rec); err != nil {
		return err
	}
	key := rec.KeyOf(t.rel.Key)
	if _, dup := t.byKey[key]; dup {
		return fmt.Errorf("relstore: %s: duplicate key %v", rel, projectKey(t.rel, rec))
	}
	if db.enforceFK {
		if err := db.checkForeign(t.rel, rec); err != nil {
			return err
		}
	}
	row := rec.Clone()
	t.rows = append(t.rows, row)
	t.byKey[key] = row
	return nil
}

func projectKey(rel *schema.Relation, rec *value.Record) []string {
	out := make([]string, len(rel.Key))
	for i, k := range rel.Key {
		out[i] = rec.MustGet(k).String()
	}
	return out
}

// FindByKey returns a copy of the tuple with the given key values (in
// schema key order), or nil if absent.
func (db *DB) FindByKey(rel string, keyVals ...value.Value) (*value.Record, error) {
	t, err := db.table(rel)
	if err != nil {
		return nil, err
	}
	if len(keyVals) != len(t.rel.Key) {
		return nil, fmt.Errorf("relstore: %s: key has %d columns, got %d values",
			rel, len(t.rel.Key), len(keyVals))
	}
	probe := value.NewRecord()
	for i, k := range t.rel.Key {
		probe.Set(k, keyVals[i])
	}
	row, ok := t.byKey[probe.KeyOf(t.rel.Key)]
	if !ok {
		return nil, nil
	}
	return row.Clone(), nil
}

// Scan calls fn for each tuple of the relation in insertion order. The
// record passed to fn is the stored row; fn must not mutate it. Returning
// false stops the scan.
func (db *DB) Scan(rel string, fn func(*value.Record) bool) error {
	t, err := db.table(rel)
	if err != nil {
		return err
	}
	for _, row := range t.rows {
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// All returns copies of every tuple in the relation, in insertion order.
func (db *DB) All(rel string) ([]*value.Record, error) {
	t, err := db.table(rel)
	if err != nil {
		return nil, err
	}
	out := make([]*value.Record, len(t.rows))
	for i, row := range t.rows {
		out[i] = row.Clone()
	}
	return out, nil
}

// Count returns the number of tuples in the relation.
func (db *DB) Count(rel string) (int, error) {
	t, err := db.table(rel)
	if err != nil {
		return 0, err
	}
	return len(t.rows), nil
}

// DeleteWhere removes every tuple satisfying pred and returns how many
// were removed. With foreign keys enforced, a referenced tuple makes the
// whole operation fail without changes (the engine refuses to create the
// §3.1 inconsistency that ERASE-with-cascade can).
func (db *DB) DeleteWhere(rel string, pred func(*value.Record) bool) (int, error) {
	t, err := db.table(rel)
	if err != nil {
		return 0, err
	}
	var doomed []*value.Record
	for _, row := range t.rows {
		if pred(row) {
			doomed = append(doomed, row)
		}
	}
	if db.enforceFK {
		for _, row := range doomed {
			if err := db.referencedBy(t.rel, row); err != nil {
				return 0, err
			}
		}
	}
	if len(doomed) == 0 {
		return 0, nil
	}
	kept := t.rows[:0]
	doomedSet := make(map[*value.Record]bool, len(doomed))
	for _, d := range doomed {
		doomedSet[d] = true
	}
	for _, row := range t.rows {
		if doomedSet[row] {
			delete(t.byKey, row.KeyOf(t.rel.Key))
		} else {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	return len(doomed), nil
}

// Update applies set to every tuple satisfying pred. set receives a copy
// and returns the replacement; key changes are re-indexed and checked for
// uniqueness. Returns how many tuples changed. The operation is
// all-or-nothing: any constraint violation leaves the table untouched.
func (db *DB) Update(rel string, pred func(*value.Record) bool, set func(*value.Record)) (int, error) {
	t, err := db.table(rel)
	if err != nil {
		return 0, err
	}
	type change struct {
		idx int
		rec *value.Record
	}
	var changes []change
	newKeys := make(map[string]bool)
	for i, row := range t.rows {
		if !pred(row) {
			continue
		}
		rec := row.Clone()
		set(rec)
		if err := checkShape(t.rel, rec); err != nil {
			return 0, err
		}
		oldKey, newKey := row.KeyOf(t.rel.Key), rec.KeyOf(t.rel.Key)
		if newKey != oldKey {
			if _, exists := t.byKey[newKey]; exists {
				return 0, fmt.Errorf("relstore: %s: update would duplicate key %v", rel, projectKey(t.rel, rec))
			}
		}
		if newKeys[newKey] {
			return 0, fmt.Errorf("relstore: %s: update would duplicate key %v", rel, projectKey(t.rel, rec))
		}
		newKeys[newKey] = true
		if db.enforceFK {
			if err := db.checkForeign(t.rel, rec); err != nil {
				return 0, err
			}
		}
		changes = append(changes, change{i, rec})
	}
	for _, c := range changes {
		old := t.rows[c.idx]
		delete(t.byKey, old.KeyOf(t.rel.Key))
		t.rows[c.idx] = c.rec
		t.byKey[c.rec.KeyOf(t.rel.Key)] = c.rec
	}
	return len(changes), nil
}

// Clone returns an independent deep copy of the database, used by the
// restructurer and the bridge baseline.
func (db *DB) Clone() *DB {
	c := NewDB(db.schema.Clone())
	c.enforceFK = db.enforceFK
	for name, t := range db.tables {
		ct := c.tables[name]
		for _, row := range t.rows {
			r := row.Clone()
			ct.rows = append(ct.rows, r)
			ct.byKey[r.KeyOf(t.rel.Key)] = r
		}
	}
	return c
}
