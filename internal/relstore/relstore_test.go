package relstore

import (
	"strings"
	"testing"
	"testing/quick"

	"progconv/internal/schema"
	"progconv/internal/value"
)

func schoolDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	return NewDB(schema.SchoolRelational(), opts...)
}

func mustInsert(t *testing.T, db *DB, rel string, rec *value.Record) {
	t.Helper()
	if err := db.Insert(rel, rec); err != nil {
		t.Fatalf("Insert(%s, %v): %v", rel, rec, err)
	}
}

func seedSchool(t *testing.T, db *DB) {
	t.Helper()
	mustInsert(t, db, "COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	mustInsert(t, db, "COURSE", value.FromPairs("CNO", "CS202", "CNAME", "Databases"))
	mustInsert(t, db, "SEMESTER", value.FromPairs("S", "F78", "YEAR", 1978))
	mustInsert(t, db, "COURSE-OFFERING",
		value.FromPairs("CNO", "CS101", "S", "F78", "INSTRUCTOR", "Taylor"))
}

func TestInsertAndFindByKey(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	got, err := db.FindByKey("COURSE", value.Str("CS101"))
	if err != nil || got == nil {
		t.Fatalf("FindByKey: %v, %v", got, err)
	}
	if got.MustGet("CNAME").AsString() != "Intro" {
		t.Error("wrong tuple")
	}
	miss, err := db.FindByKey("COURSE", value.Str("NOPE"))
	if err != nil || miss != nil {
		t.Error("missing key should be nil, nil")
	}
	comp, err := db.FindByKey("COURSE-OFFERING", value.Str("CS101"), value.Str("F78"))
	if err != nil || comp == nil {
		t.Error("composite key lookup")
	}
}

func TestFindByKeyIsACopy(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	got, _ := db.FindByKey("COURSE", value.Str("CS101"))
	got.Set("CNAME", value.Str("MUTATED"))
	again, _ := db.FindByKey("COURSE", value.Str("CS101"))
	if again.MustGet("CNAME").AsString() != "Intro" {
		t.Error("FindByKey must return a copy")
	}
}

func TestInsertIsACopy(t *testing.T) {
	db := schoolDB(t)
	rec := value.FromPairs("CNO", "CS101", "CNAME", "Intro")
	mustInsert(t, db, "COURSE", rec)
	rec.Set("CNAME", value.Str("MUTATED"))
	got, _ := db.FindByKey("COURSE", value.Str("CS101"))
	if got.MustGet("CNAME").AsString() != "Intro" {
		t.Error("Insert must clone its argument")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	err := db.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Again"))
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Errorf("err = %v", err)
	}
}

func TestShapeChecks(t *testing.T) {
	db := schoolDB(t)
	cases := []struct {
		name string
		rec  *value.Record
		want string
	}{
		{"missing column", value.FromPairs("CNO", "X"), "has 1 fields"},
		{"extra column", value.FromPairs("CNO", "X", "CNAME", "Y", "EXTRA", 1), "has 3 fields"},
		{"wrong field name", value.FromPairs("CNO", "X", "WRONG", "Y"), "missing column"},
		{"wrong kind", value.FromPairs("CNO", "X", "CNAME", 7), "value kind"},
		{"null key", value.FromPairs("CNO", nil, "CNAME", "Y"), "cannot be null"},
	}
	for _, tc := range cases {
		err := db.Insert("COURSE", tc.rec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// Null in a non-key column is fine (the paper's nullable INSTRUCTOR).
	mustInsert(t, db, "COURSE", value.FromPairs("CNO", "C", "CNAME", nil))
}

func TestUnknownRelation(t *testing.T) {
	db := schoolDB(t)
	if err := db.Insert("NOPE", value.NewRecord()); err == nil {
		t.Error("Insert unknown relation")
	}
	if _, err := db.FindByKey("NOPE"); err == nil {
		t.Error("FindByKey unknown relation")
	}
	if err := db.Scan("NOPE", func(*value.Record) bool { return true }); err == nil {
		t.Error("Scan unknown relation")
	}
	if _, err := db.All("NOPE"); err == nil {
		t.Error("All unknown relation")
	}
	if _, err := db.Count("NOPE"); err == nil {
		t.Error("Count unknown relation")
	}
	if _, err := db.DeleteWhere("NOPE", nil); err == nil {
		t.Error("DeleteWhere unknown relation")
	}
	if _, err := db.Update("NOPE", nil, nil); err == nil {
		t.Error("Update unknown relation")
	}
}

func TestFindByKeyArity(t *testing.T) {
	db := schoolDB(t)
	if _, err := db.FindByKey("COURSE-OFFERING", value.Str("CS101")); err == nil {
		t.Error("composite key needs both values")
	}
}

func TestForeignKeysOffByDefault(t *testing.T) {
	db := schoolDB(t)
	// 1979 default: the model does not maintain existence constraints.
	err := db.Insert("COURSE-OFFERING",
		value.FromPairs("CNO", "GHOST", "S", "NOWHERE", "INSTRUCTOR", "X"))
	if err != nil {
		t.Errorf("dangling insert should succeed with FKs off: %v", err)
	}
}

func TestForeignKeysEnforced(t *testing.T) {
	db := schoolDB(t, EnforceForeignKeys())
	if !db.EnforcesForeignKeys() {
		t.Fatal("option not applied")
	}
	seedSchool(t, db)
	err := db.Insert("COURSE-OFFERING",
		value.FromPairs("CNO", "GHOST", "S", "F78", "INSTRUCTOR", "X"))
	if err == nil || !strings.Contains(err.Error(), "no matching COURSE") {
		t.Errorf("dangling CNO: %v", err)
	}
	// Deleting a referenced course is refused.
	_, err = db.DeleteWhere("COURSE", func(r *value.Record) bool {
		return r.MustGet("CNO").AsString() == "CS101"
	})
	if err == nil || !strings.Contains(err.Error(), "referenced by") {
		t.Errorf("delete referenced: %v", err)
	}
	// Deleting an unreferenced course works.
	n, err := db.DeleteWhere("COURSE", func(r *value.Record) bool {
		return r.MustGet("CNO").AsString() == "CS202"
	})
	if err != nil || n != 1 {
		t.Errorf("delete unreferenced: %d, %v", n, err)
	}
}

func TestNullForeignKeyAssertsNothing(t *testing.T) {
	rs := schema.SchoolRelational()
	// Make INSTRUCTOR a nullable FK-ish column: instead use CNO nullable is
	// impossible (key); so test with a custom schema.
	s := &schema.Relational{Name: "T", Relations: []*schema.Relation{
		{Name: "P", Columns: []schema.Column{{Name: "ID", Kind: value.Int}}, Key: []string{"ID"}},
		{Name: "C", Columns: []schema.Column{
			{Name: "ID", Kind: value.Int}, {Name: "PID", Kind: value.Int}},
			Key: []string{"ID"},
			ForeignKeys: []schema.ForeignKey{
				{Fields: []string{"PID"}, RefRel: "P", RefFields: []string{"ID"}}}},
	}}
	db := NewDB(s, EnforceForeignKeys())
	if err := db.Insert("C", value.FromPairs("ID", 1, "PID", nil)); err != nil {
		t.Errorf("null FK should be allowed: %v", err)
	}
	_ = rs
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	var seen []string
	db.Scan("COURSE", func(r *value.Record) bool {
		seen = append(seen, r.MustGet("CNO").AsString())
		return true
	})
	if len(seen) != 2 || seen[0] != "CS101" || seen[1] != "CS202" {
		t.Errorf("scan order = %v", seen)
	}
	count := 0
	db.Scan("COURSE", func(*value.Record) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestAllReturnsCopies(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	rows, _ := db.All("COURSE")
	rows[0].Set("CNAME", value.Str("MUTATED"))
	again, _ := db.FindByKey("COURSE", value.Str("CS101"))
	if again.MustGet("CNAME").AsString() != "Intro" {
		t.Error("All must return copies")
	}
}

func TestDeleteWhere(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	n, err := db.DeleteWhere("COURSE", func(r *value.Record) bool {
		return strings.HasPrefix(r.MustGet("CNO").AsString(), "CS")
	})
	if err != nil || n != 2 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	if c, _ := db.Count("COURSE"); c != 0 {
		t.Error("not all deleted")
	}
	// Key index updated: reinsert works.
	mustInsert(t, db, "COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Back"))
	n, err = db.DeleteWhere("COURSE", func(*value.Record) bool { return false })
	if err != nil || n != 0 {
		t.Error("no-match delete")
	}
}

func TestUpdate(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	n, err := db.Update("COURSE",
		func(r *value.Record) bool { return r.MustGet("CNO").AsString() == "CS101" },
		func(r *value.Record) { r.Set("CNAME", value.Str("Renamed")) })
	if err != nil || n != 1 {
		t.Fatalf("Update: %d, %v", n, err)
	}
	got, _ := db.FindByKey("COURSE", value.Str("CS101"))
	if got.MustGet("CNAME").AsString() != "Renamed" {
		t.Error("update lost")
	}
}

func TestUpdateKeyChangeReindexes(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	n, err := db.Update("COURSE",
		func(r *value.Record) bool { return r.MustGet("CNO").AsString() == "CS101" },
		func(r *value.Record) { r.Set("CNO", value.Str("CS999")) })
	if err != nil || n != 1 {
		t.Fatalf("Update: %d, %v", n, err)
	}
	if got, _ := db.FindByKey("COURSE", value.Str("CS101")); got != nil {
		t.Error("old key still present")
	}
	if got, _ := db.FindByKey("COURSE", value.Str("CS999")); got == nil {
		t.Error("new key absent")
	}
}

func TestUpdateDuplicateKeyRejectedAtomically(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	_, err := db.Update("COURSE",
		func(r *value.Record) bool { return r.MustGet("CNO").AsString() == "CS101" },
		func(r *value.Record) { r.Set("CNO", value.Str("CS202")) })
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("err = %v", err)
	}
	// Nothing changed.
	if got, _ := db.FindByKey("COURSE", value.Str("CS101")); got == nil {
		t.Error("atomicity violated")
	}
}

func TestUpdateCollidingNewKeysRejected(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	// Both courses mapped to the same new key: second must trip on first.
	_, err := db.Update("COURSE",
		func(*value.Record) bool { return true },
		func(r *value.Record) { r.Set("CNO", value.Str("SAME")) })
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Errorf("err = %v", err)
	}
}

func TestUpdateShapeViolation(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	_, err := db.Update("COURSE",
		func(*value.Record) bool { return true },
		func(r *value.Record) { r.Set("CNAME", value.Of(3)) })
	if err == nil || !strings.Contains(err.Error(), "value kind") {
		t.Errorf("err = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	db := schoolDB(t)
	seedSchool(t, db)
	c := db.Clone()
	c.DeleteWhere("COURSE-OFFERING", func(*value.Record) bool { return true })
	c.Update("COURSE",
		func(*value.Record) bool { return true },
		func(r *value.Record) { r.Set("CNAME", value.Str("X")) })
	if n, _ := db.Count("COURSE-OFFERING"); n != 1 {
		t.Error("clone delete leaked")
	}
	got, _ := db.FindByKey("COURSE", value.Str("CS101"))
	if got.MustGet("CNAME").AsString() != "Intro" {
		t.Error("clone update leaked")
	}
	// Clone preserves the option.
	fk := NewDB(schema.SchoolRelational(), EnforceForeignKeys()).Clone()
	if !fk.EnforcesForeignKeys() {
		t.Error("Clone lost enforceFK")
	}
}

func TestNewDBPanicsOnInvalidSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDB(&schema.Relational{Name: "BAD", Relations: []*schema.Relation{{Name: "R"}}})
}

// Property: after inserting n distinct keys, Count reports n and each key
// is findable.
func TestInsertFindCountProperty(t *testing.T) {
	f := func(keys []int64) bool {
		s := &schema.Relational{Name: "T", Relations: []*schema.Relation{
			{Name: "R", Columns: []schema.Column{{Name: "K", Kind: value.Int}}, Key: []string{"K"}},
		}}
		db := NewDB(s)
		uniq := map[int64]bool{}
		for _, k := range keys {
			if uniq[k] {
				continue
			}
			uniq[k] = true
			if err := db.Insert("R", value.FromPairs("K", k)); err != nil {
				return false
			}
		}
		n, _ := db.Count("R")
		if n != len(uniq) {
			return false
		}
		for k := range uniq {
			got, err := db.FindByKey("R", value.Of(k))
			if err != nil || got == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: DeleteWhere(p) removes exactly the tuples satisfying p.
func TestDeleteWherePartitionProperty(t *testing.T) {
	f := func(keys []int64, threshold int64) bool {
		s := &schema.Relational{Name: "T", Relations: []*schema.Relation{
			{Name: "R", Columns: []schema.Column{{Name: "K", Kind: value.Int}}, Key: []string{"K"}},
		}}
		db := NewDB(s)
		uniq := map[int64]bool{}
		for _, k := range keys {
			if !uniq[k] {
				uniq[k] = true
				db.Insert("R", value.FromPairs("K", k))
			}
		}
		pred := func(r *value.Record) bool { return r.MustGet("K").AsInt() < threshold }
		wantGone := 0
		for k := range uniq {
			if k < threshold {
				wantGone++
			}
		}
		n, err := db.DeleteWhere("R", pred)
		if err != nil || n != wantGone {
			return false
		}
		left, _ := db.Count("R")
		return left == len(uniq)-wantGone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
