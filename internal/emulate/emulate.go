// Package emulate is the DML emulation strategy of §2.1.2 (the Honeywell
// "Task 609" package): it "preserves the behavior of the application
// program by intercepting the individual DML calls at execution time and
// invoking equivalent DML calls to the restructured database", using a
// mapping description derived from the transformation plan.
//
// The prototype limitations the paper lists are reproduced deliberately:
// retrieval only (updates return ErrRetrievalOnly), and per-call overhead
// from consulting "run time descriptions and tables for both the original
// and restructured database organizations" — every intercepted call walks
// the mapping tables, and a sweep of a split set maintains an emulated
// cursor over the upper/lower chain.
package emulate

import (
	"errors"
	"fmt"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

// ErrRetrievalOnly reports an update through the emulator: "1) retrieval
// only — no update allowed" (§2.1.2).
var ErrRetrievalOnly = errors.New("emulate: retrieval only (Task 609 limitation)")

// Session presents the SOURCE schema's DML against a RESTRUCTURED
// database. It wraps a target run-unit and translates each call.
type Session struct {
	src       *schema.Network
	target    *netstore.Session
	rewriters []*xform.Rewriter
	// sweep state per split source set: the emulated currency.
	sweeps map[string]*splitSweep
}

type splitSweep struct {
	split   xform.PathSplit
	started bool
}

// NewSession opens an emulating run-unit: src is the schema the program
// was written against, target the restructured database, plan the
// restructuring.
func NewSession(src *schema.Network, target *netstore.DB, plan *xform.Plan) (*Session, error) {
	rewriters, err := plan.Rewriters(src)
	if err != nil {
		return nil, err
	}
	return &Session{
		src:       src,
		target:    netstore.NewSession(target),
		rewriters: rewriters,
		sweeps:    map[string]*splitSweep{},
	}, nil
}

// Status returns the target run-unit's DB-STATUS (the emulator forwards
// outcome codes unchanged; status-code fidelity is part of mimicking the
// old interface).
func (s *Session) Status() netstore.Status { return s.target.Status() }

// mapping helpers: consulted on every call, which is the emulation
// overhead the paper describes.

func (s *Session) mapRecord(name string) string {
	for _, r := range s.rewriters {
		name = r.MapRecord(name)
	}
	return name
}

func (s *Session) mapMatch(srcType string, match *value.Record) (*value.Record, error) {
	if match == nil {
		return nil, nil
	}
	out := value.NewRecord()
	for _, n := range match.Names() {
		rec, field := srcType, n
		for _, r := range s.rewriters {
			if r.IsDropped(rec, field) {
				return nil, fmt.Errorf("emulate: field %s.%s no longer exists", srcType, n)
			}
			rec, field = r.MapField(rec, field)
		}
		out.Set(field, match.MustGet(n))
	}
	return out, nil
}

func (s *Session) splitFor(set string) (xform.PathSplit, bool) {
	for _, r := range s.rewriters {
		if sp, ok := r.Splits[set]; ok {
			return sp, true
		}
	}
	return xform.PathSplit{}, false
}

func (s *Session) mapSet(name string) (string, bool) {
	for _, r := range s.rewriters {
		n, ok := r.MapSet(name)
		if !ok {
			return name, false
		}
		name = n
	}
	return name, true
}

// unmapRecordNames renames a retrieved record's fields back to the source
// spelling, the reverse mapping of §2.1.2.
func (s *Session) unmapRecord(srcType string, rec *value.Record) *value.Record {
	if rec == nil {
		return nil
	}
	srcRec := s.src.Record(srcType)
	if srcRec == nil {
		return rec
	}
	out := value.NewRecord()
	for _, f := range srcRec.Fields {
		nr, nf := srcType, f.Name
		for _, r := range s.rewriters {
			nr, nf = r.MapField(nr, nf)
		}
		out.Set(f.Name, rec.MustGet(nf))
	}
	return out
}

// FindAny emulates FIND ANY <srcType> [matching match].
func (s *Session) FindAny(srcType string, match *value.Record) (netstore.Status, error) {
	m, err := s.mapMatch(srcType, match)
	if err != nil {
		return s.target.Status(), err
	}
	return s.target.FindAny(s.mapRecord(srcType), m)
}

// Get emulates GET <srcType>, reversing field renames so the program sees
// the record shape it always saw.
func (s *Session) Get(srcType string) (*value.Record, netstore.Status, error) {
	rec, st, err := s.target.Get(s.mapRecord(srcType))
	if err != nil || st != netstore.OK {
		return nil, st, err
	}
	return s.unmapRecord(srcType, rec), st, nil
}

// FindInSet emulates FIND FIRST/NEXT <member> WITHIN <srcSet>. For an
// unsplit set this is one translated call; for a split set the emulator
// steps an upper/lower cursor — the "increased ... access path length"
// of §2.1.2.
func (s *Session) FindInSet(srcSet string, dir netstore.Direction, match *value.Record) (netstore.Status, error) {
	sp, isSplit := s.splitFor(srcSet)
	if !isSplit {
		set, ok := s.mapSet(srcSet)
		if !ok {
			return s.target.Status(), fmt.Errorf("emulate: set %s not representable", srcSet)
		}
		srcMember := s.src.Set(srcSet).Member
		m, err := s.mapMatch(srcMember, match)
		if err != nil {
			return s.target.Status(), err
		}
		return s.target.FindInSet(set, dir, m)
	}

	if dir != netstore.First && dir != netstore.Next {
		return s.target.Status(), fmt.Errorf("emulate: only FIRST and NEXT are emulated over split sets")
	}
	m, err := s.mapMatch(sp.Member, match)
	if err != nil {
		return s.target.Status(), err
	}
	sweep := s.sweeps[srcSet]
	if sweep == nil || dir == netstore.First {
		sweep = &splitSweep{split: sp}
		s.sweeps[srcSet] = sweep
	}

	if !sweep.started || dir == netstore.First {
		// Enter the first upper occurrence.
		st, err := s.target.FindInSet(sp.Upper, netstore.First, nil)
		if err != nil {
			return st, err
		}
		if st != netstore.OK {
			return netstore.EndOfSet, nil
		}
		sweep.started = true
		st, err = s.target.FindInSet(sp.Lower, netstore.First, m)
		if err != nil {
			return st, err
		}
		if st == netstore.OK {
			return netstore.OK, nil
		}
		return s.advanceUpper(sweep, m)
	}

	// NEXT: continue in the current lower occurrence, then advance.
	st, err := s.target.FindInSet(sp.Lower, netstore.Next, m)
	if err != nil {
		return st, err
	}
	if st == netstore.OK {
		return netstore.OK, nil
	}
	return s.advanceUpper(sweep, m)
}

// advanceUpper moves to the next intermediate occurrence and into its
// first matching member; repositioning on the intermediate restores the
// lower set's currency after the member navigation consumed it.
func (s *Session) advanceUpper(sweep *splitSweep, match *value.Record) (netstore.Status, error) {
	sp := sweep.split
	for {
		// The lower sweep left currency on a member; climb back to its
		// intermediate before stepping the upper set.
		if st, err := s.target.FindOwner(sp.Lower); err != nil {
			return st, err
		}
		st, err := s.target.FindInSet(sp.Upper, netstore.Next, nil)
		if err != nil {
			return st, err
		}
		if st != netstore.OK {
			return netstore.EndOfSet, nil
		}
		st, err = s.target.FindInSet(sp.Lower, netstore.First, match)
		if err != nil {
			return st, err
		}
		if st == netstore.OK {
			return netstore.OK, nil
		}
	}
}

// FindOwner emulates FIND OWNER WITHIN <srcSet> (two climbs for a split).
func (s *Session) FindOwner(srcSet string) (netstore.Status, error) {
	if sp, ok := s.splitFor(srcSet); ok {
		if st, err := s.target.FindOwner(sp.Lower); err != nil || st != netstore.OK {
			return st, err
		}
		return s.target.FindOwner(sp.Upper)
	}
	set, ok := s.mapSet(srcSet)
	if !ok {
		return s.target.Status(), fmt.Errorf("emulate: set %s not representable", srcSet)
	}
	return s.target.FindOwner(set)
}

// Store, Modify and Erase reproduce the prototype's restriction.

// Store is not emulated (retrieval only).
func (s *Session) Store(string, *value.Record) (netstore.RecordID, netstore.Status, error) {
	return 0, s.target.Status(), ErrRetrievalOnly
}

// Modify is not emulated (retrieval only).
func (s *Session) Modify(string, *value.Record) (netstore.Status, error) {
	return s.target.Status(), ErrRetrievalOnly
}

// Erase is not emulated (retrieval only).
func (s *Session) Erase(string) (netstore.Status, error) {
	return s.target.Status(), ErrRetrievalOnly
}
