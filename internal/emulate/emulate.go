// Package emulate is the DML emulation strategy of §2.1.2 (the Honeywell
// "Task 609" package): it "preserves the behavior of the application
// program by intercepting the individual DML calls at execution time and
// invoking equivalent DML calls to the restructured database", using a
// mapping description derived from the transformation plan.
//
// The prototype limitations the paper lists are reproduced deliberately:
// retrieval only (updates return ErrRetrievalOnly), and per-call overhead
// from consulting "run time descriptions and tables for both the original
// and restructured database organizations" — every intercepted call walks
// the mapping tables, and a sweep of a split set maintains an emulated
// cursor over the upper/lower chain.
package emulate

import (
	"errors"
	"fmt"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

// ErrRetrievalOnly reports an update through the emulator: "1) retrieval
// only — no update allowed" (§2.1.2).
var ErrRetrievalOnly = errors.New("emulate: retrieval only (Task 609 limitation)")

// Session presents the SOURCE schema's DML against a RESTRUCTURED
// database. It wraps a target run-unit and translates each call.
type Session struct {
	src       *schema.Network
	target    *netstore.Session
	rewriters []*xform.Rewriter
	// Precomposed mapping tables: the rewriter chain collapsed into O(1)
	// lookups for every name the source schema can produce. Names outside
	// the schema fall back to walking the rewriters, preserving the
	// original per-call semantics exactly.
	recMap   map[string]string
	fieldMap map[[2]string][2]string
	dropped  map[[2]string]bool
	setMap   map[string]setMapping
	splits   map[string]xform.PathSplit
	// matchBuf is the reusable translated-match record; netstore reads a
	// match only for the duration of the call, so one buffer per session
	// suffices.
	matchBuf *value.Record
	// sweep state per split source set: the emulated currency.
	sweeps map[string]*splitSweep
}

// setMapping is a precomposed MapSet outcome: the final target set name,
// or ok=false when some step cannot represent the set.
type setMapping struct {
	name string
	ok   bool
}

type splitSweep struct {
	split   xform.PathSplit
	started bool
}

// NewSession opens an emulating run-unit: src is the schema the program
// was written against, target the restructured database, plan the
// restructuring.
func NewSession(src *schema.Network, target *netstore.DB, plan *xform.Plan) (*Session, error) {
	rewriters, err := plan.Rewriters(src)
	if err != nil {
		return nil, err
	}
	s := &Session{
		src:       src,
		target:    netstore.NewSession(target),
		rewriters: rewriters,
		recMap:    map[string]string{},
		fieldMap:  map[[2]string][2]string{},
		dropped:   map[[2]string]bool{},
		setMap:    map[string]setMapping{},
		splits:    map[string]xform.PathSplit{},
		sweeps:    map[string]*splitSweep{},
	}
	s.precompose()
	return s, nil
}

// precompose walks the rewriter chain once per source-schema name and
// caches the outcome, so intercepted calls pay a map lookup instead of
// re-consulting every rewriter ("run time descriptions and tables" are
// still consulted — just once, at session open).
func (s *Session) precompose() {
	for _, rt := range s.src.Records {
		name := rt.Name
		for _, r := range s.rewriters {
			name = r.MapRecord(name)
		}
		s.recMap[rt.Name] = name
		for _, f := range rt.Fields {
			rec, field := rt.Name, f.Name
			drop := false
			for _, r := range s.rewriters {
				if r.IsDropped(rec, field) {
					drop = true
					break
				}
				rec, field = r.MapField(rec, field)
			}
			key := [2]string{rt.Name, f.Name}
			if drop {
				s.dropped[key] = true
			} else {
				s.fieldMap[key] = [2]string{rec, field}
			}
		}
	}
	for _, st := range s.src.Sets {
		name, ok := st.Name, true
		for _, r := range s.rewriters {
			n, o := r.MapSet(name)
			if !o {
				ok = false
				break
			}
			name = n
		}
		s.setMap[st.Name] = setMapping{name: name, ok: ok}
	}
	// Splits are keyed by the set name as the program spells it; the
	// first rewriter that records a split for that spelling wins, matching
	// the per-call walk order.
	for _, r := range s.rewriters {
		for set, sp := range r.Splits {
			if _, exists := s.splits[set]; !exists {
				s.splits[set] = sp
			}
		}
	}
}

// Status returns the target run-unit's DB-STATUS (the emulator forwards
// outcome codes unchanged; status-code fidelity is part of mimicking the
// old interface).
func (s *Session) Status() netstore.Status { return s.target.Status() }

// mapping helpers: consulted on every call, which is the emulation
// overhead the paper describes.

func (s *Session) mapRecord(name string) string {
	if mapped, ok := s.recMap[name]; ok {
		return mapped
	}
	for _, r := range s.rewriters {
		name = r.MapRecord(name)
	}
	return name
}

// mapFieldSlow is the fallback walk for (record, field) pairs outside the
// source schema — the pre-table per-call path, verbatim.
func (s *Session) mapFieldSlow(srcType, name string) ([2]string, error) {
	rec, field := srcType, name
	for _, r := range s.rewriters {
		if r.IsDropped(rec, field) {
			return [2]string{}, fmt.Errorf("emulate: field %s.%s no longer exists", srcType, name)
		}
		rec, field = r.MapField(rec, field)
	}
	return [2]string{rec, field}, nil
}

func (s *Session) mapMatch(srcType string, match *value.Record) (*value.Record, error) {
	if match == nil {
		return nil, nil
	}
	if s.matchBuf == nil {
		s.matchBuf = value.NewRecord()
	}
	out := s.matchBuf
	out.Reset()
	for _, n := range match.Names() {
		key := [2]string{srcType, n}
		if s.dropped[key] {
			return nil, fmt.Errorf("emulate: field %s.%s no longer exists", srcType, n)
		}
		mapped, ok := s.fieldMap[key]
		if !ok {
			var err error
			if mapped, err = s.mapFieldSlow(srcType, n); err != nil {
				return nil, err
			}
		}
		out.Set(mapped[1], match.MustGet(n))
	}
	return out, nil
}

func (s *Session) splitFor(set string) (xform.PathSplit, bool) {
	sp, ok := s.splits[set]
	return sp, ok
}

func (s *Session) mapSet(name string) (string, bool) {
	if m, ok := s.setMap[name]; ok {
		return m.name, m.ok
	}
	for _, r := range s.rewriters {
		n, ok := r.MapSet(name)
		if !ok {
			return name, false
		}
		name = n
	}
	return name, true
}

// unmapRecordNames renames a retrieved record's fields back to the source
// spelling, the reverse mapping of §2.1.2.
func (s *Session) unmapRecord(srcType string, rec *value.Record) *value.Record {
	if rec == nil {
		return nil
	}
	srcRec := s.src.Record(srcType)
	if srcRec == nil {
		return rec
	}
	out := value.NewRecord()
	for _, f := range srcRec.Fields {
		mapped, ok := s.fieldMap[[2]string{srcType, f.Name}]
		if !ok {
			nr, nf := srcType, f.Name
			for _, r := range s.rewriters {
				nr, nf = r.MapField(nr, nf)
			}
			mapped = [2]string{nr, nf}
		}
		out.Set(f.Name, rec.MustGet(mapped[1]))
	}
	return out
}

// FindAny emulates FIND ANY <srcType> [matching match].
func (s *Session) FindAny(srcType string, match *value.Record) (netstore.Status, error) {
	m, err := s.mapMatch(srcType, match)
	if err != nil {
		return s.target.Status(), err
	}
	return s.target.FindAny(s.mapRecord(srcType), m)
}

// Get emulates GET <srcType>, reversing field renames so the program sees
// the record shape it always saw.
func (s *Session) Get(srcType string) (*value.Record, netstore.Status, error) {
	rec, st, err := s.target.Get(s.mapRecord(srcType))
	if err != nil || st != netstore.OK {
		return nil, st, err
	}
	return s.unmapRecord(srcType, rec), st, nil
}

// FindInSet emulates FIND FIRST/NEXT <member> WITHIN <srcSet>. For an
// unsplit set this is one translated call; for a split set the emulator
// steps an upper/lower cursor — the "increased ... access path length"
// of §2.1.2.
func (s *Session) FindInSet(srcSet string, dir netstore.Direction, match *value.Record) (netstore.Status, error) {
	sp, isSplit := s.splitFor(srcSet)
	if !isSplit {
		set, ok := s.mapSet(srcSet)
		if !ok {
			return s.target.Status(), fmt.Errorf("emulate: set %s not representable", srcSet)
		}
		srcMember := s.src.Set(srcSet).Member
		m, err := s.mapMatch(srcMember, match)
		if err != nil {
			return s.target.Status(), err
		}
		return s.target.FindInSet(set, dir, m)
	}

	if dir != netstore.First && dir != netstore.Next {
		return s.target.Status(), fmt.Errorf("emulate: only FIRST and NEXT are emulated over split sets")
	}
	m, err := s.mapMatch(sp.Member, match)
	if err != nil {
		return s.target.Status(), err
	}
	sweep := s.sweeps[srcSet]
	if sweep == nil || dir == netstore.First {
		sweep = &splitSweep{split: sp}
		s.sweeps[srcSet] = sweep
	}

	if !sweep.started || dir == netstore.First {
		// Enter the first upper occurrence.
		st, err := s.target.FindInSet(sp.Upper, netstore.First, nil)
		if err != nil {
			return st, err
		}
		if st != netstore.OK {
			return netstore.EndOfSet, nil
		}
		sweep.started = true
		st, err = s.target.FindInSet(sp.Lower, netstore.First, m)
		if err != nil {
			return st, err
		}
		if st == netstore.OK {
			return netstore.OK, nil
		}
		return s.advanceUpper(sweep, m)
	}

	// NEXT: continue in the current lower occurrence, then advance.
	st, err := s.target.FindInSet(sp.Lower, netstore.Next, m)
	if err != nil {
		return st, err
	}
	if st == netstore.OK {
		return netstore.OK, nil
	}
	return s.advanceUpper(sweep, m)
}

// advanceUpper moves to the next intermediate occurrence and into its
// first matching member; repositioning on the intermediate restores the
// lower set's currency after the member navigation consumed it.
func (s *Session) advanceUpper(sweep *splitSweep, match *value.Record) (netstore.Status, error) {
	sp := sweep.split
	for {
		// The lower sweep left currency on a member; climb back to its
		// intermediate before stepping the upper set.
		if st, err := s.target.FindOwner(sp.Lower); err != nil {
			return st, err
		}
		st, err := s.target.FindInSet(sp.Upper, netstore.Next, nil)
		if err != nil {
			return st, err
		}
		if st != netstore.OK {
			return netstore.EndOfSet, nil
		}
		st, err = s.target.FindInSet(sp.Lower, netstore.First, match)
		if err != nil {
			return st, err
		}
		if st == netstore.OK {
			return netstore.OK, nil
		}
	}
}

// FindOwner emulates FIND OWNER WITHIN <srcSet> (two climbs for a split).
func (s *Session) FindOwner(srcSet string) (netstore.Status, error) {
	if sp, ok := s.splitFor(srcSet); ok {
		if st, err := s.target.FindOwner(sp.Lower); err != nil || st != netstore.OK {
			return st, err
		}
		return s.target.FindOwner(sp.Upper)
	}
	set, ok := s.mapSet(srcSet)
	if !ok {
		return s.target.Status(), fmt.Errorf("emulate: set %s not representable", srcSet)
	}
	return s.target.FindOwner(set)
}

// Store, Modify and Erase reproduce the prototype's restriction.

// Store is not emulated (retrieval only).
func (s *Session) Store(string, *value.Record) (netstore.RecordID, netstore.Status, error) {
	return 0, s.target.Status(), ErrRetrievalOnly
}

// Modify is not emulated (retrieval only).
func (s *Session) Modify(string, *value.Record) (netstore.Status, error) {
	return s.target.Status(), ErrRetrievalOnly
}

// Erase is not emulated (retrieval only).
func (s *Session) Erase(string) (netstore.Status, error) {
	return s.target.Status(), ErrRetrievalOnly
}
