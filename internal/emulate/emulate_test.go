package emulate

import (
	"strings"
	"testing"

	"progconv/internal/netstore"
	"progconv/internal/schema"
	"progconv/internal/value"
	"progconv/internal/xform"
)

func figurePlan() *xform.Plan {
	return &xform.Plan{Steps: []xform.Transformation{
		xform.IntroduceIntermediate{
			Set: "DIV-EMP", Inter: "DEPT", GroupField: "DEPT-NAME",
			Upper: "DIV-DEPT", Lower: "DEPT-EMP",
		},
	}}
}

func v1DB(t *testing.T) *netstore.DB {
	t.Helper()
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	for _, d := range []struct{ n, l string }{{"MACHINERY", "DETROIT"}, {"TEXTILES", "ATLANTA"}} {
		s.Store("DIV", value.FromPairs("DIV-NAME", d.n, "DIV-LOC", d.l))
	}
	for _, e := range []struct {
		div, name, dept string
		age             int
	}{
		{"MACHINERY", "ADAMS", "SALES", 45},
		{"MACHINERY", "BAKER", "SALES", 28},
		{"MACHINERY", "CLARK", "WELDING", 33},
		{"TEXTILES", "DAVIS", "SALES", 51},
	} {
		s.FindAny("DIV", value.FromPairs("DIV-NAME", e.div))
		s.Store("EMP", value.FromPairs("EMP-NAME", e.name, "DEPT-NAME", e.dept, "AGE", e.age))
	}
	return db
}

func migrated(t *testing.T) *netstore.DB {
	t.Helper()
	out, err := figurePlan().MigrateData(v1DB(t))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sweepNames runs the classic source-schema sweep through a session-like
// interface, collecting EMP-NAMEs.
func sweepEmulated(t *testing.T, s *Session, match *value.Record) []string {
	t.Helper()
	var names []string
	st, err := s.FindInSet("DIV-EMP", netstore.First, match)
	for err == nil && st == netstore.OK {
		rec, gst, gerr := s.Get("EMP")
		if gerr != nil || gst != netstore.OK {
			t.Fatalf("get: %v %v", gst, gerr)
		}
		names = append(names, rec.MustGet("EMP-NAME").AsString())
		st, err = s.FindInSet("DIV-EMP", netstore.Next, match)
	}
	if err != nil {
		t.Fatal(err)
	}
	if st != netstore.EndOfSet {
		t.Fatalf("final status %v", st)
	}
	return names
}

// TestEmulatedSweepSameRecords: the emulated source sweep over the
// restructured database returns the same records a native sweep returned
// on the source database (grouped order: the emulator presents the new
// physical order, which the §2.1.2 strategy cannot hide without its own
// sort — we compare sets).
func TestEmulatedSweepSameRecords(t *testing.T) {
	src := v1DB(t)
	native := netstore.NewSession(src)
	native.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	var want []string
	st, _ := native.FindInSet("DIV-EMP", netstore.First, nil)
	for st == netstore.OK {
		rec, _, _ := native.Get("EMP")
		want = append(want, rec.MustGet("EMP-NAME").AsString())
		st, _ = native.FindInSet("DIV-EMP", netstore.Next, nil)
	}

	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := em.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY")); err != nil || st != netstore.OK {
		t.Fatalf("%v %v", st, err)
	}
	got := sweepEmulated(t, em, nil)
	if len(got) != len(want) {
		t.Fatalf("emulated %v, native %v", got, want)
	}
	set := map[string]bool{}
	for _, n := range want {
		set[n] = true
	}
	for _, n := range got {
		if !set[n] {
			t.Errorf("unexpected record %s", n)
		}
	}
}

func TestEmulatedSweepWithMatch(t *testing.T) {
	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	em.FindAny("DIV", value.FromPairs("DIV-NAME", "MACHINERY"))
	// Match on the lifted field still works: the member presents it
	// virtually in the restructured database.
	got := sweepEmulated(t, em, value.FromPairs("DEPT-NAME", "SALES"))
	if strings.Join(got, ",") != "ADAMS,BAKER" {
		t.Errorf("matched sweep = %v", got)
	}
}

func TestEmulatedGetPresentsSourceShape(t *testing.T) {
	plan := &xform.Plan{Steps: []xform.Transformation{
		xform.RenameRecord{Old: "EMP", New: "WORKER"},
		xform.RenameField{Record: "WORKER", Old: "AGE", New: "YEARS"},
	}}
	target, err := plan.MigrateData(v1DB(t))
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewSession(schema.CompanyV1(), target, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := em.FindAny("EMP", value.FromPairs("EMP-NAME", "CLARK")); err != nil || st != netstore.OK {
		t.Fatalf("%v %v", st, err)
	}
	rec, st, err := em.Get("EMP")
	if err != nil || st != netstore.OK {
		t.Fatal(err)
	}
	// The program sees its old field names.
	if rec.MustGet("AGE").AsInt() != 33 || rec.Has("YEARS") {
		t.Errorf("reverse mapping failed: %v", rec)
	}
}

func TestEmulatedFindOwnerAcrossSplit(t *testing.T) {
	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	em.FindAny("EMP", value.FromPairs("EMP-NAME", "DAVIS"))
	if st, err := em.FindOwner("DIV-EMP"); err != nil || st != netstore.OK {
		t.Fatalf("%v %v", st, err)
	}
	rec, st, err := em.Get("DIV")
	if err != nil || st != netstore.OK || rec.MustGet("DIV-NAME").AsString() != "TEXTILES" {
		t.Errorf("owner = %v (%v %v)", rec, st, err)
	}
}

func TestEmulationIsRetrievalOnly(t *testing.T) {
	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := em.Store("EMP", value.NewRecord()); err != ErrRetrievalOnly {
		t.Error("store should be refused")
	}
	if _, err := em.Modify("EMP", value.NewRecord()); err != ErrRetrievalOnly {
		t.Error("modify should be refused")
	}
	if _, err := em.Erase("EMP"); err != ErrRetrievalOnly {
		t.Error("erase should be refused")
	}
}

func TestEmulateUnsplitSetPassThrough(t *testing.T) {
	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	st, err := em.FindInSet("ALL-DIV", netstore.First, nil)
	for err == nil && st == netstore.OK {
		rec, _, _ := em.Get("DIV")
		names = append(names, rec.MustGet("DIV-NAME").AsString())
		st, err = em.FindInSet("ALL-DIV", netstore.Next, nil)
	}
	if strings.Join(names, ",") != "MACHINERY,TEXTILES" {
		t.Errorf("system sweep = %v", names)
	}
}

func TestEmulateErrors(t *testing.T) {
	em, err := NewSession(schema.CompanyV1(), migrated(t), figurePlan())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.FindInSet("DIV-EMP", netstore.Prior, nil); err == nil {
		t.Error("PRIOR over a split is not emulated")
	}
	// Dropped fields surface.
	plan := &xform.Plan{Steps: []xform.Transformation{xform.DropField{Record: "EMP", Field: "AGE"}}}
	target, _ := plan.MigrateData(v1DB(t))
	em2, err := NewSession(schema.CompanyV1(), target, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em2.FindAny("EMP", value.FromPairs("AGE", 33)); err == nil {
		t.Error("match on dropped field should fail")
	}
	// Bad plan.
	bad := &xform.Plan{Steps: []xform.Transformation{xform.RenameRecord{Old: "NOPE", New: "X"}}}
	if _, err := NewSession(schema.CompanyV1(), migrated(t), bad); err == nil {
		t.Error("bad plan")
	}
}
