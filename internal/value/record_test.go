package value

import (
	"testing"
	"testing/quick"
)

func TestRecordSetGet(t *testing.T) {
	r := NewRecord()
	r.Set("A", Of(1))
	r.Set("B", Str("x"))
	if v, ok := r.Get("A"); !ok || v.AsInt() != 1 {
		t.Error("Get A")
	}
	if !r.Has("B") || r.Has("C") {
		t.Error("Has")
	}
	if r.MustGet("C").Kind() != Null {
		t.Error("MustGet missing field should be null")
	}
	r.Set("A", Of(2))
	if r.Len() != 2 {
		t.Errorf("overwrite should not grow record, len=%d", r.Len())
	}
	if r.MustGet("A").AsInt() != 2 {
		t.Error("overwrite lost")
	}
}

func TestFromPairs(t *testing.T) {
	r := FromPairs("N", "bob", "AGE", 31, "W", 2.5, "OK", true, "X", Of(9), "Z", nil)
	if r.MustGet("N").AsString() != "bob" || r.MustGet("AGE").AsInt() != 31 ||
		r.MustGet("W").AsFloat() != 2.5 || !r.MustGet("OK").AsBool() ||
		r.MustGet("X").AsInt() != 9 || !r.MustGet("Z").IsNull() {
		t.Errorf("FromPairs built %v", r)
	}
}

func TestFromPairsPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd args", func() { FromPairs("A") })
	assertPanics("non-string name", func() { FromPairs(1, 2) })
	assertPanics("bad value type", func() { FromPairs("A", []int{1}) })
}

func TestRecordDelete(t *testing.T) {
	r := FromPairs("A", 1, "B", 2, "C", 3)
	r.Delete("B")
	if r.Len() != 2 || r.Has("B") {
		t.Error("Delete B")
	}
	got := r.Names()
	if len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Errorf("order after delete = %v", got)
	}
	r.Delete("ZZZ") // no-op
	if r.Len() != 2 {
		t.Error("deleting absent field changed record")
	}
}

func TestRecordRename(t *testing.T) {
	r := FromPairs("A", 1, "B", 2)
	r.Rename("A", "AA")
	if r.Has("A") || r.MustGet("AA").AsInt() != 1 {
		t.Error("Rename")
	}
	if r.Names()[0] != "AA" {
		t.Errorf("rename should preserve position, names=%v", r.Names())
	}
	r.Rename("NOPE", "X") // no-op
	if r.Len() != 2 {
		t.Error("renaming absent field changed record")
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := FromPairs("A", 1)
	c := r.Clone()
	c.Set("A", Of(99))
	c.Set("B", Of(2))
	if r.MustGet("A").AsInt() != 1 || r.Has("B") {
		t.Error("Clone shares state with original")
	}
}

func TestRecordProject(t *testing.T) {
	r := FromPairs("A", 1, "B", 2, "C", 3)
	p := r.Project([]string{"C", "A", "MISSING"})
	if p.Len() != 3 {
		t.Fatalf("project len = %d", p.Len())
	}
	if p.Names()[0] != "C" || p.Names()[1] != "A" {
		t.Errorf("projection order = %v", p.Names())
	}
	if !p.MustGet("MISSING").IsNull() {
		t.Error("missing field should project to null")
	}
}

func TestRecordEqual(t *testing.T) {
	a := FromPairs("A", 1, "B", "x")
	b := FromPairs("B", "x", "A", 1) // different order, same content
	if !a.Equal(b) {
		t.Error("order must not matter for Equal")
	}
	c := FromPairs("A", 1, "B", "y")
	if a.Equal(c) {
		t.Error("different values should differ")
	}
	d := FromPairs("A", 1)
	if a.Equal(d) || d.Equal(a) {
		t.Error("different widths should differ")
	}
}

func TestKeyOfComposite(t *testing.T) {
	a := FromPairs("X", "ab", "Y", "c")
	b := FromPairs("X", "a", "Y", "bc")
	if a.KeyOf([]string{"X", "Y"}) == b.KeyOf([]string{"X", "Y"}) {
		t.Error("composite keys must not collide across field boundaries")
	}
	if a.KeyOf([]string{"X"}) != FromPairs("X", "ab").KeyOf([]string{"X"}) {
		t.Error("same field values should give same key")
	}
}

func TestRecordString(t *testing.T) {
	r := FromPairs("A", 1, "B", "x")
	if got := r.String(); got != "{A=1, B=x}" {
		t.Errorf("String() = %q", got)
	}
}

func TestCompareByAndSort(t *testing.T) {
	recs := []*Record{
		FromPairs("N", "carol", "AGE", 40),
		FromPairs("N", "alice", "AGE", 30),
		FromPairs("N", "bob", "AGE", 30),
	}
	SortRecords(recs, []string{"AGE", "N"})
	if recs[0].MustGet("N").AsString() != "alice" ||
		recs[1].MustGet("N").AsString() != "bob" ||
		recs[2].MustGet("N").AsString() != "carol" {
		t.Errorf("sorted order wrong: %v %v %v", recs[0], recs[1], recs[2])
	}
}

func TestSortIsStable(t *testing.T) {
	recs := []*Record{
		FromPairs("K", 1, "TAG", "first"),
		FromPairs("K", 1, "TAG", "second"),
		FromPairs("K", 0, "TAG", "zero"),
	}
	SortRecords(recs, []string{"K"})
	if recs[1].MustGet("TAG").AsString() != "first" || recs[2].MustGet("TAG").AsString() != "second" {
		t.Error("equal keys must preserve insertion order")
	}
}

func TestCompareByIncomparableFallsBackToString(t *testing.T) {
	a := FromPairs("X", "10")
	b := FromPairs("X", 9)
	// string "10" vs int 9: incomparable, falls back to String form ("10" < "9")
	if c := CompareBy(a, b, []string{"X"}); c != -1 {
		t.Errorf("fallback compare = %d", c)
	}
}

// Property: Project preserves values for present fields.
func TestProjectPreservesValuesProperty(t *testing.T) {
	f := func(a, b int64) bool {
		r := FromPairs("A", a, "B", b)
		p := r.Project([]string{"B"})
		return p.Len() == 1 && p.MustGet("B").AsInt() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone().Equal(original) always holds.
func TestCloneEqualProperty(t *testing.T) {
	f := func(s string, n int64) bool {
		r := FromPairs("S", s, "N", n)
		return r.Clone().Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
