package value

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "NULL", String: "STRING", Int: "INT", Float: "FLOAT", Bool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"string", String}, {"CHAR", String}, {"int", Int}, {"INTEGER", Int},
		{"FLOAT", Float}, {"real", Float}, {"DECIMAL", Float}, {"bool", Bool}, {"BOOLEAN", Bool},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != Null {
		t.Errorf("zero Value should be null, got kind %v", v.Kind())
	}
	if v.String() != "<null>" {
		t.Errorf("null String() = %q", v.String())
	}
}

func TestAccessors(t *testing.T) {
	if Str("x").AsString() != "x" {
		t.Error("AsString")
	}
	if Of(7).AsInt() != 7 {
		t.Error("AsInt on Int")
	}
	if F(2.5).AsInt() != 2 {
		t.Error("AsInt truncates Float")
	}
	if B(true).AsInt() != 1 || B(false).AsInt() != 0 {
		t.Error("AsInt on Bool")
	}
	if Of(7).AsFloat() != 7.0 {
		t.Error("AsFloat on Int")
	}
	if F(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat on Float")
	}
	if !B(true).AsBool() || B(false).AsBool() || Of(1).AsBool() {
		t.Error("AsBool")
	}
}

func TestStringRendering(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Str("hi"), "hi"}, {Of(-4), "-4"}, {F(1.5), "1.5"},
		{B(true), "TRUE"}, {B(false), "FALSE"}, {NullValue(), "<null>"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestLiteral(t *testing.T) {
	if got := Str("o'hara").Literal(); got != "'o''hara'" {
		t.Errorf("string literal = %q", got)
	}
	if got := Of(3).Literal(); got != "3" {
		t.Errorf("int literal = %q", got)
	}
}

func TestCompareNumericCross(t *testing.T) {
	c, ok := Of(3).Compare(F(3.0))
	if !ok || c != 0 {
		t.Errorf("Int(3) vs Float(3.0): %d, %v", c, ok)
	}
	c, ok = Of(3).Compare(F(3.5))
	if !ok || c != -1 {
		t.Errorf("Int(3) vs Float(3.5): %d, %v", c, ok)
	}
	c, ok = F(4.5).Compare(Of(4))
	if !ok || c != 1 {
		t.Errorf("Float(4.5) vs Int(4): %d, %v", c, ok)
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, ok := NullValue().Compare(NullValue()); !ok || c != 0 {
		t.Error("null vs null should be equal")
	}
	if c, ok := NullValue().Compare(Of(0)); !ok || c != -1 {
		t.Error("null should sort below values")
	}
	if c, ok := Of(0).Compare(NullValue()); !ok || c != 1 {
		t.Error("values should sort above null")
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, ok := Str("a").Compare(Of(1)); ok {
		t.Error("string vs int should be incomparable")
	}
	if _, ok := B(true).Compare(Str("TRUE")); ok {
		t.Error("bool vs string should be incomparable")
	}
}

func TestCompareBool(t *testing.T) {
	if c, _ := B(false).Compare(B(true)); c != -1 {
		t.Error("false < true")
	}
	if c, _ := B(true).Compare(B(true)); c != 0 {
		t.Error("true == true")
	}
	if c, _ := B(true).Compare(B(false)); c != 1 {
		t.Error("true > false")
	}
}

func TestKeyRespectsEqual(t *testing.T) {
	if Of(3).Key() != F(3.0).Key() {
		t.Error("Int(3) and Float(3.0) must share a key")
	}
	if Of(3).Key() == F(3.5).Key() {
		t.Error("distinct numerics must not share a key")
	}
	if Str("3").Key() == Of(3).Key() {
		t.Error("string '3' must not collide with int 3")
	}
	if NullValue().Key() == Str("").Key() {
		t.Error("null must not collide with empty string")
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		lit  string
		want Value
	}{
		{String, "abc", Str("abc")},
		{Int, " 42 ", Of(42)},
		{Float, "2.5", F(2.5)},
		{Bool, "true", B(true)},
		{Bool, "F", B(false)},
		{Null, "whatever", NullValue()},
	} {
		got, err := Parse(tc.kind, tc.lit)
		if err != nil || !got.Equal(tc.want) {
			t.Errorf("Parse(%v, %q) = %v, %v; want %v", tc.kind, tc.lit, got, err, tc.want)
		}
	}
	for _, tc := range []struct {
		kind Kind
		lit  string
	}{{Int, "x"}, {Float, "y"}, {Bool, "maybe"}} {
		if _, err := Parse(tc.kind, tc.lit); err == nil {
			t.Errorf("Parse(%v, %q) should fail", tc.kind, tc.lit)
		}
	}
}

// Property: Compare is antisymmetric and Equal agrees with Compare==0
// across randomly generated int/float pairs.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Of(a), Of(b)
		c1, ok1 := va.Compare(vb)
		c2, ok2 := vb.Compare(va)
		if !ok1 || !ok2 || c1 != -c2 {
			return false
		}
		return (c1 == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key() agrees with Equal on random numeric values.
func TestKeyEqualConsistencyProperty(t *testing.T) {
	f := func(a int64, b float64) bool {
		va, vb := Of(a), F(b)
		return va.Equal(vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string values round-trip through Parse.
func TestStringParseRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		v, err := Parse(String, s)
		return err == nil && v.AsString() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
