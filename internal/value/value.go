// Package value provides the typed scalar values and records shared by
// every data-model engine in progconv.
//
// The 1979 data models the paper reasons about (relational, CODASYL
// network, hierarchical) all bottom out in flat records of scalar fields.
// This package is that common substrate: a Value is a tagged scalar
// (string, integer, float, boolean, or null), and a Record is an ordered
// collection of named fields. Nulls are first-class because the paper's
// integrity discussion (§3.1) hinges on them: "CNO and S can not have
// null values", and the owner-coupled-set workaround of creating a
// "null instructor".
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds. Null is the zero Kind so that the zero Value is null,
// matching the models' treatment of an unset field.
const (
	Null Kind = iota
	String
	Int
	Float
	Bool
)

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case String:
		return "STRING"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Bool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind parses a DDL type name. It accepts the spellings used by the
// Figure 4.3 schema language ("PIC X(n)" is handled by the DDL parser and
// arrives here as STRING).
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "STRING", "CHAR", "PIC":
		return String, nil
	case "INT", "INTEGER":
		return Int, nil
	case "FLOAT", "REAL", "DECIMAL":
		return Float, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	}
	return Null, fmt.Errorf("value: unknown type %q", s)
}

// Value is an immutable tagged scalar. The zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Str returns a string Value.
func Str(s string) Value { return Value{kind: String, s: s} }

// Of returns an int Value.
func Of(i int64) Value { return Value{kind: Int, i: i} }

// F returns a float Value.
func F(f float64) Value { return Value{kind: Float, f: f} }

// B returns a boolean Value.
func B(b bool) Value { return Value{kind: Bool, b: b} }

// NullValue returns the null Value.
func NullValue() Value { return Value{} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == Null }

// AsString returns the string payload; it is only meaningful for String values.
func (v Value) AsString() string { return v.s }

// AsInt returns the integer payload, converting Float and Bool values.
func (v Value) AsInt() int64 {
	switch v.kind {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	}
	return 0
}

// AsFloat returns the numeric payload as a float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	}
	return 0
}

// AsBool returns the boolean payload; non-Bool values report false.
func (v Value) AsBool() bool { return v.kind == Bool && v.b }

// String renders the value for terminal output and reports. It is the
// canonical external form: what a converted program PRINTs must match what
// the original printed, so this rendering is part of the equivalence
// contract.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "<null>"
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	}
	return "<invalid>"
}

// Literal renders the value as a source-language literal (strings quoted).
func (v Value) Literal() string {
	if v.kind == String {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Equal reports whether two values are equal. Numeric values compare
// across Int/Float. Null equals only null (the engines, not this package,
// decide whether null comparisons are errors).
func (v Value) Equal(w Value) bool {
	c, ok := v.Compare(w)
	return ok && c == 0
}

// Compare orders two values: -1, 0, +1. The second result reports whether
// the pair is comparable (same kind, or both numeric). Null compares equal
// to null and less than everything else, which gives set orderings a
// stable, total order.
func (v Value) Compare(w Value) (int, bool) {
	if v.kind == Null || w.kind == Null {
		switch {
		case v.kind == Null && w.kind == Null:
			return 0, true
		case v.kind == Null:
			return -1, true
		default:
			return 1, true
		}
	}
	if (v.kind == Int || v.kind == Float) && (w.kind == Int || w.kind == Float) {
		if v.kind == Int && w.kind == Int {
			switch {
			case v.i < w.i:
				return -1, true
			case v.i > w.i:
				return 1, true
			}
			return 0, true
		}
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.kind != w.kind {
		return 0, false
	}
	switch v.kind {
	case String:
		return strings.Compare(v.s, w.s), true
	case Bool:
		switch {
		case v.b == w.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// Key returns a representation usable as a Go map key that respects Equal:
// equal values produce equal keys. Numeric values are normalized to the
// float form only when they carry a fractional part, so Int(3) and
// Float(3.0) collide as Equal demands.
func (v Value) Key() string {
	switch v.kind {
	case Null:
		return "\x00"
	case String:
		return "s" + v.s
	case Int:
		return "n" + strconv.FormatInt(v.i, 10)
	case Float:
		if v.f == float64(int64(v.f)) {
			return "n" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.b {
			return "bT"
		}
		return "bF"
	}
	return "?"
}

// Parse converts a source literal into a Value of the given kind.
func Parse(kind Kind, lit string) (Value, error) {
	switch kind {
	case String:
		return Str(lit), nil
	case Int:
		i, err := strconv.ParseInt(strings.TrimSpace(lit), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad INT literal %q", lit)
		}
		return Of(i), nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(lit), 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad FLOAT literal %q", lit)
		}
		return F(f), nil
	case Bool:
		switch strings.ToUpper(strings.TrimSpace(lit)) {
		case "TRUE", "T", "1":
			return B(true), nil
		case "FALSE", "F", "0":
			return B(false), nil
		}
		return Value{}, fmt.Errorf("value: bad BOOL literal %q", lit)
	case Null:
		return Value{}, nil
	}
	return Value{}, fmt.Errorf("value: cannot parse into kind %v", kind)
}
