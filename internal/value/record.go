package value

import (
	"fmt"
	"sort"
	"strings"
)

// Record is a flat, mutable collection of named fields. Field names are
// case-sensitive and follow the paper's hyphenated 1979 convention
// (EMP-NAME, DIV-LOC). Lookup is by name; the declared order is preserved
// for rendering and for positional operations in the engines.
type Record struct {
	names  []string
	fields map[string]Value
}

// NewRecord returns an empty record.
func NewRecord() *Record {
	return &Record{fields: make(map[string]Value)}
}

// NewRecordSize returns an empty record pre-sized for n fields, so hot
// paths that know the destination field count allocate exactly once.
func NewRecordSize(n int) *Record {
	return &Record{names: make([]string, 0, n), fields: make(map[string]Value, n)}
}

// FromPairs builds a record from alternating name, value arguments,
// which keeps test fixtures compact.
func FromPairs(pairs ...any) *Record {
	if len(pairs)%2 != 0 {
		panic("value.FromPairs: odd argument count")
	}
	r := NewRecord()
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("value.FromPairs: name %v is not a string", pairs[i]))
		}
		switch v := pairs[i+1].(type) {
		case Value:
			r.Set(name, v)
		case string:
			r.Set(name, Str(v))
		case int:
			r.Set(name, Of(int64(v)))
		case int64:
			r.Set(name, Of(v))
		case float64:
			r.Set(name, F(v))
		case bool:
			r.Set(name, B(v))
		case nil:
			r.Set(name, NullValue())
		default:
			panic(fmt.Sprintf("value.FromPairs: unsupported value %T", pairs[i+1]))
		}
	}
	return r
}

// Set stores a field, appending it to the declared order if new.
func (r *Record) Set(name string, v Value) {
	if _, ok := r.fields[name]; !ok {
		r.names = append(r.names, name)
	}
	r.fields[name] = v
}

// Get returns the named field's value and whether the field exists.
func (r *Record) Get(name string) (Value, bool) {
	v, ok := r.fields[name]
	return v, ok
}

// MustGet returns the named field's value, or null if absent.
func (r *Record) MustGet(name string) Value {
	return r.fields[name]
}

// Has reports whether the field exists.
func (r *Record) Has(name string) bool {
	_, ok := r.fields[name]
	return ok
}

// Delete removes a field if present.
func (r *Record) Delete(name string) {
	if _, ok := r.fields[name]; !ok {
		return
	}
	delete(r.fields, name)
	for i, n := range r.names {
		if n == name {
			copy(r.names[i:], r.names[i+1:])
			r.names[len(r.names)-1] = "" // clear the tail: no aliasing, no pinned string
			r.names = r.names[:len(r.names)-1]
			break
		}
	}
}

// Rename changes a field's name in place, preserving its position.
func (r *Record) Rename(from, to string) {
	v, ok := r.fields[from]
	if !ok {
		return
	}
	delete(r.fields, from)
	r.fields[to] = v
	for i, n := range r.names {
		if n == from {
			r.names[i] = to
			break
		}
	}
}

// Names returns the field names in declared order. The slice is shared;
// callers must not mutate it.
func (r *Record) Names() []string { return r.names }

// Len returns the number of fields.
func (r *Record) Len() int { return len(r.names) }

// Reset removes every field while keeping the allocated capacity, so
// hot paths can refill one record per call instead of allocating.
func (r *Record) Reset() {
	r.names = r.names[:0]
	clear(r.fields)
}

// CopyFrom resets r and refills it with o's fields in declared order,
// reusing r's allocated capacity — the pooled-buffer counterpart of
// Clone for loops that stage one record per iteration.
func (r *Record) CopyFrom(o *Record) {
	r.Reset()
	for _, n := range o.names {
		r.names = append(r.names, n)
		r.fields[n] = o.fields[n]
	}
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := &Record{
		names:  append([]string(nil), r.names...),
		fields: make(map[string]Value, len(r.fields)),
	}
	for k, v := range r.fields {
		c.fields[k] = v
	}
	return c
}

// Project returns a new record holding only the given fields, in the
// given order. Missing fields project to null, matching how the engines
// surface absent virtual fields.
func (r *Record) Project(names []string) *Record {
	p := NewRecord()
	for _, n := range names {
		p.Set(n, r.fields[n])
	}
	return p
}

// Equal reports whether two records have the same fields (by name) with
// equal values. Declared order is not significant for equality.
func (r *Record) Equal(o *Record) bool {
	if len(r.fields) != len(o.fields) {
		return false
	}
	for k, v := range r.fields {
		w, ok := o.fields[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// KeyOf concatenates the Key() forms of the named fields, for use as a
// composite index key.
func (r *Record) KeyOf(names []string) string {
	var b strings.Builder
	for _, n := range names {
		b.WriteString(r.fields[n].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// String renders the record as NAME=value pairs in declared order,
// the form used in terminal output and conversion reports.
func (r *Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range r.names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", n, r.fields[n].String())
	}
	b.WriteByte('}')
	return b.String()
}

// CompareBy orders two records by the named fields, for set-key and SORT
// orderings. Records incomparable on some field order by the field's
// String form so that sorting is still total and deterministic.
func CompareBy(a, b *Record, fields []string) int {
	for _, f := range fields {
		av, bv := a.MustGet(f), b.MustGet(f)
		if c, ok := av.Compare(bv); ok {
			if c != 0 {
				return c
			}
			continue
		}
		if c := strings.Compare(av.String(), bv.String()); c != 0 {
			return c
		}
	}
	return 0
}

// SortRecords sorts records in place by the given fields ascending.
// The sort is stable so that engine insertion order breaks ties, which
// the CODASYL "order is significant" semantics (§3.2) depend on.
func SortRecords(recs []*Record, fields []string) {
	sort.SliceStable(recs, func(i, j int) bool {
		return CompareBy(recs[i], recs[j], fields) < 0
	})
}
