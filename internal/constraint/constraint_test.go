package constraint

import (
	"strings"
	"testing"

	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/schema"
	"progconv/internal/value"
)

// fakeInstance lets rule tests state populations directly.
type fakeInstance map[string][]*value.Record

func (f fakeInstance) Entities(name string) []*value.Record { return f[name] }

func TestExistenceViolations(t *testing.T) {
	inst := fakeInstance{
		"COURSE": {value.FromPairs("CNO", "CS101")},
		"COURSE-OFFERING": {
			value.FromPairs("CNO", "CS101", "S", "F78"), // fine
			value.FromPairs("CNO", "GHOST", "S", "F78"), // missing course
			value.FromPairs("CNO", nil, "S", "F78"),     // null reference
		},
	}
	c := Existence{Label: "x", Child: "COURSE-OFFERING", ChildFields: []string{"CNO"},
		Parent: "COURSE", ParentFields: []string{"CNO"}}
	vs := c.Check(inst)
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "cannot be null") && !strings.Contains(vs[1].String(), "cannot be null") {
		t.Errorf("null violation missing: %v", vs)
	}
	if c.Name() != "x" {
		t.Error("Name")
	}
}

func TestUniqueViolations(t *testing.T) {
	inst := fakeInstance{
		"R": {
			value.FromPairs("A", 1, "B", "x"),
			value.FromPairs("A", 1, "B", "y"),
			value.FromPairs("A", 2, "B", "x"),
		},
	}
	c := Unique{Label: "u", Entity: "R", Fields: []string{"A"}}
	if vs := c.Check(inst); len(vs) != 1 {
		t.Errorf("violations = %v", vs)
	}
	c2 := Unique{Label: "u2", Entity: "R", Fields: []string{"A", "B"}}
	if vs := c2.Check(inst); len(vs) != 0 {
		t.Errorf("composite unique: %v", vs)
	}
	if c.Name() != "u" {
		t.Error("Name")
	}
}

func TestCardinalityDirect(t *testing.T) {
	inst := fakeInstance{
		"R": {
			value.FromPairs("G", "a"),
			value.FromPairs("G", "a"),
			value.FromPairs("G", "a"),
			value.FromPairs("G", "b"),
		},
	}
	c := Cardinality{Label: "c", Entity: "R", GroupBy: []Term{{Field: "G"}}, Max: 2}
	vs := c.Check(inst)
	if len(vs) != 1 || !strings.Contains(vs[0].Message, "has 3 records, limit 2") {
		t.Errorf("violations = %v", vs)
	}
	if vs[0].Record != nil {
		t.Error("group violations carry no single record")
	}
	if c.Name() != "c" {
		t.Error("Name")
	}
}

// TestSchoolRuleTwicePerYear reproduces the paper's §3.1 example: "a
// course may not be offered more than twice in a school year" — a rule
// that needs a lookup through SEMESTER for the YEAR.
func TestSchoolRuleTwicePerYear(t *testing.T) {
	db := relstore.NewDB(schema.SchoolRelational())
	db.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	for _, s := range []struct {
		sem  string
		year int
	}{{"F78", 1978}, {"W78", 1978}, {"S78", 1978}, {"F79", 1979}} {
		db.Insert("SEMESTER", value.FromPairs("S", s.sem, "YEAR", s.year))
	}
	// Three offerings of CS101 in 1978: violates; one in 1979: fine.
	for _, sem := range []string{"F78", "W78", "S78", "F79"} {
		db.Insert("COURSE-OFFERING", value.FromPairs("CNO", "CS101", "S", sem, "INSTRUCTOR", "T"))
	}
	vs := CheckAll(SchoolRules(), FromRelational(db))
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Constraint != "at-most-twice-per-year" ||
		!strings.Contains(vs[0].Message, "(CS101,1978) has 3") {
		t.Errorf("violation = %v", vs[0])
	}
}

func TestSchoolRulesCleanDatabase(t *testing.T) {
	db := relstore.NewDB(schema.SchoolRelational())
	db.Insert("COURSE", value.FromPairs("CNO", "CS101", "CNAME", "Intro"))
	db.Insert("SEMESTER", value.FromPairs("S", "F78", "YEAR", 1978))
	db.Insert("COURSE-OFFERING", value.FromPairs("CNO", "CS101", "S", "F78", "INSTRUCTOR", "T"))
	if vs := CheckAll(SchoolRules(), FromRelational(db)); len(vs) != 0 {
		t.Errorf("clean database has violations: %v", vs)
	}
}

func TestSchoolRulesCatchDanglingOffering(t *testing.T) {
	// FKs off (the 1979 default): the engine admits the dangling tuple,
	// the centralized rules catch it.
	db := relstore.NewDB(schema.SchoolRelational())
	db.Insert("COURSE-OFFERING", value.FromPairs("CNO", "GHOST", "S", "NOWHERE", "INSTRUCTOR", "X"))
	vs := CheckAll(SchoolRules(), FromRelational(db))
	if len(vs) != 2 {
		t.Errorf("want course+semester existence violations, got %v", vs)
	}
}

func TestNetworkInstanceAdapter(t *testing.T) {
	db := netstore.NewDB(schema.CompanyV1())
	s := netstore.NewSession(db)
	s.Store("DIV", value.FromPairs("DIV-NAME", "M", "DIV-LOC", "D"))
	s.Store("EMP", value.FromPairs("EMP-NAME", "A", "DEPT-NAME", "S", "AGE", 1))
	inst := FromNetwork(db)
	emps := inst.Entities("EMP")
	if len(emps) != 1 {
		t.Fatalf("emps = %v", emps)
	}
	// Virtuals resolved: constraints can be stated over DIV-NAME.
	if emps[0].MustGet("DIV-NAME").AsString() != "M" {
		t.Error("virtual not resolved in adapter")
	}
	if len(inst.Entities("NOPE")) != 0 {
		t.Error("unknown entity should be empty")
	}
}

func TestHierarchyInstanceAdapter(t *testing.T) {
	db := hierstore.NewDB(schema.EmpDeptHierarchy())
	s := hierstore.NewSession(db)
	s.ISRT(value.FromPairs("D#", "D1", "DNAME", "X", "MGR", "M"), hierstore.U("DEPT"))
	s.ISRT(value.FromPairs("E#", "E1", "ENAME", "A", "AGE", 1, "YEAR-OF-SERVICE", 1),
		hierstore.Q("DEPT", "D#", hierstore.EQ, value.Str("D1")), hierstore.U("EMP"))
	inst := FromHierarchy(db)
	if len(inst.Entities("DEPT")) != 1 || len(inst.Entities("EMP")) != 1 {
		t.Error("hierarchy adapter counts")
	}
	if len(inst.Entities("NOPE")) != 0 {
		t.Error("unknown segment")
	}
}

func TestRelationalAdapterUnknown(t *testing.T) {
	db := relstore.NewDB(schema.SchoolRelational())
	if FromRelational(db).Entities("NOPE") != nil {
		t.Error("unknown relation should be nil")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Constraint: "c", Message: "m", Record: value.FromPairs("A", 1)}
	if got := v.String(); got != "c: m: {A=1}" {
		t.Errorf("with record: %q", got)
	}
	v2 := Violation{Constraint: "c", Message: "m"}
	if got := v2.String(); got != "c: m" {
		t.Errorf("without record: %q", got)
	}
}

func TestCheckAllConcatenates(t *testing.T) {
	inst := fakeInstance{"R": {
		value.FromPairs("A", 1),
		value.FromPairs("A", 1),
	}}
	rules := []Constraint{
		Unique{Label: "u", Entity: "R", Fields: []string{"A"}},
		Cardinality{Label: "c", Entity: "R", GroupBy: []Term{{Field: "A"}}, Max: 1},
	}
	if vs := CheckAll(rules, inst); len(vs) != 2 {
		t.Errorf("violations = %v", vs)
	}
}
