// Package constraint is the centralized integrity-constraint subsystem
// §3.1 argues for: "This problem could be reduced significantly if
// constraints could be removed from program logic and centralized,
// explicitly, as part of the data model."
//
// The 1979 models cannot hold these rules — the relational model keeps
// only key uniqueness, the owner-coupled-set model only what
// AUTOMATIC/MANDATORY encode — so programs enforce them procedurally, and
// schema changes silently invalidate the programs' assumptions. This
// package states the paper's example rules declaratively (existence,
// uniqueness, numeric participation limits like "a course may not be
// offered more than twice in a school year") and checks them against any
// engine through the Instance interface, so the conversion system can
// carry them from source to target.
package constraint

import (
	"fmt"

	"progconv/internal/hierstore"
	"progconv/internal/netstore"
	"progconv/internal/relstore"
	"progconv/internal/value"
)

// Instance is a data-model-independent view of a database population:
// every engine adapts to it.
type Instance interface {
	// Entities returns the records of the named entity type (relation,
	// record type, or segment type), with derived fields resolved.
	Entities(name string) []*value.Record
}

// Violation reports one constraint failure.
type Violation struct {
	Constraint string
	Message    string
	Record     *value.Record // the offending record, nil for group rules
}

func (v Violation) String() string {
	if v.Record != nil {
		return fmt.Sprintf("%s: %s: %s", v.Constraint, v.Message, v.Record)
	}
	return fmt.Sprintf("%s: %s", v.Constraint, v.Message)
}

// Constraint is a declarative integrity rule.
type Constraint interface {
	// Name identifies the rule in reports and conversion plans.
	Name() string
	// Check returns every violation in the instance.
	Check(inst Instance) []Violation
}

// Existence is the §3.1 rule that "a course-offering instance cannot
// exist unless the course and semester instances it references do": every
// child record's fields must match some parent record, and must not be
// null.
type Existence struct {
	Label        string
	Child        string
	ChildFields  []string
	Parent       string
	ParentFields []string
}

// Name implements Constraint.
func (c Existence) Name() string { return c.Label }

// Check implements Constraint.
func (c Existence) Check(inst Instance) []Violation {
	parents := make(map[string]bool)
	for _, p := range inst.Entities(c.Parent) {
		parents[p.KeyOf(c.ParentFields)] = true
	}
	var out []Violation
	for _, ch := range inst.Entities(c.Child) {
		nullField := ""
		for _, f := range c.ChildFields {
			if ch.MustGet(f).IsNull() {
				nullField = f
				break
			}
		}
		if nullField != "" {
			out = append(out, Violation{c.Label,
				fmt.Sprintf("%s.%s cannot be null", c.Child, nullField), ch})
			continue
		}
		probe := ch.Project(c.ChildFields)
		key := value.NewRecord()
		for i, f := range c.ParentFields {
			key.Set(f, probe.MustGet(c.ChildFields[i]))
		}
		if !parents[key.KeyOf(c.ParentFields)] {
			out = append(out, Violation{c.Label,
				fmt.Sprintf("%s references missing %s", c.Child, c.Parent), ch})
		}
	}
	return out
}

// Unique requires the field combination to be unique across the entity.
type Unique struct {
	Label  string
	Entity string
	Fields []string
}

// Name implements Constraint.
func (c Unique) Name() string { return c.Label }

// Check implements Constraint.
func (c Unique) Check(inst Instance) []Violation {
	seen := make(map[string]bool)
	var out []Violation
	for _, r := range inst.Entities(c.Entity) {
		k := r.KeyOf(c.Fields)
		if seen[k] {
			out = append(out, Violation{c.Label,
				fmt.Sprintf("duplicate %v in %s", c.Fields, c.Entity), r})
		}
		seen[k] = true
	}
	return out
}

// Term is one grouping component of a Cardinality rule: either a field of
// the entity itself, or a field fetched from a related entity through a
// lookup join (the school rule groups offerings by the YEAR of the
// SEMESTER the offering's S names).
type Term struct {
	Field  string
	Lookup *Lookup // nil for a direct field
}

// Lookup describes how to fetch Term.Field from a related entity.
type Lookup struct {
	Entity string // related entity type
	Local  string // field of the constrained entity
	Remote string // matching field of the related entity
}

// Cardinality is the §3.1 "numeric limits on relationship participation"
// rule "not maintained by any of the models": at most Max records of
// Entity may share a GroupBy value.
type Cardinality struct {
	Label   string
	Entity  string
	GroupBy []Term
	Max     int
}

// Name implements Constraint.
func (c Cardinality) Name() string { return c.Label }

// Check implements Constraint.
func (c Cardinality) Check(inst Instance) []Violation {
	// Pre-index lookup targets.
	lookups := make(map[int]map[string]value.Value) // term index -> local key -> remote value
	for i, term := range c.GroupBy {
		if term.Lookup == nil {
			continue
		}
		idx := make(map[string]value.Value)
		for _, r := range inst.Entities(term.Lookup.Entity) {
			idx[r.MustGet(term.Lookup.Remote).Key()] = r.MustGet(term.Field)
		}
		lookups[i] = idx
	}
	groups := make(map[string]int)
	labels := make(map[string]string)
	for _, r := range inst.Entities(c.Entity) {
		var key, label string
		for i, term := range c.GroupBy {
			var v value.Value
			if term.Lookup == nil {
				v = r.MustGet(term.Field)
			} else {
				v = lookups[i][r.MustGet(term.Lookup.Local).Key()]
			}
			key += v.Key() + "\x1f"
			if label != "" {
				label += ","
			}
			label += v.String()
		}
		groups[key]++
		labels[key] = label
	}
	var out []Violation
	for k, n := range groups {
		if n > c.Max {
			out = append(out, Violation{c.Label,
				fmt.Sprintf("%s group (%s) has %d records, limit %d", c.Entity, labels[k], n, c.Max), nil})
		}
	}
	return out
}

// CheckAll evaluates every rule and concatenates the violations.
func CheckAll(rules []Constraint, inst Instance) []Violation {
	var out []Violation
	for _, r := range rules {
		out = append(out, r.Check(inst)...)
	}
	return out
}

// ---- engine adapters ----

type relInstance struct{ db *relstore.DB }

// FromRelational adapts a relational database to Instance.
func FromRelational(db *relstore.DB) Instance { return relInstance{db} }

func (r relInstance) Entities(name string) []*value.Record {
	rows, err := r.db.All(name)
	if err != nil {
		return nil
	}
	return rows
}

type netInstance struct{ db *netstore.DB }

// FromNetwork adapts a network database to Instance. Virtual fields are
// resolved, so constraints can be stated over the logical record.
func FromNetwork(db *netstore.DB) Instance { return netInstance{db} }

func (n netInstance) Entities(name string) []*value.Record {
	var out []*value.Record
	n.db.EachOf(name, func(id netstore.RecordID) bool {
		out = append(out, n.db.Data(id))
		return true
	})
	return out
}

type hierInstance struct{ db *hierstore.DB }

// FromHierarchy adapts a hierarchical database to Instance.
func FromHierarchy(db *hierstore.DB) Instance { return hierInstance{db} }

func (h hierInstance) Entities(name string) []*value.Record {
	var out []*value.Record
	for _, id := range h.db.Sequence() {
		if h.db.TypeOf(id) == name {
			out = append(out, h.db.Data(id))
		}
	}
	return out
}

// SchoolRules returns the §3.1 rules for the school database of Figure
// 3.1, including the "course may not be offered more than twice in a
// school year" limit that no 1979 model can hold.
func SchoolRules() []Constraint {
	return []Constraint{
		Existence{
			Label: "offering-requires-course",
			Child: "COURSE-OFFERING", ChildFields: []string{"CNO"},
			Parent: "COURSE", ParentFields: []string{"CNO"},
		},
		Existence{
			Label: "offering-requires-semester",
			Child: "COURSE-OFFERING", ChildFields: []string{"S"},
			Parent: "SEMESTER", ParentFields: []string{"S"},
		},
		Unique{
			Label:  "offering-key",
			Entity: "COURSE-OFFERING", Fields: []string{"CNO", "S"},
		},
		Cardinality{
			Label:  "at-most-twice-per-year",
			Entity: "COURSE-OFFERING",
			GroupBy: []Term{
				{Field: "CNO"},
				{Field: "YEAR", Lookup: &Lookup{Entity: "SEMESTER", Local: "S", Remote: "S"}},
			},
			Max: 2,
		},
	}
}
