package telemetry

// Chrome trace_event rendering of a span tree — the -trace output,
// loadable in chrome://tracing or https://ui.perfetto.dev. One virtual
// thread per program (plus thread 0 for the job root, phases, and
// pair-scoped spans); stage, program, phase, and job spans render as
// complete ("X") events, point-like children (cache probes, verdicts,
// decisions, hazards, faults, retries) as instant ("i") events.

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace renders the span tree as Chrome trace_event JSON.
// A nil trace writes an empty event list.
func WriteChromeTrace(w io.Writer, tr *Trace) error {
	var events []chromeEvent
	if tr != nil {
		tids := map[string]int{"": 0}
		threadName := func(tid int, name string) {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]string{"name": name},
			})
		}
		threadName(0, "job "+tr.TraceID.String()[:12])
		for _, sp := range tr.Spans {
			tid, ok := tids[sp.Prog]
			if !ok {
				tid = len(tids)
				tids[sp.Prog] = tid
				threadName(tid, sp.Prog)
			}
			args := map[string]string{"span_id": sp.ID.String(), "kind": sp.Kind.String()}
			if sp.Label != "" {
				args["label"] = sp.Label
			}
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			ev := chromeEvent{
				Name: sp.Name, Cat: sp.Kind.String(),
				Ts: micros(sp.Start), Pid: 1, Tid: tid, Args: args,
			}
			switch sp.Kind {
			case KindJob, KindPhase, KindProgram, KindStage:
				ev.Ph, ev.Dur = "X", micros(sp.Dur)
			default:
				ev.Ph, ev.S = "i", "t"
			}
			events = append(events, ev)
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
