package telemetry

// Histogram instruments and gauges with a Prometheus text exporter.
// Bucket boundaries are fixed at construction — the same deterministic
// 1µs·4ⁱ geometry internal/obs uses for stage spans — and every
// registered series is rendered unconditionally (zero counts
// included), so scrapers never see series appear, disappear, or shift
// buckets between scrapes.

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"progconv/internal/obs"
)

// LatencyBuckets returns the standard duration boundaries in seconds:
// 1µs·4ⁱ for i in [0, 16), matching the obs stage histogram geometry.
func LatencyBuckets() []float64 {
	out := make([]float64, 16)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 4
	}
	return out
}

// CountBuckets returns the standard count boundaries: 4ⁱ for i in
// [0, 10) — 1, 4, 16, … 262144 — for per-job data-plane work counts.
func CountBuckets() []float64 {
	out := make([]float64, 10)
	b := 1.0
	for i := range out {
		out[i] = b
		b *= 4
	}
	return out
}

// series is one labeled histogram time series.
type series struct {
	label   string
	buckets []int64 // finite buckets; observations above the last bound
	sum     float64 // and the count make the implicit +Inf bucket
	count   int64
	max     float64
}

// Family is one histogram metric family: fixed bucket boundaries, any
// number of labeled series. Safe for concurrent Observe.
type Family struct {
	name, help, labelKey string
	bounds               []float64

	mu      sync.Mutex
	series  []*series
	byLabel map[string]*series
}

// Observe records one value into the labeled series, creating it on
// first use (pre-register scrape-critical labels at Family time so
// they export as zeros before the first observation). The label is ""
// for label-free families.
func (f *Family) Observe(label string, v float64) {
	f.mu.Lock()
	s := f.byLabel[label]
	if s == nil {
		s = f.register(label)
	}
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	for i, b := range f.bounds {
		if v <= b {
			s.buckets[i]++
			break
		}
	}
	f.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (f *Family) ObserveDuration(label string, d time.Duration) {
	f.Observe(label, d.Seconds())
}

// register adds a series; the caller holds f.mu (or is Registry.Family
// before the family is published).
func (f *Family) register(label string) *series {
	s := &series{label: label, buckets: make([]int64, len(f.bounds))}
	f.series = append(f.series, s)
	f.byLabel[label] = s
	return s
}

// Count returns one series' observation count (0 when absent).
func (f *Family) Count(label string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.byLabel[label]; s != nil {
		return s.count
	}
	return 0
}

// gauge is one callback-valued gauge metric.
type gauge struct {
	name, help string
	fn         func() float64
}

// counterSeries is one labeled monotonic counter.
type counterSeries struct {
	label string
	n     int64
}

// Counters is one counter metric family: any number of labeled
// monotonic series, created on first Add or pre-registered so they
// export as zeros. Safe for concurrent use.
type Counters struct {
	name, help, labelKey string

	mu      sync.Mutex
	series  []*counterSeries
	byLabel map[string]*counterSeries
}

// Add increments the labeled series by delta, creating it on first
// use. The label is "" for label-free counters.
func (c *Counters) Add(label string, delta int64) {
	c.mu.Lock()
	s := c.byLabel[label]
	if s == nil {
		s = c.register(label)
	}
	s.n += delta
	c.mu.Unlock()
}

// Get returns one series' current value (0 when absent).
func (c *Counters) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.byLabel[label]; s != nil {
		return s.n
	}
	return 0
}

// register adds a series; the caller holds c.mu (or is
// Registry.Counters before the family is published).
func (c *Counters) register(label string) *counterSeries {
	s := &counterSeries{label: label}
	c.series = append(c.series, s)
	c.byLabel[label] = s
	return s
}

func (c *Counters) writePrometheus(w io.Writer) error {
	c.mu.Lock()
	type snap struct {
		label string
		n     int64
	}
	snaps := make([]snap, 0, len(c.series))
	for _, s := range c.series {
		snaps = append(snaps, snap{s.label, s.n})
	}
	c.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name); err != nil {
		return err
	}
	for _, s := range snaps {
		sel := ""
		if c.labelKey != "" {
			sel = fmt.Sprintf("{%s=%q}", c.labelKey, s.label)
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.name, sel, s.n); err != nil {
			return err
		}
	}
	return nil
}

// Registry holds an instrument set for one process: histogram
// families, counter families and gauges, rendered together by
// WritePrometheus. Families, counters and gauges render in
// registration order, series in label-registration order, so the
// exposition is byte-stable for a deterministic observation sequence.
type Registry struct {
	mu       sync.Mutex
	families []*Family
	counters []*Counters
	gauges   []gauge
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry { return &Registry{} }

// Family registers a histogram family. labelKey is the label
// dimension ("" for a label-free family); bounds are the finite bucket
// upper bounds in ascending order; labels pre-registers series so they
// export before their first observation.
func (r *Registry) Family(name, help, labelKey string, bounds []float64, labels ...string) *Family {
	f := &Family{
		name: name, help: help, labelKey: labelKey,
		bounds:  append([]float64(nil), bounds...),
		byLabel: map[string]*series{},
	}
	if len(labels) == 0 && labelKey == "" {
		labels = []string{""}
	}
	for _, l := range labels {
		f.register(l)
	}
	r.mu.Lock()
	r.families = append(r.families, f)
	r.mu.Unlock()
	return f
}

// Counters registers a counter family. labelKey is the label
// dimension ("" for a label-free counter); labels pre-registers series
// so they export as zeros before their first Add.
func (r *Registry) Counters(name, help, labelKey string, labels ...string) *Counters {
	c := &Counters{
		name: name, help: help, labelKey: labelKey,
		byLabel: map[string]*counterSeries{},
	}
	if len(labels) == 0 && labelKey == "" {
		labels = []string{""}
	}
	for _, l := range labels {
		c.register(l)
	}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// Gauge registers a callback-valued gauge, sampled at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	r.gauges = append(r.gauges, gauge{name, help, fn})
	r.mu.Unlock()
}

// snapshotFamilies copies the family list so rendering never holds the
// registry lock while calling into family locks.
func (r *Registry) snapshotFamilies() ([]*Family, []*Counters, []gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Family(nil), r.families...),
		append([]*Counters(nil), r.counters...),
		append([]gauge(nil), r.gauges...)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered family and gauge in
// Prometheus text exposition format. All registered series are written
// unconditionally — including zero-count ones — so no time series ever
// disappears between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	families, counters, gauges := r.snapshotFamilies()
	for _, f := range families {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	for _, c := range counters {
		if err := c.writePrometheus(w); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			g.name, g.help, g.name, g.name, formatFloat(g.fn())); err != nil {
			return err
		}
	}
	return nil
}

func (f *Family) writePrometheus(w io.Writer) error {
	f.mu.Lock()
	type snap struct {
		label   string
		buckets []int64
		sum     float64
		count   int64
	}
	snaps := make([]snap, 0, len(f.series))
	for _, s := range f.series {
		snaps = append(snaps, snap{s.label, append([]int64(nil), s.buckets...), s.sum, s.count})
	}
	f.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name); err != nil {
		return err
	}
	for _, s := range snaps {
		sel := func(le string) string {
			if f.labelKey == "" {
				return fmt.Sprintf("{le=%q}", le)
			}
			return fmt.Sprintf("{%s=%q,le=%q}", f.labelKey, s.label, le)
		}
		plain := ""
		if f.labelKey != "" {
			plain = fmt.Sprintf("{%s=%q}", f.labelKey, s.label)
		}
		var cum int64
		for i, b := range f.bounds {
			cum += s.buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, sel(formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, sel("+Inf"), s.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, plain, formatFloat(s.sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, plain, s.count); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders one human-readable line per series — the
// /statusz histogram section.
func (r *Registry) WriteSummary(w io.Writer) {
	families, counters, gauges := r.snapshotFamilies()
	for _, f := range families {
		f.mu.Lock()
		for _, s := range f.series {
			name := f.name
			if f.labelKey != "" {
				name = fmt.Sprintf("%s{%s=%q}", f.name, f.labelKey, s.label)
			}
			mean := 0.0
			if s.count > 0 {
				mean = s.sum / float64(s.count)
			}
			fmt.Fprintf(w, "  %-60s count=%d mean=%s max=%s\n",
				name, s.count, formatFloat(mean), formatFloat(s.max))
		}
		f.mu.Unlock()
	}
	for _, c := range counters {
		c.mu.Lock()
		for _, s := range c.series {
			name := c.name
			if c.labelKey != "" {
				name = fmt.Sprintf("%s{%s=%q}", c.name, c.labelKey, s.label)
			}
			fmt.Fprintf(w, "  %-60s value=%d\n", name, s.n)
		}
		c.mu.Unlock()
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "  %-60s value=%s\n", g.name, formatFloat(g.fn()))
	}
}

// Instruments is the standard progconv instrument set, registered
// identically by the daemon and the CLI so dashboards work against
// either front end.
type Instruments struct {
	// QueueWait is the admission-queue wait per job (daemon only; the
	// CLI has no queue and leaves it at zero).
	QueueWait *Family
	// JobDur is end-to-end job latency, runner pickup to report.
	JobDur *Family
	// Stage is per-program stage-attempt latency by stage name, fed
	// from stage-end events by StageSink.
	Stage *Family
	// Probes is the per-job data-plane FIND work count by resolution
	// ("probe" = exact-key index probe, "scan" = full occurrence scan).
	Probes *Family
}

// NewInstruments registers the standard families on r. Stage series
// are pre-registered for every pipeline stage so all five export from
// the first scrape.
func NewInstruments(r *Registry) *Instruments {
	stages := make([]string, 0, len(obs.Stages()))
	for _, st := range obs.Stages() {
		stages = append(stages, st.String())
	}
	return &Instruments{
		QueueWait: r.Family("progconv_queue_wait_seconds",
			"Time a job waited in the admission queue before a runner picked it up.",
			"", LatencyBuckets()),
		JobDur: r.Family("progconv_job_duration_seconds",
			"End-to-end job latency from runner pickup to finished report.",
			"", LatencyBuckets()),
		Stage: r.Family("progconv_stage_latency_seconds",
			"Per-program pipeline stage attempt latency.",
			"stage", LatencyBuckets(), stages...),
		Probes: r.Family("progconv_dataplane_probe_count",
			"Per-job data-plane FIND lookups by resolution (index probe vs full scan).",
			"op", CountBuckets(), "probe", "scan"),
	}
}

// stageSink folds stage-end events into the stage latency family.
type stageSink struct{ fam *Family }

func (s stageSink) Emit(ev obs.Event) {
	if ev.Kind == obs.EvStageEnd {
		s.fam.ObserveDuration(ev.Stage.String(), ev.Dur)
	}
}

// StageSink returns an event sink feeding the stage histogram; compose
// it with the run's other sinks via MultiSink.
func (in *Instruments) StageSink() obs.Sink { return stageSink{in.Stage} }

// ObserveDataPlane records one finished job's data-plane counters.
func (in *Instruments) ObserveDataPlane(dp obs.DataPlane) {
	in.Probes.Observe("probe", float64(dp.IndexProbes))
	in.Probes.Observe("scan", float64(dp.IndexScans))
}
