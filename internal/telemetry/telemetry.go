// Package telemetry is the end-to-end tracing and latency-distribution
// layer over the conversion pipeline: per-job traces assembled from the
// structured event log (trace.go), fixed-bucket histogram instruments
// and gauges with a Prometheus text exporter (hist.go), and the shared
// operational debug plane — pprof, expvar, /statusz — mounted by both
// the CLI and the daemon (debug.go).
//
// The paper's cost model is per stage: analysis, conversion, code
// generation, verification each carry their own price, and the
// Conversion Supervisor is the facility expected to account for them.
// This package turns the PR 2 event log into that accounting — one
// TraceID per job, one span per program, child spans for stage
// attempts, retries, cache probes, and verification passes — without
// giving up the repository's determinism contract: every ID is derived
// by domain-separated SHA-256 from the trace ID and the span's
// structural path (program name plus that program's event ordinal),
// never from wall clock or RNG, so the span tree is byte-identical at
// any parallelism once timing fields are omitted.
//
// Trace context crosses process boundaries as a W3C traceparent header
// (ParseTraceparent/Traceparent), so daemon callers propagate their own
// TraceID and read the finished tree back from GET /v1/jobs/{id}/trace.
package telemetry

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
)

// TraceID identifies one job or Convert run: the W3C trace-id, 16
// bytes rendered as 32 lowercase hex digits.
type TraceID [16]byte

// SpanID identifies one span within a trace: the W3C parent-id, 8
// bytes rendered as 16 lowercase hex digits.
type SpanID [8]byte

// String renders the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the all-zero (invalid per W3C) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the all-zero (invalid per W3C) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// derive hashes domain-separated, length-prefixed parts — the same
// construction internal/fingerprint uses, so concatenation ambiguity
// cannot produce colliding IDs. Span derivation runs once per event on
// the pipeline's hot path, so the input is assembled in one (usually
// stack-resident) buffer and hashed with a single Sum256 — no Digest
// allocation, no intermediate strings.
func derive(domain string, trace []byte, parts ...string) [sha256.Size]byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, domain...)
	buf = append(buf, trace...)
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		buf = append(buf, n[:]...)
		buf = append(buf, p...)
	}
	return sha256.Sum256(buf)
}

// DeriveTraceID derives a deterministic trace ID from content parts —
// the job fingerprint plus submission index, per the determinism
// contract. Distinct part lists yield distinct IDs.
func DeriveTraceID(parts ...string) TraceID {
	var t TraceID
	sum := derive("traceid", nil, parts...)
	copy(t[:], sum[:])
	if t.IsZero() { // W3C forbids the all-zero ID
		t[15] = 1
	}
	return t
}

// DeriveSpanID derives a deterministic span ID from its trace and the
// span's structural path parts.
func DeriveSpanID(t TraceID, parts ...string) SpanID {
	var s SpanID
	sum := derive("spanid", t[:], parts...)
	copy(s[:], sum[:])
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// Traceparent renders the W3C traceparent header (version 00, sampled)
// for a trace/span pair — what the daemon injects into submission
// responses so callers can continue the trace.
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header into its trace and
// parent-span IDs. Malformed headers — wrong field lengths, non-hex
// digits, the forbidden version ff, or all-zero IDs — are rejected, so
// callers fall back to a derived trace ID.
func ParseTraceparent(h string) (TraceID, SpanID, error) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, fmt.Errorf("traceparent: malformed header %q", h)
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return t, s, fmt.Errorf("traceparent: bad version %q", h[0:2])
	}
	// Version 00 has exactly four fields; later versions may append.
	if ver[0] == 0 && len(h) != 55 {
		return t, s, fmt.Errorf("traceparent: malformed header %q", h)
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return t, s, fmt.Errorf("traceparent: bad trace-id: %v", err)
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return t, s, fmt.Errorf("traceparent: bad parent-id: %v", err)
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return t, s, fmt.Errorf("traceparent: bad flags: %v", err)
	}
	if t.IsZero() || s.IsZero() {
		return t, s, fmt.Errorf("traceparent: all-zero ID")
	}
	return t, s, nil
}

// ordinal renders a span ordinal for ID-derivation paths.
func ordinal(n int) string { return strconv.Itoa(n) }

// traceKey carries a TraceBuilder through a context alongside the
// obs.Emitter, so pipeline layers can attach spans to the active trace.
type traceKey struct{}

// WithTrace returns a context carrying the trace builder; a nil
// builder returns ctx unchanged.
func WithTrace(ctx context.Context, b *TraceBuilder) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, b)
}

// TraceFrom extracts the context's trace builder; nil when the run is
// untraced.
func TraceFrom(ctx context.Context) *TraceBuilder {
	b, _ := ctx.Value(traceKey{}).(*TraceBuilder)
	return b
}
