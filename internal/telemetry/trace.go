package telemetry

// The span model. A TraceBuilder is an obs.Sink: it folds the
// structured event log into a span tree, leaning on the event layer's
// order guarantee — within one program the events arrive in pipeline
// order at any parallelism — so the tree's structure is deterministic
// even though the global interleaving is not. Pair-scoped events
// (Prog == "") are emitted serially during pair preparation and attach
// to the root span in arrival order; per-program events attach under
// that program's span in per-program ordinal order; Snapshot lists
// programs in submission order (SetPrograms), never arrival order.

import (
	"sort"
	"sync"
	"time"

	"progconv/internal/obs"
)

// SpanKind classifies one span of the tree.
type SpanKind uint8

// The span kinds.
const (
	// KindJob is the root: one whole job or Convert run.
	KindJob SpanKind = iota
	// KindPhase is an explicit lifecycle phase parented to the root —
	// queue wait, phases the event stream does not carry.
	KindPhase
	// KindProgram is one program's whole analyze → verify pipeline.
	KindProgram
	// KindStage is one stage attempt; Attempt numbers retries of the
	// same stage from 1.
	KindStage
	// KindRetry is one transient-error retry decision, parented to the
	// stage attempt that failed.
	KindRetry
	// KindCache is one conversion-cache probe (hit, miss, or evict);
	// Name is the cache scope, Label the result.
	KindCache
	// KindVerdict is one equivalence verdict; Label is "pass" or "fail".
	KindVerdict
	// KindDecision is one Analyst consultation; Name is the issue kind,
	// Label "accepted" or "declined".
	KindDecision
	// KindHazard is one analyzer or converter finding; Name is the
	// hazard kind.
	KindHazard
	// KindFault is one recovered panic or expired budget; Name is the
	// event kind, Label the stage or scope.
	KindFault
)

var spanKindNames = [...]string{
	"job", "phase", "program", "stage", "retry",
	"cache", "verdict", "decision", "hazard", "fault",
}

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span(?)"
}

// Span is one node of a trace. IDs are derived from the trace ID and
// the span's structural path, so they are identical at any
// parallelism; Start and Dur are the only wall-clock-bearing fields
// and are dropped by encoders asked to omit timing.
type Span struct {
	// ID identifies the span; Parent is the enclosing span (zero only
	// on the root).
	ID     SpanID
	Parent SpanID
	// Kind classifies the span; Name is its display name (stage name,
	// cache scope, program name, …).
	Kind SpanKind
	Name string
	// Prog names the owning program; empty on root, phase, and
	// pair-scoped spans.
	Prog string
	// Stage is the stage name on stage and retry spans.
	Stage string
	// Attempt numbers stage attempts and retries from 1.
	Attempt int
	// Label is the low-cardinality result dimension (disposition,
	// "hit"/"miss", "pass"/"fail", …); Detail the free-form explanation.
	Label  string
	Detail string
	// Start is the offset from the run's emitter start; Dur the span
	// duration (0 when the run has no metrics recorder).
	Start time.Duration
	Dur   time.Duration
}

// Trace is a snapshot of one run's span tree: the root span first,
// then phases, pair-scoped spans, and each program's spans in
// submission order.
type Trace struct {
	TraceID TraceID
	// Remote is the caller's span ID from an inbound traceparent; zero
	// when the trace originated here.
	Remote SpanID
	Spans  []Span
}

// Root returns the root span (zero Span for an empty trace).
func (t *Trace) Root() Span {
	if t == nil || len(t.Spans) == 0 {
		return Span{}
	}
	return t.Spans[0]
}

// ByKind returns the spans of one kind, in tree order.
func (t *Trace) ByKind(k SpanKind) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, sp := range t.Spans {
		if sp.Kind == k {
			out = append(out, sp)
		}
	}
	return out
}

// progSpans is one program's accumulating subtree.
type progSpans struct {
	span     Span
	children []Span
	n        int // per-program event ordinal, the ID-derivation path
	open     int // index in children of the open stage span, -1
	last     int // index of the last closed stage span, -1
	attempts map[string]int
	retries  map[string]int
}

// TraceBuilder assembles a Trace. It implements obs.Sink, so it is
// installed like any other event sink and composes with MultiSink;
// Snapshot may be called at any time, including mid-run, and returns a
// consistent partial tree.
type TraceBuilder struct {
	mu     sync.Mutex
	id     TraceID
	remote SpanID
	root   Span
	phases []Span
	shared []Span // pair-scoped children of the root, arrival order
	progs  map[string]*progSpans
	order  []string // submission order from SetPrograms
	seen   []string // first-emit order, for programs never listed
}

// NewTraceBuilder starts a trace: id becomes the TraceID, name the
// root span's display name.
func NewTraceBuilder(id TraceID, name string) *TraceBuilder {
	return &TraceBuilder{
		id:    id,
		root:  Span{ID: DeriveSpanID(id, "root"), Kind: KindJob, Name: name},
		progs: map[string]*progSpans{},
	}
}

// TraceID returns the trace's ID.
func (b *TraceBuilder) TraceID() TraceID { return b.id }

// Root returns the root span's ID — what the daemon injects into its
// response traceparent.
func (b *TraceBuilder) Root() SpanID { return b.root.ID }

// SetRemoteParent records the caller's span ID from an inbound
// traceparent header.
func (b *TraceBuilder) SetRemoteParent(s SpanID) {
	b.mu.Lock()
	b.remote = s
	b.root.Parent = s
	b.mu.Unlock()
}

// SetPrograms fixes the snapshot's program order to the submission
// order — the determinism lever: arrival order varies with
// parallelism, submission order does not.
func (b *TraceBuilder) SetPrograms(names []string) {
	b.mu.Lock()
	b.order = append([]string(nil), names...)
	b.mu.Unlock()
}

// Phase records an explicit lifecycle span parented to the root —
// queue wait and other phases the event stream does not carry.
func (b *TraceBuilder) Phase(name string, start, dur time.Duration) {
	b.mu.Lock()
	b.phases = append(b.phases, Span{
		ID: DeriveSpanID(b.id, "phase", name), Parent: b.root.ID,
		Kind: KindPhase, Name: name, Start: start, Dur: dur,
	})
	b.mu.Unlock()
}

// End closes the root span with the run's duration.
func (b *TraceBuilder) End(dur time.Duration) {
	b.mu.Lock()
	b.root.Dur = dur
	b.mu.Unlock()
}

// Emit implements obs.Sink.
func (b *TraceBuilder) Emit(ev obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Prog == "" {
		b.sharedEvent(ev)
		return
	}
	p := b.prog(ev.Prog, ev.T)
	ord := p.n
	p.n++ // every event consumes an ordinal, even kinds that add no span
	sp := Span{Parent: p.span.ID, Prog: ev.Prog, Start: ev.T, Detail: ev.Detail}
	switch ev.Kind {
	case obs.EvStageStart:
		stage := ev.Stage.String()
		p.attempts[stage]++
		sp.Kind, sp.Name, sp.Stage, sp.Attempt, sp.Detail = KindStage, stage, stage, p.attempts[stage], ""
		sp.ID = DeriveSpanID(b.id, "event", ev.Prog, ordinal(ord))
		p.children = append(p.children, sp)
		p.open = len(p.children) - 1
		return
	case obs.EvStageEnd:
		if p.open >= 0 {
			p.children[p.open].Dur = ev.Dur
			p.last, p.open = p.open, -1
		}
		return
	case obs.EvOutcome:
		p.span.Label, p.span.Detail = ev.Label, ev.Detail
		p.span.Dur = ev.T - p.span.Start
		return
	case obs.EvRetry:
		// The supervisor closes the failed stage attempt before emitting
		// the retry, so the retry parents to the last closed attempt.
		p.retries[ev.Label]++
		sp.Kind, sp.Name, sp.Stage, sp.Attempt = KindRetry, "retry", ev.Label, p.retries[ev.Label]
		if p.last >= 0 {
			sp.Parent = p.children[p.last].ID
		}
	case obs.EvCacheHit, obs.EvCacheMiss, obs.EvCacheEvict:
		sp.Kind, sp.Name, sp.Label = KindCache, ev.Label, cacheResult(ev.Kind)
		sp.Parent = p.openParent()
	case obs.EvVerify:
		sp.Kind, sp.Name, sp.Label = KindVerdict, "verdict", ev.Label
		sp.Parent = p.openParent()
	case obs.EvDecision:
		sp.Kind, sp.Name, sp.Label = KindDecision, ev.Label, "declined"
		if ev.Accepted {
			sp.Label = "accepted"
		}
		sp.Parent = p.openParent()
	case obs.EvHazard:
		sp.Kind, sp.Name = KindHazard, ev.Label
		sp.Parent = p.openParent()
	case obs.EvPanic, obs.EvTimeout:
		sp.Kind, sp.Name, sp.Label = KindFault, ev.Kind.String(), ev.Label
		sp.Parent = p.openParent()
	default:
		// DML rewrites are per-statement (high cardinality): they stay in
		// the event log and add no span, but still consumed an ordinal so
		// later span IDs are unchanged by kind filtering.
		return
	}
	sp.ID = DeriveSpanID(b.id, "event", ev.Prog, ordinal(ord))
	p.children = append(p.children, sp)
}

// openParent returns the open stage attempt's ID, or the program span.
func (p *progSpans) openParent() SpanID {
	if p.open >= 0 {
		return p.children[p.open].ID
	}
	return p.span.ID
}

func cacheResult(k obs.EventKind) string {
	switch k {
	case obs.EvCacheHit:
		return "hit"
	case obs.EvCacheMiss:
		return "miss"
	}
	return "evict"
}

// prog returns (creating on first event) one program's subtree.
func (b *TraceBuilder) prog(name string, t time.Duration) *progSpans {
	p := b.progs[name]
	if p == nil {
		p = &progSpans{
			span: Span{
				ID: DeriveSpanID(b.id, "program", name), Parent: b.root.ID,
				Kind: KindProgram, Name: name, Prog: name, Start: t,
			},
			open: -1, last: -1,
			attempts: map[string]int{},
			retries:  map[string]int{},
		}
		b.progs[name] = p
		b.seen = append(b.seen, name)
	}
	return p
}

// sharedEvent attaches a pair-scoped event (Prog == "") to the root.
// These are emitted serially during pair preparation, so arrival-order
// ordinals are deterministic; concurrent memo evictions are the one
// exception and are documented as arrival-ordered.
func (b *TraceBuilder) sharedEvent(ev obs.Event) {
	sp := Span{
		ID:     DeriveSpanID(b.id, "shared", ordinal(len(b.shared))),
		Parent: b.root.ID, Start: ev.T, Detail: ev.Detail,
	}
	switch ev.Kind {
	case obs.EvCacheHit, obs.EvCacheMiss, obs.EvCacheEvict:
		sp.Kind, sp.Name, sp.Label = KindCache, ev.Label, cacheResult(ev.Kind)
	default:
		sp.Kind, sp.Name, sp.Label = KindPhase, ev.Kind.String(), ev.Label
	}
	b.shared = append(b.shared, sp)
}

// Snapshot freezes the tree: root, phases, pair-scoped spans, then
// each program's span and children — listed programs (SetPrograms) in
// submission order, any unlisted stragglers after them sorted by name.
// Safe to call mid-run; the snapshot shares nothing with the builder.
func (b *TraceBuilder) Snapshot() *Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	tr := &Trace{TraceID: b.id, Remote: b.remote}
	tr.Spans = append(tr.Spans, b.root)
	tr.Spans = append(tr.Spans, b.phases...)
	tr.Spans = append(tr.Spans, b.shared...)
	listed := map[string]bool{}
	emit := func(name string) {
		if p := b.progs[name]; p != nil {
			tr.Spans = append(tr.Spans, p.span)
			tr.Spans = append(tr.Spans, p.children...)
		}
	}
	for _, name := range b.order {
		if !listed[name] {
			listed[name] = true
			emit(name)
		}
	}
	var rest []string
	for _, name := range b.seen {
		if !listed[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		emit(name)
	}
	return tr
}
