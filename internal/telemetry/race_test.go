package telemetry

// The satellite-3 hammer: eight goroutines pushing events into a
// TraceBuilder and observations into a Registry while two scrapers
// snapshot the trace and render the Prometheus exposition mid-run.
// Meaningful under -race (the CI telemetry leg); still a liveness
// check without it.

import (
	"io"
	"strconv"
	"sync"
	"testing"
	"time"

	"progconv/internal/obs"
)

func TestConcurrentEmitAndScrape(t *testing.T) {
	id := DeriveTraceID("race-test")
	b := NewTraceBuilder(id, "race")
	r := NewRegistry()
	in := NewInstruments(r)
	sink := obs.MultiSink(b, in.StageSink())
	e := obs.NewEmitter(sink)

	var names []string
	for i := 0; i < 8; i++ {
		names = append(names, "P"+strconv.Itoa(i))
	}
	b.SetPrograms(names)

	const rounds = 200
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapers.Add(2)
	go func() { // the /v1/jobs/{id}/trace scraper
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr := b.Snapshot()
			if tr.TraceID != id {
				t.Error("snapshot lost the trace ID")
				return
			}
			for _, sp := range tr.Spans {
				_ = sp.ID.String()
			}
		}
	}()
	go func() { // the /metrics scraper
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.WriteSummary(io.Discard)
		}
	}()

	var writers sync.WaitGroup
	for _, name := range names {
		writers.Add(1)
		go func(prog string) {
			defer writers.Done()
			for i := 0; i < rounds; i++ {
				e.StageStart(prog, obs.StageAnalyze)
				e.Hazard(prog, "order-dependence", "m")
				e.StageEnd(prog, obs.StageAnalyze, time.Duration(i)*time.Microsecond)
				e.StageStart(prog, obs.StageConvert)
				e.Rewrite(prog, "get", "EMP")
				e.StageEnd(prog, obs.StageConvert, time.Microsecond)
				in.QueueWait.ObserveDuration("", time.Duration(i)*time.Microsecond)
				in.ObserveDataPlane(obs.DataPlane{IndexProbes: int64(i)})
			}
			e.Outcome(prog, "auto", "done")
		}(name)
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()

	// The final snapshot is complete and structurally sound.
	tr := b.Snapshot()
	progs := tr.ByKind(KindProgram)
	if len(progs) != 8 {
		t.Fatalf("program spans = %d, want 8", len(progs))
	}
	stages := tr.ByKind(KindStage)
	if len(stages) != 8*rounds*2 {
		t.Errorf("stage spans = %d, want %d", len(stages), 8*rounds*2)
	}
	if got := in.QueueWait.Count(""); got != 8*rounds {
		t.Errorf("queue-wait observations = %d, want %d", got, 8*rounds)
	}
	if got := in.Stage.Count("analyze"); got != 8*rounds {
		t.Errorf("analyze observations = %d, want %d", got, 8*rounds)
	}
}
