package telemetry

// The operational debug plane shared by cmd/progconv -debug-addr and
// cmd/progconvd -debug-addr: net/http/pprof profiles, expvar, a
// Prometheus scrape, and the /statusz human-readable snapshot. Both
// front ends mount the same mux, so profiling a stuck CLI run works
// exactly like profiling the daemon.

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// StatusSection is one caller-supplied block of the /statusz page.
type StatusSection struct {
	Title string
	Write func(io.Writer)
}

// DebugMux mounts the shared debug plane:
//
//	/debug/pprof/*  CPU, heap, goroutine, … profiles
//	/debug/vars     expvar JSON (anything published by the process)
//	/metrics        the supplied Prometheus handler (optional)
//	/statusz        the supplied status handler (optional, also at /)
func DebugMux(metrics, statusz http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	if statusz != nil {
		mux.Handle("/statusz", statusz)
		mux.Handle("/{$}", statusz)
	}
	return mux
}

// StatuszHandler renders the human-readable process snapshot: build
// info and uptime first, then each caller section.
func StatuszHandler(start time.Time, sections ...StatusSection) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "== build ==\n")
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
			fmt.Fprintf(w, "  module   %s %s\n", bi.Main.Path, bi.Main.Version)
		}
		fmt.Fprintf(w, "  go       %s\n", runtime.Version())
		fmt.Fprintf(w, "  os/arch  %s/%s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Fprintf(w, "\n== process ==\n")
		fmt.Fprintf(w, "  uptime      %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "  goroutines  %d\n", runtime.NumGoroutine())
		fmt.Fprintf(w, "  gomaxprocs  %d\n", runtime.GOMAXPROCS(0))
		for _, s := range sections {
			fmt.Fprintf(w, "\n== %s ==\n", s.Title)
			s.Write(w)
		}
	})
}
