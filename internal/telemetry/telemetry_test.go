package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"progconv/internal/obs"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := DeriveTraceID("schema-a", "schema-b", "prog")
	sid := DeriveSpanID(tid, "root")
	h := Traceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	gotT, gotS, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gotT != tid || gotS != sid {
		t.Errorf("round trip = (%s, %s), want (%s, %s)", gotT, gotS, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	for name, h := range map[string]string{
		"empty":          "",
		"short":          "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",
		"bad dashes":     "00x0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331x01",
		"version ff":     "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"bad hex":        "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",
		"zero trace id":  "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id": "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"ver00 too long": valid + "-extra",
	} {
		if _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: %q accepted, want error", name, h)
		}
	}
}

func TestDeriveIDsDeterministicAndDistinct(t *testing.T) {
	a := DeriveTraceID("x", "y")
	if a != DeriveTraceID("x", "y") {
		t.Error("DeriveTraceID not deterministic")
	}
	if a == DeriveTraceID("x", "z") {
		t.Error("distinct inputs collided")
	}
	// Length-prefixed hashing: ("ab","c") must differ from ("a","bc").
	if DeriveTraceID("ab", "c") == DeriveTraceID("a", "bc") {
		t.Error("part boundaries are ambiguous")
	}
	s1 := DeriveSpanID(a, "event", "P", "0")
	if s1 != DeriveSpanID(a, "event", "P", "0") {
		t.Error("DeriveSpanID not deterministic")
	}
	if s1 == DeriveSpanID(a, "event", "P", "1") {
		t.Error("distinct span paths collided")
	}
	if a.IsZero() || s1.IsZero() {
		t.Error("derived IDs must be non-zero")
	}
}

// synthetic event stream: one program through analyze (with a cache
// miss and a retry), then convert, an accepted decision, a verdict,
// and the outcome. Rewrites consume ordinals but add no spans.
func buildTestTrace(id TraceID) *TraceBuilder {
	b := NewTraceBuilder(id, "test-job")
	b.SetPrograms([]string{"P1"})
	e := obs.NewEmitter(b)
	e.CacheMiss("", "pair", "k1")
	e.StageStart("P1", obs.StageAnalyze)
	e.CacheMiss("P1", "analysis", "k2")
	e.Hazard("P1", "order-dependence", "sort order differs")
	e.StageEnd("P1", obs.StageAnalyze, 5*time.Microsecond)
	e.Retry("P1", "analyze", 1, time.Millisecond, "transient: boom")
	e.StageStart("P1", obs.StageAnalyze)
	e.StageEnd("P1", obs.StageAnalyze, 3*time.Microsecond)
	e.StageStart("P1", obs.StageConvert)
	e.Rewrite("P1", "get", "EMP")
	e.Decision("P1", "order-change", "accepted order change", true)
	e.StageEnd("P1", obs.StageConvert, 7*time.Microsecond)
	e.StageStart("P1", obs.StageVerify)
	e.Verify("P1", true, "outputs equal")
	e.StageEnd("P1", obs.StageVerify, 2*time.Microsecond)
	e.Outcome("P1", "auto", "all statements matched")
	return b
}

func TestTraceBuilderStructure(t *testing.T) {
	id := DeriveTraceID("structure-test")
	tr := buildTestTrace(id).Snapshot()

	root := tr.Root()
	if root.Kind != KindJob || root.Name != "test-job" {
		t.Fatalf("root = %+v, want job span named test-job", root)
	}
	if tr.TraceID != id {
		t.Errorf("TraceID = %s, want %s", tr.TraceID, id)
	}
	// The pair-scoped cache miss hangs off the root.
	shared := tr.ByKind(KindCache)
	if len(shared) != 2 { // pair miss + analysis miss
		t.Fatalf("cache spans = %d, want 2", len(shared))
	}
	if shared[0].Parent != root.ID || shared[0].Label != "miss" || shared[0].Name != "pair" {
		t.Errorf("pair cache span = %+v, want miss/pair under root", shared[0])
	}

	progs := tr.ByKind(KindProgram)
	if len(progs) != 1 || progs[0].Name != "P1" || progs[0].Parent != root.ID {
		t.Fatalf("program spans = %+v", progs)
	}
	if progs[0].Label != "auto" {
		t.Errorf("program label = %q, want auto (from the outcome)", progs[0].Label)
	}

	stages := tr.ByKind(KindStage)
	if len(stages) != 4 {
		t.Fatalf("stage spans = %d, want 4 (analyze x2, convert, verify)", len(stages))
	}
	if stages[0].Stage != "analyze" || stages[0].Attempt != 1 ||
		stages[1].Stage != "analyze" || stages[1].Attempt != 2 {
		t.Errorf("analyze attempts = %+v, %+v", stages[0], stages[1])
	}
	if stages[0].Dur != 5*time.Microsecond {
		t.Errorf("first analyze dur = %v, want 5µs", stages[0].Dur)
	}
	for _, sp := range stages {
		if sp.Parent != progs[0].ID {
			t.Errorf("stage %s attempt %d parented to %s, want program span", sp.Stage, sp.Attempt, sp.Parent)
		}
	}

	// The retry parents to the failed (closed) first analyze attempt.
	retries := tr.ByKind(KindRetry)
	if len(retries) != 1 || retries[0].Parent != stages[0].ID {
		t.Errorf("retry spans = %+v, want one under first analyze attempt", retries)
	}
	// The hazard was found inside the first analyze attempt.
	hazards := tr.ByKind(KindHazard)
	if len(hazards) != 1 || hazards[0].Parent != stages[0].ID {
		t.Errorf("hazard spans = %+v, want one under first analyze attempt", hazards)
	}
	// The verdict lives inside the verify stage attempt.
	verdicts := tr.ByKind(KindVerdict)
	if len(verdicts) != 1 || verdicts[0].Parent != stages[3].ID || verdicts[0].Label != "pass" {
		t.Errorf("verdict spans = %+v", verdicts)
	}
	decisions := tr.ByKind(KindDecision)
	if len(decisions) != 1 || decisions[0].Label != "accepted" || decisions[0].Parent != stages[2].ID {
		t.Errorf("decision spans = %+v", decisions)
	}
	// No rewrite spans — they stay in the event log.
	for _, sp := range tr.Spans {
		if sp.Name == "get" {
			t.Errorf("rewrite leaked into the trace: %+v", sp)
		}
	}
	// Every non-root span's parent exists.
	ids := map[SpanID]bool{}
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range tr.Spans[1:] {
		if !ids[sp.Parent] {
			t.Errorf("span %s (%s) has unknown parent %s", sp.ID, sp.Name, sp.Parent)
		}
	}
}

func TestTraceBuilderDeterministicIDs(t *testing.T) {
	id := DeriveTraceID("determinism-test")
	a, b := buildTestTrace(id).Snapshot(), buildTestTrace(id).Snapshot()
	if len(a.Spans) != len(b.Spans) {
		t.Fatalf("span counts differ: %d vs %d", len(a.Spans), len(b.Spans))
	}
	for i := range a.Spans {
		if a.Spans[i].ID != b.Spans[i].ID || a.Spans[i].Parent != b.Spans[i].Parent {
			t.Errorf("span %d differs: %+v vs %+v", i, a.Spans[i], b.Spans[i])
		}
	}
}

func TestTraceBuilderRemoteParent(t *testing.T) {
	id := DeriveTraceID("remote-test")
	b := NewTraceBuilder(id, "j")
	remote := DeriveSpanID(id, "caller")
	b.SetRemoteParent(remote)
	tr := b.Snapshot()
	if tr.Remote != remote {
		t.Errorf("Remote = %s, want %s", tr.Remote, remote)
	}
	if tr.Root().Parent != remote {
		t.Errorf("root parent = %s, want the remote span", tr.Root().Parent)
	}
}

func TestRegistryWritePrometheus(t *testing.T) {
	r := NewRegistry()
	in := NewInstruments(r)
	in.JobDur.ObserveDuration("", 3*time.Millisecond)
	in.Stage.ObserveDuration("analyze", 5*time.Microsecond)
	in.ObserveDataPlane(obs.DataPlane{IndexProbes: 12, IndexScans: 2})
	r.Gauge("progconv_test_gauge", "A test gauge.", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		// Zero-count series export unconditionally.
		`progconv_queue_wait_seconds_count 0`,
		`progconv_job_duration_seconds_count 1`,
		`progconv_stage_latency_seconds_bucket{stage="analyze",le="1e-06"} 0`,
		`progconv_stage_latency_seconds_bucket{stage="analyze",le="6.4e-05"} 1`,
		`progconv_stage_latency_seconds_count{stage="convert"} 0`,
		`progconv_stage_latency_seconds_count{stage="verify"} 0`,
		`progconv_dataplane_probe_count_bucket{op="probe",le="16"} 1`,
		`progconv_dataplane_probe_count_sum{op="probe"} 12`,
		"# TYPE progconv_queue_wait_seconds histogram",
		"# TYPE progconv_test_gauge gauge",
		"progconv_test_gauge 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exactly 4 histogram families.
	if n := strings.Count(out, " histogram\n"); n != 4 {
		t.Errorf("histogram families = %d, want 4", n)
	}
	// Byte-stable across scrapes with no new observations.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two scrapes of an idle registry differ")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	f := r.Family("edges", "h", "", LatencyBuckets())
	f.Observe("", 1e-6) // exactly on the first bound: le is inclusive
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `edges_bucket{le="1e-06"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", buf.String())
	}
	// Above the last finite bound: only +Inf.
	f2 := r.Family("over", "h", "", CountBuckets())
	f2.Observe("", 1e9)
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `over_bucket{le="262144"} 0`) || !strings.Contains(out, `over_bucket{le="+Inf"} 1`) {
		t.Errorf("overflow observation mishandled:\n%s", out)
	}
}

func TestDebugMuxAndStatusz(t *testing.T) {
	r := NewRegistry()
	NewInstruments(r)
	metrics := httptest.NewServer(DebugMux(
		writeHandler(func(w *bytes.Buffer) { r.WritePrometheus(w) }),
		StatuszHandler(time.Now(), StatusSection{
			Title: "histograms",
			Write: func(w io.Writer) { r.WriteSummary(w) },
		}),
	))
	defer metrics.Close()

	for path, want := range map[string]string{
		"/metrics":      "progconv_queue_wait_seconds",
		"/statusz":      "histograms",
		"/debug/vars":   "cmdline",
		"/debug/pprof/": "goroutine",
		"/":             "== process ==", // the root serves the statusz snapshot
	} {
		res, err := metrics.Client().Get(metrics.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, res.StatusCode)
			continue
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s missing %q:\n%.400s", path, want, body)
		}
	}
}

// writeHandler adapts a buffer-writing function to http.Handler.
func writeHandler(fn func(*bytes.Buffer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		fn(&buf)
		w.Write(buf.Bytes())
	})
}

func TestWriteChromeTraceFromSpans(t *testing.T) {
	id := DeriveTraceID("chrome-test")
	tr := buildTestTrace(id).Snapshot()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	// job + program + 4 stage attempts are complete events; the two
	// cache probes, hazard, retry, decision and verdict are instants.
	if complete != 6 {
		t.Errorf("complete events = %d, want 6", complete)
	}
	if instant != 6 {
		t.Errorf("instant events = %d, want 6", instant)
	}
	// Nil trace stays valid JSON.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Errorf("nil trace invalid: %v", err)
	}
}
