// Package hierstore is the hierarchical (IMS-style) engine: segment
// occurrences arranged in hierarchic sequence, navigated by DL/I calls
// (GU, GN, GNP, ISRT, DLET, REPL) with segment search arguments.
//
// It exists because the paper's survey of program-conversion research
// leans on hierarchical systems — Mehl & Wang's order transformation of
// IMS structures (§2.2) is reproduced on this engine — and because the
// framework (§5.1) must "span data models".
package hierstore

import (
	"fmt"
	"sort"
	"strings"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// Status is the DL/I status code, following IMS's two-character
// convention: "  " means success.
type Status string

// DL/I status codes.
const (
	OK Status = "  " // call succeeded
	GE Status = "GE" // segment not found
	GB Status = "GB" // end of database reached on get-next
	GP Status = "GP" // no parentage established for GNP
	II Status = "II" // insert would duplicate an existing segment
	AC Status = "AC" // SSA names segments out of hierarchic order
	AJ Status = "AJ" // malformed SSA (unknown segment or field)
	DJ Status = "DJ" // DLET/REPL without a preceding successful get
	DA Status = "DA" // REPL attempted to change the sequence field
)

// String renders the status for reports ("  " prints as OK).
func (s Status) String() string {
	if s == OK {
		return "OK"
	}
	return string(s)
}

// CompareOp is the comparison operator inside a qualified SSA.
type CompareOp string

// SSA comparison operators.
const (
	EQ  CompareOp = "="
	NE  CompareOp = "<>"
	LT  CompareOp = "<"
	LE  CompareOp = "<="
	GT  CompareOp = ">"
	GE_ CompareOp = ">="
)

// Qual is one qualification of an SSA: FIELD op VALUE.
type Qual struct {
	Field string
	Op    CompareOp
	Value value.Value
}

func (q Qual) matches(rec *value.Record) bool {
	got := rec.MustGet(q.Field)
	c, ok := got.Compare(q.Value)
	if !ok {
		return false
	}
	switch q.Op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE_:
		return c >= 0
	}
	return false
}

// SSA is a segment search argument: a segment name plus optional
// qualifications, all of which must hold.
type SSA struct {
	Segment string
	Quals   []Qual
}

// Q is a convenience constructor for a qualified SSA.
func Q(segment, field string, op CompareOp, v value.Value) SSA {
	return SSA{Segment: segment, Quals: []Qual{{Field: field, Op: op, Value: v}}}
}

// U is a convenience constructor for an unqualified SSA.
func U(segment string) SSA { return SSA{Segment: segment} }

// SegID identifies a segment occurrence. IDs are never reused.
type SegID int64

type seg struct {
	id     SegID
	typ    *schema.Segment
	data   *value.Record
	parent SegID // 0 for root occurrences
	// children maps child segment type name to ordered occurrence IDs.
	children map[string][]SegID
}

// DB is an in-memory hierarchical database instance.
type DB struct {
	schema *schema.Hierarchy
	segs   map[SegID]*seg
	roots  []SegID
	nextID SegID
}

// NewDB creates an empty database for the hierarchy. The schema must be
// valid; NewDB panics otherwise.
func NewDB(h *schema.Hierarchy) *DB {
	if err := h.Validate(); err != nil {
		panic(fmt.Sprintf("hierstore: invalid schema: %v", err))
	}
	return &DB{schema: h, segs: make(map[SegID]*seg), nextID: 1}
}

// Schema returns the database's hierarchy.
func (db *DB) Schema() *schema.Hierarchy { return db.schema }

// Count returns the number of occurrences of the segment type.
func (db *DB) Count(segType string) int {
	n := 0
	for _, s := range db.segs {
		if s.typ.Name == segType {
			n++
		}
	}
	return n
}

// Data returns a copy of the occurrence's fields, or nil for a stale ID.
func (db *DB) Data(id SegID) *value.Record {
	s, ok := db.segs[id]
	if !ok {
		return nil
	}
	return s.data.Clone()
}

// TypeOf returns the segment type name of an occurrence, or "".
func (db *DB) TypeOf(id SegID) string {
	if s, ok := db.segs[id]; ok {
		return s.typ.Name
	}
	return ""
}

// ParentOf returns the parent occurrence, or 0 for roots and stale IDs.
func (db *DB) ParentOf(id SegID) SegID {
	if s, ok := db.segs[id]; ok {
		return s.parent
	}
	return 0
}

// ChildrenOf returns the ordered child occurrences of the given child
// segment type. The slice is a copy.
func (db *DB) ChildrenOf(id SegID, childType string) []SegID {
	s, ok := db.segs[id]
	if !ok {
		return nil
	}
	return append([]SegID(nil), s.children[childType]...)
}

// Roots returns the root occurrences in sequence order. The slice is a
// copy.
func (db *DB) Roots() []SegID { return append([]SegID(nil), db.roots...) }

// hierarchicSequence appends the subtree of id in hierarchic (preorder)
// sequence: the segment, then each child type in schema order, each
// occurrence in sequence order.
func (db *DB) hierarchicSequence(id SegID, out *[]SegID) {
	s := db.segs[id]
	*out = append(*out, id)
	for _, childType := range s.typ.Children {
		for _, c := range s.children[childType.Name] {
			db.hierarchicSequence(c, out)
		}
	}
}

// Sequence returns every occurrence in database hierarchic sequence.
func (db *DB) Sequence() []SegID {
	var out []SegID
	for _, r := range db.roots {
		db.hierarchicSequence(r, &out)
	}
	return out
}

// insertOrdered places id among siblings, ascending by the type's
// sequence field (insertion order for types without one, and among
// twins with equal sequence values).
func insertOrdered(db *DB, lst []SegID, s *seg) []SegID {
	if s.typ.Seq == "" {
		return append(lst, s.id)
	}
	pos := sort.Search(len(lst), func(i int) bool {
		other := db.segs[lst[i]]
		c, _ := other.data.MustGet(s.typ.Seq).Compare(s.data.MustGet(s.typ.Seq))
		return c > 0
	})
	lst = append(lst, 0)
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = s.id
	return lst
}

// Clone returns an independent deep copy, preserving segment IDs.
func (db *DB) Clone() *DB {
	c := NewDB(db.schema.Clone())
	c.nextID = db.nextID
	c.roots = append([]SegID(nil), db.roots...)
	for id, s := range db.segs {
		cs := &seg{
			id:       s.id,
			typ:      c.schema.Segment(s.typ.Name),
			data:     s.data.Clone(),
			parent:   s.parent,
			children: make(map[string][]SegID, len(s.children)),
		}
		for t, lst := range s.children {
			cs.children[t] = append([]SegID(nil), lst...)
		}
		c.segs[id] = cs
	}
	return c
}

// Session is a PCB: the position and parentage of one program against the
// database, plus the DL/I status code register.
type Session struct {
	db        *DB
	status    Status
	position  SegID // current position in hierarchic sequence, 0 = before first
	parentage SegID // parentage established by the last successful GU/GN/GNP
}

// NewSession opens a PCB on the database.
func NewSession(db *DB) *Session { return &Session{db: db} }

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Status returns the status code of the last call.
func (s *Session) Status() Status { return s.status }

// Position returns the current segment occurrence, or 0.
func (s *Session) Position() SegID { return s.position }

func (s *Session) fail(st Status) Status {
	s.status = st
	return st
}

// checkSSAs validates an SSA list: segments exist, qualification fields
// exist, and the segments form a root-to-target path in the hierarchy.
func (s *Session) checkSSAs(ssas []SSA) Status {
	if len(ssas) == 0 {
		return OK
	}
	for _, a := range ssas {
		st := s.db.schema.Segment(a.Segment)
		if st == nil {
			return AJ
		}
		for _, q := range a.Quals {
			if st.Field(q.Field) == nil {
				return AJ
			}
		}
	}
	// Path check: each SSA's segment must be an ancestor type of the next.
	for i := 0; i+1 < len(ssas); i++ {
		p := s.db.schema.Parent(ssas[i+1].Segment)
		if p == nil || p.Name != ssas[i].Segment {
			return AC
		}
	}
	return OK
}

func (a SSA) matches(rec *value.Record) bool {
	for _, q := range a.Quals {
		if !q.matches(rec) {
			return false
		}
	}
	return true
}

// pathMatches reports whether the occurrence and its ancestors satisfy
// the SSA path (last SSA = the occurrence's own type).
func (s *Session) pathMatches(id SegID, ssas []SSA) bool {
	sg := s.db.segs[id]
	if sg.typ.Name != ssas[len(ssas)-1].Segment {
		return false
	}
	cur := sg
	for i := len(ssas) - 1; i >= 0; i-- {
		if cur == nil || cur.typ.Name != ssas[i].Segment || !ssas[i].matches(cur.data) {
			return false
		}
		cur = s.db.segs[cur.parent]
	}
	return true
}

// GU implements Get Unique: position at the first segment in hierarchic
// sequence satisfying the SSA path, searching from the start.
func (s *Session) GU(ssas ...SSA) (*value.Record, Status) {
	if st := s.checkSSAs(ssas); st != OK {
		return nil, s.fail(st)
	}
	if len(ssas) == 0 {
		// GU with no SSA: first root.
		if len(s.db.roots) == 0 {
			return nil, s.fail(GE)
		}
		return s.arrive(s.db.roots[0])
	}
	for _, id := range s.db.Sequence() {
		if s.pathMatches(id, ssas) {
			return s.arrive(id)
		}
	}
	return nil, s.fail(GE)
}

// GN implements Get Next: advance in hierarchic sequence from the current
// position to the next segment satisfying the SSAs (any segment if none).
func (s *Session) GN(ssas ...SSA) (*value.Record, Status) {
	if st := s.checkSSAs(ssas); st != OK {
		return nil, s.fail(st)
	}
	seqn := s.db.Sequence()
	start := 0
	if s.position != 0 {
		for i, id := range seqn {
			if id == s.position {
				start = i + 1
				break
			}
		}
	}
	for _, id := range seqn[start:] {
		if len(ssas) == 0 || s.pathMatches(id, ssas) {
			return s.arrive(id)
		}
	}
	if len(ssas) == 0 {
		return nil, s.fail(GB)
	}
	return nil, s.fail(GE)
}

// GNP implements Get Next Within Parent: like GN but only within the
// descendants of the parentage position.
func (s *Session) GNP(ssas ...SSA) (*value.Record, Status) {
	if st := s.checkSSAs(ssas); st != OK {
		return nil, s.fail(st)
	}
	if s.parentage == 0 || !s.exists(s.parentage) {
		return nil, s.fail(GP)
	}
	var subtree []SegID
	s.db.hierarchicSequence(s.parentage, &subtree)
	subtree = subtree[1:] // exclude the parent itself
	start := 0
	if s.position != 0 && s.position != s.parentage {
		for i, id := range subtree {
			if id == s.position {
				start = i + 1
				break
			}
		}
	}
	for _, id := range subtree[start:] {
		if len(ssas) == 0 || s.pathMatches(id, ssas) {
			// GNP moves position but keeps parentage.
			sg := s.db.segs[id]
			s.position = id
			s.status = OK
			return sg.data.Clone(), OK
		}
	}
	return nil, s.fail(GE)
}

// arrive records a successful get: position and parentage move to id.
func (s *Session) arrive(id SegID) (*value.Record, Status) {
	s.position = id
	s.parentage = id
	s.status = OK
	return s.db.segs[id].data.Clone(), OK
}

func (s *Session) exists(id SegID) bool {
	_, ok := s.db.segs[id]
	return ok
}

// ISRT implements Insert: the last SSA names the segment type to insert
// (unqualified); any preceding SSAs select the parent path. A root
// segment is inserted with a single SSA. Twins with an equal sequence
// value are rejected with II, matching IMS's no-duplicate-keys rule.
func (s *Session) ISRT(data *value.Record, ssas ...SSA) Status {
	if len(ssas) == 0 {
		return s.fail(AJ)
	}
	if st := s.checkSSAs(ssas); st != OK {
		return s.fail(st)
	}
	target := s.db.schema.Segment(ssas[len(ssas)-1].Segment)
	// Validate the record shape against the segment type.
	rec := value.NewRecord()
	for _, f := range target.Fields {
		v, _ := data.Get(f.Name)
		if !v.IsNull() && v.Kind() != f.Kind {
			return s.fail(AJ)
		}
		rec.Set(f.Name, v)
	}
	for _, n := range data.Names() {
		if target.Field(n) == nil {
			return s.fail(AJ)
		}
	}

	var parentID SegID
	if len(ssas) == 1 {
		if s.db.schema.Root.Name != target.Name {
			return s.fail(AC) // non-root insert requires the parent path
		}
	} else {
		// Locate the parent by the leading SSAs.
		parentPath := ssas[:len(ssas)-1]
		found := false
		for _, id := range s.db.Sequence() {
			if s.pathMatches(id, parentPath) {
				parentID = id
				found = true
				break
			}
		}
		if !found {
			return s.fail(GE)
		}
	}

	// Duplicate check on the sequence field among twins.
	var siblings []SegID
	if parentID == 0 {
		siblings = s.db.roots
	} else {
		siblings = s.db.segs[parentID].children[target.Name]
	}
	if target.Seq != "" {
		for _, sib := range siblings {
			if s.db.segs[sib].data.MustGet(target.Seq).Equal(rec.MustGet(target.Seq)) {
				return s.fail(II)
			}
		}
	}

	sg := &seg{
		id:       s.db.nextID,
		typ:      target,
		data:     rec,
		parent:   parentID,
		children: make(map[string][]SegID),
	}
	s.db.nextID++
	s.db.segs[sg.id] = sg
	if parentID == 0 {
		s.db.roots = insertOrdered(s.db, s.db.roots, sg)
	} else {
		p := s.db.segs[parentID]
		p.children[target.Name] = insertOrdered(s.db, p.children[target.Name], sg)
	}
	s.position = sg.id
	s.parentage = sg.id
	return s.fail(OK)
}

// DLET implements Delete: removes the segment at the current position and
// its whole subtree (IMS deletes dependents with their parent), then
// clears the position.
func (s *Session) DLET() Status {
	if s.position == 0 || !s.exists(s.position) {
		return s.fail(DJ)
	}
	var doomed []SegID
	s.db.hierarchicSequence(s.position, &doomed)
	root := s.db.segs[s.position]
	if root.parent == 0 {
		for i, r := range s.db.roots {
			if r == root.id {
				s.db.roots = append(s.db.roots[:i], s.db.roots[i+1:]...)
				break
			}
		}
	} else {
		p := s.db.segs[root.parent]
		lst := p.children[root.typ.Name]
		for i, c := range lst {
			if c == root.id {
				p.children[root.typ.Name] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
	for _, id := range doomed {
		delete(s.db.segs, id)
	}
	s.position = 0
	s.parentage = 0
	return s.fail(OK)
}

// REPL implements Replace: overwrites the named fields of the segment at
// the current position. Changing the sequence field is refused with DA,
// as in IMS.
func (s *Session) REPL(data *value.Record) Status {
	if s.position == 0 || !s.exists(s.position) {
		return s.fail(DJ)
	}
	sg := s.db.segs[s.position]
	for _, n := range data.Names() {
		f := sg.typ.Field(n)
		if f == nil {
			return s.fail(AJ)
		}
		v := data.MustGet(n)
		if !v.IsNull() && v.Kind() != f.Kind {
			return s.fail(AJ)
		}
		if n == sg.typ.Seq && !v.Equal(sg.data.MustGet(n)) {
			return s.fail(DA)
		}
	}
	for _, n := range data.Names() {
		sg.data.Set(n, data.MustGet(n))
	}
	return s.fail(OK)
}

// Reset clears position and parentage, returning the PCB to the start of
// the database.
func (s *Session) Reset() {
	s.position = 0
	s.parentage = 0
	s.status = OK
}

// DumpSequence renders the database in hierarchic sequence for debugging
// and golden tests: one "TYPE{fields}" line per segment, indented by depth.
func (db *DB) DumpSequence() string {
	var b strings.Builder
	var walk func(id SegID, depth int)
	walk = func(id SegID, depth int) {
		sg := db.segs[id]
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sg.typ.Name)
		b.WriteString(sg.data.String())
		b.WriteByte('\n')
		for _, ct := range sg.typ.Children {
			for _, c := range sg.children[ct.Name] {
				walk(c, depth+1)
			}
		}
	}
	for _, r := range db.roots {
		walk(r, 0)
	}
	return b.String()
}
