package hierstore

import (
	"strings"
	"testing"

	"progconv/internal/schema"
	"progconv/internal/value"
)

// seedPersonnel loads the §4.1 hierarchy: two DEPT roots with EMPs.
func seedPersonnel(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := NewDB(schema.EmpDeptHierarchy())
	s := NewSession(db)
	depts := []struct{ d, n, m string }{
		{"D12", "ACCOUNTING", "SMITH"},
		{"D2", "SALES", "JONES"},
	}
	for _, d := range depts {
		st := s.ISRT(value.FromPairs("D#", d.d, "DNAME", d.n, "MGR", d.m), U("DEPT"))
		if st != OK {
			t.Fatalf("ISRT DEPT %s: %v", d.d, st)
		}
	}
	emps := []struct {
		dept, e, n string
		age, yos   int
	}{
		{"D12", "E3", "ADAMS", 45, 12},
		{"D12", "E1", "BAKER", 28, 3},
		{"D2", "E2", "CLARK", 33, 3},
	}
	for _, e := range emps {
		st := s.ISRT(
			value.FromPairs("E#", e.e, "ENAME", e.n, "AGE", e.age, "YEAR-OF-SERVICE", e.yos),
			Q("DEPT", "D#", EQ, value.Str(e.dept)), U("EMP"))
		if st != OK {
			t.Fatalf("ISRT EMP %s: %v", e.e, st)
		}
	}
	s.Reset()
	return db, s
}

func TestHierarchicSequenceOrder(t *testing.T) {
	db, _ := seedPersonnel(t)
	// Roots ordered by D# ("D12" < "D2" lexically), EMPs by E#.
	dump := db.DumpSequence()
	want := []string{"D12", "E1", "E3", "D2", "E2"}
	pos := -1
	for _, w := range want {
		p := strings.Index(dump, w+",")
		if p < 0 {
			p = strings.Index(dump, w+"}")
		}
		if p <= pos {
			t.Fatalf("sequence order broken around %s:\n%s", w, dump)
		}
		pos = p
	}
}

func TestGUQualified(t *testing.T) {
	_, s := seedPersonnel(t)
	rec, st := s.GU(Q("DEPT", "D#", EQ, value.Str("D2")), U("EMP"))
	if st != OK {
		t.Fatalf("GU: %v", st)
	}
	if rec.MustGet("ENAME").AsString() != "CLARK" {
		t.Errorf("GU found %v", rec)
	}
	// Qualification on the target segment itself.
	rec, st = s.GU(Q("EMP", "AGE", GT, value.Of(40)))
	if st != OK || rec.MustGet("ENAME").AsString() != "ADAMS" {
		t.Errorf("GU target qual: %v %v", st, rec)
	}
	_, st = s.GU(Q("DEPT", "D#", EQ, value.Str("NOPE")), U("EMP"))
	if st != GE {
		t.Errorf("GU miss: %v", st)
	}
}

func TestGUWithoutSSA(t *testing.T) {
	db, s := seedPersonnel(t)
	rec, st := s.GU()
	if st != OK || rec.MustGet("D#").AsString() != "D12" {
		t.Errorf("GU(): %v %v", st, rec)
	}
	empty := NewSession(NewDB(schema.EmpDeptHierarchy()))
	if _, st := empty.GU(); st != GE {
		t.Errorf("GU on empty db: %v", st)
	}
	_ = db
}

func TestGNSweepsDatabase(t *testing.T) {
	_, s := seedPersonnel(t)
	var names []string
	_, st := s.GN(U("EMP"))
	for st == OK {
		rec := lastRec(t, s)
		names = append(names, rec.MustGet("ENAME").AsString())
		_, st = s.GN(U("EMP"))
	}
	if st != GE {
		t.Errorf("final GN status: %v", st)
	}
	if strings.Join(names, ",") != "BAKER,ADAMS,CLARK" {
		t.Errorf("GN order = %v", names)
	}
}

func lastRec(t *testing.T, s *Session) *value.Record {
	t.Helper()
	rec := s.DB().Data(s.Position())
	if rec == nil {
		t.Fatal("no record at position")
	}
	return rec
}

func TestGNUnqualifiedEndsWithGB(t *testing.T) {
	_, s := seedPersonnel(t)
	n := 0
	_, st := s.GN()
	for st == OK {
		n++
		_, st = s.GN()
	}
	if st != GB || n != 5 {
		t.Errorf("GN swept %d segments, final %v", n, st)
	}
}

func TestGNPWithinParent(t *testing.T) {
	_, s := seedPersonnel(t)
	if _, st := s.GU(Q("DEPT", "D#", EQ, value.Str("D12"))); st != OK {
		t.Fatal(st)
	}
	var names []string
	_, st := s.GNP(U("EMP"))
	for st == OK {
		names = append(names, lastRec(t, s).MustGet("ENAME").AsString())
		_, st = s.GNP(U("EMP"))
	}
	if st != GE {
		t.Errorf("final GNP: %v", st)
	}
	// Only D12's employees, in E# order.
	if strings.Join(names, ",") != "BAKER,ADAMS" {
		t.Errorf("GNP names = %v", names)
	}
}

func TestGNPWithoutParentage(t *testing.T) {
	_, s := seedPersonnel(t)
	if _, st := s.GNP(U("EMP")); st != GP {
		t.Errorf("GNP without parentage: %v", st)
	}
}

func TestGNPQualified(t *testing.T) {
	_, s := seedPersonnel(t)
	s.GU(Q("DEPT", "D#", EQ, value.Str("D12")))
	rec, st := s.GNP(Q("EMP", "YEAR-OF-SERVICE", EQ, value.Of(3)))
	if st != OK || rec.MustGet("ENAME").AsString() != "BAKER" {
		t.Errorf("GNP qual: %v %v", st, rec)
	}
	if _, st = s.GNP(Q("EMP", "YEAR-OF-SERVICE", EQ, value.Of(3))); st != GE {
		t.Errorf("no second YOS=3 in D12: %v", st)
	}
}

func TestSSAValidation(t *testing.T) {
	_, s := seedPersonnel(t)
	if _, st := s.GU(U("NOPE")); st != AJ {
		t.Errorf("unknown segment: %v", st)
	}
	if _, st := s.GU(Q("DEPT", "NOPE", EQ, value.Of(1))); st != AJ {
		t.Errorf("unknown field: %v", st)
	}
	if _, st := s.GU(U("EMP"), U("DEPT")); st != AC {
		t.Errorf("out-of-order path: %v", st)
	}
}

func TestCompareOps(t *testing.T) {
	_, s := seedPersonnel(t)
	cases := []struct {
		op   CompareOp
		v    int64
		want string
	}{
		{EQ, 28, "BAKER"},
		{NE, 28, "ADAMS"},
		{GT, 40, "ADAMS"},
		{GE_, 45, "ADAMS"},
		{LT, 30, "BAKER"},
		{LE, 28, "BAKER"},
	}
	for _, tc := range cases {
		rec, st := s.GU(Q("EMP", "AGE", tc.op, value.Of(tc.v)))
		if st != OK || rec.MustGet("ENAME").AsString() != tc.want {
			t.Errorf("AGE %s %d: %v %v", tc.op, tc.v, st, rec)
		}
	}
	// Incomparable qualification matches nothing.
	if _, st := s.GU(Q("EMP", "AGE", EQ, value.Str("x"))); st != GE {
		t.Errorf("incomparable: %v", st)
	}
}

func TestISRTDuplicateTwin(t *testing.T) {
	_, s := seedPersonnel(t)
	st := s.ISRT(value.FromPairs("D#", "D12", "DNAME", "X", "MGR", "Y"), U("DEPT"))
	if st != II {
		t.Errorf("duplicate root: %v", st)
	}
	st = s.ISRT(
		value.FromPairs("E#", "E1", "ENAME", "DUP", "AGE", 1, "YEAR-OF-SERVICE", 1),
		Q("DEPT", "D#", EQ, value.Str("D12")), U("EMP"))
	if st != II {
		t.Errorf("duplicate twin: %v", st)
	}
	// Same E# under a different parent is fine.
	st = s.ISRT(
		value.FromPairs("E#", "E1", "ENAME", "OK", "AGE", 1, "YEAR-OF-SERVICE", 1),
		Q("DEPT", "D#", EQ, value.Str("D2")), U("EMP"))
	if st != OK {
		t.Errorf("twin under other parent: %v", st)
	}
}

func TestISRTErrors(t *testing.T) {
	_, s := seedPersonnel(t)
	if st := s.ISRT(value.NewRecord()); st != AJ {
		t.Errorf("no SSA: %v", st)
	}
	if st := s.ISRT(value.NewRecord(), U("EMP")); st != AC {
		t.Errorf("non-root single SSA: %v", st)
	}
	if st := s.ISRT(value.FromPairs("NOPE", 1), U("DEPT")); st != AJ {
		t.Errorf("unknown field: %v", st)
	}
	if st := s.ISRT(value.FromPairs("D#", 9, "DNAME", "X", "MGR", "Y"), U("DEPT")); st != AJ {
		t.Errorf("kind mismatch: %v", st)
	}
	st := s.ISRT(value.FromPairs("E#", "EX", "ENAME", "X", "AGE", 1, "YEAR-OF-SERVICE", 1),
		Q("DEPT", "D#", EQ, value.Str("NOPE")), U("EMP"))
	if st != GE {
		t.Errorf("parent not found: %v", st)
	}
}

func TestDLETRemovesSubtree(t *testing.T) {
	db, s := seedPersonnel(t)
	if _, st := s.GU(Q("DEPT", "D#", EQ, value.Str("D12"))); st != OK {
		t.Fatal(st)
	}
	if st := s.DLET(); st != OK {
		t.Fatal(st)
	}
	if db.Count("DEPT") != 1 || db.Count("EMP") != 1 {
		t.Errorf("after DLET: DEPT=%d EMP=%d", db.Count("DEPT"), db.Count("EMP"))
	}
	if st := s.DLET(); st != DJ {
		t.Errorf("DLET without position: %v", st)
	}
}

func TestDLETChildSegment(t *testing.T) {
	db, s := seedPersonnel(t)
	s.GU(Q("EMP", "E#", EQ, value.Str("E1")))
	if st := s.DLET(); st != OK {
		t.Fatal(st)
	}
	if db.Count("EMP") != 2 || db.Count("DEPT") != 2 {
		t.Error("child DLET removed too much")
	}
}

func TestREPL(t *testing.T) {
	_, s := seedPersonnel(t)
	s.GU(Q("EMP", "E#", EQ, value.Str("E1")))
	if st := s.REPL(value.FromPairs("AGE", 29)); st != OK {
		t.Fatal(st)
	}
	rec, _ := s.GU(Q("EMP", "E#", EQ, value.Str("E1")))
	if rec.MustGet("AGE").AsInt() != 29 {
		t.Error("REPL lost")
	}
	// Changing the sequence field is DA.
	if st := s.REPL(value.FromPairs("E#", "E9")); st != DA {
		t.Errorf("seq change: %v", st)
	}
	if st := s.REPL(value.FromPairs("NOPE", 1)); st != AJ {
		t.Errorf("unknown field: %v", st)
	}
	if st := s.REPL(value.FromPairs("AGE", "old")); st != AJ {
		t.Errorf("kind mismatch: %v", st)
	}
	s.Reset()
	if st := s.REPL(value.FromPairs("AGE", 1)); st != DJ {
		t.Errorf("REPL without position: %v", st)
	}
}

func TestDataLookups(t *testing.T) {
	db, s := seedPersonnel(t)
	rec, _ := s.GU(Q("EMP", "E#", EQ, value.Str("E1")))
	id := s.Position()
	if db.TypeOf(id) != "EMP" {
		t.Error("TypeOf")
	}
	p := db.ParentOf(id)
	if db.TypeOf(p) != "DEPT" {
		t.Error("ParentOf")
	}
	kids := db.ChildrenOf(p, "EMP")
	if len(kids) != 2 {
		t.Errorf("ChildrenOf = %v", kids)
	}
	if db.Data(9999) != nil || db.TypeOf(9999) != "" || db.ParentOf(9999) != 0 || db.ChildrenOf(9999, "EMP") != nil {
		t.Error("stale lookups")
	}
	// Data returns a copy.
	rec.Set("ENAME", value.Str("MUTATED"))
	if db.Data(id).MustGet("ENAME").AsString() != "BAKER" {
		t.Error("Data should return copies")
	}
	if len(db.Roots()) != 2 {
		t.Error("Roots")
	}
}

func TestCloneIndependence(t *testing.T) {
	db, _ := seedPersonnel(t)
	c := db.Clone()
	cs := NewSession(c)
	cs.GU(Q("DEPT", "D#", EQ, value.Str("D12")))
	cs.DLET()
	if db.Count("DEPT") != 2 || db.Count("EMP") != 3 {
		t.Error("clone DLET leaked")
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "OK" || GE.String() != "GE" || GB.String() != "GB" {
		t.Error("status strings")
	}
}

func TestNewDBPanicsOnInvalidSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDB(&schema.Hierarchy{Name: "BAD"})
}

func TestSessionAccessors(t *testing.T) {
	db, s := seedPersonnel(t)
	if s.DB() != db {
		t.Error("DB accessor")
	}
	s.GU()
	if s.Status() != OK || s.Position() == 0 {
		t.Error("accessors after GU")
	}
}
